package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates scalar samples and reports order statistics. Unlike
// Histogram it keeps every sample (exact quantiles, O(n) memory) and is NOT
// safe for concurrent use — it serves the single-threaded simulation and
// result post-processing. The zero value is ready to use.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// Count reports the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum reports the total of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the sample mean, or NaN with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.samples))
}

// Min reports the smallest sample, or NaN with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sortSamples()
	return s.samples[0]
}

// Max reports the largest sample, or NaN with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sortSamples()
	return s.samples[len(s.samples)-1]
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) by nearest-rank, or NaN with
// no samples. Out-of-range q is clamped.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sortSamples()
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.samples[idx]
}

// StdDev reports the population standard deviation, or NaN with no samples.
func (s *Summary) StdDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Summary) sortSamples() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Table is a simple column-aligned text table, used to render the paper's
// Tables 1–3, the experiment reports, and registry snapshots.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the raw cell data.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV formats the table as comma-separated values with a header row. Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
