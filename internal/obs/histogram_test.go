package obs

import (
	"math"
	"testing"
)

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets
	if len(b) != 30 {
		t.Fatalf("len = %d, want 30", len(b))
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 5 || b[3] != 10 {
		t.Errorf("ladder start = %v", b[:4])
	}
	if b[29] != 5e9 {
		t.Errorf("ladder end = %v, want 5e9", b[29])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
}

func TestLinearBuckets(t *testing.T) {
	b := LinearBuckets(10, 5, 4)
	want := []float64{10, 15, 20, 25}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", b, want)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, v := range []float64{5, 10, 15, 25, 99} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// ≤10 → bucket 0 (5, 10); ≤20 → bucket 1 (15); ≤30 → bucket 2 (25);
	// overflow → bucket 3 (99).
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("counts[%d] = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 154 || s.Min != 5 || s.Max != 99 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestQuantileConstant: every sample identical — min/max clamping must make
// every quantile exact regardless of bucket width.
func TestQuantileConstant(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
}

// TestQuantileUniform: 1..1000 uniformly against fine linear buckets. The
// interpolated estimate must land within one bucket width of the true
// quantile — the histogram's documented accuracy contract.
func TestQuantileUniform(t *testing.T) {
	const width = 10.0
	h := NewHistogram(LinearBuckets(width, width, 100))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.95, 950}, {0.99, 990},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > width {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, width)
		}
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 1000 {
		t.Errorf("extremes: q0=%v q1=%v", s.Quantile(0), s.Quantile(1))
	}
}

// TestQuantileBimodal: two tight clusters; p50 must stay in the low cluster
// and p95 in the high one — interpolation must not smear across empty
// buckets.
func TestQuantileBimodal(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket (2,5]
	}
	for i := 0; i < 10; i++ {
		h.Observe(4000) // bucket (2000,5000]
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 2 || p50 > 5 {
		t.Errorf("p50 = %v, want within (2,5]", p50)
	}
	if p95 := s.Quantile(0.95); p95 < 2000 || p95 > 4000 {
		t.Errorf("p95 = %v, want within (2000,4000]", p95)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	h := NewHistogram(nil)
	// Skewed distribution: heavy left tail with a few large outliers.
	for i := 1; i <= 500; i++ {
		h.Observe(float64(i % 37))
	}
	h.Observe(1e6)
	h.Observe(2e6)
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotonic: q=%v gives %v < %v", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v,%v]", q, v, s.Min, s.Max)
		}
		prev = v
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	// The overflow bucket interpolates over [last bound, Max].
	if got := s.Quantile(0.99); got <= 10 || got > 200 {
		t.Errorf("p99 = %v, want within (10, 200]", got)
	}
	if got := s.Quantile(1); got != 200 {
		t.Errorf("p100 = %v, want Max=200", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if s.Quantile(0.5) != 0 || s.Count != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestSnapshotPrecomputedQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Errorf("precomputed quantiles disagree with Quantile(): %+v", s)
	}
}
