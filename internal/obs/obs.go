// Package obs is the unified observability layer: one instrumentation API
// shared by the discrete-event simulation and the live concurrent runtime.
//
// The paper's whole §4 evaluation rests on measuring delivery delay, poll
// counts and server load, so instrumentation is a first-class subsystem, not
// an afterthought: a concurrency-safe Registry of named counters, gauges and
// fixed-bucket latency histograms (with p50/p95/p99 snapshots), plus a
// message-lifecycle Tracer that stamps spans across the §3.1.2 delivery
// pipeline — submit → resolve → relay → deposit → notify → retrieve — keyed
// by message ID. Both work identically on the simulated clock (microticks
// from sim.Scheduler.Now) and the wall clock (UnixNano): time is just an
// int64 handed in through a Clock.
//
// Snapshots export as a versioned JSON document and as the aligned-text/CSV
// tables the experiments render, so the paper's tables and the chaos-soak
// reports come from the same registry.
//
// Naming scheme (see DESIGN.md §6): counter and gauge names are snake_case
// "<area>_<event>" ("deposit_failovers", "spool_depth"); per-entity
// instruments append the entity after a dot ("s1.deposits"); latency
// histograms are "lat_<stage>" for stage-to-stage spans and "lat_e2e" for
// the submit→retrieve end-to-end span.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock reports the current instant as an int64 in arbitrary units: microticks
// on the simulated clock, nanoseconds on the wall clock. All instruments and
// spans in one registry/tracer should share one clock.
type Clock func() int64

// WallClock is the live runtime's clock: nanoseconds since the Unix epoch.
func WallClock() int64 { return time.Now().UnixNano() }

// Counter is a monotonically named cumulative count. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (which may be negative: some callers
// account corrections through the same instrument).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named instantaneous value. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a concurrency-safe set of named instruments. The zero value is
// ready to use; NewRegistry exists for symmetry with the packages it
// replaced. Instruments are created on first touch and live for the life of
// the registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil bounds take DefaultLatencyBuckets). Bounds
// passed on later calls for an existing name are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h != nil {
		return h
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Add increments the named counter by delta. It is the migration-compatible
// surface of the old metrics.Registry/metrics.Shared counter API.
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Counter(name).Inc() }

// Get returns the value of the named counter (zero if never touched).
func (r *Registry) Get(name string) int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Names returns all counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Counters returns a consistent copy of all counter values.
func (r *Registry) Counters() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	return out
}

// Reset drops every instrument. Meant for tests and between experiment runs;
// instrument pointers handed out earlier keep working but are no longer
// reachable from the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = nil
	r.gauges = nil
	r.hists = nil
}

// Snapshot returns a consistent, versioned copy of every instrument, ready
// for JSON export or table rendering.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Version: SnapshotVersion}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}
