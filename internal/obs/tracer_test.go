package obs

import (
	"fmt"
	"sync"
	"testing"
)

// fakeClock is a manually advanced Clock for deterministic tracer tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64 { return c.now }

func TestTracerCompleteChain(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry()
	tr := NewTracer(clk.Now, reg)

	clk.now = 10
	tr.Stamp("m1-1", StageSubmit, "s1")
	clk.now = 15
	tr.Stamp("m1-1", StageResolve, "s1")
	clk.now = 25
	tr.Stamp("m1-1", StageDeposit, "s2")
	clk.now = 30
	tr.Stamp("m1-1", StageNotify, "s2")
	clk.now = 60
	tr.Stamp("m1-1", StageRetrieve, "s2")

	trace, ok := tr.Trace("m1-1")
	if !ok || len(trace.Events) != 5 {
		t.Fatalf("trace = %+v ok=%v", trace, ok)
	}
	if !trace.Complete() {
		t.Error("full chain should be complete")
	}
	if at, ok := trace.StageAt(StageDeposit); !ok || at != 25 {
		t.Errorf("deposit at %d ok=%v, want 25", at, ok)
	}

	// Per-stage histograms hold the deltas from the previous event.
	if hs := reg.Histogram("lat_deposit", nil).Snapshot(); hs.Count != 1 || hs.Sum != 10 {
		t.Errorf("lat_deposit = %+v, want one sample of 10", hs)
	}
	if hs := reg.Histogram("lat_retrieve", nil).Snapshot(); hs.Count != 1 || hs.Sum != 30 {
		t.Errorf("lat_retrieve = %+v, want one sample of 30", hs)
	}
	// End-to-end = retrieve − submit.
	if hs := reg.Histogram("lat_e2e", nil).Snapshot(); hs.Count != 1 || hs.Sum != 50 {
		t.Errorf("lat_e2e = %+v, want one sample of 50", hs)
	}
	// Submit has no predecessor: no lat_submit histogram was created.
	if _, ok := reg.Snapshot().Histograms["lat_submit"]; ok {
		t.Error("lat_submit should not exist for the first event")
	}
}

func TestTraceIncomplete(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now, nil)

	clk.now = 1
	tr.Stamp("full", StageSubmit, "s1")
	tr.Stamp("partial", StageSubmit, "s1")
	clk.now = 2
	tr.Stamp("full", StageDeposit, "s1")
	clk.now = 3
	tr.Stamp("full", StageRetrieve, "s1")

	gaps := tr.Incomplete([]string{"full", "partial", "never-seen"})
	if len(gaps) != 2 || gaps[0] != "never-seen" || gaps[1] != "partial" {
		t.Errorf("Incomplete = %v, want [never-seen partial]", gaps)
	}
	if got := tr.Incomplete([]string{"full"}); len(got) != 0 {
		t.Errorf("Incomplete([full]) = %v, want empty", got)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset did not clear traces")
	}
}

func TestTraceCausalOrderRequired(t *testing.T) {
	tr := Trace{ID: "x", Events: []SpanEvent{
		{Stage: StageSubmit, At: 100},
		{Stage: StageDeposit, At: 50}, // deposit before submit: broken
		{Stage: StageRetrieve, At: 200},
	}}
	if tr.Complete() {
		t.Error("out-of-order trace must not be complete")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Stamp("id", StageSubmit, "s1") // must not panic
	if _, ok := tr.Trace("id"); ok {
		t.Error("nil tracer returned a trace")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer Len != 0")
	}
	if got := tr.Incomplete([]string{"a"}); len(got) != 1 || got[0] != "a" {
		t.Errorf("nil tracer Incomplete = %v, want [a]", got)
	}
	tr.Reset() // must not panic
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageSubmit: "submit", StageResolve: "resolve", StageRelay: "relay",
		StageDeposit: "deposit", StageNotify: "notify", StageRetrieve: "retrieve",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

// TestTracerConcurrent stamps many message lifecycles from parallel
// goroutines; meaningful under -race.
func TestTracerConcurrent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(WallClock, reg)
	const workers = 8
	const msgs = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				id := fmt.Sprintf("m%d-%d", w, i)
				tr.Stamp(id, StageSubmit, "s1")
				tr.Stamp(id, StageDeposit, "s1")
				tr.Stamp(id, StageRetrieve, "s1")
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*msgs {
		t.Errorf("Len = %d, want %d", tr.Len(), workers*msgs)
	}
	var ids []string
	for w := 0; w < workers; w++ {
		for i := 0; i < msgs; i++ {
			ids = append(ids, fmt.Sprintf("m%d-%d", w, i))
		}
	}
	if gaps := tr.Incomplete(ids); len(gaps) != 0 {
		t.Errorf("%d incomplete traces after concurrent stamping", len(gaps))
	}
	if hs := reg.Histogram("lat_e2e", nil).Snapshot(); hs.Count != workers*msgs {
		t.Errorf("lat_e2e count = %d, want %d", hs.Count, workers*msgs)
	}
}
