package obs

import (
	"encoding/json"
	"sort"
)

// SnapshotVersion is the schema version stamped on every exported snapshot.
// Consumers (mailctl, the wire status op, BENCH_*.json tooling) can key
// rendering decisions on it when the schema evolves.
//
// Version history:
//
//	1 — counters/gauges/histograms as flat name→value maps.
//	2 — adds the wire-transport instruments (wire_bytes_in/wire_bytes_out
//	    counters, lat_wire_decode histogram). Purely additive: the maps and
//	    their encodings are unchanged, so v1 consumers decode v2 snapshots
//	    as-is and v2 consumers treat the absence of the wire keys as a v1
//	    producer.
const SnapshotVersion = 2

// Snapshot is a consistent, versioned copy of a registry's instruments,
// JSON-exportable as-is and renderable as the repository's aligned-text/CSV
// tables — the same registry feeds the paper's §4 tables and the machine-
// readable exports.
type Snapshot struct {
	Version    int                          `json:"version"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterTable renders counters and gauges as one aligned table, sorted by
// name (gauges are suffixed "(gauge)" in the name column).
func (s Snapshot) CounterTable(title string) *Table {
	t := NewTable(title, "name", "value")
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, s.Counters[n])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		t.AddRow(n+" (gauge)", s.Gauges[n])
	}
	return t
}

// LatencyTable renders every histogram as one row of count/mean/p50/p95/p99/
// max, sorted by name. Values are divided by scale (e.g. 1e6 for ns→ms,
// sim.Unit for microticks→paper units); unit labels the columns. scale ≤ 0
// means 1.
func (s Snapshot) LatencyTable(title string, scale float64, unit string) *Table {
	if scale <= 0 {
		scale = 1
	}
	t := NewTable(title, "histogram", "count",
		"mean ("+unit+")", "p50 ("+unit+")", "p95 ("+unit+")", "p99 ("+unit+")", "max ("+unit+")")
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		t.AddRow(n, h.Count, h.Mean/scale, h.P50/scale, h.P95/scale, h.P99/scale, h.Max/scale)
	}
	return t
}
