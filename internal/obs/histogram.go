package obs

import (
	"math"
	"sync"
)

// DefaultLatencyBuckets is a 1-2-5 exponential ladder from 1 to 5·10⁹. It
// spans both clock domains the repository uses — sim microticks (a paper
// time unit is 10³ microticks) and wall-clock nanoseconds (10³ ns = 1µs up
// to ~5 s) — so one default serves both transports.
var DefaultLatencyBuckets = ladder125(1, 10)

// ladder125 builds the 1-2-5 ladder starting at start and spanning the
// given number of decades.
func ladder125(start float64, decades int) []float64 {
	out := make([]float64, 0, 3*decades)
	v := start
	for i := 0; i < decades; i++ {
		out = append(out, v, 2*v, 5*v)
		v *= 10
	}
	return out
}

// LinearBuckets returns n upper bounds: start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram is a fixed-bucket histogram of float64 observations (typically
// latencies in clock units). Safe for concurrent use. Create with
// NewHistogram or Registry.Histogram.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1, last is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given sorted bucket upper
// bounds; nil takes DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value. Values land in the first bucket whose upper
// bound is ≥ v; values beyond every bound land in the overflow bucket.
func (h *Histogram) Observe(v float64) {
	// Binary search outside the lock; bounds are immutable.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.mu.Lock()
	h.counts[lo]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Snapshot returns a consistent copy with derived quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
	}
	if h.count > 0 {
		s.Min = h.min
		s.Max = h.max
		s.Mean = h.sum / float64(h.count)
	}
	h.mu.Unlock()
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is an immutable view of a histogram with its headline
// quantiles precomputed. Bounds is shared (immutable); Counts is a copy.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [Min, Max]. With no observations it returns 0. The estimate is exact to
// within one bucket width — the resolution the fixed-bucket design trades
// for O(1) memory per instrument.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if q == 0 {
		return s.Min
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		lo := s.Min
		if i > 0 && s.Bounds[i-1] > lo {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if hi <= lo {
			return clamp(lo, s.Min, s.Max)
		}
		frac := (rank - cum) / float64(c)
		return clamp(lo+(hi-lo)*frac, s.Min, s.Max)
	}
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
