package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage identifies one step of the §3.1.2 message-delivery pipeline.
type Stage uint8

// Pipeline stages, in delivery order. Submit, Deposit and Retrieve form the
// mandatory backbone of a trace; Resolve, Relay and Notify appear when the
// delivery actually took those paths (a local deposit never relays, an
// offline recipient is never notified).
const (
	StageSubmit   Stage = iota + 1 // accepted by a mail server / cluster
	StageResolve                   // recipient name resolved to an authority list
	StageRelay                     // forwarded toward the recipient's region/server
	StageDeposit                   // buffered at an authority server
	StageNotify                    // arrival alert sent to an online recipient
	StageRetrieve                  // collected by the recipient's user interface
)

// PipelineStages lists every stage in delivery order — the iteration order
// for reports that walk the per-stage "lat_<stage>" histograms.
var PipelineStages = []Stage{
	StageSubmit, StageResolve, StageRelay, StageDeposit, StageNotify, StageRetrieve,
}

func (s Stage) String() string {
	switch s {
	case StageSubmit:
		return "submit"
	case StageResolve:
		return "resolve"
	case StageRelay:
		return "relay"
	case StageDeposit:
		return "deposit"
	case StageNotify:
		return "notify"
	case StageRetrieve:
		return "retrieve"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// SpanEvent is one stamped step of a message's lifecycle.
type SpanEvent struct {
	Stage Stage  `json:"stage"`
	At    int64  `json:"at"`              // clock units (microticks or ns)
	Where string `json:"where,omitempty"` // server/cluster that stamped it
}

// Trace is the recorded lifecycle of one message, in stamp order.
type Trace struct {
	ID     string      `json:"id"`
	Events []SpanEvent `json:"events"`
}

// StageAt returns the instant of the first event of the given stage.
func (t Trace) StageAt(s Stage) (int64, bool) {
	for _, e := range t.Events {
		if e.Stage == s {
			return e.At, true
		}
	}
	return 0, false
}

// Complete reports whether the trace covers the mandatory backbone of the
// pipeline — submit, deposit and retrieve all present, in causal order.
// Resolve/relay/notify are path-dependent and not required.
func (t Trace) Complete() bool {
	sub, okS := t.StageAt(StageSubmit)
	dep, okD := t.StageAt(StageDeposit)
	ret, okR := t.StageAt(StageRetrieve)
	return okS && okD && okR && sub <= dep && dep <= ret
}

// Tracer stamps message-lifecycle spans. All methods are safe for concurrent
// use and are no-ops on a nil receiver, so call sites need no guards when
// tracing is not wired.
//
// Each stamp also feeds the bound registry (when present): the span from the
// previous stamped event to this one lands in histogram "lat_<stage>", and a
// retrieve stamp additionally records the submit→retrieve span in "lat_e2e".
// That is how per-stage p50/p95/p99 tables and the trace audit come from the
// same instrumentation.
type Tracer struct {
	clock Clock
	reg   *Registry

	// Per-stage span histograms plus lat_e2e, cached after the first lookup:
	// Stamp is on the wire hot path, and a registry lookup (name concat +
	// map access under the registry lock) per stamp showed up in profiles.
	// Lazy (not resolved at construction) so unused stages never register —
	// snapshots must not grow empty histograms. Racing initializations are
	// harmless: Registry.Histogram is idempotent.
	stageHist [StageRetrieve + 1]atomic.Pointer[Histogram]
	e2eHist   atomic.Pointer[Histogram]

	mu     sync.Mutex
	traces map[string]*Trace
}

// NewTracer returns a tracer reading instants from clock and feeding span
// histograms into reg (nil reg disables the histograms, not the traces).
func NewTracer(clock Clock, reg *Registry) *Tracer {
	return &Tracer{clock: clock, reg: reg, traces: make(map[string]*Trace)}
}

// Stamp records that the message reached a pipeline stage at the current
// instant. where names the component that stamped (server name, cluster).
func (t *Tracer) Stamp(id string, stage Stage, where string) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	tr := t.traces[id]
	if tr == nil {
		tr = &Trace{ID: id}
		t.traces[id] = tr
	}
	var prev int64
	hasPrev := false
	if n := len(tr.Events); n > 0 {
		prev = tr.Events[n-1].At
		hasPrev = true
	}
	var submitAt int64
	submitOK := false
	if stage == StageRetrieve {
		submitAt, submitOK = tr.StageAt(StageSubmit)
	}
	tr.Events = append(tr.Events, SpanEvent{Stage: stage, At: now, Where: where})
	t.mu.Unlock()

	if t.reg == nil {
		return
	}
	if hasPrev {
		if int(stage) < len(t.stageHist) {
			h := t.stageHist[stage].Load()
			if h == nil {
				h = t.reg.Histogram("lat_"+stage.String(), nil)
				t.stageHist[stage].Store(h)
			}
			h.Observe(float64(now - prev))
		} else { // unknown stage value: fall back to a registry lookup
			t.reg.Histogram("lat_"+stage.String(), nil).Observe(float64(now - prev))
		}
	}
	if submitOK {
		h := t.e2eHist.Load()
		if h == nil {
			h = t.reg.Histogram("lat_e2e", nil)
			t.e2eHist.Store(h)
		}
		h.Observe(float64(now - submitAt))
	}
}

// Trace returns a copy of the message's recorded lifecycle.
func (t *Tracer) Trace(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		return Trace{}, false
	}
	out := Trace{ID: tr.ID, Events: append([]SpanEvent(nil), tr.Events...)}
	return out, true
}

// Len reports how many messages have at least one stamped event.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// IDs returns every traced message ID, sorted.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]string, 0, len(t.traces))
	for id := range t.traces {
		out = append(out, id)
	}
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// Incomplete returns the subset of ids whose traces are missing or fail
// Trace.Complete, sorted — the audit primitive the chaos soak builds on:
// every committed message must show a complete submit→retrieve span chain,
// even across crash/recover windows.
func (t *Tracer) Incomplete(ids []string) []string {
	var out []string
	for _, id := range ids {
		tr, ok := t.Trace(id)
		if !ok || !tr.Complete() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Reset drops every recorded trace.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces = make(map[string]*Trace)
}
