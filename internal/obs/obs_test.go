package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounterCompat(t *testing.T) {
	r := NewRegistry()
	r.Inc("msgs")
	r.Add("msgs", 4)
	r.Add("bytes", 100)
	r.Add("bytes", -30)
	if got := r.Get("msgs"); got != 5 {
		t.Errorf("msgs = %d, want 5", got)
	}
	if got := r.Get("bytes"); got != 70 {
		t.Errorf("bytes = %d, want 70", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "bytes" || names[1] != "msgs" {
		t.Errorf("Names() = %v", names)
	}
	snap := r.Counters()
	r.Inc("msgs")
	if snap["msgs"] != 5 {
		t.Error("Counters aliased live counters")
	}
	r.Reset()
	if r.Get("msgs") != 0 || len(r.Names()) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestRegistryZeroValueUsable(t *testing.T) {
	var r Registry
	r.Inc("a")
	r.Gauge("g").Set(7)
	r.Histogram("h", nil).Observe(3)
	if r.Get("a") != 1 || r.Gauge("g").Value() != 7 {
		t.Error("zero-value registry broken")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Error("Gauge did not return the same instrument")
	}
}

func TestSnapshotStructureAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Inc("deposits")
	r.Gauge("spool_depth").Set(2)
	h := r.Histogram("lat_e2e", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	s := r.Snapshot()
	if s.Version != SnapshotVersion {
		t.Errorf("version = %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Counters["deposits"] != 1 || s.Gauges["spool_depth"] != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if hs := s.Histograms["lat_e2e"]; hs.Count != 2 || hs.Sum != 55 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != s.Version || back.Histograms["lat_e2e"].Count != 2 {
		t.Errorf("JSON round trip = %+v", back)
	}
}

func TestSnapshotTables(t *testing.T) {
	r := NewRegistry()
	r.Add("b_counter", 2)
	r.Add("a_counter", 1)
	r.Gauge("depth").Set(9)
	r.Histogram("lat_deposit", nil).Observe(1000)
	s := r.Snapshot()

	ct := s.CounterTable("counters").Render()
	if !strings.Contains(ct, "a_counter") || !strings.Contains(ct, "depth (gauge)") {
		t.Errorf("counter table:\n%s", ct)
	}
	// Sorted: a_counter before b_counter.
	if strings.Index(ct, "a_counter") > strings.Index(ct, "b_counter") {
		t.Error("counter table not sorted")
	}
	lt := s.LatencyTable("latencies", 1000, "u")
	out := lt.Render()
	if !strings.Contains(out, "lat_deposit") || !strings.Contains(out, "p95 (u)") {
		t.Errorf("latency table:\n%s", out)
	}
	if rows := lt.Rows(); rows[0][2] != "1" { // mean 1000/1000 = 1 unit
		t.Errorf("scaled mean = %q, want 1", rows[0][2])
	}
	if !strings.Contains(lt.CSV(), "lat_deposit") {
		t.Error("CSV rendering lost the histogram row")
	}
}

// TestRegistryConcurrent hammers every instrument type from many goroutines;
// run under -race this is the concurrency-safety check the live transport
// relies on.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc("shared")
				r.Counter("own").Add(1)
				r.Gauge("depth").Add(1)
				r.Histogram("lat", nil).Observe(float64(i % 100))
				if i%64 == 0 {
					_ = r.Snapshot()
					_ = r.Counters()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Get("shared"); got != workers*per {
		t.Errorf("shared = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("depth").Value(); got != workers*per {
		t.Errorf("depth = %d, want %d", got, workers*per)
	}
	hs := r.Histogram("lat", nil).Snapshot()
	if hs.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*per)
	}
}
