package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Sum() != 0 {
		t.Error("empty summary has nonzero count or sum")
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Min": s.Min(), "Max": s.Max(),
		"Quantile": s.Quantile(0.5), "StdDev": s.StdDev(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty summary = %v, want NaN", name, v)
		}
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Sum() != 15 {
		t.Errorf("Count/Sum = %d/%v", s.Count(), s.Sum())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := s.Quantile(-1); got != 1 {
		t.Errorf("q(-1) clamped = %v, want 1", got)
	}
	if got := s.Quantile(2); got != 5 {
		t.Errorf("q(2) clamped = %v, want 5", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSummaryObserveAfterSort(t *testing.T) {
	var s Summary
	s.Observe(10)
	_ = s.Min() // forces sort
	s.Observe(1)
	if s.Min() != 1 {
		t.Error("Observe after a sorted read lost ordering")
	}
}

// Property: Summary quantile output is always one of the observed samples and
// quantiles are monotone in q.
func TestSummaryQuantileProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		set := make(map[float64]bool)
		for _, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			s.Observe(v)
			set[v] = true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := s.Quantile(qa), s.Quantile(qb)
		return set[va] && set[vb] && va <= vb
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1: loads", "Host", "Server", "Users")
	tb.AddRow("H1", "S1", 50)
	tb.AddRow("H2", "S2", 60)
	out := tb.Render()
	if !strings.Contains(out, "Table 1: loads") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "Server" column starts at the same offset everywhere.
	hdrIdx := strings.Index(lines[1], "Server")
	rowIdx := strings.Index(lines[3], "S1")
	if hdrIdx != rowIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hdrIdx, rowIdx, out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableFloatsTrimmed(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1.5)
	tb.AddRow(2.0)
	tb.AddRow(0.125)
	rows := tb.Rows()
	if rows[0][0] != "1.5" || rows[1][0] != "2" || rows[2][0] != "0.125" {
		t.Errorf("float cells = %v", rows)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `he said "hi"`)
	tb.AddRow(1, 2)
	got := tb.CSV()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableRowsCopy(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("orig")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "orig" {
		t.Error("Rows() exposed internal storage")
	}
}
