package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestCountingAddRemove(t *testing.T) {
	c := NewCounting()
	terms := []string{"budget", "offsite", "seminar", "deadline", "picnic"}
	for _, tm := range terms {
		c.Add(tm)
		c.Add(tm) // two references
	}
	for _, tm := range terms {
		if !c.MayContain(tm) {
			t.Fatalf("term %q lost after Add", tm)
		}
	}
	// Dropping one of two references must keep the term visible.
	for _, tm := range terms {
		c.Remove(tm)
		if !c.MayContain(tm) {
			t.Fatalf("term %q lost with one reference left", tm)
		}
	}
	// Dropping the last reference must clear it (counting filters remove
	// exactly as long as no slot saturated).
	for _, tm := range terms {
		c.Remove(tm)
		if c.MayContain(tm) {
			t.Fatalf("term %q still present after all references removed", tm)
		}
	}
	if got := c.Snapshot().Bits(); got != 0 {
		t.Fatalf("empty counting filter snapshots %d bits, want 0", got)
	}
}

func TestCountingNoFalseNegativesUnderChurn(t *testing.T) {
	// Property: after any interleaving of adds and removes, every term with
	// a positive live refcount answers MayContain true.
	rng := rand.New(rand.NewSource(10))
	c := NewCounting()
	live := map[string]int{}
	for i := 0; i < 20000; i++ {
		tm := fmt.Sprintf("t%d", rng.Intn(300))
		if rng.Intn(3) == 0 && live[tm] > 0 {
			c.Remove(tm)
			live[tm]--
		} else {
			c.Add(tm)
			live[tm]++
		}
	}
	snap := c.Snapshot()
	for tm, n := range live {
		if n > 0 {
			if !c.MayContain(tm) {
				t.Fatalf("false negative on live term %q (refs=%d)", tm, n)
			}
			if !snap.MayContain(tm) {
				t.Fatalf("snapshot false negative on live term %q", tm)
			}
		}
	}
}

func TestFilterOr(t *testing.T) {
	a, b := NewFilter(), NewFilter()
	a.Add("alpha")
	b.Add("beta")
	union := a.Clone()
	union.Or(b)
	for _, tm := range []string{"alpha", "beta"} {
		if !union.MayContain(tm) {
			t.Fatalf("union lost %q", tm)
		}
	}
	if !a.MayContain("alpha") || a.MayContain("beta") {
		t.Fatal("Clone did not isolate the source filter")
	}
	union.Or(nil) // nil is a no-op, not a panic
}

func TestFalsePositiveRateBound(t *testing.T) {
	// Measured FP rate at n=400 live terms must stay within 2× the
	// analytical estimate (sampling noise headroom), and the estimate
	// itself must be small enough that pruning is worth doing.
	const n = 400
	c := NewCounting()
	for i := 0; i < n; i++ {
		c.Add(fmt.Sprintf("present%d", i))
	}
	est := FalsePositiveRate(n)
	if est > 0.05 {
		t.Fatalf("analytical FP rate %.4f at n=%d too high for useful pruning", est, n)
	}
	const probes = 20000
	fp := 0
	for i := 0; i < probes; i++ {
		if c.MayContain(fmt.Sprintf("absent%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 2*est+0.005 {
		t.Fatalf("measured FP rate %.4f exceeds bound (analytical %.4f)", rate, est)
	}
	t.Logf("n=%d: measured FP %.4f, analytical %.4f", n, rate, est)
}

func TestNormalizeTerm(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"Budget", "budget", true},
		{"budget", "budget", true},
		{"X9", "x9", true},
		{"a", "", false},               // too short
		{"two words", "", false},       // not a single token
		{"hyphen-ated", "", false},     // punctuation
		{"", "", false},                // empty
		{string(make([]byte, 40)), "", false}, // too long
	}
	for _, c := range cases {
		got, ok := NormalizeTerm(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("NormalizeTerm(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}
