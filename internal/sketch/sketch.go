// Package sketch implements the term sketches behind the selective
// multicast of §3.3: small Bloom filters summarising which content terms a
// mailbox store (or a whole backbone subtree) might hold. A store keeps a
// *counting* filter so drains and evictions subtract exactly; the broadcast
// layer works with immutable bit snapshots, which are cheap to OR together
// when a node folds its children's summaries into the subtree sketch cached
// at its parent edge.
//
// The contract is strictly one-sided: MayContain never returns false for a
// term that was Added and not Removed. False positives are expected (and
// measured — see FalsePositiveRate); false negatives are a bug. Everything
// that consults a sketch must therefore treat "maybe" as "visit" and only
// "definitely not" as permission to prune.
package sketch

import (
	"hash/fnv"
	"math"
)

// Default geometry. 4096 bits × 3 hashes holds the ~hundreds of live terms
// a store sees between retrieval sweeps at ≈1–2% false positives, and a
// 64-server subtree OR stays well under saturation because stores carry
// disjoint slices of the same few distribution terms.
const (
	// DefaultBits is the filter width in bits. Must be a power of two so
	// indexing reduces to a mask.
	DefaultBits = 4096
	// DefaultHashes is k, the number of probe positions per term.
	DefaultHashes = 3
)

// hashPair derives the double-hashing base pair from FNV-1a 64. Probe i
// lands at (h1 + i·h2) mod m; forcing h2 odd keeps the stride coprime with
// the power-of-two width so the k probes stay distinct.
func hashPair(term string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(term))
	h1 := h.Sum64()
	h2 := (h1 >> 33) | 1
	return h1, h2
}

// Counting is a counting Bloom filter: each slot is a uint16 refcount so
// Remove can subtract what Add contributed. It is not safe for concurrent
// use; the mailbox store mutates it under its shard lock.
type Counting struct {
	counts []uint16
	hashes int
	// sticky marks slots whose counter saturated at MaxUint16. Such a slot
	// can no longer be decremented reliably, so it stays set forever — an
	// over-approximation, which is the safe side of the contract.
	sticky bool
}

// NewCounting returns an empty counting filter with the package-default
// geometry. All filters that will ever be ORed together must share one
// geometry; using the defaults everywhere guarantees that.
func NewCounting() *Counting {
	return &Counting{counts: make([]uint16, DefaultBits), hashes: DefaultHashes}
}

// Add records one reference to term.
func (c *Counting) Add(term string) {
	h1, h2 := hashPair(term)
	mask := uint64(len(c.counts) - 1)
	for i := 0; i < c.hashes; i++ {
		at := (h1 + uint64(i)*h2) & mask
		if c.counts[at] == math.MaxUint16 {
			c.sticky = true
			continue
		}
		c.counts[at]++
	}
}

// Remove drops one reference to term. Removing a term that was never Added
// is a caller bug; the filter clamps at zero rather than wrapping.
func (c *Counting) Remove(term string) {
	h1, h2 := hashPair(term)
	mask := uint64(len(c.counts) - 1)
	for i := 0; i < c.hashes; i++ {
		at := (h1 + uint64(i)*h2) & mask
		switch c.counts[at] {
		case 0:
			// Clamp: better a stale bit elsewhere than a wrapped counter
			// that erases live terms.
		case math.MaxUint16:
			// Saturated slots are sticky; see the field comment.
		default:
			c.counts[at]--
		}
	}
}

// MayContain reports whether term might be present. False means definitely
// absent.
func (c *Counting) MayContain(term string) bool {
	h1, h2 := hashPair(term)
	mask := uint64(len(c.counts) - 1)
	for i := 0; i < c.hashes; i++ {
		if c.counts[(h1+uint64(i)*h2)&mask] == 0 {
			return false
		}
	}
	return true
}

// Snapshot renders the current occupancy as an immutable bit filter,
// suitable for ORing into subtree aggregates.
func (c *Counting) Snapshot() *Filter {
	f := NewFilter()
	for at, n := range c.counts {
		if n > 0 {
			f.words[at>>6] |= 1 << (uint(at) & 63)
		}
	}
	return f
}

// Filter is a plain Bloom bit set. Unlike Counting it supports Or, making
// it the currency of the broadcast layer's subtree aggregation. The zero
// value is not usable; construct with NewFilter or Counting.Snapshot.
type Filter struct {
	words  []uint64
	hashes int
}

// NewFilter returns an empty filter with the package-default geometry.
func NewFilter() *Filter {
	return &Filter{words: make([]uint64, DefaultBits/64), hashes: DefaultHashes}
}

// Add sets term's bits. Mostly useful in tests; production filters come
// from Counting.Snapshot.
func (f *Filter) Add(term string) {
	h1, h2 := hashPair(term)
	mask := uint64(len(f.words)*64 - 1)
	for i := 0; i < f.hashes; i++ {
		at := (h1 + uint64(i)*h2) & mask
		f.words[at>>6] |= 1 << (at & 63)
	}
}

// MayContain reports whether term might be present; false is a proof of
// absence.
func (f *Filter) MayContain(term string) bool {
	h1, h2 := hashPair(term)
	mask := uint64(len(f.words)*64 - 1)
	for i := 0; i < f.hashes; i++ {
		at := (h1 + uint64(i)*h2) & mask
		if f.words[at>>6]&(1<<(at&63)) == 0 {
			return false
		}
	}
	return true
}

// Or folds other into f. Both sides must share one geometry — the package
// constructs every filter with the defaults, so a mismatch is a programmer
// error and panics.
func (f *Filter) Or(other *Filter) {
	if other == nil {
		return
	}
	if len(other.words) != len(f.words) || other.hashes != f.hashes {
		panic("sketch: Or on mismatched filter geometry")
	}
	for i, w := range other.words {
		f.words[i] |= w
	}
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	g := &Filter{words: make([]uint64, len(f.words)), hashes: f.hashes}
	copy(g.words, f.words)
	return g
}

// Bits returns the number of set bits — the load factor's numerator, used
// by tests and by FalsePositiveRate estimates from live filters.
func (f *Filter) Bits() int {
	n := 0
	for _, w := range f.words {
		n += popcount(w)
	}
	return n
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// FalsePositiveRate is the classical Bloom estimate (1 − e^(−kn/m))^k for n
// distinct terms under the package geometry. The sketch_test FP-bound test
// checks the measured rate against this with headroom.
func FalsePositiveRate(n int) float64 {
	k := float64(DefaultHashes)
	m := float64(DefaultBits)
	return math.Pow(1-math.Exp(-k*float64(n)/m), k)
}

// NormalizeTerm canonicalises a query pattern into the token form the
// mailbox store's term index uses: lowercase ASCII alphanumeric runs,
// length 2..32. It returns false when the pattern is not a single plain
// token (embedded punctuation, spaces, too short/long) — such predicates
// cannot be checked against a sketch and must take the unpruned path.
func NormalizeTerm(s string) (string, bool) {
	const minLen, maxLen = 2, 32
	if len(s) < minLen || len(s) > maxLen {
		return "", false
	}
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out[i] = c
		case c >= 'A' && c <= 'Z':
			out[i] = c + ('a' - 'A')
		default:
			return "", false
		}
	}
	return string(out), true
}
