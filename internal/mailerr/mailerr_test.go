package mailerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestCodeRoundTrip(t *testing.T) {
	for _, sentinel := range []error{ErrUnknownUser, ErrServerDown, ErrOversized, ErrTimeout} {
		wrapped := fmt.Errorf("layer context: %w", sentinel)
		code := Code(wrapped)
		if code == "" {
			t.Fatalf("Code(%v) = empty", sentinel)
		}
		back := FromCode(code, wrapped.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("FromCode(%q) does not match %v", code, sentinel)
		}
		if back.Error() == "" {
			t.Errorf("FromCode(%q) lost the message", code)
		}
	}
}

func TestCodeUnknown(t *testing.T) {
	if got := Code(errors.New("misc")); got != "" {
		t.Errorf("Code(misc) = %q, want empty", got)
	}
	err := FromCode("", "plain failure")
	if err == nil || err.Error() != "plain failure" {
		t.Errorf("FromCode empty code = %v", err)
	}
	for _, sentinel := range []error{ErrUnknownUser, ErrServerDown, ErrOversized, ErrTimeout} {
		if errors.Is(err, sentinel) {
			t.Errorf("untyped error matches %v", sentinel)
		}
	}
	if err := FromCode("unknown_user", ""); err.Error() == "" {
		t.Error("FromCode with empty message produced empty error text")
	}
}
