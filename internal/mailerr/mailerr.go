// Package mailerr is the shared error taxonomy of the mail system. Every
// transport and layer (internal/server, internal/livenet, internal/wire,
// internal/client) reports failures that fall into the same few categories —
// unknown recipient, unreachable server, oversized payload, deadline blown —
// and callers should be able to branch on the category with errors.Is
// regardless of which layer produced it.
//
// Each layer keeps its own sentinel (server.ErrDown, livenet.ErrServerDown,
// wire.ErrLineTooLong, ...) for source compatibility, but those sentinels
// wrap the taxonomy here, so both
//
//	errors.Is(err, livenet.ErrServerDown)
//	errors.Is(err, mailerr.ErrServerDown)
//
// hold. The wire protocol carries the category as a short machine-readable
// code (Response.Code) so a client can reconstruct the typed error on its
// side of the connection; Code and FromCode are the two halves of that
// mapping.
package mailerr

import (
	"errors"
	"fmt"
)

// The error taxonomy. These are category sentinels: concrete errors wrap
// them (errors.Is matches), they are never returned bare.
var (
	// ErrUnknownUser: the recipient has no authority servers / no mailbox.
	ErrUnknownUser = errors.New("unknown user")
	// ErrServerDown: the target server is crashed, unreachable, or closed.
	ErrServerDown = errors.New("server down")
	// ErrOversized: a payload exceeds a protocol or storage limit.
	ErrOversized = errors.New("oversized payload")
	// ErrTimeout: a per-request deadline or context expired.
	ErrTimeout = errors.New("timeout")
)

// Wire codes for the taxonomy, carried in wire.Response.Code.
const (
	CodeUnknownUser = "unknown_user"
	CodeServerDown  = "server_down"
	CodeOversized   = "oversized"
	CodeTimeout     = "timeout"
)

// Code maps an error to its taxonomy wire code, or "" if the error does not
// belong to the taxonomy.
func Code(err error) string {
	switch {
	case errors.Is(err, ErrUnknownUser):
		return CodeUnknownUser
	case errors.Is(err, ErrServerDown):
		return CodeServerDown
	case errors.Is(err, ErrOversized):
		return CodeOversized
	case errors.Is(err, ErrTimeout):
		return CodeTimeout
	default:
		return ""
	}
}

// FromCode reconstructs a typed error from a wire code and human-readable
// message. Unknown or empty codes yield a plain error carrying just the
// message (never nil: an empty message becomes "remote error").
func FromCode(code, msg string) error {
	if msg == "" {
		msg = "remote error"
	}
	switch code {
	case CodeUnknownUser:
		return fmt.Errorf("%s: %w", msg, ErrUnknownUser)
	case CodeServerDown:
		return fmt.Errorf("%s: %w", msg, ErrServerDown)
	case CodeOversized:
		return fmt.Errorf("%s: %w", msg, ErrOversized)
	case CodeTimeout:
		return fmt.Errorf("%s: %w", msg, ErrTimeout)
	default:
		return errors.New(msg)
	}
}
