package loadgen

import (
	"fmt"
	"math/rand"
)

// RoamScenarioConfig shapes the roaming workload layered on the engine:
// periodic waves of users moving between hosts inside their region, with the
// location index's hash modulus rehashed live underneath them.
type RoamScenarioConfig struct {
	Seed int64
	// RoamEvery triggers a roam wave every n ticks (default 5; <0 disables).
	RoamEvery int
	// RoamsPerWave is how many materialized users move per wave (default 8).
	RoamsPerWave int
	// ReturnProb is the chance a roamed user moves back to their primary
	// host instead of onward (default 0.3).
	ReturnProb float64
	// RehashEvery triggers a live Rehash every n ticks (0 disables).
	RehashEvery int
	// RehashModuli is cycled through on each rehash (default alternates
	// 2×servers-per-region + 1 and 2×servers-per-region: a modulus that is
	// a multiple of the server count maps every sub-group to the same
	// server as before, so at least one modulus must not be).
	RehashModuli []int
}

func (sc RoamScenarioConfig) withDefaults(p Population) RoamScenarioConfig {
	if sc.RoamEvery == 0 {
		sc.RoamEvery = 5
	}
	if sc.RoamsPerWave <= 0 {
		sc.RoamsPerWave = 8
	}
	if sc.ReturnProb <= 0 {
		sc.ReturnProb = 0.3
	}
	if len(sc.RehashModuli) == 0 {
		sc.RehashModuli = []int{2*p.ServersPerRegion + 1, 2 * p.ServersPerRegion}
	}
	return sc
}

// RunRoamScenario runs the engine over a RoamDriver with roam waves and live
// rehashes layered on top, and audits §3.2.2c online: the location-tracking
// design pays delivery overhead (a location consultation) only when the
// recipient is away from their primary host. Any consultation for a
// logged-in user who never roamed is a violation. The excuse set is sticky —
// once a user has roamed, later consultations for them are legitimate even
// after they return (a server may hold a stale location) — so the auditor
// over-excuses roamers rather than ever under-excusing a stay-at-home.
//
// Exactly-once delivery across roams needs no extra machinery here: the
// engine's standard ledger keeps charging every committed message to its
// recipient wherever the recipient's agent happens to be.
func RunRoamScenario(drv *RoamDriver, cfg Config, sc RoamScenarioConfig) Report {
	sc = sc.withDefaults(drv.Population())
	eng := New(drv, cfg)
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x9e3779b97f4a7c15&0x7fffffffffffffff))
	roamed := make(map[int]bool)

	audit := func() {
		for _, ev := range drv.DrainOverheadEvents() {
			if ev.Event != "consult" {
				continue
			}
			if roamed[ev.User] || !drv.LoginOK(ev.User) {
				continue
			}
			eng.Auditors().RecordViolation(ViolationRoamOverhead,
				fmt.Sprintf("u%d: location consultation while at primary host", ev.User))
		}
	}

	pop := drv.Population()
	rehashIdx := 0
	eng.OnTick = func(tick int) {
		audit()
		if sc.RoamEvery > 0 && tick > 0 && tick%sc.RoamEvery == 0 {
			users := drv.Materialized()
			for i := 0; i < sc.RoamsPerWave && len(users) > 0; i++ {
				u := users[rng.Intn(len(users))]
				if !drv.LoginOK(u) {
					continue
				}
				r := pop.RegionOf(u)
				var target int
				if roamed[u] && rng.Float64() < sc.ReturnProb {
					target = pop.HostOf(u)
				} else {
					target = r*pop.HostsPerRegion + rng.Intn(pop.HostsPerRegion)
				}
				if target == drv.CurrentHost(u) {
					continue
				}
				// Mark before moving: overhead caused by the move itself
				// (stale-location consultations mid-flight) is legitimate.
				roamed[u] = true
				_ = drv.Roam(u, target) // all-servers-down: retried next wave
			}
		}
		if sc.RehashEvery > 0 && tick > 0 && tick%sc.RehashEvery == 0 {
			k := sc.RehashModuli[rehashIdx%len(sc.RehashModuli)]
			rehashIdx++
			_, _ = drv.Rehash(k)
		}
	}

	rep := eng.Run()
	audit() // deposits during the settle drain may have consulted
	rep.Ok = eng.Auditors().Ok()
	rep.Violations = eng.Auditors().Counts()
	rep.Examples = eng.Auditors().Violations()
	return rep
}
