package loadgen

import (
	"testing"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/sim"
)

// TestBatchNoLossUnderFaults runs the batched relay fabric through the same
// chaos profile the capacity harness uses — crashes, link failures, injected
// latency, host drops — and requires the exactly-once/no-loss auditors to
// stay clean. It pins the two send-time guarantees the batch path must
// preserve under availability churn:
//
//   - a staged item whose first-active authority server changed while it
//     waited is redirected at flush time, never shipped to a secondary the
//     recipient's §3.1.2c walk would not check behind a healthy primary;
//   - a Recovered re-drive (crash recovery or link restore) restarts each
//     transfer's candidate walk at the head of the list instead of resuming
//     mid-rotation.
//
// Both bugs manifested as unread mail stranded at secondary servers exactly
// here, at BatchSize=16 under this schedule, before the fixes.
func TestBatchNoLossUnderFaults(t *testing.T) {
	drv, err := NewSimDriver(SimConfig{
		Seed: 1,
		Pop: Population{
			Users:            20000,
			Regions:          4,
			ServersPerRegion: 4,
		},
		BatchSize:     16,
		FlushInterval: 60 * sim.Unit,
		RetryTimeout:  96 * sim.Unit,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := drv.FaultSurface()
	spec.Seed = 1
	spec.Ticks = 120
	spec.Crashes = len(spec.Servers)/8 + 2
	spec.Latencies = len(spec.Servers)/16 + 1
	spec.LinkFaults = 2
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := New(drv, Config{
		Seed: 1, Messages: 5000, Sessions: 512, Ticks: 120,
		Workload: Workload{LocalBias: 0.2},
		Schedule: &sched,
	}).Run()
	if !rep.Ok {
		t.Fatalf("auditors flagged violations under faults: %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}
	for _, id := range drv.active {
		if n := drv.servers[id].PendingTransfers(); n > 0 {
			t.Errorf("server %v: %d transfers stranded in the pending ledger", id, n)
		}
	}
	snap := drv.Snapshot()
	env, out := snap.Counters["srv_relay_envelopes"], snap.Counters["srv_transfers_out"]
	if env == 0 || env >= out {
		t.Errorf("relay_envelopes = %d vs transfers_out = %d; batching not exercised", env, out)
	}
}
