package loadgen

import (
	"math/rand"

	"github.com/largemail/largemail/internal/faults"
)

// Config parameterizes one closed-loop run.
type Config struct {
	Seed int64
	// Messages is the total message budget across all sessions (default
	// 200). The run keeps ticking past Ticks until the budget is spent.
	Messages int
	// Sessions is how many concurrent user sessions drive traffic (default
	// min(32, population size)). Session k is user k·stride, spreading the
	// senders evenly across hosts and regions.
	Sessions int
	// Ticks is the minimum horizon in schedule ticks; raised to the fault
	// schedule's horizon so every injected window closes inside the run
	// (default 50).
	Ticks int
	// RetrieveEvery is the sweep period: every touched user runs GetMail
	// once per this many ticks (default 4).
	RetrieveEvery int
	// Workload sets the per-message distributions.
	Workload Workload
	// Schedule, when non-nil, is a compiled fault schedule injected as its
	// ticks come due. Its presence disables the strict §3.1.2c poll audit —
	// extra polls during failures are the algorithm working as designed.
	Schedule *faults.Schedule
	// SettleRounds is how many consecutive empty retrieval sweeps end the
	// drain phase (default 3); MaxSettle caps the sweeps (default 200).
	SettleRounds int
	MaxSettle    int
}

func (c Config) withDefaults(pop Population) Config {
	if c.Messages <= 0 {
		c.Messages = 200
	}
	if c.Sessions <= 0 {
		c.Sessions = 32
	}
	if c.Sessions > pop.Users {
		c.Sessions = pop.Users
	}
	if c.Ticks <= 0 {
		c.Ticks = 50
	}
	if c.Schedule != nil && c.Schedule.Horizon() > c.Ticks {
		c.Ticks = c.Schedule.Horizon()
	}
	if c.RetrieveEvery <= 0 {
		c.RetrieveEvery = 4
	}
	c.Workload = c.Workload.withDefaults()
	if c.SettleRounds <= 0 {
		c.SettleRounds = 3
	}
	if c.MaxSettle <= 0 {
		c.MaxSettle = 200
	}
	return c
}

// Report is what one engine run produced and proved.
type Report struct {
	Submitted  int  // messages committed
	Copies     int  // recipient copies committed (≥ Submitted)
	Retrievals int  // GetMail invocations
	Polls      int  // CheckMail calls across all retrievals
	Duplicates int  // agent-side dedup suppressions
	Ticks      int  // main-loop ticks actually run
	Ok         bool // zero auditor violations

	Violations map[string]int // violation totals by kind
	Examples   []string       // up to maxViolationDetail example violations
	Loads      []ServerLoad   // predicted vs observed per-server load
}

// session is one closed-loop user: send, think, send again.
type session struct {
	user int
	next int // tick of the next send
}

// Engine drives a Driver with a seeded closed-loop workload while the
// Auditors check the paper's invariants online. One engine, two transports:
// everything here is transport-agnostic.
type Engine struct {
	drv Driver
	cfg Config
	rng *rand.Rand
	aud *Auditors

	// OnTick, when set before Run, fires after each main-loop tick — the
	// hook reconfiguration tests use to add/remove servers or migrate users
	// mid-run. Setting it disables the strict poll audit (reconfiguration
	// legitimately forces extra polls).
	OnTick func(tick int)

	sessions  []*session
	touched   map[int]bool
	sweepList []int    // touched users, in first-touch order
	committed []string // message IDs owed complete traces
	submitted int
}

// New builds an engine over drv. Run may be called once.
func New(drv Driver, cfg Config) *Engine {
	pop := drv.Population()
	cfg = cfg.withDefaults(pop)
	e := &Engine{
		drv:     drv,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		touched: make(map[int]bool),
	}
	stride := pop.Users / cfg.Sessions
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < cfg.Sessions; k++ {
		u := (k * stride) % pop.Users
		e.sessions = append(e.sessions, &session{
			user: u,
			next: k % cfg.Workload.ThinkMax, // stagger first sends
		})
	}
	return e
}

// Auditors exposes the run's auditors (valid during OnTick and after Run).
func (e *Engine) Auditors() *Auditors { return e.aud }

// CreditRetrieved forwards out-of-band deliveries (e.g. a pre-migration
// drain) to the auditors so the no-loss ledger stays balanced.
func (e *Engine) CreditRetrieved(u int, ids []string) {
	e.touch(u)
	e.aud.CreditRetrieved(u, ids)
}

func (e *Engine) touch(u int) {
	if !e.touched[u] {
		e.touched[u] = true
		e.sweepList = append(e.sweepList, u)
	}
}

// pickRecipient draws one recipient ≠ from, local to the sender's region
// with probability LocalBias.
func (e *Engine) pickRecipient(from int) int {
	pop := e.drv.Population()
	for try := 0; try < 8; try++ {
		var gh int
		if e.rng.Float64() < e.cfg.Workload.LocalBias {
			r := pop.RegionOf(from)
			gh = r*pop.HostsPerRegion + e.rng.Intn(pop.HostsPerRegion)
		} else {
			gh = e.rng.Intn(pop.TotalHosts())
		}
		n := pop.UsersOnHost(gh)
		if n == 0 {
			continue
		}
		u := e.rng.Intn(n)*pop.TotalHosts() + gh
		if u != from && u < pop.Users {
			return u
		}
	}
	return (from + 1) % pop.Users
}

func (e *Engine) fire(s *session, tick int, rep *Report) {
	w := e.cfg.Workload
	n := w.sampleRecipients(e.rng)
	rcpts := make([]int, 0, n)
	seen := map[int]bool{s.user: true}
	for len(rcpts) < n {
		u := e.pickRecipient(s.user)
		if seen[u] {
			break // small population: accept fewer recipients over looping
		}
		seen[u] = true
		rcpts = append(rcpts, u)
	}
	if len(rcpts) == 0 {
		return
	}
	body := make([]byte, w.sampleBody(e.rng))
	for i := range body {
		body[i] = 'a' + byte((i+tick)%26)
	}
	id, err := e.drv.Submit(s.user, rcpts, "bench", string(body))
	if err != nil {
		// No commit: every authority server of the sender was down. The
		// closed loop retries after a think; nothing is owed to the ledger.
		return
	}
	e.submitted++
	rep.Submitted++
	rep.Copies += len(rcpts)
	e.committed = append(e.committed, id)
	e.aud.RecordSubmit(id, rcpts)
	e.touch(s.user)
	for _, u := range rcpts {
		e.touch(u)
	}
}

// sweep retrieves for every touched user; returns copies retrieved.
func (e *Engine) sweep(rep *Report) int {
	got := 0
	for _, u := range e.sweepList {
		res := e.drv.Retrieve(u)
		rep.Retrievals++
		rep.Polls += res.Polls
		rep.Duplicates += res.Duplicates
		e.aud.RecordRetrieve(u, res)
		got += len(res.IDs)
	}
	return got
}

// Run executes the closed loop: inject due faults, fire ready sessions,
// sweep retrievals, advance one tick — until the horizon is past and the
// message budget is spent — then drain, settle, and close the audit.
func (e *Engine) Run() Report {
	pop := e.drv.Population()
	pollStrict := e.cfg.Schedule == nil && e.OnTick == nil
	e.aud = NewAuditors(pop.AuthorityLen, pollStrict)
	var rep Report

	inj := e.drv.Injector()
	var events []faults.Event
	if e.cfg.Schedule != nil {
		events = e.cfg.Schedule.Events
	}
	nextEvent := 0

	// Hard cap: horizon plus a generous allowance of ticks per undrawn
	// message, so a stalled driver cannot loop forever.
	hardCap := e.cfg.Ticks + 4*e.cfg.Messages + 64
	tick := 0
	for tick < e.cfg.Ticks || e.submitted < e.cfg.Messages {
		if tick >= hardCap {
			break
		}
		for nextEvent < len(events) && events[nextEvent].Tick <= tick {
			_ = inj.Inject(events[nextEvent])
			nextEvent++
		}
		for _, s := range e.sessions {
			if tick >= s.next && e.submitted < e.cfg.Messages {
				e.fire(s, tick, &rep)
				s.next = tick + e.cfg.Workload.sampleThink(e.rng)
			}
		}
		if tick > 0 && tick%e.cfg.RetrieveEvery == 0 {
			e.sweep(&rep)
		}
		e.drv.Step(1)
		if e.OnTick != nil {
			e.OnTick(tick)
		}
		tick++
	}
	// Close any windows past the loop (cap exits only).
	for nextEvent < len(events) {
		_ = inj.Inject(events[nextEvent])
		nextEvent++
	}
	rep.Ticks = tick

	// Drain: settle in-flight work, then sweep until SettleRounds
	// consecutive sweeps retrieve nothing.
	e.drv.Settle()
	empty := 0
	for round := 0; round < e.cfg.MaxSettle && empty < e.cfg.SettleRounds; round++ {
		if e.sweep(&rep) == 0 {
			empty++
		} else {
			empty = 0
		}
		e.drv.Step(1)
		e.drv.Settle()
	}

	e.aud.FinishOutstanding()
	e.aud.RecordTraceGaps(e.drv.Tracer().Incomplete(e.committed))

	rep.Ok = e.aud.Ok()
	rep.Violations = e.aud.Counts()
	rep.Examples = e.aud.Violations()
	rep.Loads = e.drv.ServerLoads()
	return rep
}
