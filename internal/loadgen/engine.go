package loadgen

import (
	"math/rand"

	"github.com/largemail/largemail/internal/faults"
)

// Config parameterizes one closed-loop run.
type Config struct {
	Seed int64
	// Messages is the total message budget across all sessions (default
	// 200). The run keeps ticking past Ticks until the budget is spent.
	Messages int
	// Sessions is how many concurrent user sessions drive traffic (default
	// min(32, population size)). Session k is user k·stride, spreading the
	// senders evenly across hosts and regions.
	Sessions int
	// Ticks is the minimum horizon in schedule ticks; raised to the fault
	// schedule's horizon so every injected window closes inside the run
	// (default 50).
	Ticks int
	// RetrieveEvery is the sweep period: every touched user runs GetMail
	// once per this many ticks (default 4).
	RetrieveEvery int
	// Workload sets the per-message distributions.
	Workload Workload
	// Profile shapes the recipient draw over time (hot-spot, diurnal wave,
	// flash crowd). The zero value keeps the historical uniform draw.
	Profile Profile
	// Schedule, when non-nil, is a compiled fault schedule injected as its
	// ticks come due. Its presence disables the strict §3.1.2c poll audit —
	// extra polls during failures are the algorithm working as designed.
	Schedule *faults.Schedule
	// SettleRounds is how many consecutive empty retrieval sweeps end the
	// drain phase (default 3); MaxSettle caps the sweeps (default 200).
	SettleRounds int
	MaxSettle    int
}

func (c Config) withDefaults(pop Population) Config {
	if c.Messages <= 0 {
		c.Messages = 200
	}
	if c.Sessions <= 0 {
		c.Sessions = 32
	}
	if c.Sessions > pop.Users {
		c.Sessions = pop.Users
	}
	if c.Ticks <= 0 {
		c.Ticks = 50
	}
	if c.Schedule != nil && c.Schedule.Horizon() > c.Ticks {
		c.Ticks = c.Schedule.Horizon()
	}
	if c.RetrieveEvery <= 0 {
		c.RetrieveEvery = 4
	}
	c.Workload = c.Workload.withDefaults()
	if c.Profile.Kind != "" {
		c.Profile = c.Profile.withDefaults()
	}
	if c.SettleRounds <= 0 {
		c.SettleRounds = 3
	}
	if c.MaxSettle <= 0 {
		c.MaxSettle = 200
	}
	return c
}

// Report is what one engine run produced and proved.
type Report struct {
	Submitted  int  // messages committed
	Copies     int  // recipient copies committed (≥ Submitted)
	Retrievals int  // GetMail invocations
	Polls      int  // CheckMail calls across all retrievals
	Duplicates int  // agent-side dedup suppressions
	Ticks      int  // main-loop ticks actually run
	Migrations int  // placement migrations executed by the rebalance policy
	Ok         bool // zero auditor violations

	Violations map[string]int // violation totals by kind
	Examples   []string       // up to maxViolationDetail example violations
	Loads      []ServerLoad   // predicted vs observed per-server load
}

// session is one closed-loop user: send, think, send again.
type session struct {
	user int
	next int // tick of the next send
}

// Engine drives a Driver with a seeded closed-loop workload while the
// Auditors check the paper's invariants online. One engine, two transports:
// everything here is transport-agnostic.
type Engine struct {
	drv Driver
	cfg Config
	rng *rand.Rand
	aud *Auditors

	// OnTick, when set before Run, fires after each main-loop tick — the
	// hook reconfiguration tests use to add/remove servers or migrate users
	// mid-run. Setting it disables the strict poll audit (reconfiguration
	// legitimately forces extra polls).
	OnTick func(tick int)

	sessions  []*session
	touched   map[int]bool
	sweepList []int    // touched users, in first-touch order
	committed []string // message IDs owed complete traces
	submitted int
}

// New builds an engine over drv. Run may be called once.
func New(drv Driver, cfg Config) *Engine {
	pop := drv.Population()
	cfg = cfg.withDefaults(pop)
	e := &Engine{
		drv:     drv,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		touched: make(map[int]bool),
	}
	stride := pop.Users / cfg.Sessions
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < cfg.Sessions; k++ {
		u := (k * stride) % pop.Users
		e.sessions = append(e.sessions, &session{
			user: u,
			next: k % cfg.Workload.ThinkMax, // stagger first sends
		})
	}
	return e
}

// Auditors exposes the run's auditors (valid during OnTick and after Run).
func (e *Engine) Auditors() *Auditors { return e.aud }

// CreditRetrieved forwards out-of-band deliveries (e.g. a pre-migration
// drain) to the auditors so the no-loss ledger stays balanced.
func (e *Engine) CreditRetrieved(u int, ids []string) {
	e.touch(u)
	e.aud.CreditRetrieved(u, ids)
}

func (e *Engine) touch(u int) {
	if !e.touched[u] {
		e.touched[u] = true
		e.sweepList = append(e.sweepList, u)
	}
}

// pickRecipient draws one recipient ≠ from. The baseline draw is local to
// the sender's region with probability LocalBias; an active profile overrides
// the host choice — hot-spot and in-window flash draws concentrate on the
// hot host set, diurnal draws weight regions by the rolling wave.
func (e *Engine) pickRecipient(from, tick int) int {
	pop := e.drv.Population()
	prof := e.cfg.Profile
	for try := 0; try < 8; try++ {
		var gh int
		switch {
		case prof.active(tick) && prof.Kind != "diurnal" && e.rng.Float64() < prof.HotFraction:
			hot := prof.HotHosts
			if hot > pop.TotalHosts() {
				hot = pop.TotalHosts()
			}
			gh = e.rng.Intn(hot)
		case prof.active(tick) && prof.Kind == "diurnal":
			gh = e.diurnalHost(tick)
		case e.rng.Float64() < e.cfg.Workload.LocalBias:
			r := pop.RegionOf(from)
			gh = r*pop.HostsPerRegion + e.rng.Intn(pop.HostsPerRegion)
		default:
			gh = e.rng.Intn(pop.TotalHosts())
		}
		n := pop.UsersOnHost(gh)
		if n == 0 {
			continue
		}
		u := e.rng.Intn(n)*pop.TotalHosts() + gh
		if u != from && u < pop.Users {
			return u
		}
	}
	return (from + 1) % pop.Users
}

// diurnalHost samples a host with its region drawn from the wave weights.
func (e *Engine) diurnalHost(tick int) int {
	pop := e.drv.Population()
	total := 0.0
	weights := make([]float64, pop.Regions)
	for r := range weights {
		weights[r] = e.cfg.Profile.regionWeight(r, pop.Regions, tick)
		total += weights[r]
	}
	x := e.rng.Float64() * total
	r := 0
	for ; r < len(weights)-1; r++ {
		if x < weights[r] {
			break
		}
		x -= weights[r]
	}
	return r*pop.HostsPerRegion + e.rng.Intn(pop.HostsPerRegion)
}

// think samples the sender's pause until its next send; during a flash-crowd
// window everyone types as fast as they can.
func (e *Engine) think(tick int) int {
	if e.cfg.Profile.Kind == "flash" && e.cfg.Profile.active(tick) {
		return e.cfg.Workload.ThinkMin
	}
	return e.cfg.Workload.sampleThink(e.rng)
}

func (e *Engine) fire(s *session, tick int, rep *Report) {
	w := e.cfg.Workload
	n := w.sampleRecipients(e.rng)
	rcpts := make([]int, 0, n)
	seen := map[int]bool{s.user: true}
	for len(rcpts) < n {
		u := e.pickRecipient(s.user, tick)
		if seen[u] {
			break // small population: accept fewer recipients over looping
		}
		seen[u] = true
		rcpts = append(rcpts, u)
	}
	if len(rcpts) == 0 {
		return
	}
	body := make([]byte, w.sampleBody(e.rng))
	for i := range body {
		body[i] = 'a' + byte((i+tick)%26)
	}
	id, err := e.drv.Submit(s.user, rcpts, "bench", string(body))
	if err != nil {
		// No commit: every authority server of the sender was down. The
		// closed loop retries after a think; nothing is owed to the ledger.
		return
	}
	e.submitted++
	rep.Submitted++
	rep.Copies += len(rcpts)
	e.committed = append(e.committed, id)
	e.aud.RecordSubmit(id, rcpts)
	e.touch(s.user)
	for _, u := range rcpts {
		e.touch(u)
	}
}

// sweep retrieves for every touched user; returns copies retrieved.
func (e *Engine) sweep(rep *Report) int {
	got := 0
	for _, u := range e.sweepList {
		res := e.drv.Retrieve(u)
		rep.Retrievals++
		rep.Polls += res.Polls
		rep.Duplicates += res.Duplicates
		e.aud.RecordRetrieve(u, res)
		got += len(res.IDs)
	}
	return got
}

// Run executes the closed loop: inject due faults, fire ready sessions,
// sweep retrievals, advance one tick — until the horizon is past and the
// message budget is spent — then drain, settle, and close the audit.
func (e *Engine) Run() Report {
	pop := e.drv.Population()
	// An active rebalancer also relaxes the strict poll audit: every
	// migration hands the user a fresh authority list, whose first retrieval
	// legitimately polls the whole list.
	rb, _ := e.drv.(PlacementRebalancer)
	rebalancing := rb != nil && rb.RebalanceActive()
	pollStrict := e.cfg.Schedule == nil && e.OnTick == nil && !rebalancing
	e.aud = NewAuditors(pop.AuthorityLen, pollStrict)
	var rep Report

	inj := e.drv.Injector()
	var events []faults.Event
	if e.cfg.Schedule != nil {
		events = e.cfg.Schedule.Events
	}
	nextEvent := 0

	// Hard cap: horizon plus a generous allowance of ticks per undrawn
	// message, so a stalled driver cannot loop forever.
	hardCap := e.cfg.Ticks + 4*e.cfg.Messages + 64
	tick := 0
	for tick < e.cfg.Ticks || e.submitted < e.cfg.Messages {
		if tick >= hardCap {
			break
		}
		for nextEvent < len(events) && events[nextEvent].Tick <= tick {
			_ = inj.Inject(events[nextEvent])
			nextEvent++
		}
		for _, s := range e.sessions {
			if tick >= s.next && e.submitted < e.cfg.Messages {
				e.fire(s, tick, &rep)
				s.next = tick + e.think(tick)
			}
		}
		if tick > 0 && tick%e.cfg.RetrieveEvery == 0 {
			e.sweep(&rep)
		}
		e.drv.Step(1)
		if rebalancing {
			for _, m := range rb.RebalanceTick(tick) {
				if m.Moved {
					rep.Migrations++
				}
				if len(m.Drained) > 0 {
					e.CreditRetrieved(m.User, m.Drained)
				}
			}
		}
		if e.OnTick != nil {
			e.OnTick(tick)
		}
		tick++
	}
	// Close any windows past the loop (cap exits only).
	for nextEvent < len(events) {
		_ = inj.Inject(events[nextEvent])
		nextEvent++
	}
	rep.Ticks = tick

	// Drain: settle in-flight work, then sweep until SettleRounds
	// consecutive sweeps retrieve nothing.
	e.drv.Settle()
	empty := 0
	for round := 0; round < e.cfg.MaxSettle && empty < e.cfg.SettleRounds; round++ {
		if e.sweep(&rep) == 0 {
			empty++
		} else {
			empty = 0
		}
		e.drv.Step(1)
		e.drv.Settle()
	}

	e.aud.FinishOutstanding()
	e.aud.RecordTraceGaps(e.drv.Tracer().Incomplete(e.committed))

	rep.Ok = e.aud.Ok()
	rep.Violations = e.aud.Counts()
	rep.Examples = e.aud.Violations()
	rep.Loads = e.drv.ServerLoads()
	return rep
}
