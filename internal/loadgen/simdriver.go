package loadgen

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/client"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/queueing"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// Node ID layout for generated topologies. Hosts and servers get disjoint
// ranges sized for million-user populations (graph.HostBase/ServerBase are
// only 100 apart — too tight for 128 hosts).
const (
	simHostBase   graph.NodeID = 0
	simServerBase graph.NodeID = 1 << 20
)

// SimConfig configures a SimDriver.
type SimConfig struct {
	Seed int64
	Pop  Population
	// Tick is the virtual length of one schedule tick (default 10 units).
	Tick sim.Time
	// SpareServersPerRegion adds unwired server nodes to each region's
	// topology so AddServer reconfigurations have hardware to claim
	// (default 0).
	SpareServersPerRegion int
	// Retention is each server's mailbox clean-up policy (zero keeps all).
	Retention mail.Retention
	// BatchSize enables relay batching on every server: transfers to a
	// common destination coalesce into TransferBatch envelopes of up to this
	// many items (≤1 keeps the classic single-transfer path).
	BatchSize int
	// FlushInterval bounds how long a staged batch below the size watermark
	// may wait (default 2 sim units; only meaningful with BatchSize > 1).
	FlushInterval sim.Time
	// StoreShards overrides each server's mailbox-store shard count
	// (0 = mailstore.DefaultShards).
	StoreShards int
	// RetryTimeout overrides how long a server waits for a transfer (or
	// batch) ack before retrying (0 = server default). Large topologies
	// need this above their ack round-trip, or every distant transfer
	// retries — and every distant batch splits — spuriously.
	RetryTimeout sim.Time
	// DataDir, when set, makes every server's mailbox store durable: server
	// gs journals to DataDir/S<gs>, and the fault surface offers KillTargets
	// so a schedule may destroy in-memory state and restart from disk.
	DataDir string
	// Fsync is the WAL fsync policy when DataDir is set.
	Fsync mailstore.FsyncMode

	// Policy selects the placement policy ("static", "jsq", "rebalance").
	// Empty keeps the driver's historical hard-wired path — byte-identical
	// behavior, no gauges, no policy object at all. "static" routes the same
	// §3.1.1 lists through the placement.Policy seam (pinned equivalent).
	Policy string
	// JSQD is JSQ(d)'s sample width (0 = the classic d=2).
	JSQD int
	// ServiceRate is each server's service capacity in deposits per tick.
	// When > 0 the driver closes the feedback loop that gives online
	// policies something to win: per tick it estimates each server's
	// utilization ρ as EWMA(deposit arrivals)/ServiceRate, publishes it on
	// the "<server>.rho" gauge, and inflates the network delay of servers
	// pushed past ρ=1 — queueing delay, §2.2's "minimize the mail delay" in
	// observable form. Zero publishes placement-share ρ instead and leaves
	// delays alone.
	ServiceRate float64
	// MaxMigrationsPerTick / HysteresisBand tune the rebalancer (zero =
	// placement defaults: 32 moves/tick, ±25% band).
	MaxMigrationsPerTick int
	HysteresisBand       float64
}

// SimDriver drives the discrete-event transport: it builds its own regional
// topology (host spokes, intra-region server ring, inter-region ring), runs
// the §3.1.1 assignment per region to derive authority lists and predicted
// utilization, and materializes directories and agents lazily as the
// workload touches users — core.NewSyntax creates every agent eagerly,
// which a million-user population cannot afford.
type SimDriver struct {
	cfg   SimConfig
	pop   Population
	sched *sim.Scheduler
	net   *netsim.Network
	topo  *graph.Graph

	reg   *obs.Registry
	trace *obs.Tracer

	regionMap *server.RegionMap
	dirs      []*server.Directory  // per region
	assigns   []*assign.Assignment // per region
	maxLoad   int                  // per-server capacity M_j

	servers map[graph.NodeID]*server.Server
	active  []graph.NodeID                  // wired servers, sorted
	spares  [][]graph.NodeID                // per region, unwired spare nodes
	lists   map[graph.NodeID][]graph.NodeID // per-host authority lists, current

	hosts   map[graph.NodeID]*client.Host
	agents  map[int]*client.Agent
	nameOf  map[int]names.Name // overrides for migrated users
	hostIdx map[int]int        // overrides for migrated users' host index

	// Placement-policy state (nil/empty when cfg.Policy == "": the legacy
	// hard-wired path, untouched).
	policy    placement.Policy
	staticPol *placement.Static // base reference, for cache invalidation
	world     placement.World
	bySlot    []map[int]struct{} // per slot: materialized users homed there
	rehomed   map[int]int        // users moved off their static placement → tick of the move
	recv      map[int]int64      // per user: copies retrieved (the traffic signal migrations rank by)
	recvHost  map[int]int64      // per host: copies retrieved by its users (locates workload skew)
	prevDep   []int64            // per slot: deposits_local at last gauge tick
	arrEWMA   []float64          // per slot: smoothed deposit arrivals/tick
	ticks     int                // schedule ticks stepped so far (policy mode)
}

// NewSimDriver builds the simulated world for a population.
func NewSimDriver(cfg SimConfig) (*SimDriver, error) {
	cfg.Pop = cfg.Pop.withDefaults()
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * sim.Unit
	}
	if cfg.Policy != "" {
		if _, err := placement.ParseName(cfg.Policy); err != nil {
			return nil, err
		}
	}
	p := cfg.Pop
	d := &SimDriver{
		cfg:       cfg,
		pop:       p,
		sched:     sim.New(cfg.Seed),
		regionMap: server.NewRegionMap(),
		servers:   make(map[graph.NodeID]*server.Server),
		lists:     make(map[graph.NodeID][]graph.NodeID),
		hosts:     make(map[graph.NodeID]*client.Host),
		agents:    make(map[int]*client.Agent),
		nameOf:    make(map[int]names.Name),
		hostIdx:   make(map[int]int),
	}
	{
		p := cfg.Pop
		d.spares = make([][]graph.NodeID, p.Regions)
		slots := p.ServersPerRegion + cfg.SpareServersPerRegion
		for r := 0; r < p.Regions; r++ {
			for j := p.ServersPerRegion; j < slots; j++ {
				d.spares[r] = append(d.spares[r], d.serverID(r*slots+j))
			}
		}
	}
	d.reg = obs.NewRegistry()
	sched := d.sched
	d.trace = obs.NewTracer(func() int64 { return int64(sched.Now()) }, d.reg)

	d.topo = d.buildTopology()
	d.net = netsim.New(d.sched, d.topo)

	// Per-region assignment: balance user counts, then derive authority
	// lists and per-server predicted utilization.
	commW, procW, procTime := assign.PaperWeights()
	total := p.Users
	perServer := total / p.TotalServers()
	d.maxLoad = perServer + perServer/4 + 4 // ~25% headroom, as core derives
	for r := 0; r < p.Regions; r++ {
		hosts := d.regionHosts(r)
		servers := d.regionServers(r)
		users := make(map[graph.NodeID]int, len(hosts))
		for i, h := range hosts {
			users[h] = p.UsersOnHost(r*p.HostsPerRegion + i)
		}
		maxLoad := make(map[graph.NodeID]int, len(servers))
		for _, s := range servers {
			maxLoad[s] = d.maxLoad
		}
		a, err := assign.New(assign.Config{
			Topology: d.topo,
			Hosts:    hosts, Servers: servers,
			Users: users, MaxLoad: maxLoad,
			ProcTime: procTime, CommW: commW, ProcW: procW,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: region %d: %w", r, err)
		}
		a.Run()
		d.assigns = append(d.assigns, a)

		dir := server.NewDirectory(p.RegionName(r))
		dir.Instrument(d.reg) // rescache_hits/rescache_misses in Snapshot
		d.dirs = append(d.dirs, dir)
		for _, sv := range servers {
			srv, err := server.New(server.Config{
				ID: sv, Region: p.RegionName(r), Net: d.net,
				Dir: dir, Regions: d.regionMap,
				Retention: cfg.Retention, Trace: d.trace,
				BatchSize: cfg.BatchSize, FlushInterval: cfg.FlushInterval,
				StoreShards: cfg.StoreShards, RetryTimeout: cfg.RetryTimeout,
				DataDir: d.serverDataDir(sv), Fsync: cfg.Fsync,
				PlacementReroute: d.onlinePolicy(),
				SpreadRelay:      d.onlinePolicy(),
			})
			if err != nil {
				return nil, err
			}
			d.servers[sv] = srv
			d.active = append(d.active, sv)
		}
		for h, list := range a.AuthorityLists(p.AuthorityLen) {
			d.lists[h] = list
		}
		for _, h := range hosts {
			host, err := client.NewHost(d.net, h)
			if err != nil {
				return nil, err
			}
			d.hosts[h] = host
		}
	}
	sort.Slice(d.active, func(i, j int) bool { return d.active[i] < d.active[j] })
	if cfg.Policy != "" {
		if err := d.initPolicy(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// onlinePolicy reports whether the configured policy can change a user's
// placement after registration — the modes that need deposit-time re-routing
// on the servers.
func (d *SimDriver) onlinePolicy() bool {
	return d.cfg.Policy == placement.NameJSQ || d.cfg.Policy == placement.NameRebalance
}

// initPolicy builds the configured placement policy over the driver's
// §3.1.1 assignments. The policy world indexes the wired fleet only: servers
// added from the spare pool later keep working but stay outside JSQ sampling
// and rebalancing.
func (d *SimDriver) initPolicy() error {
	p := d.pop
	d.world = placement.World{
		Regions:          p.Regions,
		ServersPerRegion: p.ServersPerRegion,
		HostsPerRegion:   p.HostsPerRegion,
		AuthorityLen:     p.AuthorityLen,
	}
	static, err := placement.NewStatic(placement.StaticConfig{
		World:    d.world,
		Assigns:  d.assigns,
		HostNode: hostID,
		SlotOf:   d.nodeSlot,
	})
	if err != nil {
		return err
	}
	d.staticPol = static
	pcfg := placement.Config{
		World: d.world, Seed: d.cfg.Seed, D: d.cfg.JSQD,
		Gauges: d.reg, Label: d.slotLabel,
		MaxMigrationsPerTick: d.cfg.MaxMigrationsPerTick,
		HysteresisBand:       d.cfg.HysteresisBand,
	}
	switch d.cfg.Policy {
	case placement.NameJSQ:
		d.policy = placement.NewJSQ(static, pcfg)
	case placement.NameRebalance:
		d.policy = placement.NewRebalancer(static, pcfg)
	default:
		d.policy = static
	}
	n := d.world.TotalServers()
	d.bySlot = make([]map[int]struct{}, n)
	for i := range d.bySlot {
		d.bySlot[i] = make(map[int]struct{})
	}
	d.rehomed = make(map[int]int)
	d.recv = make(map[int]int64)
	d.recvHost = make(map[int]int64)
	d.prevDep = make([]int64, n)
	d.arrEWMA = make([]float64, n)
	d.refreshGauges() // publish zeros so JSQ's first samples resolve
	return nil
}

// slotNode maps a placement slot (region-major over wired servers) to its
// node ID; nodeSlot is the inverse (ok=false for spare-pool nodes, which are
// outside the policy world). slotLabel names a slot's instruments with the
// driver's raw server label, which counts spare slots — placement's default
// "S<slot>" would collide with a different server whenever spares exist.
func (d *SimDriver) slotNode(slot int) graph.NodeID {
	slots := d.pop.ServersPerRegion + d.cfg.SpareServersPerRegion
	return d.serverID(slot/d.pop.ServersPerRegion*slots + slot%d.pop.ServersPerRegion)
}

func (d *SimDriver) nodeSlot(id graph.NodeID) (int, bool) {
	raw := int(id - simServerBase - 1)
	slots := d.pop.ServersPerRegion + d.cfg.SpareServersPerRegion
	r, j := raw/slots, raw%slots
	if r < 0 || r >= d.pop.Regions || j >= d.pop.ServersPerRegion {
		return 0, false
	}
	return r*d.pop.ServersPerRegion + j, true
}

func (d *SimDriver) slotLabel(slot int) string {
	return serverLabel(int(d.slotNode(slot) - simServerBase - 1))
}

// hostID maps a global host index to its node ID; serverID likewise for a
// global server index (region r, slot j → r*ServersPerRegion+j; spare slots
// continue past the wired ones).
func hostID(gh int) graph.NodeID                  { return simHostBase + 1 + graph.NodeID(gh) }
func (d *SimDriver) serverID(gs int) graph.NodeID { return simServerBase + 1 + graph.NodeID(gs) }

func hostLabel(gh int) string   { return fmt.Sprintf("H%d", gh) }
func serverLabel(gs int) string { return fmt.Sprintf("S%d", gs) }

// serverDataDir returns the durable store directory for a server node, or
// "" (memory store) when the driver is not configured for durability.
func (d *SimDriver) serverDataDir(id graph.NodeID) string {
	if d.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(d.cfg.DataDir, serverLabel(int(id-simServerBase-1)))
}

// buildTopology wires a deterministic regional network: every host spokes
// into one of its region's servers (weight 1), the region's servers form a
// ring (weight 1) so every server pair has two disjoint routes, and region
// r's first server links to region r+1's (weight 2) closing an inter-region
// ring. Spare server nodes join their region's ring but stay unregistered.
func (d *SimDriver) buildTopology() *graph.Graph {
	p := d.pop
	g := graph.New()
	slots := p.ServersPerRegion + d.cfg.SpareServersPerRegion
	for r := 0; r < p.Regions; r++ {
		region := p.RegionName(r)
		for j := 0; j < slots; j++ {
			gs := r*slots + j
			g.MustAddNode(graph.Node{
				ID: d.serverID(gs), Label: serverLabel(gs),
				Region: region, Kind: graph.KindServer,
			})
		}
		for j := 0; j < slots; j++ {
			next := (j + 1) % slots
			if next == j {
				break // single-server region: no ring
			}
			g.MustAddEdge(d.serverID(r*slots+j), d.serverID(r*slots+next), 1)
			if slots == 2 {
				break // two servers: one edge, not a doubled ring
			}
		}
		for i := 0; i < p.HostsPerRegion; i++ {
			gh := r*p.HostsPerRegion + i
			g.MustAddNode(graph.Node{
				ID: hostID(gh), Label: hostLabel(gh),
				Region: region, Kind: graph.KindHost,
			})
			g.MustAddEdge(hostID(gh), d.serverID(r*slots+i%p.ServersPerRegion), 1)
		}
	}
	for r := 0; r < p.Regions && p.Regions > 1; r++ {
		next := (r + 1) % p.Regions
		if next == r {
			break
		}
		g.MustAddEdge(d.serverID(r*slots), d.serverID(next*slots), 2)
		if p.Regions == 2 {
			break
		}
	}
	return g
}

// regionHosts returns region r's host node IDs in index order.
func (d *SimDriver) regionHosts(r int) []graph.NodeID {
	out := make([]graph.NodeID, d.pop.HostsPerRegion)
	for i := range out {
		out[i] = hostID(r*d.pop.HostsPerRegion + i)
	}
	return out
}

// regionServers returns region r's wired (non-spare) server node IDs.
func (d *SimDriver) regionServers(r int) []graph.NodeID {
	slots := d.pop.ServersPerRegion + d.cfg.SpareServersPerRegion
	out := make([]graph.NodeID, d.pop.ServersPerRegion)
	for j := range out {
		out[j] = d.serverID(r*slots + j)
	}
	return out
}

// Scheduler exposes the simulation clock (tests advance and inspect it).
func (d *SimDriver) Scheduler() *sim.Scheduler { return d.sched }

// Network exposes the simulated network (tests inject faults directly).
func (d *SimDriver) Network() *netsim.Network { return d.net }

// Population implements Driver.
func (d *SimDriver) Population() Population { return d.pop }

// Tracer implements Driver.
func (d *SimDriver) Tracer() *obs.Tracer { return d.trace }

// UserName returns the user's current name (migrations rename).
func (d *SimDriver) UserName(u int) names.Name {
	if n, ok := d.nameOf[u]; ok {
		return n
	}
	return d.pop.Name(u)
}

// userHost returns the user's current global host index (migrations move).
func (d *SimDriver) userHost(u int) int {
	if gh, ok := d.hostIdx[u]; ok {
		return gh
	}
	return d.pop.HostOf(u)
}

// ensure materializes user u: a directory entry carrying the host's
// authority list (recipients must resolve before mail can route to them)
// and a lazily created agent.
func (d *SimDriver) ensure(u int) (*client.Agent, error) {
	if a, ok := d.agents[u]; ok {
		return a, nil
	}
	name := d.UserName(u)
	gh := d.userHost(u)
	h := hostID(gh)
	list := d.lists[h]
	if d.policy != nil {
		if slots := d.policy.Place(placement.User{Index: u, Host: gh}); len(slots) > 0 {
			static := list
			list = make([]graph.NodeID, len(slots))
			offStatic := len(slots) != len(static)
			for i, s := range slots {
				list[i] = d.slotNode(s)
				if !offStatic && list[i] != static[i] {
					offStatic = true
				}
			}
			d.bySlot[slots[0]][u] = struct{}{}
			if offStatic {
				// A load-aware placement (JSQ sample, admission diversion)
				// is a rehoming the moment it happens: refreshRegion must
				// not snap the user back to the static list on the next
				// reconfiguration — mail already sits on the chosen primary.
				d.rehomed[u] = d.ticks
			}
		}
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("loadgen: host %d has no authority list", h)
	}
	if err := d.dirs[gh/d.pop.HostsPerRegion].SetAuthority(name, list); err != nil {
		return nil, err
	}
	a, err := client.NewAgent(name, d.hosts[h], d.lookup, list)
	if err != nil {
		return nil, err
	}
	d.agents[u] = a
	return a, nil
}

func (d *SimDriver) lookup(id graph.NodeID) *server.Server { return d.servers[id] }

// Submit implements Driver: the sender's first live authority server
// accepts the message in-process (server.Submit), which is the commit
// point. No SubmitAck round-trip is scheduled — only the delivery pipeline
// runs on the simulator, so submission throughput scales with population.
func (d *SimDriver) Submit(from int, to []int, subject, body string) (string, error) {
	fa, err := d.ensure(from)
	if err != nil {
		return "", err
	}
	toNames := make([]names.Name, len(to))
	for i, u := range to {
		if _, err := d.ensure(u); err != nil {
			return "", err
		}
		toNames[i] = d.UserName(u)
	}
	for _, sv := range fa.Authority() {
		if !d.net.IsUp(sv) {
			continue
		}
		id, err := d.servers[sv].Submit(server.SubmitRequest{
			From: fa.User(), To: toNames, Subject: subject, Body: body,
		})
		if err != nil {
			return "", err
		}
		return id.String(), nil
	}
	return "", fmt.Errorf("loadgen: no live authority server for %v", fa.User())
}

// Retrieve implements Driver.
func (d *SimDriver) Retrieve(u int) RetrieveResult {
	a, err := d.ensure(u)
	if err != nil {
		return RetrieveResult{}
	}
	before := a.Stats()
	msgs := a.GetMail()
	after := a.Stats()
	if d.policy != nil {
		d.recv[u] += int64(len(msgs))
		d.recvHost[d.pop.HostOf(u)] += int64(len(msgs))
	}
	ids := make([]string, len(msgs))
	for i, m := range msgs {
		ids[i] = m.ID.String()
	}
	return RetrieveResult{
		IDs:          ids,
		Polls:        after.Polls - before.Polls,
		Duplicates:   after.Duplicates - before.Duplicates,
		LastChecking: int64(a.LastCheckingTime()),
	}
}

// Step implements Driver. With a placement policy configured, every tick
// also refreshes the per-server gauges the policies observe and, when
// ServiceRate closes the loop, the congestion delays.
func (d *SimDriver) Step(n int) {
	if d.policy == nil {
		d.sched.RunFor(sim.Time(n) * d.cfg.Tick)
		return
	}
	for i := 0; i < n; i++ {
		d.sched.RunFor(d.cfg.Tick)
		d.ticks++
		d.refreshGauges()
	}
}

// ewmaAlpha smooths per-tick deposit arrivals into the ρ estimate: high
// enough to track a flash crowd within a few ticks, low enough that one
// bursty tick does not trigger migrations on its own.
const ewmaAlpha = 0.3

// refreshGauges publishes each wired server's observability gauges —
// "<label>.qdepth" (deposits − retrievals: mail buffered awaiting pickup),
// "<label>.rho" (utilization, RhoScale fixed-point) and "<label>.placed"
// (users homed there) — and, when ServiceRate > 0, applies the congestion
// feedback: a server with ρ>1 gets extra per-message delay proportional to
// its overload (capped at 4 ticks), which is what makes hot placement
// decisions visibly slow and gives the online policies their signal.
func (d *SimDriver) refreshGauges() {
	for slot := 0; slot < d.world.TotalServers(); slot++ {
		id := d.slotNode(slot)
		srv, ok := d.servers[id]
		if !ok {
			continue // removed from service
		}
		label := d.slotLabel(slot)
		dep := srv.Stats().Get("deposits_local")
		d.reg.Gauge(label + ".qdepth").Set(dep - srv.Stats().Get("retrieved_msgs"))
		d.arrEWMA[slot] = ewmaAlpha*float64(dep-d.prevDep[slot]) + (1-ewmaAlpha)*d.arrEWMA[slot]
		d.prevDep[slot] = dep
		var rho float64
		if d.cfg.ServiceRate > 0 {
			rho = d.arrEWMA[slot] / d.cfg.ServiceRate
		} else if d.maxLoad > 0 {
			rho = float64(len(d.bySlot[slot])) / float64(d.maxLoad)
		}
		fixed := int64(rho * placement.RhoScale)
		d.reg.Gauge(label + ".rho").Set(fixed)
		// Peak ρ survives the drain phase (where the EWMA decays to zero),
		// so post-run reports see how hot the run actually got.
		if peak := d.reg.Gauge(label + ".rho_peak"); fixed > peak.Value() {
			peak.Set(fixed)
		}
		d.reg.Gauge(label + ".placed").Set(int64(len(d.bySlot[slot])))
		if d.cfg.ServiceRate > 0 {
			var extra sim.Time
			if over := rho - 1; over > 0 {
				if over > 4 {
					over = 4
				}
				extra = sim.Time(over * float64(d.cfg.Tick))
			}
			d.net.SetExtraDelay(id, extra)
		}
	}
}

// Settle implements Driver: run the simulator to quiescence so retry timers
// and in-flight transfers complete.
func (d *SimDriver) Settle() { d.sched.Run() }

// Snapshot implements Driver: the tracer-fed latency histograms plus the
// network's and servers' counters (prefixed net_/srv_).
func (d *SimDriver) Snapshot() obs.Snapshot {
	snap := d.reg.Snapshot()
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	for k, v := range d.net.Stats().Counters() {
		snap.Counters["net_"+k] = v
	}
	for _, id := range d.active {
		for k, v := range d.servers[id].Stats().Counters() {
			snap.Counters["srv_"+k] += v
		}
	}
	return snap
}

// Injector implements Driver. Kill/Restart events need the server handle,
// not just the network node — a network crash alone cannot destroy and
// recover mailbox state — so the target carries every active server.
func (d *SimDriver) Injector() faults.Injector {
	nodes := make(map[string]graph.NodeID)
	slots := d.pop.ServersPerRegion + d.cfg.SpareServersPerRegion
	for gh := 0; gh < d.pop.TotalHosts(); gh++ {
		nodes[hostLabel(gh)] = hostID(gh)
	}
	for gs := 0; gs < d.pop.Regions*slots; gs++ {
		nodes[serverLabel(gs)] = d.serverID(gs)
	}
	tgt := faults.NewSimTarget(d.net, nodes, d.cfg.Tick)
	tgt.Servers = make(map[string]faults.KillRestarter, len(d.active))
	for _, id := range d.active {
		tgt.Servers[serverLabel(int(id-simServerBase-1))] = d.servers[id]
	}
	return tgt
}

// FaultSurface implements Driver. Safety constraints baked in:
//
//   - Crash/latency candidates: every wired server. Crashes are covered by
//     transfer retries plus GetMail's LastStartTime walk; injected latency
//     may double-send a transfer, which mailbox dedup absorbs.
//   - Drop targets: HOST nodes only. A server-bound drop would make a retry
//     fail over past a live, stable authority server, stranding mail beyond
//     where the recipient's GetMail walk stops (see chaos_test.go); with
//     in-process submission the only host-bound traffic is Notify, which no
//     invariant depends on.
//   - Link candidates: intra-region ring edges only, and only in regions
//     with ≥3 servers, where the ring gives every server pair a second
//     route — a host's spoke edge would partition it outright.
func (d *SimDriver) FaultSurface() faults.Spec {
	p := d.pop
	slots := p.ServersPerRegion + d.cfg.SpareServersPerRegion
	spec := faults.Spec{}
	for _, id := range d.active {
		gs := int(id - simServerBase - 1)
		spec.Servers = append(spec.Servers, serverLabel(gs))
	}
	for gh := 0; gh < p.TotalHosts(); gh++ {
		spec.DropTargets = append(spec.DropTargets, hostLabel(gh))
	}
	if p.ServersPerRegion >= 3 {
		for r := 0; r < p.Regions; r++ {
			for j := 0; j < p.ServersPerRegion; j++ {
				next := (j + 1) % p.ServersPerRegion
				if next == j {
					break
				}
				spec.Links = append(spec.Links, [2]string{
					serverLabel(r*slots + j), serverLabel(r*slots + next),
				})
				// Only ring edges between wired servers are safe; with
				// spares present the wrap edge j=SPR-1 → 0 runs through
				// spare slots in the topology, so stop before it.
				if d.cfg.SpareServersPerRegion > 0 && next == 0 {
					break
				}
			}
		}
	}
	// Kill-restart only survives a durable store; a memory-only driver must
	// not offer targets (Compile would schedule guaranteed data loss).
	if d.cfg.DataDir != "" {
		spec.KillTargets = append([]string(nil), spec.Servers...)
	}
	return spec
}

// DurabilityStats sums the cumulative WAL write-path counters across every
// active server, including stores replaced by kill-restart cycles; ok is
// false on a memory-only driver.
func (d *SimDriver) DurabilityStats() (mailstore.WALStats, bool) {
	var sum mailstore.WALStats
	any := false
	for _, id := range d.active {
		st, ok := d.servers[id].WALStats()
		if !ok {
			continue
		}
		any = true
		sum.Add(st)
	}
	return sum, any
}

// Close syncs and closes every server's durable store (no-op for memory
// stores). The simulated network needs no teardown.
func (d *SimDriver) Close() error {
	var first error
	for _, id := range d.active {
		if err := d.servers[id].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ServerLoads implements Driver: the per-region assignment's predicted
// utilization next to the deposits each server actually served.
func (d *SimDriver) ServerLoads() []ServerLoad {
	var out []ServerLoad
	for r, a := range d.assigns {
		loads := a.Loads()
		ids := make([]graph.NodeID, 0, len(loads))
		for id := range loads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rho := a.Utilization(id)
			sl := ServerLoad{
				Name:    serverLabel(int(id - simServerBase - 1)),
				Region:  d.pop.RegionName(r),
				Load:    loads[id],
				MaxLoad: d.maxLoad,
				Rho:     rho,
				QWait:   queueing.Wait(rho),
			}
			if srv, ok := d.servers[id]; ok {
				sl.Deposits = srv.Stats().Get("deposits_local")
			}
			out = append(out, sl)
		}
	}
	return out
}

// RebalanceActive implements PlacementRebalancer: only the rebalance policy
// migrates on ticks.
func (d *SimDriver) RebalanceActive() bool {
	return d.policy != nil && d.policy.Name() == placement.NameRebalance
}

// RebalanceTick implements PlacementRebalancer: consult the policy with the
// current snapshot and execute the migrations it emits through the §3.1.4
// machinery. Returns one result per user whose authority list changed or
// whose drain surfaced messages (the engine credits those to its ledger).
func (d *SimDriver) RebalanceTick(tick int) []MigrationResult {
	if d.policy == nil {
		return nil
	}
	migs := d.policy.Rebalance(d.Snapshot())
	var out []MigrationResult
	for _, mg := range migs {
		users, weights, total := rankByHeat(d.usersOnSlot(mg.From),
			d.recv, d.recvHost, d.pop.HostOf, d.pop.UsersOnHost)
		target := mg.Frac * total
		var shed float64
		moved := 0
		for i, u := range users {
			if moved >= mg.Count || (target > 0 && shed >= target) {
				break
			}
			if last, ok := d.rehomed[u]; ok && tick-last < migrationCooldown {
				continue // recently moved; let the load observation settle
			}
			res := d.migrateToSlot(u, mg.From, mg.To, tick)
			if res.Moved {
				moved++
				shed += weights[i]
			}
			if res.Moved || len(res.Drained) > 0 {
				out = append(out, res)
			}
		}
	}
	return out
}

// usersOnSlot returns the materialized users homed on a slot, sorted for
// deterministic migration order.
func (d *SimDriver) usersOnSlot(slot int) []int {
	if slot < 0 || slot >= len(d.bySlot) {
		return nil
	}
	out := make([]int, 0, len(d.bySlot[slot]))
	for u := range d.bySlot[slot] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// migrateToSlot re-homes one user's mailbox service onto slot to — the
// §3.1.4 handover, ordered so no message can strand:
//
//  1. Re-register: swap the directory to a fresh list led by the target
//     whose backups come from OUTSIDE the old list. From this instant every
//     transfer still in the network addressed under the old placement is
//     misplaced on arrival and re-routes to the new list (the servers'
//     deposit-time redirect, Config.PlacementReroute).
//  2. Drain: empty the old mailboxes server-side. Both steps run inside the
//     driver with no simulator event in between, so nothing can land on an
//     old server after its drain.
//
// Draining first (through the agent's walk) and swapping after — the naive
// order — leaves a window where an in-flight transfer lands on an old server
// the §3.1.2c walk will never revisit, because the walk stops at the first
// live stable server: the new primary.
//
// The migration is refused — not deferred, the next tick retries naturally —
// while any involved server is down or the user's walk still owes visits to
// recovered servers, because a drain under those conditions cannot prove the
// old mailboxes are empty.
func (d *SimDriver) migrateToSlot(u, from, to, tick int) MigrationResult {
	res := MigrationResult{User: u}
	a := d.agents[u]
	if a == nil {
		return res
	}
	toNode := d.slotNode(to)
	if !d.net.IsUp(toNode) {
		return res
	}
	old := a.Authority()
	for _, sv := range old {
		if !d.net.IsUp(sv) {
			return res
		}
	}
	if len(a.PreviouslyUnavailable()) > 0 {
		return res
	}
	newList := d.migrationList(to, old)
	name := d.UserName(u)
	r := d.regionIndex(name.Region)
	if err := d.dirs[r].SetAuthority(name, newList); err != nil {
		return res
	}
	var drainedIDs []mail.MessageID
	for _, sv := range old {
		srv, ok := d.servers[sv]
		if !ok {
			continue
		}
		// Drain with the agent's dedup set: straggler copies (re-routed
		// retries of mail the user already has) are removed but neither
		// stamped nor credited.
		for _, m := range srv.DrainMailbox(name, a.Seen) {
			drainedIDs = append(drainedIDs, m.ID)
		}
	}
	// The agent never saw the drain — seed its duplicate suppression, or a
	// later straggler of a drained message would deliver as fresh.
	for _, id := range a.NoteDelivered(drainedIDs) {
		res.Drained = append(res.Drained, id.String())
	}
	d.recv[u] += int64(len(res.Drained)) // drained mail is traffic too
	d.recvHost[d.pop.HostOf(u)] += int64(len(res.Drained))
	if err := a.SetAuthority(newList); err != nil {
		// Roll the directory back; the drained mail re-deposits nowhere, but
		// the engine ledger is credited by the caller either way.
		_ = d.dirs[r].SetAuthority(name, old)
		return res
	}
	delete(d.bySlot[from], u)
	d.bySlot[to][u] = struct{}{}
	d.rehomed[u] = tick
	res.Moved = true
	d.reg.Counter("migrations_total").Inc()
	d.reg.Counter("migration_cost").Add(int64(len(res.Drained)))
	return res
}

// migrationList builds the §3.1.4 re-registration list: the target first,
// then backups drawn from the target's region EXCLUDING every old server, so
// in-flight transfers addressed under the old placement are recognizably
// misplaced wherever they land. In a region too small to avoid the old
// servers the list may be shorter than AuthorityLen — correctness over
// redundancy for the (rare) migrated user.
func (d *SimDriver) migrationList(to int, old []graph.NodeID) []graph.NodeID {
	oldSet := make(map[graph.NodeID]bool, len(old))
	for _, sv := range old {
		oldSet[sv] = true
	}
	toNode := d.slotNode(to)
	list := []graph.NodeID{toNode}
	r := d.world.RegionOfSlot(to)
	spr := d.world.ServersPerRegion
	for i := 1; i < spr && len(list) < d.pop.AuthorityLen; i++ {
		slot := r*spr + (to%spr+i)%spr
		id := d.slotNode(slot)
		if id == toNode || oldSet[id] || !d.net.IsUp(id) {
			continue
		}
		list = append(list, id)
	}
	return list
}

// refreshRegion pushes region r's recomputed authority lists into the
// per-host cache, the directory entries of every materialized user, and
// their live agents — the §3.1.3 reconfiguration broadcast.
func (d *SimDriver) refreshRegion(r int) error {
	if d.staticPol != nil {
		d.staticPol.Invalidate(r) // the assignment behind the policy changed
	}
	lists := d.assigns[r].AuthorityLists(d.pop.AuthorityLen)
	for h, list := range lists {
		d.lists[h] = list
	}
	inService := make(map[graph.NodeID]bool, len(lists))
	for id := range d.assigns[r].Loads() {
		inService[id] = true
	}
	for u, a := range d.agents {
		name := d.UserName(u)
		if name.Region != d.pop.RegionName(r) {
			continue
		}
		list := lists[hostID(d.userHost(u))]
		if _, moved := d.rehomed[u]; moved {
			// A rebalanced user keeps the list the policy gave them; the
			// reconfiguration only strips servers leaving service. If that
			// empties the list, fall back to the recomputed static one.
			kept := make([]graph.NodeID, 0, len(a.Authority()))
			for _, sv := range a.Authority() {
				if inService[sv] {
					kept = append(kept, sv)
				}
			}
			if len(kept) > 0 {
				list = kept
			}
		}
		if len(list) == 0 {
			continue
		}
		if err := d.dirs[r].SetAuthority(name, list); err != nil {
			return err
		}
		if err := a.SetAuthority(list); err != nil {
			return err
		}
	}
	return nil
}

// AddServer wires one of region r's spare server nodes into service
// (§3.1.3c): the server process starts, the assignment rebalances onto it,
// and every materialized user's authority list refreshes. Returns the new
// server's label.
func (d *SimDriver) AddServer(r int) (string, error) {
	if r < 0 || r >= d.pop.Regions {
		return "", fmt.Errorf("loadgen: no region %d", r)
	}
	if len(d.spares[r]) == 0 {
		return "", errors.New("loadgen: region has no spare server node")
	}
	var id graph.NodeID
	id, d.spares[r] = d.spares[r][0], d.spares[r][1:]
	srv, err := server.New(server.Config{
		ID: id, Region: d.pop.RegionName(r), Net: d.net,
		Dir: d.dirs[r], Regions: d.regionMap,
		Retention: d.cfg.Retention, Trace: d.trace,
		BatchSize: d.cfg.BatchSize, FlushInterval: d.cfg.FlushInterval,
		StoreShards: d.cfg.StoreShards, RetryTimeout: d.cfg.RetryTimeout,
		DataDir: d.serverDataDir(id), Fsync: d.cfg.Fsync,
		PlacementReroute: d.onlinePolicy(),
		SpreadRelay:      d.onlinePolicy(),
	})
	if err != nil {
		return "", err
	}
	d.servers[id] = srv
	d.active = append(d.active, id)
	sort.Slice(d.active, func(i, j int) bool { return d.active[i] < d.active[j] })
	if _, err := d.assigns[r].AddServer(id, d.maxLoad); err != nil {
		return "", err
	}
	if err := d.refreshRegion(r); err != nil {
		return "", err
	}
	return serverLabel(int(id - simServerBase - 1)), nil
}

// RemoveServer deletes a server (§3.1.3c): the assignment rebalances its
// users away, authority lists refresh so nothing new routes to it, then the
// server drains — in-flight traffic settles, buffered mail evacuates to the
// recipients' remaining authority servers — and the node deregisters. The
// freed node returns to the region's spare pool.
func (d *SimDriver) RemoveServer(label string) error {
	var id graph.NodeID
	found := false
	for _, sv := range d.active {
		if serverLabel(int(sv-simServerBase-1)) == label {
			id, found = sv, true
			break
		}
	}
	if !found {
		return fmt.Errorf("loadgen: no active server %q", label)
	}
	srv := d.servers[id]
	r := d.regionIndex(srv.Region())
	if len(d.regionMap.Servers(srv.Region())) <= 1 {
		return errors.New("loadgen: cannot remove a region's last server")
	}
	if _, err := d.assigns[r].RemoveServer(id); err != nil {
		return err
	}
	if err := d.refreshRegion(r); err != nil {
		return err
	}
	d.regionMap.RemoveServer(srv.Region(), id)
	// Drain: let in-flight transfers settle, evacuate buffered mail, and
	// repeat until a settle round leaves the server empty — a transfer
	// already headed here may deposit after the first evacuation.
	for i := 0; i < 16; i++ {
		d.sched.Run()
		if srv.Evacuate() == 0 && srv.PendingTransfers() == 0 {
			break
		}
	}
	d.net.Deregister(id)
	delete(d.servers, id)
	for i, sv := range d.active {
		if sv == id {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	if d.spares == nil {
		d.spares = make([][]graph.NodeID, d.pop.Regions)
	}
	d.spares[r] = append(d.spares[r], id)
	return nil
}

func (d *SimDriver) regionIndex(region string) int {
	for r := 0; r < d.pop.Regions; r++ {
		if d.pop.RegionName(r) == region {
			return r
		}
	}
	return -1
}

// MigrateUser moves user u to another global host, following §3.1.4: drain
// mail under the old name, register the renamed user at the destination
// (rebalancing it in), delete the old registration, and leave a redirect
// for in-flight senders still using the old name. Returns the IDs drained
// pre-migration so the caller can credit them to the retrieval ledger.
func (d *SimDriver) MigrateUser(u, newHost int) (drained []string, err error) {
	if newHost < 0 || newHost >= d.pop.TotalHosts() {
		return nil, fmt.Errorf("loadgen: no host %d", newHost)
	}
	a, err := d.ensure(u)
	if err != nil {
		return nil, err
	}
	// Quiesce in-flight deliveries, then drain: a transfer addressed to the
	// old name that lands after the handover would strand in a mailbox the
	// renamed user no longer polls.
	d.sched.Run()
	for _, m := range a.GetMail() {
		drained = append(drained, m.ID.String())
	}

	old := d.UserName(u)
	oldHost := d.userHost(u)
	oldR := oldHost / d.pop.HostsPerRegion
	newR := newHost / d.pop.HostsPerRegion
	newName := old.Rename(d.pop.RegionName(newR), fmt.Sprintf("h%d", newHost))

	if _, err := d.assigns[newR].AddUsers(hostID(newHost), 1); err != nil {
		return drained, err
	}
	list := d.assigns[newR].AuthorityLists(d.pop.AuthorityLen)[hostID(newHost)]
	if err := d.dirs[newR].SetAuthority(newName, list); err != nil {
		return drained, err
	}
	na, err := client.NewAgent(newName, d.hosts[hostID(newHost)], d.lookup, list)
	if err != nil {
		return drained, err
	}

	if _, err := d.assigns[oldR].RemoveUsers(hostID(oldHost), 1); err != nil {
		return drained, err
	}
	if err := d.dirs[oldR].SetAuthority(old, nil); err != nil {
		return drained, err
	}
	if err := d.dirs[oldR].SetRedirect(old, newName); err != nil {
		return drained, err
	}
	d.agents[u] = na
	d.nameOf[u] = newName
	d.hostIdx[u] = newHost
	if d.policy != nil {
		// AddUsers/RemoveUsers changed both regions' assignments, and the
		// migrated user is back on their static placement at the new host.
		d.staticPol.Invalidate(oldR)
		d.staticPol.Invalidate(newR)
		for slot := range d.bySlot {
			delete(d.bySlot[slot], u)
		}
		if s, ok := d.nodeSlot(list[0]); ok {
			d.bySlot[s][u] = struct{}{}
		}
		delete(d.rehomed, u)
	}
	return drained, nil
}
