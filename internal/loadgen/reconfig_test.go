package loadgen

import (
	"testing"
)

// TestReconfigUnderLoad exercises the §3.1.3 reconfiguration operations —
// server addition, user migration (§3.1.4), and server deletion — while the
// closed-loop population is actively submitting and retrieving. The auditors
// are the oracle: every committed copy must still be retrieved exactly once
// (including mail drained during migration and mail evacuated off a deleted
// server), LastCheckingTime stays monotone per user, and the post-run
// assignment still respects every server's capacity.
func TestReconfigUnderLoad(t *testing.T) {
	drv, err := NewSimDriver(SimConfig{
		Seed: 11,
		Pop: Population{
			Users:            240,
			Regions:          2,
			ServersPerRegion: 3,
			AuthorityLen:     2,
		},
		SpareServersPerRegion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := drv.Population()

	// The migration victim: a region-0 user moved to a region-1 host.
	victim := 2
	if pop.RegionOf(victim) != 0 {
		t.Fatalf("test setup: user %d not in region 0", victim)
	}
	newHost := pop.HostsPerRegion // first host of region 1
	removeTarget := drv.ServerLoads()[0].Name

	eng := New(drv, Config{
		Seed:          11,
		Messages:      150,
		Sessions:      16,
		Ticks:         80,
		RetrieveEvery: 4,
	})
	var added string
	var migrated, removed bool
	eng.OnTick = func(tick int) {
		switch tick {
		case 20:
			label, err := drv.AddServer(0)
			if err != nil {
				t.Fatalf("tick %d AddServer: %v", tick, err)
			}
			added = label
		case 36:
			drained, err := drv.MigrateUser(victim, newHost)
			if err != nil {
				t.Fatalf("tick %d MigrateUser: %v", tick, err)
			}
			// Mail drained under the old name was committed; credit it so
			// the no-loss ledger knows it reached the user.
			eng.CreditRetrieved(victim, drained)
			migrated = true
		case 52:
			if err := drv.RemoveServer(removeTarget); err != nil {
				t.Fatalf("tick %d RemoveServer(%s): %v", tick, removeTarget, err)
			}
			removed = true
		}
	}
	rep := eng.Run()

	if !migrated || !removed || added == "" {
		t.Fatalf("reconfig ops did not all fire: added=%q migrated=%v removed=%v",
			added, migrated, removed)
	}
	if !rep.Ok {
		t.Fatalf("auditors flagged violations under reconfig: %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}
	if rep.Submitted != 150 {
		t.Errorf("Submitted = %d, want 150", rep.Submitted)
	}

	// The migration really happened: the victim resolves to a region-1 name.
	if got := drv.UserName(victim); got.Region != pop.RegionName(1) {
		t.Errorf("migrated user resolves to %v, want region %s", got, pop.RegionName(1))
	}

	// Assignment invariants after add + migrate + delete: the deleted server
	// is gone from the load table, the added one is present, no server is
	// over capacity, and the whole population is still assigned somewhere.
	total := 0
	for _, sl := range rep.Loads {
		if sl.Name == removeTarget {
			t.Errorf("deleted server %s still in load table", sl.Name)
		}
		if sl.Load > sl.MaxLoad {
			t.Errorf("server %s over capacity: %d > %d", sl.Name, sl.Load, sl.MaxLoad)
		}
		total += sl.Load
	}
	if total != pop.Users {
		t.Errorf("assigned users = %d, want %d", total, pop.Users)
	}
	foundAdded := false
	for _, sl := range rep.Loads {
		if sl.Name == added {
			foundAdded = true
		}
	}
	if !foundAdded {
		t.Errorf("added server %s missing from load table", added)
	}
	if len(rep.Loads) != pop.TotalServers() {
		t.Errorf("load table has %d servers, want %d (add and delete should cancel)",
			len(rep.Loads), pop.TotalServers())
	}
}
