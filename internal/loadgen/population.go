// Package loadgen is the repository's closed-loop workload engine: it
// synthesizes a user population with regional locality, drives seeded
// submit/retrieve traffic through a mail system behind the Driver interface
// (netsim event-time via SimDriver, livenet wall-clock via LiveDriver), and
// audits the paper's correctness claims online while it measures.
//
// The ROADMAP's north star is "heavy traffic from millions of users"; the
// population here is therefore virtual: users are integer indices with an
// O(1) index → (region, host) mapping, and only users actually touched by
// the workload (senders, recipients) materialize directories and agents.
// That is what lets a single process drive a million-user population — the
// same trick the paper's own evaluation plays by simulating user counts
// rather than user processes (§3.1.1 balances user *counts* per host).
//
// The invariant auditors (Auditors) layer on the existing obs tracer and
// the faults soak's ledger discipline: exactly-once deposit per recipient
// copy, no loss of committed messages across injected crashes, monotone
// LastCheckingTime per user, and §3.1.2c's "≈1 poll per retrieval when
// failure-free" guarantee — all checked during the run, not post-hoc.
package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/largemail/largemail/internal/names"
)

// Population describes the shape of a synthetic user population. Users are
// virtual indices in [0, Users); user u lives on global host u mod
// TotalHosts, and hosts are grouped HostsPerRegion per region — so
// consecutive user indices spread round-robin across every host and region.
type Population struct {
	Users            int // population size (virtual; only touched users materialize)
	Regions          int // default 2
	HostsPerRegion   int // default 2 × ServersPerRegion
	ServersPerRegion int // default 4
	// AuthorityLen is the per-user authority-list length, clamped to
	// ServersPerRegion (default 2).
	AuthorityLen int
}

func (p Population) withDefaults() Population {
	if p.Users <= 0 {
		p.Users = 1000
	}
	if p.Regions <= 0 {
		p.Regions = 2
	}
	if p.ServersPerRegion <= 0 {
		p.ServersPerRegion = 4
	}
	if p.HostsPerRegion <= 0 {
		p.HostsPerRegion = 2 * p.ServersPerRegion
	}
	if p.AuthorityLen <= 0 {
		p.AuthorityLen = 2
	}
	if p.AuthorityLen > p.ServersPerRegion {
		p.AuthorityLen = p.ServersPerRegion
	}
	return p
}

// TotalHosts returns the number of host machines across all regions.
func (p Population) TotalHosts() int { return p.Regions * p.HostsPerRegion }

// TotalServers returns the number of mail servers across all regions.
func (p Population) TotalServers() int { return p.Regions * p.ServersPerRegion }

// HostOf maps a user index to its global host index.
func (p Population) HostOf(u int) int { return u % p.TotalHosts() }

// RegionOf maps a user index to its region index.
func (p Population) RegionOf(u int) int { return p.HostOf(u) / p.HostsPerRegion }

// UsersOnHost reports how many users the population homes on a global host
// index — the N_i counts the §3.1.1 assignment balances.
func (p Population) UsersOnHost(gh int) int {
	t := p.TotalHosts()
	n := p.Users / t
	if gh < p.Users%t {
		n++
	}
	return n
}

// Name returns the user's syntax-directed name: region Rr, host token hg,
// user token u<index>.
func (p Population) Name(u int) names.Name {
	return names.Name{
		Region: fmt.Sprintf("R%d", p.RegionOf(u)),
		Host:   fmt.Sprintf("h%d", p.HostOf(u)),
		User:   fmt.Sprintf("u%d", u),
	}
}

// RegionName returns the token for a region index.
func (p Population) RegionName(r int) string { return fmt.Sprintf("R%d", r) }

// UserIndex inverts Name: the population index behind a syntax-directed
// name's user token ("u<index>"), with false for tokens that are not a
// valid index in this population. The typed counterpart drivers use instead
// of reparsing name strings by hand.
func (p Population) UserIndex(n names.Name) (int, bool) {
	tok := n.User
	if len(tok) < 2 || tok[0] != 'u' {
		return 0, false
	}
	u, err := strconv.Atoi(tok[1:])
	if err != nil || u < 0 || u >= p.Users {
		return 0, false
	}
	return u, true
}

// Workload describes the per-message distributions of the closed-loop
// sessions: how many recipients, how large a body, how long a user thinks
// between sends, and how regionally local their correspondents are.
type Workload struct {
	// MaxRecipients caps the per-message recipient count; counts are drawn
	// 1..MaxRecipients with a geometric-ish decay (default 3).
	MaxRecipients int
	// LocalBias is the probability that each recipient lives in the
	// sender's region (default 0.8 — the locality assumption behind the
	// paper's regional partitioning, §3.1.2b).
	LocalBias float64
	// MinBody/MaxBody bound the message body size in bytes (defaults 64
	// and 2048).
	MinBody, MaxBody int
	// ThinkMin/ThinkMax bound a session's think time between sends, in
	// schedule ticks (defaults 3 and 12).
	ThinkMin, ThinkMax int
}

func (w Workload) withDefaults() Workload {
	if w.MaxRecipients <= 0 {
		w.MaxRecipients = 3
	}
	if w.LocalBias <= 0 || w.LocalBias > 1 {
		w.LocalBias = 0.8
	}
	if w.MinBody <= 0 {
		w.MinBody = 64
	}
	if w.MaxBody < w.MinBody {
		w.MaxBody = 2048
		if w.MaxBody < w.MinBody {
			w.MaxBody = w.MinBody
		}
	}
	if w.ThinkMin <= 0 {
		w.ThinkMin = 3
	}
	if w.ThinkMax < w.ThinkMin {
		w.ThinkMax = 12
		if w.ThinkMax < w.ThinkMin {
			w.ThinkMax = w.ThinkMin
		}
	}
	return w
}

// sampleRecipients draws a recipient count in [1, MaxRecipients]: each
// additional recipient survives with probability 0.4, so most mail is
// person-to-person with a decaying multi-recipient tail.
func (w Workload) sampleRecipients(rng *rand.Rand) int {
	n := 1
	for n < w.MaxRecipients && rng.Float64() < 0.4 {
		n++
	}
	return n
}

// sampleBody draws a body size in [MinBody, MaxBody], skewed small by
// taking the minimum of two uniform draws.
func (w Workload) sampleBody(rng *rand.Rand) int {
	span := w.MaxBody - w.MinBody + 1
	a, b := rng.Intn(span), rng.Intn(span)
	if b < a {
		a = b
	}
	return w.MinBody + a
}

// sampleThink draws a think time in [ThinkMin, ThinkMax] ticks.
func (w Workload) sampleThink(rng *rand.Rand) int {
	return w.ThinkMin + rng.Intn(w.ThinkMax-w.ThinkMin+1)
}
