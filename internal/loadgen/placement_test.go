package loadgen

import (
	"testing"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/sim"
)

// hotspotConfig is the shared shape the placement-policy tests race on: a
// population big enough that the §3.1.1 optimizer spreads users evenly, a
// workload profile it cannot see at assignment time, and a service rate low
// enough that the hot server saturates.
func hotspotSimConfig(policy string) SimConfig {
	return SimConfig{
		Seed: 3,
		Pop: Population{
			Users:            20000,
			Regions:          2,
			ServersPerRegion: 4,
		},
		Policy:       policy,
		ServiceRate:  4,
		RetryTimeout: 200 * sim.Unit,
	}
}

func runHotspot(t *testing.T, policy string) (*SimDriver, Report) {
	t.Helper()
	drv := newSimDriver(t, hotspotSimConfig(policy))
	eng := New(drv, Config{
		Seed: 3, Messages: 1500, Sessions: 128, Ticks: 150,
		Profile: Profile{Kind: "hotspot"},
	})
	rep := eng.Run()
	requireClean(t, rep)
	return drv, rep
}

// TestStaticPolicyBitCompat: routing the §3.1.1 optimizer through the
// placement.Policy seam must not change a single placement decision — the
// same population assigns the same load to the same servers and the run
// deposits the same mail on each of them as the legacy hard-wired path.
func TestStaticPolicyBitCompat(t *testing.T) {
	run := func(policy string) ([]ServerLoad, *SimDriver) {
		drv := newSimDriver(t, SimConfig{
			Seed: 5,
			Pop:  Population{Users: 4000, Regions: 2, ServersPerRegion: 3},
			// policy "" is the legacy path; "static" goes through the seam.
			Policy: policy,
		})
		eng := New(drv, Config{Seed: 5, Messages: 600, Sessions: 64, Ticks: 100})
		rep := eng.Run()
		requireClean(t, rep)
		return drv.ServerLoads(), drv
	}
	legacy, legacyDrv := run("")
	seamed, seamedDrv := run("static")
	if len(legacy) != len(seamed) {
		t.Fatalf("server counts differ: %d vs %d", len(legacy), len(seamed))
	}
	for i := range legacy {
		l, s := legacy[i], seamed[i]
		if l.Name != s.Name || l.Load != s.Load || l.Deposits != s.Deposits {
			t.Errorf("server %s: legacy {load %d, deposits %d} vs static-policy {load %d, deposits %d}",
				l.Name, l.Load, l.Deposits, s.Load, s.Deposits)
		}
	}
	// Spot-check that individual users resolve to identical names too.
	for _, u := range []int{0, 1, 7, 1234, 3999} {
		if a, b := legacyDrv.UserName(u), seamedDrv.UserName(u); a != b {
			t.Errorf("user %d: legacy name %v vs static-policy name %v", u, a, b)
		}
	}
}

// TestJSQSpreadsHotspot: under the hot-spot profile the static optimum
// funnels the skew onto the hot hosts' assigned servers; JSQ(2)'s submit-time
// choice must spread those deposits and cut the peak server's share.
func TestJSQSpreadsHotspot(t *testing.T) {
	peakShare := func(drv *SimDriver) float64 {
		var peak, total int64
		for _, sl := range drv.ServerLoads() {
			total += sl.Deposits
			if sl.Deposits > peak {
				peak = sl.Deposits
			}
		}
		if total == 0 {
			t.Fatal("no deposits observed")
		}
		return float64(peak) / float64(total)
	}
	staticDrv, _ := runHotspot(t, "static")
	jsqDrv, _ := runHotspot(t, "jsq")
	sp, jp := peakShare(staticDrv), peakShare(jsqDrv)
	if jp >= sp {
		t.Fatalf("JSQ peak deposit share %.3f did not beat static %.3f", jp, sp)
	}
	if mt := jsqDrv.Snapshot().Counters["migrations_total"]; mt != 0 {
		t.Fatalf("JSQ migrated %d users; it must act only at submit time", mt)
	}
}

// TestRebalancerMigratesUnderHotspot: the continuous policy must actually
// move users off the saturated server (bounded per tick), report the drain
// cost, and keep every auditor clean while doing so.
func TestRebalancerMigratesUnderHotspot(t *testing.T) {
	drv, _ := runHotspot(t, "rebalance")
	snap := drv.Snapshot()
	if snap.Counters["migrations_total"] == 0 {
		t.Fatal("rebalancer never migrated anyone under a saturated hot spot")
	}
	if len(drv.rehomed) == 0 {
		t.Fatal("migrations_total counted but no user is tracked as rehomed")
	}
	if _, ok := snap.Counters["migration_cost"]; !ok {
		t.Error("migration_cost counter missing from the snapshot")
	}
	// The peak ρ observed anywhere must improve on the static run's: the
	// whole point of shedding the hot server.
	peakRho := func(d *SimDriver) int64 {
		var peak int64
		for g, v := range d.Snapshot().Gauges {
			if len(g) > 9 && g[len(g)-9:] == ".rho_peak" && v > peak {
				peak = v
			}
		}
		return peak
	}
	staticDrv, _ := runHotspot(t, "static")
	if rp, sp := peakRho(drv), peakRho(staticDrv); rp >= sp {
		t.Errorf("rebalancer peak ρ %d did not improve on static %d", rp, sp)
	}
}

// TestReconfigUnderRebalance: §3.1.3 fleet reconfiguration (server addition
// and §3.1.4 manual migration) racing the online rebalancer's own migrations.
// The directory's placement-event funnel is what keeps every resolver cache
// coherent while two writers move users; the auditors are the oracle.
func TestReconfigUnderRebalance(t *testing.T) {
	drv := newSimDriver(t, SimConfig{
		Seed: 9,
		Pop: Population{
			Users:            10000,
			Regions:          2,
			ServersPerRegion: 4,
		},
		Policy:                "rebalance",
		ServiceRate:           4,
		RetryTimeout:          200 * sim.Unit,
		SpareServersPerRegion: 1,
	})
	pop := drv.Population()
	victim := 4 // a region-0 user manually migrated mid-run
	if pop.RegionOf(victim) != 0 {
		t.Fatalf("test setup: user %d not in region 0", victim)
	}
	eng := New(drv, Config{
		Seed: 9, Messages: 1200, Sessions: 128, Ticks: 150,
		Profile: Profile{Kind: "hotspot"},
	})
	var added string
	eng.OnTick = func(tick int) {
		switch tick {
		case 40:
			label, err := drv.AddServer(0)
			if err != nil {
				t.Fatalf("tick %d AddServer: %v", tick, err)
			}
			added = label
		case 80:
			drained, err := drv.MigrateUser(victim, pop.HostsPerRegion)
			if err != nil {
				t.Fatalf("tick %d MigrateUser: %v", tick, err)
			}
			eng.CreditRetrieved(victim, drained)
		}
	}
	rep := eng.Run()
	requireClean(t, rep)
	if added == "" {
		t.Fatal("AddServer never fired")
	}
	if drv.Snapshot().Counters["migrations_total"] == 0 {
		t.Fatal("rebalancer idle for the whole reconfig run")
	}
	if got := drv.UserName(victim); got.Region != pop.RegionName(1) {
		t.Errorf("manually migrated user resolves to %v, want region %s", got, pop.RegionName(1))
	}
}

// TestMigrationRacesKillRestart: the chaos satellite — durable stores, a
// kill-restart fault schedule, AND the rebalancer migrating users through
// the same windows. A migration drain racing a process death must never
// double-deliver (the drain dedup consults the agent's seen-set) nor lose a
// committed copy (WAL replay + the pending-transfer ledger re-drive).
func TestMigrationRacesKillRestart(t *testing.T) {
	drv := newSimDriver(t, SimConfig{
		Seed: 13,
		Pop: Population{
			Users:            10000,
			Regions:          2,
			ServersPerRegion: 4,
		},
		Policy:       "rebalance",
		ServiceRate:  4,
		RetryTimeout: 200 * sim.Unit,
		DataDir:      t.TempDir(),
	})
	defer drv.Close()
	spec := drv.FaultSurface()
	if len(spec.KillTargets) == 0 {
		t.Fatal("durable sim driver offered no KillTargets")
	}
	spec.Seed = 13
	spec.Ticks = 150
	spec.KillRestarts = 3
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := New(drv, Config{
		Seed: 13, Messages: 1200, Sessions: 128, Ticks: 150,
		Profile:  Profile{Kind: "hotspot"},
		Schedule: &sched,
	}).Run()
	if !rep.Ok {
		t.Fatalf("auditors flagged violations with migrations racing kill-restart: %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}
	if drv.Snapshot().Counters["migrations_total"] == 0 {
		t.Fatal("no migrations fired; the race this test exists for never happened")
	}
}
