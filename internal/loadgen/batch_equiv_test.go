package loadgen

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/largemail/largemail/internal/sim"
)

// recordingDriver wraps a Driver and journals every commit and retrieval in
// call order, giving equivalence tests a full delivery trace to compare.
type recordingDriver struct {
	Driver
	log []string
}

func (r *recordingDriver) Submit(from int, to []int, subject, body string) (string, error) {
	id, err := r.Driver.Submit(from, to, subject, body)
	if err == nil {
		r.log = append(r.log, fmt.Sprintf("submit u%d %s -> %v", from, id, to))
	}
	return id, err
}

func (r *recordingDriver) Retrieve(u int) RetrieveResult {
	res := r.Driver.Retrieve(u)
	if len(res.IDs) > 0 {
		r.log = append(r.log, fmt.Sprintf("retrieve u%d %s", u, strings.Join(res.IDs, ",")))
	}
	return res
}

// runTraced runs one seeded closed loop over a fresh SimDriver and returns
// the delivery trace, the aggregated counter snapshot, and the report.
func runTraced(t *testing.T, seed int64, mutate func(*SimConfig)) ([]string, map[string]int64, Report) {
	t.Helper()
	cfg := SimConfig{
		Seed: seed,
		Pop: Population{
			Users:            240,
			Regions:          2,
			ServersPerRegion: 3,
			AuthorityLen:     2,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	drv, err := NewSimDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingDriver{Driver: drv}
	rep := New(rec, Config{
		Seed:          seed,
		Messages:      120,
		Sessions:      16,
		Ticks:         60,
		RetrieveEvery: 4,
	}).Run()
	counters := drv.Snapshot().Counters
	return rec.log, counters, rep
}

// deliveredByUser reduces a trace to each user's sorted set of retrieved
// message IDs — the order-insensitive delivery outcome.
func deliveredByUser(log []string) map[string][]string {
	out := make(map[string][]string)
	for _, line := range log {
		f := strings.Fields(line)
		if f[0] != "retrieve" {
			continue
		}
		out[f[1]] = append(out[f[1]], strings.Split(f[2], ",")...)
	}
	for u := range out {
		sort.Strings(out[u])
	}
	return out
}

// TestBatchSizeOneBitExact is the seeded equivalence property: across seeds,
// a BatchSize=1 deployment produces the exact delivery trace — same commits,
// same retrievals, same order — and the same counter totals as an
// unconfigured (pre-batching) one. This is what pins "size-1 batch ≡ today's
// behavior" at the whole-system level, not just per-server.
func TestBatchSizeOneBitExact(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defLog, defCtr, defRep := runTraced(t, seed, nil)
			oneLog, oneCtr, oneRep := runTraced(t, seed, func(c *SimConfig) {
				c.BatchSize = 1
				c.FlushInterval = 5 * sim.Unit
			})
			if !defRep.Ok || !oneRep.Ok {
				t.Fatalf("audits: default ok=%v batch-1 ok=%v (%v / %v)",
					defRep.Ok, oneRep.Ok, defRep.Violations, oneRep.Violations)
			}
			if !reflect.DeepEqual(defLog, oneLog) {
				t.Fatalf("delivery traces differ (default %d events, batch-1 %d)",
					len(defLog), len(oneLog))
			}
			if !reflect.DeepEqual(defCtr, oneCtr) {
				for k, v := range defCtr {
					if oneCtr[k] != v {
						t.Errorf("counter %s: default %d, batch-1 %d", k, v, oneCtr[k])
					}
				}
				for k, v := range oneCtr {
					if _, ok := defCtr[k]; !ok {
						t.Errorf("counter %s only in batch-1 run: %d", k, v)
					}
				}
			}
		})
	}
}

// TestBatchSixteenSameDeliveries: batching changes envelope timing, so the
// trace order may differ — but every user must end with exactly the same set
// of delivered message IDs, audits clean, and the batched run must actually
// coalesce (fewer relay envelopes than per-copy transfers).
func TestBatchSixteenSameDeliveries(t *testing.T) {
	seed := int64(7)
	oneLog, _, oneRep := runTraced(t, seed, func(c *SimConfig) {
		c.BatchSize = 1
		c.FlushInterval = 5 * sim.Unit
	})
	bLog, bCtr, bRep := runTraced(t, seed, func(c *SimConfig) {
		c.BatchSize = 16
		c.FlushInterval = 5 * sim.Unit
	})
	if !oneRep.Ok || !bRep.Ok {
		t.Fatalf("audits: batch-1 ok=%v batch-16 ok=%v (%v / %v)",
			oneRep.Ok, bRep.Ok, oneRep.Violations, bRep.Violations)
	}
	if one, b := deliveredByUser(oneLog), deliveredByUser(bLog); !reflect.DeepEqual(one, b) {
		t.Errorf("delivered sets differ between batch-1 and batch-16")
	}
	env, out := bCtr["srv_relay_envelopes"], bCtr["srv_transfers_out"]
	if out == 0 {
		t.Fatal("batch-16 run relayed nothing; workload too local to test batching")
	}
	if env >= out {
		t.Errorf("relay_envelopes = %d not below transfers_out = %d; nothing coalesced", env, out)
	}
}

// TestResolutionCacheInvalidationUnderReconfig fires MigrateUser and
// RemoveServer from OnTick while the closed loop is live. The resolution
// cache must serve the steady-state traffic (hits accumulate) yet never
// serve a stale list across the reconfigs: the auditors' exactly-once/
// no-loss ledger is the stale-deposit oracle (a deposit routed on a stale
// authority list would strand a copy and fail the no-loss audit).
func TestResolutionCacheInvalidationUnderReconfig(t *testing.T) {
	drv, err := NewSimDriver(SimConfig{
		Seed: 19,
		Pop: Population{
			Users:            240,
			Regions:          2,
			ServersPerRegion: 3,
			AuthorityLen:     2,
		},
		BatchSize:     4,
		FlushInterval: 2 * sim.Unit,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := drv.Population()
	victim := 2
	newHost := pop.HostsPerRegion // first host of region 1
	removeTarget := drv.ServerLoads()[1].Name

	eng := New(drv, Config{
		Seed:          19,
		Messages:      150,
		Sessions:      16,
		Ticks:         80,
		RetrieveEvery: 4,
	})
	var migrated, removed bool
	eng.OnTick = func(tick int) {
		switch tick {
		case 24:
			drained, err := drv.MigrateUser(victim, newHost)
			if err != nil {
				t.Fatalf("tick %d MigrateUser: %v", tick, err)
			}
			eng.CreditRetrieved(victim, drained)
			migrated = true
		case 48:
			if err := drv.RemoveServer(removeTarget); err != nil {
				t.Fatalf("tick %d RemoveServer(%s): %v", tick, removeTarget, err)
			}
			removed = true
		}
	}
	rep := eng.Run()
	if !migrated || !removed {
		t.Fatalf("reconfig ops did not all fire: migrated=%v removed=%v", migrated, removed)
	}
	if !rep.Ok {
		t.Fatalf("auditors flagged violations (stale resolution?): %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}

	// The cache carried real traffic and the counters surfaced in the
	// driver's snapshot (Directory.Instrument wiring).
	snap := drv.Snapshot()
	if snap.Counters["rescache_hits"] == 0 {
		t.Error("rescache_hits = 0; delivery path not using the resolution cache")
	}
	if snap.Counters["rescache_misses"] == 0 {
		t.Error("rescache_misses = 0; cache never populated")
	}
	var hits, misses int64
	for _, dir := range drv.dirs {
		h, m := dir.CacheStats()
		hits += h
		misses += m
	}
	if hits != snap.Counters["rescache_hits"] || misses != snap.Counters["rescache_misses"] {
		t.Errorf("obs counters (%d/%d) disagree with CacheStats (%d/%d)",
			snap.Counters["rescache_hits"], snap.Counters["rescache_misses"], hits, misses)
	}
	// The migrated user's new name resolves through the refreshed directory:
	// one more message to the victim lands and is retrieved, proving no
	// negative/stale entry survived the reconfig.
	if got := drv.UserName(victim); got.Region != pop.RegionName(1) {
		t.Errorf("migrated user resolves to %v, want region %s", got, pop.RegionName(1))
	}
}
