package loadgen

import (
	"context"
	"fmt"
	"time"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/queueing"
)

// LiveConfig parameterizes a LiveDriver.
type LiveConfig struct {
	Pop Population
	// Tick is the wall-clock duration of one schedule tick (default 2ms).
	Tick time.Duration
	// Spool configures the redelivery spool; the zero value takes the
	// spool's own defaults. The spool is normally enabled: it is what makes
	// a live Submit an all-or-nothing commit (only a recipient with no
	// authority list at all can fail), which is the commit-point contract
	// the no-loss auditor depends on.
	Spool livenet.SpoolConfig
	// NoSpool disables the redelivery spool entirely. Without it a Submit
	// commits only the recipients whose deposit succeeded, so a multi-
	// recipient Submit can partially commit while reporting an error —
	// drive no-spool runs with Workload{MaxRecipients: 1} to keep the
	// commit all-or-nothing. This is how the durability soak proves the
	// store alone (not spool redelivery) carries mail across kill-restarts.
	NoSpool bool
	// SubmitTimeout bounds each Submit through the cluster's context API
	// (0 = no deadline). Recipients already committed when the deadline
	// fires stay committed; the rest report mailerr.ErrTimeout.
	SubmitTimeout time.Duration
	// StoreShards overrides each server's mailbox-store shard count
	// (0 = mailstore.DefaultShards).
	StoreShards int
	// DataDir, when set, makes every server's mailbox store durable
	// (server NAME journals to DataDir/NAME) and adds KillTargets to the
	// fault surface.
	DataDir string
	// Fsync is the WAL fsync policy when DataDir is set.
	Fsync mailstore.FsyncMode
}

// LiveDriver drives the livenet transport: goroutine servers, wall-clock
// time, spool-backed redelivery. Server gs of region r is named
// "S<r·ServersPerRegion+s>"; user authority lists are AuthorityLen servers
// of the user's region starting at slot (host mod ServersPerRegion), so
// primary load spreads evenly without running the full §3.1.1 engine — the
// predicted loads in ServerLoads use that same round-robin placement.
type LiveDriver struct {
	cfg     LiveConfig
	pop     Population
	cluster *livenet.Cluster

	agents    map[int]*livenet.Agent
	prevPolls map[int]int
}

// NewLiveDriver builds the cluster and starts one goroutine per server.
// Call Close when done.
func NewLiveDriver(cfg LiveConfig) (*LiveDriver, error) {
	cfg.Pop = cfg.Pop.withDefaults()
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	d := &LiveDriver{
		cfg: cfg,
		pop: cfg.Pop,
		cluster: livenet.NewClusterWith(livenet.ClusterConfig{
			StoreShards: cfg.StoreShards,
			DataDir:     cfg.DataDir,
			Fsync:       cfg.Fsync,
		}),
		agents:    make(map[int]*livenet.Agent),
		prevPolls: make(map[int]int),
	}
	for gs := 0; gs < d.pop.TotalServers(); gs++ {
		if _, err := d.cluster.AddServer(d.serverName(gs)); err != nil {
			d.cluster.Close()
			return nil, err
		}
	}
	if !cfg.NoSpool {
		if err := d.cluster.EnableSpool(cfg.Spool); err != nil {
			d.cluster.Close()
			return nil, err
		}
	}
	return d, nil
}

// Close stops the spool and every server goroutine.
func (d *LiveDriver) Close() { d.cluster.Close() }

// Cluster exposes the underlying cluster for tests.
func (d *LiveDriver) Cluster() *livenet.Cluster { return d.cluster }

func (d *LiveDriver) serverName(gs int) string { return fmt.Sprintf("S%d", gs) }

// authority returns user u's ordered authority list: AuthorityLen servers
// of u's region, starting at the slot the user's host maps to.
func (d *LiveDriver) authority(u int) []string {
	r := d.pop.RegionOf(u)
	start := d.pop.HostOf(u) % d.pop.ServersPerRegion
	out := make([]string, 0, d.pop.AuthorityLen)
	for i := 0; i < d.pop.AuthorityLen; i++ {
		s := (start + i) % d.pop.ServersPerRegion
		out = append(out, d.serverName(r*d.pop.ServersPerRegion+s))
	}
	return out
}

// ensure lazily registers user u in the directory and creates its agent.
func (d *LiveDriver) ensure(u int) (*livenet.Agent, names.Name, error) {
	name := d.pop.Name(u)
	if ag, ok := d.agents[u]; ok {
		return ag, name, nil
	}
	d.cluster.Directory().SetAuthority(name, d.authority(u))
	ag, err := d.cluster.NewAgent(name)
	if err != nil {
		return nil, name, err
	}
	d.agents[u] = ag
	return ag, name, nil
}

// Population implements Driver.
func (d *LiveDriver) Population() Population { return d.pop }

// Submit implements Driver. With the spool enabled a nil error means every
// recipient copy is committed — deposited now or owed by the spool.
func (d *LiveDriver) Submit(from int, to []int, subject, body string) (string, error) {
	_, fromName, err := d.ensure(from)
	if err != nil {
		return "", err
	}
	rcpts := make([]names.Name, 0, len(to))
	for _, u := range to {
		_, name, err := d.ensure(u)
		if err != nil {
			return "", err
		}
		rcpts = append(rcpts, name)
	}
	ctx := context.Background()
	if d.cfg.SubmitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.SubmitTimeout)
		defer cancel()
	}
	id, err := d.cluster.SubmitContext(ctx, fromName, rcpts, subject, body)
	if err != nil {
		return "", err
	}
	return id.String(), nil
}

// Retrieve implements Driver.
func (d *LiveDriver) Retrieve(u int) RetrieveResult {
	ag, _, err := d.ensure(u)
	if err != nil {
		return RetrieveResult{}
	}
	got := ag.GetMail()
	res := RetrieveResult{
		Polls:        ag.Polls() - d.prevPolls[u],
		LastChecking: ag.LastCheckingTime().UnixNano(),
	}
	d.prevPolls[u] = ag.Polls()
	for _, m := range got {
		res.IDs = append(res.IDs, m.ID.String())
	}
	return res
}

// Step implements Driver: one tick is a short wall-clock sleep.
func (d *LiveDriver) Step(n int) {
	if n > 0 {
		time.Sleep(time.Duration(n) * d.cfg.Tick)
	}
}

// Settle implements Driver: wait for the redelivery spool to drain.
func (d *LiveDriver) Settle() {
	for i := 0; i < 500; i++ {
		if d.cluster.SpoolDepth() == 0 {
			return
		}
		time.Sleep(d.cfg.Tick)
	}
}

// Snapshot implements Driver.
func (d *LiveDriver) Snapshot() obs.Snapshot { return d.cluster.Snapshot() }

// Tracer implements Driver.
func (d *LiveDriver) Tracer() *obs.Tracer { return d.cluster.Tracer() }

// Injector implements Driver.
func (d *LiveDriver) Injector() faults.Injector {
	return faults.NewLiveTarget(d.cluster, d.cfg.Tick)
}

// FaultSurface implements Driver. On the live transport servers are safe
// drop targets (transient drops are retried on the same server, never
// failed over), and link faults resolve to server unreachability — which
// stamps LastStartTime on restore, so the GetMail walk recovers deposits
// that failed over past the partition.
func (d *LiveDriver) FaultSurface() faults.Spec {
	var sp faults.Spec
	sp.Servers = d.cluster.ServerNames()
	sp.DropTargets = append([]string(nil), sp.Servers...)
	for r := 0; r < d.pop.Regions; r++ {
		if d.pop.ServersPerRegion < 3 {
			continue // a 2-server region cannot spare a link
		}
		for s := 0; s < d.pop.ServersPerRegion; s++ {
			gs := r*d.pop.ServersPerRegion + s
			next := r*d.pop.ServersPerRegion + (s+1)%d.pop.ServersPerRegion
			sp.Links = append(sp.Links, [2]string{d.serverName(gs), d.serverName(next)})
		}
	}
	// Kill-restart only survives a durable store; a memory-only cluster
	// must not offer targets (Compile would schedule guaranteed data loss).
	if d.cluster.Durable() {
		sp.KillTargets = append([]string(nil), sp.Servers...)
	}
	return sp
}

// DurabilityStats sums the WAL write-path counters across the cluster's
// servers; ok is false on a memory-only cluster.
func (d *LiveDriver) DurabilityStats() (mailstore.WALStats, bool) {
	return d.cluster.DurabilityStats()
}

// ServerLoads implements Driver: predicted load from the round-robin
// placement (host gh's users' primary is slot gh mod ServersPerRegion),
// observed deposits from the per-server counters.
func (d *LiveDriver) ServerLoads() []ServerLoad {
	deposits := d.cluster.Obs().Counters()
	perServer := 0
	if d.pop.TotalServers() > 0 {
		perServer = d.pop.Users / d.pop.TotalServers()
	}
	maxLoad := perServer + perServer/4 + 4
	loads := make([]int, d.pop.TotalServers())
	for gh := 0; gh < d.pop.TotalHosts(); gh++ {
		r := gh / d.pop.HostsPerRegion
		loads[r*d.pop.ServersPerRegion+gh%d.pop.ServersPerRegion] += d.pop.UsersOnHost(gh)
	}
	out := make([]ServerLoad, 0, len(loads))
	for gs, l := range loads {
		name := d.serverName(gs)
		rho := float64(l) / float64(maxLoad)
		out = append(out, ServerLoad{
			Name:     name,
			Region:   d.pop.RegionName(gs / d.pop.ServersPerRegion),
			Load:     l,
			MaxLoad:  maxLoad,
			Rho:      rho,
			QWait:    queueing.Wait(rho),
			Deposits: deposits[name+".deposits"],
		})
	}
	return out
}
