package loadgen

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/queueing"
)

// LiveConfig parameterizes a LiveDriver.
type LiveConfig struct {
	Pop Population
	// Tick is the wall-clock duration of one schedule tick (default 2ms).
	Tick time.Duration
	// Spool configures the redelivery spool; the zero value takes the
	// spool's own defaults. The spool is normally enabled: it is what makes
	// a live Submit an all-or-nothing commit (only a recipient with no
	// authority list at all can fail), which is the commit-point contract
	// the no-loss auditor depends on.
	Spool livenet.SpoolConfig
	// NoSpool disables the redelivery spool entirely. Without it a Submit
	// commits only the recipients whose deposit succeeded, so a multi-
	// recipient Submit can partially commit while reporting an error —
	// drive no-spool runs with Workload{MaxRecipients: 1} to keep the
	// commit all-or-nothing. This is how the durability soak proves the
	// store alone (not spool redelivery) carries mail across kill-restarts.
	NoSpool bool
	// SubmitTimeout bounds each Submit through the cluster's context API
	// (0 = no deadline). Recipients already committed when the deadline
	// fires stay committed; the rest report mailerr.ErrTimeout.
	SubmitTimeout time.Duration
	// StoreShards overrides each server's mailbox-store shard count
	// (0 = mailstore.DefaultShards).
	StoreShards int
	// DataDir, when set, makes every server's mailbox store durable
	// (server NAME journals to DataDir/NAME) and adds KillTargets to the
	// fault surface.
	DataDir string
	// Fsync is the WAL fsync policy when DataDir is set.
	Fsync mailstore.FsyncMode

	// Policy selects the placement policy ("static", "jsq", "rebalance").
	// Empty keeps the historical hard-wired round-robin path untouched;
	// "static" routes the same round-robin lists through the placement seam.
	Policy string
	// JSQD is JSQ(d)'s sample width (0 = d=2).
	JSQD int
	// ServiceRate is each server's service capacity in deposits per tick;
	// > 0 publishes arrival-rate ρ on the "<name>.rho" gauges and slows
	// servers pushed past ρ=1 (injected latency), mirroring the sim driver's
	// congestion loop on wall-clock time. Zero publishes placement-share ρ
	// and leaves latency alone.
	ServiceRate float64
	// MaxMigrationsPerTick / HysteresisBand tune the rebalancer (zero =
	// placement defaults).
	MaxMigrationsPerTick int
	HysteresisBand       float64
}

// LiveDriver drives the livenet transport: goroutine servers, wall-clock
// time, spool-backed redelivery. Server gs of region r is named
// "S<r·ServersPerRegion+s>"; user authority lists are AuthorityLen servers
// of the user's region starting at slot (host mod ServersPerRegion), so
// primary load spreads evenly without running the full §3.1.1 engine — the
// predicted loads in ServerLoads use that same round-robin placement.
type LiveDriver struct {
	cfg     LiveConfig
	pop     Population
	cluster *livenet.Cluster

	agents    map[int]*livenet.Agent
	prevPolls map[int]int

	// Placement-policy state (nil/empty when cfg.Policy == "").
	policy   placement.Policy
	world    placement.World
	bySlot   []map[int]struct{} // per slot: materialized users homed there
	rehomed  map[int]int        // users moved off their base placement → tick of the move
	recv     map[int]int64      // per user: copies retrieved (the traffic signal migrations rank by)
	recvHost map[int]int64      // per host: copies retrieved by its users (locates workload skew)
	prevDep  []int64
	arrEWMA  []float64
}

// NewLiveDriver builds the cluster and starts one goroutine per server.
// Call Close when done.
func NewLiveDriver(cfg LiveConfig) (*LiveDriver, error) {
	cfg.Pop = cfg.Pop.withDefaults()
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	if cfg.Policy != "" {
		if _, err := placement.ParseName(cfg.Policy); err != nil {
			return nil, err
		}
	}
	d := &LiveDriver{
		cfg: cfg,
		pop: cfg.Pop,
		cluster: livenet.NewClusterWith(livenet.ClusterConfig{
			StoreShards: cfg.StoreShards,
			DataDir:     cfg.DataDir,
			Fsync:       cfg.Fsync,
		}),
		agents:    make(map[int]*livenet.Agent),
		prevPolls: make(map[int]int),
	}
	for gs := 0; gs < d.pop.TotalServers(); gs++ {
		if _, err := d.cluster.AddServer(d.serverName(gs)); err != nil {
			d.cluster.Close()
			return nil, err
		}
	}
	if !cfg.NoSpool {
		if err := d.cluster.EnableSpool(cfg.Spool); err != nil {
			d.cluster.Close()
			return nil, err
		}
	}
	if cfg.Policy != "" {
		d.initPolicy()
	}
	return d, nil
}

// initPolicy builds the configured placement policy over the round-robin
// reference — the live transport's historical static placement. Slot gs IS
// server "S<gs>", so the placement default label convention applies as-is.
func (d *LiveDriver) initPolicy() {
	p := d.pop
	d.world = placement.World{
		Regions:          p.Regions,
		ServersPerRegion: p.ServersPerRegion,
		HostsPerRegion:   p.HostsPerRegion,
		AuthorityLen:     p.AuthorityLen,
	}
	base := placement.NewRoundRobin(d.world)
	pcfg := placement.Config{
		World: d.world, Seed: int64(p.Users), D: d.cfg.JSQD,
		Gauges:               d.cluster.Obs(),
		MaxMigrationsPerTick: d.cfg.MaxMigrationsPerTick,
		HysteresisBand:       d.cfg.HysteresisBand,
	}
	switch d.cfg.Policy {
	case placement.NameJSQ:
		d.policy = placement.NewJSQ(base, pcfg)
	case placement.NameRebalance:
		d.policy = placement.NewRebalancer(base, pcfg)
	default:
		d.policy = base
	}
	n := d.world.TotalServers()
	d.bySlot = make([]map[int]struct{}, n)
	for i := range d.bySlot {
		d.bySlot[i] = make(map[int]struct{})
	}
	d.prevDep = make([]int64, n)
	d.arrEWMA = make([]float64, n)
	d.rehomed = make(map[int]int)
	d.recv = make(map[int]int64)
	d.recvHost = make(map[int]int64)
	d.refreshGauges(1)
}

// Close stops the spool and every server goroutine.
func (d *LiveDriver) Close() { d.cluster.Close() }

// Cluster exposes the underlying cluster for tests.
func (d *LiveDriver) Cluster() *livenet.Cluster { return d.cluster }

func (d *LiveDriver) serverName(gs int) string { return fmt.Sprintf("S%d", gs) }

// authority returns user u's ordered authority list: AuthorityLen servers
// of u's region, starting at the slot the user's host maps to.
func (d *LiveDriver) authority(u int) []string {
	r := d.pop.RegionOf(u)
	start := d.pop.HostOf(u) % d.pop.ServersPerRegion
	out := make([]string, 0, d.pop.AuthorityLen)
	for i := 0; i < d.pop.AuthorityLen; i++ {
		s := (start + i) % d.pop.ServersPerRegion
		out = append(out, d.serverName(r*d.pop.ServersPerRegion+s))
	}
	return out
}

// ensure lazily registers user u in the directory and creates its agent.
func (d *LiveDriver) ensure(u int) (*livenet.Agent, names.Name, error) {
	name := d.pop.Name(u)
	if ag, ok := d.agents[u]; ok {
		return ag, name, nil
	}
	list := d.authority(u)
	if d.policy != nil {
		if slots := d.policy.Place(placement.User{Index: u, Host: d.pop.HostOf(u)}); len(slots) > 0 {
			list = make([]string, len(slots))
			for i, s := range slots {
				list[i] = d.serverName(s)
			}
			d.bySlot[slots[0]][u] = struct{}{}
		}
	}
	d.cluster.Directory().SetAuthority(name, list)
	ag, err := d.cluster.NewAgent(name)
	if err != nil {
		return nil, name, err
	}
	d.agents[u] = ag
	return ag, name, nil
}

// Population implements Driver.
func (d *LiveDriver) Population() Population { return d.pop }

// Submit implements Driver. With the spool enabled a nil error means every
// recipient copy is committed — deposited now or owed by the spool.
func (d *LiveDriver) Submit(from int, to []int, subject, body string) (string, error) {
	_, fromName, err := d.ensure(from)
	if err != nil {
		return "", err
	}
	rcpts := make([]names.Name, 0, len(to))
	for _, u := range to {
		_, name, err := d.ensure(u)
		if err != nil {
			return "", err
		}
		rcpts = append(rcpts, name)
	}
	ctx := context.Background()
	if d.cfg.SubmitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.SubmitTimeout)
		defer cancel()
	}
	id, err := d.cluster.SubmitContext(ctx, fromName, rcpts, subject, body)
	if err != nil {
		return "", err
	}
	return id.String(), nil
}

// Retrieve implements Driver.
func (d *LiveDriver) Retrieve(u int) RetrieveResult {
	ag, _, err := d.ensure(u)
	if err != nil {
		return RetrieveResult{}
	}
	got := ag.GetMail()
	if d.policy != nil {
		d.recv[u] += int64(len(got))
		d.recvHost[d.pop.HostOf(u)] += int64(len(got))
	}
	res := RetrieveResult{
		Polls:        ag.Polls() - d.prevPolls[u],
		LastChecking: ag.LastCheckingTime().UnixNano(),
	}
	d.prevPolls[u] = ag.Polls()
	for _, m := range got {
		res.IDs = append(res.IDs, m.ID.String())
	}
	return res
}

// Step implements Driver: one tick is a short wall-clock sleep. With a
// placement policy configured each Step also refreshes the per-server ρ and
// placed gauges (qdepth is maintained inline by the servers).
func (d *LiveDriver) Step(n int) {
	if n > 0 {
		time.Sleep(time.Duration(n) * d.cfg.Tick)
	}
	if d.policy != nil && n > 0 {
		d.refreshGauges(n)
	}
}

// refreshGauges publishes "<name>.rho" / "<name>.placed" for every server
// from the deposit counters, mirroring the sim driver's loop: arrival-rate
// EWMA over ServiceRate when the congestion model is on, placement share
// otherwise; overloaded servers get injected latency proportional to their
// overload (capped at 4 ticks).
func (d *LiveDriver) refreshGauges(ticks int) {
	reg := d.cluster.Obs()
	perServer := 0
	if d.pop.TotalServers() > 0 {
		perServer = d.pop.Users / d.pop.TotalServers()
	}
	maxLoad := perServer + perServer/4 + 4
	for slot := 0; slot < d.world.TotalServers(); slot++ {
		name := d.serverName(slot)
		dep := reg.Counter(name + ".deposits").Value()
		perTick := float64(dep-d.prevDep[slot]) / float64(ticks)
		d.arrEWMA[slot] = ewmaAlpha*perTick + (1-ewmaAlpha)*d.arrEWMA[slot]
		d.prevDep[slot] = dep
		var rho float64
		if d.cfg.ServiceRate > 0 {
			rho = d.arrEWMA[slot] / d.cfg.ServiceRate
		} else if maxLoad > 0 {
			rho = float64(len(d.bySlot[slot])) / float64(maxLoad)
		}
		fixed := int64(rho * placement.RhoScale)
		reg.Gauge(name + ".rho").Set(fixed)
		if peak := reg.Gauge(name + ".rho_peak"); fixed > peak.Value() {
			peak.Set(fixed)
		}
		reg.Gauge(name + ".placed").Set(int64(len(d.bySlot[slot])))
		if d.cfg.ServiceRate > 0 {
			if s, ok := d.cluster.Server(name); ok {
				var extra time.Duration
				if over := rho - 1; over > 0 {
					if over > 4 {
						over = 4
					}
					extra = time.Duration(over * float64(d.cfg.Tick))
				}
				s.SetLatency(extra)
			}
		}
	}
}

// RebalanceActive implements PlacementRebalancer.
func (d *LiveDriver) RebalanceActive() bool {
	return d.policy != nil && d.policy.Name() == placement.NameRebalance
}

// RebalanceTick implements PlacementRebalancer on the live transport. The
// §3.1.4 handover is only attempted in calm conditions — empty spool (a
// spooled entry is a deposit still in flight somewhere), every involved
// server up and reachable, no servers owed a recovery visit — because only
// then does a drain prove the old mailboxes empty; otherwise the user is
// left put and the next tick retries.
func (d *LiveDriver) RebalanceTick(tick int) []MigrationResult {
	if d.policy == nil {
		return nil
	}
	if d.cluster.SpoolDepth() > 0 {
		return nil
	}
	migs := d.policy.Rebalance(d.Snapshot())
	var out []MigrationResult
	for _, mg := range migs {
		users, weights, total := rankByHeat(d.liveUsersOnSlot(mg.From),
			d.recv, d.recvHost, d.pop.HostOf, d.pop.UsersOnHost)
		target := mg.Frac * total
		var shed float64
		moved := 0
		for i, u := range users {
			if moved >= mg.Count || (target > 0 && shed >= target) {
				break
			}
			if last, ok := d.rehomed[u]; ok && tick-last < migrationCooldown {
				continue // recently moved; let the load observation settle
			}
			res := d.migrateToSlot(u, mg.From, mg.To, tick)
			if res.Moved {
				moved++
				shed += weights[i]
			}
			if res.Moved || len(res.Drained) > 0 {
				out = append(out, res)
			}
		}
	}
	return out
}

func (d *LiveDriver) liveUsersOnSlot(slot int) []int {
	if slot < 0 || slot >= len(d.bySlot) {
		return nil
	}
	out := make([]int, 0, len(d.bySlot[slot]))
	for u := range d.bySlot[slot] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// migrateToSlot re-homes one live user onto slot to: drain under the old
// list, then swap the directory entry to a list led by the target with the
// old servers kept as secondaries (the agent re-reads the directory on every
// GetMail, so the swap is the whole handover).
func (d *LiveDriver) migrateToSlot(u, from, to, tick int) MigrationResult {
	res := MigrationResult{User: u}
	ag := d.agents[u]
	if ag == nil {
		return res
	}
	name := d.pop.Name(u)
	toName := d.serverName(to)
	if s, ok := d.cluster.Server(toName); !ok || !s.Up() || !s.Reachable() {
		return res
	}
	old := d.cluster.Directory().Authority(name)
	for _, sv := range old {
		if s, ok := d.cluster.Server(sv); !ok || !s.Up() || !s.Reachable() {
			return res
		}
	}
	if len(ag.PreviouslyUnavailable()) > 0 {
		return res
	}
	for _, m := range ag.GetMail() {
		res.Drained = append(res.Drained, m.ID.String())
	}
	d.recv[u] += int64(len(res.Drained)) // drained mail is traffic too
	d.recvHost[d.pop.HostOf(u)] += int64(len(res.Drained))
	d.prevPolls[u] = ag.Polls() // the drain's polls are not the next sweep's
	if len(ag.PreviouslyUnavailable()) > 0 {
		return res // a server failed mid-drain; keep the user put
	}
	newList := make([]string, 0, len(old)+1)
	newList = append(newList, toName)
	for _, sv := range old {
		if sv != toName {
			newList = append(newList, sv)
		}
	}
	d.cluster.Directory().SetAuthority(name, newList)
	delete(d.bySlot[from], u)
	d.bySlot[to][u] = struct{}{}
	d.rehomed[u] = tick
	res.Moved = true
	d.cluster.Obs().Counter("migrations_total").Inc()
	d.cluster.Obs().Counter("migration_cost").Add(int64(len(res.Drained)))
	return res
}

// Settle implements Driver: wait for the redelivery spool to drain.
func (d *LiveDriver) Settle() {
	for i := 0; i < 500; i++ {
		if d.cluster.SpoolDepth() == 0 {
			return
		}
		time.Sleep(d.cfg.Tick)
	}
}

// Snapshot implements Driver.
func (d *LiveDriver) Snapshot() obs.Snapshot { return d.cluster.Snapshot() }

// Tracer implements Driver.
func (d *LiveDriver) Tracer() *obs.Tracer { return d.cluster.Tracer() }

// Injector implements Driver.
func (d *LiveDriver) Injector() faults.Injector {
	return faults.NewLiveTarget(d.cluster, d.cfg.Tick)
}

// FaultSurface implements Driver. On the live transport servers are safe
// drop targets (transient drops are retried on the same server, never
// failed over), and link faults resolve to server unreachability — which
// stamps LastStartTime on restore, so the GetMail walk recovers deposits
// that failed over past the partition.
func (d *LiveDriver) FaultSurface() faults.Spec {
	var sp faults.Spec
	sp.Servers = d.cluster.ServerNames()
	sp.DropTargets = append([]string(nil), sp.Servers...)
	for r := 0; r < d.pop.Regions; r++ {
		if d.pop.ServersPerRegion < 3 {
			continue // a 2-server region cannot spare a link
		}
		for s := 0; s < d.pop.ServersPerRegion; s++ {
			gs := r*d.pop.ServersPerRegion + s
			next := r*d.pop.ServersPerRegion + (s+1)%d.pop.ServersPerRegion
			sp.Links = append(sp.Links, [2]string{d.serverName(gs), d.serverName(next)})
		}
	}
	// Kill-restart only survives a durable store; a memory-only cluster
	// must not offer targets (Compile would schedule guaranteed data loss).
	if d.cluster.Durable() {
		sp.KillTargets = append([]string(nil), sp.Servers...)
	}
	return sp
}

// DurabilityStats sums the WAL write-path counters across the cluster's
// servers; ok is false on a memory-only cluster.
func (d *LiveDriver) DurabilityStats() (mailstore.WALStats, bool) {
	return d.cluster.DurabilityStats()
}

// ServerLoads implements Driver: predicted load from the round-robin
// placement (host gh's users' primary is slot gh mod ServersPerRegion),
// observed deposits from the per-server counters.
func (d *LiveDriver) ServerLoads() []ServerLoad {
	deposits := d.cluster.Obs().Counters()
	perServer := 0
	if d.pop.TotalServers() > 0 {
		perServer = d.pop.Users / d.pop.TotalServers()
	}
	maxLoad := perServer + perServer/4 + 4
	loads := make([]int, d.pop.TotalServers())
	for gh := 0; gh < d.pop.TotalHosts(); gh++ {
		r := gh / d.pop.HostsPerRegion
		loads[r*d.pop.ServersPerRegion+gh%d.pop.ServersPerRegion] += d.pop.UsersOnHost(gh)
	}
	out := make([]ServerLoad, 0, len(loads))
	for gs, l := range loads {
		name := d.serverName(gs)
		rho := float64(l) / float64(maxLoad)
		out = append(out, ServerLoad{
			Name:     name,
			Region:   d.pop.RegionName(gs / d.pop.ServersPerRegion),
			Load:     l,
			MaxLoad:  maxLoad,
			Rho:      rho,
			QWait:    queueing.Wait(rho),
			Deposits: deposits[name+".deposits"],
		})
	}
	return out
}
