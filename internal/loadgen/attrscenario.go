package loadgen

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/sketch"
)

// AttrConfig configures the attribute-broadcast scenario (§3.3): senders
// address predicates, queries fan down the backbone-MST, matches deposit
// into term-indexed mailstores, and responses convergecast back up.
type AttrConfig struct {
	Seed int64
	Pop  Population
	// Tick is the virtual length of one schedule tick (default 10 units).
	Tick sim.Time
	// Timeout is the broadcast parent's base per-edge wait (default 30).
	Timeout sim.Time
	// Groups is the number of interest groups users hash into (default 16).
	Groups int
	// Queries is how many mass-distribution queries to launch (default 20).
	Queries int
	// QueryEvery launches one query every n ticks (default 3).
	QueryEvery int
	// ContentEvery makes every k-th launch a content search against the
	// mailstore term index instead of a profile broadcast (default 5).
	ContentEvery int
	// SweepEvery drains deposited copies every n ticks (default 4).
	SweepEvery int
	// Ticks runs the loop this long (default sized to the query schedule,
	// raised to cover Schedule's horizon).
	Ticks int
	// Schedule, when non-nil, is a compiled fault schedule injected as its
	// ticks come due.
	Schedule *faults.Schedule
	// DisablePrune routes content searches over the exhaustive Start path
	// even when the planner says they could prune — the E21-compatible
	// baseline. Zero value: pruning on.
	DisablePrune bool
	// SketchRefreshEvery re-aggregates the subtree sketches every n ticks.
	// 0 (the default) refreshes on demand right before each prunable
	// launch instead — maximal pruning; a periodic cadence deliberately
	// leaves windows where deposits make caches stale, exercising the
	// fail-open rule (the faults-on bench point uses this).
	SketchRefreshEvery int
}

func (c AttrConfig) withDefaults() AttrConfig {
	c.Pop = c.Pop.withDefaults()
	if c.Tick <= 0 {
		c.Tick = 10 * sim.Unit
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * sim.Unit
	}
	if c.Groups <= 0 {
		c.Groups = 16
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.QueryEvery <= 0 {
		c.QueryEvery = 3
	}
	if c.ContentEvery <= 0 {
		c.ContentEvery = 5
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 4
	}
	if c.Ticks <= 0 {
		c.Ticks = c.Queries*c.QueryEvery + 20
	}
	if c.Schedule != nil && c.Schedule.Horizon() > c.Ticks {
		c.Ticks = c.Schedule.Horizon()
	}
	return c
}

// AttrReport is the outcome of an attribute-broadcast run.
type AttrReport struct {
	Ok         bool
	Violations map[string]int
	Examples   []string

	Queries        int // mass-distribution queries completed
	ContentQueries int // term-index searches completed
	Skipped        int // launches skipped because the origin was down
	Partial        int // queries whose summary carried unavailable subtrees
	Deliveries     int // total copies deposited by mass distribution
	MaxDepth       int // deepest convergecast depth seen from any origin
	Ticks          int

	// Selective-multicast accounting (content queries only).
	PrunedSubtrees int // branch skips proven by fresh subtree sketches
	PrunedNodes    int // nodes excused by those proofs
	VisitedNodes   int // nodes that actually evaluated a content query
	SketchFP       int // sketch-passed subtrees that then held no match
	StaleOpen      int // stale caches that failed open (visited anyway)
	Refreshes      int // sketch aggregation phases run
	// CQMailboxes counts mailboxes on the nodes content queries visited;
	// CQMailboxesFull is what the same queries would have walked unpruned
	// (every node's mailboxes) — the E21 comparison numerator/denominator.
	CQMailboxes     int64
	CQMailboxesFull int64
}

// attrTerms is the pool of body terms content searches draw from.
var attrTerms = []string{"budget", "offsite", "seminar", "deadline", "picnic"}

// attrCities diversifies profiles so conjunctive predicates select strict
// subsets of an interest group.
var attrCities = []string{"boston", "cambridge", "salem", "medford", "quincy", "newton"}

// attrQuery is the in-flight bookkeeping for one broadcast.
type attrQuery struct {
	id          uint64
	content     bool
	pruneRoute  bool // launched via Distribute (planner said prunable)
	origin      graph.NodeID
	start       sim.Time
	bound       sim.Time
	deadAtStart []graph.NodeID
	// mass distribution: the globally matching users.
	truth map[int]bool
	// content search: per-node users holding the term when the query left.
	truthByNode map[graph.NodeID]map[int]bool
}

// AttrScenario drives the paper's third architecture: a servers-only
// topology carrying a backbone-MST, broadcast/convergecast for delivery,
// per-node term-indexed mailstores for retrieval, and auditors holding it
// to no-lost-deliveries, flagged partials, and bounded completion.
type AttrScenario struct {
	cfg   AttrConfig
	pop   Population
	sched *sim.Scheduler
	net   *netsim.Network
	reg   *obs.Registry
	tree  *broadcast.Tree
	adj   map[graph.NodeID][]graph.NodeID
	store map[graph.NodeID]*mailstore.Store
	aud   *Auditors
	rng   *rand.Rand

	pending   map[uint64]*attrQuery
	pendingID []uint64 // launch order, for deterministic completion sweeps
	undrained map[graph.NodeID]map[int]bool
	seq       int // launches so far; also the unique message-ID sequence

	rep AttrReport
}

// NewAttrScenario builds the world: one node per server, rings intra- and
// inter-region, the MST backbone over them, a broadcast tree on the MST,
// and a term-indexed mailstore per node.
func NewAttrScenario(cfg AttrConfig) (*AttrScenario, error) {
	cfg = cfg.withDefaults()
	s := &AttrScenario{
		cfg:       cfg,
		pop:       cfg.Pop,
		sched:     sim.New(cfg.Seed),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d)),
		reg:       obs.NewRegistry(),
		store:     make(map[graph.NodeID]*mailstore.Store),
		pending:   make(map[uint64]*attrQuery),
		undrained: make(map[graph.NodeID]map[int]bool),
	}
	g := s.buildTopology()
	s.net = netsim.New(s.sched, g)
	bb, err := mst.Backbone(g, true)
	if err != nil {
		return nil, err
	}
	s.adj = bb.Combined.Adjacency()
	for gs := 0; gs < s.pop.TotalServers(); gs++ {
		st := mailstore.New(4)
		st.EnableTermIndex()
		s.store[roamServerID(gs)] = st
	}
	s.tree, err = broadcast.Setup(broadcast.Config{
		Net:       s.net,
		Tree:      bb.Combined,
		Eval:      s.eval,
		Timeout:   cfg.Timeout,
		Sketch:    func(id graph.NodeID) (*sketch.Filter, uint64) { return s.store[id].Sketch() },
		SketchGen: func(id graph.NodeID) uint64 { return s.store[id].SketchGen() },
	})
	if err != nil {
		return nil, err
	}
	s.aud = NewAuditors(s.pop.AuthorityLen, false)
	return s, nil
}

// buildTopology wires servers only: intra-region rings (weight ~1) and an
// inter-region ring (weight ~2), the same shape the other drivers use minus
// the hosts (in §3.3 every message transits servers; user hosts contribute
// no routing). GHS needs globally distinct weights, so each edge carries a
// deterministic epsilon.
func (s *AttrScenario) buildTopology() *graph.Graph {
	p := s.pop
	g := graph.New()
	spr := p.ServersPerRegion
	eps := 0
	jitter := func(base float64) float64 {
		eps++
		return base + float64(eps)/1024
	}
	for r := 0; r < p.Regions; r++ {
		region := p.RegionName(r)
		for j := 0; j < spr; j++ {
			gs := r*spr + j
			g.MustAddNode(graph.Node{
				ID: roamServerID(gs), Label: serverLabel(gs),
				Region: region, Kind: graph.KindServer,
			})
		}
		for j := 0; j < spr; j++ {
			next := (j + 1) % spr
			if next == j {
				break
			}
			g.MustAddEdge(roamServerID(r*spr+j), roamServerID(r*spr+next), jitter(1))
			if spr == 2 {
				break
			}
		}
	}
	for r := 0; r < p.Regions && p.Regions > 1; r++ {
		next := (r + 1) % p.Regions
		if next == r {
			break
		}
		g.MustAddEdge(roamServerID(r*spr), roamServerID(next*spr), jitter(2))
		if p.Regions == 2 {
			break
		}
	}
	return g
}

// homeServer returns the global server index user u's mailbox lives on.
func (s *AttrScenario) homeServer(u int) int {
	return s.pop.RegionOf(u)*s.pop.ServersPerRegion + s.pop.HostOf(u)%s.pop.ServersPerRegion
}

// profileOf synthesizes user u's attribute profile deterministically — the
// population is virtual, so profiles are derived, not stored.
func (s *AttrScenario) profileOf(u int) *attr.Profile {
	p := &attr.Profile{User: s.pop.Name(u)}
	p.Add(attr.TypeInterest, fmt.Sprintf("g%d", u%s.cfg.Groups), attr.Public).
		Add(attr.TypeCity, attrCities[u%len(attrCities)], attr.Public).
		Add(attr.TypeName, fmt.Sprintf("user%d", u), attr.Public)
	return p
}

// matchingOn enumerates group candidates homed on server gs and verifies
// each against the real matcher.
func (s *AttrScenario) matchingOn(gs, group int, q attr.Query) []int {
	var out []int
	for u := group; u < s.pop.Users; u += s.cfg.Groups {
		if s.homeServer(u) != gs {
			continue
		}
		if q.Matches(s.profileOf(u)) {
			out = append(out, u)
		}
	}
	return out
}

// eval is the broadcast Evaluator. The payload is the typed
// broadcast.AttrQuery shared with the tree layer: a mass distribution
// deposits a copy for every local match (and ledgers it owed), a content
// search evaluates the planner's terms against the term index. Items are
// broadcast.UserMatch either way — the typed convergecast currency that
// replaced space-joined "u<n>" tokens.
func (s *AttrScenario) eval(node graph.NodeID, payload any) []any {
	p, ok := payload.(broadcast.AttrQuery)
	if !ok {
		return nil
	}
	if p.Distribute {
		gs := int(node - simServerBase - 1)
		users := s.matchingOn(gs, p.Group, p.Query)
		items := make([]any, 0, len(users))
		now := s.sched.Now()
		for _, u := range users {
			s.store[node].Deposit(s.pop.Name(u), mail.Message{
				ID: p.MsgID, Subject: p.Subject, Body: p.Body, SubmittedAt: now,
			}, now)
			if s.undrained[node] == nil {
				s.undrained[node] = make(map[int]bool)
			}
			s.undrained[node][u] = true
			s.reg.Inc("bcast_deposits")
			items = append(items, broadcast.UserMatch{User: u, Node: node})
		}
		s.aud.RecordSubmit(p.MsgID.String(), users)
		return items
	}
	var items []any
	for _, u := range s.contentHolders(node, attr.PlanQuery(p.Query).Terms) {
		items = append(items, broadcast.UserMatch{User: u, Node: node})
	}
	return items
}

// contentHolders resolves the users on a node whose buffered mail contains
// every term, as population indices.
func (s *AttrScenario) contentHolders(node graph.NodeID, terms []string) []int {
	var out []int
	for _, name := range s.store[node].SearchTerms(terms) {
		if u, ok := s.pop.UserIndex(name); ok {
			out = append(out, u)
		}
	}
	return out
}

// downNodes lists tree nodes currently down, excluding the origin.
func (s *AttrScenario) downNodes(origin graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for gs := 0; gs < s.pop.TotalServers(); gs++ {
		id := roamServerID(gs)
		if id != origin && !s.net.IsUp(id) {
			out = append(out, id)
		}
	}
	return out
}

// launch starts one query from the home server of a random sender. Content
// searches only leave when nothing else is in flight, so the term index is
// stable under them.
func (s *AttrScenario) launch(content bool) {
	seq := s.seq
	s.seq++
	sender := s.rng.Intn(s.pop.Users)
	origin := roamServerID(s.homeServer(sender))
	if content && len(s.pending) > 0 {
		content = false // don't stall the schedule; send a distribution instead
	}
	if !s.net.IsUp(origin) {
		s.rep.Skipped++
		return
	}
	if d := s.tree.MaxDepthFrom(origin); d > s.rep.MaxDepth {
		s.rep.MaxDepth = d
	}
	q := &attrQuery{origin: origin, start: s.sched.Now(), content: content}
	q.bound = q.start + s.cfg.Timeout*sim.Time(s.tree.MaxDepthFrom(origin)) + sim.Unit
	q.deadAtStart = s.downNodes(origin)

	var payload broadcast.AttrQuery
	pruned := false
	if content {
		term := attrTerms[s.rng.Intn(len(attrTerms))]
		query, err := attr.ParseQuery("content=" + term)
		if err != nil {
			s.aud.RecordViolation(ViolationBroadcastLoss, "unparseable content query "+term)
			return
		}
		plan := attr.PlanQuery(query)
		pruned = plan.Route == attr.RoutePruned && !s.cfg.DisablePrune
		q.truthByNode = make(map[graph.NodeID]map[int]bool)
		for gs := 0; gs < s.pop.TotalServers(); gs++ {
			id := roamServerID(gs)
			holders := make(map[int]bool)
			for _, u := range s.contentHolders(id, plan.Terms) {
				holders[u] = true
			}
			if len(holders) > 0 {
				q.truthByNode[id] = holders
			}
		}
		payload = broadcast.AttrQuery{Group: -1, Query: query}
	} else {
		group := s.rng.Intn(s.cfg.Groups)
		qs := fmt.Sprintf("interest=g%d", group)
		if s.rng.Intn(3) == 0 {
			city := attrCities[s.rng.Intn(len(attrCities))]
			qs += fmt.Sprintf(", city^=%s", city[:3])
		}
		query, err := attr.ParseQuery(qs)
		if err != nil {
			s.aud.RecordViolation(ViolationBroadcastLoss, "unparseable query "+qs)
			return
		}
		q.truth = make(map[int]bool)
		for u := group; u < s.pop.Users; u += s.cfg.Groups {
			if query.Matches(s.profileOf(u)) {
				q.truth[u] = true
			}
		}
		term := attrTerms[s.rng.Intn(len(attrTerms))]
		payload = broadcast.AttrQuery{
			MsgID:      mail.MessageID{Node: origin, Seq: uint64(seq) + 1},
			Group:      group,
			Query:      query,
			Subject:    "bulletin " + qs,
			Body:       fmt.Sprintf("%s notice for group g%d", term, group),
			Distribute: true,
		}
	}
	var id uint64
	var err error
	if pruned {
		// On-demand aggregation keeps caches maximally fresh; a periodic
		// cadence instead leaves the staleness windows the fail-open rule
		// is audited under.
		if s.cfg.SketchRefreshEvery == 0 {
			s.rep.Refreshes++
			s.tree.RefreshSketches()
		}
		q.pruneRoute = true
		id, err = s.tree.Distribute(origin, payload, nil)
	} else {
		id, err = s.tree.Start(origin, payload, nil)
	}
	if err != nil {
		s.rep.Skipped++
		return
	}
	q.id = id
	s.pending[id] = q
	s.pendingID = append(s.pendingID, id)
}

// excused returns every node in a subtree rooted at an unavailable child —
// users homed there are excused from the delivery audit for this query.
func (s *AttrScenario) excused(origin graph.NodeID, roots []graph.NodeID) map[graph.NodeID]bool {
	if len(roots) == 0 {
		return nil
	}
	// Parent relation from this origin.
	parent := map[graph.NodeID]graph.NodeID{origin: origin}
	queue := []graph.NodeID{origin}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, nb := range s.adj[at] {
			if _, seen := parent[nb]; !seen {
				parent[nb] = at
				queue = append(queue, nb)
			}
		}
	}
	out := make(map[graph.NodeID]bool)
	for _, r := range roots {
		stack := []graph.NodeID{r}
		for len(stack) > 0 {
			at := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if out[at] {
				continue
			}
			out[at] = true
			for _, nb := range s.adj[at] {
				if nb != parent[at] {
					stack = append(stack, nb)
				}
			}
		}
	}
	return out
}

// harvest audits every completed in-flight query.
func (s *AttrScenario) harvest() {
	remaining := s.pendingID[:0]
	for _, id := range s.pendingID {
		q := s.pending[id]
		sum, at, ok := s.tree.ResultAt(id)
		if !ok {
			remaining = append(remaining, id)
			continue
		}
		delete(s.pending, id)
		s.audit(q, sum, at)
	}
	s.pendingID = remaining
}

// audit holds one completed query to the §3.3 invariants.
func (s *AttrScenario) audit(q *attrQuery, sum broadcast.Summary, at sim.Time) {
	// Bounded completion: the origin's own depth-scaled timer is the worst
	// case; exceeding it means a parent failed to time out on a dead child.
	if at > q.bound {
		s.aud.RecordViolation(ViolationConvergecastBound,
			fmt.Sprintf("query %d finished at %d, bound %d", q.id, at, q.bound))
	}
	excused := s.excused(q.origin, sum.Unavailable)
	// Subtrees in sum.Pruned are excused *by proof*: a fresh sketch showed
	// no possible match below, so they owe no items and no unavailability
	// flag — but any ground-truth match inside one is a false negative,
	// checked in auditContent.
	prunedSet := s.excused(q.origin, sum.Pruned)
	if len(sum.Unavailable) > 0 {
		s.rep.Partial++
	}
	// Positive E6: children dead for the query's whole lifetime must be
	// flagged unavailable, never silently merged. A dead node inside a
	// pruned subtree is the exception: it was excused by proof, not
	// silently merged, so completeness claims stay honest without it.
	if len(sum.Unavailable) == 0 {
		for _, id := range q.deadAtStart {
			if !s.net.IsUp(id) && !prunedSet[id] {
				s.aud.RecordViolation(ViolationPartialUnflagged,
					fmt.Sprintf("query %d: node %d dead throughout but summary claims complete", q.id, id))
				break
			}
		}
	}
	got := make(map[int]bool)
	for _, it := range sum.Items {
		m, ok := it.(broadcast.UserMatch)
		if !ok {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("query %d: non-user item %v", q.id, it))
			continue
		}
		if got[m.User] {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("query %d: u%d summarized twice", q.id, m.User))
		}
		if prunedSet[m.Node] {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("query %d: item from u%d@%d inside a pruned subtree", q.id, m.User, m.Node))
		}
		got[m.User] = true
	}
	if q.content {
		s.rep.ContentQueries++
		s.auditContent(q, got, excused, prunedSet)
		s.recordPrune(q, sum, prunedSet)
		lat := float64(at-q.start) / float64(sim.Unit)
		s.reg.Histogram("lat_convergecast", nil).Observe(lat)
		return
	}
	if len(sum.Pruned) > 0 {
		// Distributions must deposit at every audience mailbox; the tree
		// never prunes them (AttrQuery.SketchTerms is nil when
		// Distribute=true). Seeing a pruned root here means that contract
		// broke.
		s.aud.RecordViolation(ViolationBroadcastLoss,
			fmt.Sprintf("query %d: distribution pruned %d subtrees", q.id, len(sum.Pruned)))
	}
	s.rep.Queries++
	s.rep.Deliveries += len(got)
	truth := make([]int, 0, len(q.truth))
	for u := range q.truth {
		truth = append(truth, u)
	}
	sort.Ints(truth)
	for _, u := range truth {
		if got[u] {
			continue
		}
		if excused[roamServerID(s.homeServer(u))] {
			continue
		}
		if len(sum.Unavailable) == 0 {
			s.aud.RecordViolation(ViolationPartialUnflagged,
				fmt.Sprintf("query %d: u%d missing from a summary claiming completeness", q.id, u))
		} else {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("query %d: u%d missing though its node responded", q.id, u))
		}
	}
	for u := range got {
		if !q.truth[u] {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("query %d: bogus delivery claim for u%d", q.id, u))
		}
	}
	lat := float64(at-q.start) / float64(sim.Unit)
	s.reg.Histogram("lat_broadcast", nil).Observe(lat)
}

// auditContent compares a term search against the per-node index snapshot
// taken at launch (the index is stable in flight: content queries only leave
// when nothing else is pending, and sweeps pause while they run).
//
// The two excusal sets have opposite contracts. A node under an unavailable
// root is excused outright: its summary was lost, so nothing can be said
// about its holders. A node under a *pruned* root is excused only from
// being visited — the sketch proved it holds nothing, so any launch-time
// holder there is a pruning false negative, the one violation the
// selective multicast must never commit.
func (s *AttrScenario) auditContent(q *attrQuery, got map[int]bool, excused, prunedSet map[graph.NodeID]bool) {
	truthAll := make(map[int]bool)
	for node, holders := range q.truthByNode {
		if excused[node] {
			continue
		}
		if prunedSet[node] {
			for u := range holders {
				s.aud.RecordViolation(ViolationBroadcastLoss,
					fmt.Sprintf("content query %d: u%d@%d held a match inside a pruned subtree (false negative)", q.id, u, node))
			}
			continue
		}
		for u := range holders {
			truthAll[u] = true
			if !got[u] {
				s.aud.RecordViolation(ViolationBroadcastLoss,
					fmt.Sprintf("content query %d: u%d's indexed copy not reported", q.id, u))
			}
		}
	}
	for u := range got {
		home := roamServerID(s.homeServer(u))
		if excused[home] {
			continue // evaluated before its subtree's summary was lost
		}
		if !truthAll[u] && !q.truthByNode[home][u] {
			s.aud.RecordViolation(ViolationBroadcastLoss,
				fmt.Sprintf("content query %d: bogus holder claim for u%d", q.id, u))
		}
	}
}

// recordPrune folds one content query's pruning ledger into the report and
// the obs counters, including the mailboxes-visited accounting the E22
// comparison against E21 is built on.
func (s *AttrScenario) recordPrune(q *attrQuery, sum broadcast.Summary, prunedSet map[graph.NodeID]bool) {
	st := s.tree.QueryPruneStats(q.id)
	s.rep.PrunedSubtrees += st.PrunedSubtrees
	s.rep.PrunedNodes += st.PrunedNodes
	s.rep.VisitedNodes += sum.Nodes
	s.rep.SketchFP += st.FPSubtrees
	s.rep.StaleOpen += st.StaleOpen
	s.reg.Add("attr_pruned_subtrees", int64(st.PrunedSubtrees))
	s.reg.Add("attr_pruned_nodes", int64(st.PrunedNodes))
	s.reg.Add("attr_visited_nodes", int64(sum.Nodes))
	s.reg.Add("attr_sketch_fp", int64(st.FPSubtrees))
	s.reg.Add("attr_sketch_stale_open", int64(st.StaleOpen))
	for gs := 0; gs < s.pop.TotalServers(); gs++ {
		id := roamServerID(gs)
		boxes := int64(s.store[id].NumUsers())
		s.rep.CQMailboxesFull += boxes
		if !prunedSet[id] {
			s.rep.CQMailboxes += boxes
		}
	}
}

// sweep drains deposited copies from live nodes into the retrieval ledger.
// Paused while a content query is in flight so its ground truth stays fixed.
func (s *AttrScenario) sweep() {
	for _, q := range s.pending {
		if q.content {
			return
		}
	}
	nodes := make([]graph.NodeID, 0, len(s.undrained))
	for id := range s.undrained {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		if !s.net.IsUp(node) {
			continue // a crashed store is unreachable until recovery
		}
		users := make([]int, 0, len(s.undrained[node]))
		for u := range s.undrained[node] {
			users = append(users, u)
		}
		sort.Ints(users)
		for _, u := range users {
			ids := make([]string, 0, 1)
			for _, st := range s.store[node].Drain(s.pop.Name(u)) {
				ids = append(ids, st.ID.String())
			}
			s.aud.CreditRetrieved(u, ids)
		}
		delete(s.undrained, node)
	}
}

// Run executes the scenario: launch queries on schedule, inject faults,
// harvest completions, sweep deposits, then settle, force a pair of content
// searches through the quiet world, and close the ledger.
func (s *AttrScenario) Run() AttrReport {
	inj := faults.NewSimTarget(s.net, s.nodeMap(), s.cfg.Tick)
	var events []faults.Event
	if s.cfg.Schedule != nil {
		events = s.cfg.Schedule.Events
	}
	next := 0
	launched := 0
	for tick := 0; tick < s.cfg.Ticks; tick++ {
		for next < len(events) && events[next].Tick <= tick {
			_ = inj.Inject(events[next])
			next++
		}
		if s.cfg.SketchRefreshEvery > 0 && tick%s.cfg.SketchRefreshEvery == 0 {
			s.rep.Refreshes++
			s.tree.RefreshSketches()
		}
		if launched < s.cfg.Queries && tick%s.cfg.QueryEvery == 0 {
			s.launch(launched > 0 && launched%s.cfg.ContentEvery == 0)
			launched++
		}
		s.sched.RunFor(s.cfg.Tick)
		s.harvest()
		if tick > 0 && tick%s.cfg.SweepEvery == 0 {
			s.sweep()
		}
	}
	for next < len(events) { // close remaining fault windows
		_ = inj.Inject(events[next])
		next++
	}
	s.sched.Run()
	s.harvest()

	// Quiet-world epilogue: one more distribution through the healthy tree
	// loads the term indexes, then two content searches read them back
	// before the closing sweep drains everything into the ledger.
	s.launch(false)
	s.sched.Run()
	s.harvest()
	for i := 0; i < 2; i++ {
		s.launch(true)
		s.sched.Run()
		s.harvest()
	}
	s.sweep()
	s.aud.FinishOutstanding()

	s.rep.Ok = s.aud.Ok()
	s.rep.Violations = s.aud.Counts()
	s.rep.Examples = s.aud.Violations()
	s.rep.Ticks = s.cfg.Ticks
	return s.rep
}

func (s *AttrScenario) nodeMap() map[string]graph.NodeID {
	nodes := make(map[string]graph.NodeID)
	for gs := 0; gs < s.pop.TotalServers(); gs++ {
		nodes[serverLabel(gs)] = roamServerID(gs)
	}
	return nodes
}

// SetSchedule installs a compiled fault schedule after construction (the
// surface needs the built scenario) and stretches the run past its horizon.
func (s *AttrScenario) SetSchedule(sched *faults.Schedule) {
	s.cfg.Schedule = sched
	if sched != nil && sched.Horizon() > s.cfg.Ticks {
		s.cfg.Ticks = sched.Horizon()
	}
}

// FaultSurface lists what the chaos schedule may break: server crashes and
// latency only. Drops are excluded — broadcast queries and summaries are
// fire-and-forget, so a dropped edge message loses data without any node
// being observably at fault; the paper's answer to that is the timeout
// machinery already exercised by crashes.
func (s *AttrScenario) FaultSurface() faults.Spec {
	spec := faults.Spec{}
	for gs := 0; gs < s.pop.TotalServers(); gs++ {
		spec.Servers = append(spec.Servers, serverLabel(gs))
	}
	return spec
}

// Tree exposes the broadcast tree (tests assert on depth and timeout).
func (s *AttrScenario) Tree() *broadcast.Tree { return s.tree }

// Network exposes the simulated network.
func (s *AttrScenario) Network() *netsim.Network { return s.net }

// Store returns the mailstore of global server gs.
func (s *AttrScenario) Store(gs int) *mailstore.Store { return s.store[roamServerID(gs)] }

// Snapshot returns counters and histograms (lat_broadcast,
// lat_convergecast, bcast_deposits, net_*).
func (s *AttrScenario) Snapshot() obs.Snapshot {
	snap := s.reg.Snapshot()
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	for k, v := range s.net.Stats().Counters() {
		snap.Counters["net_"+k] = v
	}
	return snap
}
