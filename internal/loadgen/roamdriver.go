package loadgen

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/locind"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/queueing"
	"github.com/largemail/largemail/internal/sim"
)

// RoamConfig configures a RoamDriver.
type RoamConfig struct {
	Seed int64
	Pop  Population
	// Tick is the virtual length of one schedule tick (default 10 units).
	Tick sim.Time
	// Subgroups is each region's hash modulus (default 2 × servers/region).
	Subgroups int
	// AckTimeout overrides the deposit-retry timeout (0 = locind default).
	AckTimeout sim.Time
}

// OverheadEvent is one piece of roaming-tracking work a delivery incurred,
// reported by the locind overhead hook: "consult" per location query issued,
// "roam_alert" when a consultation located a roamed user.
type OverheadEvent struct {
	User  int
	Event string
}

// RoamDriver drives the paper's second architecture (§3.2, limited
// location-independent access) behind the same Driver contract as the
// syntax-directed SimDriver: one locind.System per region federated over a
// shared regional topology, hash sub-group authority lists instead of
// host-derived ones, and agents that roam between hosts without renames.
//
// Retrieval in this design polls the whole live authority list every call
// (locind keeps no LastCheckingTime), so the strict §3.1.2c poll audit does
// not apply: run this driver through RunRoamScenario (which always installs
// an OnTick hook, disabling that audit) or under a fault schedule.
type RoamDriver struct {
	cfg   RoamConfig
	pop   Population
	sched *sim.Scheduler
	net   *netsim.Network
	topo  *graph.Graph

	reg   *obs.Registry
	trace *obs.Tracer

	fed     *locind.Federation
	systems []*locind.System // per region

	agents  map[int]*locind.Agent
	loginOK map[int]bool // user's last Login attempt succeeded
	order   []int        // materialized users, in first-touch order

	overhead []OverheadEvent
	maxLoad  int
}

// roamServerID maps a global server index to its node ID (no spare slots in
// the roaming topology).
func roamServerID(gs int) graph.NodeID { return simServerBase + 1 + graph.NodeID(gs) }

// NewRoamDriver builds the federated location-independent world.
func NewRoamDriver(cfg RoamConfig) (*RoamDriver, error) {
	cfg.Pop = cfg.Pop.withDefaults()
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * sim.Unit
	}
	p := cfg.Pop
	if cfg.Subgroups <= 0 {
		cfg.Subgroups = 2 * p.ServersPerRegion
	}
	d := &RoamDriver{
		cfg:     cfg,
		pop:     p,
		sched:   sim.New(cfg.Seed),
		fed:     locind.NewFederation(),
		agents:  make(map[int]*locind.Agent),
		loginOK: make(map[int]bool),
	}
	d.reg = obs.NewRegistry()
	sched := d.sched
	d.trace = obs.NewTracer(func() int64 { return int64(sched.Now()) }, d.reg)

	d.topo = d.buildTopology()
	d.net = netsim.New(d.sched, d.topo)

	perServer := p.Users / p.TotalServers()
	d.maxLoad = perServer + perServer/4 + 4

	for r := 0; r < p.Regions; r++ {
		servers := make([]graph.NodeID, p.ServersPerRegion)
		for j := range servers {
			servers[j] = roamServerID(r*p.ServersPerRegion + j)
		}
		sys, err := locind.NewSystem(locind.Config{
			Region:     p.RegionName(r),
			Net:        d.net,
			Servers:    servers,
			Subgroups:  cfg.Subgroups,
			ListLen:    p.AuthorityLen,
			AckTimeout: cfg.AckTimeout,
			Stats:      d.reg,
			Trace:      d.trace,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: region %d: %w", r, err)
		}
		for i := 0; i < p.HostsPerRegion; i++ {
			gh := r*p.HostsPerRegion + i
			if _, err := sys.AddHost(fmt.Sprintf("h%d", gh), hostID(gh)); err != nil {
				return nil, err
			}
		}
		if err := d.fed.Add(sys); err != nil {
			return nil, err
		}
		sys.SetOverheadHook(d.noteOverhead)
		d.systems = append(d.systems, sys)
	}
	return d, nil
}

// buildTopology mirrors the SimDriver wiring without spare slots: host
// spokes (weight 1), intra-region server rings (weight 1), inter-region ring
// (weight 2).
func (d *RoamDriver) buildTopology() *graph.Graph {
	p := d.pop
	g := graph.New()
	spr := p.ServersPerRegion
	for r := 0; r < p.Regions; r++ {
		region := p.RegionName(r)
		for j := 0; j < spr; j++ {
			gs := r*spr + j
			g.MustAddNode(graph.Node{
				ID: roamServerID(gs), Label: serverLabel(gs),
				Region: region, Kind: graph.KindServer,
			})
		}
		for j := 0; j < spr; j++ {
			next := (j + 1) % spr
			if next == j {
				break
			}
			g.MustAddEdge(roamServerID(r*spr+j), roamServerID(r*spr+next), 1)
			if spr == 2 {
				break
			}
		}
		for i := 0; i < p.HostsPerRegion; i++ {
			gh := r*p.HostsPerRegion + i
			g.MustAddNode(graph.Node{
				ID: hostID(gh), Label: hostLabel(gh),
				Region: region, Kind: graph.KindHost,
			})
			g.MustAddEdge(hostID(gh), roamServerID(r*spr+i%spr), 1)
		}
	}
	for r := 0; r < p.Regions && p.Regions > 1; r++ {
		next := (r + 1) % p.Regions
		if next == r {
			break
		}
		g.MustAddEdge(roamServerID(r*spr), roamServerID(next*spr), 2)
		if p.Regions == 2 {
			break
		}
	}
	return g
}

// noteOverhead buffers one overhead-hook event for DrainOverheadEvents.
func (d *RoamDriver) noteOverhead(user names.Name, event string) {
	if len(user.User) < 2 || user.User[0] != 'u' {
		return
	}
	idx, err := strconv.Atoi(user.User[1:])
	if err != nil {
		return
	}
	d.overhead = append(d.overhead, OverheadEvent{User: idx, Event: event})
}

// DrainOverheadEvents returns the overhead events recorded since the last
// drain. The §3.2.2c auditor consumes them each tick.
func (d *RoamDriver) DrainOverheadEvents() []OverheadEvent {
	out := d.overhead
	d.overhead = nil
	return out
}

// Scheduler exposes the simulation clock.
func (d *RoamDriver) Scheduler() *sim.Scheduler { return d.sched }

// Network exposes the simulated network.
func (d *RoamDriver) Network() *netsim.Network { return d.net }

// System returns region r's locind system.
func (d *RoamDriver) System(r int) *locind.System { return d.systems[r] }

// Population implements Driver.
func (d *RoamDriver) Population() Population { return d.pop }

// Tracer implements Driver.
func (d *RoamDriver) Tracer() *obs.Tracer { return d.trace }

// LoginOK reports whether user u's last login attempt succeeded — users the
// overhead auditor may hold to the at-primary-means-no-consultation rule.
func (d *RoamDriver) LoginOK(u int) bool { return d.loginOK[u] }

// Materialized returns the users touched so far, in first-touch order.
func (d *RoamDriver) Materialized() []int { return d.order }

// CurrentHost returns u's current global host index (primary until roamed).
func (d *RoamDriver) CurrentHost(u int) int {
	if a, ok := d.agents[u]; ok {
		return int(a.CurrentHost() - simHostBase - 1)
	}
	return d.pop.HostOf(u)
}

// ensure materializes user u: an agent at their primary host plus a login
// announcement. A login that failed (all region servers down) is retried on
// the next touch.
func (d *RoamDriver) ensure(u int) (*locind.Agent, error) {
	if a, ok := d.agents[u]; ok {
		if !d.loginOK[u] {
			d.loginOK[u] = a.Login() == nil
		}
		return a, nil
	}
	sys := d.systems[d.pop.RegionOf(u)]
	a, err := sys.NewAgent(d.pop.Name(u))
	if err != nil {
		return nil, err
	}
	d.agents[u] = a
	d.order = append(d.order, u)
	d.loginOK[u] = a.Login() == nil
	return a, nil
}

// Roam moves user u to another host inside their region (no rename — the
// defining property of §3.2) and logs in there. The engine's auditors keep
// holding the user to exactly-once delivery across the move.
func (d *RoamDriver) Roam(u, gh int) error {
	a, err := d.ensure(u)
	if err != nil {
		return err
	}
	if gh/d.pop.HostsPerRegion != d.pop.RegionOf(u) {
		return fmt.Errorf("loadgen: host %d outside u%d's region", gh, u)
	}
	if err := a.MoveTo(hostID(gh)); err != nil {
		return err
	}
	d.loginOK[u] = a.Login() == nil
	return nil
}

// Rehash changes every region's hash modulus — the live reconfiguration of
// §3.2.3c — and returns the total mailboxes migrated.
func (d *RoamDriver) Rehash(k int) (int, error) {
	moved := 0
	for _, sys := range d.systems {
		m, err := sys.Rehash(k)
		moved += m
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// Submit implements Driver: the nearest live server to the sender's current
// host accepts in-process — the commit point; an error means nothing was
// accepted.
func (d *RoamDriver) Submit(from int, to []int, subject, body string) (string, error) {
	fa, err := d.ensure(from)
	if err != nil {
		return "", err
	}
	toNames := make([]names.Name, len(to))
	for i, u := range to {
		if _, err := d.ensure(u); err != nil {
			return "", err
		}
		toNames[i] = d.pop.Name(u)
	}
	sys := d.systems[d.pop.RegionOf(from)]
	sid, err := sys.NearestServer(fa.CurrentHost())
	if err != nil {
		return "", err
	}
	srv, ok := sys.Server(sid)
	if !ok {
		return "", fmt.Errorf("loadgen: no server process on node %d", sid)
	}
	id, err := srv.Accept(fa.User(), toNames, subject, body)
	if err != nil {
		return "", err
	}
	return id.String(), nil
}

// Retrieve implements Driver. locind's GetMail polls every live authority
// server each call, so Polls ≈ the authority length by design here.
func (d *RoamDriver) Retrieve(u int) RetrieveResult {
	a, err := d.ensure(u)
	if err != nil {
		return RetrieveResult{}
	}
	p0, dup0 := a.Polls(), a.Duplicates()
	msgs := a.GetMail()
	ids := make([]string, len(msgs))
	where := hostLabel(d.CurrentHost(u))
	for i, m := range msgs {
		ids[i] = m.ID.String()
		d.trace.Stamp(ids[i], obs.StageRetrieve, where)
	}
	return RetrieveResult{
		IDs:          ids,
		Polls:        a.Polls() - p0,
		Duplicates:   a.Duplicates() - dup0,
		LastChecking: int64(d.sched.Now()),
	}
}

// Step implements Driver.
func (d *RoamDriver) Step(n int) { d.sched.RunFor(sim.Time(n) * d.cfg.Tick) }

// Settle implements Driver.
func (d *RoamDriver) Settle() { d.sched.Run() }

// Snapshot implements Driver: the shared locind counters and histograms
// (deposits, consultations, notify_*, lat_roam_resolve, ...) plus network
// counters.
func (d *RoamDriver) Snapshot() obs.Snapshot {
	snap := d.reg.Snapshot()
	if snap.Counters == nil {
		snap.Counters = make(map[string]int64)
	}
	for k, v := range d.net.Stats().Counters() {
		snap.Counters["net_"+k] = v
	}
	return snap
}

// Injector implements Driver.
func (d *RoamDriver) Injector() faults.Injector {
	nodes := make(map[string]graph.NodeID)
	for gh := 0; gh < d.pop.TotalHosts(); gh++ {
		nodes[hostLabel(gh)] = hostID(gh)
	}
	for gs := 0; gs < d.pop.TotalServers(); gs++ {
		nodes[serverLabel(gs)] = roamServerID(gs)
	}
	return faults.NewSimTarget(d.net, nodes, d.cfg.Tick)
}

// FaultSurface implements Driver. Same safety reasoning as the SimDriver:
// servers take crashes and latency (deposit retries plus the Recovered
// re-dispatch cover them), only hosts take drops (host-bound traffic is
// probes and alerts, which no delivery invariant depends on — retrieval
// polls the servers directly), and only ≥3-server rings risk link cuts.
// No kill targets: the roaming driver's stores are memory-only.
func (d *RoamDriver) FaultSurface() faults.Spec {
	p := d.pop
	spec := faults.Spec{}
	for gs := 0; gs < p.TotalServers(); gs++ {
		spec.Servers = append(spec.Servers, serverLabel(gs))
	}
	for gh := 0; gh < p.TotalHosts(); gh++ {
		spec.DropTargets = append(spec.DropTargets, hostLabel(gh))
	}
	if p.ServersPerRegion >= 3 {
		for r := 0; r < p.Regions; r++ {
			for j := 0; j < p.ServersPerRegion; j++ {
				next := (j + 1) % p.ServersPerRegion
				if next == j {
					break
				}
				spec.Links = append(spec.Links, [2]string{
					serverLabel(r*p.ServersPerRegion + j),
					serverLabel(r*p.ServersPerRegion + next),
				})
			}
		}
	}
	return spec
}

// ServerLoads implements Driver: hash sub-groups spread users uniformly, so
// the prediction is the uniform share; observed deposits come from each
// server's counter.
func (d *RoamDriver) ServerLoads() []ServerLoad {
	p := d.pop
	perServer := p.Users / p.TotalServers()
	rho := float64(perServer) / float64(d.maxLoad)
	var out []ServerLoad
	for r, sys := range d.systems {
		ids := make([]graph.NodeID, 0, p.ServersPerRegion)
		for j := 0; j < p.ServersPerRegion; j++ {
			ids = append(ids, roamServerID(r*p.ServersPerRegion+j))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			sl := ServerLoad{
				Name:    serverLabel(int(id - simServerBase - 1)),
				Region:  p.RegionName(r),
				Load:    perServer,
				MaxLoad: d.maxLoad,
				Rho:     rho,
				QWait:   queueing.Wait(rho),
			}
			if srv, ok := sys.Server(id); ok {
				sl.Deposits = srv.Deposits()
			}
			out = append(out, sl)
		}
	}
	return out
}
