package loadgen

import (
	"testing"

	"github.com/largemail/largemail/internal/faults"
)

// TestAttrPrunedMatchesUnpruned is the scenario-level property pin: the same
// seeded workload run with and without sketch pruning must produce identical
// match activity — same queries, same deliveries, zero auditor violations on
// both sides — while the pruned run provably skips nodes. False negatives
// would surface as ViolationBroadcastLoss in the pruned run's audit (every
// launch-time holder inside a pruned subtree is checked).
func TestAttrPrunedMatchesUnpruned(t *testing.T) {
	run := func(disable bool) AttrReport {
		s := newAttrScenario(t, AttrConfig{
			Seed:         7,
			Pop:          Population{Users: 500, Regions: 2, ServersPerRegion: 4},
			Queries:      24,
			DisablePrune: disable,
		})
		return s.Run()
	}
	pruned, base := run(false), run(true)
	requireAttrClean(t, pruned)
	requireAttrClean(t, base)
	if pruned.Queries != base.Queries || pruned.ContentQueries != base.ContentQueries ||
		pruned.Deliveries != base.Deliveries {
		t.Fatalf("pruning changed workload outcomes:\npruned %+v\nbase   %+v", pruned, base)
	}
	if base.PrunedSubtrees != 0 || base.PrunedNodes != 0 {
		t.Fatalf("DisablePrune run still pruned: %+v", base)
	}
	if pruned.PrunedNodes == 0 {
		t.Fatalf("pruned run skipped nothing — sketches never proved absence: %+v", pruned)
	}
	// The committed-bench acceptance in miniature: pruned content queries
	// must walk at most half the mailboxes the exhaustive path walks.
	if pruned.CQMailboxesFull == 0 ||
		pruned.CQMailboxes*2 > pruned.CQMailboxesFull {
		t.Fatalf("pruned queries visited %d of %d mailboxes, want <= 50%%",
			pruned.CQMailboxes, pruned.CQMailboxesFull)
	}
}

// TestAttrPruneStaleFailsOpen runs with a periodic refresh cadence, leaving
// windows where distributions make the cached subtree sketches stale. Every
// content query launched inside such a window must fail open — visit and
// find the holders — and the run must stay violation-free.
func TestAttrPruneStaleFailsOpen(t *testing.T) {
	s := newAttrScenario(t, AttrConfig{
		Seed:               11,
		Pop:                Population{Users: 500, Regions: 2, ServersPerRegion: 4},
		Queries:            30,
		SketchRefreshEvery: 16, // sparse: most content launches see stale caches
	})
	rep := s.Run()
	requireAttrClean(t, rep)
	if rep.ContentQueries == 0 {
		t.Fatalf("no content queries: %+v", rep)
	}
	if rep.StaleOpen == 0 {
		t.Fatalf("sparse refresh cadence produced no stale fail-opens: %+v", rep)
	}
	snap := s.Snapshot()
	if snap.Counters["attr_sketch_stale_open"] != int64(rep.StaleOpen) {
		t.Fatalf("obs counter attr_sketch_stale_open=%d, report %d",
			snap.Counters["attr_sketch_stale_open"], rep.StaleOpen)
	}
}

// TestAttrPruneChaos is the chaos regression: crashes and latency under
// pruned content queries, auditors still clean — pruning must not eat
// matches, mask dead subtrees, or break the completion bound.
func TestAttrPruneChaos(t *testing.T) {
	s := newAttrScenario(t, AttrConfig{
		Seed:               13,
		Pop:                Population{Users: 400, Regions: 3, ServersPerRegion: 3},
		Queries:            24,
		SketchRefreshEvery: 8, // stale windows AND faults at once
	})
	spec := s.FaultSurface()
	spec.Seed = 13
	spec.Ticks = 60
	spec.Crashes = 4
	spec.Latencies = 3
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s.SetSchedule(&sched)
	rep := s.Run()
	requireAttrClean(t, rep)
	if rep.Queries == 0 || rep.ContentQueries == 0 {
		t.Fatalf("no activity: %+v", rep)
	}
	if rep.Partial == 0 {
		t.Fatalf("no partial summaries under a crash schedule: %+v", rep)
	}
}

// TestAttrPruneDeterminism pins that the pruned route stays bit-stable
// across runs, including the new accounting fields.
func TestAttrPruneDeterminism(t *testing.T) {
	run := func() AttrReport {
		s := newAttrScenario(t, AttrConfig{
			Seed:    5,
			Pop:     Population{Users: 300, Regions: 2, ServersPerRegion: 3},
			Queries: 24,
		})
		return s.Run()
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.ContentQueries != b.ContentQueries ||
		a.Deliveries != b.Deliveries || a.PrunedSubtrees != b.PrunedSubtrees ||
		a.PrunedNodes != b.PrunedNodes || a.VisitedNodes != b.VisitedNodes ||
		a.SketchFP != b.SketchFP || a.StaleOpen != b.StaleOpen ||
		a.CQMailboxes != b.CQMailboxes || a.CQMailboxesFull != b.CQMailboxesFull {
		t.Fatalf("same seed, different pruned runs:\n%+v\n%+v", a, b)
	}
	requireAttrClean(t, a)
}
