package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Profile shapes the workload's recipient draw over time. The uniform-ish
// default workload is what the §3.1.1 static optimizer was built for; these
// profiles are the conditions it was NOT built for — skew it cannot see at
// assignment time — and are what the online placement policies race on.
type Profile struct {
	// Kind selects the shape: "" (uniform — the historical workload,
	// untouched), "hotspot", "diurnal", or "flash".
	Kind string

	// HotHosts is how many hosts absorb the skew (hotspot/flash; default 1).
	HotHosts int
	// HotFraction is the probability a recipient draw targets the hot set
	// while the skew is active (default 0.8).
	HotFraction float64

	// Period is the diurnal wave length in ticks (default 200). Each region's
	// wave is phase-shifted by its index, so load rolls around the regions
	// the way daylight rolls around time zones.
	Period int

	// FlashStart/FlashLen bound the flash-crowd window in ticks (defaults
	// 40/60). Outside the window traffic is the uniform baseline; inside it
	// the hot set lights up AND senders think at ThinkMin, so the spike is
	// both skewed and intense.
	FlashStart, FlashLen int
}

func (p Profile) withDefaults() Profile {
	if p.HotHosts <= 0 {
		p.HotHosts = 1
	}
	if p.HotFraction <= 0 {
		p.HotFraction = 0.8
	}
	if p.Period <= 0 {
		p.Period = 200
	}
	if p.FlashStart <= 0 {
		p.FlashStart = 40
	}
	if p.FlashLen <= 0 {
		p.FlashLen = 60
	}
	return p
}

// active reports whether the profile skews the draw at this tick.
func (p Profile) active(tick int) bool {
	switch p.Kind {
	case "hotspot", "diurnal":
		return true
	case "flash":
		return tick >= p.FlashStart && tick < p.FlashStart+p.FlashLen
	}
	return false
}

// regionWeight is the diurnal wave: region r's relative traffic share at a
// tick, 1+sin phased by region so the peak rolls region to region.
func (p Profile) regionWeight(r, regions, tick int) float64 {
	phase := 2 * math.Pi * (float64(tick)/float64(p.Period) + float64(r)/float64(regions))
	return 1 + math.Sin(phase)
}

// ParseProfile parses a -profile flag value: "hotspot[:hosts[:fraction%]]",
// "diurnal[:period]", "flash[:start:len]", or "" / "uniform" for the
// unshaped baseline.
func ParseProfile(s string) (Profile, error) {
	parts := strings.Split(s, ":")
	var p Profile
	num := func(i int) (int, error) {
		n, err := strconv.Atoi(parts[i])
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("loadgen: bad profile parameter %q in %q", parts[i], s)
		}
		return n, nil
	}
	var err error
	switch parts[0] {
	case "", "uniform":
		return Profile{}, nil
	case "hotspot", "flash", "diurnal":
		p.Kind = parts[0]
	default:
		return Profile{}, fmt.Errorf("loadgen: unknown profile %q (want hotspot, diurnal, flash or uniform)", parts[0])
	}
	switch p.Kind {
	case "hotspot":
		if len(parts) > 1 {
			if p.HotHosts, err = num(1); err != nil {
				return Profile{}, err
			}
		}
		if len(parts) > 2 {
			pct, err := num(2)
			if err != nil || pct > 100 {
				return Profile{}, fmt.Errorf("loadgen: bad hot fraction in %q", s)
			}
			p.HotFraction = float64(pct) / 100
		}
	case "diurnal":
		if len(parts) > 1 {
			if p.Period, err = num(1); err != nil {
				return Profile{}, err
			}
		}
	case "flash":
		if len(parts) > 1 {
			if p.FlashStart, err = num(1); err != nil {
				return Profile{}, err
			}
		}
		if len(parts) > 2 {
			if p.FlashLen, err = num(2); err != nil {
				return Profile{}, err
			}
		}
	}
	if len(parts) > 3 {
		return Profile{}, fmt.Errorf("loadgen: too many profile parameters in %q", s)
	}
	return p.withDefaults(), nil
}
