package loadgen

import (
	"testing"
	"time"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/sim"
)

// countKind returns how many events of kind k a schedule carries.
func countKind(sched faults.Schedule, k faults.Kind) int {
	n := 0
	for _, e := range sched.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestSimNoLossUnderKillRestart runs the simulated transport with durable
// stores through a schedule of kill-restart windows (process death: the
// network node goes down AND in-memory mailbox state is destroyed) mixed
// with host drops, and requires the exactly-once/no-loss auditors to stay
// clean. Every message that survives a Kill does so because the WAL replay
// rebuilt its mailbox — the memory-only control (TestKillRestartLosesMailWithoutDurability)
// shows the same schedule losing mail when the stores cannot recover.
func TestSimNoLossUnderKillRestart(t *testing.T) {
	drv, err := NewSimDriver(SimConfig{
		Seed: 7,
		Pop: Population{
			Users:            20000,
			Regions:          2,
			ServersPerRegion: 4,
		},
		RetryTimeout: 96 * sim.Unit,
		DataDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	spec := drv.FaultSurface()
	if len(spec.KillTargets) == 0 {
		t.Fatal("durable sim driver offered no KillTargets")
	}
	spec.Seed = 7
	spec.Ticks = 120
	spec.KillRestarts = 3
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(sched, faults.Kill) != 3 || countKind(sched, faults.Restart) != 3 {
		t.Fatalf("schedule kills/restarts = %d/%d, want 3/3",
			countKind(sched, faults.Kill), countKind(sched, faults.Restart))
	}
	rep := New(drv, Config{
		Seed: 7, Messages: 3000, Sessions: 256, Ticks: 120,
		Workload: Workload{LocalBias: 0.3},
		Schedule: &sched,
	}).Run()
	if !rep.Ok {
		t.Fatalf("auditors flagged violations under kill-restart: %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}
	st, ok := drv.DurabilityStats()
	if !ok || st.Appends == 0 {
		t.Fatalf("WAL not exercised: stats = %+v ok = %v", st, ok)
	}
	for _, id := range drv.active {
		if n := drv.servers[id].PendingTransfers(); n > 0 {
			t.Errorf("server %v: %d transfers stranded in the pending ledger", id, n)
		}
	}
}

// TestSimMemoryFaultSurfaceHasNoKillTargets: without DataDir the fault
// surface must not offer kill-restart — killing a memory server is data
// loss by construction, and a schedule that drew such a window would turn
// a chaos soak into a guaranteed auditor failure.
func TestSimMemoryFaultSurfaceHasNoKillTargets(t *testing.T) {
	drv, err := NewSimDriver(SimConfig{
		Seed: 1,
		Pop:  Population{Users: 400, Regions: 1, ServersPerRegion: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if kt := drv.FaultSurface().KillTargets; len(kt) != 0 {
		t.Fatalf("memory driver offered KillTargets %v", kt)
	}
	if _, ok := drv.DurabilityStats(); ok {
		t.Fatal("memory driver reported durability stats")
	}
}

// TestLiveNoLossUnderKillRestartNoSpool is the tentpole soak: the live
// transport with the redelivery spool DISABLED, so nothing re-drives a
// failed deposit later — the only way a committed message survives a
// kill-restart is the durable store recovering it. MaxRecipients is 1
// because without the spool a multi-recipient Submit can partially commit
// while reporting an error, which would poison the no-loss ledger.
func TestLiveNoLossUnderKillRestartNoSpool(t *testing.T) {
	drv, err := NewLiveDriver(LiveConfig{
		Pop: Population{
			Users:            2000,
			Regions:          2,
			ServersPerRegion: 3,
		},
		Tick:    time.Millisecond,
		NoSpool: true,
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	spec := drv.FaultSurface()
	if len(spec.KillTargets) == 0 {
		t.Fatal("durable live driver offered no KillTargets")
	}
	spec.Seed = 3
	spec.Ticks = 100
	spec.KillRestarts = 4
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := New(drv, Config{
		Seed: 3, Messages: 400, Sessions: 64, Ticks: 100,
		Workload: Workload{LocalBias: 0.3, MaxRecipients: 1},
		Schedule: &sched,
	}).Run()
	if !rep.Ok {
		t.Fatalf("auditors flagged violations under no-spool kill-restart: %v\nexamples: %v",
			rep.Violations, rep.Examples)
	}
	m := drv.Cluster().Metrics()
	if m["kills"] == 0 || m["kills"] != m["restarts"] {
		t.Fatalf("kills=%d restarts=%d; schedule did not exercise kill-restart",
			m["kills"], m["restarts"])
	}
	st, ok := drv.DurabilityStats()
	if !ok || st.Appends == 0 {
		t.Fatalf("WAL not exercised: stats = %+v ok = %v", st, ok)
	}
}

// TestKillRestartLosesMailWithoutDurability is the negative control for the
// soak pair: the SAME no-spool live configuration minus DataDir, driven
// with a deterministic kill window over every server while traffic is in
// flight, must lose mail. If this ever passes cleanly, the durable soak
// above is proving nothing (some other layer is resurrecting the mail).
func TestKillRestartLosesMailWithoutDurability(t *testing.T) {
	drv, err := NewLiveDriver(LiveConfig{
		Pop: Population{
			Users:            200,
			Regions:          1,
			ServersPerRegion: 2,
		},
		Tick:    time.Millisecond,
		NoSpool: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drv.Close()
	if kt := drv.FaultSurface().KillTargets; len(kt) != 0 {
		t.Fatalf("memory live driver offered KillTargets %v", kt)
	}
	// Submit a burst, then kill-restart every server by hand (the fault
	// surface rightly refuses to schedule this) before anyone retrieves.
	submitted := 0
	for u := 0; u < 40; u++ {
		if _, err := drv.Submit(u, []int{(u + 1) % 200}, "s", "doomed"); err == nil {
			submitted++
		}
	}
	if submitted == 0 {
		t.Fatal("no messages committed")
	}
	for _, name := range drv.Cluster().ServerNames() {
		if err := drv.Cluster().KillServer(name); err != nil {
			t.Fatal(err)
		}
		if err := drv.Cluster().RestartServer(name); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for u := 0; u < 200; u++ {
		got += len(drv.Retrieve(u).IDs)
	}
	if got != 0 {
		t.Fatalf("memory cluster recovered %d of %d messages after kill-restart, want 0", got, submitted)
	}
}
