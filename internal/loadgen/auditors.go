package loadgen

import (
	"fmt"
	"sort"
)

// Violation kinds reported by the auditors.
const (
	ViolationLost       = "lost"            // committed copy never retrieved
	ViolationDuplicate  = "duplicate"       // copy delivered to a user twice
	ViolationUnledgered = "unledgered"      // retrieved copy never committed
	ViolationMonotone   = "monotone_lct"    // LastCheckingTime moved backwards
	ViolationPolls      = "poll_efficiency" // §3.1.2c ≈1-poll guarantee broken
	ViolationTraceGap   = "trace_gap"       // committed message with incomplete span chain

	// Architecture-scenario kinds (the §3.2 / §3.3 shoot-out auditors).
	ViolationRoamOverhead      = "roam_overhead"      // §3.2.2c: consultation for a user at their primary host
	ViolationBroadcastLoss     = "broadcast_loss"     // matching live user missed a broadcast copy
	ViolationConvergecastBound = "convergecast_bound" // convergecast completed past the timeout bound
	ViolationPartialUnflagged  = "partial_unflagged"  // incomplete aggregate not marked partial
)

// maxViolationDetail caps the per-violation examples kept; totals keep
// counting past the cap.
const maxViolationDetail = 20

// Auditors checks the run's correctness invariants online, as the engine
// ledgers submissions and retrievals:
//
//   - exactly-once: each committed (message, recipient) copy is delivered
//     to that user's inbox exactly once — never twice (duplicate), never
//     zero times by the end (lost), and nothing arrives that was never
//     committed (unledgered);
//   - monotone LastCheckingTime: a user's checkpoint never moves backwards
//     (GetMail's correctness hinges on it only advancing);
//   - poll efficiency, in failure-free runs only: the first retrieval polls
//     the whole authority list (LastCheckingTime(0) is never newer than a
//     LastStartTime), every later one polls exactly one server — the
//     §3.1.2c "will not check servers when it is sure that they do not
//     store any messages" guarantee, asserted per retrieval rather than on
//     averages.
//
// The final trace audit (RecordTraceGaps) closes the loop against the obs
// tracer: every committed message must show a complete submit → deposit →
// retrieve span chain.
type Auditors struct {
	authorityLen int
	pollStrict   bool

	outstanding map[string]bool // committed copy keys not yet retrieved
	seen        map[string]bool // copy keys retrieved at least once
	lastCheck   map[int]int64
	retrievals  map[int]int

	counts map[string]int
	detail []string
	total  int
}

// NewAuditors returns auditors for a run. pollStrict enables the
// per-retrieval poll-efficiency check; it must be false for runs with
// injected faults or reconfigurations, where extra polls are the algorithm
// working as designed.
func NewAuditors(authorityLen int, pollStrict bool) *Auditors {
	return &Auditors{
		authorityLen: authorityLen,
		pollStrict:   pollStrict,
		outstanding:  make(map[string]bool),
		seen:         make(map[string]bool),
		lastCheck:    make(map[int]int64),
		retrievals:   make(map[int]int),
		counts:       make(map[string]int),
	}
}

// PollStrict reports whether the poll-efficiency check is armed.
func (a *Auditors) PollStrict() bool { return a.pollStrict }

// DisablePolls turns the poll-efficiency check off (fault injection or
// reconfiguration began after construction).
func (a *Auditors) DisablePolls() { a.pollStrict = false }

func copyKey(id string, u int) string { return fmt.Sprintf("%s@u%d", id, u) }

func (a *Auditors) violate(kind, detail string) {
	a.counts[kind]++
	a.total++
	if len(a.detail) < maxViolationDetail {
		a.detail = append(a.detail, kind+": "+detail)
	}
}

// RecordSubmit ledgers a committed message: one copy owed per recipient.
func (a *Auditors) RecordSubmit(id string, rcpts []int) {
	for _, u := range rcpts {
		a.outstanding[copyKey(id, u)] = true
	}
}

// CreditRetrieved marks copies retrieved for user u without running the
// retrieval-shape checks — for deliveries outside a normal sweep, like the
// pre-migration drain of §3.1.4.
func (a *Auditors) CreditRetrieved(u int, ids []string) {
	for _, id := range ids {
		key := copyKey(id, u)
		switch {
		case a.seen[key]:
			a.violate(ViolationDuplicate, key)
		case a.outstanding[key]:
			delete(a.outstanding, key)
			a.seen[key] = true
		default:
			a.violate(ViolationUnledgered, key)
			a.seen[key] = true
		}
	}
}

// RecordRetrieve ledgers one GetMail invocation by user u.
func (a *Auditors) RecordRetrieve(u int, res RetrieveResult) {
	a.CreditRetrieved(u, res.IDs)
	if last, ok := a.lastCheck[u]; ok && res.LastChecking < last {
		a.violate(ViolationMonotone,
			fmt.Sprintf("u%d: LastCheckingTime %d after %d", u, res.LastChecking, last))
	}
	a.lastCheck[u] = res.LastChecking
	first := a.retrievals[u] == 0
	a.retrievals[u]++
	if !a.pollStrict {
		return
	}
	if first {
		if res.Polls < 1 || res.Polls > a.authorityLen {
			a.violate(ViolationPolls,
				fmt.Sprintf("u%d: first retrieval polled %d servers, want 1..%d",
					u, res.Polls, a.authorityLen))
		}
		return
	}
	if res.Polls != 1 {
		a.violate(ViolationPolls,
			fmt.Sprintf("u%d: failure-free retrieval polled %d servers, want exactly 1",
				u, res.Polls))
	}
}

// RecordViolation ledgers a scenario-specific invariant breach detected
// outside the built-in checks — the roaming-overhead and broadcast auditors
// feed their findings through here so every report shares one funnel.
func (a *Auditors) RecordViolation(kind, detail string) { a.violate(kind, detail) }

// RecordTraceGaps ledgers the final trace audit: each entry is a committed
// message ID whose lifecycle span chain is missing or incomplete.
func (a *Auditors) RecordTraceGaps(ids []string) {
	for _, id := range ids {
		a.violate(ViolationTraceGap, id)
	}
}

// FinishOutstanding converts every still-outstanding committed copy into a
// loss violation. Call after the settle sweeps.
func (a *Auditors) FinishOutstanding() {
	keys := make([]string, 0, len(a.outstanding))
	for k := range a.outstanding {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a.violate(ViolationLost, k)
	}
}

// Ok reports whether no invariant was violated.
func (a *Auditors) Ok() bool { return a.total == 0 }

// Total reports the violation count across all kinds.
func (a *Auditors) Total() int { return a.total }

// Counts returns violation totals by kind.
func (a *Auditors) Counts() map[string]int {
	out := make(map[string]int, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// Violations returns up to maxViolationDetail example violations, in
// detection order.
func (a *Auditors) Violations() []string {
	return append([]string(nil), a.detail...)
}

// Outstanding reports how many committed copies are still owed.
func (a *Auditors) Outstanding() int { return len(a.outstanding) }
