package loadgen

import (
	"testing"

	"github.com/largemail/largemail/internal/faults"
)

func newRoamDriver(t *testing.T, cfg RoamConfig) *RoamDriver {
	t.Helper()
	d, err := NewRoamDriver(cfg)
	if err != nil {
		t.Fatalf("NewRoamDriver: %v", err)
	}
	return d
}

func TestRoamScenarioFailureFree(t *testing.T) {
	drv := newRoamDriver(t, RoamConfig{
		Seed: 1,
		Pop:  Population{Users: 200, Regions: 2, ServersPerRegion: 3},
	})
	rep := RunRoamScenario(drv,
		Config{Seed: 1, Messages: 120, Sessions: 16},
		// RehashEvery deliberately off-phase with the engine's sweep period
		// so rehashes catch mailboxes with undelivered mail in them.
		RoamScenarioConfig{Seed: 1, RoamEvery: 4, RoamsPerWave: 6, RehashEvery: 7})
	requireClean(t, rep)
	if rep.Submitted != 120 {
		t.Fatalf("Submitted = %d, want 120", rep.Submitted)
	}
	if rep.Retrievals == 0 {
		t.Fatalf("no retrieval activity: %+v", rep)
	}
	snap := drv.Snapshot()
	// Roaming must actually have been exercised: some deliveries found their
	// recipient away from the primary host and paid the consultation.
	if snap.Counters["consultations"] == 0 {
		t.Fatalf("no consultations — roaming path unexercised: %v", snap.Counters)
	}
	if snap.Counters["notify_roaming"] == 0 {
		t.Fatalf("no roaming alerts: %v", snap.Counters)
	}
	// And the live rehash must have migrated mailboxes underneath the run.
	if snap.Counters["rehash_transfers"] == 0 {
		t.Fatalf("rehash moved nothing: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["lat_roam_resolve"]; !ok || h.Count == 0 {
		t.Fatalf("lat_roam_resolve histogram missing or empty")
	}
	if len(rep.Loads) != drv.Population().TotalServers() {
		t.Fatalf("ServerLoads = %d entries, want %d", len(rep.Loads), drv.Population().TotalServers())
	}
}

func TestRoamScenarioDeterminism(t *testing.T) {
	run := func() Report {
		drv := newRoamDriver(t, RoamConfig{
			Seed: 7,
			Pop:  Population{Users: 150, Regions: 2, ServersPerRegion: 3},
		})
		return RunRoamScenario(drv,
			Config{Seed: 7, Messages: 80, Sessions: 12},
			RoamScenarioConfig{Seed: 7, RoamEvery: 3, RoamsPerWave: 5, RehashEvery: 10})
	}
	a, b := run(), run()
	if a.Submitted != b.Submitted || a.Copies != b.Copies ||
		a.Retrievals != b.Retrievals || a.Polls != b.Polls ||
		a.Duplicates != b.Duplicates || a.Ticks != b.Ticks {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
	requireClean(t, a)
}

func TestRoamScenarioWithFaults(t *testing.T) {
	drv := newRoamDriver(t, RoamConfig{
		Seed: 4,
		Pop:  Population{Users: 200, Regions: 2, ServersPerRegion: 3},
	})
	spec := drv.FaultSurface()
	spec.Seed = 4
	spec.Ticks = 60
	spec.Crashes = 3
	spec.LinkFaults = 2
	spec.Latencies = 2
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Events) == 0 {
		t.Fatal("empty fault schedule")
	}
	rep := RunRoamScenario(drv,
		Config{Seed: 4, Messages: 100, Sessions: 16, Schedule: &sched},
		RoamScenarioConfig{Seed: 4, RoamEvery: 4, RoamsPerWave: 6, RehashEvery: 15})
	// Exactly-once across roams, rehashes AND crash windows: no loss, no
	// duplicate deliveries, no stay-at-home consultations.
	requireClean(t, rep)
	if rep.Submitted != 100 {
		t.Fatalf("Submitted = %d, want 100", rep.Submitted)
	}
}

// TestRoamVsSyntaxMigrationContrast pins E8's architectural contrast: moving
// a user in the location-independent design changes no name and touches no
// mailbox (hash sub-groups are host-independent), while the syntax-directed
// design must rename the user and drain/redirect their mailboxes.
func TestRoamVsSyntaxMigrationContrast(t *testing.T) {
	pop := Population{Users: 40, Regions: 2, ServersPerRegion: 2}

	// Location-independent side: roam u0 to another host in its region.
	rd := newRoamDriver(t, RoamConfig{Seed: 2, Pop: pop})
	rpop := rd.Population()
	if _, err := rd.Submit(1, []int{0}, "hi", "pre-roam mail"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rd.Settle()
	target := rpop.HostOf(0) + 1 // same region: hosts-per-region > 1
	if err := rd.Roam(0, target); err != nil {
		t.Fatalf("Roam: %v", err)
	}
	rd.Settle()
	if rd.CurrentHost(0) != target {
		t.Fatalf("CurrentHost = %d, want %d", rd.CurrentHost(0), target)
	}
	if _, err := rd.Submit(1, []int{0}, "hi", "post-roam mail"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rd.Settle()
	res := rd.Retrieve(0)
	if len(res.IDs) != 2 {
		t.Fatalf("retrieved %d messages across the roam, want 2", len(res.IDs))
	}
	snap := rd.Snapshot()
	if n := snap.Counters["rehash_transfers"]; n != 0 {
		t.Fatalf("roaming moved %d mailboxes — must be zero", n)
	}

	// Syntax-directed side: the same move is a rename + drain + redirect.
	sd := newSimDriver(t, SimConfig{Seed: 2, Pop: pop})
	if _, err := sd.Submit(1, []int{0}, "hi", "pre-migration mail"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sd.Settle()
	before := sd.UserName(0)
	if _, err := sd.MigrateUser(0, target); err != nil {
		t.Fatalf("MigrateUser: %v", err)
	}
	after := sd.UserName(0)
	if after == before {
		t.Fatalf("syntax-directed migration did not rename %v", before)
	}
	if after.User != before.User {
		t.Fatalf("rename changed the user token: %v -> %v", before, after)
	}
}
