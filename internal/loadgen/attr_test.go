package loadgen

import (
	"testing"

	"github.com/largemail/largemail/internal/faults"
)

func newAttrScenario(t *testing.T, cfg AttrConfig) *AttrScenario {
	t.Helper()
	s, err := NewAttrScenario(cfg)
	if err != nil {
		t.Fatalf("NewAttrScenario: %v", err)
	}
	return s
}

func requireAttrClean(t *testing.T, rep AttrReport) {
	t.Helper()
	if !rep.Ok {
		t.Fatalf("auditor violations: %v\nexamples: %v", rep.Violations, rep.Examples)
	}
}

func TestAttrScenarioFailureFree(t *testing.T) {
	s := newAttrScenario(t, AttrConfig{
		Seed: 1,
		Pop:  Population{Users: 400, Regions: 2, ServersPerRegion: 3},
	})
	rep := s.Run()
	requireAttrClean(t, rep)
	if rep.Queries == 0 || rep.Deliveries == 0 {
		t.Fatalf("no distribution activity: %+v", rep)
	}
	if rep.ContentQueries < 2 {
		t.Fatalf("content searches = %d, want >= 2 (quiet-world epilogue)", rep.ContentQueries)
	}
	if rep.Partial != 0 {
		t.Fatalf("failure-free run flagged %d partial summaries", rep.Partial)
	}
	snap := s.Snapshot()
	if snap.Counters["bcast_deposits"] == 0 {
		t.Fatalf("no deposits: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["lat_broadcast"]; !ok || h.Count == 0 {
		t.Fatal("lat_broadcast histogram missing or empty")
	}
	if h, ok := snap.Histograms["lat_convergecast"]; !ok || h.Count == 0 {
		t.Fatal("lat_convergecast histogram missing or empty")
	}
}

func TestAttrScenarioDeterminism(t *testing.T) {
	run := func() AttrReport {
		s := newAttrScenario(t, AttrConfig{
			Seed: 5,
			Pop:  Population{Users: 300, Regions: 2, ServersPerRegion: 3},
		})
		return s.Run()
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.ContentQueries != b.ContentQueries ||
		a.Deliveries != b.Deliveries || a.Partial != b.Partial ||
		a.Skipped != b.Skipped || a.Ticks != b.Ticks {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
	requireAttrClean(t, a)
}

func TestAttrScenarioWithFaults(t *testing.T) {
	s := newAttrScenario(t, AttrConfig{
		Seed:    3,
		Pop:     Population{Users: 400, Regions: 3, ServersPerRegion: 3},
		Queries: 24,
	})
	spec := s.FaultSurface()
	spec.Seed = 3
	spec.Ticks = 60
	spec.Crashes = 4
	spec.Latencies = 3
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Events) == 0 {
		t.Fatal("empty fault schedule")
	}
	s.SetSchedule(&sched)
	rep := s.Run()
	// No lost deliveries, no silently merged partials, bounded completion —
	// even with servers crashing under the convergecast.
	requireAttrClean(t, rep)
	if rep.Queries == 0 {
		t.Fatalf("no queries completed: %+v", rep)
	}
	// The schedule's crashes land under in-flight convergecasts, so partial
	// summaries MUST be flagged (E6's positive direction) — a zero here
	// means dead subtrees were silently merged or never hit.
	if rep.Partial == 0 {
		t.Fatalf("no partial summaries under a crash schedule: %+v", rep)
	}
}
