package loadgen

import (
	"context"
	"fmt"
	"time"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/wire"
)

// WireConfig parameterizes a WireDriver.
type WireConfig struct {
	Pop Population
	// Proto selects the client framing: "text" (v2 JSON lines) or "binary"
	// (v3 length-prefixed frames). Default "binary".
	Proto string
	// WireWorkers sizes the server's bounded worker pool (0 = GOMAXPROCS).
	WireWorkers int
	// Tick is the wall-clock duration of one schedule tick (default 2ms).
	Tick time.Duration
	// Addr is the TCP listen address (default loopback, ephemeral port).
	Addr string
}

// WireDriver drives the full TCP wire path: a wire.Server fronting a livenet
// cluster, and a wire.Client issuing every submit and retrieval as protocol
// requests. Placement (server names, authority lists, predicted loads) is
// identical to LiveDriver's round-robin scheme — the wire leg is the only
// difference, which is what makes text-vs-binary sweeps comparable.
type WireDriver struct {
	cfg   WireConfig
	pop   Population
	srv   *wire.Server
	c     *wire.Client
	inner *LiveDriver // placement + cluster-side hooks over srv.Cluster()

	registered map[int]bool
	prevPolls  map[int]int
}

// NewWireDriver starts the server, dials the client, and negotiates the
// requested framing. Call Close when done.
func NewWireDriver(cfg WireConfig) (*WireDriver, error) {
	cfg.Pop = cfg.Pop.withDefaults()
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	if cfg.Proto == "" {
		cfg.Proto = "binary"
	}
	if cfg.Proto != "text" && cfg.Proto != "binary" {
		return nil, fmt.Errorf("wiredriver: unknown proto %q", cfg.Proto)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	names := make([]string, cfg.Pop.TotalServers())
	for gs := range names {
		names[gs] = fmt.Sprintf("S%d", gs)
	}
	srv, err := wire.NewServerWith(cfg.Addr, names, wire.ServerConfig{
		WireWorkers: cfg.WireWorkers,
	})
	if err != nil {
		return nil, err
	}
	c, err := wire.DialOptions(srv.Addr(), wire.Options{TextOnly: cfg.Proto == "text"})
	if err != nil {
		srv.Close()
		return nil, err
	}
	// Negotiation is lazy on plain verbs; run it now so a binary driver
	// speaks frames from the first submit on.
	if _, err := c.Negotiate(context.Background()); err != nil {
		_ = c.Close()
		srv.Close()
		return nil, err
	}
	if cfg.Proto == "binary" && !c.BinaryFraming() {
		_ = c.Close()
		srv.Close()
		return nil, fmt.Errorf("wiredriver: server declined binary framing")
	}
	d := &WireDriver{
		cfg: cfg,
		pop: cfg.Pop,
		srv: srv,
		c:   c,
		inner: &LiveDriver{
			cfg:     LiveConfig{Pop: cfg.Pop, Tick: cfg.Tick},
			pop:     cfg.Pop,
			cluster: srv.Cluster(),
		},
		registered: make(map[int]bool),
		prevPolls:  make(map[int]int),
	}
	return d, nil
}

// Close drops the client connection and stops the server (which closes the
// cluster).
func (d *WireDriver) Close() {
	_ = d.c.Close()
	d.srv.Close()
}

// Client exposes the driver's wire client (for pipelined bursts sharing the
// driver's server).
func (d *WireDriver) Client() *wire.Client { return d.c }

// Addr returns the server's listen address.
func (d *WireDriver) Addr() string { return d.srv.Addr() }

// ensure lazily registers user u's authority list over the wire.
func (d *WireDriver) ensure(u int) (string, error) {
	name := d.pop.Name(u).String()
	if d.registered[u] {
		return name, nil
	}
	if err := d.c.Register(name, d.inner.authority(u)...); err != nil {
		return name, err
	}
	d.registered[u] = true
	return name, nil
}

// Population implements Driver.
func (d *WireDriver) Population() Population { return d.pop }

// Submit implements Driver: one submit request over the wire. The server's
// spool makes a nil error the all-or-nothing commit point, same as
// LiveDriver.
func (d *WireDriver) Submit(from int, to []int, subject, body string) (string, error) {
	fromName, err := d.ensure(from)
	if err != nil {
		return "", err
	}
	rcpts := make([]string, 0, len(to))
	for _, u := range to {
		name, err := d.ensure(u)
		if err != nil {
			return "", err
		}
		rcpts = append(rcpts, name)
	}
	return d.c.Submit(fromName, rcpts, subject, body)
}

// Retrieve implements Driver: a getmail request. Poll counts ride the v3
// response fields; the per-retrieval delta comes from the previous total.
func (d *WireDriver) Retrieve(u int) RetrieveResult {
	name, err := d.ensure(u)
	if err != nil {
		return RetrieveResult{}
	}
	resp, err := d.c.Do(wire.Request{Op: "getmail", User: name})
	if err != nil {
		return RetrieveResult{}
	}
	res := RetrieveResult{
		Polls:        resp.Polls - d.prevPolls[u],
		LastChecking: resp.LastChecking,
	}
	d.prevPolls[u] = resp.Polls
	for _, m := range resp.Messages {
		res.IDs = append(res.IDs, m.ID)
	}
	return res
}

// Step implements Driver.
func (d *WireDriver) Step(n int) { d.inner.Step(n) }

// Settle implements Driver: wait for the server-side spool to drain.
func (d *WireDriver) Settle() { d.inner.Settle() }

// Snapshot implements Driver. Taken cluster-side: identical content to what
// a status request returns, without perturbing the wire byte counters.
func (d *WireDriver) Snapshot() obs.Snapshot { return d.inner.Snapshot() }

// Tracer implements Driver.
func (d *WireDriver) Tracer() *obs.Tracer { return d.inner.Tracer() }

// Injector implements Driver: cluster-side fault injection, same surface as
// the live transport.
func (d *WireDriver) Injector() faults.Injector { return d.inner.Injector() }

// FaultSurface implements Driver.
func (d *WireDriver) FaultSurface() faults.Spec { return d.inner.FaultSurface() }

// ServerLoads implements Driver.
func (d *WireDriver) ServerLoads() []ServerLoad { return d.inner.ServerLoads() }

// Cluster exposes the server-side cluster for tests.
func (d *WireDriver) Cluster() *livenet.Cluster { return d.srv.Cluster() }
