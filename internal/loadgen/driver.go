package loadgen

import (
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/obs"
)

// RetrieveResult is what one GetMail invocation yielded, in the units the
// auditors check.
type RetrieveResult struct {
	// IDs are the message IDs newly retrieved, one entry per stored copy
	// that reached the user's inbox this retrieval.
	IDs []string
	// Polls is how many CheckMail calls this retrieval issued — the
	// §3.1.2c efficiency metric (≈1 when failure-free after the first
	// retrieval, which must poll the whole authority list).
	Polls int
	// Duplicates is how many retrieved copies the agent's dedup suppressed
	// this retrieval (retries and failovers may leave extra server copies;
	// the agent delivering each message once is part of the design).
	Duplicates int
	// LastChecking is the agent's LastCheckingTime after the retrieval, in
	// the transport's clock units (microticks or ns). It must never move
	// backwards.
	LastChecking int64
}

// ServerLoad pairs one server's predicted load — from the §3.1.1 assignment
// the driver ran at build time — with what the run actually deposited there,
// so capacity reports can compare the balancer's Q(ρ)=ρ/(1−ρ) waiting
// estimate against observed behavior.
type ServerLoad struct {
	Name     string  `json:"name"`
	Region   string  `json:"region"`
	Load     int     `json:"load"`     // L_j: users assigned
	MaxLoad  int     `json:"max_load"` // M_j: capacity
	Rho      float64 `json:"rho"`      // ρ_j = L_j / M_j
	QWait    float64 `json:"q_wait"`   // Q(ρ_j) predicted queueing wait
	Deposits int64   `json:"deposits"` // observed local deposits this run
}

// Driver is the transport contract of the workload engine: a mail system
// the engine can submit into, retrieve from, advance in schedule ticks, and
// inject faults into. SimDriver (netsim, event time) and LiveDriver
// (livenet, wall clock) both satisfy it, which is what lets one engine and
// one auditor suite exercise both transports.
type Driver interface {
	// Population returns the population this driver was built for (with
	// defaults applied).
	Population() Population
	// Submit sends one message from user index from to the given user
	// indices. A nil error is the commit point: the message (every
	// recipient copy) is owed to the no-loss audit. An error means nothing
	// was accepted.
	Submit(from int, to []int, subject, body string) (id string, err error)
	// Retrieve runs user u's GetMail.
	Retrieve(u int) RetrieveResult
	// Step advances the system by n schedule ticks.
	Step(n int)
	// Settle lets in-flight work finish (simulator quiescence / spool
	// drain).
	Settle()
	// Snapshot returns the run's instruments: per-stage "lat_*" histograms
	// plus transport counters.
	Snapshot() obs.Snapshot
	// Tracer returns the deployment-wide lifecycle tracer, for the final
	// trace-completeness audit.
	Tracer() *obs.Tracer
	// Injector returns the transport's fault injector.
	Injector() faults.Injector
	// FaultSurface returns a faults.Spec template with the transport's
	// safe fault candidates filled in (Servers, Links, DropTargets,
	// Protected) and all window counts zero; callers set counts, seed and
	// ticks. The driver is the right owner of this knowledge: what is safe
	// to drop or partition differs per transport (see chaos_test.go's
	// server-drop stranding hazard).
	FaultSurface() faults.Spec
	// ServerLoads returns predicted vs observed load per server.
	ServerLoads() []ServerLoad
}
