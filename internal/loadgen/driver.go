package loadgen

import (
	"sort"

	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/obs"
)

// RetrieveResult is what one GetMail invocation yielded, in the units the
// auditors check.
type RetrieveResult struct {
	// IDs are the message IDs newly retrieved, one entry per stored copy
	// that reached the user's inbox this retrieval.
	IDs []string
	// Polls is how many CheckMail calls this retrieval issued — the
	// §3.1.2c efficiency metric (≈1 when failure-free after the first
	// retrieval, which must poll the whole authority list).
	Polls int
	// Duplicates is how many retrieved copies the agent's dedup suppressed
	// this retrieval (retries and failovers may leave extra server copies;
	// the agent delivering each message once is part of the design).
	Duplicates int
	// LastChecking is the agent's LastCheckingTime after the retrieval, in
	// the transport's clock units (microticks or ns). It must never move
	// backwards.
	LastChecking int64
}

// ServerLoad pairs one server's predicted load — from the §3.1.1 assignment
// the driver ran at build time — with what the run actually deposited there,
// so capacity reports can compare the balancer's Q(ρ)=ρ/(1−ρ) waiting
// estimate against observed behavior.
type ServerLoad struct {
	Name     string  `json:"name"`
	Region   string  `json:"region"`
	Load     int     `json:"load"`     // L_j: users assigned
	MaxLoad  int     `json:"max_load"` // M_j: capacity
	Rho      float64 `json:"rho"`      // ρ_j = L_j / M_j
	QWait    float64 `json:"q_wait"`   // Q(ρ_j) predicted queueing wait
	Deposits int64   `json:"deposits"` // observed local deposits this run
}

// MigrationResult is what one placement migration yielded. Drained lists the
// message IDs the pre-handover drain delivered to the user out-of-band — the
// engine must credit them to the retrieval ledger or the no-loss audit would
// flag them missing. Moved is false when the migration was refused (a server
// involved was down, or the drain could not prove the old mailboxes empty);
// the drain may have yielded messages regardless.
type MigrationResult struct {
	User    int
	Drained []string
	Moved   bool
}

// PlacementRebalancer is the optional driver extension behind the online
// rebalancing placement policy (internal/placement). RebalanceActive reports
// whether the configured policy migrates on ticks; the engine then calls
// RebalanceTick once per tick after Step and credits the drained IDs.
type PlacementRebalancer interface {
	RebalanceActive() bool
	RebalanceTick(tick int) []MigrationResult
}

// migrationCooldown is how many ticks a migrated user is pinned before the
// rebalancer may move them again. Without it a two-server region ping-pongs
// its hottest users across the mean every tick — each hop pure drain cost.
const migrationCooldown = 16

// rankByHeat orders candidate users hottest-first and returns, aligned with
// the returned order, each candidate's expected-traffic weight plus the
// total. A user's weight is their own retrieved-copy count plus their host's
// per-user share of observed host traffic: the workload's skew lives on
// hosts, so at large populations — where most individual users have not yet
// received anything and per-user counts carry no signal — a hot host's users
// are statistically hot, and moving them sheds future load in expectation.
// Ranking by personal counts alone would spend the migration budget on
// whoever happened to be polled already; ignoring personal counts would
// waste it on cold mailboxes of lukewarm hosts. Ties break by index for
// determinism.
func rankByHeat(users []int, recv, hostRecv map[int]int64,
	hostOf func(int) int, hostUsers func(int) int) ([]int, []float64, float64) {
	weight := func(u int) float64 {
		h := hostOf(u)
		w := float64(recv[u])
		if n := hostUsers(h); n > 0 {
			w += float64(hostRecv[h]) / float64(n)
		}
		return w
	}
	sort.Slice(users, func(i, j int) bool {
		wi, wj := weight(users[i]), weight(users[j])
		if wi != wj {
			return wi > wj
		}
		return users[i] < users[j]
	})
	var total float64
	weights := make([]float64, len(users))
	for i, u := range users {
		weights[i] = weight(u)
		total += weights[i]
	}
	return users, weights, total
}

// Driver is the transport contract of the workload engine: a mail system
// the engine can submit into, retrieve from, advance in schedule ticks, and
// inject faults into. SimDriver (netsim, event time) and LiveDriver
// (livenet, wall clock) both satisfy it, which is what lets one engine and
// one auditor suite exercise both transports.
type Driver interface {
	// Population returns the population this driver was built for (with
	// defaults applied).
	Population() Population
	// Submit sends one message from user index from to the given user
	// indices. A nil error is the commit point: the message (every
	// recipient copy) is owed to the no-loss audit. An error means nothing
	// was accepted.
	Submit(from int, to []int, subject, body string) (id string, err error)
	// Retrieve runs user u's GetMail.
	Retrieve(u int) RetrieveResult
	// Step advances the system by n schedule ticks.
	Step(n int)
	// Settle lets in-flight work finish (simulator quiescence / spool
	// drain).
	Settle()
	// Snapshot returns the run's instruments: per-stage "lat_*" histograms
	// plus transport counters.
	Snapshot() obs.Snapshot
	// Tracer returns the deployment-wide lifecycle tracer, for the final
	// trace-completeness audit.
	Tracer() *obs.Tracer
	// Injector returns the transport's fault injector.
	Injector() faults.Injector
	// FaultSurface returns a faults.Spec template with the transport's
	// safe fault candidates filled in (Servers, Links, DropTargets,
	// Protected) and all window counts zero; callers set counts, seed and
	// ticks. The driver is the right owner of this knowledge: what is safe
	// to drop or partition differs per transport (see chaos_test.go's
	// server-drop stranding hazard).
	FaultSurface() faults.Spec
	// ServerLoads returns predicted vs observed load per server.
	ServerLoads() []ServerLoad
}
