package loadgen

import (
	"testing"
	"time"

	"github.com/largemail/largemail/internal/faults"
)

func newWireDriver(t *testing.T, cfg WireConfig) *WireDriver {
	t.Helper()
	if cfg.Tick == 0 {
		cfg.Tick = time.Millisecond
	}
	drv, err := NewWireDriver(cfg)
	if err != nil {
		t.Fatalf("NewWireDriver: %v", err)
	}
	t.Cleanup(drv.Close)
	return drv
}

// TestEngineWireBothProtos runs the audited engine through the full TCP wire
// path on both framings: same no-loss / no-duplicate / trace-completeness
// bar as the in-process transports.
func TestEngineWireBothProtos(t *testing.T) {
	for _, proto := range []string{"text", "binary"} {
		t.Run(proto, func(t *testing.T) {
			drv := newWireDriver(t, WireConfig{
				Pop:   Population{Users: 60, Regions: 2, ServersPerRegion: 2},
				Proto: proto,
			})
			wantBinary := proto == "binary"
			if got := drv.Client().BinaryFraming(); got && !wantBinary {
				t.Fatalf("proto %s negotiated binary framing", proto)
			}
			eng := New(drv, Config{Seed: 3, Messages: 40, Sessions: 8, Ticks: 20})
			rep := eng.Run()
			requireClean(t, rep)
			if rep.Submitted != 40 {
				t.Fatalf("Submitted = %d, want 40", rep.Submitted)
			}
			if wantBinary && !drv.Client().BinaryFraming() {
				t.Fatal("binary run finished without binary framing")
			}
			if len(rep.Loads) != 4 {
				t.Fatalf("ServerLoads = %d entries, want 4", len(rep.Loads))
			}
			// The wire instruments saw the traffic.
			snap := drv.Snapshot()
			if snap.Counters["wire_bytes_in"] == 0 || snap.Counters["wire_bytes_out"] == 0 {
				t.Fatalf("wire byte counters empty: in=%d out=%d",
					snap.Counters["wire_bytes_in"], snap.Counters["wire_bytes_out"])
			}
			if hs := snap.Histograms["lat_wire_decode"]; hs.Count == 0 {
				t.Fatal("lat_wire_decode histogram empty")
			}
		})
	}
}

// TestEngineWireWithFaults: cluster-side crash/drop windows during a wire
// run; the auditors' exactly-once bar must hold end to end.
func TestEngineWireWithFaults(t *testing.T) {
	drv := newWireDriver(t, WireConfig{
		Pop: Population{Users: 60, Regions: 2, ServersPerRegion: 3},
	})
	spec := drv.FaultSurface()
	spec.Seed = 11
	spec.Ticks = 40
	spec.Crashes = 2
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	eng := New(drv, Config{Seed: 11, Messages: 30, Sessions: 6, Schedule: &sched})
	rep := eng.Run()
	requireClean(t, rep)
}
