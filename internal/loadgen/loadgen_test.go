package loadgen

import (
	"testing"
	"time"

	"github.com/largemail/largemail/internal/faults"
)

func newSimDriver(t *testing.T, cfg SimConfig) *SimDriver {
	t.Helper()
	d, err := NewSimDriver(cfg)
	if err != nil {
		t.Fatalf("NewSimDriver: %v", err)
	}
	return d
}

func requireClean(t *testing.T, rep Report) {
	t.Helper()
	if !rep.Ok {
		t.Fatalf("auditor violations: %v\nexamples: %v", rep.Violations, rep.Examples)
	}
}

func TestPopulationMapping(t *testing.T) {
	p := Population{Users: 103, Regions: 2, ServersPerRegion: 3}.withDefaults()
	if p.HostsPerRegion != 6 {
		t.Fatalf("HostsPerRegion = %d, want 6", p.HostsPerRegion)
	}
	total := 0
	for gh := 0; gh < p.TotalHosts(); gh++ {
		total += p.UsersOnHost(gh)
	}
	if total != p.Users {
		t.Fatalf("UsersOnHost sums to %d, want %d", total, p.Users)
	}
	// Index → host → region mapping must be consistent with Name.
	for _, u := range []int{0, 1, 11, 12, 50, 102} {
		gh := p.HostOf(u)
		if got := p.RegionOf(u); got != gh/p.HostsPerRegion {
			t.Fatalf("RegionOf(%d) = %d, want %d", u, got, gh/p.HostsPerRegion)
		}
		name := p.Name(u)
		if name.Region != p.RegionName(p.RegionOf(u)) {
			t.Fatalf("Name(%d).Region = %q", u, name.Region)
		}
	}
}

func TestAuditorsLedger(t *testing.T) {
	a := NewAuditors(2, true)
	a.RecordSubmit("m1", []int{1, 2})
	a.RecordRetrieve(1, RetrieveResult{IDs: []string{"m1"}, Polls: 2, LastChecking: 10})
	if !a.Ok() {
		t.Fatalf("clean retrieve flagged: %v", a.Violations())
	}
	// Duplicate copy.
	a.RecordRetrieve(1, RetrieveResult{IDs: []string{"m1"}, Polls: 1, LastChecking: 20})
	if a.Counts()[ViolationDuplicate] != 1 {
		t.Fatalf("duplicate not flagged: %v", a.Counts())
	}
	// Unledgered copy.
	a.RecordRetrieve(1, RetrieveResult{IDs: []string{"ghost"}, Polls: 1, LastChecking: 30})
	if a.Counts()[ViolationUnledgered] != 1 {
		t.Fatalf("unledgered not flagged: %v", a.Counts())
	}
	// LastCheckingTime going backwards.
	a.RecordRetrieve(1, RetrieveResult{Polls: 1, LastChecking: 5})
	if a.Counts()[ViolationMonotone] != 1 {
		t.Fatalf("monotone regression not flagged: %v", a.Counts())
	}
	// Poll inefficiency: second retrieval of user 2 must poll exactly 1.
	a.RecordRetrieve(2, RetrieveResult{IDs: []string{"m1"}, Polls: 2, LastChecking: 10})
	a.RecordRetrieve(2, RetrieveResult{Polls: 3, LastChecking: 20})
	if a.Counts()[ViolationPolls] != 1 {
		t.Fatalf("poll inefficiency not flagged: %v", a.Counts())
	}
	// Outstanding copy (user 2 got its copy above; submit one that nobody
	// retrieves).
	a.RecordSubmit("m2", []int{3})
	a.FinishOutstanding()
	if a.Counts()[ViolationLost] != 1 {
		t.Fatalf("loss not flagged: %v", a.Counts())
	}
	a.RecordTraceGaps([]string{"m2"})
	if a.Counts()[ViolationTraceGap] != 1 {
		t.Fatalf("trace gap not flagged: %v", a.Counts())
	}
}

func TestEngineFailureFreeSim(t *testing.T) {
	drv := newSimDriver(t, SimConfig{
		Seed: 1,
		Pop:  Population{Users: 200, Regions: 2, ServersPerRegion: 3},
	})
	eng := New(drv, Config{Seed: 1, Messages: 120, Sessions: 16})
	rep := eng.Run()
	requireClean(t, rep)
	if !eng.Auditors().PollStrict() {
		t.Fatal("failure-free run must keep the strict poll audit armed")
	}
	if rep.Submitted != 120 {
		t.Fatalf("Submitted = %d, want 120", rep.Submitted)
	}
	if rep.Copies < rep.Submitted {
		t.Fatalf("Copies = %d < Submitted = %d", rep.Copies, rep.Submitted)
	}
	if rep.Retrievals == 0 || rep.Polls == 0 {
		t.Fatalf("no retrieval activity: %+v", rep)
	}
	snap := drv.Snapshot()
	h, ok := snap.Histograms["lat_e2e"]
	if !ok || h.Count == 0 {
		t.Fatalf("lat_e2e histogram missing or empty: %+v", snap.Histograms)
	}
	if len(rep.Loads) != drv.Population().TotalServers() {
		t.Fatalf("ServerLoads = %d entries, want %d", len(rep.Loads), drv.Population().TotalServers())
	}
	var deposits int64
	for _, l := range rep.Loads {
		if l.Load > l.MaxLoad {
			t.Fatalf("server %s overloaded: %d > %d", l.Name, l.Load, l.MaxLoad)
		}
		deposits += l.Deposits
	}
	if deposits < int64(rep.Copies) {
		t.Fatalf("observed deposits %d < committed copies %d", deposits, rep.Copies)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() Report {
		drv := newSimDriver(t, SimConfig{
			Seed: 9,
			Pop:  Population{Users: 150, Regions: 2, ServersPerRegion: 3},
		})
		eng := New(drv, Config{Seed: 9, Messages: 80, Sessions: 12})
		return eng.Run()
	}
	a, b := run(), run()
	if a.Submitted != b.Submitted || a.Copies != b.Copies ||
		a.Retrievals != b.Retrievals || a.Polls != b.Polls ||
		a.Duplicates != b.Duplicates || a.Ticks != b.Ticks {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
	requireClean(t, a)
}

func TestEngineWithFaultsSim(t *testing.T) {
	drv := newSimDriver(t, SimConfig{
		Seed: 4,
		Pop:  Population{Users: 200, Regions: 2, ServersPerRegion: 3},
	})
	spec := drv.FaultSurface()
	spec.Seed = 4
	spec.Ticks = 60
	spec.Crashes = 3
	spec.LinkFaults = 2
	spec.Latencies = 2
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(sched.Events) == 0 {
		t.Fatal("empty fault schedule")
	}
	eng := New(drv, Config{Seed: 4, Messages: 100, Sessions: 16, Schedule: &sched})
	rep := eng.Run()
	// No loss, no duplicates, no trace gaps — even under crash windows. The
	// poll audit is auto-disabled (failures legitimately force re-polls).
	requireClean(t, rep)
	if eng.Auditors().PollStrict() {
		t.Fatal("faulted run must not arm the strict poll audit")
	}
	if rep.Submitted != 100 {
		t.Fatalf("Submitted = %d, want 100", rep.Submitted)
	}
}

func TestEngineFailureFreeLive(t *testing.T) {
	drv, err := NewLiveDriver(LiveConfig{
		Pop:  Population{Users: 60, Regions: 2, ServersPerRegion: 2},
		Tick: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewLiveDriver: %v", err)
	}
	defer drv.Close()
	eng := New(drv, Config{Seed: 3, Messages: 40, Sessions: 8, Ticks: 20})
	rep := eng.Run()
	requireClean(t, rep)
	if rep.Submitted != 40 {
		t.Fatalf("Submitted = %d, want 40", rep.Submitted)
	}
	if len(rep.Loads) != 4 {
		t.Fatalf("ServerLoads = %d entries, want 4", len(rep.Loads))
	}
}

func TestEngineWithFaultsLive(t *testing.T) {
	drv, err := NewLiveDriver(LiveConfig{
		Pop:  Population{Users: 60, Regions: 2, ServersPerRegion: 3},
		Tick: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewLiveDriver: %v", err)
	}
	defer drv.Close()
	spec := drv.FaultSurface()
	spec.Seed = 11
	spec.Ticks = 40
	spec.Crashes = 2
	spec.Drops = 2
	sched, err := faults.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	eng := New(drv, Config{Seed: 11, Messages: 30, Sessions: 6, Schedule: &sched})
	rep := eng.Run()
	requireClean(t, rep)
}
