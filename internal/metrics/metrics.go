// Package metrics is a thin compatibility layer over internal/obs, which now
// owns all instrumentation: named counters, gauges, latency histograms,
// sample summaries, and the aligned text/CSV tables.
//
// Deprecated: import internal/obs directly. This alias package exists for one
// PR to keep external forks compiling and will be removed.
package metrics

import "github.com/largemail/largemail/internal/obs"

// Registry is the instrument registry.
//
// Deprecated: use obs.Registry. The obs registry is safe for concurrent use,
// so the old Registry/Shared split is gone — both alias the same type. Note
// Snapshot() now returns a structured obs.Snapshot; use Counters() for the
// old map-of-counters form.
type Registry = obs.Registry

// NewRegistry returns an empty registry.
//
// Deprecated: use obs.NewRegistry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Shared is the concurrency-safe registry variant.
//
// Deprecated: use obs.Registry, which is always safe for concurrent use.
type Shared = obs.Registry

// NewShared returns an empty concurrent registry.
//
// Deprecated: use obs.NewRegistry.
func NewShared() *Shared { return obs.NewRegistry() }

// Summary accumulates scalar samples and reports exact order statistics.
//
// Deprecated: use obs.Summary.
type Summary = obs.Summary

// Table is the aligned text/CSV table renderer.
//
// Deprecated: use obs.Table.
type Table = obs.Table

// NewTable returns a table with the given title and column headers.
//
// Deprecated: use obs.NewTable.
func NewTable(title string, headers ...string) *Table { return obs.NewTable(title, headers...) }
