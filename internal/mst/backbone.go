package mst

import (
	"fmt"
	"math"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// BackboneResult is the paper's two-level broadcast structure (§3.3.1-A-ii,
// Fig. 2): "we modify the algorithm to find a back-bone MST to connect all
// regions. Then the MST algorithm can be performed in each region to span
// all local nodes."
type BackboneResult struct {
	// Local holds each region's MST over its own nodes.
	Local map[string]graph.Tree
	// Inter holds the inter-region links chosen by the back-bone MST; their
	// endpoints are border nodes ("the back-bone MST is formed by nodes
	// which are directly connected to nodes in other regions").
	Inter []graph.Edge
	// Combined is the union of the local trees and the chosen inter-region
	// links: one spanning tree of the whole internetwork.
	Combined graph.Tree
	// RegionCost maps each region to the cost of traversing its local MST —
	// the per-region delivery cost of the §3.3.1-B cost table.
	RegionCost map[string]float64
	// NodeRegion maps every node to its region.
	NodeRegion map[graph.NodeID]string
	// Stats aggregates GHS protocol traffic when the local trees were built
	// distributedly (zero for the centralized path).
	Stats Stats
}

// Backbone computes the two-level structure on a multi-region topology.
//
// The local MST of every region is computed with the distributed GHS
// algorithm when distributed is true (each region runs on its own simulated
// network), or with Kruskal otherwise — both yield the same unique tree for
// distinct weights; the flag exists so experiments can measure the protocol
// cost.
//
// The back-bone is computed over the region graph: each pair of regions with
// at least one direct link contributes its minimum-weight inter-region link,
// and the MST of that contracted graph selects which links join the
// back-bone. (The referenced tech report [YUEN97] with the authors' exact
// construction is unavailable; contracting regions to supernodes is the
// standard formulation consistent with everything §3.3.1-A states — see
// DESIGN.md §3.)
func Backbone(g *graph.Graph, distributed bool) (BackboneResult, error) {
	regions := g.Regions()
	if len(regions) == 0 {
		return BackboneResult{}, ErrEmpty
	}
	res := BackboneResult{
		Local:      make(map[string]graph.Tree, len(regions)),
		RegionCost: make(map[string]float64, len(regions)),
		NodeRegion: make(map[graph.NodeID]string, g.NumNodes()),
		Stats:      Stats{ByType: make(map[string]int)},
	}
	for _, n := range g.Nodes() {
		res.NodeRegion[n.ID] = n.Region
	}
	for _, region := range regions {
		nodes := g.NodesInRegion(region)
		ids := make([]graph.NodeID, len(nodes))
		for i, n := range nodes {
			ids[i] = n.ID
		}
		sub := g.Subgraph(ids)
		var tree graph.Tree
		var err error
		if distributed {
			var st Stats
			tree, st, err = runDistributed(sub, ids)
			res.Stats.Messages += st.Messages
			res.Stats.Deferred += st.Deferred
			for k, v := range st.ByType {
				res.Stats.ByType[k] += v
			}
		} else {
			tree, err = sub.KruskalMST()
		}
		if err != nil {
			return BackboneResult{}, fmt.Errorf("region %s: %w", region, err)
		}
		res.Local[region] = tree
		res.RegionCost[region] = tree.Weight
	}

	inter, err := backboneLinks(g, regions)
	if err != nil {
		return BackboneResult{}, err
	}
	res.Inter = inter

	for _, region := range regions {
		res.Combined.Edges = append(res.Combined.Edges, res.Local[region].Edges...)
		res.Combined.Weight += res.Local[region].Weight
	}
	res.Combined.Edges = append(res.Combined.Edges, inter...)
	for _, e := range inter {
		res.Combined.Weight += e.Weight
	}
	sort.Slice(res.Combined.Edges, func(i, j int) bool {
		if res.Combined.Edges[i].A != res.Combined.Edges[j].A {
			return res.Combined.Edges[i].A < res.Combined.Edges[j].A
		}
		return res.Combined.Edges[i].B < res.Combined.Edges[j].B
	})
	if len(res.Combined.Edges) != g.NumNodes()-1 {
		return BackboneResult{}, fmt.Errorf("mst: combined tree has %d edges, want %d",
			len(res.Combined.Edges), g.NumNodes()-1)
	}
	return res, nil
}

// runDistributed executes GHS over sub on a fresh simulated network.
func runDistributed(sub *graph.Graph, ids []graph.NodeID) (graph.Tree, Stats, error) {
	sched := sim.New(1)
	net := netsim.New(sched, sub)
	alg, err := New(net, ids)
	if err != nil {
		return graph.Tree{}, Stats{}, err
	}
	alg.Start()
	sched.Run()
	tree, err := alg.Tree()
	return tree, alg.Stats(), err
}

// backboneLinks contracts regions to supernodes and returns the
// inter-region links selected by the MST of the contracted graph.
func backboneLinks(g *graph.Graph, regions []string) ([]graph.Edge, error) {
	if len(regions) == 1 {
		return nil, nil
	}
	regionIdx := make(map[string]graph.NodeID, len(regions))
	contracted := graph.New()
	for i, r := range regions {
		id := graph.NodeID(i)
		regionIdx[r] = id
		contracted.MustAddNode(graph.Node{ID: id, Label: r})
	}
	// Cheapest physical link per region pair.
	type pair struct{ a, b graph.NodeID }
	best := make(map[pair]graph.Edge)
	for _, e := range g.Edges() {
		na, _ := g.Node(e.A)
		nb, _ := g.Node(e.B)
		if na.Region == nb.Region {
			continue
		}
		ra, rb := regionIdx[na.Region], regionIdx[nb.Region]
		if ra > rb {
			ra, rb = rb, ra
		}
		p := pair{ra, rb}
		if cur, ok := best[p]; !ok || e.Weight < cur.Weight {
			best[p] = e
		}
	}
	for p, e := range best {
		contracted.MustAddEdge(p.a, p.b, e.Weight)
	}
	tree, err := contracted.KruskalMST()
	if err != nil {
		return nil, fmt.Errorf("mst: back-bone: %w", err)
	}
	var out []graph.Edge
	for _, te := range tree.Edges {
		a, b := te.A, te.B
		if a > b {
			a, b = b, a
		}
		out = append(out, best[pair{a, b}])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// TotalWeight is the cost of traversing the whole combined tree — the
// quantity §3.3.1-B charges a full broadcast with ("the total cost of
// traversing the MST is the sum of the weights of the MST").
func (r BackboneResult) TotalWeight() float64 { return r.Combined.Weight }

// RegionCostRow is one row of the §3.3.1-B cost-estimation table.
type RegionCostRow struct {
	Region       string
	BackboneCost float64 // cost along the back-bone from the source region
	LocalCost    float64 // cost of the region's local MST
	Total        float64
	Reachable    bool
}

// CostTable returns per-region delivery costs sorted by region name: the
// "table listing the costs for delivery to the targeted recipients in each
// region" a sender consults before broadcasting (§3.3.1-B). The cost to
// reach a region is the back-bone cost from the source region (sum of the
// chosen inter-region links on the unique back-bone path) plus the target
// region's local tree weight.
func (r BackboneResult) CostTable(sourceRegion string) ([]RegionCostRow, error) {
	if _, ok := r.Local[sourceRegion]; !ok {
		return nil, fmt.Errorf("mst: unknown source region %q", sourceRegion)
	}
	adj := make(map[string]map[string]float64)
	link := func(a, b string, w float64) {
		if adj[a] == nil {
			adj[a] = make(map[string]float64)
		}
		adj[a][b] = w
	}
	for _, e := range r.Inter {
		ra, rb := r.NodeRegion[e.A], r.NodeRegion[e.B]
		link(ra, rb, e.Weight)
		link(rb, ra, e.Weight)
	}
	// The inter links form a tree over regions, so BFS accumulation along
	// it yields the unique path costs.
	dist := map[string]float64{sourceRegion: 0}
	frontier := []string{sourceRegion}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for nb, w := range adj[cur] {
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + w
				frontier = append(frontier, nb)
			}
		}
	}
	var rows []RegionCostRow
	for region, localCost := range r.RegionCost {
		d, reachable := dist[region]
		row := RegionCostRow{Region: region, LocalCost: localCost, BackboneCost: d, Reachable: reachable}
		if reachable {
			row.Total = d + localCost
		} else {
			row.Total = math.Inf(1)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Region < rows[j].Region })
	return rows, nil
}
