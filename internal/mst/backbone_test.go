package mst

import (
	"math"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
)

// figure2Graph builds a deterministic 3-region internetwork like Fig. 2.
func figure2Graph() *graph.Graph {
	g := graph.New()
	add := func(id graph.NodeID, region string) {
		g.MustAddNode(graph.Node{ID: id, Region: region, Kind: graph.KindRouter})
	}
	// Region A: 1,2,3; Region B: 11,12,13; Region C: 21,22.
	for _, id := range []graph.NodeID{1, 2, 3} {
		add(id, "A")
	}
	for _, id := range []graph.NodeID{11, 12, 13} {
		add(id, "B")
	}
	for _, id := range []graph.NodeID{21, 22} {
		add(id, "C")
	}
	// Intra-region links.
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(1, 3, 9)
	g.MustAddEdge(11, 12, 3)
	g.MustAddEdge(12, 13, 4)
	g.MustAddEdge(21, 22, 5)
	// Inter-region links (border nodes: 3, 11, 13, 21, 22, 2).
	g.MustAddEdge(3, 11, 10)
	g.MustAddEdge(2, 11, 12) // heavier A-B alternative
	g.MustAddEdge(13, 21, 7)
	g.MustAddEdge(22, 1, 20) // C-A direct, heavy
	return g
}

func TestBackboneFigure2(t *testing.T) {
	g := figure2Graph()
	res, err := Backbone(g, false)
	if err != nil {
		t.Fatal(err)
	}
	// Local MSTs.
	if w := res.Local["A"].Weight; w != 3 { // 1-2 (1) + 2-3 (2)
		t.Errorf("region A local MST weight = %v, want 3", w)
	}
	if w := res.Local["B"].Weight; w != 7 {
		t.Errorf("region B local MST weight = %v, want 7", w)
	}
	if w := res.Local["C"].Weight; w != 5 {
		t.Errorf("region C local MST weight = %v, want 5", w)
	}
	// Back-bone: cheapest A-B link (3-11, 10) and B-C link (13-21, 7);
	// the heavy A-C link (20) loses to the A-B-C path in the contracted MST.
	if len(res.Inter) != 2 {
		t.Fatalf("inter links = %+v, want 2", res.Inter)
	}
	wantInter := map[[2]graph.NodeID]bool{{3, 11}: true, {13, 21}: true}
	for _, e := range res.Inter {
		if !wantInter[[2]graph.NodeID{e.A, e.B}] {
			t.Errorf("unexpected inter link %+v", e)
		}
	}
	// Combined spans everything: 8 nodes → 7 edges.
	if len(res.Combined.Edges) != 7 {
		t.Errorf("combined edges = %d, want 7", len(res.Combined.Edges))
	}
	if res.TotalWeight() != 3+7+5+10+7 {
		t.Errorf("total weight = %v, want 32", res.TotalWeight())
	}
}

func TestBackboneDistributedMatchesCentralized(t *testing.T) {
	g := figure2Graph()
	central, err := Backbone(g, false)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Backbone(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(central.TotalWeight()-dist.TotalWeight()) > 1e-9 {
		t.Errorf("centralized weight %v != distributed %v", central.TotalWeight(), dist.TotalWeight())
	}
	if dist.Stats.Messages == 0 {
		t.Error("distributed run reported no protocol messages")
	}
	if central.Stats.Messages != 0 {
		t.Error("centralized run reported protocol messages")
	}
}

func TestBackboneRandomMultiRegion(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.MultiRegion(rng, graph.MultiRegionSpec{
			Regions: 3 + int(seed%3), NodesPerRegion: 4 + int(seed%4),
			ExtraIntra: 3, InterLinks: 2,
		})
		res, err := Backbone(g, seed%2 == 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Combined is a spanning tree: n-1 edges, connected.
		if len(res.Combined.Edges) != g.NumNodes()-1 {
			t.Fatalf("seed %d: %d edges, want %d", seed, len(res.Combined.Edges), g.NumNodes()-1)
		}
		span := graph.New()
		for _, n := range g.Nodes() {
			span.MustAddNode(n)
		}
		for _, e := range res.Combined.Edges {
			span.MustAddEdge(e.A, e.B, e.Weight)
		}
		if !span.Connected() {
			t.Fatalf("seed %d: combined tree does not span", seed)
		}
		// The two-level tree can cost more than the global MST (it is
		// constrained to respect regions) but never less.
		global, err := g.KruskalMST()
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalWeight() < global.Weight-1e-9 {
			t.Fatalf("seed %d: two-level tree %v cheaper than global MST %v",
				seed, res.TotalWeight(), global.Weight)
		}
		// Inter-link endpoints are border nodes.
		border := make(map[graph.NodeID]bool)
		for _, n := range g.BorderNodes() {
			border[n.ID] = true
		}
		for _, e := range res.Inter {
			if !border[e.A] || !border[e.B] {
				t.Fatalf("seed %d: inter link %+v not between border nodes", seed, e)
			}
		}
	}
}

func TestBackboneSingleRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.MultiRegion(rng, graph.MultiRegionSpec{Regions: 1, NodesPerRegion: 6})
	res, err := Backbone(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inter) != 0 {
		t.Errorf("single region produced inter links: %v", res.Inter)
	}
	if len(res.Combined.Edges) != 5 {
		t.Errorf("combined edges = %d, want 5", len(res.Combined.Edges))
	}
}

func TestBackboneEmptyGraph(t *testing.T) {
	if _, err := Backbone(graph.New(), false); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestCostTable(t *testing.T) {
	g := figure2Graph()
	res, err := Backbone(g, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.CostTable("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	byRegion := make(map[string]RegionCostRow)
	for _, r := range rows {
		byRegion[r.Region] = r
	}
	if r := byRegion["A"]; r.BackboneCost != 0 || r.Total != 3 {
		t.Errorf("A row = %+v, want backbone 0, total 3", r)
	}
	if r := byRegion["B"]; r.BackboneCost != 10 || r.Total != 17 {
		t.Errorf("B row = %+v, want backbone 10, total 17", r)
	}
	if r := byRegion["C"]; r.BackboneCost != 17 || r.Total != 22 {
		t.Errorf("C row = %+v, want backbone 17 (10+7), total 22", r)
	}
	if _, err := res.CostTable("Z"); err == nil {
		t.Error("unknown source region accepted")
	}
}
