package mst_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
)

// ExampleBackbone computes the paper's two-level broadcast structure on a
// small two-region internetwork.
func ExampleBackbone() {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1, Region: "A"})
	g.MustAddNode(graph.Node{ID: 2, Region: "A"})
	g.MustAddNode(graph.Node{ID: 3, Region: "B"})
	g.MustAddNode(graph.Node{ID: 4, Region: "B"})
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 2)
	g.MustAddEdge(2, 3, 5) // the inter-region link
	res, err := mst.Backbone(g, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("local A:", res.Local["A"].Weight)
	fmt.Println("local B:", res.Local["B"].Weight)
	fmt.Println("backbone links:", len(res.Inter))
	fmt.Println("total:", res.TotalWeight())
	// Output:
	// local A: 1
	// local B: 2
	// backbone links: 1
	// total: 8
}
