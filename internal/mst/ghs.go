// Package mst implements the distributed Minimum-weight Spanning Tree
// algorithm the paper's attribute-based mail system broadcasts over
// (§3.3.1-A), plus the paper's modification into a back-bone MST connecting
// regions with local MSTs inside each region (Fig. 2).
//
// The distributed algorithm is Gallager, Humblet and Spira's [GAL83]: "each
// node performs the same local algorithm, which consists of sending messages
// over attached links and waiting for incoming messages from other nodes and
// processing these messages". Nodes run over internal/netsim, whose links
// deliver "without error and in sequence" as the algorithm requires. Edge
// weights must be distinct so the MST is unique.
package mst

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/netsim"
)

// Errors reported by the package.
var (
	ErrDisconnected     = errors.New("mst: subgraph is not connected")
	ErrDuplicateWeights = errors.New("mst: edge weights must be distinct")
	ErrIncomplete       = errors.New("mst: algorithm has not completed")
	ErrEmpty            = errors.New("mst: no member nodes")
)

// nodeState is the GHS node state (SN).
type nodeState int

const (
	stateSleeping nodeState = iota + 1
	stateFind
	stateFound
)

// edgeState is the GHS edge state (SE).
type edgeState int

const (
	edgeBasic edgeState = iota + 1
	edgeBranch
	edgeRejected
)

// Protocol messages, exactly the seven of [GAL83].
type (
	msgConnect  struct{ Level int }
	msgInitiate struct {
		Level    int
		Fragment float64
		State    nodeState
	}
	msgTest struct {
		Level    int
		Fragment float64
	}
	msgAccept     struct{}
	msgReject     struct{}
	msgReport     struct{ Weight float64 }
	msgChangeRoot struct{}
)

// Stats counts protocol traffic.
type Stats struct {
	Messages int
	ByType   map[string]int
	Deferred int // messages that had to wait on the local queue
}

// Algorithm is one GHS execution over a member subgraph of a network.
type Algorithm struct {
	net     *netsim.Network
	nodes   map[graph.NodeID]*ghsNode
	members []graph.NodeID
	stats   Stats
	halted  bool
}

// New prepares a GHS run over the induced subgraph on members. Every member
// must be free (no handler registered on its node yet); the subgraph must be
// connected with distinct edge weights.
func New(net *netsim.Network, members []graph.NodeID) (*Algorithm, error) {
	if len(members) == 0 {
		return nil, ErrEmpty
	}
	sub := net.Topology().Subgraph(members)
	if sub.NumNodes() != len(members) {
		return nil, fmt.Errorf("mst: members missing from topology")
	}
	if !sub.Connected() {
		return nil, ErrDisconnected
	}
	// One frozen build serves the duplicate-weight scan and the per-node
	// adjacency setup below — no per-call re-sorts or map walks.
	f := sub.Frozen()
	seen := make(map[float64]bool, len(f.Edges()))
	for _, e := range f.Edges() {
		if seen[e.Weight] {
			return nil, fmt.Errorf("%w: %v", ErrDuplicateWeights, e.Weight)
		}
		seen[e.Weight] = true
	}
	a := &Algorithm{
		net:     net,
		nodes:   make(map[graph.NodeID]*ghsNode, len(members)),
		members: append([]graph.NodeID(nil), members...),
		stats:   Stats{ByType: make(map[string]int)},
	}
	sort.Slice(a.members, func(i, j int) bool { return a.members[i] < a.members[j] })
	for _, id := range a.members {
		n := &ghsNode{
			id:      id,
			alg:     a,
			state:   stateSleeping,
			edges:   make(map[graph.NodeID]edgeState),
			weights: make(map[graph.NodeID]float64),
			bestWt:  math.Inf(1),
		}
		fi, _ := f.IndexOf(id)
		nbrs, wts := f.Row(fi)
		for k, nbIdx := range nbrs {
			nb := f.IDOf(int(nbIdx))
			n.edges[nb] = edgeBasic
			n.weights[nb] = wts[k]
		}
		if err := net.Register(id, n); err != nil {
			return nil, err
		}
		a.nodes[id] = n
	}
	return a, nil
}

// Start wakes every node. [GAL83] allows any subset to start spontaneously;
// waking all keeps runs deterministic.
func (a *Algorithm) Start() {
	if len(a.members) == 1 {
		// A single-node fragment is already the whole (empty) MST.
		a.halted = true
		return
	}
	for _, id := range a.members {
		a.nodes[id].wakeup()
	}
}

// Halted reports whether a core node has executed the halt step (the whole
// tree is then complete; the remaining nodes are quiescent).
func (a *Algorithm) Halted() bool { return a.halted }

// Stats returns protocol traffic counters.
func (a *Algorithm) Stats() Stats {
	out := a.stats
	out.ByType = make(map[string]int, len(a.stats.ByType))
	for k, v := range a.stats.ByType {
		out.ByType[k] = v
	}
	return out
}

// Tree extracts the MST from the nodes' Branch edges. It fails if the
// algorithm has not completed or the branches are inconsistent.
func (a *Algorithm) Tree() (graph.Tree, error) {
	if !a.halted {
		return graph.Tree{}, ErrIncomplete
	}
	var t graph.Tree
	for _, id := range a.members {
		n := a.nodes[id]
		for nb, st := range n.edges {
			if st != edgeBranch || id > nb {
				continue
			}
			// Both endpoints must agree the edge is a branch.
			if a.nodes[nb].edges[id] != edgeBranch {
				return graph.Tree{}, fmt.Errorf("mst: edge %d-%d branch state asymmetric", id, nb)
			}
			t.Edges = append(t.Edges, graph.Edge{A: id, B: nb, Weight: n.weights[nb]})
			t.Weight += n.weights[nb]
		}
	}
	if len(t.Edges) != len(a.members)-1 {
		return graph.Tree{}, fmt.Errorf("mst: tree has %d edges, want %d", len(t.Edges), len(a.members)-1)
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].A != t.Edges[j].A {
			return t.Edges[i].A < t.Edges[j].A
		}
		return t.Edges[i].B < t.Edges[j].B
	})
	return t, nil
}

func (a *Algorithm) send(from, to graph.NodeID, payload any) {
	a.stats.Messages++
	a.stats.ByType[typeName(payload)]++
	// SendDirect can only fail for unknown/non-adjacent nodes, which the
	// constructor has ruled out, or a down sender — nodes do not crash
	// during an MST run (the paper's network model has reliable links and
	// live nodes for this phase).
	if err := a.net.SendDirect(from, to, payload); err != nil {
		panic(fmt.Sprintf("mst: send %d→%d: %v", from, to, err))
	}
}

func typeName(payload any) string {
	switch payload.(type) {
	case msgConnect:
		return "connect"
	case msgInitiate:
		return "initiate"
	case msgTest:
		return "test"
	case msgAccept:
		return "accept"
	case msgReject:
		return "reject"
	case msgReport:
		return "report"
	case msgChangeRoot:
		return "changeroot"
	default:
		return "unknown"
	}
}

// ghsNode is one node's GHS state machine.
type ghsNode struct {
	id  graph.NodeID
	alg *Algorithm

	state    nodeState
	level    int     // LN
	fragment float64 // FN (core edge weight)

	edges   map[graph.NodeID]edgeState
	weights map[graph.NodeID]float64

	bestEdge graph.NodeID
	hasBest  bool
	bestWt   float64
	testEdge graph.NodeID
	hasTest  bool
	inBranch graph.NodeID
	findCnt  int

	deferred []netsim.Envelope
}

// Receive implements netsim.Handler.
func (n *ghsNode) Receive(env netsim.Envelope) {
	if n.process(env) {
		n.drainDeferred()
	} else {
		n.alg.stats.Deferred++
		n.deferred = append(n.deferred, env)
	}
}

// drainDeferred retries queued messages until a full pass consumes nothing.
func (n *ghsNode) drainDeferred() {
	for {
		progress := false
		kept := n.deferred[:0]
		for _, env := range n.deferred {
			if n.process(env) {
				progress = true
			} else {
				kept = append(kept, env)
			}
		}
		n.deferred = kept
		if !progress || len(n.deferred) == 0 {
			return
		}
	}
}

// process handles one message; false means "place on end of queue".
func (n *ghsNode) process(env netsim.Envelope) bool {
	j := env.From
	switch m := env.Payload.(type) {
	case msgConnect:
		return n.onConnect(j, m)
	case msgInitiate:
		n.onInitiate(j, m)
		return true
	case msgTest:
		return n.onTest(j, m)
	case msgAccept:
		n.onAccept(j)
		return true
	case msgReject:
		n.onReject(j)
		return true
	case msgReport:
		return n.onReport(j, m)
	case msgChangeRoot:
		n.changeRoot()
		return true
	default:
		return true // drop unknown traffic
	}
}

// wakeup is procedure (1) of [GAL83].
func (n *ghsNode) wakeup() {
	if n.state != stateSleeping {
		return
	}
	m := n.minEdge(func(st edgeState) bool { return true })
	n.edges[m] = edgeBranch
	n.level = 0
	n.fragment = -1
	n.state = stateFound
	n.findCnt = 0
	n.alg.send(n.id, m, msgConnect{Level: 0})
}

// minEdge returns the adjacent edge of minimum weight whose state passes the
// filter. Caller guarantees at least one exists.
func (n *ghsNode) minEdge(ok func(edgeState) bool) graph.NodeID {
	best := graph.NodeID(0)
	bestW := math.Inf(1)
	found := false
	for nb, st := range n.edges {
		if !ok(st) {
			continue
		}
		if w := n.weights[nb]; w < bestW {
			best, bestW, found = nb, w, true
		}
	}
	if !found {
		panic("mst: minEdge called with no candidate edges")
	}
	return best
}

func (n *ghsNode) hasEdgeState(want edgeState) bool {
	for _, st := range n.edges {
		if st == want {
			return true
		}
	}
	return false
}

// onConnect is procedure (2).
func (n *ghsNode) onConnect(j graph.NodeID, m msgConnect) bool {
	if n.state == stateSleeping {
		n.wakeup()
	}
	switch {
	case m.Level < n.level:
		// Absorb the lower-level fragment.
		n.edges[j] = edgeBranch
		n.alg.send(n.id, j, msgInitiate{Level: n.level, Fragment: n.fragment, State: n.state})
		if n.state == stateFind {
			n.findCnt++
		}
		return true
	case n.edges[j] == edgeBasic:
		return false // defer until levels align
	default:
		// Merge: the shared edge becomes the new core.
		n.alg.send(n.id, j, msgInitiate{Level: n.level + 1, Fragment: n.weights[j], State: stateFind})
		return true
	}
}

// onInitiate is procedure (3).
func (n *ghsNode) onInitiate(j graph.NodeID, m msgInitiate) {
	n.level = m.Level
	n.fragment = m.Fragment
	n.state = m.State
	n.inBranch = j
	n.hasBest = false
	n.bestWt = math.Inf(1)
	// Deterministic propagation order.
	nbs := make([]graph.NodeID, 0, len(n.edges))
	for nb := range n.edges {
		nbs = append(nbs, nb)
	}
	sort.Slice(nbs, func(x, y int) bool { return nbs[x] < nbs[y] })
	for _, nb := range nbs {
		if nb == j || n.edges[nb] != edgeBranch {
			continue
		}
		n.alg.send(n.id, nb, msgInitiate{Level: m.Level, Fragment: m.Fragment, State: m.State})
		if m.State == stateFind {
			n.findCnt++
		}
	}
	if m.State == stateFind {
		n.test()
	}
}

// test is procedure (4).
func (n *ghsNode) test() {
	if n.hasEdgeState(edgeBasic) {
		n.testEdge = n.minEdge(func(st edgeState) bool { return st == edgeBasic })
		n.hasTest = true
		n.alg.send(n.id, n.testEdge, msgTest{Level: n.level, Fragment: n.fragment})
		return
	}
	n.hasTest = false
	n.report()
}

// onTest is procedure (5).
func (n *ghsNode) onTest(j graph.NodeID, m msgTest) bool {
	if n.state == stateSleeping {
		n.wakeup()
	}
	if m.Level > n.level {
		return false // defer
	}
	if m.Fragment != n.fragment {
		n.alg.send(n.id, j, msgAccept{})
		return true
	}
	if n.edges[j] == edgeBasic {
		n.edges[j] = edgeRejected
	}
	if !n.hasTest || n.testEdge != j {
		n.alg.send(n.id, j, msgReject{})
	} else {
		n.test()
	}
	return true
}

// onAccept is procedure (6).
func (n *ghsNode) onAccept(j graph.NodeID) {
	n.hasTest = false
	if n.weights[j] < n.bestWt {
		n.bestEdge = j
		n.hasBest = true
		n.bestWt = n.weights[j]
	}
	n.report()
}

// onReject is procedure (7).
func (n *ghsNode) onReject(j graph.NodeID) {
	if n.edges[j] == edgeBasic {
		n.edges[j] = edgeRejected
	}
	n.test()
}

// report is procedure (8).
func (n *ghsNode) report() {
	if n.findCnt == 0 && !n.hasTest {
		n.state = stateFound
		n.alg.send(n.id, n.inBranch, msgReport{Weight: n.bestWt})
	}
}

// onReport is procedure (9).
func (n *ghsNode) onReport(j graph.NodeID, m msgReport) bool {
	if j != n.inBranch {
		n.findCnt--
		if m.Weight < n.bestWt {
			n.bestWt = m.Weight
			n.bestEdge = j
			n.hasBest = true
		}
		n.report()
		return true
	}
	if n.state == stateFind {
		return false // defer
	}
	if m.Weight > n.bestWt {
		n.changeRoot()
		return true
	}
	if math.IsInf(m.Weight, 1) && math.IsInf(n.bestWt, 1) {
		n.alg.halted = true // MST complete
	}
	return true
}

// changeRoot is procedure (10).
func (n *ghsNode) changeRoot() {
	if n.edges[n.bestEdge] == edgeBranch {
		n.alg.send(n.id, n.bestEdge, msgChangeRoot{})
		return
	}
	n.alg.send(n.id, n.bestEdge, msgConnect{Level: n.level})
	n.edges[n.bestEdge] = edgeBranch
}
