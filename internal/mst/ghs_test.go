package mst

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// runGHS executes GHS on g over all nodes and returns the tree and stats.
func runGHS(t *testing.T, g *graph.Graph) (graph.Tree, Stats) {
	t.Helper()
	sched := sim.New(3)
	net := netsim.New(sched, g)
	alg, err := New(net, g.NodeIDs())
	if err != nil {
		t.Fatal(err)
	}
	alg.Start()
	sched.Run()
	if !alg.Halted() {
		t.Fatal("GHS did not halt")
	}
	tree, err := alg.Tree()
	if err != nil {
		t.Fatal(err)
	}
	return tree, alg.Stats()
}

func TestTwoNodes(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2})
	g.MustAddEdge(1, 2, 5)
	tree, _ := runGHS(t, g)
	if len(tree.Edges) != 1 || tree.Weight != 5 {
		t.Errorf("tree = %+v", tree)
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 7})
	sched := sim.New(1)
	net := netsim.New(sched, g)
	alg, err := New(net, []graph.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	alg.Start()
	sched.Run()
	tree, err := alg.Tree()
	if err != nil || len(tree.Edges) != 0 {
		t.Errorf("single-node tree = %+v, %v", tree, err)
	}
}

func TestTriangle(t *testing.T) {
	g := graph.New()
	for i := 1; i <= 3; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(1, 3, 3)
	tree, _ := runGHS(t, g)
	if tree.Weight != 3 {
		t.Errorf("MST weight = %v, want 3 (edges 1-2 and 2-3)", tree.Weight)
	}
	if !tree.Contains(1, 2) || !tree.Contains(2, 3) || tree.Contains(1, 3) {
		t.Errorf("wrong edges: %+v", tree.Edges)
	}
}

// The classic GHS example shape: two fragments at different levels must
// merge/absorb correctly.
func TestStarPlusChain(t *testing.T) {
	g := graph.New()
	for i := 0; i < 7; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 20)
	g.MustAddEdge(0, 3, 30)
	g.MustAddEdge(3, 4, 5)
	g.MustAddEdge(4, 5, 6)
	g.MustAddEdge(5, 6, 7)
	g.MustAddEdge(6, 1, 40) // cycle closer; heaviest, must be excluded
	tree, _ := runGHS(t, g)
	want, err := g.KruskalMST()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Weight-want.Weight) > 1e-9 {
		t.Errorf("GHS weight %v != Kruskal weight %v", tree.Weight, want.Weight)
	}
	if tree.Contains(6, 1) {
		t.Error("cycle-closing heaviest edge included")
	}
}

// Cross-check GHS against Kruskal on many random connected graphs — the
// paper's [GAL83] correctness property, and experiment E5 in DESIGN.md.
func TestGHSMatchesKruskalRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		extra := rng.Intn(2 * n)
		g := graph.RandomConnected(rng, n, extra, 1)
		tree, _ := runGHS(t, g)
		want, err := g.KruskalMST()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tree.Weight-want.Weight) > 1e-9 {
			t.Fatalf("seed %d: GHS weight %v != Kruskal %v", seed, tree.Weight, want.Weight)
		}
		for _, e := range want.Edges {
			if !tree.Contains(e.A, e.B) {
				t.Fatalf("seed %d: MST edge %v missing from GHS tree", seed, e)
			}
		}
	}
}

// GHS message complexity is O(E + N log N); sanity-check the constant is
// sane (the bound in [GAL83] is 5N log2 N + 2E exchanges).
func TestGHSMessageComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, extra := 40, 80
	g := graph.RandomConnected(rng, n, extra, 1)
	_, stats := runGHS(t, g)
	e := g.NumEdges()
	bound := 5*float64(n)*math.Log2(float64(n)) + 2*float64(e)
	if float64(stats.Messages) > bound {
		t.Errorf("GHS used %d messages, above the [GAL83] bound %.0f", stats.Messages, bound)
	}
	if stats.Messages == 0 || stats.ByType["connect"] == 0 || stats.ByType["report"] == 0 {
		t.Errorf("suspicious stats: %+v", stats)
	}
}

func TestGHSOnSubgraphOnly(t *testing.T) {
	// Nodes 0-3 run GHS; node 4 exists in the topology but is not a member
	// and must receive nothing.
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 4, 4) // leads outside the member set
	sched := sim.New(1)
	net := netsim.New(sched, g)
	got := 0
	net.MustRegister(4, netsim.HandlerFunc(func(netsim.Envelope) { got++ }))
	alg, err := New(net, []graph.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	alg.Start()
	sched.Run()
	if got != 0 {
		t.Errorf("non-member received %d messages", got)
	}
	tree, err := alg.Tree()
	if err != nil || len(tree.Edges) != 3 {
		t.Errorf("tree = %+v, %v", tree, err)
	}
}

func TestNewValidation(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2})
	g.MustAddNode(graph.Node{ID: 3})
	g.MustAddEdge(1, 2, 1)
	sched := sim.New(1)
	net := netsim.New(sched, g)

	if _, err := New(net, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty members err = %v", err)
	}
	if _, err := New(net, []graph.NodeID{1, 2, 3}); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected err = %v", err)
	}
	if _, err := New(net, []graph.NodeID{1, 99}); err == nil {
		t.Error("missing member accepted")
	}

	g2 := graph.New()
	for i := 1; i <= 3; i++ {
		g2.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g2.MustAddEdge(1, 2, 1)
	g2.MustAddEdge(2, 3, 1) // duplicate weight
	net2 := netsim.New(sim.New(1), g2)
	if _, err := New(net2, []graph.NodeID{1, 2, 3}); !errors.Is(err, ErrDuplicateWeights) {
		t.Errorf("duplicate weights err = %v", err)
	}
}

func TestTreeBeforeCompletion(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2})
	g.MustAddEdge(1, 2, 1)
	net := netsim.New(sim.New(1), g)
	alg, err := New(net, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alg.Tree(); !errors.Is(err, ErrIncomplete) {
		t.Errorf("Tree before run err = %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() *graph.Graph {
		rng := rand.New(rand.NewSource(5))
		return graph.RandomConnected(rng, 15, 20, 1)
	}
	t1, s1 := runGHS(t, build())
	t2, s2 := runGHS(t, build())
	if t1.Weight != t2.Weight || s1.Messages != s2.Messages {
		t.Errorf("nondeterministic: weights %v/%v, messages %d/%d",
			t1.Weight, t2.Weight, s1.Messages, s2.Messages)
	}
}
