// Package client implements the paper's user interface / user agent: the
// software that "interacts with the users and assists users in composing,
// sending, receiving, reading, and deleting mail" (§1).
//
// Its centerpiece is the paper's GetMail procedure (§3.1.2c): an efficient
// mail-retrieval algorithm that avoids polling every authority server by
// tracking LastCheckingTime[user] against each server's LastStartTime and
// remembering PreviouslyUnavailableServers. "This scheme will not check
// servers when it is sure that they do not store any messages for the user"
// — under normal (failure-free) conditions it issues approximately one poll
// per retrieval, yet "guarantees that no messages will be lost even when
// some servers fail" (§5).
package client

import (
	"context"
	"errors"
	"fmt"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// Errors reported by Agent operations. ErrNoServerAvailable matches
// mailerr.ErrServerDown so callers can branch on the shared taxonomy without
// importing this package's sentinel.
var (
	ErrNoServerAvailable = fmt.Errorf("client: no authority server available: %w", mailerr.ErrServerDown)
	ErrNotAttached       = errors.New("client: agent not attached to a host")
)

// Host is the multiplexer process on a host node: it receives server traffic
// (submission acks, mail-arrival notifications) and routes it to the user
// agents attached to the host.
type Host struct {
	id     graph.NodeID
	net    *netsim.Network
	agents map[names.Name]*Agent
	acks   []server.SubmitAck
}

// NewHost creates the host process and registers it on its network node.
func NewHost(net *netsim.Network, id graph.NodeID) (*Host, error) {
	h := &Host{id: id, net: net, agents: make(map[names.Name]*Agent)}
	if err := net.Register(id, h); err != nil {
		return nil, err
	}
	return h, nil
}

// ID returns the host's node ID.
func (h *Host) ID() graph.NodeID { return h.id }

// Acks returns the submission acks received so far.
func (h *Host) Acks() []server.SubmitAck {
	return append([]server.SubmitAck(nil), h.acks...)
}

// Receive implements netsim.Handler.
func (h *Host) Receive(env netsim.Envelope) {
	switch p := env.Payload.(type) {
	case server.SubmitAck:
		h.acks = append(h.acks, p)
	case server.Notify:
		if a, ok := h.agents[p.User]; ok {
			a.notifications = append(a.notifications, p)
		}
	}
}

// Stats are the per-agent retrieval counters the experiments report.
type Stats struct {
	Polls        int     // CheckMail calls issued ("get mail from server")
	FailedProbes int     // liveness probes that found a server down
	Retrievals   int     // GetMail / PollAll invocations
	Received     int     // messages newly received
	Duplicates   int     // retrieved copies suppressed by the agent
	PollCost     float64 // accumulated round-trip cost of all polls
	// ListQueries counts name-server authority-list fetches (name-server
	// mode), ListUpdates the pushed refreshes of a locally kept list
	// (local mode) — the two sides of the §3.1.2a trade-off.
	ListQueries int
	ListUpdates int
	ListCost    float64 // round-trip cost of the name-server queries
}

// Directory resolves server node IDs to server processes for the
// synchronous retrieval path. *server.Server satisfies the contract via a
// lookup map; the indirection keeps the client testable.
type Directory func(graph.NodeID) *server.Server

// Agent is one user's mail agent.
type Agent struct {
	user        names.Name
	host        *Host
	net         *netsim.Network
	servers     Directory
	authority   []graph.NodeID
	nameServers []graph.NodeID // non-empty = §3.1.2a name-server mode

	lastChecking  sim.Time
	prevUnavail   map[graph.NodeID]bool
	seen          map[mail.MessageID]bool
	inbox         []mail.Stored
	notifications []server.Notify

	stats Stats
}

// NewAgent creates an agent for user attached to host, with the given
// ordered authority-server list.
func NewAgent(user names.Name, host *Host, servers Directory, authority []graph.NodeID) (*Agent, error) {
	if host == nil {
		return nil, ErrNotAttached
	}
	if len(authority) == 0 {
		return nil, fmt.Errorf("client: %v has an empty authority list", user)
	}
	a := &Agent{
		user:        user,
		host:        host,
		net:         host.net,
		servers:     servers,
		authority:   append([]graph.NodeID(nil), authority...),
		prevUnavail: make(map[graph.NodeID]bool),
		seen:        make(map[mail.MessageID]bool),
	}
	host.agents[user] = a
	return a, nil
}

// User returns the agent's user name.
func (a *Agent) User() names.Name { return a.user }

// Authority returns the agent's ordered authority-server list.
func (a *Agent) Authority() []graph.NodeID {
	return append([]graph.NodeID(nil), a.authority...)
}

// SetAuthority replaces the locally kept authority list (pushed after a
// reconfiguration). Each push is the maintenance overhead §3.1.2a warns
// about: "the lists still need to be updated when there are changes in
// system configurations."
func (a *Agent) SetAuthority(list []graph.NodeID) error {
	if len(list) == 0 {
		return fmt.Errorf("client: empty authority list for %v", a.user)
	}
	a.authority = append([]graph.NodeID(nil), list...)
	a.stats.ListUpdates++
	return nil
}

// UseNameServers switches the agent to §3.1.2a's alternative connection
// setup: instead of maintaining the authority list locally, the agent
// fetches it from a name server (any live mail server exposing the
// replicated directory) at the start of every retrieval or connection.
func (a *Agent) UseNameServers(servers []graph.NodeID) error {
	if len(servers) == 0 {
		return fmt.Errorf("client: empty name-server list for %v", a.user)
	}
	a.nameServers = append([]graph.NodeID(nil), servers...)
	return nil
}

// refreshAuthority fetches the current list from the first live name server
// when the agent runs in name-server mode; otherwise it keeps the local
// list. Fetch failures fall back to the last known list, so a name-server
// outage degrades to staleness rather than lockout.
func (a *Agent) refreshAuthority() {
	if len(a.nameServers) == 0 {
		return
	}
	for _, ns := range a.nameServers {
		if !a.net.IsUp(ns) {
			a.stats.FailedProbes++
			continue
		}
		srv := a.servers(ns)
		if srv == nil {
			continue
		}
		a.stats.ListQueries++
		if c, err := a.net.Cost(a.host.id, ns); err == nil {
			a.stats.ListCost += 2 * c
		}
		list, err := srv.LookupAuthority(a.user)
		if err != nil {
			continue
		}
		a.authority = list
		return
	}
}

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

// Inbox returns the messages retrieved so far, in retrieval order.
func (a *Agent) Inbox() []mail.Stored {
	return append([]mail.Stored(nil), a.inbox...)
}

// Notifications returns the mail-arrival alerts received so far.
func (a *Agent) Notifications() []server.Notify {
	return append([]server.Notify(nil), a.notifications...)
}

// Connect performs the connection setup of §3.1.2a: "the user interface
// will contact the first server from that list, and ask for a mail service.
// If that server is not available, it will contact the next one and will
// keep attempting to contact a server until it succeeds."
func (a *Agent) Connect() (graph.NodeID, error) {
	a.refreshAuthority()
	for _, s := range a.authority {
		if a.net.IsUp(s) {
			return s, nil
		}
		a.stats.FailedProbes++
	}
	return 0, fmt.Errorf("%w: user %v", ErrNoServerAvailable, a.user)
}

// ctxErr maps a context cancellation or deadline into the shared timeout
// taxonomy (nil while the context is live). The simulated agent's calls are
// instantaneous, so the check happens once at the operation boundary —
// matching the live transport's per-step checks without pretending the
// simulator can block.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("client: %w: %v", mailerr.ErrTimeout, err)
	}
	return nil
}

// Send submits a message through the first available authority server and
// returns the server used. Delivery is asynchronous; the submission ack
// arrives at the host later.
func (a *Agent) Send(to []names.Name, subject, body string) (graph.NodeID, error) {
	return a.SendContext(context.Background(), to, subject, body)
}

// SendContext is Send honoring a context: a cancelled or expired context
// refuses the submission with mailerr.ErrTimeout before anything commits.
func (a *Agent) SendContext(ctx context.Context, to []names.Name, subject, body string) (graph.NodeID, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	srv, err := a.Connect()
	if err != nil {
		return 0, err
	}
	err = a.net.Send(a.host.id, srv, server.SubmitRequest{
		From: a.user, To: to, Subject: subject, Body: body,
	})
	if err != nil {
		return 0, err
	}
	return srv, nil
}

// Login announces the user at their host to the first available server, so
// arriving mail triggers alert signals.
func (a *Agent) Login() error {
	srv, err := a.Connect()
	if err != nil {
		return err
	}
	return a.net.Send(a.host.id, srv, server.Login{User: a.user, Host: a.host.id})
}

// Seen reports whether the agent has already delivered this message to the
// user — the query half of the dedup set NoteDelivered seeds. Migration
// drains consult it so straggler copies are discarded rather than credited.
func (a *Agent) Seen(id mail.MessageID) bool { return a.seen[id] }

// NoteDelivered seeds the duplicate-suppression set with message IDs that
// reached the user out of band — e.g. a §3.1.4 migration drain collected
// server-side — and returns the IDs that were new to the agent. Already-seen
// IDs are straggler copies (a transfer retry re-routed onto a newer
// placement) and are counted as suppressed duplicates, exactly as if the
// agent's own walk had retrieved them.
func (a *Agent) NoteDelivered(ids []mail.MessageID) []mail.MessageID {
	fresh := make([]mail.MessageID, 0, len(ids))
	for _, id := range ids {
		if a.seen[id] {
			a.stats.Duplicates++
			continue
		}
		a.seen[id] = true
		fresh = append(fresh, id)
	}
	return fresh
}

// Logout withdraws the login.
func (a *Agent) Logout() error {
	srv, err := a.Connect()
	if err != nil {
		return err
	}
	return a.net.Send(a.host.id, srv, server.Logout{User: a.user})
}

// poll retrieves mail from one server, updating counters and the dedup set.
func (a *Agent) poll(id graph.NodeID) (got int) {
	srv := a.servers(id)
	if srv == nil {
		return 0
	}
	a.stats.Polls++
	if c, err := a.net.Cost(a.host.id, id); err == nil {
		a.stats.PollCost += 2 * c // round trip
	}
	msgs, err := srv.CheckMail(a.user)
	if err != nil {
		return 0
	}
	for _, m := range msgs {
		if a.seen[m.ID] {
			a.stats.Duplicates++
			continue
		}
		a.seen[m.ID] = true
		a.inbox = append(a.inbox, m)
		a.stats.Received++
		got++
	}
	return got
}

// GetMail runs the paper's retrieval algorithm (§3.1.2c) and returns the
// newly retrieved messages. Following the pseudocode:
//
//	CurrentCheckingTime := CurrentTime
//	walk the authority list; for each live server: get mail, drop it from
//	PreviouslyUnavailableServers, and stop as soon as a server has been up
//	since before LastCheckingTime (no older mail can be anywhere else);
//	dead servers join PreviouslyUnavailableServers.
//	Then collect from any live servers still in
//	PreviouslyUnavailableServers (they may hold mail deposited while they
//	were thought unavailable).
//	LastCheckingTime := CurrentCheckingTime
func (a *Agent) GetMail() []mail.Stored {
	msgs, _ := a.GetMailContext(context.Background())
	return msgs
}

// GetMailContext is GetMail honoring a context: a cancelled or expired
// context fails the retrieval with mailerr.ErrTimeout before any server is
// polled (so LastCheckingTime does not advance and no mail can be skipped).
func (a *Agent) GetMailContext(ctx context.Context) ([]mail.Stored, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	a.refreshAuthority()
	a.stats.Retrievals++
	before := len(a.inbox)
	current := a.net.Scheduler().Now()

	finished := false
	for _, s := range a.authority {
		if finished {
			break
		}
		if a.net.IsUp(s) {
			a.poll(s)
			delete(a.prevUnavail, s)
			lastStart, _ := a.net.LastStart(s)
			if a.lastChecking > lastStart {
				finished = true
			}
		} else {
			a.stats.FailedProbes++
			a.prevUnavail[s] = true
		}
	}
	// "Get old mail in servers that might have it but were unavailable."
	for _, s := range a.authority { // authority order keeps runs deterministic
		if !a.prevUnavail[s] {
			continue
		}
		if a.net.IsUp(s) {
			a.poll(s)
			delete(a.prevUnavail, s)
		}
	}
	a.lastChecking = current
	return append([]mail.Stored(nil), a.inbox[before:]...), nil
}

// PollAll is the naive baseline GetMail is compared against: "the most
// straight-forward method is to poll all the authority servers for that
// user. However, this is very inefficient and for most times unnecessary."
func (a *Agent) PollAll() []mail.Stored {
	a.stats.Retrievals++
	before := len(a.inbox)
	for _, s := range a.authority {
		if a.net.IsUp(s) {
			a.poll(s)
		} else {
			a.stats.FailedProbes++
		}
	}
	return append([]mail.Stored(nil), a.inbox[before:]...)
}

// PreviouslyUnavailable returns the servers currently on the agent's
// PreviouslyUnavailableServers list, in authority order.
func (a *Agent) PreviouslyUnavailable() []graph.NodeID {
	var out []graph.NodeID
	for _, s := range a.authority {
		if a.prevUnavail[s] {
			out = append(out, s)
		}
	}
	return out
}

// LastCheckingTime returns the agent's LastCheckingTime[user] variable.
func (a *Agent) LastCheckingTime() sim.Time { return a.lastChecking }
