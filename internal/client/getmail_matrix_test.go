package client

import (
	"context"
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

// Triangle world for the failure matrix: one host, two servers, every pair
// directly linked — so either server can be crashed, restarted, or fully
// partitioned (both its links cut) while the other stays reachable.
const (
	mh1 graph.NodeID = 11
	ms1 graph.NodeID = 111
	ms2 graph.NodeID = 112
)

type matrixWorld struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	reader *Agent // recipient, authority [ms1, ms2]
	sender *Agent // sender, authority [ms2, ms1] — submits at ms2
}

func newMatrixWorld(t *testing.T) *matrixWorld {
	t.Helper()
	g := graph.New()
	g.MustAddNode(graph.Node{ID: mh1, Label: "H1", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: ms1, Label: "S1", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: ms2, Label: "S2", Region: "R1", Kind: graph.KindServer})
	g.MustAddEdge(mh1, ms1, 1)
	g.MustAddEdge(mh1, ms2, 1)
	g.MustAddEdge(ms1, ms2, 1)

	sched := sim.New(7)
	net := netsim.New(sched, g)
	dir := server.NewDirectory("R1")
	regions := server.NewRegionMap()
	servers := make(map[graph.NodeID]*server.Server)
	for _, id := range []graph.NodeID{ms1, ms2} {
		srv, err := server.New(server.Config{
			ID: id, Region: "R1", Net: net, Dir: dir, Regions: regions,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[id] = srv
	}
	reader := names.MustParse("R1.h1.reader")
	sender := names.MustParse("R1.h1.sender")
	if err := dir.SetAuthority(reader, []graph.NodeID{ms1, ms2}); err != nil {
		t.Fatal(err)
	}
	if err := dir.SetAuthority(sender, []graph.NodeID{ms2, ms1}); err != nil {
		t.Fatal(err)
	}
	host, err := NewHost(net, mh1)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(id graph.NodeID) *server.Server { return servers[id] }
	ra, err := NewAgent(reader, host, lookup, []graph.NodeID{ms1, ms2})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewAgent(sender, host, lookup, []graph.NodeID{ms2, ms1})
	if err != nil {
		t.Fatal(err)
	}
	return &matrixWorld{sched: sched, net: net, reader: ra, sender: sa}
}

// getMail advances the clock (so LastCheckingTime strictly increases per
// retrieval), runs one GetMail, and returns (new messages, polls issued).
func (w *matrixWorld) getMail(t *testing.T) (got, polls int) {
	t.Helper()
	w.sched.RunFor(sim.Unit)
	before := w.reader.Stats().Polls
	msgs := w.reader.GetMail()
	return len(msgs), w.reader.Stats().Polls - before
}

func (w *matrixWorld) send(t *testing.T, subject string) {
	t.Helper()
	if _, err := w.sender.Send([]names.Name{w.reader.User()}, subject, "body"); err != nil {
		t.Fatalf("send %s: %v", subject, err)
	}
	w.sched.Run()
}

// partition cuts both of a server's links; heal restores them. Restoring a
// link stamps LastStartTime on its endpoints (§3.1.2c counts disconnection
// as unavailability), which is what makes mail that failed over past the
// partition discoverable afterwards.
func (w *matrixWorld) partition(t *testing.T, s graph.NodeID) {
	t.Helper()
	if err := w.net.FailLink(mh1, s); err != nil {
		t.Fatal(err)
	}
	if err := w.net.FailLink(ms1, ms2); err != nil {
		t.Fatal(err)
	}
}

func (w *matrixWorld) healPartition(t *testing.T, s graph.NodeID) {
	t.Helper()
	if err := w.net.RestoreLink(mh1, s, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.net.RestoreLink(ms1, ms2, 1); err != nil {
		t.Fatal(err)
	}
}

// TestGetMailFailureMatrix drives §3.1.2c's retrieval procedure through a
// failure matrix — crash, crash+restart, full partition, against the primary
// and the backup authority server — checking at three checkpoints (synced
// steady state, during the fault, after healing) that no committed message
// is ever lost and that the poll count per retrieval is exactly what the
// LastCheckingTime-vs-LastStartTime comparison predicts:
//
//   - steady state costs exactly 1 poll per retrieval;
//   - a fault on the PRIMARY costs extra polls only after its recovery
//     stamps a fresh LastStartTime (the during-fault retrieval still polls
//     once: the backup);
//   - a fault on the BACKUP is invisible to the walk (it stops at the
//     primary, which provably holds all mail);
//   - mail that failed over past a PARTITIONED primary is undiscovered
//     while the partition holds (the in-region walk legitimately stops at
//     the primary) and is recovered by the first post-heal retrieval,
//     because link restoration stamps LastStartTime like a recovery.
type matrixRow struct {
	name string
	// fault is applied after checkpoint A; afterSend between the mid-fault
	// send and checkpoint B; heal after checkpoint B.
	fault, afterSend, heal func(t *testing.T, w *matrixWorld)

	pollsDuring int  // checkpoint B: polls for the during-fault retrieval
	msg1During  bool // checkpoint B: is the mid-fault message visible yet?
	pollsAfter  int  // checkpoint C: polls for the first post-heal retrieval
}

func TestGetMailFailureMatrix(t *testing.T) {
	rows := []matrixRow{
		{
			name:        "no fault",
			fault:       func(t *testing.T, w *matrixWorld) {},
			heal:        func(t *testing.T, w *matrixWorld) {},
			pollsDuring: 1, msg1During: true, pollsAfter: 1,
		},
		{
			name:  "crash primary",
			fault: func(t *testing.T, w *matrixWorld) { w.net.Crash(ms1) },
			heal:  func(t *testing.T, w *matrixWorld) { w.net.Recover(ms1) },
			// During: the walk probes ms1 (down, no poll), polls ms2, which
			// received the failed-over deposit. After: ms1's recovery stamp
			// forces the walk past it, re-polling ms2 — 2 polls once.
			pollsDuring: 1, msg1During: true, pollsAfter: 2,
		},
		{
			name:  "crash backup",
			fault: func(t *testing.T, w *matrixWorld) { w.net.Crash(ms2) },
			heal:  func(t *testing.T, w *matrixWorld) { w.net.Recover(ms2) },
			// The walk stops at the live primary both times: a backup fault
			// never costs a poll, and no mail can be stranded behind it.
			pollsDuring: 1, msg1During: true, pollsAfter: 1,
		},
		{
			name:  "restart primary before checkpoint",
			fault: func(t *testing.T, w *matrixWorld) { w.net.Crash(ms1) },
			afterSend: func(t *testing.T, w *matrixWorld) {
				w.sched.RunFor(sim.Unit)
				w.net.Recover(ms1)
			},
			// Recovery happens before the during-fault retrieval ever runs:
			// checkpoint B itself pays the 2-poll walk (ms1's LastStartTime
			// is now newer than LastCheckingTime), and checkpoint C is
			// already steady again.
			pollsDuring: 2, msg1During: true, pollsAfter: 1,
		},
		{
			name:  "partition primary",
			fault: func(t *testing.T, w *matrixWorld) { w.partition(t, ms1) },
			heal:  func(t *testing.T, w *matrixWorld) { w.healPartition(t, ms1) },
			// The deposit fails over to ms2 (no route to ms1), but the walk
			// still stops at ms1 — the simulator's polls are in-process, so
			// a partitioned-from-the-network server answers and provably has
			// been up since the last check. The failed-over message stays
			// buffered and undiscovered until healing stamps LastStartTime.
			pollsDuring: 1, msg1During: false, pollsAfter: 2,
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			w := newMatrixWorld(t)

			// Checkpoint A — first retrieval: LastCheckingTime(0) is never
			// newer than a LastStartTime, so the walk polls the whole list.
			got, polls := w.getMail(t)
			if got != 0 || polls != 2 {
				t.Fatalf("checkpoint A: got %d msgs in %d polls, want 0 in 2", got, polls)
			}
			lctA := w.reader.LastCheckingTime()
			if ls, _ := w.net.LastStart(ms1); lctA <= ls {
				t.Fatalf("checkpoint A: LastCheckingTime %d not past LastStart(ms1) %d", lctA, ls)
			}

			if row.fault != nil {
				row.fault(t, w)
			}
			w.send(t, "msg1")
			if row.afterSend != nil {
				row.afterSend(t, w)
			}

			// Checkpoint B — during the fault.
			got, polls = w.getMail(t)
			if polls != row.pollsDuring {
				t.Errorf("checkpoint B: %d polls, want %d", polls, row.pollsDuring)
			}
			if visible := got == 1; visible != row.msg1During {
				t.Errorf("checkpoint B: msg1 visible = %v, want %v (got %d msgs)",
					visible, row.msg1During, got)
			}
			lctB := w.reader.LastCheckingTime()
			if lctB <= lctA {
				t.Fatalf("checkpoint B: LastCheckingTime %d not monotone past %d", lctB, lctA)
			}

			if row.heal != nil {
				row.heal(t, w)
			}
			w.send(t, "msg2")

			// Checkpoint C — first retrieval after healing. Whatever the
			// fault, both committed messages must now have arrived, exactly
			// once each.
			got, polls = w.getMail(t)
			if polls != row.pollsAfter {
				t.Errorf("checkpoint C: %d polls, want %d", polls, row.pollsAfter)
			}
			want := 2
			if row.msg1During {
				want = 1
			}
			if got != want {
				t.Errorf("checkpoint C: got %d msgs, want %d", got, want)
			}
			if lctC := w.reader.LastCheckingTime(); lctC <= lctB {
				t.Fatalf("checkpoint C: LastCheckingTime %d not monotone past %d", lctC, lctB)
			}

			// Steady state re-established: one more failure-free retrieval
			// costs exactly 1 poll and surfaces nothing new.
			got, polls = w.getMail(t)
			if got != 0 || polls != 1 {
				t.Errorf("steady state: got %d msgs in %d polls, want 0 in 1", got, polls)
			}

			st := w.reader.Stats()
			if st.Received != 2 || st.Duplicates != 0 {
				t.Errorf("exactly-once broken: received %d (want 2), duplicates %d (want 0)",
					st.Received, st.Duplicates)
			}
			// Retrieval order may differ per row (a recovered message can
			// arrive after a newer one); the set must not.
			subjects := make(map[string]int)
			for _, m := range w.reader.Inbox() {
				subjects[m.Subject]++
			}
			if subjects["msg1"] != 1 || subjects["msg2"] != 1 || len(subjects) != 2 {
				t.Errorf("inbox subjects = %v, want exactly {msg1, msg2}", subjects)
			}
		})
	}
}

// TestAgentErrorTaxonomy asserts failures on TYPES from the shared mailerr
// taxonomy, not substrings: total unavailability matches ErrServerDown
// through the package sentinel, and context expiry matches ErrTimeout.
func TestAgentErrorTaxonomy(t *testing.T) {
	w := newMatrixWorld(t)
	w.net.Crash(ms1)
	w.net.Crash(ms2)

	if _, err := w.sender.Send([]names.Name{w.reader.User()}, "s", "b"); !errors.Is(err, ErrNoServerAvailable) {
		t.Errorf("Send with all servers down: %v does not match ErrNoServerAvailable", err)
	} else if !errors.Is(err, mailerr.ErrServerDown) {
		t.Errorf("Send with all servers down: %v does not match mailerr.ErrServerDown", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.sender.SendContext(ctx, []names.Name{w.reader.User()}, "s", "b"); !errors.Is(err, mailerr.ErrTimeout) {
		t.Errorf("SendContext(cancelled): %v does not match mailerr.ErrTimeout", err)
	}

	// A cancelled retrieval fails typed AND leaves the walk state untouched,
	// so the next live retrieval cannot skip mail.
	before := w.reader.LastCheckingTime()
	retrBefore := w.reader.Stats().Retrievals
	if _, err := w.reader.GetMailContext(ctx); !errors.Is(err, mailerr.ErrTimeout) {
		t.Errorf("GetMailContext(cancelled): %v does not match mailerr.ErrTimeout", err)
	}
	if got := w.reader.LastCheckingTime(); got != before {
		t.Errorf("cancelled retrieval advanced LastCheckingTime %d -> %d", before, got)
	}
	if got := w.reader.Stats().Retrievals; got != retrBefore {
		t.Errorf("cancelled retrieval counted: %d -> %d", retrBefore, got)
	}
}
