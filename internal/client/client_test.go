package client

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/server"
	"github.com/largemail/largemail/internal/sim"
)

const (
	h1 graph.NodeID = 1
	h2 graph.NodeID = 2
	s1 graph.NodeID = 101
	s2 graph.NodeID = 102
	s3 graph.NodeID = 201
)

var (
	alice = names.MustParse("R1.h1.alice")
	carol = names.MustParse("R1.h1.carol")
	bob   = names.MustParse("R2.h2.bob")
)

type world struct {
	sched   *sim.Scheduler
	net     *netsim.Network
	servers map[graph.NodeID]*server.Server
	hosts   map[graph.NodeID]*Host
	agents  map[string]*Agent
	dir     *server.Directory // R1's directory
}

// newWorld: R1 = {H1, S1, S2}, R2 = {H2, S3}; alice/carol on H1 with
// authority [S1, S2]; bob on H2 with authority [S3].
func newWorld(t *testing.T) *world {
	t.Helper()
	g := graph.New()
	g.MustAddNode(graph.Node{ID: h1, Label: "H1", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: h2, Label: "H2", Region: "R2", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s1, Label: "S1", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: s2, Label: "S2", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: s3, Label: "S3", Region: "R2", Kind: graph.KindServer})
	g.MustAddEdge(h1, s1, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, s3, 2)
	g.MustAddEdge(h2, s3, 1)

	sched := sim.New(11)
	net := netsim.New(sched, g)
	w := &world{
		sched:   sched,
		net:     net,
		servers: make(map[graph.NodeID]*server.Server),
		hosts:   make(map[graph.NodeID]*Host),
		agents:  make(map[string]*Agent),
	}
	dirR1 := server.NewDirectory("R1")
	dirR2 := server.NewDirectory("R2")
	w.dir = dirR1
	regions := server.NewRegionMap()
	for _, spec := range []struct {
		id     graph.NodeID
		region string
		dir    *server.Directory
	}{{s1, "R1", dirR1}, {s2, "R1", dirR1}, {s3, "R2", dirR2}} {
		srv, err := server.New(server.Config{
			ID: spec.id, Region: spec.region, Net: net, Dir: spec.dir, Regions: regions,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.servers[spec.id] = srv
	}
	if err := dirR1.SetAuthority(alice, []graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := dirR1.SetAuthority(carol, []graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := dirR2.SetAuthority(bob, []graph.NodeID{s3}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []graph.NodeID{h1, h2} {
		host, err := NewHost(net, id)
		if err != nil {
			t.Fatal(err)
		}
		w.hosts[id] = host
	}
	lookup := func(id graph.NodeID) *server.Server { return w.servers[id] }
	mk := func(u names.Name, host graph.NodeID, auth []graph.NodeID) {
		a, err := NewAgent(u, w.hosts[host], lookup, auth)
		if err != nil {
			t.Fatal(err)
		}
		w.agents[u.User] = a
	}
	mk(alice, h1, []graph.NodeID{s1, s2})
	mk(carol, h1, []graph.NodeID{s1, s2})
	mk(bob, h2, []graph.NodeID{s3})
	return w
}

func TestNewAgentValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := NewAgent(alice, nil, nil, []graph.NodeID{s1}); !errors.Is(err, ErrNotAttached) {
		t.Errorf("nil host err = %v", err)
	}
	if _, err := NewAgent(alice, w.hosts[h1], nil, nil); err == nil {
		t.Error("empty authority list accepted")
	}
}

func TestSendAndReceive(t *testing.T) {
	w := newWorld(t)
	srv, err := w.agents["carol"].Send([]names.Name{alice}, "hi", "body")
	if err != nil {
		t.Fatal(err)
	}
	if srv != s1 {
		t.Errorf("submitted via %d, want first authority server %d", srv, s1)
	}
	w.sched.Run()
	got := w.agents["alice"].GetMail()
	if len(got) != 1 || got[0].Subject != "hi" {
		t.Fatalf("GetMail = %v", got)
	}
	if len(w.hosts[h1].Acks()) != 1 {
		t.Error("submission ack not received at host")
	}
	if len(w.agents["alice"].Inbox()) != 1 {
		t.Error("inbox not updated")
	}
}

// The headline claim (§5): "the number of polls per retrieval request is
// approximately one under normal conditions" — after the cold-start check,
// every failure-free GetMail must poll exactly one server.
func TestGetMailSinglePollSteadyState(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	w.sched.RunUntil(10 * sim.Unit)
	a.GetMail() // cold start: LastCheckingTime(0) ≤ LastStartTime(0) everywhere
	coldPolls := a.Stats().Polls
	if coldPolls != 2 {
		t.Errorf("cold-start polls = %d, want 2 (both authority servers)", coldPolls)
	}
	for i := 0; i < 5; i++ {
		w.agents["carol"].Send([]names.Name{alice}, "s", "b")
		w.sched.Run()
		got := a.GetMail()
		if len(got) != 1 {
			t.Fatalf("round %d: got %d messages, want 1", i, len(got))
		}
	}
	if got := a.Stats().Polls - coldPolls; got != 5 {
		t.Errorf("steady-state polls = %d over 5 retrievals, want 5 (≈1 per retrieval)", got)
	}
}

// PollAll must contact every authority server on every retrieval.
func TestPollAllBaseline(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	for i := 0; i < 3; i++ {
		w.sched.RunFor(sim.Unit)
		a.PollAll()
	}
	if got := a.Stats().Polls; got != 6 {
		t.Errorf("PollAll polls = %d over 3 retrievals of 2 servers, want 6", got)
	}
}

// Primary fails: mail must land on and be retrieved from the secondary, with
// the primary remembered as previously unavailable.
func TestGetMailPrimaryDown(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	w.sched.RunUntil(5 * sim.Unit)
	a.GetMail() // warm up
	w.net.Crash(s1)
	w.agents["bob"].Send([]names.Name{alice}, "via-s2", "b")
	w.sched.Run()
	if w.servers[s2].MailboxLen(alice) != 1 {
		t.Fatal("mail did not land at secondary")
	}
	got := a.GetMail()
	if len(got) != 1 {
		t.Fatalf("retrieved %d messages, want 1", len(got))
	}
	pus := a.PreviouslyUnavailable()
	if len(pus) != 1 || pus[0] != s1 {
		t.Errorf("PreviouslyUnavailableServers = %v, want [S1]", pus)
	}
}

// Old mail stranded on a failed-then-recovered primary must be collected on
// the next check, and the recovered server's fresh LastStartTime must force
// the walk to continue to the secondary.
func TestGetMailRecoveredPrimaryYieldsStrandedMail(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	w.sched.RunUntil(2 * sim.Unit)
	a.GetMail()

	// Mail lands on S1, then S1 crashes before alice checks.
	w.agents["carol"].Send([]names.Name{alice}, "stranded", "b")
	w.sched.Run()
	w.net.Crash(s1)
	// New mail lands on S2 while S1 is down.
	w.agents["bob"].Send([]names.Name{alice}, "fresh", "b")
	w.sched.Run()
	// Check while S1 down: gets "fresh" from S2, remembers S1.
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "fresh" {
		t.Fatalf("while primary down got %v", got)
	}
	// S1 recovers, still holding "stranded".
	w.net.Recover(s1)
	w.sched.RunFor(sim.Unit)
	got = a.GetMail()
	if len(got) != 1 || got[0].Subject != "stranded" {
		t.Fatalf("after recovery got %v, want the stranded message", got)
	}
	// That check had to visit both servers: S1 restarted after the last
	// check, so the walk cannot stop there.
	if len(a.PreviouslyUnavailable()) != 0 {
		t.Errorf("PUS not cleared: %v", a.PreviouslyUnavailable())
	}
}

func TestConnectSkipsDownServers(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	w.net.Crash(s1)
	srv, err := a.Connect()
	if err != nil || srv != s2 {
		t.Errorf("Connect = %v, %v; want S2", srv, err)
	}
	if a.Stats().FailedProbes != 1 {
		t.Errorf("FailedProbes = %d, want 1", a.Stats().FailedProbes)
	}
	w.net.Crash(s2)
	if _, err := a.Connect(); !errors.Is(err, ErrNoServerAvailable) {
		t.Errorf("all-down Connect err = %v", err)
	}
	if _, err := a.Send([]names.Name{bob}, "s", "b"); !errors.Is(err, ErrNoServerAvailable) {
		t.Errorf("all-down Send err = %v", err)
	}
}

func TestLoginNotification(t *testing.T) {
	w := newWorld(t)
	b := w.agents["bob"]
	if err := b.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	w.agents["alice"].Send([]names.Name{bob}, "ping", "b")
	w.sched.Run()
	if n := b.Notifications(); len(n) != 1 || n[0].User != bob {
		t.Fatalf("notifications = %v", n)
	}
	if err := b.Logout(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	w.agents["alice"].Send([]names.Name{bob}, "ping2", "b")
	w.sched.Run()
	if len(b.Notifications()) != 1 {
		t.Error("notified after logout")
	}
}

func TestDuplicateSuppressionAcrossServers(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	// Force the same message into both servers' mailboxes (as a retried
	// transfer could); the agent must deliver it once.
	m := mail.Message{ID: mail.MessageID{Node: 77, Seq: 1}, From: bob, To: []names.Name{alice}, Subject: "dup"}
	for _, sid := range []graph.NodeID{s1, s2} {
		if err := w.net.Send(h2, sid, server.Transfer{
			Kind: server.TransferDeposit, Msg: m, Recipient: alice, Origin: h2, Token: uint64(sid),
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.sched.Run()
	got := a.PollAll()
	if len(got) != 1 {
		t.Fatalf("received %d copies, want 1", len(got))
	}
	if a.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", a.Stats().Duplicates)
	}
}

func TestSetAuthority(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	if err := a.SetAuthority(nil); err == nil {
		t.Error("empty SetAuthority accepted")
	}
	if err := a.SetAuthority([]graph.NodeID{s2, s1}); err != nil {
		t.Fatal(err)
	}
	if got := a.Authority(); got[0] != s2 {
		t.Errorf("Authority = %v", got)
	}
}

func TestPollCostAccounting(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	a.GetMail() // cold start polls S1 (cost 1) and S2 (cost 2), round trips
	if got := a.Stats().PollCost; got != 2*(1+2) {
		t.Errorf("PollCost = %v, want 6", got)
	}
}

// No-loss property (§5, validated further in internal/experiments): under a
// randomized crash/recovery schedule with retries enabled, every submitted
// message is retrieved exactly once after the system settles.
func TestNoLossUnderRandomFailures(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := newWorld(t)
		rng := rand.New(rand.NewSource(seed))
		a := w.agents["alice"]
		sent := 0
		for round := 0; round < 20; round++ {
			// Randomly toggle R1 servers, but keep at least one up so the
			// paper's liveness assumption holds.
			for _, sid := range []graph.NodeID{s1, s2} {
				if rng.Intn(3) == 0 {
					w.net.Crash(sid)
				} else {
					w.net.Recover(sid)
				}
			}
			if !w.net.IsUp(s1) && !w.net.IsUp(s2) {
				w.net.Recover(s1)
			}
			if _, err := w.agents["bob"].Send([]names.Name{alice}, "r", "b"); err == nil {
				sent++
			}
			w.sched.RunFor(20 * sim.Unit)
			a.GetMail()
		}
		w.net.Recover(s1)
		w.net.Recover(s2)
		w.sched.RunFor(200 * sim.Unit)
		w.sched.Run()
		a.GetMail()
		a.GetMail() // second pass clears any PreviouslyUnavailable stragglers
		if got := a.Stats().Received; got != sent {
			t.Errorf("seed %d: received %d of %d messages", seed, got, sent)
		}
	}
}

func TestNameServerMode(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	if err := a.UseNameServers(nil); err == nil {
		t.Error("empty name-server list accepted")
	}
	if err := a.UseNameServers([]graph.NodeID{s2, s1}); err != nil {
		t.Fatal(err)
	}
	// The directory changes behind the agent's back; name-server mode
	// picks it up without a push.
	dir := w.dir
	if err := dir.SetAuthority(alice, []graph.NodeID{s2, s1}); err != nil {
		t.Fatal(err)
	}
	srv, err := a.Connect()
	if err != nil {
		t.Fatal(err)
	}
	if srv != s2 {
		t.Errorf("Connect = %v, want s2 (fresh list from name server)", srv)
	}
	if a.Stats().ListQueries == 0 {
		t.Error("no name-server queries counted")
	}
	if a.Stats().ListCost <= 0 {
		t.Error("no name-server cost accounted")
	}
	// Name server down: falls to the next, then to the stale local list.
	w.net.Crash(s2)
	w.net.Crash(s1)
	if _, err := a.Connect(); err == nil {
		t.Error("all servers down but Connect succeeded")
	}
	w.net.Recover(s1)
	if _, err := a.Connect(); err != nil {
		t.Errorf("Connect with one name server up: %v", err)
	}
}

func TestLocalModeCountsUpdates(t *testing.T) {
	w := newWorld(t)
	a := w.agents["alice"]
	if err := a.SetAuthority([]graph.NodeID{s2, s1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetAuthority([]graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().ListUpdates; got != 2 {
		t.Errorf("ListUpdates = %d, want 2", got)
	}
}
