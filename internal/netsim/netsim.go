// Package netsim simulates the message network the mail systems run on.
//
// It combines the discrete-event kernel (internal/sim) with a weighted
// topology (internal/graph) to provide the network model the paper assumes:
// messages between nodes "arrive after an unpredictable but finite delay,
// without error and in sequence" (§3.3.1-A) while both endpoints are up, and
// nodes fail by stopping (a server "may become unavailable because of
// failure or being disconnected from the network", §3.1.2c) and later
// recover, at which point their LastStartTime is updated — the timestamp the
// paper's GetMail algorithm compares against.
//
// Delay model: a message from A to B takes (shortest-path cost A→B) ×
// DelayPerCost microticks. Per-edge delays are constant, so messages on the
// same route are delivered in sending order, as the GHS MST algorithm
// requires.
package netsim

import (
	"errors"
	"fmt"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// Errors reported by Network operations.
var (
	ErrUnknownNode   = errors.New("netsim: unknown node")
	ErrSenderDown    = errors.New("netsim: sending node is down")
	ErrNoRoute       = errors.New("netsim: no route to destination")
	ErrNotNeighbors  = errors.New("netsim: nodes are not adjacent")
	ErrNoHandler     = errors.New("netsim: node has no handler registered")
	ErrAlreadyExists = errors.New("netsim: handler already registered")
)

// Envelope is a message in flight, delivered to the destination's Handler.
type Envelope struct {
	From, To graph.NodeID
	Payload  any
	SentAt   sim.Time
	Hops     int     // links traversed along the shortest path
	Cost     float64 // total edge-weight cost of the route
}

// Handler consumes messages delivered to a node.
type Handler interface {
	Receive(env Envelope)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(env Envelope)

// Receive calls f(env).
func (f HandlerFunc) Receive(env Envelope) { f(env) }

// Recoverer is an optional extension of Handler: nodes implementing it are
// told when they recover from a crash (with the recovery time, which becomes
// their LastStartTime).
type Recoverer interface {
	Recovered(at sim.Time)
}

// Crasher is an optional extension of Handler: nodes implementing it are
// told when they crash, so they can discard volatile state.
type Crasher interface {
	Crashed(at sim.Time)
}

// Network is a simulated message network. Not safe for concurrent use; all
// activity runs on the scheduler's event loop.
type Network struct {
	sched *sim.Scheduler
	topo  *graph.Graph

	handlers  map[graph.NodeID]Handler
	down      map[graph.NodeID]bool
	lastStart map[graph.NodeID]sim.Time

	// Fault-injection hooks (internal/faults): per-node added delay and
	// per-node inbound drop probability.
	extraDelay map[graph.NodeID]sim.Time
	dropProb   map[graph.NodeID]float64

	pathCache map[graph.NodeID]graph.Paths

	// DelayPerCost converts one unit of edge-weight cost into virtual time.
	// Defaults to sim.Unit (one paper time unit per cost unit).
	DelayPerCost sim.Time

	stats   *obs.Registry
	latency *obs.Histogram // "lat_net_delivery": send→deliver, microticks
}

// New builds a network over a copy of the topology. Mutating the original
// graph afterwards does not affect the network; use FailLink/RestoreLink for
// dynamic changes.
func New(sched *sim.Scheduler, topo *graph.Graph) *Network {
	reg := obs.NewRegistry()
	return &Network{
		sched:        sched,
		topo:         topo.Clone(),
		handlers:     make(map[graph.NodeID]Handler),
		down:         make(map[graph.NodeID]bool),
		lastStart:    make(map[graph.NodeID]sim.Time),
		extraDelay:   make(map[graph.NodeID]sim.Time),
		dropProb:     make(map[graph.NodeID]float64),
		pathCache:    make(map[graph.NodeID]graph.Paths),
		DelayPerCost: sim.Unit,
		stats:        reg,
		latency:      reg.Histogram("lat_net_delivery", nil),
	}
}

// Scheduler returns the underlying event scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Topology returns the network's own topology (mutations via graph methods
// bypass route-cache invalidation; prefer FailLink/RestoreLink).
func (n *Network) Topology() *graph.Graph { return n.topo }

// Stats returns the traffic instruments: counters "delivered",
// "dropped_dest_down", "dropped_injected", "expired", "cost_milli" (total
// delivered route cost ×1000) and "hops", plus the "lat_net_delivery"
// histogram of send→deliver latency in microticks.
func (n *Network) Stats() *obs.Registry { return n.stats }

// Register installs the handler for a node. Nodes start up.
func (n *Network) Register(id graph.NodeID, h Handler) error {
	if _, ok := n.topo.Node(id); !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if _, dup := n.handlers[id]; dup {
		return fmt.Errorf("%w: %d", ErrAlreadyExists, id)
	}
	n.handlers[id] = h
	n.lastStart[id] = n.sched.Now()
	return nil
}

// MustRegister is Register for static wiring; it panics on error.
func (n *Network) MustRegister(id graph.NodeID, h Handler) {
	if err := n.Register(id, h); err != nil {
		panic(err)
	}
}

// Deregister removes a node's handler and fault state, leaving the node in
// the topology. Messages already in flight to it are dropped on arrival
// (counted "dropped_no_handler"), and the node may later be re-registered —
// the lifecycle of a server deleted by reconfiguration (§3.1.3): its links
// may still carry transit traffic, but it no longer terminates any.
// Deregistering an unknown node is a no-op.
func (n *Network) Deregister(id graph.NodeID) {
	delete(n.handlers, id)
	delete(n.down, id)
	delete(n.lastStart, id)
	delete(n.extraDelay, id)
	delete(n.dropProb, id)
}

// IsUp reports whether the node is currently up.
func (n *Network) IsUp(id graph.NodeID) bool {
	_, registered := n.handlers[id]
	return registered && !n.down[id]
}

// LastStart reports when the node last started or recovered — the
// LastStartTime[server] variable of §3.1.2c. The second result is false for
// unregistered nodes.
func (n *Network) LastStart(id graph.NodeID) (sim.Time, bool) {
	t, ok := n.lastStart[id]
	return t, ok
}

// Crash takes a node down. In-flight messages to it will be dropped on
// arrival. Crashing a node that is already down is a no-op.
func (n *Network) Crash(id graph.NodeID) {
	if n.down[id] {
		return
	}
	if h, ok := n.handlers[id]; ok {
		n.down[id] = true
		if c, ok := h.(Crasher); ok {
			c.Crashed(n.sched.Now())
		}
	}
}

// Recover brings a crashed node back up and stamps its LastStartTime with
// the current instant. Recovering an up node is a no-op.
func (n *Network) Recover(id graph.NodeID) {
	if !n.down[id] {
		return
	}
	delete(n.down, id)
	n.lastStart[id] = n.sched.Now()
	if r, ok := n.handlers[id].(Recoverer); ok {
		r.Recovered(n.sched.Now())
	}
}

// FailLink removes a link from the live topology and invalidates routes.
func (n *Network) FailLink(a, b graph.NodeID) error {
	if err := n.topo.RemoveEdge(a, b); err != nil {
		return err
	}
	n.pathCache = make(map[graph.NodeID]graph.Paths)
	return nil
}

// RestoreLink re-adds a link with the given weight and invalidates routes.
//
// Restoring a link also stamps a fresh LastStartTime on both (up, registered)
// endpoints and fires their Recoverer hook: §3.1.2c counts "being
// disconnected from the network" as unavailability, so reconnection is a
// recovery for the GetMail algorithm — without the stamp, an agent would stop
// its retrieval walk at a formerly partitioned server and miss mail that
// failed over past it while it was unreachable.
func (n *Network) RestoreLink(a, b graph.NodeID, w float64) error {
	if err := n.topo.AddEdge(a, b, w); err != nil {
		return err
	}
	n.pathCache = make(map[graph.NodeID]graph.Paths)
	for _, id := range []graph.NodeID{a, b} {
		h, registered := n.handlers[id]
		if !registered || n.down[id] {
			continue // a crashed endpoint stamps when Recover runs
		}
		n.lastStart[id] = n.sched.Now()
		if r, ok := h.(Recoverer); ok {
			r.Recovered(n.sched.Now())
		}
	}
	return nil
}

// SetExtraDelay adds d to the delivery delay of every message sent from or
// to the node — an injected-latency fault. Zero clears the fault. Negative
// values are treated as zero.
func (n *Network) SetExtraDelay(id graph.NodeID, d sim.Time) {
	if d <= 0 {
		delete(n.extraDelay, id)
		return
	}
	n.extraDelay[id] = d
}

// SetDropProb makes messages destined to the node be dropped with
// probability p on arrival (counted as "dropped_injected") — an injected
// lossy-link fault. Drops are drawn from the scheduler's seeded random
// source, so runs stay deterministic. p is clamped to [0, 1]; zero clears
// the fault.
func (n *Network) SetDropProb(id graph.NodeID, p float64) {
	if p <= 0 {
		delete(n.dropProb, id)
		return
	}
	if p > 1 {
		p = 1
	}
	n.dropProb[id] = p
}

func (n *Network) paths(src graph.NodeID) (graph.Paths, error) {
	if p, ok := n.pathCache[src]; ok {
		return p, nil
	}
	p, err := n.topo.ShortestPaths(src)
	if err != nil {
		return graph.Paths{}, err
	}
	n.pathCache[src] = p
	return p, nil
}

// Cost returns the shortest-path cost between two nodes.
func (n *Network) Cost(from, to graph.NodeID) (float64, error) {
	p, err := n.paths(from)
	if err != nil {
		return 0, err
	}
	d, ok := p.Dist[to]
	if !ok {
		return 0, fmt.Errorf("%w: %d→%d", ErrNoRoute, from, to)
	}
	return d, nil
}

// Send routes a message from one node to another along the shortest path.
// The sender must be up and a route must exist; whether the destination is
// up is only checked at delivery time (messages to a node that is down on
// arrival are dropped and counted, which is how the paper's servers "become
// unavailable for receiving mail").
func (n *Network) Send(from, to graph.NodeID, payload any) error {
	if _, ok := n.handlers[from]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	if n.down[from] {
		return fmt.Errorf("%w: %d", ErrSenderDown, from)
	}
	if _, ok := n.topo.Node(to); !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	p, err := n.paths(from)
	if err != nil {
		return err
	}
	dist, ok := p.Dist[to]
	if !ok {
		return fmt.Errorf("%w: %d→%d", ErrNoRoute, from, to)
	}
	hops := len(p.PathTo(to)) - 1
	env := Envelope{
		From: from, To: to, Payload: payload,
		SentAt: n.sched.Now(), Hops: hops, Cost: dist,
	}
	delay := sim.Time(dist*float64(n.DelayPerCost)) + n.extraDelay[from] + n.extraDelay[to]
	n.sched.After(delay, func() { n.deliver(env) })
	return nil
}

// SendDirect sends a message across a single link; from and to must be
// adjacent. This is the primitive the distributed MST algorithm uses
// ("sending messages over attached links", §3.3.1-A).
func (n *Network) SendDirect(from, to graph.NodeID, payload any) error {
	if _, ok := n.handlers[from]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	if n.down[from] {
		return fmt.Errorf("%w: %d", ErrSenderDown, from)
	}
	w, ok := n.topo.Weight(from, to)
	if !ok {
		return fmt.Errorf("%w: %d-%d", ErrNotNeighbors, from, to)
	}
	env := Envelope{
		From: from, To: to, Payload: payload,
		SentAt: n.sched.Now(), Hops: 1, Cost: w,
	}
	delay := sim.Time(w*float64(n.DelayPerCost)) + n.extraDelay[from] + n.extraDelay[to]
	n.sched.After(delay, func() { n.deliver(env) })
	return nil
}

func (n *Network) deliver(env Envelope) {
	h, ok := n.handlers[env.To]
	if !ok {
		n.stats.Inc("dropped_no_handler")
		return
	}
	if n.down[env.To] {
		n.stats.Inc("dropped_dest_down")
		return
	}
	if p := n.dropProb[env.To]; p > 0 && n.sched.Rand().Float64() < p {
		n.stats.Inc("dropped_injected")
		return
	}
	n.stats.Inc("delivered")
	n.stats.Add("hops", int64(env.Hops))
	n.stats.Add("cost_milli", int64(env.Cost*1000+0.5))
	n.latency.Observe(float64(n.sched.Now() - env.SentAt))
	h.Receive(env)
}

// Broadcast sends the payload from one node to every other registered node
// individually — the naive mass-distribution baseline the paper's MST
// broadcast is compared against. It returns how many sends were issued.
func (n *Network) Broadcast(from graph.NodeID, payload any) (int, error) {
	if _, ok := n.handlers[from]; !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	if n.down[from] {
		return 0, fmt.Errorf("%w: %d", ErrSenderDown, from)
	}
	sent := 0
	for _, id := range n.topo.NodeIDs() {
		if id == from {
			continue
		}
		if _, registered := n.handlers[id]; !registered {
			continue
		}
		if err := n.Send(from, id, payload); err == nil {
			sent++
		}
	}
	return sent, nil
}
