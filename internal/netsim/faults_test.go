package netsim

import (
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/sim"
)

// TestExtraDelayAddsToDelivery: injected latency on either endpoint is
// added to the path delay; clearing it restores baseline timing.
func TestExtraDelayAddsToDelivery(t *testing.T) {
	sched, net, recs := lineNet(t)
	net.SetExtraDelay(3, 2*sim.Unit)
	if err := net.Send(0, 3, "slow"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recs[3].got) != 1 {
		t.Fatalf("delivered %d, want 1", len(recs[3].got))
	}
	if want := 3*sim.Unit + 2*sim.Unit; sched.Now() != want {
		t.Errorf("delivery at %v, want %v (path + injected)", sched.Now(), want)
	}
	net.SetExtraDelay(3, 0) // clear
	if err := net.Send(0, 3, "fast"); err != nil {
		t.Fatal(err)
	}
	start := sched.Now()
	sched.Run()
	if got := sched.Now() - start; got != 3*sim.Unit {
		t.Errorf("post-clear delay = %v, want %v", got, 3*sim.Unit)
	}
}

// TestDropProbOneEatsEverything: probability 1 on the destination drops
// every delivery and counts it; probability 0 clears the hook.
func TestDropProbOneEatsEverything(t *testing.T) {
	sched, net, recs := lineNet(t)
	net.SetDropProb(3, 1)
	for i := 0; i < 5; i++ {
		if err := net.Send(0, 3, i); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	if len(recs[3].got) != 0 {
		t.Fatalf("delivered %d with drop probability 1", len(recs[3].got))
	}
	if got := net.Stats().Get("dropped_injected"); got != 5 {
		t.Errorf("dropped_injected = %d, want 5", got)
	}
	net.SetDropProb(3, 0)
	if err := net.Send(0, 3, "through"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recs[3].got) != 1 {
		t.Error("message dropped after clearing the hook")
	}
}

// TestDropProbDeterministicAcrossRuns: the drop coin uses the scheduler's
// seeded RNG, so two identical runs drop the identical subset.
func TestDropProbDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		sched, net, recs := lineNet(t)
		net.SetDropProb(3, 0.5)
		for i := 0; i < 40; i++ {
			if err := net.Send(0, 3, i); err != nil {
				t.Fatal(err)
			}
		}
		sched.Run()
		var got []int
		for _, env := range recs[3].got {
			got = append(got, env.Payload.(int))
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("drop p=0.5 delivered %d/40 — hook not engaged", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRestoreLinkStampsLastStart: restoring a link is a recovery event for
// both endpoints under §3.1.2c ("disconnected from the network" counts as
// unavailability) — LastStartTime is stamped and Recoverer handlers fire,
// which is what lets GetMail walk past a formerly partitioned server and
// lets servers re-dispatch queued transfers.
func TestRestoreLinkStampsLastStart(t *testing.T) {
	sched, net, recs := lineNet(t)
	if err := net.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(5 * sim.Unit)
	before1, _ := net.LastStart(1)
	if err := net.RestoreLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	after1, _ := net.LastStart(1)
	after2, _ := net.LastStart(2)
	if !(after1 > before1) || after1 != sched.Now() || after2 != sched.Now() {
		t.Errorf("LastStart after restore = %v/%v, want both stamped at %v",
			after1, after2, sched.Now())
	}
	if len(recs[1].recoveries) != 1 || len(recs[2].recoveries) != 1 {
		t.Errorf("recoveries fired = %d/%d, want 1/1",
			len(recs[1].recoveries), len(recs[2].recoveries))
	}
	// A crashed endpoint is NOT resurrected by a link repair.
	if err := net.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	net.Crash(2)
	if err := net.RestoreLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if net.IsUp(2) {
		t.Error("link restore resurrected a crashed node")
	}
	if len(recs[2].recoveries) != 1 {
		t.Errorf("crashed endpoint got a recovery callback from link restore")
	}
}

// TestExtraDelayBothEndpointsAccumulates: delays on sender and receiver
// stack.
func TestExtraDelayBothEndpointsAccumulates(t *testing.T) {
	sched, net, recs := lineNet(t)
	net.SetExtraDelay(0, sim.Unit)
	net.SetExtraDelay(3, sim.Unit)
	if err := net.Send(0, 3, "x"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recs[3].got) != 1 {
		t.Fatal("not delivered")
	}
	if want := 5 * sim.Unit; sched.Now() != want {
		t.Errorf("delivery at %v, want %v", sched.Now(), want)
	}
}

func TestDropProbClamped(t *testing.T) {
	_, net, _ := lineNet(t)
	net.SetDropProb(graph.NodeID(3), 7.5) // clamped to 1
	net.SetDropProb(graph.NodeID(2), -4)  // clamped away (cleared)
	if p := net.dropProb[3]; p != 1 {
		t.Errorf("dropProb = %v, want clamped to 1", p)
	}
	if _, ok := net.dropProb[2]; ok {
		t.Error("negative probability retained")
	}
}
