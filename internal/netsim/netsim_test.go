package netsim

import (
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/sim"
)

// lineNet builds a 4-node line 0-1-2-3 with unit weights and a recording
// handler on every node.
func lineNet(t *testing.T) (*sim.Scheduler, *Network, map[graph.NodeID]*recorder) {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Kind: graph.KindRouter})
	}
	for i := 0; i < 3; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	sched := sim.New(1)
	net := New(sched, g)
	recs := make(map[graph.NodeID]*recorder)
	for i := 0; i < 4; i++ {
		r := &recorder{}
		recs[graph.NodeID(i)] = r
		net.MustRegister(graph.NodeID(i), r)
	}
	return sched, net, recs
}

type recorder struct {
	got        []Envelope
	recoveries []sim.Time
	crashes    []sim.Time
}

func (r *recorder) Receive(env Envelope)  { r.got = append(r.got, env) }
func (r *recorder) Recovered(at sim.Time) { r.recoveries = append(r.recoveries, at) }
func (r *recorder) Crashed(at sim.Time)   { r.crashes = append(r.crashes, at) }

func TestSendDelayMatchesPathCost(t *testing.T) {
	sched, net, recs := lineNet(t)
	if err := net.Send(0, 3, "hello"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	got := recs[3].got
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	env := got[0]
	if env.Payload != "hello" || env.From != 0 || env.To != 3 {
		t.Errorf("envelope = %+v", env)
	}
	if env.Hops != 3 || env.Cost != 3 {
		t.Errorf("hops/cost = %d/%v, want 3/3", env.Hops, env.Cost)
	}
	if sched.Now() != 3*sim.Unit {
		t.Errorf("delivery time %v, want %v", sched.Now(), 3*sim.Unit)
	}
}

func TestSendToSelfIsImmediate(t *testing.T) {
	sched, net, recs := lineNet(t)
	if err := net.Send(2, 2, "self"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recs[2].got) != 1 || sched.Now() != 0 {
		t.Errorf("self-send: %d msgs at %v", len(recs[2].got), sched.Now())
	}
}

func TestSendErrors(t *testing.T) {
	_, net, _ := lineNet(t)
	if err := net.Send(99, 0, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown sender err = %v", err)
	}
	if err := net.Send(0, 99, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dest err = %v", err)
	}
	net.Crash(0)
	if err := net.Send(0, 1, nil); !errors.Is(err, ErrSenderDown) {
		t.Errorf("down sender err = %v", err)
	}
}

func TestNoRoute(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2})
	sched := sim.New(1)
	net := New(sched, g)
	net.MustRegister(1, &recorder{})
	net.MustRegister(2, &recorder{})
	if err := net.Send(1, 2, nil); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	if _, err := net.Cost(1, 2); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Cost err = %v, want ErrNoRoute", err)
	}
}

func TestFIFOPerRoute(t *testing.T) {
	sched, net, recs := lineNet(t)
	for i := 0; i < 5; i++ {
		if err := net.Send(0, 3, i); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(sim.Unit / 10)
	}
	sched.Run()
	got := recs[3].got
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, env := range got {
		if env.Payload != i {
			t.Fatalf("out-of-order delivery: position %d has payload %v", i, env.Payload)
		}
	}
}

func TestCrashDropsInFlight(t *testing.T) {
	sched, net, recs := lineNet(t)
	if err := net.Send(0, 3, "doomed"); err != nil {
		t.Fatal(err)
	}
	net.Crash(3)
	sched.Run()
	if len(recs[3].got) != 0 {
		t.Error("crashed node received a message")
	}
	if net.Stats().Get("dropped_dest_down") != 1 {
		t.Errorf("dropped_dest_down = %d, want 1", net.Stats().Get("dropped_dest_down"))
	}
	if len(recs[3].crashes) != 1 {
		t.Errorf("crash callback fired %d times, want 1", len(recs[3].crashes))
	}
}

func TestRecoverUpdatesLastStart(t *testing.T) {
	sched, net, recs := lineNet(t)
	t0, ok := net.LastStart(2)
	if !ok || t0 != 0 {
		t.Fatalf("initial LastStart = %v, %v", t0, ok)
	}
	sched.RunUntil(50)
	net.Crash(2)
	if net.IsUp(2) {
		t.Error("crashed node reported up")
	}
	sched.RunUntil(80)
	net.Recover(2)
	if !net.IsUp(2) {
		t.Error("recovered node reported down")
	}
	ls, _ := net.LastStart(2)
	if ls != 80 {
		t.Errorf("LastStart after recovery = %v, want 80", ls)
	}
	if len(recs[2].recoveries) != 1 || recs[2].recoveries[0] != 80 {
		t.Errorf("recovery callback = %v", recs[2].recoveries)
	}
	// Idempotence.
	net.Recover(2)
	net.Crash(99) // unknown: no-op
	if len(recs[2].recoveries) != 1 {
		t.Error("double Recover fired callback twice")
	}
	if _, ok := net.LastStart(99); ok {
		t.Error("LastStart for unregistered node reported ok")
	}
}

func TestCrashRecoverRoundTripDelivery(t *testing.T) {
	sched, net, recs := lineNet(t)
	net.Crash(3)
	_ = net.Send(0, 3, "lost")
	sched.Run()
	net.Recover(3)
	if err := net.Send(0, 3, "kept"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(recs[3].got) != 1 || recs[3].got[0].Payload != "kept" {
		t.Errorf("after recovery got %v", recs[3].got)
	}
}

func TestSendDirect(t *testing.T) {
	sched, net, recs := lineNet(t)
	if err := net.SendDirect(1, 2, "edge"); err != nil {
		t.Fatal(err)
	}
	if err := net.SendDirect(0, 3, "far"); !errors.Is(err, ErrNotNeighbors) {
		t.Errorf("non-adjacent SendDirect err = %v", err)
	}
	if err := net.SendDirect(99, 0, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown SendDirect err = %v", err)
	}
	sched.Run()
	if len(recs[2].got) != 1 || recs[2].got[0].Hops != 1 {
		t.Errorf("SendDirect delivery = %v", recs[2].got)
	}
}

func TestFailLinkReroutes(t *testing.T) {
	// Square: 0-1, 1-3, 0-2, 2-3; direct route 0-1-3 (cost 2), detour 0-2-3
	// (cost 4).
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 3, 2)
	sched := sim.New(1)
	net := New(sched, g)
	for i := 0; i < 4; i++ {
		net.MustRegister(graph.NodeID(i), &recorder{})
	}
	c, err := net.Cost(0, 3)
	if err != nil || c != 2 {
		t.Fatalf("cost = %v, %v; want 2", c, err)
	}
	if err := net.FailLink(1, 3); err != nil {
		t.Fatal(err)
	}
	c, err = net.Cost(0, 3)
	if err != nil || c != 4 {
		t.Fatalf("cost after link failure = %v, %v; want 4", c, err)
	}
	if err := net.RestoreLink(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	c, _ = net.Cost(0, 3)
	if c != 2 {
		t.Errorf("cost after restore = %v, want 2", c)
	}
	if err := net.FailLink(0, 3); err == nil {
		t.Error("failing a nonexistent link succeeded")
	}
}

func TestRegisterErrors(t *testing.T) {
	_, net, _ := lineNet(t)
	if err := net.Register(0, &recorder{}); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate register err = %v", err)
	}
	if err := net.Register(99, &recorder{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown register err = %v", err)
	}
}

func TestBroadcastBaseline(t *testing.T) {
	sched, net, recs := lineNet(t)
	sent, err := net.Broadcast(0, "blast")
	if err != nil {
		t.Fatal(err)
	}
	if sent != 3 {
		t.Errorf("sent = %d, want 3", sent)
	}
	sched.Run()
	for id, r := range recs {
		if id == 0 {
			continue
		}
		if len(r.got) != 1 {
			t.Errorf("node %d got %d messages, want 1", id, len(r.got))
		}
	}
	// Broadcast cost on the line: 1 + 2 + 3 = 6 cost units.
	if got := net.Stats().Get("cost_milli"); got != 6000 {
		t.Errorf("total cost = %d milli, want 6000", got)
	}
	if _, err := net.Broadcast(99, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown broadcaster err = %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	sched, net, _ := lineNet(t)
	_ = net.Send(0, 1, "a")
	_ = net.Send(0, 2, "b")
	sched.Run()
	if net.Stats().Get("delivered") != 2 {
		t.Errorf("delivered = %d, want 2", net.Stats().Get("delivered"))
	}
	if net.Stats().Get("hops") != 3 {
		t.Errorf("hops = %d, want 3", net.Stats().Get("hops"))
	}
}

func TestHandlerFuncAndAccessors(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2})
	g.MustAddEdge(1, 2, 1)
	sched := sim.New(1)
	net := New(sched, g)
	if net.Scheduler() != sched {
		t.Error("Scheduler accessor wrong")
	}
	if net.Topology().NumNodes() != 2 {
		t.Error("Topology accessor wrong")
	}
	got := 0
	net.MustRegister(1, HandlerFunc(func(Envelope) { got++ }))
	net.MustRegister(2, HandlerFunc(func(Envelope) {}))
	if err := net.Send(2, 1, "x"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Errorf("HandlerFunc received %d", got)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on unknown node did not panic")
		}
	}()
	g := graph.New()
	net := New(sim.New(1), g)
	net.MustRegister(42, HandlerFunc(func(Envelope) {}))
}

func TestCrashUnregisteredNoop(t *testing.T) {
	_, net, _ := lineNet(t)
	net.Crash(99) // unregistered: must not panic or mark down
	if net.IsUp(99) {
		t.Error("unregistered node reported up")
	}
}

func TestDeliverToUnregisteredCounted(t *testing.T) {
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	g.MustAddNode(graph.Node{ID: 2}) // no handler
	g.MustAddEdge(1, 2, 1)
	sched := sim.New(1)
	net := New(sched, g)
	net.MustRegister(1, HandlerFunc(func(Envelope) {}))
	if err := net.Send(1, 2, "void"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if net.Stats().Get("dropped_no_handler") != 1 {
		t.Errorf("dropped_no_handler = %d", net.Stats().Get("dropped_no_handler"))
	}
}

func TestRestoreLinkBadArgs(t *testing.T) {
	_, net, _ := lineNet(t)
	if err := net.RestoreLink(0, 1, 1); err == nil {
		t.Error("restoring an existing link succeeded")
	}
	if err := net.RestoreLink(0, 0, 1); err == nil {
		t.Error("self-loop restore succeeded")
	}
}

func TestCostUnknownSource(t *testing.T) {
	_, net, _ := lineNet(t)
	if _, err := net.Cost(99, 0); err == nil {
		t.Error("Cost from unknown node succeeded")
	}
}

func TestBroadcastSkipsUnregisteredAndDown(t *testing.T) {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	sched := sim.New(1)
	net := New(sched, g)
	net.MustRegister(0, &recorder{})
	net.MustRegister(1, &recorder{})
	// nodes 2, 3 unregistered
	sent, err := net.Broadcast(0, "b")
	if err != nil || sent != 1 {
		t.Errorf("Broadcast = %d, %v; want 1 send", sent, err)
	}
	net.Crash(0)
	if _, err := net.Broadcast(0, "b"); !errors.Is(err, ErrSenderDown) {
		t.Errorf("down broadcaster err = %v", err)
	}
}

// Property: between any fixed pair of nodes, messages arrive in the order
// they were sent — the in-sequence guarantee the GHS algorithm requires —
// under random send schedules.
func TestPropertyPerPairFIFO(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := graph.New()
		for i := 0; i < 3; i++ {
			g.MustAddNode(graph.Node{ID: graph.NodeID(i)})
		}
		g.MustAddEdge(0, 1, 1)
		g.MustAddEdge(1, 2, 2)
		sched := sim.New(seed)
		net := New(sched, g)
		var got []int
		net.MustRegister(0, HandlerFunc(func(Envelope) {}))
		net.MustRegister(1, HandlerFunc(func(Envelope) {}))
		net.MustRegister(2, HandlerFunc(func(env Envelope) {
			got = append(got, env.Payload.(int))
		}))
		n := 20
		for i := 0; i < n; i++ {
			if err := net.Send(0, 2, i); err != nil {
				t.Fatal(err)
			}
			sched.RunFor(sim.Time(sched.Rand().Intn(2000)))
		}
		sched.Run()
		if len(got) != n {
			t.Fatalf("seed %d: delivered %d of %d", seed, len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("seed %d: out of order at %d: %v", seed, i, got)
			}
		}
	}
}
