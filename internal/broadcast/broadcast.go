// Package broadcast implements mass distribution and searching over a
// spanning tree, the mechanism of the paper's attribute-based mail system
// (§3.3.1).
//
// A query enters at any tree node and propagates down the tree ("upon
// receiving a request from the parent node in the MST, each node sends the
// message to its children nodes"). Responses converge back up: each node
// "waits for the messages to come back from all the children nodes. It then
// combines them into a single summary message and returns it to its parent
// node." A parent times out on dead children and marks their estimates
// unavailable, exactly as §3.3.1-B prescribes.
//
// Queries can be restricted to target regions; the tree is pruned so
// branches leading only to non-target regions carry no traffic — this is the
// flow-control lever of §3.3.1-B, where a sender picks regions from the cost
// table to stay within budget.
package broadcast

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/sketch"
)

// Errors reported by the package.
var (
	ErrUnknownNode = errors.New("broadcast: node is not part of the tree")
	ErrNodeDown    = errors.New("broadcast: origin node is down")
)

// Evaluator computes a node's local contribution to a query — for the mail
// system, the users on this node matching the attribute predicate. It must
// not retain query.
type Evaluator func(node graph.NodeID, query any) []any

// Query is the downward message.
type Query struct {
	ID      uint64
	Origin  graph.NodeID
	Payload any
	// Targets restricts evaluation and propagation to these regions;
	// nil means everywhere.
	Targets map[string]bool
	// Prune lets nodes skip child branches whose cached subtree sketch
	// proves no match (see prune.go). Set by Distribute, never by Start, so
	// existing callers keep exhaustive semantics.
	Prune bool
}

// Summary is the upward message: one child subtree's combined response.
type Summary struct {
	ID    uint64
	From  graph.NodeID
	Items []any
	// Unavailable lists nodes whose subtrees timed out ("the unavailable
	// estimates can be marked so").
	Unavailable []graph.NodeID
	// Nodes counts the nodes that evaluated the query.
	Nodes int
	// Pruned lists the roots of subtrees skipped because their cached term
	// sketch proved no match below — excused by proof, unlike Unavailable's
	// excused-by-timeout. Audits treat the two very differently: a pruned
	// subtree that actually held a match is a correctness violation.
	Pruned []graph.NodeID
	// PrunedNodes counts the nodes under those roots.
	PrunedNodes int
}

// Tree runs broadcast/convergecast over a fixed spanning tree on a simulated
// network. It registers one process per tree node.
type Tree struct {
	net     *netsim.Network
	adj     map[graph.NodeID][]graph.NodeID
	regions map[graph.NodeID]string
	// regionsVia[n][nb] is the set of regions reachable from n through
	// neighbor nb — used to prune targeted queries.
	regionsVia map[graph.NodeID]map[graph.NodeID]map[string]bool
	// depthVia[n][nb] is the depth in edges of the deepest path from n
	// through neighbor nb. A parent's wait for a child scales with this
	// depth, so a slow-but-healthy deep subtree is not falsely marked
	// unavailable while a dead immediate child is still detected after one
	// base timeout.
	depthVia    map[graph.NodeID]map[graph.NodeID]int
	eval        Evaluator
	timeout     sim.Time
	nodes       map[graph.NodeID]*bcastNode
	nextID      uint64
	results     map[uint64]Summary
	done        map[uint64]bool
	completedAt map[uint64]sim.Time

	// Sketch-pruning state (see prune.go). nodesVia[n][nb] lists every node
	// in the subtree hanging off n through nb; sketchVia/genVia cache that
	// subtree's aggregated term sketch and the generation sum it was built
	// at. Nil hooks disable pruning entirely.
	sketchFn    func(graph.NodeID) (*sketch.Filter, uint64)
	sketchGenFn func(graph.NodeID) uint64
	nodesVia    map[graph.NodeID]map[graph.NodeID][]graph.NodeID
	sketchVia   map[graph.NodeID]map[graph.NodeID]*sketch.Filter
	genVia      map[graph.NodeID]map[graph.NodeID]uint64
	refreshes   int
	pstats      map[uint64]*PruneStats
}

// Config for Setup.
type Config struct {
	Net  *netsim.Network
	Tree graph.Tree
	// Eval computes local matches; nil means "no local items".
	Eval Evaluator
	// Timeout is how long a parent waits for a child's summary before
	// marking the subtree unavailable. Zero means 50 paper time units.
	Timeout sim.Time
	// Sketch returns a node's current term sketch snapshot and staleness
	// generation (typically mailstore.Store.Sketch). Nil disables pruning;
	// Distribute then behaves exactly like Start.
	Sketch func(graph.NodeID) (*sketch.Filter, uint64)
	// SketchGen returns only the generation — the cheap freshness probe
	// consulted on every prune decision (typically Store.SketchGen). Must
	// be non-nil whenever Sketch is.
	SketchGen func(graph.NodeID) uint64
}

// Setup registers a broadcast process on every node of the tree.
func Setup(cfg Config) (*Tree, error) {
	if cfg.Net == nil {
		return nil, errors.New("broadcast: nil network")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50 * sim.Unit
	}
	if cfg.Eval == nil {
		cfg.Eval = func(graph.NodeID, any) []any { return nil }
	}
	t := &Tree{
		net:         cfg.Net,
		adj:         cfg.Tree.Adjacency(),
		regions:     make(map[graph.NodeID]string),
		regionsVia:  make(map[graph.NodeID]map[graph.NodeID]map[string]bool),
		depthVia:    make(map[graph.NodeID]map[graph.NodeID]int),
		eval:        cfg.Eval,
		timeout:     cfg.Timeout,
		nodes:       make(map[graph.NodeID]*bcastNode),
		results:     make(map[uint64]Summary),
		done:        make(map[uint64]bool),
		completedAt: make(map[uint64]sim.Time),
		sketchFn:    cfg.Sketch,
		sketchGenFn: cfg.SketchGen,
		nodesVia:    make(map[graph.NodeID]map[graph.NodeID][]graph.NodeID),
		sketchVia:   make(map[graph.NodeID]map[graph.NodeID]*sketch.Filter),
		genVia:      make(map[graph.NodeID]map[graph.NodeID]uint64),
		pstats:      make(map[uint64]*PruneStats),
	}
	if t.sketchFn != nil && t.sketchGenFn == nil {
		return nil, errors.New("broadcast: Sketch hook without SketchGen")
	}
	ids := make([]graph.NodeID, 0, len(t.adj))
	for id := range t.adj {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, errors.New("broadcast: empty tree")
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n, ok := cfg.Net.Topology().Node(id)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
		}
		t.regions[id] = n.Region
	}
	t.computeRegionsVia(ids)
	for _, id := range ids {
		bn := &bcastNode{id: id, tree: t, pending: make(map[uint64]*pendingQuery)}
		if err := cfg.Net.Register(id, bn); err != nil {
			return nil, err
		}
		t.nodes[id] = bn
	}
	return t, nil
}

// computeRegionsVia fills the per-direction region reachability sets by DFS
// from every node (trees are small relative to query volume; this is a
// one-time cost).
func (t *Tree) computeRegionsVia(ids []graph.NodeID) {
	var collect func(at, from graph.NodeID, acc map[string]bool) int
	collect = func(at, from graph.NodeID, acc map[string]bool) int {
		acc[t.regions[at]] = true
		depth := 1
		for _, nb := range t.adj[at] {
			if nb != from {
				if d := 1 + collect(nb, at, acc); d > depth {
					depth = d
				}
			}
		}
		return depth
	}
	for _, id := range ids {
		t.regionsVia[id] = make(map[graph.NodeID]map[string]bool)
		t.depthVia[id] = make(map[graph.NodeID]int)
		t.nodesVia[id] = make(map[graph.NodeID][]graph.NodeID)
		t.sketchVia[id] = make(map[graph.NodeID]*sketch.Filter)
		t.genVia[id] = make(map[graph.NodeID]uint64)
		for _, nb := range t.adj[id] {
			acc := make(map[string]bool)
			t.depthVia[id][nb] = collect(nb, id, acc)
			t.regionsVia[id][nb] = acc
			t.nodesVia[id][nb] = t.collectNodes(nb, id, nil)
		}
	}
}

// collectNodes lists the subtree reached from `from` through `at`, the node
// set a cached subtree sketch summarises (and the set excused-by-proof when
// that branch is pruned).
func (t *Tree) collectNodes(at, from graph.NodeID, acc []graph.NodeID) []graph.NodeID {
	acc = append(acc, at)
	for _, nb := range t.adj[at] {
		if nb != from {
			acc = t.collectNodes(nb, at, acc)
		}
	}
	return acc
}

// wantBranch reports whether a targeted query needs to travel from node to
// neighbor nb.
func (t *Tree) wantBranch(node, nb graph.NodeID, targets map[string]bool) bool {
	if targets == nil {
		return true
	}
	for region := range t.regionsVia[node][nb] {
		if targets[region] {
			return true
		}
	}
	return false
}

// Start injects a query at origin. Targets of nil means all regions. It
// returns the query ID; the result is available via Result once the
// convergecast completes (run the scheduler).
func (t *Tree) Start(origin graph.NodeID, payload any, targets map[string]bool) (uint64, error) {
	return t.start(origin, payload, targets, false)
}

func (t *Tree) start(origin graph.NodeID, payload any, targets map[string]bool, prune bool) (uint64, error) {
	node, ok := t.nodes[origin]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, origin)
	}
	if !t.net.IsUp(origin) {
		return 0, fmt.Errorf("%w: %d", ErrNodeDown, origin)
	}
	t.nextID++
	id := t.nextID
	q := Query{ID: id, Origin: origin, Payload: payload, Targets: targets, Prune: prune}
	node.begin(q, origin) // origin is its own parent sentinel
	return id, nil
}

// Result returns the completed summary for a query, if available.
func (t *Tree) Result(id uint64) (Summary, bool) {
	s, ok := t.results[id]
	return s, ok
}

// ResultAt returns the completed summary and the simulated time the
// convergecast finished at the origin — the timestamp the bounded-completion
// auditor checks against the depth-scaled timeout.
func (t *Tree) ResultAt(id uint64) (Summary, sim.Time, bool) {
	s, ok := t.results[id]
	return s, t.completedAt[id], ok
}

// Timeout returns the per-edge parent wait.
func (t *Tree) Timeout() sim.Time { return t.timeout }

// MaxDepthFrom returns the depth in edges of the deepest subtree below
// origin — the factor the origin's own wait scales with, and therefore the
// worst-case convergecast bound multiplier.
func (t *Tree) MaxDepthFrom(origin graph.NodeID) int {
	max := 0
	for _, d := range t.depthVia[origin] {
		if d > max {
			max = d
		}
	}
	return max
}

// bcastNode is the per-node broadcast process.
type bcastNode struct {
	id      graph.NodeID
	tree    *Tree
	pending map[uint64]*pendingQuery
}

type pendingQuery struct {
	parent   graph.NodeID
	waiting  map[graph.NodeID]bool
	items    []any
	unavail  []graph.NodeID
	nodes    int
	timer    *sim.Event
	finished bool
	// pruned/prunedNodes accumulate this node's own sketch-pruned branches
	// plus those reported by children; sketchPassed marks children whose
	// subtree sketch claimed a possible match, so an empty summary from
	// them can be counted as a Bloom false positive.
	pruned       []graph.NodeID
	prunedNodes  int
	sketchPassed map[graph.NodeID]bool
}

// Receive implements netsim.Handler.
func (n *bcastNode) Receive(env netsim.Envelope) {
	switch p := env.Payload.(type) {
	case Query:
		n.begin(p, env.From)
	case Summary:
		n.onSummary(p, env.From)
	}
}

// begin evaluates the query locally and fans it out to child branches.
func (n *bcastNode) begin(q Query, parent graph.NodeID) {
	if _, dup := n.pending[q.ID]; dup {
		return // duplicate query delivery; trees have no cycles, but be safe
	}
	pq := &pendingQuery{parent: parent, waiting: make(map[graph.NodeID]bool)}
	n.pending[q.ID] = pq
	if q.Targets == nil || q.Targets[n.tree.regions[n.id]] {
		pq.items = append(pq.items, n.tree.eval(n.id, q.Payload)...)
		pq.nodes = 1
	}
	probe := n.tree.probeTerms(q)
	for _, nb := range n.tree.adj[n.id] {
		if nb == parent && parent != n.id {
			continue
		}
		if nb == n.id {
			continue
		}
		if !n.tree.wantBranch(n.id, nb, q.Targets) {
			continue
		}
		if probe != nil {
			switch verdict, covered := n.tree.checkBranch(n.id, nb, probe, q.ID); verdict {
			case branchPrune:
				pq.pruned = append(pq.pruned, nb)
				pq.prunedNodes += covered
				continue
			case branchPass:
				if pq.sketchPassed == nil {
					pq.sketchPassed = make(map[graph.NodeID]bool)
				}
				pq.sketchPassed[nb] = true
			}
		}
		pq.waiting[nb] = true
		_ = n.tree.net.Send(n.id, nb, q)
	}
	if len(pq.waiting) == 0 {
		n.finish(q.ID, pq)
		return
	}
	// Wait proportionally to the deepest awaited subtree, so descendants'
	// own timeouts can resolve before this node gives up on them.
	maxDepth := 1
	for nb := range pq.waiting {
		if d := n.tree.depthVia[n.id][nb]; d > maxDepth {
			maxDepth = d
		}
	}
	pq.timer = n.tree.net.Scheduler().After(n.tree.timeout*sim.Time(maxDepth), func() {
		n.onTimeout(q.ID)
	})
}

func (n *bcastNode) onSummary(s Summary, from graph.NodeID) {
	pq, ok := n.pending[s.ID]
	if !ok || pq.finished || !pq.waiting[from] {
		return // late or unexpected summary; subtree already marked unavailable
	}
	delete(pq.waiting, from)
	pq.items = append(pq.items, s.Items...)
	pq.unavail = append(pq.unavail, s.Unavailable...)
	pq.nodes += s.Nodes
	pq.pruned = append(pq.pruned, s.Pruned...)
	pq.prunedNodes += s.PrunedNodes
	if pq.sketchPassed[from] && len(s.Items) == 0 && len(s.Unavailable) == 0 {
		// The subtree sketch said "maybe" but the whole subtree held
		// nothing: a Bloom false positive we paid a visit for.
		n.tree.pruneStats(s.ID).FPSubtrees++
	}
	if len(pq.waiting) == 0 {
		if pq.timer != nil {
			n.tree.net.Scheduler().Cancel(pq.timer)
		}
		n.finish(s.ID, pq)
	}
}

// onTimeout gives up on the remaining children, marking them unavailable
// ("problem may occur if one of the children nodes goes down while the
// parent node is waiting ... a parent node should time out").
func (n *bcastNode) onTimeout(id uint64) {
	pq, ok := n.pending[id]
	if !ok || pq.finished {
		return
	}
	missing := make([]graph.NodeID, 0, len(pq.waiting))
	for nb := range pq.waiting {
		missing = append(missing, nb)
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	pq.unavail = append(pq.unavail, missing...)
	pq.waiting = make(map[graph.NodeID]bool)
	n.finish(id, pq)
}

// finish sends the combined summary to the parent, or records the final
// result at the origin.
func (n *bcastNode) finish(id uint64, pq *pendingQuery) {
	pq.finished = true
	s := Summary{
		ID: id, From: n.id, Items: pq.items, Unavailable: pq.unavail,
		Nodes: pq.nodes, Pruned: pq.pruned, PrunedNodes: pq.prunedNodes,
	}
	if pq.parent == n.id {
		n.tree.results[id] = s
		n.tree.done[id] = true
		n.tree.completedAt[id] = n.tree.net.Scheduler().Now()
		return
	}
	_ = n.tree.net.Send(n.id, pq.parent, s)
}

// SelectRegions is the budget flow control of §3.3.1-B: given the cost table
// and a budget, it greedily picks the cheapest regions whose cumulative cost
// stays within budget ("based on the detailed estimate of charges and
// traffic volume, the user can select his recipients and the level of search
// he wants"). The source region's own row costs its local weight and is
// always considered first if affordable.
func SelectRegions(rows []mst.RegionCostRow, budget float64) (map[string]bool, float64) {
	sorted := append([]mst.RegionCostRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Total != sorted[j].Total {
			return sorted[i].Total < sorted[j].Total
		}
		return sorted[i].Region < sorted[j].Region
	})
	chosen := make(map[string]bool)
	var cost float64
	for _, r := range sorted {
		if !r.Reachable {
			continue
		}
		if cost+r.Total > budget {
			continue
		}
		chosen[r.Region] = true
		cost += r.Total
	}
	return chosen, cost
}
