package broadcast

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
	"github.com/largemail/largemail/internal/sketch"
)

// termProbe is a content-search payload for tests: a node's items are the
// users whose buffered mail contains every term.
type termProbe struct{ Terms []string }

func (p termProbe) SketchTerms() []string { return p.Terms }

// pruneWorld is a tree of nodes each backed by a term-indexed store, with
// the sketch hooks wired — the smallest world Distribute can prune in.
type pruneWorld struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	tree   *Tree
	stores map[graph.NodeID]*mailstore.Store
	n      int
	seq    uint64
}

// newPruneWorld builds a random spanning tree over n single-region nodes
// (node i attaches to a random earlier node).
func newPruneWorld(t *testing.T, n int, rng *rand.Rand) *pruneWorld {
	t.Helper()
	g := graph.New()
	var tr graph.Tree
	for i := 1; i <= n; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Region: "A"})
		if i > 1 {
			p := graph.NodeID(1 + rng.Intn(i-1))
			g.MustAddEdge(graph.NodeID(i), p, 1)
			tr.Edges = append(tr.Edges, graph.Edge{A: graph.NodeID(i), B: p, Weight: 1})
			tr.Weight++
		}
	}
	w := &pruneWorld{stores: make(map[graph.NodeID]*mailstore.Store), n: n}
	for i := 1; i <= n; i++ {
		s := mailstore.New(2)
		s.EnableTermIndex()
		w.stores[graph.NodeID(i)] = s
	}
	w.sched = sim.New(1)
	w.net = netsim.New(w.sched, g)
	bt, err := Setup(Config{
		Net:  w.net,
		Tree: tr,
		Eval: func(id graph.NodeID, q any) []any {
			p, ok := q.(termProbe)
			if !ok {
				return nil
			}
			holders := w.stores[id].SearchTerms(p.Terms)
			out := make([]any, 0, len(holders))
			for _, h := range holders {
				out = append(out, fmt.Sprintf("%s@%d", h.User, id))
			}
			return out
		},
		Sketch:    func(id graph.NodeID) (*sketch.Filter, uint64) { return w.stores[id].Sketch() },
		SketchGen: func(id graph.NodeID) uint64 { return w.stores[id].SketchGen() },
	})
	if err != nil {
		t.Fatal(err)
	}
	w.tree = bt
	return w
}

func (w *pruneWorld) deposit(node graph.NodeID, user int, body string) {
	w.seq++
	w.stores[node].Deposit(
		names.Name{Region: "A", Host: "h", User: fmt.Sprintf("u%d", user)},
		mail.Message{ID: mail.MessageID{Node: node, Seq: w.seq}, Subject: "s", Body: body},
		w.sched.Now(),
	)
}

// run launches via start (pruned or not), drives the scheduler, and returns
// the summary.
func (w *pruneWorld) run(t *testing.T, origin graph.NodeID, p termProbe, pruned bool) Summary {
	t.Helper()
	var id uint64
	var err error
	if pruned {
		id, err = w.tree.Distribute(origin, p, nil)
	} else {
		id, err = w.tree.Start(origin, p, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	res, ok := w.tree.Result(id)
	if !ok {
		t.Fatal("no result")
	}
	res.ID = id // convenience for QueryPruneStats lookups by callers
	return res
}

func itemSet(items []any) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, fmt.Sprint(it))
	}
	sort.Strings(out)
	return out
}

func TestDistributePrunesProvenEmptySubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newPruneWorld(t, 12, rng)
	w.deposit(1, 100, "quarterly budget numbers")
	w.tree.RefreshSketches()

	res := w.run(t, 1, termProbe{Terms: []string{"budget"}}, true)
	if got := itemSet(res.Items); !reflect.DeepEqual(got, []string{"u100@1"}) {
		t.Fatalf("items = %v, want the one holder", got)
	}
	if res.PrunedNodes != w.n-1 {
		t.Fatalf("pruned %d nodes, want %d (everyone but the origin)", res.PrunedNodes, w.n-1)
	}
	if res.Nodes != 1 {
		t.Fatalf("visited %d nodes, want 1", res.Nodes)
	}
	st := w.tree.QueryPruneStats(res.ID)
	if st.PrunedSubtrees == 0 || st.PrunedNodes != w.n-1 {
		t.Fatalf("stats = %+v", st)
	}
	// Coverage invariant: visited + pruned = the whole tree.
	if res.Nodes+res.PrunedNodes != w.n {
		t.Fatalf("visited %d + pruned %d != %d", res.Nodes, res.PrunedNodes, w.n)
	}
}

func TestDistributeMatchesStartProperty(t *testing.T) {
	// Property: across random trees, random deposits/drains, and random
	// refresh timing, Distribute returns exactly Start's match set — sketch
	// pruning may only remove provably matchless visits, never matches.
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		w := newPruneWorld(t, n, rng)
		terms := []string{"budget", "offsite", "seminar", "deadline", "picnic"}
		for step := 0; step < 40; step++ {
			node := graph.NodeID(1 + rng.Intn(n))
			switch rng.Intn(5) {
			case 0:
				w.stores[node].Drain(names.Name{Region: "A", Host: "h", User: fmt.Sprintf("u%d", rng.Intn(50))})
			case 1:
				w.tree.RefreshSketches() // refresh at an arbitrary moment
			default:
				body := terms[rng.Intn(len(terms))] + " " + terms[rng.Intn(len(terms))]
				w.deposit(node, rng.Intn(50), body)
			}
		}
		probe := termProbe{Terms: []string{terms[rng.Intn(len(terms))]}}
		if rng.Intn(2) == 0 {
			probe.Terms = append(probe.Terms, terms[rng.Intn(len(terms))])
		}
		origin := graph.NodeID(1 + rng.Intn(n))

		want := itemSet(w.run(t, origin, probe, false).Items)
		got := w.run(t, origin, probe, true)
		if !reflect.DeepEqual(itemSet(got.Items), want) {
			t.Fatalf("seed %d: pruned run items %v != unpruned %v (probe %v)",
				seed, itemSet(got.Items), want, probe.Terms)
		}
		if got.Nodes+got.PrunedNodes != n {
			t.Fatalf("seed %d: visited %d + pruned %d != %d", seed, got.Nodes, got.PrunedNodes, n)
		}
	}
}

func TestStaleSketchFailsOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := newPruneWorld(t, 10, rng)
	w.tree.RefreshSketches() // caches: everything empty

	// A deposit after aggregation makes every cache covering node 9 stale.
	w.deposit(9, 42, "the offsite agenda")

	res := w.run(t, 1, termProbe{Terms: []string{"offsite"}}, true)
	if got := itemSet(res.Items); !reflect.DeepEqual(got, []string{"u42@9"}) {
		t.Fatalf("stale caches lost the match: items = %v", got)
	}
	st := w.tree.QueryPruneStats(res.ID)
	if st.StaleOpen == 0 {
		t.Fatalf("expected stale caches to fail open, stats = %+v", st)
	}
	// After re-aggregation the same query prunes the matchless branches and
	// still finds the holder.
	w.tree.RefreshSketches()
	res2 := w.run(t, 1, termProbe{Terms: []string{"offsite"}}, true)
	if got := itemSet(res2.Items); !reflect.DeepEqual(got, []string{"u42@9"}) {
		t.Fatalf("fresh caches lost the match: items = %v", got)
	}
	if res2.PrunedNodes == 0 {
		t.Fatal("fresh caches pruned nothing on a one-holder query")
	}
}

func TestDistributeWithoutSketchHookEqualsStart(t *testing.T) {
	// No Sketch hook: Distribute must behave exactly like Start.
	sched, _, bt := testTree(t, 0)
	id, err := bt.Distribute(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, ok := bt.Result(id)
	if !ok || res.Nodes != 6 || res.PrunedNodes != 0 {
		t.Fatalf("result = %+v, %v", res, ok)
	}
}

func TestPrunedNodeSetResolvesSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := newPruneWorld(t, 14, rng)
	w.deposit(1, 1, "budget")
	w.tree.RefreshSketches()
	res := w.run(t, 1, termProbe{Terms: []string{"budget"}}, true)
	set := w.tree.PrunedNodeSet(1, res.Pruned)
	if len(set) != res.PrunedNodes {
		t.Fatalf("expanded pruned set has %d nodes, summary says %d", len(set), res.PrunedNodes)
	}
	if set[1] {
		t.Fatal("origin cannot be in its own pruned set")
	}
}

func TestDistributeUnderCrashStillFlagsUnavailable(t *testing.T) {
	// Pruning must not mask the §3.3.1-B timeout semantics: a crashed node
	// that the sketch says to visit is reported unavailable, not excused.
	rng := rand.New(rand.NewSource(5))
	w := newPruneWorld(t, 8, rng)
	for i := 1; i <= 8; i++ {
		w.deposit(graph.NodeID(i), 10+i, "deadline reminder")
	}
	w.tree.RefreshSketches()
	victim := graph.NodeID(5)
	w.net.Crash(victim)
	res := w.run(t, 1, termProbe{Terms: []string{"deadline"}}, true)
	found := false
	for _, u := range res.Unavailable {
		if u == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashed node %d not flagged unavailable: %+v", victim, res)
	}
	if res.PrunedNodes != 0 {
		t.Fatalf("every node holds the term; nothing should be pruned: %+v", res)
	}
}
