package broadcast

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// testTree builds a 3-region line tree over 6 nodes:
// A: 1-2, B: 3-4, C: 5-6; tree edges 1-2, 2-3, 3-4, 4-5, 5-6.
func testTree(t *testing.T, timeout sim.Time) (*sim.Scheduler, *netsim.Network, *Tree) {
	t.Helper()
	g := graph.New()
	regions := []string{"A", "A", "B", "B", "C", "C"}
	for i := 1; i <= 6; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Region: regions[i-1]})
	}
	var tree graph.Tree
	for i := 1; i < 6; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), float64(i))
		tree.Edges = append(tree.Edges, graph.Edge{A: graph.NodeID(i), B: graph.NodeID(i + 1), Weight: float64(i)})
		tree.Weight += float64(i)
	}
	sched := sim.New(2)
	net := netsim.New(sched, g)
	bt, err := Setup(Config{
		Net:  net,
		Tree: tree,
		Eval: func(id graph.NodeID, q any) []any {
			return []any{fmt.Sprintf("n%d:%v", id, q)}
		},
		Timeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, bt
}

func TestFullBroadcastCollectsAll(t *testing.T) {
	sched, _, bt := testTree(t, 0)
	id, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, ok := bt.Result(id)
	if !ok {
		t.Fatal("no result")
	}
	if res.Nodes != 6 || len(res.Items) != 6 {
		t.Errorf("nodes/items = %d/%d, want 6/6", res.Nodes, len(res.Items))
	}
	if len(res.Unavailable) != 0 {
		t.Errorf("unavailable = %v", res.Unavailable)
	}
}

func TestStartFromInteriorNode(t *testing.T) {
	sched, _, bt := testTree(t, 0)
	id, err := bt.Start(3, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, ok := bt.Result(id)
	if !ok || res.Nodes != 6 {
		t.Errorf("result = %+v, %v", res, ok)
	}
}

func TestTargetedQueryPrunesBranches(t *testing.T) {
	sched, net, bt := testTree(t, 0)
	id, err := bt.Start(1, "q", map[string]bool{"A": true, "B": true})
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, _ := bt.Result(id)
	if res.Nodes != 4 {
		t.Errorf("targeted query evaluated %d nodes, want 4 (regions A+B)", res.Nodes)
	}
	// Nodes 5,6 (region C) saw no traffic: query stops at node 4.
	// Each queried link carries one Query and one Summary → cost counts
	// only edges 1-2, 2-3, 3-4 twice: 2*(1+2+3)=12.
	if got := net.Stats().Get("cost_milli"); got != 12000 {
		t.Errorf("traffic cost = %d milli, want 12000", got)
	}
}

func TestTimeoutMarksUnavailable(t *testing.T) {
	sched, net, bt := testTree(t, 10*sim.Unit)
	net.Crash(5)
	id, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, ok := bt.Result(id)
	if !ok {
		t.Fatal("no result despite timeouts")
	}
	// Nodes 5 and 6 are behind the crash; node 4 times out on 5.
	if res.Nodes != 4 {
		t.Errorf("nodes = %d, want 4", res.Nodes)
	}
	if len(res.Unavailable) != 1 || res.Unavailable[0] != 5 {
		t.Errorf("unavailable = %v, want [5]", res.Unavailable)
	}
}

func TestLateSummaryIgnored(t *testing.T) {
	// Child 2 is slow because the whole subtree behind it is slow: crash 3
	// so node 2 times out, then recover 3; the late summary must not
	// corrupt a finished query.
	sched, net, bt := testTree(t, 5*sim.Unit)
	net.Crash(3)
	id, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunFor(30 * sim.Unit)
	res1, ok := bt.Result(id)
	if !ok {
		t.Fatal("no result")
	}
	net.Recover(3)
	sched.Run()
	res2, _ := bt.Result(id)
	if res1.Nodes != res2.Nodes || len(res1.Items) != len(res2.Items) {
		t.Error("late summary mutated a finished result")
	}
}

func TestStartErrors(t *testing.T) {
	_, net, bt := testTree(t, 0)
	if _, err := bt.Start(99, "q", nil); err == nil {
		t.Error("unknown origin accepted")
	}
	net.Crash(1)
	if _, err := bt.Start(1, "q", nil); err == nil {
		t.Error("down origin accepted")
	}
}

func TestSetupValidation(t *testing.T) {
	if _, err := Setup(Config{}); err == nil {
		t.Error("nil network accepted")
	}
	g := graph.New()
	g.MustAddNode(graph.Node{ID: 1})
	net := netsim.New(sim.New(1), g)
	if _, err := Setup(Config{Net: net, Tree: graph.Tree{}}); err == nil {
		t.Error("empty tree accepted")
	}
	bad := graph.Tree{Edges: []graph.Edge{{A: 1, B: 99, Weight: 1}}}
	if _, err := Setup(Config{Net: net, Tree: bad}); err == nil {
		t.Error("tree node missing from topology accepted")
	}
}

// MST broadcast must beat per-node unicast flooding in total traffic cost on
// multi-region graphs (experiment E4's core claim).
func TestTreeCheaperThanFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.MultiRegion(rng, graph.MultiRegionSpec{
		Regions: 4, NodesPerRegion: 6, ExtraIntra: 4, InterLinks: 2,
	})
	res, err := mst.Backbone(g, false)
	if err != nil {
		t.Fatal(err)
	}

	// Tree broadcast (downward only, to compare pure distribution cost).
	treeNet := netsim.New(sim.New(1), g)
	sched := treeNet.Scheduler()
	bt, err := Setup(Config{Net: treeNet, Tree: res.Combined})
	if err != nil {
		t.Fatal(err)
	}
	origin := g.NodeIDs()[0]
	if _, err := bt.Start(origin, "blast", nil); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	// Query+summary traverse each tree edge once each → 2×tree weight.
	treeCost := float64(treeNet.Stats().Get("cost_milli")) / 1000
	wantTree := 2 * res.Combined.Weight
	if diff := treeCost - wantTree; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("tree broadcast cost = %v, want %v", treeCost, wantTree)
	}

	// Flooding baseline: unicast to every node + unicast response back.
	floodNet := netsim.New(sim.New(1), g)
	fsched := floodNet.Scheduler()
	for _, id := range g.NodeIDs() {
		id := id
		floodNet.MustRegister(id, netsim.HandlerFunc(func(env netsim.Envelope) {
			if env.To != origin {
				_ = floodNet.Send(id, env.From, "resp")
			}
		}))
	}
	if _, err := floodNet.Broadcast(origin, "blast"); err != nil {
		t.Fatal(err)
	}
	fsched.Run()
	floodCost := float64(floodNet.Stats().Get("cost_milli")) / 1000

	if treeCost >= floodCost {
		t.Errorf("tree broadcast (%v) not cheaper than flooding (%v)", treeCost, floodCost)
	}
}

func TestSelectRegions(t *testing.T) {
	rows := []mst.RegionCostRow{
		{Region: "A", Total: 3, Reachable: true},
		{Region: "B", Total: 17, Reachable: true},
		{Region: "C", Total: 22, Reachable: true},
		{Region: "D", Total: 5, Reachable: false},
	}
	chosen, cost := SelectRegions(rows, 21)
	if !chosen["A"] || !chosen["B"] || chosen["C"] || chosen["D"] {
		t.Errorf("chosen = %v", chosen)
	}
	if cost != 20 {
		t.Errorf("cost = %v, want 20", cost)
	}
	none, cost := SelectRegions(rows, 1)
	if len(none) != 0 || cost != 0 {
		t.Errorf("tiny budget chose %v at %v", none, cost)
	}
	all, _ := SelectRegions(rows, 1000)
	if len(all) != 3 {
		t.Errorf("large budget chose %v", all)
	}
}

// Property: targeted queries never evaluate nodes outside the target
// regions, and full queries always evaluate everything (absent failures).
func TestPropertyTargeting(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.MultiRegion(rng, graph.MultiRegionSpec{
			Regions: 3, NodesPerRegion: 5, ExtraIntra: 2, InterLinks: 1,
		})
		res, err := mst.Backbone(g, false)
		if err != nil {
			t.Fatal(err)
		}
		net := netsim.New(sim.New(seed), g)
		sched := net.Scheduler()
		var evaluated []graph.NodeID
		bt, err := Setup(Config{
			Net:  net,
			Tree: res.Combined,
			Eval: func(id graph.NodeID, q any) []any {
				evaluated = append(evaluated, id)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		targets := map[string]bool{"R1": true, "R3": true}
		origin := g.NodesInRegion("R1")[0].ID
		if _, err := bt.Start(origin, "q", targets); err != nil {
			t.Fatal(err)
		}
		sched.Run()
		for _, id := range evaluated {
			n, _ := g.Node(id)
			if !targets[n.Region] {
				t.Fatalf("seed %d: node %d in region %s evaluated outside targets", seed, id, n.Region)
			}
		}
		want := len(g.NodesInRegion("R1")) + len(g.NodesInRegion("R3"))
		if len(evaluated) != want {
			t.Fatalf("seed %d: evaluated %d nodes, want %d", seed, len(evaluated), want)
		}
	}
}
