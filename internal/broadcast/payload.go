package broadcast

import (
	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
)

// Typed query/result payloads shared between the broadcast layer and its
// drivers (internal/loadgen, examples). These replace the stringly
// scenario-private structs that previously rode the tree — matched users
// crossed the convergecast as space-joined "u<n>" tokens reparsed at the
// origin — so summaries now carry data the compiler can check.

// AttrQuery is the downward payload of the §3.3 attribute architecture:
// either a mass distribution (deposit the message at every matching
// mailbox) or a content search (report who holds matching mail).
type AttrQuery struct {
	// MsgID identifies the distributed message; zero for content searches.
	MsgID mail.MessageID
	// Group is the driver's audience index (profiles carry "g<n>" interest
	// attributes); -1 when the audience is defined by Query alone.
	Group int
	// Query is the attribute predicate. For distributions it selects the
	// audience; for content searches the planner (attr.PlanQuery) decides
	// whether its content terms allow the pruned route.
	Query attr.Query
	// Subject and Body are the message text for distributions; their terms
	// feed the per-store sketch and term index on deposit.
	Subject string
	Body    string
	// Distribute distinguishes the two modes: true deposits, false
	// searches.
	Distribute bool
}

// SketchTerms implements Probe. Distributions never prune — depositing
// must reach every audience mailbox regardless of what mail is already
// buffered below. Content searches prune on the planner's probe terms.
func (q AttrQuery) SketchTerms() []string {
	if q.Distribute {
		return nil
	}
	return attr.PlanQuery(q.Query).Terms
}

// UserMatch is the upward item: one matched user at one node. It is the
// typed replacement for the "u<n>" string tokens.
type UserMatch struct {
	User int
	Node graph.NodeID
}
