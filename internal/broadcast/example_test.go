package broadcast_test

import (
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// Example broadcasts a query down a three-node tree and aggregates the
// responses back up (§3.3.1-B convergecast).
func Example() {
	g := graph.New()
	for i := 1; i <= 3; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Region: "A"})
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	tree := graph.Tree{Edges: []graph.Edge{{A: 1, B: 2, Weight: 1}, {A: 2, B: 3, Weight: 1}}}

	net := netsim.New(sim.New(1), g)
	bt, err := broadcast.Setup(broadcast.Config{
		Net:  net,
		Tree: tree,
		Eval: func(id graph.NodeID, q any) []any {
			return []any{fmt.Sprintf("node%d", id)}
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	qid, _ := bt.Start(1, "who is out there?", nil)
	net.Scheduler().Run()
	res, _ := bt.Result(qid)
	items := make([]string, 0, len(res.Items))
	for _, it := range res.Items {
		items = append(items, it.(string))
	}
	sort.Strings(items)
	fmt.Println(items)
	// Output: [node1 node2 node3]
}
