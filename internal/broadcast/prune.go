package broadcast

import (
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/sketch"
)

// Sketch-pruned selective multicast.
//
// E21 measured the cost of §3.3's mass distribution honestly: every content
// query walks all ~2.9M mailboxes down a depth-33 tree. The term index added
// in PR 9 is only consulted *at* each store — the broadcast still visits
// everyone. This file pushes the index one level up: a summary-aggregation
// phase (RefreshSketches) ORs each node's store sketch with its children's
// and caches the subtree sketch per directed edge, and Distribute consults
// that cache on the way down, skipping children whose subtree provably holds
// no match.
//
// The safety rule is single-sided and absolute: pruning may only happen on a
// *proof* of absence from a *fresh* sketch. Three conditions all fail open
// (visit the subtree):
//
//   - no cached sketch for the branch (never aggregated, or a node below
//     had no sketch to contribute);
//   - the cache is stale — some store under the branch mutated its term set
//     since aggregation, detected by comparing generation sums;
//   - the sketch says "maybe" (including Bloom false positives, which are
//     measured as FPSubtrees, the price of the bits saved).
//
// A pruned branch is excused *by proof*, not by timeout: the parent does not
// wait for it, the completion bound is unaffected, and audits must treat any
// actual match under a pruned root as a false-negative violation — the
// property test and the chaos auditors in internal/loadgen pin exactly that.

// Probe is implemented by payloads that expose required content terms: a
// matching item must contain every returned term, so a subtree sketch
// lacking any one of them proves the subtree empty of matches. A nil return
// disables pruning for this payload even on the Distribute path (the mass
// distribution itself, profile-only queries).
type Probe interface {
	SketchTerms() []string
}

// PruneStats aggregates one query's pruning decisions across all nodes.
type PruneStats struct {
	// Checked counts branch decisions where pruning was considered.
	Checked int
	// NoCache / StaleOpen count branches that failed open — no aggregated
	// sketch, or a generation mismatch proving the cache stale.
	NoCache   int
	StaleOpen int
	// PrunedSubtrees / PrunedNodes count branches skipped on proof and the
	// nodes beneath them.
	PrunedSubtrees int
	PrunedNodes    int
	// FPSubtrees counts sketch-passed branches whose whole subtree then
	// contributed nothing: Bloom false positives.
	FPSubtrees int
}

// Distribute injects a query like Start, but with sketch pruning enabled
// for payloads implementing Probe. With no Sketch hook configured, or a
// payload exposing no probe terms, it degrades to exactly Start.
func (t *Tree) Distribute(origin graph.NodeID, payload any, targets map[string]bool) (uint64, error) {
	return t.start(origin, payload, targets, true)
}

// RefreshSketches runs the summary-aggregation phase: snapshot every node's
// store sketch once, then OR them into a cached subtree sketch per directed
// edge, remembering the generation sum each cache was built at. Returns the
// number of edges cached.
//
// The central walk stands in for the distributed convergecast that would
// carry these summaries in a deployment (each node ORing its own sketch
// with its children's and handing the result to its parent); the cost model
// is the same — one sketch per tree edge — and the staleness rule does not
// depend on who did the ORing. Down nodes are not special-cased: a down
// node's store is frozen, so reading it equals keeping its last summary,
// and its generation cannot move until it recovers.
func (t *Tree) RefreshSketches() int {
	if t.sketchFn == nil {
		return 0
	}
	local := make(map[graph.NodeID]*sketch.Filter, len(t.adj))
	gens := make(map[graph.NodeID]uint64, len(t.adj))
	for id := range t.adj {
		f, g := t.sketchFn(id)
		if f == nil {
			continue // no sketch at this node: branches containing it cannot cache
		}
		local[id] = f
		gens[id] = g
	}
	cached := 0
	for id, vias := range t.nodesVia {
		for nb, covered := range vias {
			agg := sketch.NewFilter()
			var gsum uint64
			complete := true
			for _, c := range covered {
				f := local[c]
				if f == nil {
					complete = false
					break
				}
				agg.Or(f)
				gsum += gens[c]
			}
			if !complete {
				delete(t.sketchVia[id], nb)
				continue
			}
			t.sketchVia[id][nb] = agg
			t.genVia[id][nb] = gsum
			cached++
		}
	}
	t.refreshes++
	return cached
}

// SketchRefreshes returns how many aggregation phases have run.
func (t *Tree) SketchRefreshes() int { return t.refreshes }

// QueryPruneStats returns the pruning ledger for one query.
func (t *Tree) QueryPruneStats(id uint64) PruneStats {
	if st := t.pstats[id]; st != nil {
		return *st
	}
	return PruneStats{}
}

// probeTerms extracts the sketch probe for a query, or nil when pruning
// does not apply (Start-path query, no hook, non-Probe payload, no terms).
func (t *Tree) probeTerms(q Query) []string {
	if !q.Prune || t.sketchFn == nil {
		return nil
	}
	p, ok := q.Payload.(Probe)
	if !ok {
		return nil
	}
	return p.SketchTerms()
}

type branchVerdict int

const (
	// branchOpen: no usable sketch — visit (fail open).
	branchOpen branchVerdict = iota
	// branchPass: fresh sketch says "maybe" — visit, and watch for a false
	// positive.
	branchPass
	// branchPrune: fresh sketch proves no match below — skip.
	branchPrune
)

// checkBranch decides whether the branch node→nb can be pruned for a query
// requiring every term in probe. Returns the covered node count with
// branchPrune so the caller can account excused nodes.
func (t *Tree) checkBranch(node, nb graph.NodeID, probe []string, qid uint64) (branchVerdict, int) {
	st := t.pruneStats(qid)
	st.Checked++
	f := t.sketchVia[node][nb]
	if f == nil {
		st.NoCache++
		return branchOpen, 0
	}
	// Freshness: the generation sum over the covered set must equal the sum
	// recorded at aggregation. Any deposit or drain that changed a term set
	// below bumps a store generation and breaks the equality, so a stale
	// cache can never prune — it fails open here. (Centrally this is an
	// O(subtree) counter walk; a deployment would push generation deltas up
	// with the summaries instead.)
	var cur uint64
	for _, c := range t.nodesVia[node][nb] {
		cur += t.sketchGenFn(c)
	}
	if cur != t.genVia[node][nb] {
		st.StaleOpen++
		return branchOpen, 0
	}
	for _, term := range probe {
		if !f.MayContain(term) {
			st.PrunedSubtrees++
			n := len(t.nodesVia[node][nb])
			st.PrunedNodes += n
			return branchPrune, n
		}
	}
	return branchPass, 0
}

func (t *Tree) pruneStats(id uint64) *PruneStats {
	st := t.pstats[id]
	if st == nil {
		st = &PruneStats{}
		t.pstats[id] = st
	}
	return st
}

// SubtreeNodes returns the nodes covered by the branch origin→root — the
// set an audit must excuse (and cross-check for false negatives) when that
// branch appears in Summary.Pruned. The slice is shared; callers must not
// mutate it.
func (t *Tree) SubtreeNodes(origin, root graph.NodeID) []graph.NodeID {
	return t.nodesVia[origin][root]
}

// PrunedNodeSet expands a summary's pruned roots into the full excused node
// set, resolving each root against the node that pruned it. Roots are
// resolved by searching the parent side: a root r was pruned by its tree
// neighbor on the path toward the origin, which is the unique neighbor nb
// of r with origin in nodesVia[r][nb]... inverted here by using the
// recorded directed-edge sets directly.
func (t *Tree) PrunedNodeSet(origin graph.NodeID, roots []graph.NodeID) map[graph.NodeID]bool {
	if len(roots) == 0 {
		return nil
	}
	set := make(map[graph.NodeID]bool)
	for _, r := range roots {
		// The pruning parent is r's neighbor whose subtree-through-r exists
		// and does NOT contain the origin (pruning always happens on the
		// path away from the origin). For the origin itself as parent the
		// check also holds.
		for _, p := range t.adj[r] {
			covered := t.nodesVia[p][r]
			if covered == nil {
				continue
			}
			containsOrigin := false
			for _, c := range covered {
				if c == origin {
					containsOrigin = true
					break
				}
			}
			if containsOrigin {
				continue
			}
			for _, c := range covered {
				set[c] = true
			}
			break
		}
	}
	return set
}
