// Package broadcast_test holds the chaos regression externally: the faults
// package transitively imports broadcast (via core), so an in-package test
// would form an import cycle.
package broadcast_test

import (
	"fmt"
	"testing"

	"github.com/largemail/largemail/internal/broadcast"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// chaosTree mirrors the in-package testTree harness: a 6-node line tree
// 1-2-3-4-5-6 where killing an interior node severs a whole subtree.
func chaosTree(t *testing.T, timeout sim.Time) (*sim.Scheduler, *netsim.Network, *broadcast.Tree) {
	t.Helper()
	g := graph.New()
	regions := []string{"A", "A", "B", "B", "C", "C"}
	for i := 1; i <= 6; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Region: regions[i-1]})
	}
	var tree graph.Tree
	for i := 1; i < 6; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), float64(i))
		tree.Edges = append(tree.Edges, graph.Edge{A: graph.NodeID(i), B: graph.NodeID(i + 1), Weight: float64(i)})
		tree.Weight += float64(i)
	}
	sched := sim.New(2)
	net := netsim.New(sched, g)
	bt, err := broadcast.Setup(broadcast.Config{
		Net:  net,
		Tree: tree,
		Eval: func(id graph.NodeID, q any) []any {
			return []any{fmt.Sprintf("n%d:%v", id, q)}
		},
		Timeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, bt
}

// TestConvergecastUnderNodeKill is the E6 chaos regression: a child server
// dies mid-tree via the faults pipeline, and the convergecast must still
// complete within the depth-scaled timeout with the dead subtree explicitly
// flagged — a partial aggregate, never a silent merge. After recovery the
// same tree must serve a complete query again.
func TestConvergecastUnderNodeKill(t *testing.T) {
	const timeout = 20 * sim.Unit
	sched, net, bt := chaosTree(t, timeout)

	// Drive the crash through the faults injector, exactly as the chaos
	// harness does, and verify via the Observer hook that it landed.
	nodes := map[string]graph.NodeID{}
	for i := 1; i <= 6; i++ {
		nodes[fmt.Sprintf("N%d", i)] = graph.NodeID(i)
	}
	inj := faults.NewSimTarget(net, nodes, sim.Unit)
	var observed []faults.Event
	inj.Observer = func(e faults.Event) { observed = append(observed, e) }

	if err := inj.Inject(faults.Event{Kind: faults.Crash, Target: "N4"}); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 1 || observed[0].Kind != faults.Crash {
		t.Fatalf("observer saw %v, want the crash", observed)
	}
	if net.IsUp(4) {
		t.Fatal("node 4 still up after injected crash")
	}

	start := sched.Now()
	id, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res, at, ok := bt.ResultAt(id)
	if !ok {
		t.Fatal("convergecast never completed at the origin")
	}
	// Bounded completion: the origin's wait scales with its deepest awaited
	// subtree; node 3's own timeout for dead node 4 resolves within it.
	bound := start + timeout*sim.Time(bt.MaxDepthFrom(1)) + sim.Unit
	if at > bound {
		t.Fatalf("completed at %d, past bound %d", at, bound)
	}
	// The dead child is flagged, not silently merged (E6).
	if len(res.Unavailable) == 0 {
		t.Fatal("dead subtree not marked unavailable")
	}
	if res.Unavailable[0] != 4 {
		t.Fatalf("unavailable = %v, want node 4 flagged", res.Unavailable)
	}
	// Nothing from the dead subtree (4,5,6) can appear among the items.
	for _, it := range res.Items {
		for dead := 4; dead <= 6; dead++ {
			if it == fmt.Sprintf("n%d:q", dead) {
				t.Fatalf("item %v from dead subtree in partial aggregate", it)
			}
		}
	}
	if res.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3 (live side only)", res.Nodes)
	}

	// Recovery closes the window: the next query is complete again.
	if err := inj.Inject(faults.Event{Kind: faults.Recover, Target: "N4"}); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 2 {
		t.Fatalf("observer missed the recovery: %v", observed)
	}
	id2, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	res2, ok := bt.Result(id2)
	if !ok || res2.Nodes != 6 || len(res2.Unavailable) != 0 {
		t.Fatalf("post-recovery result = %+v, %v; want 6 nodes, no unavailable", res2, ok)
	}
}

// TestConvergecastMidFlightCrash kills a node after it forwarded the query
// but before its children's summaries return: its parent must time out and
// flag it, and the whole query still completes within the bound.
func TestConvergecastMidFlightCrash(t *testing.T) {
	const timeout = 20 * sim.Unit
	sched, net, bt := chaosTree(t, timeout)

	start := sched.Now()
	id, err := bt.Start(1, "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Let the query propagate past node 4, then kill it: node 5 and 6's
	// summaries will fly into a dead node and vanish.
	sched.RunFor(3 * sim.Unit)
	net.Crash(4)
	sched.Run()

	res, at, ok := bt.ResultAt(id)
	if !ok {
		t.Fatal("no result")
	}
	bound := start + timeout*sim.Time(bt.MaxDepthFrom(1)) + sim.Unit
	if at > bound {
		t.Fatalf("completed at %d, past bound %d", at, bound)
	}
	if len(res.Unavailable) == 0 {
		t.Fatal("mid-flight crash silently merged")
	}
}
