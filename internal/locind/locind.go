// Package locind implements the paper's second design: an electronic mail
// system with limited location-independent access (§3.2).
//
// Names keep the region.host.user syntax, but "the 'host' here indicates the
// primary location of the user. It does not determine the current access
// point": users roam to any host inside their region. Regions are divided
// into hash sub-groups ("a hash function is applied to the name to find out
// in which sub-group the name belongs", §3.2.2b) and each sub-group is
// served by an ordered list of the region's servers, so server assignment is
// independent of the name syntax and "reallocation of servers and
// reallocation of load can be done by changing the hashing functions"
// (§3.2.3c) — no renames.
//
// Delivery notification follows §3.2.2c: a server holding new mail first
// tries the user's primary location; "if the user is not at his primary
// location, the server has to consult with other local servers to find out
// the current location of the user." Overhead is incurred only when the
// user roams — the property experiment E7 measures.
package locind

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// Errors reported by the package.
var (
	ErrWrongRegion = errors.New("locind: name is outside this region")
	ErrNoServers   = errors.New("locind: no servers configured")
	ErrUnknownHost = errors.New("locind: unknown host")
	ErrNoServerUp  = errors.New("locind: no server reachable")
)

// Protocol payloads.
type (
	// Submit asks a server to deliver a message (sent from the user's
	// current host).
	Submit struct {
		From    names.Name
		To      []names.Name
		Subject string
		Body    string
	}
	// Deposit hands a message to an authority server of the recipient's
	// sub-group; acked and retried like the syntax-directed design.
	Deposit struct {
		Msg       mail.Message
		Recipient names.Name
		Origin    graph.NodeID
		Token     uint64
	}
	// DepositAck confirms a Deposit.
	DepositAck struct{ Token uint64 }
	// LoginMsg announces a user's presence at a host to the connecting
	// server ("whenever a user logs on to a host, the host will inform the
	// nearest active server", §3.2.2c).
	LoginMsg struct {
		User names.Name
		Host graph.NodeID
	}
	// LogoutMsg withdraws the login.
	LogoutMsg struct{ User names.Name }
	// NotifyProbe asks a host whether the user is connected there; if so
	// the alert is delivered with it.
	NotifyProbe struct {
		User   names.Name
		ID     mail.MessageID
		Server graph.NodeID
		Token  uint64
	}
	// ProbeReply answers a NotifyProbe.
	ProbeReply struct {
		Token uint64
		Found bool
	}
	// LocQuery asks another server for a user's current location (the
	// consultation step of §3.2.2c).
	LocQuery struct {
		User  names.Name
		From  graph.NodeID
		Token uint64
	}
	// LocReply answers a LocQuery; Known is false when the asked server
	// has no record.
	LocReply struct {
		User  names.Name
		Host  graph.NodeID
		Known bool
		Token uint64
	}
	// Alert is the final notification to the user's located host.
	Alert struct {
		User   names.Name
		ID     mail.MessageID
		Server graph.NodeID
	}
	// MailboxTransfer bulk-moves a mailbox during rehash reconfiguration.
	MailboxTransfer struct {
		User names.Name
		Msgs []mail.Stored
	}
	// Forward relays a message into the recipient's region (§3.2.2b);
	// acked and retried like Deposit.
	Forward struct {
		Msg       mail.Message
		Recipient names.Name
		Origin    graph.NodeID
		Token     uint64
	}
	// ForwardAck confirms a Forward.
	ForwardAck struct{ Token uint64 }
)

// Federation links the location-independent systems of several regions
// sharing one network, providing the inter-region step of §3.2.2b: "if the
// name is not a local name, the server has to contact the corresponding
// server in the region where the name belongs. The request will be
// forwarded to that server which will assume the responsibility of
// resolving the name and delivering the messages."
type Federation struct {
	systems map[string]*System
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{systems: make(map[string]*System)}
}

// Add joins a region's system to the federation. Systems must share one
// netsim.Network.
func (f *Federation) Add(sys *System) error {
	if _, dup := f.systems[sys.region]; dup {
		return fmt.Errorf("locind: region %s already federated", sys.region)
	}
	f.systems[sys.region] = sys
	sys.fed = f
	return nil
}

// System returns a member region's system.
func (f *Federation) System(region string) (*System, bool) {
	s, ok := f.systems[region]
	return s, ok
}

// serversOf returns a region's servers in preference order, or nil for
// unknown regions.
func (f *Federation) serversOf(region string) []graph.NodeID {
	s, ok := f.systems[region]
	if !ok {
		return nil
	}
	return append([]graph.NodeID(nil), s.servers...)
}

// Config describes one region's location-independent system.
type Config struct {
	Region string
	Net    *netsim.Network
	// Servers are the region's mail servers, in preference order.
	Servers []graph.NodeID
	// Hosts maps host name tokens to their nodes (needed to find a user's
	// primary location from their name).
	Hosts map[string]graph.NodeID
	// Subgroups is the hash modulus k; zero means max(1, 2×#servers).
	Subgroups int
	// ListLen is the authority-list length per sub-group; zero means
	// min(2, #servers).
	ListLen int
	// AckTimeout for deposit retries; zero means 8 paper time units.
	AckTimeout sim.Time
	// Stats, when non-nil, is used instead of a private registry — a
	// federation's regions can then share one registry and their counters
	// aggregate.
	Stats *obs.Registry
	// Trace, when non-nil, stamps the message lifecycle (submit, deposit)
	// so a workload harness can run its trace-completeness audit.
	Trace *obs.Tracer
}

// System is one region's location-independent mail system.
type System struct {
	region     string
	net        *netsim.Network
	servers    []graph.NodeID
	hosts      map[string]graph.NodeID
	subgroups  int
	listLen    int
	ackTimeout sim.Time

	procs  map[graph.NodeID]*Server
	hostPs map[graph.NodeID]*Hostd
	stats  *obs.Registry
	trace  *obs.Tracer // nil when lifecycle stamping is off
	fed    *Federation // nil outside a federation

	// onOverhead, when set via SetOverheadHook, observes every piece of
	// roaming-tracking work a delivery incurs: one "consult" event per
	// LocQuery issued and one "roam_alert" when a consultation located a
	// roamed user. The §3.2.2c auditor uses it to verify that overhead is
	// only ever incurred for users who actually left their primary host.
	onOverhead func(user names.Name, event string)
}

// SetOverheadHook installs the roaming-overhead observer (see §3.2.2c:
// consultation traffic must only occur for users off their primary host).
// Pass nil to remove it. Must not be called while the scheduler is running.
func (s *System) SetOverheadHook(fn func(user names.Name, event string)) {
	s.onOverhead = fn
}

// NewSystem registers a Server process on every server node. Host processes
// are added with AddHost.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Net == nil {
		return nil, errors.New("locind: nil network")
	}
	if len(cfg.Servers) == 0 {
		return nil, ErrNoServers
	}
	if cfg.Subgroups <= 0 {
		cfg.Subgroups = 2 * len(cfg.Servers)
	}
	if cfg.ListLen <= 0 || cfg.ListLen > len(cfg.Servers) {
		cfg.ListLen = len(cfg.Servers)
		if cfg.ListLen > 2 {
			cfg.ListLen = 2
		}
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 8 * sim.Unit
	}
	reg := cfg.Stats
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &System{
		region:     cfg.Region,
		net:        cfg.Net,
		servers:    append([]graph.NodeID(nil), cfg.Servers...),
		hosts:      make(map[string]graph.NodeID, len(cfg.Hosts)),
		subgroups:  cfg.Subgroups,
		listLen:    cfg.ListLen,
		ackTimeout: cfg.AckTimeout,
		procs:      make(map[graph.NodeID]*Server),
		hostPs:     make(map[graph.NodeID]*Hostd),
		stats:      reg,
		trace:      cfg.Trace,
	}
	for tok, id := range cfg.Hosts {
		s.hosts[tok] = id
	}
	for _, id := range cfg.Servers {
		p := &Server{
			id: id, sys: s,
			mailboxes: make(map[names.Name]*mail.Mailbox),
			locations: make(map[names.Name]graph.NodeID),
			pending:   make(map[uint64]*pendingDeposit),
			notifying: make(map[uint64]*pendingNotify),
		}
		if err := cfg.Net.Register(id, p); err != nil {
			return nil, err
		}
		s.procs[id] = p
	}
	return s, nil
}

// Stats returns region-wide counters: "deposits", "notify_home",
// "notify_roaming", "consultations", "rehash_transfers", ...
func (s *System) Stats() *obs.Registry { return s.stats }

// Region returns the system's region name.
func (s *System) Region() string { return s.region }

// Subgroups returns the current hash modulus.
func (s *System) Subgroups() int { return s.subgroups }

// Servers returns the current rotation, in authority order.
func (s *System) Servers() []graph.NodeID {
	return append([]graph.NodeID(nil), s.servers...)
}

// Server returns the server process on a node.
func (s *System) Server(id graph.NodeID) (*Server, bool) {
	p, ok := s.procs[id]
	return p, ok
}

// AuthorityFor returns the ordered authority-server list of the user's hash
// sub-group: sub-group g is served by servers[g mod n], servers[(g+1) mod
// n], ... for ListLen entries, which spreads sub-groups evenly.
func (s *System) AuthorityFor(user names.Name) []graph.NodeID {
	g := user.Subgroup(s.subgroups)
	n := len(s.servers)
	out := make([]graph.NodeID, 0, s.listLen)
	for i := 0; i < s.listLen; i++ {
		out = append(out, s.servers[(g+i)%n])
	}
	return out
}

// PrimaryHost returns the node of the user's primary location (the host
// token of their name).
func (s *System) PrimaryHost(user names.Name) (graph.NodeID, error) {
	id, ok := s.hosts[user.Host]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownHost, user.Host)
	}
	return id, nil
}

// NearestServer returns the closest up server to a host by path cost — the
// connection-setup rule of §3.2.2a ("a user always contacts the nearest
// active server").
func (s *System) NearestServer(from graph.NodeID) (graph.NodeID, error) {
	best := graph.NodeID(0)
	bestCost := -1.0
	for _, id := range s.servers {
		if !s.net.IsUp(id) {
			continue
		}
		c, err := s.net.Cost(from, id)
		if err != nil {
			continue
		}
		if bestCost < 0 || c < bestCost {
			best, bestCost = id, c
		}
	}
	if bestCost < 0 {
		return 0, ErrNoServerUp
	}
	return best, nil
}

// Rehash changes the hash modulus — the paper's reconfiguration lever
// ("reallocation of servers and reallocation of load can be done by
// changing the hashing functions", §3.2.3c) — and migrates buffered
// mailboxes whose sub-group authority no longer includes their current
// server. No user names change. It returns how many mailboxes moved.
func (s *System) Rehash(k int) (moved int, err error) {
	if k <= 0 {
		return 0, fmt.Errorf("locind: invalid sub-group count %d", k)
	}
	s.subgroups = k
	serverIDs := append([]graph.NodeID(nil), s.servers...)
	sort.Slice(serverIDs, func(i, j int) bool { return serverIDs[i] < serverIDs[j] })
	for _, sid := range serverIDs {
		moved += s.evacuate(s.procs[sid])
	}
	return moved, nil
}

// evacuate re-routes every buffered message on p whose sub-group authority
// no longer includes p, through the normal acked per-message deposit path,
// so reconfiguration cannot lose mail: a target that is down mid-rehash is
// covered by the same retry machinery as any other deposit. It returns the
// number of mailboxes moved.
func (s *System) evacuate(p *Server) (moved int) {
	users := make([]names.Name, 0, len(p.mailboxes))
	for u := range p.mailboxes {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i].String() < users[j].String() })
	for _, u := range users {
		auth := s.AuthorityFor(u)
		keep := false
		for _, a := range auth {
			if a == p.id {
				keep = true
				break
			}
		}
		if keep {
			continue
		}
		msgs := p.mailboxes[u].Drain()
		if len(msgs) == 0 {
			continue
		}
		s.stats.Inc("rehash_transfers")
		moved++
		for _, st := range msgs {
			// The copy leaves this server still undelivered: drop it from the
			// suppression memory, or a later reconfiguration routing it back
			// here would swallow it as a duplicate re-deposit.
			p.mailboxes[u].Forget(st.ID)
			s.stats.Inc("rehash_messages_moved")
			p.route(st.Message, u)
		}
	}
	return moved
}

// AddServer appends a server to the region (registering its process) and
// rehashes so sub-groups spread over it.
func (s *System) AddServer(id graph.NodeID) error {
	if _, dup := s.procs[id]; dup {
		return fmt.Errorf("locind: server %d already present", id)
	}
	p := &Server{
		id: id, sys: s,
		mailboxes: make(map[names.Name]*mail.Mailbox),
		locations: make(map[names.Name]graph.NodeID),
		pending:   make(map[uint64]*pendingDeposit),
		notifying: make(map[uint64]*pendingNotify),
	}
	if err := s.net.Register(id, p); err != nil {
		return err
	}
	s.procs[id] = p
	s.servers = append(s.servers, id)
	_, err := s.Rehash(s.subgroups)
	return err
}

// RemoveServer takes a server out of the region's rotation: no sub-group's
// authority list includes it afterwards, and its buffered mail is re-routed
// through the normal acked deposit path. The process stays registered on
// the network, so in-flight deposits addressed to it are bounced back into
// rotation by the stale-authority guard rather than stranded. It returns
// how many mailboxes moved.
func (s *System) RemoveServer(id graph.NodeID) (moved int, err error) {
	p, ok := s.procs[id]
	if !ok {
		return 0, fmt.Errorf("locind: server %d not present", id)
	}
	idx := -1
	for i, sid := range s.servers {
		if sid == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("locind: server %d already removed", id)
	}
	if len(s.servers) == 1 {
		return 0, ErrNoServers
	}
	s.servers = append(s.servers[:idx:idx], s.servers[idx+1:]...)
	if s.listLen > len(s.servers) {
		s.listLen = len(s.servers)
	}
	moved = s.evacuate(p)
	m, err := s.Rehash(s.subgroups)
	return moved + m, err
}

// otherServers returns the servers except exclude, in preference order.
func (s *System) otherServers(exclude graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.servers)-1)
	for _, id := range s.servers {
		if id != exclude {
			out = append(out, id)
		}
	}
	return out
}
