package locind

import (
	"fmt"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
)

// Hostd is the host-side process of the location-independent design: it
// answers location probes from servers and routes alerts to the agents
// currently connected at this host.
type Hostd struct {
	id     graph.NodeID
	sys    *System
	agents map[names.Name]*Agent
}

// AddHost registers the host process on a node and records the host-token
// mapping.
func (s *System) AddHost(token string, id graph.NodeID) (*Hostd, error) {
	if _, dup := s.hostPs[id]; dup {
		return nil, fmt.Errorf("locind: host node %d already registered", id)
	}
	h := &Hostd{id: id, sys: s, agents: make(map[names.Name]*Agent)}
	if err := s.net.Register(id, h); err != nil {
		return nil, err
	}
	s.hostPs[id] = h
	s.hosts[token] = id
	return h, nil
}

// ID returns the host's node.
func (h *Hostd) ID() graph.NodeID { return h.id }

// Receive implements netsim.Handler.
func (h *Hostd) Receive(env netsim.Envelope) {
	switch m := env.Payload.(type) {
	case NotifyProbe:
		a, here := h.agents[m.User]
		found := here && a.loggedIn
		if found {
			a.notifications = append(a.notifications, Alert{User: m.User, ID: m.ID, Server: m.Server})
		}
		_ = h.sys.net.Send(h.id, m.Server, ProbeReply{Token: m.Token, Found: found})
	case Alert:
		if a, here := h.agents[m.User]; here {
			a.notifications = append(a.notifications, m)
		}
	}
}

// Agent is a roaming user of the location-independent system. Unlike the
// syntax-directed design, the agent's current host is state, not identity:
// "users can move freely within a region without changing names" (§3.2.4).
type Agent struct {
	user    names.Name
	sys     *System
	current *Hostd
	primary graph.NodeID

	loggedIn      bool
	seen          map[mail.MessageID]bool
	inbox         []mail.Stored
	notifications []Alert
	polls         int
	retrievals    int
	dupes         int
	pollCost      float64
}

// NewAgent creates an agent at its primary host (per the user's name).
func (s *System) NewAgent(user names.Name) (*Agent, error) {
	if user.Region != s.region {
		return nil, fmt.Errorf("%w: %v", ErrWrongRegion, user)
	}
	primary, err := s.PrimaryHost(user)
	if err != nil {
		return nil, err
	}
	h, ok := s.hostPs[primary]
	if !ok {
		return nil, fmt.Errorf("%w: node %d has no host process", ErrUnknownHost, primary)
	}
	a := &Agent{
		user: user, sys: s, current: h, primary: primary,
		seen: make(map[mail.MessageID]bool),
	}
	h.agents[user] = a
	return a, nil
}

// User returns the agent's name.
func (a *Agent) User() names.Name { return a.user }

// CurrentHost returns the node the agent is currently at.
func (a *Agent) CurrentHost() graph.NodeID { return a.current.id }

// AtPrimary reports whether the agent is at its primary location.
func (a *Agent) AtPrimary() bool { return a.current.id == a.primary }

// Notifications returns alerts received so far.
func (a *Agent) Notifications() []Alert {
	return append([]Alert(nil), a.notifications...)
}

// Inbox returns retrieved messages.
func (a *Agent) Inbox() []mail.Stored {
	return append([]mail.Stored(nil), a.inbox...)
}

// Polls reports how many server mailbox checks the agent has issued.
func (a *Agent) Polls() int { return a.polls }

// Retrievals reports how many GetMail calls the agent has made.
func (a *Agent) Retrievals() int { return a.retrievals }

// Duplicates reports how many already-seen copies the agent's polls have
// suppressed (retried deposits that landed twice across a fault window).
func (a *Agent) Duplicates() int { return a.dupes }

// LoggedIn reports whether the agent currently has an announced presence.
func (a *Agent) LoggedIn() bool { return a.loggedIn }

// PollCost reports the cumulative round-trip cost of the agent's polls,
// including any remote-access inflation.
func (a *Agent) PollCost() float64 { return a.pollCost }

// MoveTo roams the agent to another host in the region — no rename, no
// server reassignment (§3.2.4: "the server assignment of the migrated user
// need not be changed"). The agent is logged out by the move; call Login at
// the new location.
func (a *Agent) MoveTo(host graph.NodeID) error {
	h, ok := a.sys.hostPs[host]
	if !ok {
		return fmt.Errorf("%w: node %d", ErrUnknownHost, host)
	}
	if a.loggedIn {
		if err := a.Logout(); err != nil {
			return err
		}
	}
	delete(a.current.agents, a.user)
	a.current = h
	h.agents[a.user] = a
	return nil
}

// Login announces presence to the nearest active server.
func (a *Agent) Login() error {
	srv, err := a.sys.NearestServer(a.current.id)
	if err != nil {
		return err
	}
	a.loggedIn = true
	return a.sys.net.Send(a.current.id, srv, LoginMsg{User: a.user, Host: a.current.id})
}

// Logout withdraws presence.
func (a *Agent) Logout() error {
	srv, err := a.sys.NearestServer(a.current.id)
	if err != nil {
		return err
	}
	a.loggedIn = false
	return a.sys.net.Send(a.current.id, srv, LogoutMsg{User: a.user})
}

// Send submits a message via the nearest active server — from wherever the
// agent currently is ("users ... can send or receive messages from any host
// inside a region without having to change names", §3.2).
func (a *Agent) Send(to []names.Name, subject, body string) error {
	srv, err := a.sys.NearestServer(a.current.id)
	if err != nil {
		return err
	}
	return a.sys.net.Send(a.current.id, srv, Submit{From: a.user, To: to, Subject: subject, Body: body})
}

// GetMail collects buffered mail from the live authority servers of the
// agent's sub-group and returns the newly retrieved messages.
func (a *Agent) GetMail() []mail.Stored {
	return a.getMail(a.current.id, 1)
}

// RemoteAccessFactor models §3.2.4's observation about cross-region remote
// access: "remote access is usually slow and imposes large overhead on the
// network (i.e., very few characters are packed in every remote-access
// packet)". Each remote poll is charged this multiple of the normal
// round-trip cost.
const RemoteAccessFactor = 4

// RemoteGetMail retrieves the agent's mail while accessing the region from
// a distant node — the §3.2.4 alternative to renaming after an inter-region
// move ("a user can remotely access his old region and access his mail").
// It returns the newly retrieved messages and the network cost this access
// incurred.
func (a *Agent) RemoteGetMail(from graph.NodeID) ([]mail.Stored, float64) {
	costBefore := a.pollCost
	msgs := a.getMail(from, RemoteAccessFactor)
	return msgs, a.pollCost - costBefore
}

func (a *Agent) getMail(from graph.NodeID, costFactor float64) []mail.Stored {
	a.retrievals++
	before := len(a.inbox)
	for _, sid := range a.sys.AuthorityFor(a.user) {
		if !a.sys.net.IsUp(sid) {
			continue
		}
		srv, ok := a.sys.Server(sid)
		if !ok {
			continue
		}
		a.polls++
		if c, err := a.sys.net.Cost(from, sid); err == nil {
			a.pollCost += 2 * c * costFactor
		}
		msgs, err := srv.CheckMail(a.user)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			if a.seen[m.ID] {
				a.dupes++
				continue
			}
			a.seen[m.ID] = true
			a.inbox = append(a.inbox, m)
		}
	}
	return append([]mail.Stored(nil), a.inbox[before:]...)
}
