package locind

import (
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

// pickUserWithHead returns a user primaried on ha whose sub-group authority
// head is the given server — letting the E7 oracle place deposits exactly
// where the test needs them.
func pickUserWithHead(t *testing.T, w *world, head graph.NodeID) names.Name {
	t.Helper()
	for _, tok := range []string{"carol", "dave", "erin", "frank", "gail", "hank", "iris", "jack"} {
		n := names.Name{Region: "R1", Host: "ha", User: tok}
		if w.sys.AuthorityFor(n)[0] == head {
			return n
		}
	}
	t.Fatalf("no candidate user hashes to head server %d", head)
	return names.Name{}
}

// TestE7ExactOverheadCounts pins experiment E7 with exact message-count
// oracles (§3.2.2c): delivering to a user at their primary host costs at
// most one probe and ZERO location consultations; delivering to a roamed
// user costs exactly one probe, one consultation, and one roaming alert —
// the overhead exists if and only if the recipient moved.
func TestE7ExactOverheadCounts(t *testing.T) {
	w := newWorld(t, 4)
	get := func(k string) int64 { return w.sys.Stats().Get(k) }

	// --- Home case: recipient logged in at their primary host. ---
	// The sub-group head is s2 but the login was recorded at s1 (nearest to
	// ha), so the depositing server cannot use its fast path: it must probe
	// the primary host — and the probe finding the user ends the protocol.
	home := pickUserWithHead(t, w, s2)
	ah := mustAgent(t, w.sys, home)
	if err := ah.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	c0, p0, h0, r0 := get("consultations"), get("notify_probe_primary"), get("notify_home"), get("notify_roaming")
	if err := w.bob.Send([]names.Name{home}, "home", "b"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if d := get("consultations") - c0; d != 0 {
		t.Errorf("home delivery: %d consultations, want exactly 0", d)
	}
	if d := get("notify_probe_primary") - p0; d != 1 {
		t.Errorf("home delivery: %d probes, want exactly 1", d)
	}
	if d := get("notify_home") - h0; d != 1 {
		t.Errorf("home delivery: %d home notifications, want exactly 1", d)
	}
	if d := get("notify_roaming") - r0; d != 0 {
		t.Errorf("home delivery: %d roaming alerts, want exactly 0", d)
	}

	// --- Roaming case: recipient away from their primary host. ---
	// The head is s1; the roamer logs in at s2 (nearest to hc). The deposit
	// at s1 probes ha (miss), consults s2 (hit), and alerts — exactly one
	// consultation of overhead, never more, never on the home path.
	roam := pickUserWithHead(t, w, s1)
	ar := mustAgent(t, w.sys, roam)
	if err := ar.MoveTo(hc); err != nil {
		t.Fatal(err)
	}
	if err := ar.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	c0, p0, h0, r0 = get("consultations"), get("notify_probe_primary"), get("notify_home"), get("notify_roaming")
	if err := w.bob.Send([]names.Name{roam}, "roam", "b"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if d := get("consultations") - c0; d != 1 {
		t.Errorf("roaming delivery: %d consultations, want exactly 1", d)
	}
	if d := get("notify_probe_primary") - p0; d != 1 {
		t.Errorf("roaming delivery: %d probes, want exactly 1", d)
	}
	if d := get("notify_home") - h0; d != 0 {
		t.Errorf("roaming delivery: %d home notifications, want exactly 0", d)
	}
	if d := get("notify_roaming") - r0; d != 1 {
		t.Errorf("roaming delivery: %d roaming alerts, want exactly 1", d)
	}
	// Exactly-once across the roam: one copy, wherever the user is.
	if got := ar.GetMail(); len(got) != 1 {
		t.Fatalf("roamed recipient GetMail = %d messages, want 1", len(got))
	}
}
