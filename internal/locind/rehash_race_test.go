package locind

import (
	"fmt"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// A three-server region with a spare wired in for the add-server case.
const (
	t1 graph.NodeID = 201
	t2 graph.NodeID = 202
	t3 graph.NodeID = 203
	t4 graph.NodeID = 204 // spare, not in the initial rotation
)

type raceWorld struct {
	sched *sim.Scheduler
	net   *netsim.Network
	sys   *System
}

func newRaceWorld(t *testing.T) *raceWorld {
	t.Helper()
	g := graph.New()
	for _, n := range []struct {
		id    graph.NodeID
		label string
		kind  graph.Kind
	}{
		{ha, "ha", graph.KindHost}, {hb, "hb", graph.KindHost}, {hc, "hc", graph.KindHost},
		{t1, "T1", graph.KindServer}, {t2, "T2", graph.KindServer},
		{t3, "T3", graph.KindServer}, {t4, "T4", graph.KindServer},
	} {
		g.MustAddNode(graph.Node{ID: n.id, Label: n.label, Region: "R1", Kind: n.kind})
	}
	g.MustAddEdge(ha, t1, 1)
	g.MustAddEdge(hb, t2, 1)
	g.MustAddEdge(hc, t3, 1)
	g.MustAddEdge(t1, t2, 1)
	g.MustAddEdge(t2, t3, 1)
	g.MustAddEdge(t3, t1, 2)
	g.MustAddEdge(t4, t1, 1)

	sched := sim.New(41)
	net := netsim.New(sched, g)
	sys, err := NewSystem(Config{
		Region: "R1", Net: net,
		Servers:   []graph.NodeID{t1, t2, t3},
		Subgroups: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []struct {
		tok string
		id  graph.NodeID
	}{{"ha", ha}, {"hb", hb}, {"hc", hc}} {
		if _, err := sys.AddHost(h.tok, h.id); err != nil {
			t.Fatal(err)
		}
	}
	return &raceWorld{sched: sched, net: net, sys: sys}
}

// TestRehashRacesInFlightDeliveries is the reconfiguration table test: every
// way the sub-group map can change — modulus up, modulus down, a server
// joining, a server leaving — races in-flight deliveries and mid-flight
// roams, and afterwards every user's resolution is consistent (their
// authority list serves their mail) and delivery is exactly-once.
func TestRehashRacesInFlightDeliveries(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, w *raceWorld)
	}{
		{"rehash-up", func(t *testing.T, w *raceWorld) {
			// 7 is coprime to the 3 servers, so sub-groups genuinely remap.
			if _, err := w.sys.Rehash(7); err != nil {
				t.Fatal(err)
			}
		}},
		{"rehash-down", func(t *testing.T, w *raceWorld) {
			if _, err := w.sys.Rehash(4); err != nil {
				t.Fatal(err)
			}
		}},
		{"add-server", func(t *testing.T, w *raceWorld) {
			if err := w.sys.AddServer(t4); err != nil {
				t.Fatal(err)
			}
		}},
		{"remove-server", func(t *testing.T, w *raceWorld) {
			if _, err := w.sys.RemoveServer(t1); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newRaceWorld(t)
			sender := mustAgent(t, w.sys, names.MustParse("R1.hb.sender"))

			const users = 8
			agents := make([]*Agent, users)
			uname := make([]names.Name, users)
			hostOf := []string{"ha", "hb"}
			for i := range agents {
				uname[i] = names.Name{Region: "R1", Host: hostOf[i%2], User: fmt.Sprintf("u%d", i)}
				agents[i] = mustAgent(t, w.sys, uname[i])
				if i%3 == 0 {
					if err := agents[i].Login(); err != nil {
						t.Fatal(err)
					}
				}
			}
			w.sched.Run()

			// Wave 1 leaves deliveries in flight when the mutation lands.
			for i := range agents {
				if err := sender.Send([]names.Name{uname[i]}, "w1", "body"); err != nil {
					t.Fatal(err)
				}
			}
			w.sched.RunFor(2 * sim.Unit) // mid-flight: acks and deposits pending

			// Some users roam mid-reconfiguration.
			for i := 0; i < users; i += 2 {
				if err := agents[i].MoveTo(hc); err != nil {
					t.Fatal(err)
				}
				_ = agents[i].Login()
			}
			tc.mutate(t, w)

			// Wave 2 is addressed under the new map while wave 1 still drains.
			for i := range agents {
				if err := sender.Send([]names.Name{uname[i]}, "w2", "body"); err != nil {
					t.Fatal(err)
				}
			}
			w.sched.RunFor(3 * sim.Unit)
			for i := 1; i < users; i += 2 {
				if err := agents[i].MoveTo(hc); err != nil {
					t.Fatal(err)
				}
				_ = agents[i].Login()
			}
			w.sched.Run()

			// Resolution consistency: every user's authority list exists, has
			// no removed server, and holding servers are within the list.
			live := make(map[graph.NodeID]bool)
			for _, id := range w.sys.Servers() {
				live[id] = true
			}
			for i := range agents {
				auth := w.sys.AuthorityFor(uname[i])
				if len(auth) == 0 {
					t.Fatalf("%v resolves to an empty authority list", uname[i])
				}
				for _, id := range auth {
					if !live[id] {
						t.Fatalf("%v's authority %d not in rotation %v", uname[i], id, w.sys.Servers())
					}
				}
			}

			// Exactly-once: both waves arrive, nothing duplicated, nothing
			// stranded on an evacuated server.
			for i := range agents {
				agents[i].GetMail()
				agents[i].GetMail() // second poll must find nothing new
				if got := len(agents[i].Inbox()); got != 2 {
					t.Errorf("%s: u%d received %d copies, want exactly 2", tc.name, i, got)
				}
				if d := agents[i].Duplicates(); d != 0 {
					// Cross-server duplicate suppression happens inside the
					// agent; what matters is the inbox, but surface the count.
					t.Logf("%s: u%d suppressed %d duplicate copies", tc.name, i, d)
				}
			}
		})
	}
}

// TestRehashRoundTripKeepsMail pins the evacuation suppression-memory fix:
// a message evacuated off its authority server by one rehash and routed back
// by the next must be re-deposited there, not swallowed as a duplicate by
// the server's seen-set. (Needs ≥4 servers: with 3 servers and 2-entry
// authority lists, no pair of moduli can move a mailbox away and back.)
func TestRehashRoundTripKeepsMail(t *testing.T) {
	w := newRaceWorld(t)
	if err := w.sys.AddServer(t4); err != nil {
		t.Fatal(err)
	}

	// Probe for a user whose head under modulus 6 is excluded from their
	// authority list under modulus 7 AND vice versa — the round-trip shape.
	authUnder := func(k int, n names.Name) []graph.NodeID {
		if _, err := w.sys.Rehash(k); err != nil {
			t.Fatal(err)
		}
		return w.sys.AuthorityFor(n)
	}
	contains := func(list []graph.NodeID, id graph.NodeID) bool {
		for _, x := range list {
			if x == id {
				return true
			}
		}
		return false
	}
	var victim names.Name
	for i := 0; i < 200; i++ {
		n := names.Name{Region: "R1", Host: "ha", User: fmt.Sprintf("rt%d", i)}
		a6, a7 := authUnder(6, n), authUnder(7, n)
		if !contains(a7, a6[0]) && !contains(a6, a7[0]) {
			victim = n
			break
		}
	}
	if victim.User == "" {
		t.Fatal("no round-trip candidate among 200 users")
	}
	if _, err := w.sys.Rehash(6); err != nil {
		t.Fatal(err)
	}

	sender := mustAgent(t, w.sys, names.MustParse("R1.hb.sender"))
	rcpt := mustAgent(t, w.sys, victim)
	if err := sender.Send([]names.Name{victim}, "rt", "body"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()

	if moved, err := w.sys.Rehash(7); err != nil || moved != 1 {
		t.Fatalf("rehash to 7: moved=%d err=%v, want the one mailbox to move", moved, err)
	}
	w.sched.Run()
	if moved, err := w.sys.Rehash(6); err != nil || moved != 1 {
		t.Fatalf("rehash back to 6: moved=%d err=%v, want the mailbox to move back", moved, err)
	}
	w.sched.Run()

	if got := rcpt.GetMail(); len(got) != 1 {
		t.Fatalf("after round-trip rehash GetMail = %d messages, want 1", len(got))
	}
}
