package locind

import (
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// Server is one region server of the location-independent design. It
// resolves recipients by hash sub-group, deposits mail at the sub-group's
// first active authority server, and notifies recipients at their current
// location using the probe-primary-then-consult procedure of §3.2.2c.
type Server struct {
	id  graph.NodeID
	sys *System

	mailboxes map[names.Name]*mail.Mailbox
	// locations is this server's own knowledge of current user locations
	// ("the connecting server keeps the information about the current
	// location of this user").
	locations map[names.Name]graph.NodeID

	nextSeq   uint64
	nextToken uint64
	pending   map[uint64]*pendingDeposit
	notifying map[uint64]*pendingNotify
	deposits  int64
}

type pendingDeposit struct {
	msg        mail.Message
	recipient  names.Name
	candidates []graph.NodeID
	next       int
	timer      *sim.Event
	forward    bool // true: inter-region Forward, false: intra-region Deposit
}

// pendingNotify tracks the notification state machine: probe the primary
// host, then consult the other servers in order, then alert the located
// host.
type pendingNotify struct {
	user    names.Name
	msgID   mail.MessageID
	consult []graph.NodeID // servers still to ask
	started sim.Time       // when the notification began, for lat_roam_resolve
}

// ID returns the server's node.
func (p *Server) ID() graph.NodeID { return p.id }

// MailboxLen reports buffered messages for a user on this server.
func (p *Server) MailboxLen(user names.Name) int {
	if mb, ok := p.mailboxes[user]; ok {
		return mb.Len()
	}
	return 0
}

// CheckMail drains the user's mailbox here (the retrieval the connecting
// server performs on the user's behalf).
func (p *Server) CheckMail(user names.Name) ([]mail.Stored, error) {
	if !p.sys.net.IsUp(p.id) {
		return nil, ErrNoServerUp
	}
	mb, ok := p.mailboxes[user]
	if !ok {
		return nil, nil
	}
	return mb.Drain(), nil
}

// KnownLocation returns this server's record of a user's current host.
func (p *Server) KnownLocation(user names.Name) (graph.NodeID, bool) {
	h, ok := p.locations[user]
	return h, ok
}

// Receive implements netsim.Handler.
func (p *Server) Receive(env netsim.Envelope) {
	switch m := env.Payload.(type) {
	case Submit:
		p.onSubmit(m)
	case Deposit:
		p.onDeposit(m)
	case DepositAck:
		p.onDepositAck(m)
	case LoginMsg:
		p.onLogin(m)
	case LogoutMsg:
		delete(p.locations, m.User)
	case ProbeReply:
		p.onProbeReply(m)
	case LocQuery:
		p.onLocQuery(m, env.From)
	case LocReply:
		p.onLocReply(m)
	case MailboxTransfer:
		p.onMailboxTransfer(m)
	case Forward:
		p.onForward(m)
	case ForwardAck:
		p.onDepositAck(DepositAck{Token: m.Token})
	default:
		p.sys.stats.Inc("unknown_payload")
	}
}

func (p *Server) onSubmit(m Submit) { p.submit(m) }

// Accept is the in-process submission entry point used by workload
// harnesses: it commits the message exactly as a Submit payload would (same
// routing, same counters) and returns the assigned ID so the caller can
// ledger the submission at its commit point. A down server rejects without
// side effects.
func (p *Server) Accept(from names.Name, to []names.Name, subject, body string) (mail.MessageID, error) {
	if !p.sys.net.IsUp(p.id) {
		return mail.MessageID{}, ErrNoServerUp
	}
	id := p.submit(Submit{From: from, To: to, Subject: subject, Body: body})
	return id, nil
}

func (p *Server) submit(m Submit) mail.MessageID {
	p.nextSeq++
	msg := mail.Message{
		ID:          mail.MessageID{Node: p.id, Seq: p.nextSeq},
		From:        m.From,
		To:          append([]names.Name(nil), m.To...),
		Subject:     m.Subject,
		Body:        m.Body,
		SubmittedAt: p.sys.net.Scheduler().Now(),
	}
	p.sys.stats.Inc("submissions")
	if p.sys.trace != nil {
		p.sys.trace.Stamp(msg.ID.String(), obs.StageSubmit, serverWhere(p.id))
	}
	for _, rcpt := range msg.To {
		if rcpt.Region != p.sys.region {
			p.forwardRemote(msg, rcpt)
			continue
		}
		p.route(msg, rcpt)
	}
	return msg.ID
}

// route deposits at the recipient's sub-group authority list.
func (p *Server) route(msg mail.Message, rcpt names.Name) {
	auth := p.sys.AuthorityFor(rcpt)
	for _, cand := range auth {
		if !p.sys.net.IsUp(cand) {
			continue
		}
		if cand == p.id {
			p.depositLocal(msg, rcpt)
			return
		}
		break
	}
	p.nextToken++
	tok := p.nextToken
	p.pending[tok] = &pendingDeposit{msg: msg, recipient: rcpt, candidates: auth}
	p.dispatch(tok)
}

func (p *Server) dispatch(tok uint64) {
	pd, ok := p.pending[tok]
	if !ok || !p.sys.net.IsUp(p.id) {
		return
	}
	if pd.timer != nil {
		p.sys.net.Scheduler().Cancel(pd.timer)
		pd.timer = nil
	}
	n := len(pd.candidates)
	target := pd.candidates[pd.next%n]
	for i := 0; i < n; i++ {
		cand := pd.candidates[(pd.next+i)%n]
		if p.sys.net.IsUp(cand) {
			target = cand
			pd.next = (pd.next + i + 1) % n
			break
		}
	}
	var payload any
	if pd.forward {
		p.sys.stats.Inc("forwards_out")
		payload = Forward{Msg: pd.msg, Recipient: pd.recipient, Origin: p.id, Token: tok}
	} else {
		p.sys.stats.Inc("deposit_transfers")
		payload = Deposit{Msg: pd.msg, Recipient: pd.recipient, Origin: p.id, Token: tok}
	}
	_ = p.sys.net.Send(p.id, target, payload)
	pd.timer = p.sys.net.Scheduler().After(p.sys.ackTimeout, func() {
		if _, still := p.pending[tok]; still && p.sys.net.IsUp(p.id) {
			p.sys.stats.Inc("deposit_retries")
			p.dispatch(tok)
		}
	})
}

// forwardRemote relays a copy toward the recipient's region through the
// federation, or counts it unroutable for a standalone system.
func (p *Server) forwardRemote(msg mail.Message, rcpt names.Name) {
	var candidates []graph.NodeID
	if p.sys.fed != nil {
		candidates = p.sys.fed.serversOf(rcpt.Region)
	}
	if len(candidates) == 0 {
		p.sys.stats.Inc("nonlocal_recipients")
		return
	}
	p.nextToken++
	tok := p.nextToken
	p.pending[tok] = &pendingDeposit{msg: msg, recipient: rcpt, candidates: candidates, forward: true}
	p.dispatch(tok)
}

// onForward accepts an inter-region relay: ack the origin, then resolve and
// deliver locally ("[the remote server] will assume the responsibility of
// resolving the name and delivering the messages", §3.2.2b).
func (p *Server) onForward(m Forward) {
	_ = p.sys.net.Send(p.id, m.Origin, ForwardAck{Token: m.Token})
	p.sys.stats.Inc("forwards_in")
	if m.Recipient.Region != p.sys.region {
		p.forwardRemote(m.Msg, m.Recipient) // stale routing: pass it on
		return
	}
	p.route(m.Msg, m.Recipient)
}

func (p *Server) onDeposit(m Deposit) {
	_ = p.sys.net.Send(p.id, m.Origin, DepositAck{Token: m.Token})
	p.depositLocal(m.Msg, m.Recipient)
}

func (p *Server) onDepositAck(m DepositAck) {
	if pd, ok := p.pending[m.Token]; ok {
		if pd.timer != nil {
			p.sys.net.Scheduler().Cancel(pd.timer)
		}
		delete(p.pending, m.Token)
	}
}

func (p *Server) mailbox(user names.Name) *mail.Mailbox {
	mb, ok := p.mailboxes[user]
	if !ok {
		mb = mail.NewMailbox(user)
		p.mailboxes[user] = mb
	}
	return mb
}

func (p *Server) depositLocal(msg mail.Message, rcpt names.Name) {
	// Stale-authority guard: a rehash or server removal may have raced this
	// deposit while it was in flight. A server no longer on the recipient's
	// authority list must bounce the message back into rotation — buffering
	// it here would strand it where no retrieval will look.
	member := false
	for _, a := range p.sys.AuthorityFor(rcpt) {
		if a == p.id {
			member = true
			break
		}
	}
	if !member {
		p.sys.stats.Inc("deposit_reroutes")
		p.route(msg, rcpt)
		return
	}
	if !p.mailbox(rcpt).Deposit(msg, p.sys.net.Scheduler().Now()) {
		p.sys.stats.Inc("duplicate_deposits")
		return
	}
	p.sys.stats.Inc("deposits")
	p.deposits++
	if p.sys.trace != nil {
		p.sys.trace.Stamp(msg.ID.String(), obs.StageDeposit, serverWhere(p.id))
	}
	p.notify(rcpt, msg.ID)
}

// Deposits returns how many fresh messages this server has buffered over
// its lifetime — a per-server load signal for the workload harness.
func (p *Server) Deposits() int64 { return p.deposits }

// notify runs §3.2.2c: "from the user name, the primary location of the
// user can be obtained. The server can send an alert signal to the user if
// he logs on to his primary location. If the user is not at his primary
// location, the server has to consult with other local servers."
func (p *Server) notify(user names.Name, id mail.MessageID) {
	// Connecting-server fast path: this server saw the login itself.
	if host, ok := p.locations[user]; ok {
		p.sys.stats.Inc("notify_known")
		_ = p.sys.net.Send(p.id, host, Alert{User: user, ID: id, Server: p.id})
		return
	}
	primary, err := p.sys.PrimaryHost(user)
	if err != nil {
		p.sys.stats.Inc("notify_unknown_host")
		return
	}
	p.nextToken++
	tok := p.nextToken
	p.notifying[tok] = &pendingNotify{
		user: user, msgID: id,
		consult: p.sys.otherServers(p.id),
		started: p.sys.net.Scheduler().Now(),
	}
	p.sys.stats.Inc("notify_probe_primary")
	_ = p.sys.net.Send(p.id, primary, NotifyProbe{User: user, ID: id, Server: p.id, Token: tok})
}

func (p *Server) onProbeReply(m ProbeReply) {
	pn, ok := p.notifying[m.Token]
	if !ok {
		return
	}
	if m.Found {
		// User was at their primary location; the probe already alerted
		// them. Zero extra traffic — the home case of experiment E7.
		p.sys.stats.Inc("notify_home")
		delete(p.notifying, m.Token)
		return
	}
	p.consultNext(m.Token, pn)
}

// consultNext asks the next live server for the user's location.
func (p *Server) consultNext(tok uint64, pn *pendingNotify) {
	for len(pn.consult) > 0 {
		next := pn.consult[0]
		pn.consult = pn.consult[1:]
		if !p.sys.net.IsUp(next) {
			continue
		}
		p.sys.stats.Inc("consultations")
		if p.sys.onOverhead != nil {
			p.sys.onOverhead(pn.user, "consult")
		}
		_ = p.sys.net.Send(p.id, next, LocQuery{User: pn.user, From: p.id, Token: tok})
		return
	}
	// Nobody knows: the user is offline; mail waits in the mailbox.
	p.sys.stats.Inc("notify_offline")
	delete(p.notifying, tok)
}

func (p *Server) onLocQuery(m LocQuery, from graph.NodeID) {
	host, known := p.locations[m.User]
	_ = p.sys.net.Send(p.id, m.From, LocReply{User: m.User, Host: host, Known: known, Token: m.Token})
}

func (p *Server) onLocReply(m LocReply) {
	pn, ok := p.notifying[m.Token]
	if !ok {
		return
	}
	if !m.Known {
		p.consultNext(m.Token, pn)
		return
	}
	p.sys.stats.Inc("notify_roaming")
	if p.sys.onOverhead != nil {
		p.sys.onOverhead(pn.user, "roam_alert")
	}
	elapsed := p.sys.net.Scheduler().Now() - pn.started
	p.sys.stats.Histogram("lat_roam_resolve", nil).Observe(float64(elapsed))
	_ = p.sys.net.Send(p.id, m.Host, Alert{User: pn.user, ID: pn.msgID, Server: p.id})
	delete(p.notifying, m.Token)
}

func (p *Server) onLogin(m LoginMsg) {
	p.locations[m.User] = m.Host
	p.sys.stats.Inc("logins")
	// "Notify him as soon as he is connected": buffered mail here triggers
	// an immediate alert.
	if mb, ok := p.mailboxes[m.User]; ok && mb.Len() > 0 {
		_ = p.sys.net.Send(p.id, m.Host, Alert{User: m.User, ID: mb.Peek()[0].ID, Server: p.id})
	}
}

// Recovered implements netsim.Recoverer: coming back up, the server
// re-dispatches every pending deposit. While it was down its retry timers
// refused to re-arm (dispatch is a no-op on a down origin) and any acks in
// flight to it were dropped, so without this kick a message accepted just
// before the crash would strand in the pending table forever.
func (p *Server) Recovered(at sim.Time) {
	toks := make([]uint64, 0, len(p.pending))
	for tok := range p.pending {
		toks = append(toks, tok)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		p.sys.stats.Inc("recovery_redispatches")
		p.dispatch(tok)
	}
}

func (p *Server) onMailboxTransfer(m MailboxTransfer) {
	mb := p.mailbox(m.User)
	now := p.sys.net.Scheduler().Now()
	for _, s := range m.Msgs {
		if mb.Deposit(s.Message, now) {
			p.sys.stats.Inc("rehash_messages_moved")
		}
	}
}

// serverWhere labels a server node for trace stamps.
func serverWhere(id graph.NodeID) string { return fmt.Sprintf("s%d", id) }

// Users returns the users with mailboxes on this server, sorted.
func (p *Server) Users() []names.Name {
	out := make([]names.Name, 0, len(p.mailboxes))
	for u := range p.mailboxes {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// PendingLen reports deposits awaiting acks on this server (ledger size).
func (p *Server) PendingLen() int { return len(p.pending) }
