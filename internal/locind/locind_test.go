package locind

import (
	"math/rand"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const (
	ha graph.NodeID = 1 // host "ha"
	hb graph.NodeID = 2 // host "hb"
	hc graph.NodeID = 3 // host "hc"
	s1 graph.NodeID = 101
	s2 graph.NodeID = 102
)

var (
	uAlice = names.MustParse("R1.ha.alice")
	uBob   = names.MustParse("R1.hb.bob")
)

type world struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	sys    *System
	alice  *Agent
	bob    *Agent
	agents map[string]*Agent
}

// newWorld: hosts ha,hb,hc and servers s1,s2 in one region, all links 1.
func newWorld(t *testing.T, subgroups int) *world {
	t.Helper()
	g := graph.New()
	for _, n := range []struct {
		id    graph.NodeID
		label string
		kind  graph.Kind
	}{
		{ha, "ha", graph.KindHost}, {hb, "hb", graph.KindHost}, {hc, "hc", graph.KindHost},
		{s1, "S1", graph.KindServer}, {s2, "S2", graph.KindServer},
	} {
		g.MustAddNode(graph.Node{ID: n.id, Label: n.label, Region: "R1", Kind: n.kind})
	}
	g.MustAddEdge(ha, s1, 1)
	g.MustAddEdge(hb, s1, 2)
	g.MustAddEdge(hc, s2, 1)
	g.MustAddEdge(s1, s2, 1)

	sched := sim.New(13)
	net := netsim.New(sched, g)
	sys, err := NewSystem(Config{
		Region: "R1", Net: net,
		Servers:   []graph.NodeID{s1, s2},
		Subgroups: subgroups,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []struct {
		tok string
		id  graph.NodeID
	}{{"ha", ha}, {"hb", hb}, {"hc", hc}} {
		if _, err := sys.AddHost(h.tok, h.id); err != nil {
			t.Fatal(err)
		}
	}
	w := &world{sched: sched, net: net, sys: sys, agents: make(map[string]*Agent)}
	w.alice = mustAgent(t, sys, uAlice)
	w.bob = mustAgent(t, sys, uBob)
	return w
}

func mustAgent(t *testing.T, sys *System, u names.Name) *Agent {
	t.Helper()
	a, err := sys.NewAgent(u)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("nil net accepted")
	}
	g := graph.New()
	net := netsim.New(sim.New(1), g)
	if _, err := NewSystem(Config{Net: net, Region: "R1"}); err != ErrNoServers {
		t.Errorf("no servers err = %v", err)
	}
}

func TestAuthorityStableUnderRoaming(t *testing.T) {
	w := newWorld(t, 4)
	home := w.sys.AuthorityFor(uAlice)
	roamed := w.sys.AuthorityFor(names.Name{Region: "R1", Host: "hc", User: "alice"})
	if len(home) == 0 || len(home) != len(roamed) {
		t.Fatalf("authority lists: %v vs %v", home, roamed)
	}
	for i := range home {
		if home[i] != roamed[i] {
			t.Errorf("authority changed under roaming: %v vs %v", home, roamed)
		}
	}
}

func TestSendDeliverRetrieveAtPrimary(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.bob.Send([]names.Name{uAlice}, "hello", "body"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	got := w.alice.GetMail()
	if len(got) != 1 || got[0].Subject != "hello" {
		t.Fatalf("GetMail = %v", got)
	}
	// Second retrieval finds nothing new.
	if again := w.alice.GetMail(); len(again) != 0 {
		t.Errorf("duplicate retrieval: %v", again)
	}
}

func TestNotifyAtPrimaryNoConsultation(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.alice.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if err := w.bob.Send([]names.Name{uAlice}, "ping", "b"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if n := w.alice.Notifications(); len(n) != 1 {
		t.Fatalf("notifications = %v", n)
	}
	// The home case must incur zero consultations (E7's claim: "overhead
	// is only incurred if a user moves").
	if got := w.sys.Stats().Get("consultations"); got != 0 {
		t.Errorf("consultations = %d, want 0 for home user", got)
	}
}

func TestNotifyRoamingConsultsServers(t *testing.T) {
	w := newWorld(t, 4)
	// Alice roams to hc (near S2) and logs in there; S2 records her.
	if err := w.alice.MoveTo(hc); err != nil {
		t.Fatal(err)
	}
	if err := w.alice.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if w.alice.AtPrimary() {
		t.Fatal("agent still at primary")
	}
	if err := w.bob.Send([]names.Name{uAlice}, "find-me", "b"); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if n := w.alice.Notifications(); len(n) != 1 {
		t.Fatalf("roaming alice got %d notifications, want 1", len(n))
	}
	// Mail is still retrievable from the (unchanged) sub-group servers.
	if got := w.alice.GetMail(); len(got) != 1 {
		t.Errorf("roaming GetMail = %v", got)
	}
}

func TestRoamingOverheadOnlyWhenRoaming(t *testing.T) {
	w := newWorld(t, 4)
	w.alice.Login()
	w.sched.Run()
	w.bob.Send([]names.Name{uAlice}, "one", "b")
	w.sched.Run()
	baseConsult := w.sys.Stats().Get("consultations")

	w.alice.MoveTo(hc)
	w.alice.Login()
	w.sched.Run()
	w.bob.Send([]names.Name{uAlice}, "two", "b")
	w.sched.Run()
	roamConsult := w.sys.Stats().Get("consultations")

	if baseConsult != 0 {
		t.Errorf("home delivery consulted %d times", baseConsult)
	}
	if roamConsult == 0 && w.sys.Stats().Get("notify_known") <= 1 {
		t.Error("roaming delivery incurred no tracking traffic at all")
	}
}

func TestOfflineUserMailWaits(t *testing.T) {
	w := newWorld(t, 4)
	// Nobody logs in; mail must wait and no notification is sent.
	w.bob.Send([]names.Name{uAlice}, "wait", "b")
	w.sched.Run()
	if got := w.sys.Stats().Get("notify_offline"); got != 1 {
		t.Errorf("notify_offline = %d, want 1", got)
	}
	if got := w.alice.GetMail(); len(got) != 1 {
		t.Errorf("offline user could not retrieve mail: %v", got)
	}
}

func TestLoginAlertsBufferedMail(t *testing.T) {
	w := newWorld(t, 4)
	w.bob.Send([]names.Name{uAlice}, "buffered", "b")
	w.sched.Run()
	// Alice logs in at the server holding her mailbox (her sub-group
	// authority head) — the alert must fire on login.
	auth := w.sys.AuthorityFor(uAlice)
	srv, _ := w.sys.Server(auth[0])
	if srv.MailboxLen(uAlice) != 1 {
		t.Fatalf("mail not at authority head")
	}
	// Make alice's nearest server the authority head by moving her next to
	// it if needed; with our topology s1 is nearest to ha, s2 to hc.
	if auth[0] == s2 {
		w.alice.MoveTo(hc)
	}
	w.alice.Login()
	w.sched.Run()
	if len(w.alice.Notifications()) == 0 {
		t.Error("no alert on login with buffered mail")
	}
}

func TestDepositSkipsDownServer(t *testing.T) {
	w := newWorld(t, 4)
	auth := w.sys.AuthorityFor(uAlice)
	if len(auth) < 2 {
		t.Fatalf("authority list too short: %v", auth)
	}
	w.net.Crash(auth[0])
	w.bob.Send([]names.Name{uAlice}, "failover", "b")
	w.sched.Run()
	backup, _ := w.sys.Server(auth[1])
	if backup.MailboxLen(uAlice) != 1 {
		t.Errorf("mail not at backup authority server")
	}
	w.net.Recover(auth[0])
	if got := w.alice.GetMail(); len(got) != 1 {
		t.Errorf("GetMail after failover = %v", got)
	}
}

func TestRehashMigratesMailboxes(t *testing.T) {
	w := newWorld(t, 4)
	w.bob.Send([]names.Name{uAlice}, "m1", "b")
	w.bob.Send([]names.Name{uBob}, "m2", "b")
	w.sched.Run()
	// Find a modulus under which alice's authority head changes.
	oldHead := w.sys.AuthorityFor(uAlice)[0]
	newK := -1
	for k := 2; k < 12; k++ {
		g := uAlice.Subgroup(k)
		if w.sys.servers[g%len(w.sys.servers)] != oldHead {
			newK = k
			break
		}
	}
	if newK == -1 {
		t.Skip("no modulus changes alice's head server; hash degenerate")
	}
	// Force single-entry authority lists so a head change means migration.
	w.sys.listLen = 1
	if _, err := w.sys.Rehash(w.sys.subgroups); err != nil { // normalize under listLen=1
		t.Fatal(err)
	}
	w.sched.Run()
	moved, err := w.sys.Rehash(newK)
	if err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if moved == 0 {
		t.Error("rehash moved no mailboxes despite head change")
	}
	// No mail lost: alice still retrieves her message.
	if got := w.alice.GetMail(); len(got) != 1 {
		t.Errorf("after rehash GetMail = %v", got)
	}
	if _, err := w.sys.Rehash(0); err == nil {
		t.Error("invalid modulus accepted")
	}
}

func TestAddServerRehashes(t *testing.T) {
	w := newWorld(t, 4)
	// Add a third server node wired into the region.
	s3 := graph.NodeID(103)
	// The network topology is cloned at netsim construction; extend the
	// network's own copy so routes exist.
	w.net.Topology().MustAddNode(graph.Node{ID: s3, Label: "S3", Region: "R1", Kind: graph.KindServer})
	if err := w.net.RestoreLink(s3, s2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.sys.AddServer(s3); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if err := w.sys.AddServer(s3); err == nil {
		t.Error("duplicate AddServer accepted")
	}
	// Some sub-group must now be served by s3.
	found := false
	for g := 0; g < w.sys.Subgroups(); g++ {
		u := names.Name{Region: "R1", Host: "ha", User: "probe"}
		_ = u
		if w.sys.servers[g%len(w.sys.servers)] == s3 {
			found = true
		}
	}
	if !found {
		t.Error("no sub-group maps to the new server")
	}
}

func TestMoveToUnknownHost(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.alice.MoveTo(9999); err == nil {
		t.Error("MoveTo unknown host accepted")
	}
}

func TestNewAgentValidation(t *testing.T) {
	w := newWorld(t, 4)
	if _, err := w.sys.NewAgent(names.MustParse("R9.ha.eve")); err == nil {
		t.Error("wrong-region agent accepted")
	}
	if _, err := w.sys.NewAgent(names.MustParse("R1.nosuch.eve")); err == nil {
		t.Error("unknown-primary agent accepted")
	}
}

func TestNoServerUp(t *testing.T) {
	w := newWorld(t, 4)
	w.net.Crash(s1)
	w.net.Crash(s2)
	if err := w.alice.Login(); err != ErrNoServerUp {
		t.Errorf("Login err = %v, want ErrNoServerUp", err)
	}
	if err := w.alice.Send([]names.Name{uBob}, "s", "b"); err != ErrNoServerUp {
		t.Errorf("Send err = %v", err)
	}
}

func TestNonLocalRecipientCounted(t *testing.T) {
	w := newWorld(t, 4)
	w.bob.Send([]names.Name{names.MustParse("R9.h.x")}, "s", "b")
	w.sched.Run()
	if got := w.sys.Stats().Get("nonlocal_recipients"); got != 1 {
		t.Errorf("nonlocal_recipients = %d", got)
	}
}

func TestNearestServerPicksByCost(t *testing.T) {
	w := newWorld(t, 4)
	srv, err := w.sys.NearestServer(hc)
	if err != nil || srv != s2 {
		t.Errorf("NearestServer(hc) = %v, %v; want s2", srv, err)
	}
	w.net.Crash(s2)
	srv, err = w.sys.NearestServer(hc)
	if err != nil || srv != s1 {
		t.Errorf("NearestServer(hc) with s2 down = %v, %v; want s1", srv, err)
	}
}

func TestAccessors(t *testing.T) {
	w := newWorld(t, 4)
	if w.sys.Region() != "R1" {
		t.Errorf("Region = %q", w.sys.Region())
	}
	auth := w.sys.AuthorityFor(uAlice)
	srv, ok := w.sys.Server(auth[0])
	if !ok || srv.ID() != auth[0] {
		t.Errorf("Server/ID = %v, %v", srv, ok)
	}
	if w.alice.User() != uAlice {
		t.Errorf("User = %v", w.alice.User())
	}
	if w.alice.CurrentHost() != ha {
		t.Errorf("CurrentHost = %v", w.alice.CurrentHost())
	}
	if w.alice.Polls() != 0 || w.alice.Retrievals() != 0 {
		t.Error("fresh agent has nonzero counters")
	}
	if len(w.alice.Inbox()) != 0 {
		t.Error("fresh agent has inbox content")
	}
	h, _ := w.sys.AddHost("hz", 0) // can't register on node 0
	_ = h
}

func TestKnownLocationAndUsers(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.alice.Login(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	connecting, err := w.sys.NearestServer(ha)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := w.sys.Server(connecting)
	if loc, ok := srv.KnownLocation(uAlice); !ok || loc != ha {
		t.Errorf("KnownLocation = %v, %v", loc, ok)
	}
	// Logout clears the record.
	if err := w.alice.Logout(); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if _, ok := srv.KnownLocation(uAlice); ok {
		t.Error("location survives logout")
	}
	// Users lists mailbox owners.
	w.bob.Send([]names.Name{uAlice}, "m", "b")
	w.sched.Run()
	auth := w.sys.AuthorityFor(uAlice)
	head, _ := w.sys.Server(auth[0])
	users := head.Users()
	if len(users) != 1 || users[0] != uAlice {
		t.Errorf("Users = %v", users)
	}
	if head.MailboxLen(names.MustParse("R1.ha.ghost")) != 0 {
		t.Error("ghost mailbox nonzero")
	}
}

func TestDuplicateDepositSuppressed(t *testing.T) {
	w := newWorld(t, 4)
	auth := w.sys.AuthorityFor(uAlice)
	head, _ := w.sys.Server(auth[0])
	msg := mail.Message{ID: mail.MessageID{Node: 9, Seq: 1}, From: uBob, To: []names.Name{uAlice}}
	for i := 0; i < 2; i++ {
		if err := w.net.Send(hb, auth[0], Deposit{Msg: msg, Recipient: uAlice, Origin: hb, Token: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.sched.Run()
	if head.MailboxLen(uAlice) != 1 {
		t.Errorf("duplicate deposit stored: %d", head.MailboxLen(uAlice))
	}
	if w.sys.Stats().Get("duplicate_deposits") != 1 {
		t.Error("duplicate_deposits not counted")
	}
}

func TestCheckMailWhileDown(t *testing.T) {
	w := newWorld(t, 4)
	auth := w.sys.AuthorityFor(uAlice)
	head, _ := w.sys.Server(auth[0])
	w.net.Crash(auth[0])
	if _, err := head.CheckMail(uAlice); err == nil {
		t.Error("CheckMail on a down server succeeded")
	}
}

// twoRegionWorld builds two federated location-independent regions:
// R1 = {ha, hb; s1, s2}, R2 = {hx; s9}, joined s2-s9.
func twoRegionWorld(t *testing.T) (*sim.Scheduler, *netsim.Network, *Federation) {
	t.Helper()
	const (
		hx graph.NodeID = 9
		s9 graph.NodeID = 109
	)
	g := graph.New()
	for _, n := range []struct {
		id     graph.NodeID
		label  string
		region string
		kind   graph.Kind
	}{
		{ha, "ha", "R1", graph.KindHost}, {hb, "hb", "R1", graph.KindHost},
		{s1, "S1", "R1", graph.KindServer}, {s2, "S2", "R1", graph.KindServer},
		{hx, "hx", "R2", graph.KindHost}, {s9, "S9", "R2", graph.KindServer},
	} {
		g.MustAddNode(graph.Node{ID: n.id, Label: n.label, Region: n.region, Kind: n.kind})
	}
	g.MustAddEdge(ha, s1, 1)
	g.MustAddEdge(hb, s1, 2)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, s9, 3)
	g.MustAddEdge(hx, s9, 1)

	sched := sim.New(29)
	net := netsim.New(sched, g)
	fed := NewFederation()
	r1, err := NewSystem(Config{Region: "R1", Net: net, Servers: []graph.NodeID{s1, s2}, Subgroups: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSystem(Config{Region: "R2", Net: net, Servers: []graph.NodeID{s9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := fed.Add(r2); err != nil {
		t.Fatal(err)
	}
	if err := fed.Add(r1); err == nil {
		t.Fatal("duplicate federation Add accepted")
	}
	for _, h := range []struct {
		sys *System
		tok string
		id  graph.NodeID
	}{{r1, "ha", ha}, {r1, "hb", hb}, {r2, "hx", hx}} {
		if _, err := h.sys.AddHost(h.tok, h.id); err != nil {
			t.Fatal(err)
		}
	}
	return sched, net, fed
}

func TestFederatedCrossRegionDelivery(t *testing.T) {
	sched, _, fed := twoRegionWorld(t)
	r1, _ := fed.System("R1")
	r2, _ := fed.System("R2")
	sender, err := r1.NewAgent(names.MustParse("R1.ha.ann"))
	if err != nil {
		t.Fatal(err)
	}
	remote := names.MustParse("R2.hx.zed")
	rcpt, err := r2.NewAgent(remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send([]names.Name{remote}, "cross", "b"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	got := rcpt.GetMail()
	if len(got) != 1 || got[0].Subject != "cross" {
		t.Fatalf("cross-region GetMail = %v", got)
	}
	// The R1↔R2 round trip equals the ack timeout, so the first forward may
	// legitimately retry once; dedup keeps delivery exactly-once.
	if r1.Stats().Get("forwards_out") < 1 {
		t.Error("forwards_out not counted in R1")
	}
	if r2.Stats().Get("forwards_in") < 1 {
		t.Error("forwards_in not counted in R2")
	}
	if r2.Stats().Get("deposits") != 1 {
		t.Errorf("deposits = %d, want exactly 1 (dedup)", r2.Stats().Get("deposits"))
	}
	if r1.Stats().Get("nonlocal_recipients") != 0 {
		t.Error("federated send counted as unroutable")
	}
}

func TestFederatedForwardRetriesAcrossCrash(t *testing.T) {
	sched, net, fed := twoRegionWorld(t)
	r1, _ := fed.System("R1")
	r2, _ := fed.System("R2")
	sender, _ := r1.NewAgent(names.MustParse("R1.ha.ann"))
	remote := names.MustParse("R2.hx.zed")
	rcpt, _ := r2.NewAgent(remote)

	// R2's only server is down at send time; the forward retries until it
	// recovers.
	net.Crash(109)
	if err := sender.Send([]names.Name{remote}, "late", "b"); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(50 * sim.Unit)
	if len(rcpt.GetMail()) != 0 {
		t.Fatal("delivered while target region down")
	}
	net.Recover(109)
	sched.Run()
	if got := rcpt.GetMail(); len(got) != 1 {
		t.Fatalf("after recovery GetMail = %v", got)
	}
}

func TestFederatedUnknownRegionStillCounted(t *testing.T) {
	sched, _, fed := twoRegionWorld(t)
	r1, _ := fed.System("R1")
	sender, _ := r1.NewAgent(names.MustParse("R1.ha.ann"))
	if err := sender.Send([]names.Name{names.MustParse("R9.h.x")}, "void", "b"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if r1.Stats().Get("nonlocal_recipients") != 1 {
		t.Error("unknown region not counted")
	}
	if _, ok := fed.System("R9"); ok {
		t.Error("phantom region")
	}
}

func TestFederatedRoamingRecipient(t *testing.T) {
	sched, _, fed := twoRegionWorld(t)
	r1, _ := fed.System("R1")
	r2, _ := fed.System("R2")
	sender, _ := r2.NewAgent(names.MustParse("R2.hx.zed"))
	roamer := names.MustParse("R1.ha.ann")
	a, _ := r1.NewAgent(roamer)
	// Ann roams within R1 and logs in; the cross-region message still
	// reaches her current location's alert path.
	if err := a.MoveTo(hb); err != nil {
		t.Fatal(err)
	}
	if err := a.Login(); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if err := sender.Send([]names.Name{roamer}, "find", "b"); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(a.Notifications()) != 1 {
		t.Errorf("roaming recipient notifications = %v", a.Notifications())
	}
	if got := a.GetMail(); len(got) != 1 {
		t.Errorf("roaming recipient GetMail = %v", got)
	}
}

// Randomized system property: under random roaming, login churn, and server
// failures (one server always up), every submitted message is eventually
// retrieved exactly once.
func TestRandomizedRoamingNoLoss(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		w := newWorld(t, 6)
		rng := newRand(seed)
		hostsAll := []graph.NodeID{ha, hb, hc}
		sent := 0
		for round := 0; round < 80; round++ {
			// Churn: at most one of the two servers down at a time.
			switch rng.Intn(3) {
			case 0:
				w.net.Crash(s1)
				w.net.Recover(s2)
			case 1:
				w.net.Recover(s1)
				w.net.Crash(s2)
			default:
				w.net.Recover(s1)
				w.net.Recover(s2)
			}
			// Alice roams sometimes.
			if rng.Intn(4) == 0 {
				if err := w.alice.MoveTo(hostsAll[rng.Intn(len(hostsAll))]); err != nil {
					t.Fatal(err)
				}
				_ = w.alice.Login()
			}
			if err := w.bob.Send([]names.Name{uAlice}, "r", "b"); err == nil {
				sent++
			}
			w.sched.RunFor(30 * sim.Unit)
			if rng.Intn(2) == 0 {
				w.alice.GetMail()
			}
		}
		w.net.Recover(s1)
		w.net.Recover(s2)
		w.sched.RunFor(400 * sim.Unit)
		w.sched.Run()
		w.alice.GetMail()
		w.alice.GetMail()
		if got := len(w.alice.Inbox()); got != sent {
			t.Errorf("seed %d: received %d of %d", seed, got, sent)
		}
	}
}
