// Binary framing for protocol version 3.
//
// The text protocol spends most of its wire-path CPU inside encoding/json:
// every submit body is escape-scanned twice (client quote, server unquote),
// every response allocates an intermediate DOM, and the per-line scanner
// copies each request once more. Version 3 negotiates (via the existing
// hello handshake) a length-prefixed binary codec that mirrors the WAL's
// on-disk framing from the durability layer:
//
//	uint32-LE payload length | payload | uint32-LE CRC32-IEEE(payload)
//
// The payload is one request or response:
//
//	request:  op byte | tag uint32-LE | op-specific fields
//	response: op byte | tag uint32-LE | ok byte | op-specific fields
//
// Strings are uvarint length + raw bytes — no quoting, no escaping — so a
// submit body is sliced straight out of the read buffer; the only copy is
// the final []byte→string conversion at the ownership boundary. Frames are
// read into pooled buffers (sync.Pool) and payloads are bounded by MaxLine,
// the same cap the text protocol enforces.
//
// The hot verbs (submit, tbatch, getmail, checkmail) have native encodings.
// Everything else — register, status, hello, crash/recover — rides inside a
// binOpJSON frame carrying the familiar JSON object, so the binary protocol
// never forks the cold-path schema.
//
// The tag is client-assigned and echoed verbatim on the response, which is
// what allows pipelining: a client may keep MaxInflight tagged requests in
// flight and match responses as they return. The protocol permits tagged
// responses out of order; the current server completes one connection's
// frames in submission order (see the bounded worker pool), so ordering is
// a server liberty, not a client guarantee.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/largemail/largemail/internal/mailerr"
)

// Binary-frame op bytes. binOpJSON wraps the text protocol's JSON object for
// the cold verbs; the hot verbs get native encodings.
const (
	binOpJSON      byte = 0
	binOpSubmit    byte = 1
	binOpTBatch    byte = 2
	binOpGetMail   byte = 3
	binOpCheckMail byte = 4
)

const (
	binHdrLen = 4 // uint32-LE payload length
	binCRCLen = 4 // uint32-LE CRC32-IEEE trailer
)

var wireCRC = crc32.MakeTable(crc32.IEEE)

// Binary-framing errors. ErrFrameTooLarge matches mailerr via ErrLineTooLong's
// taxonomy twin; ErrFrameCorrupt means the CRC trailer did not match — the
// stream cannot be resynchronized and the connection must close.
var (
	ErrFrameTooLarge = fmt.Errorf("wire: frame exceeds %d bytes: %w", MaxLine, mailerr.ErrOversized)
	ErrFrameCorrupt  = errors.New("wire: frame CRC mismatch")
	errFrameTruncated = errors.New("wire: truncated frame")
	errBadPayload     = errors.New("wire: malformed binary payload")
)

// appendFrame seals payload into dst as one wire frame:
// length header, payload, CRC trailer.
func appendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxLine {
		return dst, ErrFrameTooLarge
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, wireCRC)), nil
}

// sealAt completes a frame built in place on dst: dst[start:] must begin
// with binHdrLen reserved bytes followed by the payload. It fills the length
// header, appends the CRC trailer, and returns the grown dst (or dst[:start]
// with an error when the payload is oversized).
func sealAt(dst []byte, start int) ([]byte, error) {
	payload := dst[start+binHdrLen:]
	if len(payload) > MaxLine {
		return dst[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	crc := crc32.Checksum(payload, wireCRC)
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// splitFrame parses one complete frame from the front of b, returning the
// payload (aliasing b) and the bytes consumed. Used by the fuzz targets; the
// streaming reader (connReader.readFrame) implements the same format
// incrementally.
func splitFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < binHdrLen {
		return nil, 0, errFrameTruncated
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen > MaxLine {
		return nil, 0, ErrFrameTooLarge
	}
	total := binHdrLen + plen + binCRCLen
	if len(b) < total {
		return nil, 0, errFrameTruncated
	}
	payload = b[binHdrLen : binHdrLen+plen]
	if crc32.Checksum(payload, wireCRC) != binary.LittleEndian.Uint32(b[binHdrLen+plen:]) {
		return nil, 0, ErrFrameCorrupt
	}
	return payload, total, nil
}

// ---------------------------------------------------------------------------
// payload primitives

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader walks a frame payload with a latched error, returning zero
// values after the first malformed field.
//
// s, when set, is the whole payload as one string; str() slices into it, so
// decoding a frame costs one string allocation total instead of one per
// field. The substrings share that backing array and keep the whole payload
// reachable — the right trade for message frames, where bodies (which the
// mailbox retains anyway) dominate the payload.
type binReader struct {
	b   []byte
	s   string
	off int
	bad bool
}

func (r *binReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

// bytes returns the next length-prefixed field as a zero-copy slice of the
// payload.
func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	s := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return s
}

func (r *binReader) str() string {
	b := r.bytes()
	if len(b) == 0 {
		return ""
	}
	if r.s != "" {
		return r.s[r.off-len(b) : r.off]
	}
	return string(b)
}

// count reads a list length, rejecting counts that could not possibly fit in
// the remaining payload (each element costs at least one byte) so corrupt
// frames cannot force huge allocations.
func (r *binReader) count() int {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.off) {
		r.bad = true
		return 0
	}
	return int(n)
}

func (r *binReader) byte1() byte {
	if r.bad || r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *binReader) u32() uint32 {
	if r.bad || len(r.b)-r.off < 4 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if r.bad || len(r.b)-r.off < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// ---------------------------------------------------------------------------
// request codec

// binaryOpFor maps a request op string to its frame op byte; ops without a
// native encoding ship as binOpJSON.
func binaryOpFor(op string) byte {
	switch op {
	case "submit":
		return binOpSubmit
	case "tbatch":
		return binOpTBatch
	case "getmail":
		return binOpGetMail
	case "checkmail":
		return binOpCheckMail
	default:
		return binOpJSON
	}
}

// AppendBinaryRequest appends one framed v3 request to dst. The hot verbs
// use their native encodings; everything else wraps the JSON form.
func AppendBinaryRequest(dst []byte, req Request, tag uint32) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length header, filled by sealAt
	op := binaryOpFor(req.Op)
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint32(dst, tag)
	switch op {
	case binOpSubmit:
		dst = appendStr(dst, req.From)
		dst = appendStr(dst, req.Subject)
		dst = appendStr(dst, req.Body)
		dst = binary.AppendUvarint(dst, uint64(len(req.To)))
		for _, t := range req.To {
			dst = appendStr(dst, t)
		}
	case binOpTBatch:
		dst = appendStr(dst, req.From)
		dst = binary.AppendUvarint(dst, uint64(len(req.Msgs)))
		for _, m := range req.Msgs {
			dst = appendStr(dst, m.Subject)
			dst = appendStr(dst, m.Body)
			dst = binary.AppendUvarint(dst, uint64(len(m.To)))
			for _, t := range m.To {
				dst = appendStr(dst, t)
			}
		}
	case binOpGetMail:
		dst = appendStr(dst, req.User)
	case binOpCheckMail:
		dst = appendStr(dst, req.User)
		dst = appendStr(dst, req.Server)
	default: // binOpJSON
		js, err := json.Marshal(req)
		if err != nil {
			return dst[:start], err
		}
		dst = append(dst, js...)
	}
	return sealAt(dst, start)
}

// DecodeBinaryRequest parses one v3 request payload (the bytes between the
// length header and the CRC trailer). String fields are sliced directly out
// of the payload — the single copy is the []byte→string conversion; there is
// no quoting pass and no intermediate document.
func DecodeBinaryRequest(payload []byte) (Request, uint32, error) {
	r := &binReader{b: payload, s: string(payload)}
	op := r.byte1()
	tag := r.u32()
	var req Request
	switch op {
	case binOpSubmit:
		req.Op = "submit"
		req.From = r.str()
		req.Subject = r.str()
		req.Body = r.str()
		n := r.count()
		if n > 0 {
			req.To = make([]string, 0, n)
			for i := 0; i < n && !r.bad; i++ {
				req.To = append(req.To, r.str())
			}
		}
	case binOpTBatch:
		req.Op = "tbatch"
		req.From = r.str()
		n := r.count()
		if n > 0 {
			req.Msgs = make([]BatchMsg, 0, n)
		}
		for i := 0; i < n && !r.bad; i++ {
			var m BatchMsg
			m.Subject = r.str()
			m.Body = r.str()
			nt := r.count()
			if nt > 0 {
				m.To = make([]string, 0, nt)
				for j := 0; j < nt && !r.bad; j++ {
					m.To = append(m.To, r.str())
				}
			}
			req.Msgs = append(req.Msgs, m)
		}
	case binOpGetMail:
		req.Op = "getmail"
		req.User = r.str()
	case binOpCheckMail:
		req.Op = "checkmail"
		req.User = r.str()
		req.Server = r.str()
	case binOpJSON:
		if r.bad {
			break
		}
		if err := json.Unmarshal(payload[r.off:], &req); err != nil {
			return Request{}, tag, fmt.Errorf("%w: %v", errBadPayload, err)
		}
		r.off = len(payload)
	default:
		return Request{}, tag, fmt.Errorf("%w: unknown op byte %d", errBadPayload, op)
	}
	if r.bad {
		return Request{}, tag, errBadPayload
	}
	return req, tag, nil
}

// ---------------------------------------------------------------------------
// response codec

// AppendBinaryResponse appends one framed v3 response to dst. op is the
// request's frame op byte (echoed so the response is self-describing), tag
// the request's tag.
func AppendBinaryResponse(dst []byte, op byte, tag uint32, resp Response) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint32(dst, tag)
	if !resp.OK {
		dst = append(dst, 0)
		dst = appendStr(dst, resp.Code)
		dst = appendStr(dst, resp.Error)
		return sealAt(dst, start)
	}
	dst = append(dst, 1)
	switch op {
	case binOpSubmit:
		dst = appendStr(dst, resp.ID)
	case binOpTBatch:
		dst = binary.AppendUvarint(dst, uint64(len(resp.IDs)))
		for _, id := range resp.IDs {
			dst = appendStr(dst, id)
		}
		dst = binary.AppendUvarint(dst, uint64(len(resp.Failed)))
		for _, f := range resp.Failed {
			dst = binary.AppendUvarint(dst, uint64(f.Index))
			dst = appendStr(dst, f.Code)
			dst = appendStr(dst, f.Error)
		}
	case binOpGetMail, binOpCheckMail:
		dst = binary.AppendUvarint(dst, uint64(len(resp.Messages)))
		for _, m := range resp.Messages {
			dst = appendStr(dst, m.ID)
			dst = appendStr(dst, m.From)
			dst = appendStr(dst, m.Subject)
			dst = appendStr(dst, m.Body)
		}
		if op == binOpGetMail {
			dst = binary.AppendUvarint(dst, uint64(resp.Polls))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(resp.LastChecking))
		}
	default: // binOpJSON
		js, err := json.Marshal(resp)
		if err != nil {
			return dst[:start], err
		}
		dst = append(dst, js...)
	}
	return sealAt(dst, start)
}

// DecodeBinaryResponse parses one v3 response payload.
func DecodeBinaryResponse(payload []byte) (Response, uint32, error) {
	r := &binReader{b: payload, s: string(payload)}
	op := r.byte1()
	tag := r.u32()
	ok := r.byte1()
	var resp Response
	if r.bad {
		return Response{}, tag, errBadPayload
	}
	if ok == 0 {
		resp.Code = r.str()
		resp.Error = r.str()
		if r.bad {
			return Response{}, tag, errBadPayload
		}
		return resp, tag, nil
	}
	resp.OK = true
	switch op {
	case binOpSubmit:
		resp.ID = r.str()
	case binOpTBatch:
		n := r.count()
		if n > 0 {
			resp.IDs = make([]string, 0, n)
			for i := 0; i < n && !r.bad; i++ {
				resp.IDs = append(resp.IDs, r.str())
			}
		}
		nf := r.count()
		for i := 0; i < nf && !r.bad; i++ {
			var f BatchFailure
			f.Index = int(r.uvarint())
			f.Code = r.str()
			f.Error = r.str()
			resp.Failed = append(resp.Failed, f)
		}
	case binOpGetMail, binOpCheckMail:
		n := r.count()
		if n > 0 {
			resp.Messages = make([]Message, 0, n)
		}
		for i := 0; i < n && !r.bad; i++ {
			var m Message
			m.ID = r.str()
			m.From = r.str()
			m.Subject = r.str()
			m.Body = r.str()
			resp.Messages = append(resp.Messages, m)
		}
		if op == binOpGetMail {
			resp.Polls = int(r.uvarint())
			resp.LastChecking = int64(r.u64())
		}
	case binOpJSON:
		if err := json.Unmarshal(payload[r.off:], &resp); err != nil {
			return Response{}, tag, fmt.Errorf("%w: %v", errBadPayload, err)
		}
		r.off = len(payload)
	default:
		return Response{}, tag, fmt.Errorf("%w: unknown op byte %d", errBadPayload, op)
	}
	if r.bad {
		return Response{}, tag, errBadPayload
	}
	return resp, tag, nil
}

// ---------------------------------------------------------------------------
// pooled connection reader

// frameBufPool recycles frame build/read buffers so steady-state binary
// traffic allocates nothing per request.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getFrameBuf() *[]byte { return frameBufPool.Get().(*[]byte) }

func putFrameBuf(p *[]byte) {
	*p = (*p)[:0]
	frameBufPool.Put(p)
}

// connReaderBufSize is the bufio window shared by the text and binary read
// paths. Lines and frames larger than this still work (they spill into the
// pooled scratch / frame buffer); they just cost an extra copy.
const connReaderBufSize = 64 << 10

// connReader is a pooled buffered reader speaking both wire framings: text
// lines until hello negotiates binary, length-prefixed frames after. Both
// the server's per-connection serve loop and the client use it, replacing
// the per-connection bufio.Scanner whose max-line buffer used to be fresh
// garbage on every accepted connection.
type connReader struct {
	br   *bufio.Reader
	line []byte // scratch for lines spanning the bufio window
}

var connReaderPool = sync.Pool{New: func() any {
	return &connReader{br: bufio.NewReaderSize(nil, connReaderBufSize)}
}}

func newConnReader(r io.Reader) *connReader {
	cr := connReaderPool.Get().(*connReader)
	cr.br.Reset(r)
	return cr
}

// release returns the reader (and its buffers) to the pool. The connReader
// must not be used afterwards.
func (cr *connReader) release() {
	cr.br.Reset(nil)
	cr.line = cr.line[:0]
	connReaderPool.Put(cr)
}

// readLine returns the next newline-terminated line without its terminator,
// enforcing MaxLine. The returned slice aliases the reader's buffers and is
// valid only until the next read.
func (cr *connReader) readLine() ([]byte, error) {
	cr.line = cr.line[:0]
	for {
		frag, err := cr.br.ReadSlice('\n')
		switch {
		case err == nil:
			if len(cr.line) == 0 {
				return trimEOL(frag), nil
			}
			cr.line = append(cr.line, frag...)
			if len(cr.line) > MaxLine {
				return nil, ErrLineTooLong
			}
			return trimEOL(cr.line), nil
		case errors.Is(err, bufio.ErrBufferFull):
			cr.line = append(cr.line, frag...)
			if len(cr.line) > MaxLine {
				return nil, ErrLineTooLong
			}
		default:
			return nil, err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// readFrame reads one binary frame into *bufp (growing it if needed) and
// returns the verified payload, which aliases *bufp. Any error is fatal to
// the stream: a binary connection cannot resynchronize past a bad frame.
func (cr *connReader) readFrame(bufp *[]byte) ([]byte, error) {
	var hdr [binHdrLen]byte
	if _, err := io.ReadFull(cr.br, hdr[:]); err != nil {
		return nil, err
	}
	plen := int(binary.LittleEndian.Uint32(hdr[:]))
	if plen > MaxLine {
		return nil, ErrFrameTooLarge
	}
	total := plen + binCRCLen
	buf := *bufp
	if cap(buf) < total {
		buf = make([]byte, total)
		*bufp = buf
	}
	buf = buf[:total]
	if _, err := io.ReadFull(cr.br, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payload := buf[:plen]
	if crc32.Checksum(payload, wireCRC) != binary.LittleEndian.Uint32(buf[plen:]) {
		return nil, ErrFrameCorrupt
	}
	return payload, nil
}
