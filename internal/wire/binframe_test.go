package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func mustFrameRequest(t *testing.T, req Request, tag uint32) []byte {
	t.Helper()
	b, err := AppendBinaryRequest(nil, req, tag)
	if err != nil {
		t.Fatalf("AppendBinaryRequest: %v", err)
	}
	return b
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: "submit", From: "R1.h1.alice", To: []string{"R1.h1.bob", "R2.h9.carol"},
			Subject: "hi", Body: "body with \"quotes\", newlines\n, and \x00 bytes"},
		{Op: "submit", From: "R1.h1.alice", To: []string{"R1.h1.bob"}},
		{Op: "tbatch", From: "R1.h1.alice", Msgs: []BatchMsg{
			{To: []string{"R1.h1.bob"}, Subject: "a", Body: "b"},
			{To: []string{"R1.h1.bob", "R1.h1.carol"}},
			{To: nil, Subject: "", Body: strings.Repeat("z", 4096)},
		}},
		{Op: "getmail", User: "R1.h1.bob"},
		{Op: "checkmail", User: "R1.h1.bob", Server: "s2"},
		// Cold verbs ride the JSON op.
		{Op: "hello", Version: 3, Binary: true},
		{Op: "register", User: "R1.h1.alice", Servers: []string{"s1", "s2"}},
		{Op: "status"},
		{Op: "crash", Server: "s1"},
	}
	for i, req := range cases {
		frame := mustFrameRequest(t, req, uint32(i*7+1))
		payload, n, err := splitFrame(frame)
		if err != nil {
			t.Fatalf("case %d: splitFrame: %v", i, err)
		}
		if n != len(frame) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(frame))
		}
		got, tag, err := DecodeBinaryRequest(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if tag != uint32(i*7+1) {
			t.Fatalf("case %d: tag = %d, want %d", i, tag, i*7+1)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("case %d: round trip changed request:\n got %+v\nwant %+v", i, got, req)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp Response
	}{
		{binOpSubmit, Response{OK: true, ID: "3:17"}},
		{binOpSubmit, Response{Error: "submit: unknown user", Code: "unknown_user"}},
		{binOpTBatch, Response{OK: true, IDs: []string{"1:1", "", "1:3"},
			Failed: []BatchFailure{{Index: 1, Error: "no recipients", Code: "unknown_user"}}}},
		{binOpGetMail, Response{OK: true, Messages: []Message{
			{ID: "1:1", From: "R1.h1.alice", Subject: "s", Body: "b"},
			{ID: "1:2", From: "R1.h1.alice"},
		}, Polls: 42, LastChecking: 1700000000000000000}},
		{binOpGetMail, Response{OK: true, Polls: 1, LastChecking: -1}},
		{binOpCheckMail, Response{OK: true, Messages: []Message{{ID: "9:9", From: "R2.h2.z"}}}},
		{binOpJSON, Response{OK: true, Version: 3, Binary: true}},
		{binOpJSON, Response{Error: "unknown op \"nope\""}},
	}
	for i, tc := range cases {
		frame, err := AppendBinaryResponse(nil, tc.op, uint32(i+100), tc.resp)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		payload, _, err := splitFrame(frame)
		if err != nil {
			t.Fatalf("case %d: splitFrame: %v", i, err)
		}
		got, tag, err := DecodeBinaryResponse(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if tag != uint32(i+100) {
			t.Fatalf("case %d: tag = %d, want %d", i, tag, i+100)
		}
		if !reflect.DeepEqual(got, tc.resp) {
			t.Fatalf("case %d: round trip changed response:\n got %+v\nwant %+v", i, got, tc.resp)
		}
	}
}

// TestBinaryFrameCorruption flips every byte of a valid frame past the
// length prefix (payload and CRC trailer — the region the checksum covers)
// and requires the frame to be rejected. Length-prefix corruption is
// legitimately undetectable by CRC; it either truncates or oversizes, which
// the reader bounds separately.
func TestBinaryFrameCorruption(t *testing.T) {
	frame := mustFrameRequest(t, Request{
		Op: "submit", From: "R1.h1.alice", To: []string{"R1.h1.bob"},
		Subject: "subj", Body: "corruption target",
	}, 7)
	for off := binHdrLen; off < len(frame); off++ {
		mut := append([]byte(nil), frame...)
		mut[off] ^= 0x41
		if _, _, err := splitFrame(mut); err == nil {
			t.Fatalf("flip at offset %d went undetected", off)
		}
	}
}

func TestBinaryFrameTooLarge(t *testing.T) {
	big := Request{Op: "submit", From: "R1.h1.a", To: []string{"R1.h1.b"},
		Body: strings.Repeat("x", MaxLine)}
	if _, err := AppendBinaryRequest(nil, big, 1); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("encode err = %v, want ErrFrameTooLarge", err)
	}
	// A header claiming an oversized payload is refused before any read.
	hdr := binary.LittleEndian.AppendUint32(nil, MaxLine+1)
	if _, _, err := splitFrame(append(hdr, 0)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("splitFrame err = %v, want ErrFrameTooLarge", err)
	}
	cr := newConnReader(bytes.NewReader(append(hdr, make([]byte, 64)...)))
	defer cr.release()
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	if _, err := cr.readFrame(bufp); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame err = %v, want ErrFrameTooLarge", err)
	}
}

// TestConnReaderFrames pins the streaming reader against multiple frames
// back to back, a truncated tail, and a CRC mismatch.
func TestConnReaderFrames(t *testing.T) {
	var stream []byte
	want := []Request{
		{Op: "getmail", User: "R1.h1.a"},
		{Op: "submit", From: "R1.h1.a", To: []string{"R1.h1.b"}, Body: strings.Repeat("q", 100_000)},
		{Op: "status"},
	}
	for i, req := range want {
		frame := mustFrameRequest(t, req, uint32(i))
		stream = append(stream, frame...)
	}
	cr := newConnReader(bytes.NewReader(stream))
	defer cr.release()
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	for i, req := range want {
		payload, err := cr.readFrame(bufp)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, tag, err := DecodeBinaryRequest(payload)
		if err != nil || tag != uint32(i) {
			t.Fatalf("frame %d: decode err=%v tag=%d", i, err, tag)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("frame %d changed in flight", i)
		}
	}
	if _, err := cr.readFrame(bufp); !errors.Is(err, io.EOF) {
		t.Fatalf("past end: err = %v, want EOF", err)
	}

	// Truncated mid-payload: ErrUnexpectedEOF, not a hang or a zero frame.
	full := mustFrameRequest(t, want[1], 9)
	cr2 := newConnReader(bytes.NewReader(full[:len(full)-3]))
	defer cr2.release()
	if _, err := cr2.readFrame(bufp); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: err = %v, want ErrUnexpectedEOF", err)
	}

	// Flipped payload byte: ErrFrameCorrupt from the streaming path too.
	bad := append([]byte(nil), full...)
	bad[binHdrLen+2] ^= 0xFF
	cr3 := newConnReader(bytes.NewReader(bad))
	defer cr3.release()
	if _, err := cr3.readFrame(bufp); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupt: err = %v, want ErrFrameCorrupt", err)
	}
}

// TestConnReaderLongLines pins the pooled text reader: lines longer than the
// bufio window still arrive whole, and MaxLine is enforced.
func TestConnReaderLongLines(t *testing.T) {
	long := strings.Repeat("a", connReaderBufSize*2)
	src := "short\r\n" + long + "\n"
	cr := newConnReader(strings.NewReader(src))
	defer cr.release()
	line, err := cr.readLine()
	if err != nil || string(line) != "short" {
		t.Fatalf("line 1 = %q, %v", line, err)
	}
	line, err = cr.readLine()
	if err != nil || string(line) != long {
		t.Fatalf("line 2 len = %d, err %v, want %d", len(line), err, len(long))
	}
	over := strings.Repeat("b", MaxLine+2) + "\n"
	cr2 := newConnReader(strings.NewReader(over))
	defer cr2.release()
	if _, err := cr2.readLine(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("oversized line err = %v, want ErrLineTooLong", err)
	}
}

// FuzzBinaryFrame feeds arbitrary bytes through the v3 frame splitter and
// both payload decoders. Properties: no panic on any input; anything that
// splits and decodes as a request re-encodes to a frame that decodes back to
// the identical request (fixed point, so a decoded-then-forwarded frame is
// semantically what the client sent); and single-byte corruption anywhere in
// the CRC-covered region of the re-encoded frame is always detected.
func FuzzBinaryFrame(f *testing.F) {
	seedReqs := []struct {
		req Request
		tag uint32
	}{
		{Request{Op: "submit", From: "R1.h1.alice", To: []string{"R1.h1.bob"}, Subject: "s", Body: "b"}, 1},
		{Request{Op: "tbatch", From: "R1.h1.alice", Msgs: []BatchMsg{{To: []string{"R1.h1.bob"}, Body: "x"}}}, 2},
		{Request{Op: "getmail", User: "R1.h1.bob"}, 3},
		{Request{Op: "checkmail", User: "R1.h1.bob", Server: "s1"}, 4},
		{Request{Op: "hello", Version: 3, Binary: true}, 5},
		{Request{Op: "status"}, 6},
	}
	for _, s := range seedReqs {
		frame, err := AppendBinaryRequest(nil, s.req, s.tag)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	respFrame, err := AppendBinaryResponse(nil, binOpGetMail, 9, Response{
		OK: true, Messages: []Message{{ID: "1:1", From: "R1.h1.a", Subject: "s", Body: "b"}},
		Polls: 3, LastChecking: 12345,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(respFrame)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, _, err := splitFrame(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		// Both decoders must be panic-free on any checksummed payload.
		resp, _, _ := DecodeBinaryResponse(payload)
		_ = resp
		req, tag, err := DecodeBinaryRequest(payload)
		if err != nil {
			return
		}
		// Canonical fixed point at the frame level: one re-encode may
		// normalize (a JSON-op frame whose op names a hot verb re-encodes
		// natively, dropping fields that verb does not carry), but from
		// there on encode∘decode must be the identity.
		frame, err := AppendBinaryRequest(nil, req, tag)
		if err != nil {
			return // decoded value has no canonical frame (re-encodes oversized)
		}
		p2, n, err := splitFrame(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("canonical frame rejected: err=%v n=%d len=%d", err, n, len(frame))
		}
		req2, tag2, err := DecodeBinaryRequest(p2)
		if err != nil {
			t.Fatalf("canonical frame undecodable: %v", err)
		}
		if tag2 != tag {
			t.Fatalf("tag changed across round trip: %d → %d", tag, tag2)
		}
		second, err := AppendBinaryRequest(nil, req2, tag2)
		if err != nil {
			t.Fatalf("re-encode of canonical value failed: %v", err)
		}
		if !bytes.Equal(frame, second) {
			t.Fatalf("decode/encode not a fixed point:\n%x\n%x", frame, second)
		}
		// CRC coverage: flip one byte past the length prefix and the frame
		// must be rejected. The flip offset is derived from the input so the
		// fuzzer sweeps the whole frame over time.
		if len(frame) > binHdrLen {
			off := binHdrLen + len(data)%(len(frame)-binHdrLen)
			mut := append([]byte(nil), frame...)
			mut[off] ^= 0x01
			if _, _, err := splitFrame(mut); err == nil {
				t.Fatalf("single-byte corruption at offset %d undetected", off)
			}
		}
	})
}
