package wire

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// benchBurst pumps b.N messages through a pipelined client: the wire path's
// msgs/sec microbenchmark (bodies 512B, matching make bench-wire).
func benchBurst(b *testing.B, textOnly bool, batch, inflight int) {
	s, err := NewServerWith("127.0.0.1:0", []string{"s1"}, ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := DialOptions(s.Addr(), Options{TextOnly: textOnly})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("R1.h1.from"); err != nil {
		b.Fatal(err)
	}
	// Spread deposits over several sinks: one mailbox absorbing the whole
	// burst measures slice-growth pathology, not the wire path.
	const sinks = 16
	tos := make([][]string, sinks)
	for i := range tos {
		u := fmt.Sprintf("R1.h1.sink%d", i)
		if err := c.Register(u); err != nil {
			b.Fatal(err)
		}
		tos[i] = []string{u}
	}
	p, err := c.Pipeline(context.Background(), inflight)
	if err != nil {
		b.Fatal(err)
	}
	body := strings.Repeat("m", 512)
	b.ReportAllocs()
	b.ResetTimer()
	futs := make([]*Future, 0, b.N/batch+1)
	pending := make([]int, sinks) // deposits per sink since its last drain
	for sent := 0; sent < b.N; {
		si := (sent / batch) % sinks
		to := tos[si]
		if batch == 1 {
			futs = append(futs, p.Submit("R1.h1.from", to, "b", body))
			sent++
		} else {
			msgs := make([]BatchMsg, batch)
			for i := range msgs {
				msgs[i] = BatchMsg{To: to, Subject: "b", Body: body}
			}
			futs = append(futs, p.SubmitBatch("R1.h1.from", msgs))
			sent += batch
		}
		// Recipients read their mail: drain each sink every 64 deposits so
		// mailboxes stay bounded, as in any live system.
		if pending[si] += batch; pending[si] >= 64 {
			pending[si] = 0
			futs = append(futs, p.Do(Request{Op: "getmail", User: to[0]}))
		}
	}
	for _, f := range futs {
		if _, err := f.Response(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBurstTextB1(b *testing.B)    { benchBurst(b, true, 1, 32) }
func BenchmarkBurstTextB16(b *testing.B)   { benchBurst(b, true, 16, 32) }
func BenchmarkBurstBinaryB1(b *testing.B)  { benchBurst(b, false, 1, 32) }
func BenchmarkBurstBinaryB16(b *testing.B) { benchBurst(b, false, 16, 32) }
