package wire

import (
	"strings"
	"sync"
	"testing"

	"github.com/largemail/largemail/internal/obs"
)

// newServer starts a three-server wire daemon on a loopback port.
func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", []string{"s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func newClient(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Error("no server names accepted")
	}
	if _, err := NewServer("127.0.0.1:0", []string{"a", "a"}); err == nil {
		t.Error("duplicate server names accepted")
	}
}

func TestSubmitGetMailRoundTrip(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h2.bob", "s2", "s1"); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "hi", "over tcp")
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Error("empty message ID")
	}
	msgs, err := c.GetMail("R1.h1.alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Subject != "hi" || msgs[0].From != "R1.h2.bob" {
		t.Fatalf("GetMail = %+v", msgs)
	}
	// Idempotent second read.
	msgs, err = c.GetMail("R1.h1.alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Errorf("second GetMail = %v", msgs)
	}
}

func TestFailoverOverWire(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice", "s1", "s2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h2.bob", "s2"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAvailability("s1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "fo", "b"); err != nil {
		t.Fatal(err)
	}
	status, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ServerStatus{}
	for _, st := range status {
		byName[st.Name] = st
	}
	if byName["s1"].Up {
		t.Error("s1 reported up after crash")
	}
	if byName["s2"].Deposits != 1 {
		t.Errorf("s2 deposits = %d, want 1 (failover)", byName["s2"].Deposits)
	}
	msgs, err := c.GetMail("R1.h1.alice")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("GetMail = %v, %v", msgs, err)
	}
	if err := c.SetAvailability("s1", true); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMailOp(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h2.bob", "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "s", "b"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(Request{Op: "checkmail", User: "R1.h1.alice", Server: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Messages) != 1 {
		t.Errorf("checkmail = %+v", resp)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	cases := []Request{
		{Op: "nope"},
		{Op: "register", User: "not-a-name"},
		{Op: "register", User: "R1.h1.x", Servers: []string{"ghost"}},
		{Op: "submit", From: "bad"},
		{Op: "submit", From: "R1.h1.a"}, // no recipients
		{Op: "submit", From: "R1.h1.a", To: []string{"bad"}},
		{Op: "checkmail", User: "R1.h1.a", Server: "ghost"},
		{Op: "checkmail", User: "bad", Server: "s1"},
		{Op: "getmail", User: "bad"},
		{Op: "getmail", User: "R1.h1.unregistered"},
		{Op: "crash", Server: "ghost"},
	}
	for _, req := range cases {
		if _, err := c.Do(req); err == nil {
			t.Errorf("request %+v succeeded, want error", req)
		}
	}
	// The connection stays usable after errors.
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedLineKeepsConnection(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c.cr.readLine()
	if err != nil {
		t.Fatalf("no response to malformed line: %v", err)
	}
	if !strings.Contains(string(line), "bad request") {
		t.Errorf("response = %s", line)
	}
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newServer(t)
	admin := newClient(t, s)
	if err := admin.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	const clients = 6
	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			from := "R1.h9.sender" + string(rune('a'+i))
			for j := 0; j < perClient; j++ {
				if _, err := c.Submit(from, []string{"R1.h1.alice"}, "c", "b"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	msgs, err := admin.GetMail("R1.h1.alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != clients*perClient {
		t.Errorf("received %d of %d", len(msgs), clients*perClient)
	}
}

func TestCloseIdempotentAndDialAfterClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", []string{"s1"})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	s.Close()
	s.Close()
	if _, err := Dial(addr); err == nil {
		t.Error("dial after close succeeded")
	}
}

// Robustness: a stream of arbitrary (mostly invalid) requests never kills
// the server or wedges the connection.
func TestServerSurvivesGarbageRequests(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	garbage := []Request{
		{},
		{Op: "submit"},
		{Op: "register", User: strings.Repeat("x", 300)},
		{Op: "submit", From: "R1.h.u", To: []string{""}},
		{Op: "checkmail"},
		{Op: "getmail"},
		{Op: "recover"},
		{Op: "status", User: "ignored-field"},
	}
	for i, req := range garbage {
		resp, err := c.Do(req)
		if req.Op == "status" {
			if err != nil {
				t.Errorf("case %d: status with extra fields failed: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d (%+v): accepted", i, req)
		}
		_ = resp
	}
	// Raw junk lines interleaved with valid traffic.
	for _, line := range []string{"", "{", "[1,2,3]", `"str"`, "null"} {
		if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.cr.readLine(); err != nil {
			t.Fatalf("no response to %q: %v", line, err)
		}
	}
	if err := c.Register("R1.h1.still-works"); err != nil {
		t.Fatal(err)
	}
}

func TestStatusSnapshotStructured(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h1.bob"); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "hi", "body")
	if err != nil || id == "" {
		t.Fatalf("submit: id=%q err=%v", id, err)
	}
	if _, err := c.GetMail("R1.h1.bob"); err != nil {
		t.Fatal(err)
	}

	snap, err := c.StatusSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != obs.SnapshotVersion {
		t.Errorf("version = %d, want %d", snap.Version, obs.SnapshotVersion)
	}
	if len(snap.Servers) != 3 {
		t.Errorf("servers = %+v, want 3 rows", snap.Servers)
	}
	// One deposit happened somewhere: the per-server counters carry it.
	var deposits int64
	for _, row := range snap.Servers {
		deposits += snap.Counters[row.Name+".deposits"]
	}
	if deposits != 1 {
		t.Errorf("summed <name>.deposits = %d, want 1", deposits)
	}
	if _, ok := snap.Gauges["spool_depth"]; !ok {
		t.Errorf("gauges = %v, want spool_depth", snap.Gauges)
	}
	// The lifecycle tracer fed the per-stage histograms end to end.
	for _, h := range []string{"lat_deposit", "lat_retrieve", "lat_e2e"} {
		hs, ok := snap.Histograms[h]
		if !ok || hs.Count == 0 {
			t.Errorf("histogram %s missing or empty: %+v", h, hs)
		}
	}
	if hs := snap.Histograms["lat_e2e"]; hs.P50 <= 0 || hs.P99 < hs.P50 {
		t.Errorf("lat_e2e quantiles implausible: %+v", hs)
	}
}
