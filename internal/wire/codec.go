package wire

import (
	"encoding/json"
	"fmt"

	"github.com/largemail/largemail/internal/mailerr"
)

// ErrLineTooLong reports a protocol line exceeding MaxLine. Callers see it
// from EncodeRequest/EncodeResponse before an oversized line is ever sent —
// an oversized line on the wire aborts the peer's scanner and takes the
// whole connection down with it, so refusing to emit one is the only safe
// side of that edge. It matches mailerr.ErrOversized.
var ErrLineTooLong = fmt.Errorf("wire: line exceeds %d bytes: %w", MaxLine, mailerr.ErrOversized)

// EncodeRequest renders one newline-terminated protocol line, refusing
// lines past MaxLine.
func EncodeRequest(req Request) ([]byte, error) {
	return encodeLine(req)
}

// DecodeRequest parses one client→server line (with or without the trailing
// newline). It enforces MaxLine even when the caller's reader did not.
func DecodeRequest(line []byte) (Request, error) {
	var req Request
	if err := decodeLine(line, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// EncodeResponse renders one newline-terminated response line, refusing
// lines past MaxLine.
func EncodeResponse(resp Response) ([]byte, error) {
	return encodeLine(resp)
}

// DecodeResponse parses one server→client line.
func DecodeResponse(line []byte) (Response, error) {
	var resp Response
	if err := decodeLine(line, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func encodeLine(v any) ([]byte, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(buf)+1 > MaxLine {
		return nil, ErrLineTooLong
	}
	return append(buf, '\n'), nil
}

func decodeLine(line []byte, v any) error {
	if len(line) > MaxLine {
		return ErrLineTooLong
	}
	return json.Unmarshal(line, v)
}
