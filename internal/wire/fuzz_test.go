package wire

import (
	"bytes"
	"errors"
	"testing"
)

// canonical re-encodes a decoded frame; the empty second return means the
// value has no canonical line (it re-encodes past MaxLine).
func canonicalRequest(t *testing.T, req Request) ([]byte, bool) {
	t.Helper()
	line, err := EncodeRequest(req)
	if err != nil {
		if errors.Is(err, ErrLineTooLong) {
			return nil, false
		}
		t.Fatalf("EncodeRequest on decoded value: %v", err)
	}
	return line, true
}

// FuzzParseRequest feeds arbitrary bytes through the client→server frame
// decoder. Properties: no panic on any input, and decoding is canonically
// stable — once a line decodes, re-encoding and re-decoding it reaches a
// fixed point (the frame the server dispatches is exactly the frame a
// well-formed client would have sent).
func FuzzParseRequest(f *testing.F) {
	for _, seed := range []string{
		`{"op":"register","user":"R0.h0.alice","servers":["s1","s2"]}`,
		`{"op":"submit","from":"R0.h0.alice","to":["R1.h2.bob"],"subject":"hi","body":"see you"}`,
		`{"op":"checkmail","user":"R0.h0.alice","server":"s1"}`,
		`{"op":"getmail","user":"R0.h0.alice"}`,
		`{"op":"status"}`,
		`{"op":"crash","server":"s1"}`,
		`{"op":"recover","server":"s1"}`,
		`{"op":"submit","to":[]}`,
		`{"op":"submit","subject":"  line sep \ud800"}`,
		`{"op":`,
		`{}`,
		`null`,
		`[]`,
		`"op"`,
		"\x00\xff\xfe",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		first, ok := canonicalRequest(t, req)
		if !ok {
			return
		}
		again, err := DecodeRequest(first)
		if err != nil {
			t.Fatalf("canonical line rejected: %v\nline: %q", err, first)
		}
		second, ok := canonicalRequest(t, again)
		if !ok {
			t.Fatalf("canonical line grew past MaxLine: %q", first)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("decode/encode not a fixed point:\n%q\n%q", first, second)
		}
	})
}

// FuzzStatusSnapshot feeds arbitrary bytes through the server→client frame
// decoder, whose deepest surface is the nested StatusSnapshot (counters,
// gauges, per-stage histogram quantiles). Same properties: no panic, and a
// canonical fixed point for everything that decodes.
func FuzzStatusSnapshot(f *testing.F) {
	for _, seed := range []string{
		`{"ok":true}`,
		`{"ok":false,"error":"unknown op \"x\""}`,
		`{"ok":true,"id":"1:17"}`,
		`{"ok":true,"messages":[{"id":"1:3","from":"R0.h0.alice","subject":"hi","body":"b"}]}`,
		`{"ok":true,"status":{"version":1,"servers":[{"name":"s1","up":true,"deposits":12}],` +
			`"counters":{"s1.deposits":12,"submit_spooled":0},"gauges":{"spool_depth":0},` +
			`"histograms":{"lat_e2e":{"count":3,"mean":1.5,"p50":1,"p95":2,"p99":2,"max":2}}}}`,
		`{"ok":true,"status":{"version":1}}`,
		`{"ok":true,"status":null}`,
		`{"ok":true,"status":{"histograms":{"lat_deposit":{"count":-1,"mean":1e308}}}}`,
		`{"ok"`,
		`0`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		resp, err := DecodeResponse(line)
		if err != nil {
			return
		}
		first, err := EncodeResponse(resp)
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				return
			}
			t.Fatalf("EncodeResponse on decoded value: %v", err)
		}
		again, err := DecodeResponse(first)
		if err != nil {
			t.Fatalf("canonical line rejected: %v\nline: %q", err, first)
		}
		second, err := EncodeResponse(again)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("decode/encode not a fixed point:\n%q\n%q", first, second)
		}
	})
}

// FuzzTBatch exercises the batch-codec surface added with protocol v2: the
// hello and tbatch request frames (nested Msgs) and the batched response
// frames (IDs, per-item Failed with taxonomy codes). Properties: no panic on
// any input, canonical fixed point for everything that decodes, and the
// batch payload itself survives the round trip intact (item count and
// per-item recipients), so a decoded-then-forwarded batch is bit-identical
// to what the client sent.
func FuzzTBatch(f *testing.F) {
	for _, seed := range []string{
		`{"op":"hello","version":2}`,
		`{"op":"hello","version":1}`,
		`{"op":"hello","version":-3}`,
		`{"op":"tbatch","msgs":[{"to":[" "],"body":"\ud800"}]}`,
		`{"op":"tbatch","from":"R0.h0.alice","msgs":[{"to":["R1.h2.bob"]},{"to":["R1.h3.carol","R1.h2.bob"],"subject":"x"}]}`,
		`{"op":"tbatch","from":"R0.h0.alice","msgs":[]}`,
		`{"op":"tbatch","msgs":[{"to":null}]}`,
		`{"op":"tbatch","msgs":[{"to":[" "],"body":"\ud800"}]}`,
		`{"ok":true,"version":2}`,
		`{"ok":true,"ids":["1:1","","1:3"],"failed":[{"index":1,"error":"no recipients","code":"unknown_user"}]}`,
		`{"ok":false,"error":"tbatch requires protocol version 2","code":""}`,
		`{"op":"tbatch","msgs":`,
		`{"op":"tbatch","msgs":[{}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line)
		if err != nil {
			return
		}
		first, ok := canonicalRequest(t, req)
		if !ok {
			return
		}
		again, err := DecodeRequest(first)
		if err != nil {
			t.Fatalf("canonical line rejected: %v\nline: %q", err, first)
		}
		if len(again.Msgs) != len(req.Msgs) {
			t.Fatalf("batch length changed across round trip: %d → %d", len(req.Msgs), len(again.Msgs))
		}
		for i := range req.Msgs {
			if len(again.Msgs[i].To) != len(req.Msgs[i].To) {
				t.Fatalf("msg %d recipient count changed: %d → %d",
					i, len(req.Msgs[i].To), len(again.Msgs[i].To))
			}
		}
		second, ok := canonicalRequest(t, again)
		if !ok {
			t.Fatalf("canonical line grew past MaxLine: %q", first)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("decode/encode not a fixed point:\n%q\n%q", first, second)
		}
	})
}

// TestDecodeRequestOversized pins the MaxLine guard the fuzz corpus cannot
// reach cheaply (a >1 MiB input).
func TestDecodeRequestOversized(t *testing.T) {
	line := append([]byte(`{"op":"submit","body":"`), bytes.Repeat([]byte{'a'}, MaxLine)...)
	line = append(line, '"', '}')
	if _, err := DecodeRequest(line); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

// TestEncodeRequestOversized pins the client-side guard: an oversized submit
// must be refused before it reaches the wire, where it would abort the
// server's line scanner and the connection with it.
func TestEncodeRequestOversized(t *testing.T) {
	req := Request{Op: "submit", Body: string(bytes.Repeat([]byte{'a'}, MaxLine))}
	if _, err := EncodeRequest(req); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}
