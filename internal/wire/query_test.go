package wire

import (
	"strings"
	"testing"
)

// newQueryServer stands up a wire server whose cluster runs the term index,
// so the query verb is servable.
func newQueryServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Cluster.TermIndex = true
	s, err := NewServerWith("127.0.0.1:0", []string{"s1", "s2", "s3"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// seedQueryMail pins alice to s1 and bob to s2, then buffers one message for
// each: alice's mentions the budget, bob's does not. s3 holds nothing.
func seedQueryMail(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Register("R1.h1.alice", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h2.bob", "s2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h2.bob", []string{"R1.h1.alice"}, "q3", "the budget forecast is late"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h1.alice", []string{"R1.h2.bob"}, "lunch", "tacos on friday"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	seedQueryMail(t, c)
	res, err := c.Query("content=budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != "R1.h1.alice" {
		t.Fatalf("matches = %v, want [R1.h1.alice]", res.Matches)
	}
	st := res.Stats
	if st.Servers != 3 {
		t.Errorf("stats.Servers = %d, want 3", st.Servers)
	}
	if st.Visited+st.Pruned+st.Unavailable != st.Servers {
		t.Errorf("fan-out does not account for every server: %+v", st)
	}
	// Only s1's sketch can contain "budget"; s2 and s3 must be pruned
	// (modulo Bloom false positives, which would show up as visits — allow
	// at most the FP-counted ones).
	if st.Pruned+st.SketchFP < 2 {
		t.Errorf("expected s2 and s3 pruned or FP-visited: %+v", st)
	}
	// A query for a term nobody holds matches nothing and needs no visits
	// beyond false positives.
	res, err = c.Query("content=zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("matches for absent term = %v, want none", res.Matches)
	}
	if res.Stats.Visited != res.Stats.SketchFP {
		t.Errorf("absent-term visits beyond false positives: %+v", res.Stats)
	}
}

// TestQueryConjunction pins the multi-term semantics: a match must hold
// every term, served by one SearchTerms pass per visited server.
func TestQueryConjunction(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	seedQueryMail(t, c)
	res, err := c.Query("content=budget, content=forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != "R1.h1.alice" {
		t.Fatalf("matches = %v, want [R1.h1.alice]", res.Matches)
	}
	if res, err = c.Query("content=budget, content=tacos"); err != nil {
		t.Fatal(err)
	} else if len(res.Matches) != 0 {
		t.Errorf("cross-mailbox conjunction matched %v, want none", res.Matches)
	}
}

// TestQueryRequiresNegotiation pins the version gate server-side: the verb
// is v3-only, and a connection that never said hello speaks v1.
func TestQueryRequiresNegotiation(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	_, err := c.Do(Request{Op: "query", Query: "content=budget"})
	if err == nil {
		t.Fatal("query before hello succeeded")
	}
	if !strings.Contains(err.Error(), "hello") {
		t.Errorf("error = %v, want a pointer at the handshake", err)
	}
}

// TestQueryAgainstOldServer pins the client-side gate: against a v2 server
// the negotiated version is below the verb's floor and Query refuses
// locally, with an error naming both versions.
func TestQueryAgainstOldServer(t *testing.T) {
	s := newQueryServer(t, ServerConfig{MaxProtocol: 2})
	c := newClient(t, s)
	_, err := c.Query("content=budget")
	if err == nil {
		t.Fatal("query against v2 server succeeded")
	}
	if !strings.Contains(err.Error(), "protocol version") {
		t.Errorf("error = %v, want a protocol-version refusal", err)
	}
}

// TestQueryRequiresTermIndex: a cluster without the index cannot serve the
// verb, and says so instead of returning a silently empty match set.
func TestQueryRequiresTermIndex(t *testing.T) {
	s := newServer(t) // default config: no term index
	c := newClient(t, s)
	_, err := c.Query("content=budget")
	if err == nil {
		t.Fatal("query without term index succeeded")
	}
	if !strings.Contains(err.Error(), "term index") {
		t.Errorf("error = %v, want a term-index refusal", err)
	}
}

// TestQueryRefusesProfilePredicates: the wire path has no profile store, so
// a query with any non-content conjunct must refuse rather than silently
// widen the match set by dropping the predicate.
func TestQueryRefusesProfilePredicates(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	for _, q := range []string{"interest=g3", "content=budget, interest=g3", "content~ofsite"} {
		if _, err := c.Query(q); err == nil {
			t.Errorf("query %q succeeded, want refusal", q)
		}
	}
	if _, err := c.Query("content="); err == nil {
		t.Error("malformed query succeeded")
	}
}

// TestQueryCountsUnavailable: a crashed server is reported in the stats, not
// silently skipped — the client can tell a partial answer from a complete
// one, the same honesty rule the broadcast summaries follow.
func TestQueryCountsUnavailable(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	seedQueryMail(t, c)
	srv, ok := s.Cluster().Server("s2")
	if !ok {
		t.Fatal("no s2")
	}
	srv.Crash()
	res, err := c.Query("content=tacos")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unavailable != 1 {
		t.Errorf("stats = %+v, want exactly s2 unavailable", res.Stats)
	}
	if len(res.Matches) != 0 {
		t.Errorf("matches = %v, want none (holder's server is down)", res.Matches)
	}
	srv.Recover()
	if res, err = c.Query("content=tacos"); err != nil {
		t.Fatal(err)
	} else if len(res.Matches) != 1 || res.Matches[0] != "R1.h2.bob" {
		t.Errorf("matches after recovery = %v, want [R1.h2.bob]", res.Matches)
	}
}

// TestQueryBinaryFraming: the verb rides the v3 binary framing like any
// other cold op (JSON-in-frame), on the same negotiated connection.
func TestQueryBinaryFraming(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	seedQueryMail(t, c)
	res, err := c.Query("content=budget")
	if err != nil {
		t.Fatal(err)
	}
	if !c.BinaryFraming() {
		t.Fatal("connection did not negotiate binary framing")
	}
	if len(res.Matches) != 1 || res.Matches[0] != "R1.h1.alice" {
		t.Fatalf("matches over binary framing = %v", res.Matches)
	}
	// And over the text framing for contrast.
	tc, err := DialOptions(s.Addr(), Options{TextOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if res, err = tc.Query("content=budget"); err != nil {
		t.Fatal(err)
	} else if len(res.Matches) != 1 {
		t.Fatalf("matches over text framing = %v", res.Matches)
	}
	if tc.BinaryFraming() {
		t.Error("TextOnly client negotiated binary framing")
	}
}

// TestQueryAfterDrain: retrieval empties the mailbox, the index follows, and
// the same query stops matching — the index tracks *buffered* mail.
func TestQueryAfterDrain(t *testing.T) {
	s := newQueryServer(t, ServerConfig{})
	c := newClient(t, s)
	seedQueryMail(t, c)
	if _, err := c.GetMail("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("content=budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("drained mailbox still matches: %v", res.Matches)
	}
}
