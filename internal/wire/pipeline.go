package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultMaxInflight is the pipeline depth used when Pipeline is asked for
// zero or a negative depth.
const DefaultMaxInflight = 8

// errPipelineClosed rejects work submitted after Close.
var errPipelineClosed = errors.New("wire: pipeline closed")

// Pipeline keeps up to maxInflight requests in flight on the client's single
// connection: callers get a Future per request immediately and the pipeline
// overlaps the round trips, which is where the v3 transport's throughput
// comes from — one in-flight request pays the full RTT per request, 32 pay
// it once per window.
//
// On a binary (v3) connection, requests are tagged frames and responses are
// matched by tag, so a server may legally complete them out of order. On a
// text connection the same pipelining works against any server version —
// the stream is still one-line-per-request — with responses matched in FIFO
// order. Either way this package's own server executes one connection's
// requests in submission order (see the worker pool), so "pipelined" never
// weakens the per-connection ordering the exactly-once auditors check.
//
// A Pipeline owns the client's connection from Pipeline() until Close():
// the Client's own request methods must not be used in between. Do/Submit/
// SubmitBatch are safe for concurrent use. Once any request fails at the
// transport (a pipelined stream has no request boundaries to resynchronize
// on), every in-flight and future request fails with the same error, and
// Close drops the connection so the next Client use starts fresh.
type Pipeline struct {
	c      *Client
	binary bool

	sem    chan struct{} // one slot per in-flight request
	expect chan struct{} // one token per successfully written request

	wmu sync.Mutex // serializes writes; fifo append happens under it

	mu      sync.Mutex
	pending map[uint32]*Future // binary: tag → future
	fifo    []*Future          // text: response order
	werr    error              // sticky transport failure
	closed  bool

	readerDone chan struct{}
}

// Future is one pipelined request's pending result.
type Future struct {
	done chan struct{}
	resp Response
	err  error
}

// Response blocks until the request completes and returns its result, with
// refused responses mapped to typed errors exactly like Client.Do.
func (f *Future) Response() (Response, error) {
	<-f.done
	return f.resp, f.err
}

// Pipeline negotiates the protocol (lazily, like SubmitBatch) and returns a
// pipeline with the given depth (≤ 0 → DefaultMaxInflight). The connection
// uses binary framing when the negotiated version allows it and Options
// don't forbid it; otherwise text framing, which still pipelines against
// servers of any version.
func (c *Client) Pipeline(ctx context.Context, maxInflight int) (*Pipeline, error) {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	if _, err := c.negotiate(ctx); err != nil {
		return nil, err
	}
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
	}
	if !c.binOn && c.wantBinary() {
		_ = c.conn.SetDeadline(c.deadline(ctx))
		if err := c.enterBinary(); err != nil {
			c.drop()
			return nil, err
		}
	}
	_ = c.conn.SetDeadline(time.Time{})
	p := &Pipeline{
		c:          c,
		binary:     c.binOn,
		sem:        make(chan struct{}, maxInflight),
		expect:     make(chan struct{}, maxInflight),
		pending:    make(map[uint32]*Future),
		readerDone: make(chan struct{}),
	}
	go p.reader()
	return p, nil
}

// Do pipelines one request. It blocks only when maxInflight requests are
// already outstanding (the pipeline's backpressure), then returns a Future.
func (p *Pipeline) Do(req Request) *Future {
	f := &Future{done: make(chan struct{})}
	if err := p.broken(); err != nil {
		f.resp, f.err = Response{}, err
		close(f.done)
		return f
	}
	p.sem <- struct{}{} // in-flight slot; released when the future completes
	p.wmu.Lock()
	var (
		frame []byte
		bp    *[]byte
		encErr error
		tag    uint32
	)
	if p.binary {
		tag = p.c.nextTag()
		bp = getFrameBuf()
		frame, encErr = AppendBinaryRequest((*bp)[:0], req, tag)
	} else {
		frame, encErr = EncodeRequest(req)
	}
	if encErr != nil {
		if bp != nil {
			putFrameBuf(bp)
		}
		p.wmu.Unlock()
		p.finish(f, Response{}, encErr) // this request never touched the wire
		return f
	}
	// Register before the bytes go out so a fast response can never beat the
	// bookkeeping; registration order under wmu is write order, which is
	// what FIFO matching in text mode relies on.
	p.mu.Lock()
	if p.werr != nil || p.closed {
		err := p.werr
		if err == nil {
			err = errPipelineClosed
		}
		p.mu.Unlock()
		if bp != nil {
			putFrameBuf(bp)
		}
		p.wmu.Unlock()
		p.finish(f, Response{}, err)
		return f
	}
	if p.binary {
		p.pending[tag] = f
	} else {
		p.fifo = append(p.fifo, f)
	}
	p.mu.Unlock()
	if t := p.c.opts.Timeout; t > 0 {
		_ = p.c.conn.SetWriteDeadline(time.Now().Add(t))
	}
	_, werr := p.c.conn.Write(frame)
	if bp != nil {
		*bp = frame
		putFrameBuf(bp)
	}
	p.wmu.Unlock()
	if werr != nil {
		// Mid-stream write failure: the connection's framing state is gone,
		// so everything in flight (including f, already registered) fails.
		p.failAll(werr)
		return f
	}
	p.expect <- struct{}{}
	return f
}

// Submit pipelines one submit request.
func (p *Pipeline) Submit(from string, to []string, subject, body string) *Future {
	return p.Do(Request{Op: "submit", From: from, To: to, Subject: subject, Body: body})
}

// SubmitBatch pipelines one tbatch request (the connection must have
// negotiated version ≥ 2; the server refuses it otherwise, like any other
// refused request).
func (p *Pipeline) SubmitBatch(from string, msgs []BatchMsg) *Future {
	return p.Do(Request{Op: "tbatch", From: from, Msgs: msgs})
}

// Close waits for every in-flight request to complete, stops the response
// reader, and returns the pipeline's sticky transport error, if any (in
// which case the underlying connection is dropped so the Client's next use
// reconnects). No Do may be issued concurrently with or after Close.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.expect)
	}
	<-p.readerDone
	p.mu.Lock()
	err := p.werr
	p.mu.Unlock()
	if err != nil {
		p.c.drop()
		return err
	}
	_ = p.c.conn.SetReadDeadline(time.Time{})
	return nil
}

// broken returns the sticky error, or closure, if the pipeline cannot
// accept work.
func (p *Pipeline) broken() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.werr != nil {
		return p.werr
	}
	if p.closed {
		return errPipelineClosed
	}
	return nil
}

// finish completes one future and releases its in-flight slot.
func (p *Pipeline) finish(f *Future, resp Response, err error) {
	f.resp, f.err = resp, err
	close(f.done)
	<-p.sem
}

// failAll latches err and fails every registered in-flight future.
func (p *Pipeline) failAll(err error) {
	p.mu.Lock()
	if p.werr == nil {
		p.werr = err
	} else {
		err = p.werr
	}
	pend := p.pending
	p.pending = make(map[uint32]*Future)
	fifo := p.fifo
	p.fifo = nil
	p.mu.Unlock()
	for _, f := range pend {
		p.finish(f, Response{}, err)
	}
	for _, f := range fifo {
		p.finish(f, Response{}, err)
	}
}

// reader consumes one response per expect token, matching by tag (binary)
// or FIFO order (text). It exits when Close closes the token channel and
// every outstanding response has been read, or on the first transport
// error.
func (p *Pipeline) reader() {
	defer close(p.readerDone)
	var rbuf *[]byte
	if p.binary {
		rbuf = getFrameBuf()
		defer putFrameBuf(rbuf)
	}
	for range p.expect {
		if t := p.c.opts.Timeout; t > 0 {
			_ = p.c.conn.SetReadDeadline(time.Now().Add(t))
		}
		var (
			resp Response
			tag  uint32
			err  error
		)
		if p.binary {
			var payload []byte
			payload, err = p.c.cr.readFrame(rbuf)
			if err == nil {
				resp, tag, err = DecodeBinaryResponse(payload)
			}
		} else {
			resp, err = p.c.readResponse()
		}
		if err != nil {
			p.failAll(err)
			return
		}
		var f *Future
		p.mu.Lock()
		if p.binary {
			f = p.pending[tag]
			delete(p.pending, tag)
		} else if len(p.fifo) > 0 {
			f = p.fifo[0]
			p.fifo = p.fifo[1:]
		}
		p.mu.Unlock()
		if f == nil {
			p.failAll(fmt.Errorf("wire: response with unmatched tag %d", tag))
			return
		}
		r, rerr := respErr(resp)
		p.finish(f, r, rerr)
	}
}
