package wire

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/mailerr"
)

// TestClientDeadlineAgainstHungServer dials a listener that accepts and
// then never responds; the request must fail within the configured timeout
// instead of blocking forever.
func TestClientDeadlineAgainstHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow everything, answer nothing.
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()

	c, err := DialOptions(ln.Addr().String(), Options{Timeout: 150 * time.Millisecond, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Do(Request{Op: "status"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against hung server succeeded")
	}
	if !os.IsTimeout(err) {
		t.Errorf("error = %v, want timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v, want ~150ms", elapsed)
	}
}

// TestOversizedLineGetsErrorResponse sends a line past MaxLine: the server
// must answer with an explanatory error response before hanging up, not
// silently drop the connection (satellite: no more silent ErrTooLong
// disconnects).
func TestOversizedLineGetsErrorResponse(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	_, err := c.Do(Request{Op: "submit", From: "R1.h1.a", To: []string{"R1.h1.b"},
		Body: strings.Repeat("x", MaxLine+1)})
	if err == nil {
		t.Fatal("oversized request succeeded")
	}
	if !errors.Is(err, ErrLineTooLong) {
		t.Errorf("error = %v, want ErrLineTooLong", err)
	}
	if !errors.Is(err, mailerr.ErrOversized) {
		t.Errorf("error = %v does not match mailerr.ErrOversized", err)
	}
}

// TestClientReconnectsAfterBrokenConnection kills the client's TCP
// connection out from under it; the next request must transparently
// reconnect and succeed.
func TestClientReconnectsAfterBrokenConnection(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	// Sever the current connection behind the client's back.
	_ = c.conn.Close()
	// First call may fail (write into closed socket is not retried once
	// read-side state is ambiguous — here the write itself fails, which IS
	// retried on a fresh connection).
	if _, err := c.Status(); err != nil {
		t.Fatalf("Status after severed connection: %v", err)
	}
	if _, err := c.GetMail("R1.h1.alice"); err != nil {
		t.Fatalf("GetMail after reconnect: %v", err)
	}
}

// TestStatusCarriesClusterCounters checks the fault/retry/spool counters
// ride along on status responses.
func TestStatusCarriesClusterCounters(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice", "s1", "s2"); err != nil {
		t.Fatal(err)
	}
	// Force a failover so at least one counter moves.
	if err := c.SetAvailability("s1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h1.alice", []string{"R1.h1.alice"}, "fo", "b"); err != nil {
		t.Fatal(err)
	}
	_, counters, err := c.StatusFull()
	if err != nil {
		t.Fatal(err)
	}
	if counters == nil {
		t.Fatal("status response has no counters")
	}
	if _, ok := counters["spool_depth"]; !ok {
		t.Error("counters missing spool_depth")
	}
	if counters["deposit_failovers"] == 0 {
		t.Errorf("deposit_failovers = 0 after failover submit; counters = %v", counters)
	}
}

// TestDialRetriesWhileServerComesUp points the client at a port with no
// listener yet: dial failures are retried, so a server that comes up within
// the retry budget is reached.
func TestDialRetriesWhileServerComesUp(t *testing.T) {
	s := newServer(t)
	c, err := DialOptions(s.Addr(), Options{Timeout: time.Second, Retries: 3, RetryBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Break the connection, then issue a request: connect-phase failures
	// must burn retries, not return immediately.
	_ = c.conn.Close()
	if _, err := c.Status(); err != nil {
		t.Fatalf("Status with retries: %v", err)
	}
}
