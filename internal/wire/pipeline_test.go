package wire

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipelineRegister registers sender and recipients through a plain client.
func pipelineRegister(t *testing.T, c *Client, users ...string) {
	t.Helper()
	for _, u := range users {
		if err := c.Register(u); err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
	}
}

// TestPipelineBinaryBurst drives a pipelined burst of submits over the
// binary framing and checks every future completes with a distinct ID.
func TestPipelineBinaryBurst(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")

	p, err := c.Pipeline(context.Background(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !c.BinaryFraming() {
		t.Fatal("pipeline on a v3 server did not negotiate binary framing")
	}
	const n = 200
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s"+strconv.Itoa(i), "body")
	}
	ids := make(map[string]bool, n)
	for i, f := range futs {
		resp, err := f.Response()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if resp.ID == "" || ids[resp.ID] {
			t.Fatalf("future %d: id %q (duplicate or empty)", i, resp.ID)
		}
		ids[resp.ID] = true
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	msgs, err := c.GetMail("R1.h1.bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != n {
		t.Fatalf("delivered %d of %d", len(msgs), n)
	}
}

// TestPipelineOrdering pins the worker-pool guarantee the auditors rely on:
// one connection's submits execute in submission order even when pipelined.
// Subjects carry the submission index; the recipient's mailbox (deposit
// order per server) must list them in order.
func TestPipelineOrdering(t *testing.T) {
	s, err := NewServerWith("127.0.0.1:0", []string{"s1"}, ServerConfig{WireWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")

	p, err := c.Pipeline(context.Background(), 32)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, strconv.Itoa(i), "b")
	}
	for i, f := range futs {
		if _, err := f.Response(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	msgs, err := c.GetMail("R1.h1.bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != n {
		t.Fatalf("delivered %d of %d", len(msgs), n)
	}
	for i, m := range msgs {
		if m.Subject != strconv.Itoa(i) {
			t.Fatalf("position %d holds submit #%s: per-connection order broken", i, m.Subject)
		}
	}
}

// TestPipelineTextMode pipelines against the same server with a TextOnly
// client: same semantics, FIFO-matched responses.
func TestPipelineTextMode(t *testing.T) {
	s := newServer(t)
	c, err := DialOptions(s.Addr(), Options{TextOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")

	p, err := c.Pipeline(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.BinaryFraming() {
		t.Fatal("TextOnly client negotiated binary framing")
	}
	const n = 50
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b"+strconv.Itoa(i))
	}
	for i, f := range futs {
		if _, err := f.Response(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := c.GetMail("R1.h1.bob"); len(msgs) != n {
		t.Fatalf("delivered %d of %d", len(msgs), n)
	}
}

// TestPipelineConcurrentProducers hammers one pipeline from many goroutines;
// run under -race this is the pipeline's data-race gate.
func TestPipelineConcurrentProducers(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")

	p, err := c.Pipeline(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const producers, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := p.Submit("R1.h1.alice", []string{"R1.h1.bob"},
					fmt.Sprintf("g%d-%d", g, i), "b").Response()
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				if resp.ID == "" {
					errs <- fmt.Errorf("g%d i%d: empty id", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := c.GetMail("R1.h1.bob"); len(msgs) != producers*per {
		t.Fatalf("delivered %d of %d", len(msgs), producers*per)
	}
}

// TestPipelineMixedVerbs interleaves submits, batches, status, and refused
// requests in one pipelined window.
func TestPipelineMixedVerbs(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")

	p, err := c.Pipeline(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "one", "b")
	fb := p.SubmitBatch("R1.h1.alice", []BatchMsg{
		{To: []string{"R1.h1.bob"}, Subject: "two"},
		{To: []string{"R1.h1.bob"}, Subject: "three"},
	})
	fstat := p.Do(Request{Op: "status"})
	fbad := p.Submit("R1.h1.alice", nil, "no recipients", "b")
	fmail := p.Do(Request{Op: "getmail", User: "R1.h1.bob"})

	if resp, err := fs.Response(); err != nil || resp.ID == "" {
		t.Fatalf("submit: id=%q err=%v", resp.ID, err)
	}
	if resp, err := fb.Response(); err != nil || len(resp.IDs) != 2 || len(resp.Failed) != 0 {
		t.Fatalf("tbatch: %+v err=%v", resp, err)
	}
	if resp, err := fstat.Response(); err != nil || resp.Status == nil {
		t.Fatalf("status: err=%v", err)
	}
	if _, err := fbad.Response(); err == nil || !strings.Contains(err.Error(), "no recipients") {
		t.Fatalf("refused submit: err=%v", err)
	}
	resp, err := fmail.Response()
	if err != nil {
		t.Fatalf("getmail: %v", err)
	}
	// The pipeline preserved order, so all three earlier messages are there.
	if len(resp.Messages) != 3 {
		t.Fatalf("getmail saw %d of 3 messages", len(resp.Messages))
	}
	if resp.Polls == 0 || resp.LastChecking == 0 {
		t.Fatalf("getmail polls=%d last_checking=%d: v3 poll accounting missing",
			resp.Polls, resp.LastChecking)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineAfterClose pins the contract: Do after Close fails fast.
func TestPipelineAfterClose(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	pipelineRegister(t, c, "R1.h1.alice", "R1.h1.bob")
	p, err := c.Pipeline(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b").Response(); err == nil {
		t.Fatal("Do after Close succeeded")
	}
	// The client itself remains usable on the same connection.
	if _, err := c.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b"); err != nil {
		t.Fatalf("client after pipeline close: %v", err)
	}
}

// TestPipelineServerGone: killing the server mid-burst fails every future
// with an error instead of hanging, and Close reports the failure.
func TestPipelineServerGone(t *testing.T) {
	s, err := NewServerWith("127.0.0.1:0", []string{"s1"}, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(s.Addr(), Options{Timeout: 2 * time.Second, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("R1.h1.bob"); err != nil {
		t.Fatal(err)
	}
	p, err := c.Pipeline(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, 0, 64)
	futs = append(futs, p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b"))
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		f := p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b")
		futs = append(futs, f)
		if _, err := f.Response(); err != nil {
			break
		}
	}
	sawErr := false
	for _, f := range futs {
		if _, err := f.Response(); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no future failed after server shutdown")
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close reported success on a broken pipeline")
	}
}
