// Package wire exposes a live mail cluster (internal/livenet) over TCP with
// a newline-delimited JSON protocol. It is the deployable surface of the
// reproduction: the same authority-list and GetMail semantics the paper
// defines, reachable from real processes.
//
// Protocol: one JSON object per line in each direction. Requests carry an
// "op" plus op-specific fields; responses carry "ok", an optional "error",
// and op-specific results. Operations:
//
//	register  {user, servers[]}            → {ok}
//	submit    {from, to[], subject, body}  → {ok, id}
//	checkmail {user, server}               → {ok, messages[]}
//	getmail   {user}                       → {ok, messages[]}   (server-side GetMail walk)
//	status    {}                           → {ok, status}       (versioned observability snapshot)
//	crash     {server} / recover {server}  → {ok}               (operations testing hook)
//
// The status result is a versioned StatusSnapshot: per-server rows plus the
// cluster's full instrument set — counters, gauges, and per-stage latency
// histograms with precomputed p50/p95/p99 — so operational tooling (mailctl)
// and the machine-readable exports read the same registry.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
)

// MaxLine bounds a single protocol line (1 MiB), protecting the server from
// unbounded memory per connection.
const MaxLine = 1 << 20

// Request is the client→server frame.
type Request struct {
	Op      string   `json:"op"`
	User    string   `json:"user,omitempty"`
	Servers []string `json:"servers,omitempty"`
	Server  string   `json:"server,omitempty"`
	From    string   `json:"from,omitempty"`
	To      []string `json:"to,omitempty"`
	Subject string   `json:"subject,omitempty"`
	Body    string   `json:"body,omitempty"`
}

// Message is a mail message on the wire.
type Message struct {
	ID      string `json:"id"`
	From    string `json:"from"`
	Subject string `json:"subject"`
	Body    string `json:"body"`
}

// ServerStatus is one row of a status response.
type ServerStatus struct {
	Name     string `json:"name"`
	Up       bool   `json:"up"`
	Deposits int64  `json:"deposits"`
}

// StatusSnapshot is the versioned result of the status op: per-server rows
// plus the cluster's full instrument set. Version follows obs.SnapshotVersion
// so consumers can key rendering decisions when the schema evolves.
type StatusSnapshot struct {
	Version int            `json:"version"`
	Servers []ServerStatus `json:"servers"`
	// Counters holds the cluster's flat counters: the fault/retry/spool set
	// (injected_drops, deposit_retries, deposit_failovers, submit_spooled,
	// spool_redelivered, spool_retries, ...) plus the per-server
	// "<name>.deposits"/"<name>.checks" instruments.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds point-in-time levels, e.g. "spool_depth".
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds the tracer-fed per-stage latency distributions
	// ("lat_submit", "lat_deposit", "lat_retrieve", "lat_e2e", ...) with
	// precomputed p50/p95/p99, in nanoseconds.
	Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// Response is the server→client frame.
type Response struct {
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	ID       string    `json:"id,omitempty"`
	Messages []Message `json:"messages,omitempty"`
	// Status carries the versioned observability snapshot on status
	// responses.
	Status *StatusSnapshot `json:"status,omitempty"`
}

// Server serves the wire protocol over a listener, backed by a live
// cluster. Create with NewServer; stop with Close.
type Server struct {
	cluster *livenet.Cluster
	names   []string // server names, registration order

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// agents holds one server-side agent per user so the getmail op uses
	// the paper's retrieval algorithm with persistent LastCheckingTime.
	agentMu sync.Mutex
	agents  map[names.Name]*livenet.Agent
}

// NewServer builds a cluster with the given server names and starts
// accepting connections on addr (e.g. "127.0.0.1:0"). The returned server
// owns the cluster.
func NewServer(addr string, serverNames []string) (*Server, error) {
	if len(serverNames) == 0 {
		return nil, errors.New("wire: need at least one server name")
	}
	cluster := livenet.NewCluster()
	for _, n := range serverNames {
		if _, err := cluster.AddServer(n); err != nil {
			cluster.Close()
			return nil, err
		}
	}
	// Spooled redelivery makes submits accept-and-retry instead of failing
	// outright when every authority server is briefly down.
	if err := cluster.EnableSpool(livenet.SpoolConfig{}); err != nil {
		cluster.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	s := &Server{
		cluster: cluster,
		names:   append([]string(nil), serverNames...),
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		agents:  make(map[names.Name]*livenet.Agent),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, waits for handlers to
// exit, and shuts down the cluster.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.cluster.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), MaxLine)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var resp Response
		if req, err := DecodeRequest(scanner.Bytes()); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// A line past MaxLine stops the scanner without consuming it; tell the
	// client why instead of silently hanging up on them.
	if errors.Is(scanner.Err(), bufio.ErrTooLong) {
		_ = enc.Encode(Response{Error: fmt.Sprintf("request line exceeds %d bytes", MaxLine)})
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case "register":
		return s.opRegister(req)
	case "submit":
		return s.opSubmit(req)
	case "checkmail":
		return s.opCheckMail(req)
	case "getmail":
		return s.opGetMail(req)
	case "status":
		return s.opStatus()
	case "crash", "recover":
		return s.opAvailability(req)
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func fail(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}

func (s *Server) opRegister(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	servers := req.Servers
	if len(servers) == 0 {
		servers = s.names // default: all servers, registration order
	}
	for _, n := range servers {
		if _, ok := s.cluster.Server(n); !ok {
			return fail("unknown server %q", n)
		}
	}
	s.cluster.Directory().SetAuthority(user, servers)
	return Response{OK: true}
}

func (s *Server) opSubmit(req Request) Response {
	from, err := names.Parse(req.From)
	if err != nil {
		return fail("from: %v", err)
	}
	var to []names.Name
	for _, raw := range req.To {
		n, err := names.Parse(raw)
		if err != nil {
			return fail("to %q: %v", raw, err)
		}
		to = append(to, n)
	}
	if len(to) == 0 {
		return fail("no recipients")
	}
	id, err := s.cluster.Submit(from, to, req.Subject, req.Body)
	if err != nil {
		return fail("submit: %v", err)
	}
	return Response{OK: true, ID: id.String()}
}

func (s *Server) opCheckMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	msgs, err := srv.CheckMail(user)
	if err != nil {
		return fail("checkmail: %v", err)
	}
	return Response{OK: true, Messages: wireMessages(msgs)}
}

func (s *Server) opGetMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	s.agentMu.Lock()
	agent, ok := s.agents[user]
	if !ok {
		agent, err = s.cluster.NewAgent(user)
		if err != nil {
			s.agentMu.Unlock()
			return fail("getmail: %v", err)
		}
		s.agents[user] = agent
	}
	msgs := agent.GetMail()
	s.agentMu.Unlock()
	return Response{OK: true, Messages: wireMessages(msgs)}
}

func (s *Server) opStatus() Response {
	var rows []ServerStatus
	for _, n := range s.names {
		srv, ok := s.cluster.Server(n)
		if !ok {
			continue
		}
		rows = append(rows, ServerStatus{Name: n, Up: srv.Up(), Deposits: srv.Deposits()})
	}
	snap := s.cluster.Snapshot()
	return Response{OK: true, Status: &StatusSnapshot{
		Version:    snap.Version,
		Servers:    rows,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}}
}

func (s *Server) opAvailability(req Request) Response {
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	if req.Op == "crash" {
		srv.Crash()
	} else {
		srv.Recover()
	}
	return Response{OK: true}
}

func wireMessages(msgs []mail.Stored) []Message {
	out := make([]Message, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, Message{
			ID: m.ID.String(), From: m.From.String(),
			Subject: m.Subject, Body: m.Body,
		})
	}
	return out
}

// Options tune a Client's fault behavior.
type Options struct {
	// Timeout is the per-request deadline covering write and response read
	// (default 5s). A request against a hung or partitioned server fails
	// with a timeout error instead of blocking forever. Negative disables.
	Timeout time.Duration
	// Retries bounds how many extra attempts Do makes when a request
	// provably never reached the server — a failed dial or a failed write
	// (the protocol executes only complete newline-terminated lines, and a
	// failed write never delivers the terminator). Responses that time out
	// after a successful write are NOT retried: the request may have
	// executed, and submit is not idempotent. Default 2; negative disables.
	Retries int
	// RetryBackoff is the pause before each retry (default 50ms).
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	return o
}

// Client is a wire-protocol client. It owns one TCP connection at a time
// and transparently reconnects after a broken one. Safe for sequential use;
// guard with your own mutex for concurrent callers.
type Client struct {
	addr string
	opts Options

	conn net.Conn
	sc   *bufio.Scanner
}

// Dial connects to a wire server with default Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a wire server with explicit deadline/retry
// behavior.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	d := net.Dialer{}
	if c.opts.Timeout > 0 {
		d.Timeout = c.opts.Timeout
	}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.sc = bufio.NewScanner(conn)
	c.sc.Buffer(make([]byte, 0, 4096), MaxLine)
	return nil
}

// drop discards a broken connection; the next Do reconnects.
func (c *Client) drop() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Do sends one request and reads one response, under the configured
// deadline. Dial and write failures are retried up to Options.Retries times
// (reconnecting in between); a failure after the request was fully written
// is returned as-is, with the connection dropped so the next call starts
// fresh. A Response with ok=false is returned as an error.
func (c *Client) Do(req Request) (Response, error) {
	// Refuse oversized requests before touching the wire: the server-side
	// scanner would abort the whole connection on such a line, and the
	// client's own response scanner has the same MaxLine cap.
	line, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.opts.RetryBackoff)
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				continue
			}
		}
		if c.opts.Timeout > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		}
		if n, err := c.conn.Write(line); err != nil {
			c.drop()
			lastErr = err
			if n >= len(line) {
				// The terminator made it out before the error, so the server
				// may execute this request: not safe to retry.
				return Response{}, err
			}
			// The newline terminator never made it out, so the server will
			// not execute this request: safe to retry on a new connection.
			continue
		}
		resp, err := c.readResponse()
		if err != nil {
			// The request may have executed server-side; surface the error
			// rather than risking a duplicate submit.
			c.drop()
			return Response{}, err
		}
		if c.opts.Timeout > 0 {
			_ = c.conn.SetDeadline(time.Time{})
		}
		if !resp.OK {
			return resp, fmt.Errorf("wire: %s", resp.Error)
		}
		return resp, nil
	}
	return Response{}, fmt.Errorf("wire: request failed after %d attempts: %w",
		c.opts.Retries+1, lastErr)
}

func (c *Client) readResponse() (Response, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, errors.New("wire: connection closed")
	}
	return DecodeResponse(c.sc.Bytes())
}

// Register records a user's authority list (empty = all servers).
func (c *Client) Register(user string, servers ...string) error {
	_, err := c.Do(Request{Op: "register", User: user, Servers: servers})
	return err
}

// Submit sends a message and returns its ID.
func (c *Client) Submit(from string, to []string, subject, body string) (string, error) {
	resp, err := c.Do(Request{Op: "submit", From: from, To: to, Subject: subject, Body: body})
	return resp.ID, err
}

// GetMail runs the server-side GetMail walk for the user.
func (c *Client) GetMail(user string) ([]Message, error) {
	resp, err := c.Do(Request{Op: "getmail", User: user})
	return resp.Messages, err
}

// Status reports per-server availability and deposit counts.
func (c *Client) Status() ([]ServerStatus, error) {
	snap, err := c.StatusSnapshot()
	return snap.Servers, err
}

// StatusFull reports the server rows plus a flat counter map (counters and
// gauges merged, so the old keys — including "spool_depth" — keep working).
// Prefer StatusSnapshot for the structured form with histograms.
func (c *Client) StatusFull() ([]ServerStatus, map[string]int64, error) {
	snap, err := c.StatusSnapshot()
	if err != nil {
		return snap.Servers, nil, err
	}
	flat := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		flat[k] = v
	}
	for k, v := range snap.Gauges {
		flat[k] = v
	}
	return snap.Servers, flat, nil
}

// StatusSnapshot fetches the versioned observability snapshot: server rows,
// counters, gauges, and per-stage latency histograms.
func (c *Client) StatusSnapshot() (StatusSnapshot, error) {
	resp, err := c.Do(Request{Op: "status"})
	if err != nil || resp.Status == nil {
		return StatusSnapshot{}, err
	}
	return *resp.Status, nil
}

// SetAvailability crashes or recovers a named server.
func (c *Client) SetAvailability(server string, up bool) error {
	op := "recover"
	if !up {
		op = "crash"
	}
	_, err := c.Do(Request{Op: op, Server: server})
	return err
}
