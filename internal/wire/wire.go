// Package wire exposes a live mail cluster (internal/livenet) over TCP with
// a newline-delimited JSON protocol and, since protocol version 3, an
// optional negotiated binary framing. It is the deployable surface of the
// reproduction: the same authority-list and GetMail semantics the paper
// defines, reachable from real processes.
//
// Text protocol: one JSON object per line in each direction. Requests carry
// an "op" plus op-specific fields; responses carry "ok", an optional
// "error", and op-specific results. Operations:
//
//	hello     {version, binary}            → {ok, version, binary}  (protocol negotiation)
//	register  {user, servers[]}            → {ok}
//	submit    {from, to[], subject, body}  → {ok, id}
//	tbatch    {from, msgs[]}               → {ok, ids[], failed[]}  (v2: batched submit)
//	checkmail {user, server}               → {ok, messages[]}
//	getmail   {user}                       → {ok, messages[], polls, last_checking}
//	status    {}                           → {ok, status}       (versioned observability snapshot)
//	crash     {server} / recover {server}  → {ok}               (operations testing hook)
//
// Failed responses carry an optional machine-readable "code" drawn from the
// mailerr taxonomy (unknown_user, server_down, oversized, timeout); clients
// reconstruct typed errors from it so errors.Is works across the TCP hop.
//
// The tbatch verb is version-gated: a connection must negotiate protocol
// version ≥ 2 with a hello line first. Clients that skip the handshake (or
// talk to an old server that rejects it) fall back to single submits.
//
// Version 3 adds the binary framing (see binframe.go): a hello carrying
// {"binary": true} on a connection whose negotiated version is ≥ 3 switches
// both directions to length-prefixed CRC-checked frames, starting with the
// first request after the (text) hello response. Binary frames carry a
// client-assigned tag, which is what allows pipelining (Client.Pipeline):
// up to MaxInflight tagged requests in flight per connection. The switch is
// explicit opt-in — negotiating version 3 alone never changes the framing —
// and sticky for the connection's lifetime. v1/v2 peers interoperate
// unchanged: the negotiated version is min(client, server) and the binary
// field is ignored by servers that predate it.
//
// Server side, connections do not get a handler goroutine each. A reader
// goroutine per connection decodes requests and enqueues them on a
// per-connection FIFO queue drained by a bounded worker pool
// (internal/server.WorkPool, size ServerConfig.WireWorkers), preserving
// per-connection order; a full queue blocks the reader, which is the
// transport's backpressure (see DESIGN.md §10).
//
// The status result is a versioned StatusSnapshot: per-server rows plus the
// cluster's full instrument set — counters, gauges, and per-stage latency
// histograms with precomputed p50/p95/p99 — so operational tooling (mailctl)
// and the machine-readable exports read the same registry. Snapshot v2 adds
// the wire-path instruments (wire_bytes_in/wire_bytes_out, lat_wire_decode).
package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/server"
)

// MaxLine bounds a single protocol line or binary frame payload (1 MiB),
// protecting the server from unbounded memory per connection.
const MaxLine = 1 << 20

// ProtocolVersion is the highest protocol version this package speaks.
// Version 1 is the original single-transfer protocol; version 2 adds the
// tbatch verb (batched submit); version 3 adds the negotiated binary framing
// with tagged (pipelinable) frames and getmail poll accounting. A connection
// speaks version 1 until a hello exchange negotiates min(client, server).
const ProtocolVersion = 3

// Version floors for the gated features. Gates compare against these, never
// against ProtocolVersion, so bumping the ceiling cannot re-gate an old verb.
const (
	protoTBatch = 2 // tbatch verb
	protoBinary = 3 // binary framing, tags, getmail polls
	protoQuery  = 3 // query verb (sketch-pruned content search)
)

// writeStallTimeout bounds one response write. A peer that stops reading
// cannot wedge a pool worker forever: the write times out, the connection is
// closed, and the worker moves on.
const writeStallTimeout = 30 * time.Second

// Request is the client→server frame.
type Request struct {
	Op      string   `json:"op"`
	User    string   `json:"user,omitempty"`
	Servers []string `json:"servers,omitempty"`
	Server  string   `json:"server,omitempty"`
	From    string   `json:"from,omitempty"`
	To      []string `json:"to,omitempty"`
	Subject string   `json:"subject,omitempty"`
	Body    string   `json:"body,omitempty"`
	// Version is the client's protocol version on hello requests.
	Version int `json:"version,omitempty"`
	// Binary, on hello requests, asks to switch the connection to the v3
	// binary framing. Granted only when the negotiated version is ≥ 3;
	// ignored (and invisible) to older servers.
	Binary bool `json:"binary,omitempty"`
	// Msgs carries the batch on tbatch requests (protocol version ≥ 2).
	Msgs []BatchMsg `json:"msgs,omitempty"`
	// Query carries an attr.Query in its canonical text form on query
	// requests (protocol version ≥ 3), e.g. "content=budget".
	Query string `json:"query,omitempty"`
}

// BatchMsg is one message of a tbatch request. The whole batch shares the
// request's From.
type BatchMsg struct {
	To      []string `json:"to"`
	Subject string   `json:"subject,omitempty"`
	Body    string   `json:"body,omitempty"`
}

// BatchFailure reports one tbatch item the server could not submit. Index
// points into the request's Msgs; Code is the mailerr taxonomy code when the
// failure maps onto it.
type BatchFailure struct {
	Index int    `json:"index"`
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Message is a mail message on the wire.
type Message struct {
	ID      string `json:"id"`
	From    string `json:"from"`
	Subject string `json:"subject"`
	Body    string `json:"body"`
}

// ServerStatus is one row of a status response.
type ServerStatus struct {
	Name     string `json:"name"`
	Up       bool   `json:"up"`
	Deposits int64  `json:"deposits"`
}

// StatusSnapshot is the versioned result of the status op: per-server rows
// plus the cluster's full instrument set. Version follows obs.SnapshotVersion
// so consumers can key rendering decisions when the schema evolves.
type StatusSnapshot struct {
	Version int            `json:"version"`
	Servers []ServerStatus `json:"servers"`
	// Counters holds the cluster's flat counters: the fault/retry/spool set
	// (injected_drops, deposit_retries, deposit_failovers, submit_spooled,
	// spool_redelivered, spool_retries, ...), the wire-path byte counters
	// (wire_bytes_in, wire_bytes_out — snapshot v2), plus the per-server
	// "<name>.deposits"/"<name>.checks" instruments.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds point-in-time levels, e.g. "spool_depth".
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds the tracer-fed per-stage latency distributions
	// ("lat_submit", "lat_deposit", "lat_retrieve", "lat_e2e", and — snapshot
	// v2 — the request-decode cost "lat_wire_decode") with precomputed
	// p50/p95/p99, in nanoseconds.
	Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// Response is the server→client frame.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the machine-readable mailerr taxonomy code for Error, when
	// the failure maps onto one (unknown_user, server_down, oversized,
	// timeout). Clients rebuild typed errors from it via mailerr.FromCode.
	Code     string    `json:"code,omitempty"`
	ID       string    `json:"id,omitempty"`
	Messages []Message `json:"messages,omitempty"`
	// Version is the negotiated protocol version on hello responses.
	Version int `json:"version,omitempty"`
	// Binary, on hello responses, confirms the connection switches to the
	// v3 binary framing after this response.
	Binary bool `json:"binary,omitempty"`
	// Polls is the user's cumulative server-poll count after a getmail walk
	// (v3 servers); LastChecking is the walk's LastCheckingTime in UnixNano.
	// Together they let remote load generators run the paper's §3.1.2c poll
	// audits without in-process agent access.
	Polls        int   `json:"polls,omitempty"`
	LastChecking int64 `json:"last_checking,omitempty"`
	// IDs holds the per-item message IDs of a tbatch response, aligned with
	// the request's Msgs ("" for failed items).
	IDs []string `json:"ids,omitempty"`
	// Failed lists the tbatch items that were not submitted.
	Failed []BatchFailure `json:"failed,omitempty"`
	// Status carries the versioned observability snapshot on status
	// responses.
	Status *StatusSnapshot `json:"status,omitempty"`
	// Matches lists the users holding a match on query responses, sorted and
	// deduplicated across servers; QueryStats accounts the fan-out.
	Matches    []string    `json:"matches,omitempty"`
	QueryStats *QueryStats `json:"query_stats,omitempty"`
}

// QueryStats accounts one wire query's fan-out over the cluster: every
// server was either searched (Visited), skipped on a sketch proof of absence
// (Pruned), or down (Unavailable) — so Visited+Pruned+Unavailable = Servers,
// and a client can tell a complete result from a partial one.
type QueryStats struct {
	Servers     int `json:"servers"`
	Visited     int `json:"visited"`
	Pruned      int `json:"pruned,omitempty"`
	Unavailable int `json:"unavailable,omitempty"`
	// SketchFP counts visited servers whose sketch passed the probe but whose
	// search then returned nothing: Bloom false positives.
	SketchFP int `json:"sketch_fp,omitempty"`
}

// ServerConfig tunes a wire server beyond the cluster it fronts.
type ServerConfig struct {
	// Cluster configures the backing livenet cluster (durable stores via
	// DataDir, fsync policy, ...).
	Cluster livenet.ClusterConfig
	// WireWorkers bounds the worker pool that executes decoded requests
	// (0 → one worker per scheduler thread). This replaces goroutine-per-
	// connection handling: concurrency is this bound regardless of how many
	// connections are open.
	WireWorkers int
	// QueueDepth caps one connection's decoded-but-unexecuted requests
	// (0 → 64). A full queue blocks the connection's reader — backpressure,
	// not disconnection.
	QueueDepth int
	// MaxProtocol caps the protocol version the server negotiates
	// (0 → ProtocolVersion). The compatibility tests use it to stand up
	// yesterday's servers.
	MaxProtocol int
}

// Server serves the wire protocol over a listener, backed by a live
// cluster. Create with NewServer; stop with Close.
type Server struct {
	cluster    *livenet.Cluster
	names      []string // server names, registration order
	pool       *server.WorkPool
	queueDepth int
	maxProto   int
	termIndex  bool // cluster runs the term index; query verb is servable

	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	decodeLat *obs.Histogram

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// agents holds one server-side agent per user so the getmail op uses
	// the paper's retrieval algorithm with persistent LastCheckingTime.
	agentMu sync.Mutex
	agents  map[names.Name]*livenet.Agent
}

// NewServer builds a memory-backed cluster with the given server names and
// starts accepting connections on addr (e.g. "127.0.0.1:0"). The returned
// server owns the cluster.
func NewServer(addr string, serverNames []string) (*Server, error) {
	return NewServerWith(addr, serverNames, ServerConfig{})
}

// NewServerCluster is NewServer with an explicit cluster configuration —
// the hook maild uses to run durable stores (ClusterConfig.DataDir) behind
// the wire protocol.
func NewServerCluster(addr string, serverNames []string, cfg livenet.ClusterConfig) (*Server, error) {
	return NewServerWith(addr, serverNames, ServerConfig{Cluster: cfg})
}

// NewServerWith is NewServer with the full server configuration: cluster,
// worker-pool size, queue depth, and protocol ceiling.
func NewServerWith(addr string, serverNames []string, cfg ServerConfig) (*Server, error) {
	if len(serverNames) == 0 {
		return nil, errors.New("wire: need at least one server name")
	}
	cluster := livenet.NewClusterWith(cfg.Cluster)
	for _, n := range serverNames {
		if _, err := cluster.AddServer(n); err != nil {
			cluster.Close()
			return nil, err
		}
	}
	// Spooled redelivery makes submits accept-and-retry instead of failing
	// outright when every authority server is briefly down.
	if err := cluster.EnableSpool(livenet.SpoolConfig{}); err != nil {
		cluster.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	maxProto := cfg.MaxProtocol
	if maxProto <= 0 || maxProto > ProtocolVersion {
		maxProto = ProtocolVersion
	}
	reg := cluster.Obs()
	s := &Server{
		cluster:    cluster,
		names:      append([]string(nil), serverNames...),
		pool:       server.NewWorkPool(cfg.WireWorkers),
		queueDepth: cfg.QueueDepth,
		maxProto:   maxProto,
		termIndex:  cfg.Cluster.TermIndex,
		bytesIn:    reg.Counter("wire_bytes_in"),
		bytesOut:   reg.Counter("wire_bytes_out"),
		decodeLat:  reg.Histogram("lat_wire_decode", nil),
		ln:         ln,
		conns:      make(map[net.Conn]struct{}),
		agents:     make(map[names.Name]*livenet.Agent),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Cluster exposes the backing live cluster — the hook load generators use
// for fault injection and settle checks against a wire server they own.
func (s *Server) Cluster() *livenet.Cluster { return s.cluster }

// Close stops accepting, closes every connection, waits for handlers to
// exit, and shuts down the worker pool and the cluster.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
	s.cluster.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// connState is one connection's negotiated protocol state plus its write
// half. ver and binary are written only by hello work items; the reader
// observes the framing switch through the hello's completion channel and
// workers through the queue's own ordering, so no extra lock is needed for
// them. wmu serializes the rare cross-goroutine writes (a reader-side
// framing error racing a worker's response).
type connState struct {
	srv    *Server
	conn   net.Conn
	ver    int
	binary bool
	wmu    sync.Mutex
}

func (st *connState) write(b []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	_ = st.conn.SetWriteDeadline(time.Now().Add(writeStallTimeout))
	n, err := st.conn.Write(b)
	if n > 0 {
		st.srv.bytesOut.Add(int64(n))
	}
	if err != nil {
		// A dead or stalled peer: close so the reader unblocks too.
		_ = st.conn.Close()
	}
	return err
}

func (st *connState) writeText(resp Response) {
	b, err := EncodeResponse(resp)
	if err != nil {
		b, _ = EncodeResponse(Response{Error: "response too large", Code: mailerr.Code(err)})
	}
	_ = st.write(b)
}

func (st *connState) writeBinary(op byte, tag uint32, resp Response) {
	bp := getFrameBuf()
	frame, err := AppendBinaryResponse((*bp)[:0], op, tag, resp)
	if err != nil {
		frame, _ = AppendBinaryResponse((*bp)[:0], op, tag,
			Response{Error: "response too large", Code: mailerr.Code(err)})
	}
	_ = st.write(frame)
	*bp = frame
	putFrameBuf(bp)
}

func (st *connState) respond(bin bool, op byte, tag uint32, resp Response) {
	if bin {
		st.writeBinary(op, tag, resp)
	} else {
		st.writeText(resp)
	}
}

// countingReader feeds the wire_bytes_in counter from the socket reads
// underneath the buffered reader.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(int64(n))
	}
	return n, err
}

// handle is one connection's reader loop: decode a request (text line or
// binary frame, per the connection's negotiated framing), enqueue it on the
// connection's work queue, repeat. Execution and response writes happen on
// the worker pool; a full queue blocks this loop, which stops reading the
// socket — backpressure via the peer's TCP window.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	st := &connState{srv: s, conn: conn, ver: 1}
	q := s.pool.NewQueue(s.queueDepth)
	cr := newConnReader(countingReader{r: conn, c: s.bytesIn})
	framep := getFrameBuf()
	defer func() {
		q.Close()
		putFrameBuf(framep)
		cr.release()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		var ok bool
		if st.binary {
			ok = s.serveBinaryFrame(cr, framep, q, st)
		} else {
			ok = s.serveTextLine(cr, q, st)
		}
		if !ok {
			return
		}
	}
}

func (s *Server) serveTextLine(cr *connReader, q *server.WorkQueue, st *connState) bool {
	line, err := cr.readLine()
	if err != nil {
		// A line past MaxLine cannot be consumed; tell the client why
		// instead of silently hanging up on them.
		if errors.Is(err, ErrLineTooLong) {
			st.writeText(Response{
				Error: fmt.Sprintf("request line exceeds %d bytes", MaxLine),
				Code:  mailerr.CodeOversized,
			})
		}
		return false
	}
	start := time.Now()
	req, derr := DecodeRequest(line)
	s.decodeLat.Observe(float64(time.Since(start)))
	if derr != nil {
		resp := Response{Error: fmt.Sprintf("bad request: %v", derr), Code: mailerr.Code(derr)}
		return q.Enqueue(func() { st.writeText(resp) })
	}
	return s.enqueue(q, st, req, 0, false)
}

func (s *Server) serveBinaryFrame(cr *connReader, framep *[]byte, q *server.WorkQueue, st *connState) bool {
	payload, err := cr.readFrame(framep)
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrFrameCorrupt) {
			st.writeBinary(binOpJSON, 0, Response{Error: err.Error(), Code: mailerr.Code(err)})
		}
		return false
	}
	start := time.Now()
	req, tag, derr := DecodeBinaryRequest(payload)
	s.decodeLat.Observe(float64(time.Since(start)))
	if derr != nil {
		// The frame checksummed clean but the payload is malformed: the
		// peer's codec cannot be trusted, so answer and drop the connection.
		st.writeBinary(binOpJSON, tag, Response{Error: derr.Error(), Code: mailerr.Code(derr)})
		return false
	}
	return s.enqueue(q, st, req, tag, true)
}

// enqueue hands one decoded request to the connection's work queue. hello is
// special: the reader must not read the next bytes until the handshake
// response is out and the framing switch (if granted) applied, so it waits
// for the work item to finish — which also orders the switch after every
// earlier response on the queue.
func (s *Server) enqueue(q *server.WorkQueue, st *connState, req Request, tag uint32, bin bool) bool {
	op := binaryOpFor(req.Op)
	if req.Op == "hello" {
		done := make(chan struct{})
		ok := q.Enqueue(func() {
			defer close(done)
			st.respond(bin, op, tag, s.opHello(req, st))
		})
		if ok {
			<-done
		}
		return ok
	}
	return q.Enqueue(func() {
		st.respond(bin, op, tag, s.dispatch(req, st))
	})
}

func (s *Server) dispatch(req Request, st *connState) Response {
	switch req.Op {
	case "hello":
		return s.opHello(req, st)
	case "register":
		return s.opRegister(req)
	case "submit":
		return s.opSubmit(req)
	case "tbatch":
		return s.opTBatch(req, st.ver)
	case "query":
		return s.opQuery(req, st.ver)
	case "checkmail":
		return s.opCheckMail(req)
	case "getmail":
		return s.opGetMail(req)
	case "status":
		return s.opStatus()
	case "crash", "recover":
		return s.opAvailability(req)
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func fail(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}

// failErr reports a failure whose cause may map onto the mailerr taxonomy;
// the code rides along so the client can rebuild a typed error.
func failErr(prefix string, err error) Response {
	return Response{Error: fmt.Sprintf("%s: %v", prefix, err), Code: mailerr.Code(err)}
}

// opHello negotiates the connection's protocol version to
// min(client, server) and, when the client asks and the version allows,
// switches the connection to binary framing (sticky once on: a later hello
// cannot switch back — the peer could never know which framing the
// in-flight responses use). A missing or absurd client version counts as 1,
// the pre-handshake protocol.
func (s *Server) opHello(req Request, st *connState) Response {
	v := req.Version
	if v < 1 {
		v = 1
	}
	if v > s.maxProto {
		v = s.maxProto
	}
	st.ver = v
	if req.Binary && v >= protoBinary {
		st.binary = true
	}
	return Response{OK: true, Version: v, Binary: st.binary}
}

func (s *Server) opRegister(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	servers := req.Servers
	if len(servers) == 0 {
		// A registration without an explicit list is a placement decision:
		// the cluster's policy makes it when one is configured; otherwise
		// fall back to the historical default (all servers, registration
		// order).
		if placed := s.cluster.PlaceUser(user); len(placed) > 0 {
			servers = placed
		} else {
			servers = s.names
		}
	}
	for _, n := range servers {
		if _, ok := s.cluster.Server(n); !ok {
			return fail("unknown server %q", n)
		}
	}
	s.cluster.Directory().SetAuthority(user, servers)
	return Response{OK: true}
}

func (s *Server) opSubmit(req Request) Response {
	from, err := names.Parse(req.From)
	if err != nil {
		return fail("from: %v", err)
	}
	var to []names.Name
	for _, raw := range req.To {
		n, err := names.Parse(raw)
		if err != nil {
			return fail("to %q: %v", raw, err)
		}
		to = append(to, n)
	}
	if len(to) == 0 {
		return fail("no recipients")
	}
	id, err := s.cluster.Submit(from, to, req.Subject, req.Body)
	if err != nil {
		return failErr("submit", err)
	}
	return Response{OK: true, ID: id.String()}
}

// opTBatch submits a batch of messages sharing one sender in a single
// protocol round — the wire face of the relay-batching fabric. Item failures
// are partial results, not request failures: IDs aligns with Msgs ("" where
// an item failed) and Failed carries index, message, and taxonomy code so
// the client can retry-split exactly the failed items.
func (s *Server) opTBatch(req Request, ver int) Response {
	if ver < protoTBatch {
		return fail("tbatch requires protocol version %d; negotiate with hello first", protoTBatch)
	}
	from, err := names.Parse(req.From)
	if err != nil {
		return fail("from: %v", err)
	}
	if len(req.Msgs) == 0 {
		return fail("empty batch")
	}
	ids := make([]string, len(req.Msgs))
	var failed []BatchFailure
	for i, m := range req.Msgs {
		to, err := parseNames(m.To)
		if err == nil && len(to) == 0 {
			err = errors.New("no recipients")
		}
		if err == nil {
			var id mail.MessageID
			id, err = s.cluster.Submit(from, to, m.Subject, m.Body)
			if err == nil {
				ids[i] = id.String()
				continue
			}
		}
		failed = append(failed, BatchFailure{Index: i, Error: err.Error(), Code: mailerr.Code(err)})
	}
	return Response{OK: true, IDs: ids, Failed: failed}
}

func parseNames(raw []string) ([]names.Name, error) {
	out := make([]names.Name, 0, len(raw))
	for _, r := range raw {
		n, err := names.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("to %q: %w", r, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// opQuery serves the first-class Query API over the wire: a canonical
// attr.Query text ("content=budget") fans out across the cluster's stores,
// probing each server's live term sketch first and searching only servers
// the sketch cannot prove empty. v1/v2 connections are refused the same way
// tbatch refuses them — negotiate with hello first.
//
// Only fully content-equality queries are servable here: profile predicates
// need the directory's profile store, which lives with the broadcast fabric
// (internal/loadgen), not behind the wire — and a silently dropped conjunct
// would widen the match set, the one direction a query must never err in.
func (s *Server) opQuery(req Request, ver int) Response {
	if ver < protoQuery {
		return fail("query requires protocol version %d; negotiate with hello first", protoQuery)
	}
	if !s.termIndex {
		return fail("query requires the term index; start the server with it enabled")
	}
	q, err := attr.ParseQuery(req.Query)
	if err != nil {
		return fail("query: %v", err)
	}
	plan := attr.PlanQuery(q)
	if plan.Route != attr.RoutePruned || len(plan.Terms) != len(q.Predicates) {
		return fail("query %q: only exact-match content predicates are served over the wire", req.Query)
	}
	stats := QueryStats{Servers: len(s.names)}
	set := make(map[string]bool)
	for _, n := range s.names {
		srv, ok := s.cluster.Server(n)
		if !ok {
			stats.Unavailable++
			continue
		}
		f, _, err := srv.Sketch()
		if err != nil {
			stats.Unavailable++
			continue
		}
		if f != nil {
			pruned := false
			for _, t := range plan.Terms {
				if !f.MayContain(t) {
					pruned = true
					break
				}
			}
			if pruned {
				stats.Pruned++
				continue
			}
		}
		users, err := srv.Search(plan.Terms)
		if err != nil {
			stats.Unavailable++
			continue
		}
		stats.Visited++
		if f != nil && len(users) == 0 {
			stats.SketchFP++
		}
		for _, u := range users {
			set[u.String()] = true
		}
	}
	matches := make([]string, 0, len(set))
	for u := range set {
		matches = append(matches, u)
	}
	sort.Strings(matches)
	return Response{OK: true, Matches: matches, QueryStats: &stats}
}

func (s *Server) opCheckMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	msgs, err := srv.CheckMail(user)
	if err != nil {
		return failErr("checkmail", err)
	}
	return Response{OK: true, Messages: wireMessages(msgs)}
}

func (s *Server) opGetMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	s.agentMu.Lock()
	agent, ok := s.agents[user]
	if !ok {
		agent, err = s.cluster.NewAgent(user)
		if err != nil {
			s.agentMu.Unlock()
			return failErr("getmail", err)
		}
		s.agents[user] = agent
	}
	msgs := agent.GetMail()
	polls := agent.Polls()
	last := agent.LastCheckingTime().UnixNano()
	s.agentMu.Unlock()
	return Response{OK: true, Messages: wireMessages(msgs), Polls: polls, LastChecking: last}
}

func (s *Server) opStatus() Response {
	var rows []ServerStatus
	for _, n := range s.names {
		srv, ok := s.cluster.Server(n)
		if !ok {
			continue
		}
		rows = append(rows, ServerStatus{Name: n, Up: srv.Up(), Deposits: srv.Deposits()})
	}
	snap := s.cluster.Snapshot()
	return Response{OK: true, Status: &StatusSnapshot{
		Version:    snap.Version,
		Servers:    rows,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}}
}

func (s *Server) opAvailability(req Request) Response {
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	if req.Op == "crash" {
		srv.Crash()
	} else {
		srv.Recover()
	}
	return Response{OK: true}
}

func wireMessages(msgs []mail.Stored) []Message {
	out := make([]Message, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, Message{
			ID: m.ID.String(), From: m.From.String(),
			Subject: m.Subject, Body: m.Body,
		})
	}
	return out
}

// Options tune a Client's fault behavior and protocol ceiling.
type Options struct {
	// Timeout is the per-request deadline covering write and response read
	// (default 5s). A request against a hung or partitioned server fails
	// with a timeout error instead of blocking forever. Negative disables.
	Timeout time.Duration
	// Retries bounds how many extra attempts Do makes when a request
	// provably never reached the server — a failed dial or a failed write
	// (the protocol executes only complete newline-terminated lines or
	// CRC-complete frames, and a failed write never delivers the terminator
	// or the tail of the frame). Responses that time out after a successful
	// write are NOT retried: the request may have executed, and submit is
	// not idempotent. Default 2; negative disables.
	Retries int
	// RetryBackoff is the pause before each retry (default 50ms).
	RetryBackoff time.Duration
	// MaxVersion caps the protocol version this client offers on hello
	// (0 → ProtocolVersion). 1 disables the handshake entirely — the client
	// behaves as an original v1 peer. The compatibility tests use it to
	// stand up yesterday's clients.
	MaxVersion int
	// TextOnly keeps the connection on the newline-delimited JSON framing
	// even against a v3 server that offers binary frames.
	TextOnly bool
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxVersion == 0 || o.MaxVersion > ProtocolVersion {
		o.MaxVersion = ProtocolVersion
	}
	if o.MaxVersion < 1 {
		o.MaxVersion = 1
	}
	return o
}

// Client is a wire-protocol client. It owns one TCP connection at a time
// and transparently reconnects after a broken one. Safe for sequential use;
// guard with your own mutex for concurrent callers, or use Pipeline for
// concurrent in-flight requests on one connection.
type Client struct {
	addr string
	opts Options

	conn net.Conn
	cr   *connReader

	// version is the protocol version negotiated with the server: 0 until
	// the first operation that needs one (SubmitBatch, Pipeline, an explicit
	// Negotiate) runs the hello exchange, then min(MaxVersion, server's). An
	// old server that rejects hello pins it to 1. Negotiation survives
	// reconnects — the server's version does not change under one address.
	version int
	// binOn marks the CURRENT connection as switched to binary framing. It
	// resets on reconnect; entering binary again is an inline hello away.
	binOn bool
	// binVeto is set when a server negotiates v3 yet declines binary
	// framing — stop asking on every request.
	binVeto bool
	// tag numbers binary requests; responses echo it. Sequential Do checks
	// the echo; Pipeline uses it to match out-of-order completions.
	tag uint32
}

// Dial connects to a wire server with default Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a wire server with explicit deadline/retry
// behavior.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	d := net.Dialer{}
	if c.opts.Timeout > 0 {
		d.Timeout = c.opts.Timeout
	}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.cr = newConnReader(conn)
	c.binOn = false
	return nil
}

// drop discards a broken connection; the next Do reconnects.
func (c *Client) drop() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	if c.cr != nil {
		c.cr.release()
		c.cr = nil
	}
	c.binOn = false
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	if c.cr != nil {
		c.cr.release()
		c.cr = nil
	}
	c.binOn = false
	return err
}

// Version returns the protocol version negotiated with the server, or 0 if
// no operation has needed the handshake yet.
func (c *Client) Version() int { return c.version }

// BinaryFraming reports whether the current connection has switched to the
// v3 binary framing.
func (c *Client) BinaryFraming() bool { return c.binOn }

// Negotiate forces the lazy hello exchange now (it otherwise runs on the
// first operation that needs it) and returns the negotiated version.
func (c *Client) Negotiate(ctx context.Context) (int, error) {
	return c.negotiate(ctx)
}

// Do sends one request and reads one response, under the configured
// deadline. See DoContext.
func (c *Client) Do(req Request) (Response, error) {
	return c.DoContext(context.Background(), req)
}

// DoContext sends one request and reads one response, honoring both the
// configured per-request deadline and the context: the connection deadline
// is the earlier of the two, and cancellation is checked before each attempt
// and during retry backoff (a context failure matches mailerr.ErrTimeout).
// Dial and write failures are retried up to Options.Retries times
// (reconnecting in between); a failure after the request was fully written
// is returned as-is, with the connection dropped so the next call starts
// fresh. A Response with ok=false is returned as an error — typed via
// mailerr.FromCode when the response carries a taxonomy code.
//
// On a connection negotiated to binary framing the request travels as one
// tagged frame; retry semantics are identical because the server executes
// only CRC-complete frames, so a short write provably never executed.
func (c *Client) DoContext(ctx context.Context, req Request) (Response, error) {
	// Refuse oversized requests before touching the wire: the server-side
	// reader would abort the whole connection on such a line, and the
	// client's own reader has the same MaxLine cap.
	line, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(c.opts.RetryBackoff):
			}
		}
		if err := ctx.Err(); err != nil {
			return Response{}, fmt.Errorf("wire: %w (%w)", mailerr.ErrTimeout, err)
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				continue
			}
		}
		_ = c.conn.SetDeadline(c.deadline(ctx))
		// A reconnect lands in text mode; re-enter binary before the request
		// when the negotiated protocol calls for it. (hello itself always
		// rides the framing the connection is currently in.)
		if !c.binOn && req.Op != "hello" && c.wantBinary() {
			if err := c.enterBinary(); err != nil {
				// The handshake is idempotent, so any failure is retryable.
				c.drop()
				lastErr = err
				continue
			}
		}
		var resp Response
		if c.binOn {
			var retry bool
			resp, err, retry = c.doBinary(req)
			if err != nil {
				if retry {
					lastErr = err
					continue
				}
				return Response{}, err
			}
		} else {
			if n, err := c.conn.Write(line); err != nil {
				c.drop()
				lastErr = err
				if n >= len(line) {
					// The terminator made it out before the error, so the
					// server may execute this request: not safe to retry.
					return Response{}, err
				}
				// The newline terminator never made it out, so the server
				// will not execute this request: safe to retry on a new
				// connection.
				continue
			}
			resp, err = c.readResponse()
			if err != nil {
				// The request may have executed server-side; surface the
				// error rather than risking a duplicate submit.
				c.drop()
				return Response{}, err
			}
		}
		_ = c.conn.SetDeadline(time.Time{})
		return respErr(resp)
	}
	return Response{}, fmt.Errorf("wire: request failed after %d attempts: %w",
		c.opts.Retries+1, lastErr)
}

// respErr turns a refused response into a typed error.
func respErr(resp Response) (Response, error) {
	if !resp.OK {
		if resp.Code != "" {
			return resp, mailerr.FromCode(resp.Code, "wire: "+resp.Error)
		}
		return resp, fmt.Errorf("wire: %s", resp.Error)
	}
	return resp, nil
}

// wantBinary reports whether requests should travel as binary frames once
// the connection is upgraded.
func (c *Client) wantBinary() bool {
	return c.version >= protoBinary && !c.opts.TextOnly && !c.binVeto
}

// enterBinary runs the inline hello that switches the current (text-mode)
// connection to binary framing. On a refusal it records the veto so later
// requests stop asking. Transport errors leave the decision open.
func (c *Client) enterBinary() error {
	hello, err := EncodeRequest(Request{Op: "hello", Version: c.opts.MaxVersion, Binary: true})
	if err != nil {
		return err
	}
	if _, err := c.conn.Write(hello); err != nil {
		return err
	}
	resp, err := c.readResponse()
	if err != nil {
		return err
	}
	switch {
	case resp.OK && resp.Binary && resp.Version >= protoBinary:
		c.binOn = true
	default:
		c.binVeto = true
		if resp.Version >= 1 && resp.Version < c.version {
			c.version = resp.Version
		}
	}
	return nil
}

// nextTag returns a fresh tag for one binary request.
func (c *Client) nextTag() uint32 {
	c.tag++
	return c.tag
}

// doBinary runs one request/response exchange in binary framing. The third
// result reports whether a failure is provably-not-executed (safe to retry
// on a fresh connection).
func (c *Client) doBinary(req Request) (Response, error, bool) {
	tag := c.nextTag()
	bp := getFrameBuf()
	frame, err := AppendBinaryRequest((*bp)[:0], req, tag)
	if err != nil {
		putFrameBuf(bp)
		return Response{}, err, false
	}
	n, werr := c.conn.Write(frame)
	*bp = frame
	putFrameBuf(bp)
	if werr != nil {
		c.drop()
		// A short write never delivered the CRC trailer, so the server
		// cannot execute the request; a complete write may have.
		return Response{}, werr, n < len(frame)
	}
	rp := getFrameBuf()
	payload, rerr := c.cr.readFrame(rp)
	if rerr != nil {
		putFrameBuf(rp)
		c.drop()
		return Response{}, rerr, false
	}
	resp, rtag, derr := DecodeBinaryResponse(payload)
	putFrameBuf(rp)
	if derr != nil {
		c.drop()
		return Response{}, derr, false
	}
	if rtag != tag {
		c.drop()
		return Response{}, fmt.Errorf("wire: response tag %d for request tag %d", rtag, tag), false
	}
	return resp, nil, false
}

// deadline is the earlier of the per-request Options.Timeout and the
// context's own deadline; the zero time (no deadline) when neither applies.
func (c *Client) deadline(ctx context.Context) time.Time {
	var d time.Time
	if c.opts.Timeout > 0 {
		d = time.Now().Add(c.opts.Timeout)
	}
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

func (c *Client) readResponse() (Response, error) {
	line, err := c.cr.readLine()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Response{}, errors.New("wire: connection closed")
		}
		return Response{}, err
	}
	return DecodeResponse(line)
}

// Register records a user's authority list (empty = all servers).
func (c *Client) Register(user string, servers ...string) error {
	return c.RegisterContext(context.Background(), user, servers...)
}

// RegisterContext is Register honoring a context.
func (c *Client) RegisterContext(ctx context.Context, user string, servers ...string) error {
	_, err := c.DoContext(ctx, Request{Op: "register", User: user, Servers: servers})
	return err
}

// Submit sends a message and returns its ID.
func (c *Client) Submit(from string, to []string, subject, body string) (string, error) {
	return c.SubmitContext(context.Background(), from, to, subject, body)
}

// SubmitContext is Submit honoring a context.
func (c *Client) SubmitContext(ctx context.Context, from string, to []string, subject, body string) (string, error) {
	resp, err := c.DoContext(ctx, Request{Op: "submit", From: from, To: to, Subject: subject, Body: body})
	return resp.ID, err
}

// SubmitBatch sends several messages from one sender in a single protocol
// round. See SubmitBatchContext.
func (c *Client) SubmitBatch(from string, msgs []BatchMsg) ([]string, error) {
	return c.SubmitBatchContext(context.Background(), from, msgs)
}

// SubmitBatchContext submits a batch of messages sharing one sender. On a
// version ≥ 2 connection the whole batch ships as one tbatch frame; items
// the server reports failed are retry-split into individual submits. Against
// a version-1 server (negotiated lazily via hello; old servers reject the
// handshake and pin the connection to v1) every item falls back to a single
// submit. The returned slice aligns with msgs ("" where an item ultimately
// failed); the error joins the per-item failures.
func (c *Client) SubmitBatchContext(ctx context.Context, from string, msgs []BatchMsg) ([]string, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	ver, err := c.negotiate(ctx)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(msgs))
	var errs []error
	single := func(i int) {
		id, err := c.SubmitContext(ctx, from, msgs[i].To, msgs[i].Subject, msgs[i].Body)
		if err != nil {
			errs = append(errs, fmt.Errorf("msg %d: %w", i, err))
			return
		}
		ids[i] = id
	}
	if ver < protoTBatch {
		for i := range msgs {
			single(i)
		}
		return ids, errors.Join(errs...)
	}
	resp, err := c.DoContext(ctx, Request{Op: "tbatch", From: from, Msgs: msgs})
	if err != nil {
		return nil, err
	}
	copy(ids, resp.IDs)
	for _, f := range resp.Failed {
		if f.Index < 0 || f.Index >= len(msgs) {
			errs = append(errs, fmt.Errorf("server reported failure for out-of-range index %d: %s", f.Index, f.Error))
			continue
		}
		single(f.Index) // retry splitting: failed items go out individually
	}
	return ids, errors.Join(errs...)
}

// negotiate runs the lazy hello exchange once per client. A server that
// answers the handshake fixes the version at min(ours, theirs); a server
// that rejects the op (pre-v2) fixes it at 1. Transport failures do not pin
// anything — the next call retries. When the client's ceiling allows it and
// TextOnly is off, the hello also asks for binary framing; a grant switches
// the current connection immediately.
func (c *Client) negotiate(ctx context.Context) (int, error) {
	if c.version != 0 {
		return c.version, nil
	}
	if c.opts.MaxVersion <= 1 {
		// A v1 peer: no handshake exists at this version.
		c.version = 1
		return 1, nil
	}
	askBinary := !c.opts.TextOnly && c.opts.MaxVersion >= protoBinary
	resp, err := c.DoContext(ctx, Request{Op: "hello", Version: c.opts.MaxVersion, Binary: askBinary})
	switch {
	case err == nil:
		c.version = resp.Version
		if c.version < 1 {
			c.version = 1
		}
		if c.version > c.opts.MaxVersion {
			c.version = c.opts.MaxVersion
		}
		if resp.Binary && resp.Version >= protoBinary && c.conn != nil {
			c.binOn = true
		} else if askBinary && resp.Version >= protoBinary {
			c.binVeto = true
		}
	case resp.Error != "":
		// The server answered and refused: an old peer without hello.
		c.version = 1
	default:
		return 0, err
	}
	return c.version, nil
}

// GetMail runs the server-side GetMail walk for the user.
func (c *Client) GetMail(user string) ([]Message, error) {
	return c.GetMailContext(context.Background(), user)
}

// GetMailContext is GetMail honoring a context.
func (c *Client) GetMailContext(ctx context.Context, user string) ([]Message, error) {
	resp, err := c.DoContext(ctx, Request{Op: "getmail", User: user})
	return resp.Messages, err
}

// QueryResult is a wire query's answer: the matching users plus the
// fan-out accounting (servers visited, pruned on sketch proof, unavailable).
type QueryResult struct {
	Matches []string
	Stats   QueryStats
}

// Query runs a content query ("content=budget", conjunctions with commas)
// across the cluster's mailbox stores. Requires a protocol version ≥ 3
// server; older peers refuse the verb after the lazy hello pins the version.
func (c *Client) Query(query string) (QueryResult, error) {
	return c.QueryContext(context.Background(), query)
}

// QueryContext is Query honoring a context.
func (c *Client) QueryContext(ctx context.Context, query string) (QueryResult, error) {
	ver, err := c.negotiate(ctx)
	if err != nil {
		return QueryResult{}, err
	}
	if ver < protoQuery {
		return QueryResult{}, fmt.Errorf("wire: query requires protocol version %d, server speaks %d", protoQuery, ver)
	}
	resp, err := c.DoContext(ctx, Request{Op: "query", Query: query})
	if err != nil {
		return QueryResult{}, err
	}
	out := QueryResult{Matches: resp.Matches}
	if resp.QueryStats != nil {
		out.Stats = *resp.QueryStats
	}
	return out, nil
}

// Status reports per-server availability and deposit counts.
func (c *Client) Status() ([]ServerStatus, error) {
	snap, err := c.StatusSnapshot()
	return snap.Servers, err
}

// StatusContext is Status honoring a context.
func (c *Client) StatusContext(ctx context.Context) ([]ServerStatus, error) {
	snap, err := c.StatusSnapshotContext(ctx)
	return snap.Servers, err
}

// StatusFull reports the server rows plus a flat counter map (counters and
// gauges merged, so the old keys — including "spool_depth" — keep working).
// Prefer StatusSnapshot for the structured form with histograms.
func (c *Client) StatusFull() ([]ServerStatus, map[string]int64, error) {
	snap, err := c.StatusSnapshot()
	if err != nil {
		return snap.Servers, nil, err
	}
	flat := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		flat[k] = v
	}
	for k, v := range snap.Gauges {
		flat[k] = v
	}
	return snap.Servers, flat, nil
}

// StatusSnapshot fetches the versioned observability snapshot: server rows,
// counters, gauges, and per-stage latency histograms.
func (c *Client) StatusSnapshot() (StatusSnapshot, error) {
	return c.StatusSnapshotContext(context.Background())
}

// StatusSnapshotContext is StatusSnapshot honoring a context.
func (c *Client) StatusSnapshotContext(ctx context.Context) (StatusSnapshot, error) {
	resp, err := c.DoContext(ctx, Request{Op: "status"})
	if err != nil || resp.Status == nil {
		return StatusSnapshot{}, err
	}
	return *resp.Status, nil
}

// SetAvailability crashes or recovers a named server.
func (c *Client) SetAvailability(server string, up bool) error {
	return c.SetAvailabilityContext(context.Background(), server, up)
}

// SetAvailabilityContext is SetAvailability honoring a context.
func (c *Client) SetAvailabilityContext(ctx context.Context, server string, up bool) error {
	op := "recover"
	if !up {
		op = "crash"
	}
	_, err := c.DoContext(ctx, Request{Op: op, Server: server})
	return err
}
