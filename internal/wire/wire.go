// Package wire exposes a live mail cluster (internal/livenet) over TCP with
// a newline-delimited JSON protocol. It is the deployable surface of the
// reproduction: the same authority-list and GetMail semantics the paper
// defines, reachable from real processes.
//
// Protocol: one JSON object per line in each direction. Requests carry an
// "op" plus op-specific fields; responses carry "ok", an optional "error",
// and op-specific results. Operations:
//
//	register  {user, servers[]}            → {ok}
//	submit    {from, to[], subject, body}  → {ok, id}
//	checkmail {user, server}               → {ok, messages[]}
//	getmail   {user}                       → {ok, messages[]}   (server-side GetMail walk)
//	status    {}                           → {ok, servers[]}
//	crash     {server} / recover {server}  → {ok}               (operations testing hook)
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// MaxLine bounds a single protocol line (1 MiB), protecting the server from
// unbounded memory per connection.
const MaxLine = 1 << 20

// Request is the client→server frame.
type Request struct {
	Op      string   `json:"op"`
	User    string   `json:"user,omitempty"`
	Servers []string `json:"servers,omitempty"`
	Server  string   `json:"server,omitempty"`
	From    string   `json:"from,omitempty"`
	To      []string `json:"to,omitempty"`
	Subject string   `json:"subject,omitempty"`
	Body    string   `json:"body,omitempty"`
}

// Message is a mail message on the wire.
type Message struct {
	ID      string `json:"id"`
	From    string `json:"from"`
	Subject string `json:"subject"`
	Body    string `json:"body"`
}

// ServerStatus is one row of a status response.
type ServerStatus struct {
	Name     string `json:"name"`
	Up       bool   `json:"up"`
	Deposits int64  `json:"deposits"`
}

// Response is the server→client frame.
type Response struct {
	OK       bool           `json:"ok"`
	Error    string         `json:"error,omitempty"`
	ID       string         `json:"id,omitempty"`
	Messages []Message      `json:"messages,omitempty"`
	Servers  []ServerStatus `json:"servers,omitempty"`
}

// Server serves the wire protocol over a listener, backed by a live
// cluster. Create with NewServer; stop with Close.
type Server struct {
	cluster *livenet.Cluster
	names   []string // server names, registration order

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// agents holds one server-side agent per user so the getmail op uses
	// the paper's retrieval algorithm with persistent LastCheckingTime.
	agentMu sync.Mutex
	agents  map[names.Name]*livenet.Agent
}

// NewServer builds a cluster with the given server names and starts
// accepting connections on addr (e.g. "127.0.0.1:0"). The returned server
// owns the cluster.
func NewServer(addr string, serverNames []string) (*Server, error) {
	if len(serverNames) == 0 {
		return nil, errors.New("wire: need at least one server name")
	}
	cluster := livenet.NewCluster()
	for _, n := range serverNames {
		if _, err := cluster.AddServer(n); err != nil {
			cluster.Close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	s := &Server{
		cluster: cluster,
		names:   append([]string(nil), serverNames...),
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		agents:  make(map[names.Name]*livenet.Agent),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, waits for handlers to
// exit, and shuts down the cluster.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.cluster.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 4096), MaxLine)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case "register":
		return s.opRegister(req)
	case "submit":
		return s.opSubmit(req)
	case "checkmail":
		return s.opCheckMail(req)
	case "getmail":
		return s.opGetMail(req)
	case "status":
		return s.opStatus()
	case "crash", "recover":
		return s.opAvailability(req)
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func fail(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}

func (s *Server) opRegister(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	servers := req.Servers
	if len(servers) == 0 {
		servers = s.names // default: all servers, registration order
	}
	for _, n := range servers {
		if _, ok := s.cluster.Server(n); !ok {
			return fail("unknown server %q", n)
		}
	}
	s.cluster.Directory().SetAuthority(user, servers)
	return Response{OK: true}
}

func (s *Server) opSubmit(req Request) Response {
	from, err := names.Parse(req.From)
	if err != nil {
		return fail("from: %v", err)
	}
	var to []names.Name
	for _, raw := range req.To {
		n, err := names.Parse(raw)
		if err != nil {
			return fail("to %q: %v", raw, err)
		}
		to = append(to, n)
	}
	if len(to) == 0 {
		return fail("no recipients")
	}
	id, err := s.cluster.Submit(from, to, req.Subject, req.Body)
	if err != nil {
		return fail("submit: %v", err)
	}
	return Response{OK: true, ID: id.String()}
}

func (s *Server) opCheckMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	msgs, err := srv.CheckMail(user)
	if err != nil {
		return fail("checkmail: %v", err)
	}
	return Response{OK: true, Messages: wireMessages(msgs)}
}

func (s *Server) opGetMail(req Request) Response {
	user, err := names.Parse(req.User)
	if err != nil {
		return fail("user: %v", err)
	}
	s.agentMu.Lock()
	agent, ok := s.agents[user]
	if !ok {
		agent, err = s.cluster.NewAgent(user)
		if err != nil {
			s.agentMu.Unlock()
			return fail("getmail: %v", err)
		}
		s.agents[user] = agent
	}
	msgs := agent.GetMail()
	s.agentMu.Unlock()
	return Response{OK: true, Messages: wireMessages(msgs)}
}

func (s *Server) opStatus() Response {
	var out []ServerStatus
	for _, n := range s.names {
		srv, ok := s.cluster.Server(n)
		if !ok {
			continue
		}
		out = append(out, ServerStatus{Name: n, Up: srv.Up(), Deposits: srv.Deposits()})
	}
	return Response{OK: true, Servers: out}
}

func (s *Server) opAvailability(req Request) Response {
	srv, ok := s.cluster.Server(req.Server)
	if !ok {
		return fail("unknown server %q", req.Server)
	}
	if req.Op == "crash" {
		srv.Crash()
	} else {
		srv.Recover()
	}
	return Response{OK: true}
}

func wireMessages(msgs []mail.Stored) []Message {
	out := make([]Message, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, Message{
			ID: m.ID.String(), From: m.From.String(),
			Subject: m.Subject, Body: m.Body,
		})
	}
	return out
}

// Client is a wire-protocol client over one TCP connection. Safe for
// sequential use; guard with your own mutex for concurrent callers.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxLine)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads one response. A Response with ok=false is
// returned as an error.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, errors.New("wire: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("wire: %s", resp.Error)
	}
	return resp, nil
}

// Register records a user's authority list (empty = all servers).
func (c *Client) Register(user string, servers ...string) error {
	_, err := c.Do(Request{Op: "register", User: user, Servers: servers})
	return err
}

// Submit sends a message and returns its ID.
func (c *Client) Submit(from string, to []string, subject, body string) (string, error) {
	resp, err := c.Do(Request{Op: "submit", From: from, To: to, Subject: subject, Body: body})
	return resp.ID, err
}

// GetMail runs the server-side GetMail walk for the user.
func (c *Client) GetMail(user string) ([]Message, error) {
	resp, err := c.Do(Request{Op: "getmail", User: user})
	return resp.Messages, err
}

// Status reports per-server availability and deposit counts.
func (c *Client) Status() ([]ServerStatus, error) {
	resp, err := c.Do(Request{Op: "status"})
	return resp.Servers, err
}

// SetAvailability crashes or recovers a named server.
func (c *Client) SetAvailability(server string, up bool) error {
	op := "recover"
	if !up {
		op = "crash"
	}
	_, err := c.Do(Request{Op: op, Server: server})
	return err
}
