package wire

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"
)

// compatServer starts a server capped at the given protocol version.
func compatServer(t *testing.T, maxProto int) *Server {
	t.Helper()
	s, err := NewServerWith("127.0.0.1:0", []string{"s1", "s2", "s3"},
		ServerConfig{MaxProtocol: maxProto})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestCompatMatrix runs {v1,v2,v3 client} x {v2,v3 server} through submit,
// tbatch, status, and a pipelined burst, asserting the negotiated version is
// min(client, server) and binary framing appears only at v3 x v3.
func TestCompatMatrix(t *testing.T) {
	for _, serverMax := range []int{2, 3} {
		for _, clientMax := range []int{1, 2, 3} {
			name := fmt.Sprintf("client_v%d/server_v%d", clientMax, serverMax)
			t.Run(name, func(t *testing.T) {
				s := compatServer(t, serverMax)
				c, err := DialOptions(s.Addr(), Options{MaxVersion: clientMax})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = c.Close() })

				want := clientMax
				if serverMax < want {
					want = serverMax
				}
				ver, err := c.Negotiate(context.Background())
				if err != nil {
					t.Fatalf("negotiate: %v", err)
				}
				if ver != want {
					t.Fatalf("negotiated v%d, want min(%d,%d)=%d", ver, clientMax, serverMax, want)
				}
				wantBinary := want >= 3
				if c.BinaryFraming() != wantBinary {
					t.Fatalf("binary framing = %v, want %v at negotiated v%d",
						c.BinaryFraming(), wantBinary, want)
				}

				if err := c.Register("R1.h1.alice"); err != nil {
					t.Fatal(err)
				}
				if err := c.Register("R1.h1.bob"); err != nil {
					t.Fatal(err)
				}

				// submit
				id, err := c.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "s", "b")
				if err != nil || id == "" {
					t.Fatalf("submit: id=%q err=%v", id, err)
				}

				// tbatch: one frame from v2 on; at v1 the client falls back
				// to single submits, so the call succeeds either way.
				ids, err := c.SubmitBatch("R1.h1.alice", []BatchMsg{
					{To: []string{"R1.h1.bob"}, Subject: "t1"},
					{To: []string{"R1.h1.bob"}, Subject: "t2"},
				})
				if err != nil || len(ids) != 2 || ids[0] == "" || ids[1] == "" {
					t.Fatalf("tbatch at v%d: ids=%v err=%v", want, ids, err)
				}

				// status
				if _, err := c.Status(); err != nil {
					t.Fatalf("status: %v", err)
				}

				// pipelined burst: valid at every version (FIFO on text,
				// tagged on binary).
				p, err := c.Pipeline(context.Background(), 8)
				if err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				const burst = 40
				futs := make([]*Future, burst)
				for i := range futs {
					futs[i] = p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, "p"+strconv.Itoa(i), "b")
				}
				for i, f := range futs {
					if _, err := f.Response(); err != nil {
						t.Fatalf("burst future %d: %v", i, err)
					}
				}
				if err := p.Close(); err != nil {
					t.Fatalf("pipeline close: %v", err)
				}

				wantMail := 1 + 2 + burst
				msgs, err := c.GetMail("R1.h1.bob")
				if err != nil {
					t.Fatal(err)
				}
				if len(msgs) != wantMail {
					t.Fatalf("delivered %d, want %d", len(msgs), wantMail)
				}
				// Exactly-once per submitted ID.
				seen := map[string]bool{}
				for _, m := range msgs {
					if seen[m.ID] {
						t.Fatalf("duplicate delivery of %s", m.ID)
					}
					seen[m.ID] = true
				}
			})
		}
	}
}

// TestCompatRawV1Peer pins the lazy-hello fallback: a client that never
// sends hello (pre-handshake peer) gets a working v1 text session on a v3
// server, with tbatch refused as a protocol error.
func TestCompatRawV1Peer(t *testing.T) {
	s := newServer(t) // v3 server
	c, err := DialOptions(s.Addr(), Options{MaxVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	// Register works with no handshake at all (lazy negotiation never runs
	// for plain verbs on a v1 peer).
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if ver, err := c.Negotiate(context.Background()); err != nil || ver != 1 {
		t.Fatalf("v1 peer negotiated v%d, err=%v", ver, err)
	}
	if c.BinaryFraming() {
		t.Fatal("v1 peer switched to binary framing")
	}
	// The raw tbatch verb (no client-side gate) is refused by the server.
	if _, err := c.Do(Request{Op: "tbatch", From: "R1.h1.alice",
		Msgs: []BatchMsg{{To: []string{"R1.h1.alice"}}}}); err == nil {
		t.Fatal("server accepted tbatch from a v1 connection")
	}
}

// TestCompatV3ClientOldErrorShape: a server that rejects hello outright
// (simulating a pre-v2 daemon) pins the client to v1 and the session works.
func TestCompatV3ClientOldErrorShape(t *testing.T) {
	s := compatServer(t, 1)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ver, err := c.Negotiate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 || c.BinaryFraming() {
		t.Fatalf("ver=%d binary=%v, want v1 text", ver, c.BinaryFraming())
	}
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("R1.h1.alice", []string{"R1.h1.alice"}, "s", "b"); err != nil {
		t.Fatal(err)
	}
}

// TestCompatPipelinedBurstUnderFaults crashes and recovers a server in the
// middle of a pipelined binary burst, then audits exactly-once delivery:
// every acked submit is delivered exactly once, nothing unacked appears,
// and no ID is duplicated.
func TestCompatPipelinedBurstUnderFaults(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)   // pipelined submitter
	adm := newClient(t, s) // control plane
	if err := adm.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	if err := adm.Register("R1.h1.bob"); err != nil {
		t.Fatal(err)
	}

	p, err := c.Pipeline(context.Background(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !c.BinaryFraming() {
		t.Fatal("expected binary framing for the fault burst")
	}
	const n = 400
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = p.Submit("R1.h1.alice", []string{"R1.h1.bob"}, strconv.Itoa(i), "b")
		switch i {
		case n / 4: // crash the primary mid-burst
			if _, err := adm.Do(Request{Op: "crash", Server: "s1"}); err != nil {
				t.Fatal(err)
			}
		case n / 2: // and bring it back while the burst continues
			if _, err := adm.Do(Request{Op: "recover", Server: "s1"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	acked := map[string]int{}
	for i, f := range futs {
		resp, err := f.Response()
		if err != nil {
			// A submit may be refused while failover churns; it must then
			// not be delivered. Refusals carry no ID.
			continue
		}
		if resp.ID == "" {
			t.Fatalf("future %d: ok without id", i)
		}
		acked[resp.ID]++
		if acked[resp.ID] > 1 {
			t.Fatalf("server issued duplicate id %s", resp.ID)
		}
	}
	if len(acked) == 0 {
		t.Fatal("no submit survived the fault window")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("pipeline close: %v", err)
	}

	// Settle, then audit the mailbox: delivered == acked, exactly once.
	deadline := time.Now().Add(5 * time.Second)
	delivered := map[string]int{}
	for {
		msgs, err := adm.GetMail("R1.h1.bob")
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			delivered[m.ID]++
		}
		if len(delivered) >= len(acked) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for id, cnt := range delivered {
		if cnt != 1 {
			t.Errorf("message %s delivered %d times", id, cnt)
		}
		if acked[id] == 0 {
			t.Errorf("message %s delivered but never acked", id)
		}
	}
	for id := range acked {
		if delivered[id] == 0 {
			t.Errorf("acked message %s lost", id)
		}
	}
}
