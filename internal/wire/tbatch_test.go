package wire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/mailerr"
)

func TestHelloNegotiation(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	resp, err := c.Do(Request{Op: "hello", Version: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != ProtocolVersion {
		t.Errorf("negotiated version = %d, want %d", resp.Version, ProtocolVersion)
	}
	// A client older than the server gets its own version back, not ours.
	resp, err = c.Do(Request{Op: "hello", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 1 {
		t.Errorf("negotiated version for v1 client = %d, want 1", resp.Version)
	}
}

// TestTBatchRequiresNegotiation pins the version gate: the batched verb is
// opt-in per connection, so a client that never said hello cannot use it.
func TestTBatchRequiresNegotiation(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Do(Request{Op: "tbatch", From: "R1.h1.alice",
		Msgs: []BatchMsg{{To: []string{"R1.h1.alice"}}}})
	if err == nil {
		t.Fatal("tbatch before hello succeeded")
	}
	if !strings.Contains(err.Error(), "hello") {
		t.Errorf("error = %v, want a pointer at the handshake", err)
	}
}

func TestSubmitBatchRoundTrip(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	for _, u := range []string{"R1.h1.alice", "R1.h2.bob"} {
		if err := c.Register(u); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := c.SubmitBatch("R1.h1.alice", []BatchMsg{
		{To: []string{"R1.h2.bob"}, Subject: "one"},
		{To: []string{"R1.h2.bob"}, Subject: "two"},
		{To: []string{"R1.h2.bob", "R1.h1.alice"}, Subject: "three"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v, want 3", ids)
	}
	for i, id := range ids {
		if id == "" {
			t.Errorf("msg %d has no ID", i)
		}
	}
	msgs, err := c.GetMail("R1.h2.bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Errorf("bob retrieved %d messages, want 3", len(msgs))
	}
	if c.version != ProtocolVersion {
		t.Errorf("client pinned version %d, want %d", c.version, ProtocolVersion)
	}
}

// TestSubmitBatchPartialFailure: one item addressed to a user with no
// authority list fails with a typed per-item error; the good items land.
func TestSubmitBatchPartialFailure(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if err := c.Register("R1.h1.alice"); err != nil {
		t.Fatal(err)
	}
	ids, err := c.SubmitBatch("R1.h1.alice", []BatchMsg{
		{To: []string{"R1.h1.alice"}, Subject: "good"},
		{To: []string{"R1.h9.ghost"}, Subject: "bad"},
	})
	if err == nil {
		t.Fatal("batch with an unresolvable recipient reported no error")
	}
	if !errors.Is(err, mailerr.ErrUnknownUser) {
		t.Errorf("error = %v does not match mailerr.ErrUnknownUser", err)
	}
	if len(ids) != 2 || ids[0] == "" {
		t.Fatalf("ids = %v, want good item submitted", ids)
	}
	if ids[1] != "" {
		t.Errorf("failed item got ID %q", ids[1])
	}
	msgs, err := c.GetMail("R1.h1.alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Errorf("alice retrieved %d messages, want 1", len(msgs))
	}
}

// fakeV1Server speaks the pre-handshake protocol: hello is an unknown op,
// submit always succeeds. It stands in for an old deployment so the client's
// fallback path can be exercised against a real socket.
func fakeV1Server(t *testing.T) (addr string, submits *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var count atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 0, 4096), MaxLine)
				for sc.Scan() {
					req, err := DecodeRequest(sc.Bytes())
					var resp Response
					switch {
					case err != nil:
						resp = Response{Error: "bad request"}
					case req.Op == "submit":
						count.Add(1)
						resp = Response{OK: true, ID: "1:1"}
					default:
						resp = Response{Error: `unknown op "` + req.Op + `"`}
					}
					line, _ := EncodeResponse(resp)
					if _, err := conn.Write(line); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &count
}

// TestSubmitBatchFallsBackToV1: against a server without the handshake the
// client degrades to single submits — old deployments keep working.
func TestSubmitBatchFallsBackToV1(t *testing.T) {
	addr, submits := fakeV1Server(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, err := c.SubmitBatch("R1.h1.alice", []BatchMsg{
		{To: []string{"R1.h1.alice"}, Subject: "a"},
		{To: []string{"R1.h1.alice"}, Subject: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.version != 1 {
		t.Errorf("client pinned version %d against v1 server, want 1", c.version)
	}
	if len(ids) != 2 || ids[0] == "" || ids[1] == "" {
		t.Errorf("ids = %v, want 2 non-empty", ids)
	}
	if got := submits.Load(); got != 2 {
		t.Errorf("server saw %d single submits, want 2", got)
	}
}

// TestTypedErrorsOverWire: taxonomy codes survive the TCP hop — the client
// reconstructs errors that match mailerr sentinels, not just strings.
func TestTypedErrorsOverWire(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	if _, err := c.GetMail("R1.h9.nobody"); !errors.Is(err, mailerr.ErrUnknownUser) {
		t.Errorf("getmail unknown user: %v does not match mailerr.ErrUnknownUser", err)
	}
}

// TestDoContextCancelled: a cancelled context fails the request with the
// taxonomy's timeout error before anything hits the wire.
func TestDoContextCancelled(t *testing.T) {
	s := newServer(t)
	c := newClient(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DoContext(ctx, Request{Op: "status"}); !errors.Is(err, mailerr.ErrTimeout) {
		t.Errorf("DoContext(cancelled) = %v, want mailerr.ErrTimeout", err)
	}
	// The client survives: a live context works on the same connection.
	if _, err := c.StatusSnapshotContext(context.Background()); err != nil {
		t.Fatalf("status after cancelled request: %v", err)
	}
}

// TestDoContextDeadlineCapsTimeout: a context deadline earlier than
// Options.Timeout wins, so a hung server fails the request at the context's
// pace.
func TestDoContextDeadlineCapsTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	c, err := DialOptions(ln.Addr().String(), Options{Timeout: 30 * time.Second, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.DoContext(ctx, Request{Op: "status"})
	if err == nil {
		t.Fatal("request against hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request took %v, want ~100ms (context deadline ignored)", elapsed)
	}
}
