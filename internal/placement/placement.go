// Package placement is the pluggable user-placement seam: every decision
// about which servers hold a user's mailbox flows through one Policy
// interface with two decision points — Place at registration/submit time and
// Rebalance on a tick.
//
// The paper balances placement once, offline (§3.1.1); this package re-homes
// that optimizer as the reference Policy and adds the online alternatives
// the load-balancing literature races against it: JSQ(d) power-of-d-choices
// submit-time server choice (Budhiraja–Friedlander) sampling d queue-depth
// gauges, and a continuous rebalancer that watches per-server ρ and emits
// bounded user migrations executed through the §3.1.4 migration machinery.
//
// Policies are transport-agnostic: servers are global integer slots (region
// r's j-th server is slot r·ServersPerRegion+j) and load observations arrive
// as internal/obs gauges named "<label>.rho" / "<label>.qdepth" /
// "<label>.placed", where label defaults to "S<slot>" — the convention both
// loadgen drivers follow.
package placement

import (
	"fmt"

	"github.com/largemail/largemail/internal/obs"
)

// World describes the deployment shape a policy places into. All counts are
// per the population/topology the driver built; slots index servers globally
// in region-major order.
type World struct {
	Regions          int
	ServersPerRegion int
	HostsPerRegion   int
	// AuthorityLen is how many servers each Place result should list.
	AuthorityLen int
}

// TotalServers returns the number of placeable server slots.
func (w World) TotalServers() int { return w.Regions * w.ServersPerRegion }

// RegionOfSlot maps a global server slot to its region index.
func (w World) RegionOfSlot(gs int) int { return gs / w.ServersPerRegion }

// RegionOfHost maps a global host index to its region index.
func (w World) RegionOfHost(gh int) int { return gh / w.HostsPerRegion }

// RegionSlots returns region r's server slots in order.
func (w World) RegionSlots(r int) []int {
	out := make([]int, w.ServersPerRegion)
	for j := range out {
		out[j] = r*w.ServersPerRegion + j
	}
	return out
}

// User identifies a placement subject at Place time. Host is the user's
// global host index, or negative when the transport has no host notion (wire
// registrations), in which case Index alone spreads the placement.
type User struct {
	Index int
	Host  int
}

// Migration directs the executing driver to move up to Count users whose
// primary server is slot From onto slot To. The policy decides flow, the
// driver picks the concrete users (it knows which are materialized, which
// carry the traffic, and which are safe to move under §3.1.4).
type Migration struct {
	From, To int
	Count    int
	// Frac is the fraction of the source's observed load the migration
	// should shed (0 = move Count users regardless). Placed-user counts are
	// a poor proxy for load under a skewed workload — a driver that knows
	// per-user traffic moves its hottest users first and stops once their
	// combined share reaches Frac, often well before Count.
	Frac float64
}

// Policy is the placement decision interface. Place is consulted when a user
// first materializes (registration/submit time) and must return the ordered
// authority list as global server slots, primary first. Rebalance is
// consulted once per engine tick with the current observability snapshot and
// returns the migrations to execute this tick — nil/empty when the policy is
// content (the static reference always is).
type Policy interface {
	Name() string
	Place(u User) []int
	Rebalance(snap obs.Snapshot) []Migration
}

// Config carries the knobs shared by the online policies.
type Config struct {
	World World
	Seed  int64
	// D is how many queue-depth samples JSQ(d) draws per placement
	// (default 2 — the classic power-of-two-choices).
	D int
	// Gauges is the live registry JSQ samples "<label>.qdepth" from at
	// Place time. Rebalance reads from the snapshot instead, so only JSQ
	// needs it.
	Gauges *obs.Registry
	// Label names a slot's per-server instruments (default "S<slot>").
	Label func(slot int) string
	// MaxMigrationsPerTick bounds how many users one Rebalance call may
	// move (default 32). The bound is what keeps a mis-tuned policy from
	// melting the system with migration traffic.
	MaxMigrationsPerTick int
	// HysteresisBand is the dead zone around the regional mean ρ: only
	// servers above mean·(1+band) shed users and only servers below
	// mean·(1−band) receive them (default 0.25). Without the band the
	// rebalancer thrashes users back and forth across the mean.
	HysteresisBand float64
	// MinShedRho is the absolute ρ floor below which a server never sheds
	// users (default 0.5). The relative band alone misfires in a near-idle
	// region, where a single arrival puts a server "25% above" a tiny mean;
	// a server comfortably under capacity is not overloaded no matter how
	// its neighbors idle.
	MinShedRho float64
}

func (c Config) withDefaults() Config {
	if c.D <= 0 {
		c.D = 2
	}
	if c.Label == nil {
		c.Label = DefaultLabel
	}
	if c.MaxMigrationsPerTick <= 0 {
		c.MaxMigrationsPerTick = 32
	}
	if c.HysteresisBand <= 0 {
		c.HysteresisBand = 0.25
	}
	if c.MinShedRho <= 0 {
		c.MinShedRho = 0.5
	}
	return c
}

// DefaultLabel is the shared per-server instrument label convention.
func DefaultLabel(slot int) string { return fmt.Sprintf("S%d", slot) }

// RhoScale is the fixed-point scale of "<label>.rho" gauges: a gauge value
// of RhoScale means ρ=1.0 (gauges are int64; ρ is not).
const RhoScale = 1000

// Names of the selectable policy families, as spelled on -policy flags.
const (
	NameStatic    = "static"
	NameJSQ       = "jsq"
	NameRebalance = "rebalance"
)

// ParseName validates a -policy flag value ("" means static).
func ParseName(s string) (string, error) {
	switch s {
	case "", NameStatic:
		return NameStatic, nil
	case NameJSQ, NameRebalance:
		return s, nil
	}
	return "", fmt.Errorf("placement: unknown policy %q (want static, jsq or rebalance)", s)
}
