package placement

import (
	"fmt"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/obs"
)

// StaticConfig wires the §3.1.1 optimizer into the Policy interface. The
// driver keeps building the per-region assign.Assignment engines exactly as
// before (they need the real topology); Static turns their authority lists
// into slot-space Place answers, bit-compatible with reading the assignment
// directly.
type StaticConfig struct {
	World World
	// Assigns holds one ran §3.1.1 assignment per region.
	Assigns []*assign.Assignment
	// HostNode maps a global host index to its topology node; SlotOf maps a
	// topology server node back to its global slot (ok=false for nodes that
	// are not placeable servers).
	HostNode func(gh int) graph.NodeID
	// SlotOf maps a topology server node to its global slot.
	SlotOf func(id graph.NodeID) (int, bool)
}

// Static is the reference policy: the §3.1.1 static optimum, re-homed. It
// never rebalances — that is the point being raced against.
type Static struct {
	cfg   StaticConfig
	lists []map[int][]int // per region: global host → slot list, lazily built
}

// NewStatic wraps ran per-region assignments as a Policy.
func NewStatic(cfg StaticConfig) (*Static, error) {
	if len(cfg.Assigns) != cfg.World.Regions {
		return nil, fmt.Errorf("placement: %d assignments for %d regions",
			len(cfg.Assigns), cfg.World.Regions)
	}
	if cfg.HostNode == nil || cfg.SlotOf == nil {
		return nil, fmt.Errorf("placement: static policy needs HostNode and SlotOf")
	}
	return &Static{cfg: cfg, lists: make([]map[int][]int, cfg.World.Regions)}, nil
}

// Name implements Policy.
func (s *Static) Name() string { return NameStatic }

// Place implements Policy: the host's authority list from the region's
// assignment, translated to slots.
func (s *Static) Place(u User) []int {
	gh := u.Host
	if gh < 0 || gh >= s.cfg.World.Regions*s.cfg.World.HostsPerRegion {
		return nil
	}
	r := s.cfg.World.RegionOfHost(gh)
	if s.lists[r] == nil {
		s.build(r)
	}
	return append([]int(nil), s.lists[r][gh]...)
}

// build materializes region r's host → slot lists from the assignment.
func (s *Static) build(r int) {
	w := s.cfg.World
	m := make(map[int][]int, w.HostsPerRegion)
	for node, list := range s.cfg.Assigns[r].AuthorityLists(w.AuthorityLen) {
		gh := -1
		for i := 0; i < w.HostsPerRegion; i++ {
			if s.cfg.HostNode(r*w.HostsPerRegion+i) == node {
				gh = r*w.HostsPerRegion + i
				break
			}
		}
		if gh < 0 {
			continue
		}
		slots := make([]int, 0, len(list))
		for _, sv := range list {
			if slot, ok := s.cfg.SlotOf(sv); ok {
				slots = append(slots, slot)
			}
		}
		m[gh] = slots
	}
	s.lists[r] = m
}

// Rebalance implements Policy: the static optimum never moves anyone.
func (s *Static) Rebalance(obs.Snapshot) []Migration { return nil }

// Invalidate drops region r's cached lists after a reconfiguration
// (AddServer/RemoveServer/Add-RemoveUsers re-ran the assignment).
func (s *Static) Invalidate(r int) {
	if r >= 0 && r < len(s.lists) {
		s.lists[r] = nil
	}
}

// RoundRobin is the live transport's historical static placement: region r's
// slots assigned round-robin from the user's host offset. It exists so the
// online policies compose over the same base on transports that run no
// §3.1.1 assignment.
type RoundRobin struct {
	w World
}

// NewRoundRobin returns the round-robin reference policy.
func NewRoundRobin(w World) *RoundRobin { return &RoundRobin{w: w} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return NameStatic }

// Place implements Policy.
func (p *RoundRobin) Place(u User) []int {
	w := p.w
	gh := u.Host
	if gh < 0 {
		gh = u.Index
	}
	gh %= w.Regions * w.HostsPerRegion
	if gh < 0 {
		gh += w.Regions * w.HostsPerRegion
	}
	r := w.RegionOfHost(gh)
	n := w.AuthorityLen
	if n > w.ServersPerRegion {
		n = w.ServersPerRegion
	}
	out := make([]int, 0, n)
	start := gh % w.ServersPerRegion
	for i := 0; i < n; i++ {
		out = append(out, r*w.ServersPerRegion+(start+i)%w.ServersPerRegion)
	}
	return out
}

// Rebalance implements Policy.
func (p *RoundRobin) Rebalance(obs.Snapshot) []Migration { return nil }
