package placement

import (
	"sort"

	"github.com/largemail/largemail/internal/obs"
)

// Rebalancer is the continuous online policy: registration placement is the
// base policy's (usually the static reference), and each tick it reads the
// per-server "<label>.rho" gauges from the observability snapshot and emits
// migrations that move users off overloaded servers onto underloaded ones —
// the §3.1.4 migration machinery executes them.
//
// Three guards keep it from melting the system it is balancing:
//
//   - Hysteresis: only servers outside mean·(1±band) participate. A server
//     hovering near the mean is left alone, so the policy cannot thrash a
//     user back and forth across a noisy boundary.
//   - An absolute floor: a server below MinShedRho never sheds, however far
//     above a near-idle region's mean it sits — relative bands misread noise
//     as skew when there is no traffic to balance.
//   - Budget: at most MaxMigrationsPerTick users move per tick, so migration
//     traffic (drain + re-register + redirect) stays a bounded tax on the
//     delivery pipeline no matter how skewed the load gets.
type Rebalancer struct {
	base Policy
	cfg  Config
}

// NewRebalancer wraps base with per-tick ρ-driven migration.
func NewRebalancer(base Policy, cfg Config) *Rebalancer {
	return &Rebalancer{base: base, cfg: cfg.withDefaults()}
}

// Name implements Policy.
func (rb *Rebalancer) Name() string { return NameRebalance }

// Place implements Policy: registration-time placement is the base's unless
// the base's choice is a server the rebalancer is actively shedding. Rebalance
// drains an overloaded server a budgeted handful of users per tick; letting
// registrations meanwhile refill it would have the two halves of the policy
// working against each other — under a large population the stream of fresh
// users landing on a hot server outruns any migration budget. Diverting the
// registration to the region's coldest server is a migration at zero cost:
// the user has no mailbox yet, so there is nothing to drain and no copy in
// flight to chase. The shed criterion is the same one Rebalance applies
// (above the hysteresis band and the MinShedRho floor), read from the live
// gauges, so a healthy region places exactly like the base policy.
func (rb *Rebalancer) Place(u User) []int {
	out := rb.base.Place(u)
	if len(out) == 0 || rb.cfg.Gauges == nil {
		return out
	}
	r := rb.cfg.World.RegionOfSlot(out[0])
	slots := rb.cfg.World.RegionSlots(r)
	if len(slots) < 2 {
		return out
	}
	rho := func(s int) float64 {
		return float64(rb.cfg.Gauges.Gauge(rb.cfg.Label(s)+".rho").Value()) / RhoScale
	}
	mean, cold, coldRho := 0.0, -1, 0.0
	for _, s := range slots {
		v := rho(s)
		mean += v
		if cold < 0 || v < coldRho {
			cold, coldRho = s, v
		}
	}
	mean /= float64(len(slots))
	hi := mean * (1 + rb.cfg.HysteresisBand)
	if hi < rb.cfg.MinShedRho {
		hi = rb.cfg.MinShedRho
	}
	if rho(out[0]) <= hi || cold == out[0] {
		return out
	}
	div := make([]int, 0, len(out))
	div = append(div, cold)
	for _, s := range out {
		if s != cold && len(div) < len(out) {
			div = append(div, s)
		}
	}
	return div
}

// slotLoad is one server's observed state read from the snapshot gauges.
type slotLoad struct {
	slot   int
	rho    float64 // from "<label>.rho", RhoScale fixed-point
	placed int64   // from "<label>.placed": users whose primary this is
}

// Rebalance implements Policy. Migrations stay within a region (the paper's
// architecture never homes a user outside their region's servers); each
// overloaded server sheds its excess over the regional mean across every
// server below the band, proportional to their headroom, subject to the
// global per-tick budget.
func (rb *Rebalancer) Rebalance(snap obs.Snapshot) []Migration {
	var migs []Migration
	budget := rb.cfg.MaxMigrationsPerTick
	for r := 0; r < rb.cfg.World.Regions && budget > 0; r++ {
		loads := rb.regionLoads(snap, r)
		if len(loads) < 2 {
			continue
		}
		mean := 0.0
		for _, l := range loads {
			mean += l.rho
		}
		mean /= float64(len(loads))
		if mean <= 0 {
			continue // no traffic observed yet
		}
		hi := mean * (1 + rb.cfg.HysteresisBand)
		if hi < rb.cfg.MinShedRho {
			hi = rb.cfg.MinShedRho // a near-idle region has nothing to shed
		}
		lo := mean * (1 - rb.cfg.HysteresisBand)
		var overs, unders []slotLoad
		for _, l := range loads {
			switch {
			case l.rho > hi:
				overs = append(overs, l)
			case l.rho < lo:
				unders = append(unders, l)
			}
		}
		sort.Slice(overs, func(i, j int) bool {
			if overs[i].rho != overs[j].rho {
				return overs[i].rho > overs[j].rho
			}
			return overs[i].slot < overs[j].slot
		})
		sort.Slice(unders, func(i, j int) bool {
			if unders[i].rho != unders[j].rho {
				return unders[i].rho < unders[j].rho
			}
			return unders[i].slot < unders[j].slot
		})
		if len(overs) == 0 || len(unders) == 0 {
			continue
		}
		// Each under-loaded server can absorb its headroom below the mean;
		// spread every over's excess across ALL of them proportionally. The
		// head-to-head alternative (hottest over → coldest under) funnels one
		// hot server's whole excess onto a single target, which merely moves
		// the hot spot around the region.
		headroom := 0.0
		for _, u := range unders {
			headroom += mean - u.rho
		}
		if headroom <= 0 {
			continue
		}
		for _, o := range overs {
			if budget <= 0 {
				break
			}
			n := moveCount(o, mean)
			frac := (o.rho - mean) / o.rho
			for _, u := range unders {
				if budget <= 0 {
					break
				}
				share := (mean - u.rho) / headroom
				cnt := int(float64(n) * share)
				if cnt < 1 {
					cnt = 1
				}
				if cnt > budget {
					cnt = budget
				}
				migs = append(migs, Migration{
					From: o.slot, To: u.slot, Count: cnt,
					Frac: frac * share,
				})
				budget -= cnt
			}
		}
	}
	return migs
}

// moveCount sizes one migration: enough users to close the server's excess
// over the regional mean, assuming traffic roughly proportional to placed
// users; at least one, at most half the server's placement (never empty a
// server in one tick — the next tick re-observes and corrects).
func moveCount(o slotLoad, mean float64) int {
	if o.placed <= 0 {
		return 1
	}
	n := int(float64(o.placed) * (o.rho - mean) / o.rho)
	if n < 1 {
		n = 1
	}
	if max := int(o.placed / 2); n > max && max >= 1 {
		n = max
	}
	return n
}

// regionLoads reads region r's per-slot gauges from the snapshot, in slot
// order (deterministic regardless of map iteration).
func (rb *Rebalancer) regionLoads(snap obs.Snapshot, r int) []slotLoad {
	slots := rb.cfg.World.RegionSlots(r)
	out := make([]slotLoad, 0, len(slots))
	for _, s := range slots {
		label := rb.cfg.Label(s)
		rho, ok := snap.Gauges[label+".rho"]
		if !ok {
			continue // server not observed (e.g. not yet ticked, or removed)
		}
		out = append(out, slotLoad{
			slot:   s,
			rho:    float64(rho) / RhoScale,
			placed: snap.Gauges[label+".placed"],
		})
	}
	return out
}
