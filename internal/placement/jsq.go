package placement

import (
	"math/rand"

	"github.com/largemail/largemail/internal/obs"
)

// JSQ is power-of-d-choices placement (Budhiraja–Friedlander): at Place time
// it samples d servers of the user's region, reads their "<label>.qdepth"
// gauges, and makes the least-loaded sample the primary. The rest of the
// authority list comes from the base policy, so failover order and regional
// confinement stay the reference behavior — only the primary choice is
// load-aware.
//
// The d-sample (rather than scanning all servers) is the whole point of the
// policy family: with d=2 the maximum queue length already drops from
// Θ(log n / log log n) to Θ(log log n) while each placement touches O(1)
// state.
type JSQ struct {
	base Policy
	cfg  Config
	rng  *rand.Rand
}

// NewJSQ wraps base with JSQ(d) primary choice. cfg.Gauges must be the
// registry the driver maintains "<label>.qdepth" in.
func NewJSQ(base Policy, cfg Config) *JSQ {
	cfg = cfg.withDefaults()
	return &JSQ{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed + 0x15b3))}
}

// Name implements Policy.
func (j *JSQ) Name() string { return NameJSQ }

// Place implements Policy.
func (j *JSQ) Place(u User) []int {
	tail := j.base.Place(u)
	if len(tail) == 0 || j.cfg.Gauges == nil {
		return tail
	}
	r := j.cfg.World.RegionOfSlot(tail[0])
	best := j.pickLeastLoaded(r)
	if best < 0 {
		return tail
	}
	out := make([]int, 0, len(tail))
	out = append(out, best)
	for _, s := range tail {
		if s != best && len(out) < len(tail) {
			out = append(out, s)
		}
	}
	// The sampled primary may not have been in the base list at all; keep
	// the list length at AuthorityLen by dropping the base tail's last entry.
	return out
}

// pickLeastLoaded samples d distinct slots of region r and returns the one
// with the smallest qdepth gauge (ties to the lower slot; -1 if the region
// is empty).
func (j *JSQ) pickLeastLoaded(r int) int {
	slots := j.cfg.World.RegionSlots(r)
	if len(slots) == 0 {
		return -1
	}
	d := j.cfg.D
	if d > len(slots) {
		d = len(slots)
	}
	// Partial Fisher–Yates: the first d entries become the sample.
	for i := 0; i < d; i++ {
		k := i + j.rng.Intn(len(slots)-i)
		slots[i], slots[k] = slots[k], slots[i]
	}
	best, bestQ := -1, int64(0)
	for _, s := range slots[:d] {
		q := j.cfg.Gauges.Gauge(j.cfg.Label(s) + ".qdepth").Value()
		if best < 0 || q < bestQ || (q == bestQ && s < best) {
			best, bestQ = s, q
		}
	}
	return best
}

// Rebalance implements Policy: JSQ acts only at submit time.
func (j *JSQ) Rebalance(obs.Snapshot) []Migration { return nil }
