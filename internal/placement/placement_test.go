package placement

import (
	"testing"

	"github.com/largemail/largemail/internal/obs"
)

func testWorld() World {
	return World{Regions: 2, ServersPerRegion: 4, HostsPerRegion: 8, AuthorityLen: 2}
}

func TestParseName(t *testing.T) {
	for in, want := range map[string]string{
		"": NameStatic, "static": NameStatic, "jsq": NameJSQ, "rebalance": NameRebalance,
	} {
		got, err := ParseName(in)
		if err != nil || got != want {
			t.Errorf("ParseName(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseName("round-robin"); err == nil {
		t.Error("ParseName accepted an unknown policy")
	}
}

func TestRoundRobinPlace(t *testing.T) {
	w := testWorld()
	p := NewRoundRobin(w)
	for gh := 0; gh < w.Regions*w.HostsPerRegion; gh++ {
		list := p.Place(User{Index: gh * 10, Host: gh})
		if len(list) != w.AuthorityLen {
			t.Fatalf("host %d: authority list %v, want %d entries", gh, list, w.AuthorityLen)
		}
		r := w.RegionOfHost(gh)
		for _, s := range list {
			if w.RegionOfSlot(s) != r {
				t.Fatalf("host %d (region %d) placed on slot %d (region %d)",
					gh, r, s, w.RegionOfSlot(s))
			}
		}
		if list[0] == list[1] {
			t.Fatalf("host %d: duplicate slots %v", gh, list)
		}
	}
	// Deterministic: same input, same answer.
	a := p.Place(User{Index: 7, Host: 3})
	b := p.Place(User{Index: 7, Host: 3})
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("Place not deterministic: %v vs %v", a, b)
	}
}

// TestJSQPicksLeastLoaded hand-sets qdepth gauges and samples d = all slots,
// so JSQ's choice is forced: the least-loaded server must become the primary
// and the base tail must survive behind it at AuthorityLen.
func TestJSQPicksLeastLoaded(t *testing.T) {
	w := testWorld()
	reg := obs.NewRegistry()
	for s := 0; s < w.TotalServers(); s++ {
		reg.Gauge(DefaultLabel(s) + ".qdepth").Set(int64(100 + s))
	}
	// Slot 2 is the idle one in region 0.
	reg.Gauge(DefaultLabel(2) + ".qdepth").Set(1)
	j := NewJSQ(NewRoundRobin(w), Config{World: w, Gauges: reg, D: w.ServersPerRegion})
	list := j.Place(User{Index: 0, Host: 0})
	if len(list) != w.AuthorityLen {
		t.Fatalf("authority list %v, want %d entries", list, w.AuthorityLen)
	}
	if list[0] != 2 {
		t.Fatalf("JSQ primary = slot %d, want the least-loaded slot 2 (%v)", list[0], list)
	}
	// Without gauges JSQ must degrade to the base policy.
	plain := NewJSQ(NewRoundRobin(w), Config{World: w, D: 2})
	base := NewRoundRobin(w).Place(User{Index: 0, Host: 0})
	got := plain.Place(User{Index: 0, Host: 0})
	if len(got) != len(base) || got[0] != base[0] {
		t.Fatalf("gauge-less JSQ diverged from base: %v vs %v", got, base)
	}
	if migs := j.Rebalance(obs.Snapshot{}); len(migs) != 0 {
		t.Fatalf("JSQ emitted migrations: %v", migs)
	}
}

// snapWithRho builds a snapshot whose region-0 servers carry the given ρ
// values (RhoScale fixed-point) and one placed user per 100 load units.
func snapWithRho(w World, rhos []float64) obs.Snapshot {
	g := make(map[string]int64)
	for i, rho := range rhos {
		label := DefaultLabel(w.RegionSlots(0)[i])
		g[label+".rho"] = int64(rho * RhoScale)
		g[label+".placed"] = int64(rho*100) + 10
	}
	return obs.Snapshot{Gauges: g}
}

func TestRebalancerHysteresisHoldsStill(t *testing.T) {
	w := testWorld()
	rb := NewRebalancer(NewRoundRobin(w), Config{World: w})
	// All servers inside the ±25% band around the mean: nothing moves.
	if migs := rb.Rebalance(snapWithRho(w, []float64{1.0, 1.1, 0.9, 1.05})); len(migs) != 0 {
		t.Fatalf("in-band region produced migrations: %v", migs)
	}
}

func TestRebalancerMinShedRhoFloor(t *testing.T) {
	w := testWorld()
	rb := NewRebalancer(NewRoundRobin(w), Config{World: w})
	// One server is 4× the regional mean — but at ρ=0.2 it is nowhere near
	// loaded. The absolute floor must keep the near-idle region still.
	if migs := rb.Rebalance(snapWithRho(w, []float64{0.2, 0.05, 0.05, 0.05})); len(migs) != 0 {
		t.Fatalf("near-idle region produced migrations: %v", migs)
	}
}

func TestRebalancerShedsProportionally(t *testing.T) {
	w := testWorld()
	rb := NewRebalancer(NewRoundRobin(w), Config{World: w})
	hot := w.RegionSlots(0)[0]
	migs := rb.Rebalance(snapWithRho(w, []float64{2.0, 0.2, 0.4, 0.6}))
	if len(migs) == 0 {
		t.Fatal("skewed region produced no migrations")
	}
	total := 0
	var toColdest, toWarmest int
	for _, m := range migs {
		if m.From != hot {
			t.Fatalf("migration from slot %d, only slot %d is overloaded: %+v", m.From, hot, migs)
		}
		if m.To == hot {
			t.Fatalf("migration back onto the overloaded slot: %+v", m)
		}
		if m.Count < 1 || m.Frac <= 0 || m.Frac > 1 {
			t.Fatalf("malformed migration %+v", m)
		}
		total += m.Count
		switch m.To {
		case w.RegionSlots(0)[1]:
			toColdest = m.Count
		case w.RegionSlots(0)[2]:
			toWarmest = m.Count
		}
	}
	if total > 32 {
		t.Fatalf("default budget exceeded: %d users in one tick", total)
	}
	// Proportional headroom: the coldest server (ρ=0.2) absorbs more than
	// the warmer one (ρ=0.4).
	if toColdest <= toWarmest {
		t.Fatalf("headroom split not proportional: coldest got %d, warmer got %d", toColdest, toWarmest)
	}
}

func TestRebalancerBudget(t *testing.T) {
	w := testWorld()
	rb := NewRebalancer(NewRoundRobin(w), Config{World: w, MaxMigrationsPerTick: 4})
	migs := rb.Rebalance(snapWithRho(w, []float64{8.0, 0.1, 0.1, 0.1}))
	total := 0
	for _, m := range migs {
		total += m.Count
	}
	if total == 0 || total > 4 {
		t.Fatalf("budget 4 violated: %d users moved (%v)", total, migs)
	}
}

// TestRebalancerPlaceDiversion: registrations must not refill a server the
// rebalancer is shedding. With the base primary's live ρ above the shed
// threshold, Place diverts to the region's coldest server; with healthy
// gauges it is exactly the base placement.
func TestRebalancerPlaceDiversion(t *testing.T) {
	w := testWorld()
	reg := obs.NewRegistry()
	rb := NewRebalancer(NewRoundRobin(w), Config{World: w, Gauges: reg})
	base := NewRoundRobin(w).Place(User{Index: 0, Host: 0})

	// Healthy region: identical to base.
	for i, s := range w.RegionSlots(0) {
		reg.Gauge(DefaultLabel(s) + ".rho").Set(int64((0.3 + 0.01*float64(i)) * RhoScale))
	}
	if got := rb.Place(User{Index: 0, Host: 0}); got[0] != base[0] {
		t.Fatalf("healthy region diverted: %v vs base %v", got, base)
	}

	// Base primary overloaded, slot 3 idle: the registration diverts there.
	reg.Gauge(DefaultLabel(base[0]) + ".rho").Set(3 * RhoScale)
	reg.Gauge(DefaultLabel(3) + ".rho").Set(0)
	got := rb.Place(User{Index: 0, Host: 0})
	if got[0] != 3 {
		t.Fatalf("overloaded primary not diverted: %v (base %v)", got, base)
	}
	if len(got) != w.AuthorityLen {
		t.Fatalf("diverted list %v, want %d entries", got, w.AuthorityLen)
	}

	// No gauges: pure base behavior.
	plain := NewRebalancer(NewRoundRobin(w), Config{World: w})
	if got := plain.Place(User{Index: 0, Host: 0}); got[0] != base[0] {
		t.Fatalf("gauge-less rebalancer diverged from base: %v vs %v", got, base)
	}
}
