package evalsys

import (
	"math"
	"strings"
	"testing"

	"github.com/largemail/largemail/internal/sim"
)

func fullCollector() *Collector {
	c := NewCollector("test")
	c.ObserveSetup(sim.Units(1))
	c.ObserveSetup(sim.Units(3))
	c.ObserveDelivery(sim.Units(4))
	c.ObserveResponse(sim.Units(10))
	c.ObserveResolutionHops(2)
	for i := 0; i < 10; i++ {
		c.CountSubmission(i != 9) // one failure
	}
	c.CountDelivered(9)
	c.CountDuplicates(1)
	c.CountRetries(2)
	c.CountEvicted(3)
	c.CountNotified(4)
	c.CountRetrieval(1)
	c.CountRetrieval(2)
	c.CountMigration(1)
	c.CountMigration(0)
	c.CountReconfigMessages(7)
	c.SetTraffic(12500, 50)
	c.SetStorage(2048)
	c.SetCapabilities(true, false)
	return c
}

func TestReportValues(t *testing.T) {
	r := fullCollector().Report()
	if r.System != "test" {
		t.Errorf("System = %q", r.System)
	}
	if r.Efficiency.MeanSetupTime != 2 {
		t.Errorf("MeanSetupTime = %v", r.Efficiency.MeanSetupTime)
	}
	if r.Efficiency.MeanPollsPerCheck != 1.5 {
		t.Errorf("MeanPollsPerCheck = %v", r.Efficiency.MeanPollsPerCheck)
	}
	if math.Abs(r.Reliability.Availability-0.9) > 1e-12 {
		t.Errorf("Availability = %v", r.Reliability.Availability)
	}
	if math.Abs(r.Reliability.DeliveredRate-0.9) > 1e-12 {
		t.Errorf("DeliveredRate = %v", r.Reliability.DeliveredRate)
	}
	if r.Flexibility.RenamesPerMigration != 0.5 {
		t.Errorf("RenamesPerMigration = %v", r.Flexibility.RenamesPerMigration)
	}
	if r.Cost.TotalTrafficCost != 12.5 || r.Cost.TotalMessages != 50 {
		t.Errorf("Cost = %+v", r.Cost)
	}
	if r.Cost.StorageBytes != 2048 {
		t.Errorf("StorageBytes = %d", r.Cost.StorageBytes)
	}
	if !r.Flexibility.SupportsAttributeSend || r.Flexibility.RoamingSupported {
		t.Errorf("capabilities = %+v", r.Flexibility)
	}
}

func TestEmptyCollectorNoNaNs(t *testing.T) {
	r := NewCollector("empty").Report()
	for name, v := range map[string]float64{
		"setup":     r.Efficiency.MeanSetupTime,
		"delivery":  r.Efficiency.MeanDeliveryTime,
		"polls":     r.Efficiency.MeanPollsPerCheck,
		"avail":     r.Reliability.Availability,
		"delivered": r.Reliability.DeliveredRate,
		"renames":   r.Flexibility.RenamesPerMigration,
		"response":  r.Cost.MeanResponseTime,
	} {
		if math.IsNaN(v) {
			t.Errorf("%s is NaN on empty collector", name)
		}
	}
	if s := r.Score(DefaultWeights()); math.IsNaN(s) || s < 0 || s > 1 {
		t.Errorf("empty Score = %v", s)
	}
}

func TestScoreBounds(t *testing.T) {
	r := fullCollector().Report()
	for _, w := range []Weights{{}, DefaultWeights(), {Efficiency: 1}, {Cost: 5}} {
		s := r.Score(w)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Errorf("Score(%+v) = %v out of [0,1]", w, s)
		}
	}
	if (Report{}).Score(Weights{}) < 0 {
		t.Error("zero report score negative")
	}
}

func TestScorePrefersReliableSystem(t *testing.T) {
	good := NewCollector("good")
	good.CountSubmission(true)
	good.CountDelivered(1)
	bad := NewCollector("bad")
	bad.CountSubmission(true) // submitted but never delivered
	if good.Report().Score(Weights{Reliability: 1}) <= bad.Report().Score(Weights{Reliability: 1}) {
		t.Error("reliable system did not out-score lossy one")
	}
}

func TestRender(t *testing.T) {
	out := fullCollector().Report().Render()
	for _, want := range []string{"efficiency", "reliability", "flexibility", "cost", "polls per retrieval"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}
