// Package evalsys computes the paper's §4 performance criteria for
// evaluating mail systems: efficiency, reliability, flexibility, and cost.
//
// "Some of these performance measures may have conflicting requirements
// with each other ... it is necessary for designers and administrators to
// weigh different alternatives and strike a balance" — so the package
// reports the raw measures per criterion and a weighted roll-up the caller
// controls, rather than a single opinionated score.
package evalsys

import (
	"fmt"
	"math"
	"strings"

	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// Efficiency covers §4.1: "connection set-up time, message transportation,
// message delivery, name resolution, message storage, ... and receiving
// server notification for existence of mail."
type Efficiency struct {
	MeanSetupTime      float64 // time units to find a live server
	MeanDeliveryTime   float64 // submission → buffered at an authority server
	MeanResolutionHops float64
	MeanPollsPerCheck  float64 // polls per retrieval (GetMail ≈ 1)
	NotifyRate         float64 // fraction of deliveries that alerted an online user
}

// Reliability covers §4.2: "mail-service availability, message flow
// control, buffer clean-up, and consistency."
type Reliability struct {
	Availability    float64 // fraction of submissions that found a live server
	DeliveredRate   float64 // delivered / submitted (1.0 = no loss)
	DuplicateRate   float64 // duplicate deposits suppressed / delivered
	RetriesPerMsg   float64 // transfer retries per delivered message
	EvictedMessages int64   // clean-up policy evictions
}

// Flexibility covers §4.3: "user migration, group naming, system
// reconfiguration, and user interface design."
type Flexibility struct {
	RenamesPerMigration   float64 // 1.0 for syntax-directed, 0 for location-independent intra-region moves
	ReconfigMessages      int64   // traffic caused by add/remove server
	SupportsAttributeSend bool    // group naming via attributes
	RoamingSupported      bool
}

// Cost covers §4.4: "response time, storage space used, implementation
// overhead."
type Cost struct {
	TotalTrafficCost float64 // edge-weight cost of all delivered traffic
	TotalMessages    int64
	StorageBytes     int64
	MeanResponseTime float64 // time units, submission → retrieval
}

// Report bundles the four criteria for one run of one design.
type Report struct {
	System      string
	Efficiency  Efficiency
	Reliability Reliability
	Flexibility Flexibility
	Cost        Cost
}

// Weights control the roll-up Score. Zero-value weights count everything
// equally.
type Weights struct {
	Efficiency  float64
	Reliability float64
	Flexibility float64
	Cost        float64
}

// DefaultWeights weighs the four criteria equally.
func DefaultWeights() Weights { return Weights{1, 1, 1, 1} }

// Score rolls the report into a single comparable figure in [0, 1], where
// higher is better. Each criterion is first normalized into [0, 1] with
// simple saturating transforms; the weighted mean follows. The transforms
// are documented inline — the point is comparability between designs run on
// the same workload, not absolute meaning.
func (r Report) Score(w Weights) float64 {
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	// Efficiency: polls close to 1 and fast delivery are good.
	eff := saturating(1/math.Max(r.Efficiency.MeanPollsPerCheck, 1)) * 0.5
	eff += saturating(1/(1+r.Efficiency.MeanDeliveryTime/10)) * 0.5
	// Reliability: delivery rate dominates; availability seconds it.
	rel := clamp01(r.Reliability.DeliveredRate)*0.7 + clamp01(r.Reliability.Availability)*0.3
	// Flexibility: no renames, roaming and attribute sends are good.
	flex := 0.0
	if r.Flexibility.RenamesPerMigration == 0 {
		flex += 0.4
	}
	if r.Flexibility.RoamingSupported {
		flex += 0.3
	}
	if r.Flexibility.SupportsAttributeSend {
		flex += 0.3
	}
	// Cost: cheaper traffic per message is better.
	perMsg := 0.0
	if r.Cost.TotalMessages > 0 {
		perMsg = r.Cost.TotalTrafficCost / float64(r.Cost.TotalMessages)
	}
	cost := saturating(1 / (1 + perMsg))
	total := w.Efficiency + w.Reliability + w.Flexibility + w.Cost
	if total == 0 {
		return 0
	}
	return (eff*w.Efficiency + rel*w.Reliability + flex*w.Flexibility + cost*w.Cost) / total
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func saturating(v float64) float64 { return clamp01(v) }

// Collector accumulates the raw observations a Report is computed from.
// The zero value is not usable; create with NewCollector.
type Collector struct {
	system string

	setup      obs.Summary
	delivery   obs.Summary
	response   obs.Summary
	resolution obs.Summary

	submitted      int64
	submitFailures int64
	delivered      int64
	duplicates     int64
	retries        int64
	evicted        int64
	notified       int64

	polls      int64
	retrievals int64

	migrations int64
	renames    int64

	reconfigMessages int64
	trafficCostMilli int64
	messages         int64
	storageBytes     int64

	attributeSend bool
	roaming       bool
}

// NewCollector returns an empty collector for the named system.
func NewCollector(system string) *Collector {
	return &Collector{system: system}
}

// ObserveSetup records a connection-setup duration.
func (c *Collector) ObserveSetup(d sim.Time) { c.setup.Observe(d.Units()) }

// ObserveDelivery records a submission→buffered latency.
func (c *Collector) ObserveDelivery(d sim.Time) { c.delivery.Observe(d.Units()) }

// ObserveResponse records a submission→retrieval latency.
func (c *Collector) ObserveResponse(d sim.Time) { c.response.Observe(d.Units()) }

// ObserveResolutionHops records hops needed to resolve a name.
func (c *Collector) ObserveResolutionHops(hops int) { c.resolution.Observe(float64(hops)) }

// CountSubmission records one submission attempt; ok is false when no
// server was reachable.
func (c *Collector) CountSubmission(ok bool) {
	c.submitted++
	if !ok {
		c.submitFailures++
	}
}

// CountDelivered records successfully buffered messages.
func (c *Collector) CountDelivered(n int) { c.delivered += int64(n) }

// CountDuplicates records suppressed duplicate deposits.
func (c *Collector) CountDuplicates(n int) { c.duplicates += int64(n) }

// CountRetries records transfer retries.
func (c *Collector) CountRetries(n int) { c.retries += int64(n) }

// CountEvicted records clean-up evictions.
func (c *Collector) CountEvicted(n int) { c.evicted += int64(n) }

// CountNotified records alert signals that reached an online user.
func (c *Collector) CountNotified(n int) { c.notified += int64(n) }

// CountRetrieval records one GetMail with the polls it issued.
func (c *Collector) CountRetrieval(polls int) {
	c.retrievals++
	c.polls += int64(polls)
}

// CountMigration records a user migration and how many renames it required.
func (c *Collector) CountMigration(renames int) {
	c.migrations++
	c.renames += int64(renames)
}

// CountReconfigMessages records traffic caused by reconfiguration.
func (c *Collector) CountReconfigMessages(n int64) { c.reconfigMessages += n }

// SetTraffic records the network totals (from netsim stats).
func (c *Collector) SetTraffic(costMilli, messages int64) {
	c.trafficCostMilli = costMilli
	c.messages = messages
}

// SetStorage records buffered bytes across servers.
func (c *Collector) SetStorage(bytes int64) { c.storageBytes = bytes }

// SetCapabilities records design-level flexibility facts.
func (c *Collector) SetCapabilities(attributeSend, roaming bool) {
	c.attributeSend = attributeSend
	c.roaming = roaming
}

// Report computes the §4 criteria from everything collected.
func (c *Collector) Report() Report {
	r := Report{System: c.system}
	r.Efficiency = Efficiency{
		MeanSetupTime:      meanOrZero(&c.setup),
		MeanDeliveryTime:   meanOrZero(&c.delivery),
		MeanResolutionHops: meanOrZero(&c.resolution),
	}
	if c.retrievals > 0 {
		r.Efficiency.MeanPollsPerCheck = float64(c.polls) / float64(c.retrievals)
	}
	if c.delivered > 0 {
		r.Efficiency.NotifyRate = float64(c.notified) / float64(c.delivered)
		r.Reliability.DuplicateRate = float64(c.duplicates) / float64(c.delivered)
		r.Reliability.RetriesPerMsg = float64(c.retries) / float64(c.delivered)
	}
	if c.submitted > 0 {
		r.Reliability.Availability = 1 - float64(c.submitFailures)/float64(c.submitted)
		r.Reliability.DeliveredRate = float64(c.delivered) / float64(c.submitted)
	}
	r.Reliability.EvictedMessages = c.evicted
	if c.migrations > 0 {
		r.Flexibility.RenamesPerMigration = float64(c.renames) / float64(c.migrations)
	}
	r.Flexibility.ReconfigMessages = c.reconfigMessages
	r.Flexibility.SupportsAttributeSend = c.attributeSend
	r.Flexibility.RoamingSupported = c.roaming
	r.Cost = Cost{
		TotalTrafficCost: float64(c.trafficCostMilli) / 1000,
		TotalMessages:    c.messages,
		StorageBytes:     c.storageBytes,
		MeanResponseTime: meanOrZero(&c.response),
	}
	return r
}

func meanOrZero(s *obs.Summary) float64 {
	if s.Count() == 0 {
		return 0
	}
	return s.Mean()
}

// Render formats the report as an aligned table for the experiment output.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4 criteria — %s\n", r.System)
	t := obs.NewTable("", "criterion", "measure", "value")
	t.AddRow("efficiency", "mean setup time (u)", r.Efficiency.MeanSetupTime)
	t.AddRow("efficiency", "mean delivery time (u)", r.Efficiency.MeanDeliveryTime)
	t.AddRow("efficiency", "polls per retrieval", r.Efficiency.MeanPollsPerCheck)
	t.AddRow("efficiency", "notify rate", r.Efficiency.NotifyRate)
	t.AddRow("reliability", "availability", r.Reliability.Availability)
	t.AddRow("reliability", "delivered rate", r.Reliability.DeliveredRate)
	t.AddRow("reliability", "retries per message", r.Reliability.RetriesPerMsg)
	t.AddRow("reliability", "evicted messages", r.Reliability.EvictedMessages)
	t.AddRow("flexibility", "renames per migration", r.Flexibility.RenamesPerMigration)
	t.AddRow("flexibility", "reconfig messages", r.Flexibility.ReconfigMessages)
	t.AddRow("flexibility", "attribute send", r.Flexibility.SupportsAttributeSend)
	t.AddRow("flexibility", "roaming", r.Flexibility.RoamingSupported)
	t.AddRow("cost", "total traffic cost", r.Cost.TotalTrafficCost)
	t.AddRow("cost", "total messages", r.Cost.TotalMessages)
	t.AddRow("cost", "storage bytes", r.Cost.StorageBytes)
	t.AddRow("cost", "mean response time (u)", r.Cost.MeanResponseTime)
	b.WriteString(t.Render())
	return b.String()
}
