package livenet

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
)

// SpoolConfig tunes the cluster's redelivery spool. Zero fields take the
// defaults noted on each field.
type SpoolConfig struct {
	// BaseDelay is the wait before the first redelivery attempt of an entry
	// (default 5ms). Subsequent attempts double it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 250ms). Keeping retry
	// pressure off struggling servers is the pull-based load-distribution
	// lesson (Stolyar 2018): a recovering server must not be stampeded.
	MaxDelay time.Duration
	// Seed drives the backoff jitter (default 1). Jitter decorrelates
	// retries of entries spooled in the same outage.
	Seed int64
}

func (cfg SpoolConfig) withDefaults() SpoolConfig {
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 5 * time.Millisecond
	}
	if cfg.MaxDelay < cfg.BaseDelay {
		cfg.MaxDelay = 250 * time.Millisecond
		if cfg.MaxDelay < cfg.BaseDelay {
			cfg.MaxDelay = cfg.BaseDelay
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// spoolEntry is one recipient copy awaiting redelivery.
type spoolEntry struct {
	msg      mail.Message
	rcpt     names.Name
	attempts int
	due      time.Time
}

// spool buffers recipient copies that could not be deposited at any
// authority server and redelivers them from a background worker with capped
// exponential backoff plus jitter — the §3.1.2b "mail servers buffer
// messages" obligation extended to the window where every authority server
// of a recipient is down or unreachable at once.
type spool struct {
	c   *Cluster
	cfg SpoolConfig
	rng *rand.Rand // worker-goroutine only

	mu      sync.Mutex
	entries []*spoolEntry

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// EnableSpool starts the cluster's redelivery spool. It must be called
// before the cluster is closed and at most once; with the spool running,
// Submit buffers undeliverable recipient copies instead of failing them.
func (c *Cluster) EnableSpool(cfg SpoolConfig) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.spoolMu.Lock()
	defer c.spoolMu.Unlock()
	if c.spool != nil {
		return errors.New("livenet: spool already enabled")
	}
	cfg = cfg.withDefaults()
	sp := &spool{
		c:    c,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.spool = sp
	go sp.run()
	return nil
}

// SpoolDepth reports how many recipient copies are queued for redelivery.
func (c *Cluster) SpoolDepth() int {
	c.spoolMu.Lock()
	sp := c.spool
	c.spoolMu.Unlock()
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.entries)
}

// add queues one recipient copy for redelivery and nudges the worker.
func (sp *spool) add(msg mail.Message, rcpt names.Name) {
	e := &spoolEntry{msg: msg, rcpt: rcpt, due: time.Now().Add(sp.cfg.BaseDelay)}
	sp.mu.Lock()
	sp.entries = append(sp.entries, e)
	sp.mu.Unlock()
	select {
	case sp.wake <- struct{}{}:
	default:
	}
}

func (sp *spool) stop() {
	close(sp.quit)
	<-sp.done
}

// run is the redelivery worker: sleep until the earliest entry is due (or a
// new entry arrives), then retry every due entry through the normal
// deposit-with-failover path.
func (sp *spool) run() {
	defer close(sp.done)
	timer := time.NewTimer(sp.cfg.MaxDelay)
	defer timer.Stop()
	for {
		d := sp.nextDue()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-sp.quit:
			return
		case <-sp.wake:
		case <-timer.C:
		}
		sp.deliverDue()
	}
}

// nextDue reports how long to sleep before the earliest entry is due. With
// an empty spool it returns an idle period bounded by MaxDelay.
func (sp *spool) nextDue() time.Duration {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.entries) == 0 {
		return sp.cfg.MaxDelay
	}
	earliest := sp.entries[0].due
	for _, e := range sp.entries[1:] {
		if e.due.Before(earliest) {
			earliest = e.due
		}
	}
	d := time.Until(earliest)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// deliverDue retries every due entry once. Due entries whose recipients
// share the same first-available authority server are drained together with
// one DepositBatch round (the relay-batching fabric on this transport); a
// batch that fails falls back to the per-entry deposit-with-failover path,
// whose transient-retry and backoff handling then applies entry by entry
// (retry splitting). Entries that still fail get a backed-off new due time;
// delivered entries leave the spool.
func (sp *spool) deliverDue() {
	now := time.Now()
	sp.mu.Lock()
	due := make([]*spoolEntry, 0, len(sp.entries))
	for _, e := range sp.entries {
		if !e.due.After(now) {
			due = append(due, e)
		}
	}
	sp.mu.Unlock()

	groups := make(map[string][]*spoolEntry)
	singles := make([]*spoolEntry, 0, len(due))
	for _, e := range due {
		if name, ok := sp.c.firstAvailable(e.rcpt); ok {
			groups[name] = append(groups[name], e)
		} else {
			singles = append(singles, e) // no live server: per-entry path backs off
		}
	}
	for name, es := range groups {
		if len(es) < 2 {
			singles = append(singles, es...)
			continue
		}
		srv, ok := sp.c.Server(name)
		if !ok {
			singles = append(singles, es...)
			continue
		}
		items := make([]BatchDeposit, len(es))
		for i, e := range es {
			items[i] = BatchDeposit{Msg: e.msg, Rcpt: e.rcpt}
		}
		if err := srv.DepositBatch(items); err != nil {
			singles = append(singles, es...) // split: retry individually
			continue
		}
		sp.c.stats.Inc("spool_batch_drains")
		sp.c.stats.Add("spool_batch_msgs", int64(len(es)))
		for _, e := range es {
			sp.c.trace.Stamp(e.msg.ID.String(), obs.StageDeposit, name)
			sp.settle(e)
		}
	}
	for _, e := range singles {
		err := sp.c.depositFailover(e.msg, e.rcpt)
		sp.mu.Lock()
		if err == nil {
			sp.c.stats.Inc("spool_redelivered")
			sp.removeLocked(e)
		} else {
			e.attempts++
			sp.c.stats.Inc("spool_retries")
			e.due = time.Now().Add(sp.backoff(e.attempts))
		}
		sp.mu.Unlock()
	}
}

// settle removes a delivered entry and counts the redelivery.
func (sp *spool) settle(e *spoolEntry) {
	sp.mu.Lock()
	sp.c.stats.Inc("spool_redelivered")
	sp.removeLocked(e)
	sp.mu.Unlock()
}

// removeLocked deletes an entry; sp.mu must be held.
func (sp *spool) removeLocked(e *spoolEntry) {
	for i, cur := range sp.entries {
		if cur == e {
			sp.entries = append(sp.entries[:i], sp.entries[i+1:]...)
			return
		}
	}
}

// backoff is capped exponential backoff with equal jitter: the delay for
// attempt n is uniform in [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped at MaxDelay.
func (sp *spool) backoff(attempt int) time.Duration {
	d := sp.cfg.BaseDelay
	for i := 1; i < attempt && d < sp.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > sp.cfg.MaxDelay {
		d = sp.cfg.MaxDelay
	}
	half := d / 2
	return half + time.Duration(sp.rng.Int63n(int64(half)+1))
}
