package livenet

import (
	"errors"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// TestSubmitMultiRecipientPartialFailure: a failing recipient must not
// abort the rest of the fan-out. All recipients are attempted, the real
// message ID comes back, and the per-recipient failures arrive joined.
func TestSubmitMultiRecipientPartialFailure(t *testing.T) {
	c := newCluster(t)
	ghost := names.MustParse("R1.h9.ghost") // no authority list registered
	id, err := c.Submit(bob, []names.Name{alice, ghost, alice}, "fanout", "b")
	if err == nil {
		t.Fatal("submit with unresolvable recipient reported no error")
	}
	if !errors.Is(err, ErrNoAuthority) {
		t.Errorf("err = %v, want ErrNoAuthority in the join", err)
	}
	if id == (mail.MessageID{}) {
		t.Error("no real message ID returned alongside the error")
	}
	// The deliverable recipient's copy went through regardless.
	a, _ := c.NewAgent(alice)
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "fanout" || got[0].ID != id {
		t.Fatalf("deliverable recipient got %v, want the fanout message", got)
	}
}

// TestCrashBetweenGetMailsRecoversMissedWindow is the §3.1.2c failure
// walk-through on the live transport: mail lands on the primary, the
// primary crashes before the recipient polls, new mail fails over to the
// secondary, and the recovery's fresh LastStartTime forces the deeper walk
// that surfaces the missed window. PreviouslyUnavailableServers tracks the
// crashed server in between.
func TestCrashBetweenGetMailsRecoversMissedWindow(t *testing.T) {
	c := newCluster(t)
	a, _ := c.NewAgent(alice)
	b, _ := c.NewAgent(bob)
	a.GetMail() // establish LastCheckingTime

	if _, err := b.Send([]names.Name{alice}, "early", "b"); err != nil {
		t.Fatal(err)
	}
	s1, _ := c.Server("s1")
	s1.Crash()

	// Poll while the primary (holding "early") is down: nothing comes back,
	// and s1 joins PreviouslyUnavailableServers.
	if got := a.GetMail(); len(got) != 0 {
		t.Fatalf("retrieved %v while the copy's only holder is down", got)
	}
	if pu := a.PreviouslyUnavailable(); len(pu) != 1 || pu[0] != "s1" {
		t.Fatalf("PreviouslyUnavailable = %v, want [s1]", pu)
	}
	checkpoint := a.LastCheckingTime()
	if checkpoint.IsZero() {
		t.Fatal("LastCheckingTime not advanced by the failed walk")
	}

	// New mail fails over to the secondary and is found there.
	if _, err := b.Send([]names.Name{alice}, "later", "b"); err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "later" {
		t.Fatalf("failover window retrieved %v, want [later]", got)
	}

	time.Sleep(time.Millisecond) // make the recovery stamp measurably newer
	s1.Recover()
	if !s1.LastStart().After(checkpoint) {
		t.Fatal("recovery did not stamp a fresh LastStartTime")
	}
	got = a.GetMail()
	if len(got) != 1 || got[0].Subject != "early" {
		t.Fatalf("post-recovery walk retrieved %v, want the missed [early]", got)
	}
	if pu := a.PreviouslyUnavailable(); len(pu) != 0 {
		t.Errorf("PreviouslyUnavailable = %v after recovery, want empty", pu)
	}
	if len(a.Inbox()) != 2 {
		t.Errorf("inbox = %d messages, want exactly 2 (no loss, no duplicates)", len(a.Inbox()))
	}
}

// TestUnreachableServerStampsLastStart: a link failure is unavailability
// under §3.1.2c ("disconnected from the network"), so restoring
// reachability must stamp LastStartTime exactly like a crash recovery —
// otherwise mail that failed over past the unreachable server would be
// stranded beyond the GetMail stop point.
func TestUnreachableServerStampsLastStart(t *testing.T) {
	c := newCluster(t)
	a, _ := c.NewAgent(alice)
	b, _ := c.NewAgent(bob)
	a.GetMail()

	s1, _ := c.Server("s1")
	s1.SetReachable(false)
	if s1.Reachable() {
		t.Fatal("SetReachable(false) not reflected")
	}
	if _, err := b.Send([]names.Name{alice}, "around", "b"); err != nil {
		t.Fatalf("failover around unreachable server: %v", err)
	}
	s2, _ := c.Server("s2")
	if n, _ := s2.MailboxLen(alice); n != 1 {
		t.Fatalf("secondary holds %d copies, want 1", n)
	}
	if c.Metrics()["deposit_failovers"] == 0 {
		t.Error("deposit_failovers counter did not move")
	}
	// The walk marks the unreachable primary previously-unavailable.
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "around" {
		t.Fatalf("GetMail with unreachable primary = %v", got)
	}
	if pu := a.PreviouslyUnavailable(); len(pu) != 1 || pu[0] != "s1" {
		t.Fatalf("PreviouslyUnavailable = %v, want [s1]", pu)
	}

	before := s1.LastStart()
	time.Sleep(time.Millisecond)
	s1.SetReachable(true)
	if !s1.LastStart().After(before) {
		t.Fatal("restoring reachability did not stamp LastStartTime")
	}
	a.GetMail()
	if pu := a.PreviouslyUnavailable(); len(pu) != 0 {
		t.Errorf("PreviouslyUnavailable = %v after restore, want empty", pu)
	}
}

// TestInjectedDropsNeverFailOver: transient faults are retried on the SAME
// server and then surfaced — failing over past a live, stable server would
// deposit beyond the recipient's GetMail stop point and strand the copy.
func TestInjectedDropsNeverFailOver(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Server("s1")
	s1.SetDropProb(1)
	_, err := c.Submit(bob, []names.Name{alice}, "dropped", "b")
	if err == nil {
		t.Fatal("submit through a fully lossy primary succeeded without spool")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	for _, name := range []string{"s2", "s3"} {
		s, _ := c.Server(name)
		if n, _ := s.MailboxLen(alice); n != 0 {
			t.Errorf("%s holds %d copies — transient fault caused failover", name, n)
		}
	}
	if got := c.Metrics()["deposit_retries"]; got != maxTransientRetries {
		t.Errorf("deposit_retries = %d, want %d", got, maxTransientRetries)
	}
	s1.SetDropProb(0)
	if _, err := c.Submit(bob, []names.Name{alice}, "clear", "b"); err != nil {
		t.Fatalf("submit after clearing drops: %v", err)
	}
}

// TestSpoolRedeliversAfterTotalOutage: with the spool enabled, a submit
// during a full outage is accepted and redelivered once a server returns —
// the live-path analogue of the paper's buffering guarantee.
func TestSpoolRedeliversAfterTotalOutage(t *testing.T) {
	c := newCluster(t)
	if err := c.EnableSpool(SpoolConfig{
		BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		s, _ := c.Server(name)
		s.Crash()
	}
	id, err := c.Submit(bob, []names.Name{alice}, "buffered", "b")
	if err != nil {
		t.Fatalf("submit during total outage with spool: %v", err)
	}
	if c.SpoolDepth() != 1 {
		t.Fatalf("spool depth = %d, want 1", c.SpoolDepth())
	}
	if c.Metrics()["submit_spooled"] != 1 {
		t.Errorf("submit_spooled = %d, want 1", c.Metrics()["submit_spooled"])
	}

	s2, _ := c.Server("s2")
	s2.Recover()
	deadline := time.Now().Add(5 * time.Second)
	for c.SpoolDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.SpoolDepth() != 0 {
		t.Fatal("spool did not drain after recovery")
	}
	if c.Metrics()["spool_redelivered"] != 1 {
		t.Errorf("spool_redelivered = %d, want 1", c.Metrics()["spool_redelivered"])
	}
	a, _ := c.NewAgent(alice)
	got := a.GetMail()
	if len(got) != 1 || got[0].ID != id || got[0].Subject != "buffered" {
		t.Fatalf("redelivered retrieval = %v", got)
	}
}

// TestEnableSpoolValidation covers double-enable and enable-after-close.
func TestEnableSpoolValidation(t *testing.T) {
	c := newCluster(t)
	if err := c.EnableSpool(SpoolConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableSpool(SpoolConfig{}); err == nil {
		t.Error("double EnableSpool accepted")
	}
	c2 := NewCluster()
	c2.Close()
	if err := c2.EnableSpool(SpoolConfig{}); err == nil {
		t.Error("EnableSpool on closed cluster accepted")
	}
}

// TestServerLatencyInjection: injected latency slows calls without failing
// them.
func TestServerLatencyInjection(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Server("s1")
	s1.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if _, err := c.Submit(bob, []names.Name{alice}, "slow", "b"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("submit took %v, want >= 30ms of injected latency", elapsed)
	}
	s1.SetLatency(0)
}
