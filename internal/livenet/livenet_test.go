package livenet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/names"
)

var (
	alice = names.MustParse("R1.h1.alice")
	bob   = names.MustParse("R1.h2.bob")
)

// newCluster builds a three-server cluster with alice on [s1 s2 s3] and bob
// on [s2 s3 s1]; the cluster is closed at test end.
func newCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster()
	t.Cleanup(c.Close)
	for _, n := range []string{"s1", "s2", "s3"} {
		if _, err := c.AddServer(n); err != nil {
			t.Fatal(err)
		}
	}
	c.Directory().SetAuthority(alice, []string{"s1", "s2", "s3"})
	c.Directory().SetAuthority(bob, []string{"s2", "s3", "s1"})
	return c
}

func TestSubmitAndGetMail(t *testing.T) {
	c := newCluster(t)
	a, err := c.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewAgent(bob)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Send([]names.Name{alice}, "hello", "live")
	if err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].ID != id || got[0].Subject != "hello" {
		t.Fatalf("GetMail = %v", got)
	}
	if len(a.Inbox()) != 1 {
		t.Error("inbox not updated")
	}
	// Primary server s1 took the deposit.
	s1, _ := c.Server("s1")
	if s1.Deposits() != 1 {
		t.Errorf("s1 deposits = %d", s1.Deposits())
	}
}

func TestGetMailStopsAtStablePrimary(t *testing.T) {
	c := newCluster(t)
	a, _ := c.NewAgent(alice)
	b, _ := c.NewAgent(bob)
	a.GetMail() // cold start: LastCheckingTime now set after server starts
	coldPolls := a.Polls()
	for i := 0; i < 5; i++ {
		if _, err := b.Send([]names.Name{alice}, "s", "b"); err != nil {
			t.Fatal(err)
		}
		a.GetMail()
	}
	if got := a.Polls() - coldPolls; got != 5 {
		t.Errorf("steady-state polls = %d over 5 retrievals, want 5", got)
	}
}

func TestFailoverDeposit(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Server("s1")
	s1.Crash()
	b, _ := c.NewAgent(bob)
	if _, err := b.Send([]names.Name{alice}, "fo", "b"); err != nil {
		t.Fatal(err)
	}
	s2, _ := c.Server("s2")
	if n, _ := s2.MailboxLen(alice); n != 1 {
		t.Errorf("secondary mailbox = %d, want 1", n)
	}
	a, _ := c.NewAgent(alice)
	got := a.GetMail()
	if len(got) != 1 {
		t.Fatalf("GetMail with primary down = %v", got)
	}
}

func TestStrandedMailRecoveredAfterRestart(t *testing.T) {
	c := newCluster(t)
	a, _ := c.NewAgent(alice)
	b, _ := c.NewAgent(bob)
	a.GetMail()
	// Mail lands on s1, which then crashes.
	if _, err := b.Send([]names.Name{alice}, "stranded", "b"); err != nil {
		t.Fatal(err)
	}
	s1, _ := c.Server("s1")
	s1.Crash()
	// New mail goes to s2; alice checks while s1 is down.
	if _, err := b.Send([]names.Name{alice}, "fresh", "b"); err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].Subject != "fresh" {
		t.Fatalf("got %v while primary down", got)
	}
	// s1 recovers; its fresh LastStartTime forces a deeper walk and the
	// stranded message surfaces.
	time.Sleep(time.Millisecond) // ensure LastStart > lastChecking measurably
	s1.Recover()
	got = a.GetMail()
	if len(got) != 1 || got[0].Subject != "stranded" {
		t.Fatalf("after recovery got %v", got)
	}
}

func TestAllServersDown(t *testing.T) {
	c := newCluster(t)
	for _, n := range []string{"s1", "s2", "s3"} {
		s, _ := c.Server(n)
		s.Crash()
	}
	b, _ := c.NewAgent(bob)
	if _, err := b.Send([]names.Name{alice}, "s", "b"); !errors.Is(err, ErrAllDown) {
		t.Errorf("all-down Send err = %v", err)
	}
}

func TestNewAgentRequiresAuthority(t *testing.T) {
	c := newCluster(t)
	ghost := names.MustParse("R1.h9.ghost")
	if _, err := c.NewAgent(ghost); !errors.Is(err, ErrNoAuthority) {
		t.Errorf("err = %v, want ErrNoAuthority", err)
	}
}

func TestDuplicateServerRejected(t *testing.T) {
	c := newCluster(t)
	if _, err := c.AddServer("s1"); err == nil {
		t.Error("duplicate server accepted")
	}
}

func TestClosedCluster(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddServer("s"); err != nil {
		t.Fatal(err)
	}
	c.Directory().SetAuthority(alice, []string{"s"})
	c.Close()
	c.Close() // idempotent
	if _, err := c.AddServer("x"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddServer after close err = %v", err)
	}
	if _, err := c.Submit(bob, []names.Name{alice}, "s", "b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after close err = %v", err)
	}
}

// Concurrency: many senders plus crash/recovery churn; every message is
// retrieved exactly once. Run with -race.
func TestConcurrentSendersNoLoss(t *testing.T) {
	c := newCluster(t)
	const senders = 8
	const perSender = 25
	var wg sync.WaitGroup
	errCh := make(chan error, senders)
	for i := 0; i < senders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := names.Name{Region: "R1", Host: "hx", User: fmt.Sprintf("sender%d", i)}
			for j := 0; j < perSender; j++ {
				if _, err := c.Submit(from, []names.Name{alice}, "cc", "b"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Churn the secondary and tertiary while traffic flows; the primary
	// stays up so Submit always succeeds.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		s2, _ := c.Server("s2")
		s3, _ := c.Server("s3")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s2.Crash()
				s3.Recover()
			} else {
				s2.Recover()
				s3.Crash()
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	churnWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s2, _ := c.Server("s2")
	s3, _ := c.Server("s3")
	s2.Recover()
	s3.Recover()

	a, _ := c.NewAgent(alice)
	a.GetMail()
	a.GetMail() // clear PreviouslyUnavailable stragglers
	if got := len(a.Inbox()); got != senders*perSender {
		t.Errorf("received %d of %d messages", got, senders*perSender)
	}
}

func TestMultiRecipientFanout(t *testing.T) {
	c := newCluster(t)
	carol := names.MustParse("R1.h3.carol")
	c.Directory().SetAuthority(carol, []string{"s3"})
	if _, err := c.Submit(bob, []names.Name{alice, carol}, "fan", "b"); err != nil {
		t.Fatal(err)
	}
	a, _ := c.NewAgent(alice)
	ca, _ := c.NewAgent(carol)
	if len(a.GetMail()) != 1 || len(ca.GetMail()) != 1 {
		t.Error("fanout copy missing")
	}
}
