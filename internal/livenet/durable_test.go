package livenet

import (
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

func mkKillMsg(seq uint64, to names.Name) mail.Message {
	return mail.Message{
		ID: mail.MessageID{Node: 1, Seq: seq},
		To: []names.Name{to}, Subject: "s", Body: "b",
	}
}

func durableCluster(t *testing.T) *Cluster {
	t.Helper()
	return NewClusterWith(ClusterConfig{DataDir: t.TempDir(), StoreShards: 2})
}

// TestKillRestartMemoryLosesMail is the negative control: on a memory-only
// cluster a kill-restart genuinely destroys buffered mail. This is the loss
// the durable store exists to prevent — if this test ever starts passing
// mail through, the durable soak proves nothing.
func TestKillRestartMemoryLosesMail(t *testing.T) {
	c := NewCluster()
	defer c.Close()
	if _, err := c.AddServer("s1"); err != nil {
		t.Fatal(err)
	}
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}
	c.Directory().SetAuthority(alice, []string{"s1"})
	if _, err := c.Submit(alice, []names.Name{alice}, "s", "lost forever"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillServer("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartServer("s1"); err != nil {
		t.Fatal(err)
	}
	a, err := c.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.GetMail(); len(got) != 0 {
		t.Fatalf("memory cluster returned %d messages after kill-restart, want 0", len(got))
	}
}

// TestKillRestartDurableRecoversMail: the same kill-restart on a durable
// cluster loses nothing, and the recovered mailbox still suppresses
// duplicate deposits of already-delivered IDs.
func TestKillRestartDurableRecoversMail(t *testing.T) {
	c := durableCluster(t)
	defer c.Close()
	if _, err := c.AddServer("s1"); err != nil {
		t.Fatal(err)
	}
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}
	c.Directory().SetAuthority(alice, []string{"s1"})
	id, err := c.Submit(alice, []names.Name{alice}, "s", "survives")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillServer("s1"); err != nil {
		t.Fatal(err)
	}
	// While killed the server is down to callers, like a crashed one.
	s1, _ := c.Server("s1")
	if err := s1.Deposit(mkKillMsg(99, alice), alice); !errors.Is(err, ErrServerDown) {
		t.Fatalf("deposit on killed server: err = %v, want ErrServerDown", err)
	}
	if err := c.RestartServer("s1"); err != nil {
		t.Fatal(err)
	}
	a, err := c.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("recovered mail = %v, want exactly %v", got, id)
	}
	// Dedup memory recovered too: a replayed deposit of the retrieved
	// message must be suppressed by the mailbox, not just the agent.
	if err := s1.Deposit(mkKillMsg(id.Seq, alice), alice); err != nil {
		t.Fatal(err)
	}
	if n, _ := s1.MailboxLen(alice); n != 0 {
		t.Fatalf("duplicate re-deposit stored after recovery (len=%d)", n)
	}
	m := c.Metrics()
	if m["kills"] != 1 || m["restarts"] != 1 {
		t.Fatalf("kills=%d restarts=%d, want 1/1", m["kills"], m["restarts"])
	}
}

// TestClusterReopenRecovers: a whole new cluster over the same DataDir
// (process restart, not just server restart) serves the old mail.
func TestClusterReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}

	c1 := NewClusterWith(ClusterConfig{DataDir: dir})
	if _, err := c1.AddServer("s1"); err != nil {
		t.Fatal(err)
	}
	c1.Directory().SetAuthority(alice, []string{"s1"})
	id, err := c1.Submit(alice, []names.Name{alice}, "s", "across processes")
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := NewClusterWith(ClusterConfig{DataDir: dir})
	defer c2.Close()
	if _, err := c2.AddServer("s1"); err != nil {
		t.Fatal(err)
	}
	c2.Directory().SetAuthority(alice, []string{"s1"})
	a, err := c2.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	got := a.GetMail()
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("reopened cluster mail = %v, want %v", got, id)
	}

	// The reopened cluster's ID allocator resumed above the recovered
	// suppression floor: a fresh submit must mint an unused ID and be
	// delivered, not be swallowed as a duplicate of the pre-restart message.
	id2, err := c2.Submit(alice, []names.Name{alice}, "s", "after reopen")
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("reopened cluster reused message ID %v", id)
	}
	got = a.GetMail()
	if len(got) != 1 || got[0].ID != id2 {
		t.Fatalf("post-reopen mail = %v, want %v (fresh submit suppressed as duplicate?)", got, id2)
	}
}

// TestKilledGenerationMapsToServerDown: a caller that snapshotted a run
// generation's quit channel, then observed its close only after a Kill AND a
// complete Restart, must get retryable ErrServerDown — by then the killed
// flag has already flipped back to false, and reporting terminal ErrClosed
// would make a client treat a healthy cluster as shut down.
func TestKilledGenerationMapsToServerDown(t *testing.T) {
	c := durableCluster(t)
	defer c.Close()
	s, err := c.AddServer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s.runMu.RLock()
	gen := s.quit
	s.runMu.RUnlock()
	if err := s.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := s.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := s.downErr(gen); !errors.Is(err, ErrServerDown) {
		t.Fatalf("downErr(superseded generation) = %v, want ErrServerDown", err)
	}
	// The current generation still maps a cluster shutdown to ErrClosed.
	s.runMu.RLock()
	cur := s.quit
	s.runMu.RUnlock()
	c.Close()
	if err := s.downErr(cur); !errors.Is(err, ErrClosed) {
		t.Fatalf("downErr(current generation after Close) = %v, want ErrClosed", err)
	}
}

// TestDurabilityStatsCumulativeAcrossRestart: kill-restart swaps in a fresh
// store with zeroed WAL counters; DurabilityStats must keep counting the
// closed store's work or chaos-mode bench numbers under-report the write
// path.
func TestDurabilityStatsCumulativeAcrossRestart(t *testing.T) {
	c := durableCluster(t)
	defer c.Close()
	if _, err := c.AddServer("s1"); err != nil {
		t.Fatal(err)
	}
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}
	c.Directory().SetAuthority(alice, []string{"s1"})
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(alice, []names.Name{alice}, "s", "pre-kill"); err != nil {
			t.Fatal(err)
		}
	}
	pre, ok := c.DurabilityStats()
	if !ok || pre.Appends == 0 {
		t.Fatalf("pre-kill stats = %+v ok=%v, want appends > 0", pre, ok)
	}
	if err := c.KillServer("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartServer("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(alice, []names.Name{alice}, "s", "post-restart"); err != nil {
		t.Fatal(err)
	}
	post, _ := c.DurabilityStats()
	if post.Appends < pre.Appends+1 {
		t.Fatalf("Appends = %d after kill-restart, want >= %d (stats must be cumulative)",
			post.Appends, pre.Appends+1)
	}
	if post.Bytes < pre.Bytes {
		t.Fatalf("Bytes = %d after kill-restart, want >= pre-kill %d", post.Bytes, pre.Bytes)
	}
}

// TestDurableLastStartDrivesPollEfficiency: after a kill-restart the
// recovered store's LastStartTime is the server's §3.1.2c start stamp — the
// retrieval right after the restart walks past the restarted primary to
// collect failed-over mail, and the next failure-free retrieval is back to
// exactly one poll.
func TestDurableLastStartDrivesPollEfficiency(t *testing.T) {
	c := durableCluster(t)
	defer c.Close()
	for _, n := range []string{"s1", "s2"} {
		if _, err := c.AddServer(n); err != nil {
			t.Fatal(err)
		}
	}
	alice := names.Name{Region: "R0", Host: "h0", User: "alice"}
	c.Directory().SetAuthority(alice, []string{"s1", "s2"})
	a, err := c.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	a.GetMail() // establish LastCheckingTime after both servers' starts

	id1, err := c.Submit(alice, []names.Name{alice}, "s", "before kill")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillServer("s1"); err != nil {
		t.Fatal(err)
	}
	id2, err := c.Submit(alice, []names.Name{alice}, "s", "failed over")
	if err != nil {
		t.Fatal(err) // deposits at s2: s1 is down
	}
	if err := c.RestartServer("s1"); err != nil {
		t.Fatal(err)
	}

	// The restart stamped a LastStartTime after the agent's LastCheckingTime,
	// which is what forces the walk past the recovered s1 to find id2 at s2.
	got := a.GetMail()
	if len(got) != 2 {
		t.Fatalf("retrieved %d messages, want 2 (%v and %v)", len(got), id1, id2)
	}

	// Failure-free steady state: one poll per retrieval, because s1 has now
	// been up since before the last check.
	before := a.Polls()
	a.GetMail()
	if polls := a.Polls() - before; polls != 1 {
		t.Fatalf("steady-state retrieval used %d polls, want 1", polls)
	}
}
