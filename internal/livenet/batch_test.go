package livenet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
)

func TestDepositBatch(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Server("s1")
	items := []BatchDeposit{
		{Msg: mail.Message{ID: mail.MessageID{Node: 1, Seq: 1}, Body: "a"}, Rcpt: alice},
		{Msg: mail.Message{ID: mail.MessageID{Node: 1, Seq: 2}, Body: "b"}, Rcpt: alice},
		{Msg: mail.Message{ID: mail.MessageID{Node: 1, Seq: 1}, Body: "a"}, Rcpt: alice}, // dup
		{Msg: mail.Message{ID: mail.MessageID{Node: 1, Seq: 3}, Body: "c"}, Rcpt: bob},
	}
	if err := s1.DepositBatch(items); err != nil {
		t.Fatal(err)
	}
	if got := s1.Deposits(); got != 3 {
		t.Errorf("deposits = %d, want 3 (duplicate suppressed)", got)
	}
	if n, _ := s1.MailboxLen(alice); n != 2 {
		t.Errorf("alice mailbox = %d, want 2", n)
	}
	if b, _ := s1.StoredBytes(); b != 3 {
		t.Errorf("StoredBytes = %d, want 3", b)
	}
	s1.Crash()
	if err := s1.DepositBatch(items[:1]); !errors.Is(err, ErrServerDown) {
		t.Errorf("DepositBatch on crashed server err = %v, want ErrServerDown", err)
	}
	if !errors.Is(s1.DepositBatch(items[:1]), mailerr.ErrServerDown) {
		t.Error("DepositBatch error does not match the mailerr taxonomy")
	}
}

// TestSpoolDrainsBatches: spool many copies during a total outage, recover,
// and verify the worker drained them in coalesced DepositBatch rounds.
func TestSpoolDrainsBatches(t *testing.T) {
	c := newCluster(t)
	if err := c.EnableSpool(SpoolConfig{BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"s1", "s2", "s3"} {
		s, _ := c.Server(n)
		s.Crash()
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := c.Submit(bob, []names.Name{alice}, fmt.Sprintf("m%d", i), "x"); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := c.Metrics()["submit_spooled"]; got != n {
		t.Fatalf("submit_spooled = %d, want %d", got, n)
	}
	s1, _ := c.Server("s1")
	s1.Recover()
	deadline := time.Now().Add(5 * time.Second)
	for c.SpoolDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d := c.SpoolDepth(); d != 0 {
		t.Fatalf("spool depth = %d after recovery, want 0", d)
	}
	m := c.Metrics()
	if m["spool_redelivered"] != n {
		t.Errorf("spool_redelivered = %d, want %d", m["spool_redelivered"], n)
	}
	if m["spool_batch_drains"] == 0 {
		t.Error("spool never used DepositBatch (spool_batch_drains = 0)")
	}
	if m["spool_batch_msgs"] < 2 {
		t.Errorf("spool_batch_msgs = %d, want >= 2", m["spool_batch_msgs"])
	}
	a, err := c.NewAgent(alice)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.GetMail(); len(got) != n {
		t.Errorf("alice retrieved %d messages, want %d", len(got), n)
	}
}

func TestSubmitContextCancelled(t *testing.T) {
	c := newCluster(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.SubmitContext(ctx, bob, []names.Name{alice}, "s", "b")
	if !errors.Is(err, mailerr.ErrTimeout) {
		t.Fatalf("SubmitContext(cancelled) err = %v, want mailerr.ErrTimeout", err)
	}
	// No copy must have been committed for the cancelled submission.
	a, errAgent := c.NewAgent(alice)
	if errAgent != nil {
		t.Fatal(errAgent)
	}
	if got := a.GetMail(); len(got) != 0 {
		t.Errorf("cancelled submit delivered %d messages", len(got))
	}
}

func TestSubmitContextLive(t *testing.T) {
	c := newCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.SubmitContext(ctx, bob, []names.Name{alice}, "s", "b"); err != nil {
		t.Fatalf("SubmitContext err = %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Server("s1")
	s1.Crash()
	if err := s1.Deposit(mail.Message{ID: mail.MessageID{Node: 1, Seq: 9}}, alice); !errors.Is(err, mailerr.ErrServerDown) {
		t.Errorf("Deposit on crashed server: %v does not match mailerr.ErrServerDown", err)
	}
	unknown := names.MustParse("R1.h9.ghost")
	if _, err := c.NewAgent(unknown); !errors.Is(err, mailerr.ErrUnknownUser) {
		t.Errorf("NewAgent(unknown): %v does not match mailerr.ErrUnknownUser", err)
	}
}
