// Package livenet runs the paper's syntax-directed delivery core on a real
// concurrent runtime: every mail server is a goroutine owning its state and
// serving requests over channels, and time is wall-clock time.
//
// The discrete-event simulation (internal/netsim + internal/server) is the
// reference used for the experiments; livenet exists to demonstrate that the
// same algorithms — ordered authority-server lists, deposit-with-failover,
// and the GetMail retrieval procedure driven by LastCheckingTime vs
// LastStartTime (§3.1.2c) — are runtime-independent. The package is safe for
// concurrent use and race-clean under `go test -race`.
package livenet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// Errors reported by livenet operations.
var (
	ErrServerDown  = errors.New("livenet: server is down")
	ErrNoAuthority = errors.New("livenet: user has no authority servers")
	ErrAllDown     = errors.New("livenet: no authority server available")
	ErrClosed      = errors.New("livenet: cluster closed")
)

// Directory maps users to their ordered authority-server lists. It is safe
// for concurrent use.
type Directory struct {
	mu    sync.RWMutex
	lists map[names.Name][]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lists: make(map[names.Name][]string)}
}

// SetAuthority records the ordered authority list for a user.
func (d *Directory) SetAuthority(user names.Name, servers []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(servers) == 0 {
		delete(d.lists, user)
		return
	}
	d.lists[user] = append([]string(nil), servers...)
}

// Authority returns the user's ordered authority list.
func (d *Directory) Authority(user names.Name) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.lists[user]...)
}

// request is a unit of work executed by a server's loop goroutine.
type request struct {
	fn   func(*serverState)
	done chan struct{}
}

// serverState is owned exclusively by the server goroutine.
type serverState struct {
	mailboxes map[names.Name]*mail.Mailbox
}

// Server is one mail server: a goroutine owning mailboxes, reachable through
// a request channel. Crash/Recover toggle availability without losing the
// mailbox contents (stable storage, as in the simulation).
type Server struct {
	name string

	reqs chan request
	quit chan struct{}
	done chan struct{}

	up        atomic.Bool
	lastStart atomic.Int64 // unix nanos of the last start/recovery

	deposits atomic.Int64
	checks   atomic.Int64
}

// Name returns the server's identifier.
func (s *Server) Name() string { return s.name }

// Up reports whether the server currently accepts requests.
func (s *Server) Up() bool { return s.up.Load() }

// LastStart reports when the server last started or recovered — the
// LastStartTime[server] variable of §3.1.2c.
func (s *Server) LastStart() time.Time { return time.Unix(0, s.lastStart.Load()) }

// Deposits reports how many messages this server has buffered in total.
func (s *Server) Deposits() int64 { return s.deposits.Load() }

// Checks reports how many CheckMail polls this server has served.
func (s *Server) Checks() int64 { return s.checks.Load() }

// Crash makes the server reject requests. Buffered mail survives.
func (s *Server) Crash() { s.up.Store(false) }

// Recover brings the server back and stamps a fresh LastStartTime.
func (s *Server) Recover() {
	// Stamp before flipping up so a concurrent GetMail that sees the
	// server up also sees a LastStartTime no older than the recovery.
	s.lastStart.Store(time.Now().UnixNano())
	s.up.Store(true)
}

// call runs fn on the server goroutine and waits for completion.
func (s *Server) call(fn func(*serverState)) error {
	if !s.Up() {
		return fmt.Errorf("%w: %s", ErrServerDown, s.name)
	}
	req := request{fn: fn, done: make(chan struct{})}
	select {
	case s.reqs <- req:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case <-req.done:
		return nil
	case <-s.quit:
		return ErrClosed
	}
}

// Deposit buffers a message for a recipient. It fails when the server is
// down, letting the caller fail over to the next authority server.
func (s *Server) Deposit(msg mail.Message, rcpt names.Name) error {
	err := s.call(func(st *serverState) {
		mb, ok := st.mailboxes[rcpt]
		if !ok {
			mb = mail.NewMailbox(rcpt)
			st.mailboxes[rcpt] = mb
		}
		if mb.Deposit(msg, 0) {
			s.deposits.Add(1)
		}
	})
	return err
}

// CheckMail drains the user's mailbox ("get mail from server").
func (s *Server) CheckMail(user names.Name) ([]mail.Stored, error) {
	var out []mail.Stored
	err := s.call(func(st *serverState) {
		s.checks.Add(1)
		if mb, ok := st.mailboxes[user]; ok {
			out = mb.Drain()
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MailboxLen reports buffered messages for a user.
func (s *Server) MailboxLen(user names.Name) (int, error) {
	n := 0
	err := s.call(func(st *serverState) {
		if mb, ok := st.mailboxes[user]; ok {
			n = mb.Len()
		}
	})
	return n, err
}

func (s *Server) loop() {
	defer close(s.done)
	st := &serverState{mailboxes: make(map[names.Name]*mail.Mailbox)}
	for {
		select {
		case req := <-s.reqs:
			req.fn(st)
			close(req.done)
		case <-s.quit:
			return
		}
	}
}

// Cluster is a set of live servers sharing a directory.
type Cluster struct {
	dir     *Directory
	mu      sync.RWMutex
	servers map[string]*Server
	closed  atomic.Bool
	nextSeq atomic.Uint64
}

// NewCluster returns an empty cluster with its directory.
func NewCluster() *Cluster {
	return &Cluster{dir: NewDirectory(), servers: make(map[string]*Server)}
}

// Directory returns the cluster's shared directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// AddServer starts a server goroutine. Names must be unique.
func (c *Cluster) AddServer(name string) (*Server, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.servers[name]; dup {
		return nil, fmt.Errorf("livenet: server %q already exists", name)
	}
	s := &Server{
		name: name,
		reqs: make(chan request),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.lastStart.Store(time.Now().UnixNano())
	s.up.Store(true)
	c.servers[name] = s
	go s.loop()
	return s, nil
}

// Server returns a server by name.
func (c *Cluster) Server(name string) (*Server, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.servers[name]
	return s, ok
}

// Close stops every server goroutine and waits for them to exit.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.mu.RLock()
	servers := make([]*Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.RUnlock()
	for _, s := range servers {
		close(s.quit)
	}
	for _, s := range servers {
		<-s.done
	}
}

// Submit accepts a message and deposits one copy per recipient at the first
// available authority server, failing over down the list (§3.1.2c: "mail
// will be deposited in the first active server from the list"). It returns
// the assigned message ID.
func (c *Cluster) Submit(from names.Name, to []names.Name, subject, body string) (mail.MessageID, error) {
	if c.closed.Load() {
		return mail.MessageID{}, ErrClosed
	}
	msg := mail.Message{
		ID:      mail.MessageID{Node: 1, Seq: c.nextSeq.Add(1)},
		From:    from,
		To:      append([]names.Name(nil), to...),
		Subject: subject,
		Body:    body,
	}
	for _, rcpt := range msg.To {
		if err := c.depositFailover(msg, rcpt); err != nil {
			return mail.MessageID{}, fmt.Errorf("deliver to %v: %w", rcpt, err)
		}
	}
	return msg.ID, nil
}

// depositFailover walks the recipient's authority list until a deposit
// sticks.
func (c *Cluster) depositFailover(msg mail.Message, rcpt names.Name) error {
	list := c.dir.Authority(rcpt)
	if len(list) == 0 {
		return fmt.Errorf("%w: %v", ErrNoAuthority, rcpt)
	}
	var lastErr error
	for _, name := range list {
		s, ok := c.Server(name)
		if !ok {
			continue
		}
		if err := s.Deposit(msg, rcpt); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = ErrAllDown
	}
	return fmt.Errorf("%w (%v)", ErrAllDown, lastErr)
}

// Agent is a live user agent implementing the paper's GetMail procedure on
// wall-clock time. Agents are not safe for concurrent use by multiple
// goroutines (a user interface is a single actor); distinct agents may run
// concurrently.
type Agent struct {
	user    names.Name
	cluster *Cluster

	lastChecking time.Time
	prevUnavail  map[string]bool
	seen         map[mail.MessageID]bool
	inbox        []mail.Stored
	polls        int
	retrievals   int
}

// NewAgent creates an agent for a user registered in the directory.
func (c *Cluster) NewAgent(user names.Name) (*Agent, error) {
	if len(c.dir.Authority(user)) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoAuthority, user)
	}
	return &Agent{
		user:        user,
		cluster:     c,
		prevUnavail: make(map[string]bool),
		seen:        make(map[mail.MessageID]bool),
	}, nil
}

// User returns the agent's name.
func (a *Agent) User() names.Name { return a.user }

// Inbox returns the messages retrieved so far.
func (a *Agent) Inbox() []mail.Stored { return append([]mail.Stored(nil), a.inbox...) }

// Polls reports CheckMail calls issued.
func (a *Agent) Polls() int { return a.polls }

// Retrievals reports GetMail invocations.
func (a *Agent) Retrievals() int { return a.retrievals }

// Send submits a message through the cluster.
func (a *Agent) Send(to []names.Name, subject, body string) (mail.MessageID, error) {
	return a.cluster.Submit(a.user, to, subject, body)
}

// GetMail is the §3.1.2c retrieval algorithm on wall-clock time: walk the
// authority list; stop at the first live server that has been up since
// before the last check; collect from servers previously seen unavailable.
func (a *Agent) GetMail() []mail.Stored {
	a.retrievals++
	before := len(a.inbox)
	current := time.Now()
	finished := false
	for _, name := range a.cluster.dir.Authority(a.user) {
		if finished {
			break
		}
		s, ok := a.cluster.Server(name)
		if !ok {
			continue
		}
		if s.Up() {
			a.poll(s)
			delete(a.prevUnavail, name)
			if a.lastChecking.After(s.LastStart()) {
				finished = true
			}
		} else {
			a.prevUnavail[name] = true
		}
	}
	for _, name := range a.cluster.dir.Authority(a.user) {
		if !a.prevUnavail[name] {
			continue
		}
		if s, ok := a.cluster.Server(name); ok && s.Up() {
			a.poll(s)
			delete(a.prevUnavail, name)
		}
	}
	a.lastChecking = current
	return append([]mail.Stored(nil), a.inbox[before:]...)
}

func (a *Agent) poll(s *Server) {
	a.polls++
	msgs, err := s.CheckMail(a.user)
	if err != nil {
		return
	}
	for _, m := range msgs {
		if a.seen[m.ID] {
			continue
		}
		a.seen[m.ID] = true
		a.inbox = append(a.inbox, m)
	}
}
