// Package livenet runs the paper's syntax-directed delivery core on a real
// concurrent runtime: every mail server is a goroutine owning its state and
// serving requests over channels, and time is wall-clock time.
//
// The discrete-event simulation (internal/netsim + internal/server) is the
// reference used for the experiments; livenet exists to demonstrate that the
// same algorithms — ordered authority-server lists, deposit-with-failover,
// and the GetMail retrieval procedure driven by LastCheckingTime vs
// LastStartTime (§3.1.2c) — are runtime-independent. The package is safe for
// concurrent use and race-clean under `go test -race`.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/placement"
	"github.com/largemail/largemail/internal/sketch"
)

// Errors reported by livenet operations. The availability and naming errors
// wrap the shared taxonomy in internal/mailerr, so callers can branch on
// cross-layer categories (mailerr.ErrServerDown, mailerr.ErrUnknownUser)
// without importing livenet.
var (
	ErrServerDown  = fmt.Errorf("livenet: server is down: %w", mailerr.ErrServerDown)
	ErrNoAuthority = fmt.Errorf("livenet: user has no authority servers: %w", mailerr.ErrUnknownUser)
	ErrAllDown     = fmt.Errorf("livenet: no authority server available: %w", mailerr.ErrServerDown)
	ErrClosed      = errors.New("livenet: cluster closed")
	// ErrUnreachable marks a server that is running but cut off from the
	// network — §3.1.2c's "disconnected from the network" failure mode,
	// injected by internal/faults link events.
	ErrUnreachable = fmt.Errorf("livenet: server unreachable (link down): %w", mailerr.ErrServerDown)
	// ErrInjected marks a request discarded by an injected transient drop
	// fault. Unlike ErrServerDown/ErrUnreachable it does NOT mean the server
	// is unavailable: callers must retry the same server, not fail over past
	// it, or the GetMail walk would stop short of the spilled mail.
	ErrInjected = errors.New("livenet: injected message drop")
)

// maxTransientRetries bounds immediate same-server retries of injected
// transient failures before a deposit is handed to the spool.
const maxTransientRetries = 4

// Directory maps users to their ordered authority-server lists. It is safe
// for concurrent use.
type Directory struct {
	mu    sync.RWMutex
	lists map[names.Name][]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lists: make(map[names.Name][]string)}
}

// SetAuthority records the ordered authority list for a user.
func (d *Directory) SetAuthority(user names.Name, servers []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(servers) == 0 {
		delete(d.lists, user)
		return
	}
	d.lists[user] = append([]string(nil), servers...)
}

// Authority returns the user's ordered authority list.
func (d *Directory) Authority(user names.Name) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.lists[user]...)
}

// request is a unit of work executed by a server's loop goroutine.
type request struct {
	fn   func(*serverState)
	done chan struct{}
}

// serverState is owned exclusively by the server goroutine. The sharded
// store is the same structure the simulation servers use; here its striping
// additionally lets read-only totals (StoredBytes) be computed without a
// trip through the request loop.
type serverState struct {
	store *mailstore.Store
}

// Server is one mail server: a goroutine owning mailboxes, reachable through
// a request channel. Crash/Recover toggle availability without losing the
// mailbox contents (memory survives, as a wedged-but-alive process).
// Kill/Restart model a real process death: the goroutine exits, the store is
// closed, and Restart reopens it from disk — on a durable cluster (DataDir
// set) the mailboxes come back, on a memory cluster they are gone.
type Server struct {
	name    string
	stats   *obs.Registry // cluster-wide instrument registry (concurrency-safe)
	mkStore func() (*mailstore.Store, error)

	// runMu guards the run generation: the channels the goroutine serves,
	// the store it owns, and whether it has been stopped. Kill/Restart swap
	// a whole generation under the write lock; call() snapshots one under
	// the read lock.
	runMu   sync.RWMutex
	reqs    chan request
	quit    chan struct{}
	done    chan struct{}
	store   *mailstore.Store
	stopped bool
	// walBase accumulates the WAL counters of stores closed by Kill, so
	// DurabilityStats stays cumulative across kill-restart cycles instead of
	// resetting with each fresh Open. Guarded by runMu.
	walBase mailstore.WALStats

	killed    atomic.Bool
	up        atomic.Bool
	lastStart atomic.Int64 // unix nanos of the last start/recovery

	// Fault-injection state (internal/faults): link reachability, added
	// request latency, and transient drop probability in per-mille.
	unreach   atomic.Bool
	latencyNs atomic.Int64
	dropMilli atomic.Int64

	// Per-server named instruments ("<name>.deposits", "<name>.checks",
	// "<name>.qdepth") in the cluster registry, so the status snapshot
	// carries them per entity. qdepth tracks mail buffered awaiting pickup
	// (fresh deposits minus drained retrievals) — the signal JSQ(d)
	// placement samples.
	deposits *obs.Counter
	checks   *obs.Counter
	qdepth   *obs.Gauge
}

// Name returns the server's identifier.
func (s *Server) Name() string { return s.name }

// Up reports whether the server currently accepts requests.
func (s *Server) Up() bool { return s.up.Load() }

// LastStart reports when the server last started or recovered — the
// LastStartTime[server] variable of §3.1.2c.
func (s *Server) LastStart() time.Time { return time.Unix(0, s.lastStart.Load()) }

// Deposits reports how many messages this server has buffered in total.
func (s *Server) Deposits() int64 { return s.deposits.Value() }

// Checks reports how many CheckMail polls this server has served.
func (s *Server) Checks() int64 { return s.checks.Value() }

// Crash makes the server reject requests. Buffered mail survives.
func (s *Server) Crash() { s.up.Store(false) }

// Recover brings the server back and stamps a fresh LastStartTime.
func (s *Server) Recover() {
	// Stamp before flipping up so a concurrent GetMail that sees the
	// server up also sees a LastStartTime no older than the recovery.
	s.lastStart.Store(time.Now().UnixNano())
	s.up.Store(true)
}

// SetReachable toggles the server's network link. An unreachable server is
// running (Up stays true) but every request fails with ErrUnreachable.
// Restoring reachability stamps a fresh LastStartTime: §3.1.2c counts
// "being disconnected from the network" as unavailability, so reconnection
// must look like a recovery to the GetMail walk — deposits that failed over
// past the partitioned server are only found because of this stamp.
func (s *Server) SetReachable(ok bool) {
	if ok {
		s.lastStart.Store(time.Now().UnixNano())
		s.unreach.Store(false)
		return
	}
	s.unreach.Store(true)
}

// Reachable reports whether the server's network link is up.
func (s *Server) Reachable() bool { return !s.unreach.Load() }

// SetLatency makes every request to this server take at least d longer —
// an injected slow-link fault. Zero clears it.
func (s *Server) SetLatency(d time.Duration) { s.latencyNs.Store(int64(d)) }

// SetDropProb makes requests to this server fail with ErrInjected with
// probability p before they execute — an injected lossy-link fault. The
// request is never half-applied: a dropped CheckMail has not drained the
// mailbox. p is clamped to [0, 1]; zero clears the fault.
func (s *Server) SetDropProb(p float64) {
	switch {
	case p <= 0:
		s.dropMilli.Store(0)
	case p >= 1:
		s.dropMilli.Store(1000)
	default:
		s.dropMilli.Store(int64(p * 1000))
	}
}

// call runs fn on the server goroutine and waits for completion. Injected
// faults gate the call up front, so a failed call has not executed at all.
func (s *Server) call(fn func(*serverState)) error {
	if d := time.Duration(s.latencyNs.Load()); d > 0 {
		time.Sleep(d) // the caller's goroutine stalls, not the server loop
	}
	if !s.Up() {
		return fmt.Errorf("%w: %s", ErrServerDown, s.name)
	}
	if !s.Reachable() {
		return fmt.Errorf("%w: %s", ErrUnreachable, s.name)
	}
	if p := s.dropMilli.Load(); p > 0 && rand.Int63n(1000) < p {
		if s.stats != nil {
			s.stats.Inc("injected_drops")
		}
		return fmt.Errorf("%w: %s", ErrInjected, s.name)
	}
	s.runMu.RLock()
	reqs, quit := s.reqs, s.quit
	s.runMu.RUnlock()
	req := request{fn: fn, done: make(chan struct{})}
	select {
	case reqs <- req:
	case <-quit:
		return s.downErr(quit)
	}
	select {
	case <-req.done:
		return nil
	case <-quit:
		return s.downErr(quit)
	}
}

// downErr maps a closed run generation to the right caller-visible error: a
// killed server is down (callers fail over, exactly as for Crash), a closed
// cluster is terminal. gen is the quit channel the caller snapshotted; if a
// Kill and a complete Restart both finished before the caller observed the
// close, killed has already flipped back to false, but the snapshotted
// channel no longer being the current generation's still identifies a
// generation that died — report retryable ErrServerDown, not terminal
// ErrClosed.
func (s *Server) downErr(gen chan struct{}) error {
	if s.killed.Load() {
		return fmt.Errorf("%w: %s (killed)", ErrServerDown, s.name)
	}
	s.runMu.RLock()
	superseded := s.quit != gen
	s.runMu.RUnlock()
	if superseded {
		return fmt.Errorf("%w: %s (killed)", ErrServerDown, s.name)
	}
	return ErrClosed
}

// Deposit buffers a message for a recipient. It fails when the server is
// down, letting the caller fail over to the next authority server.
func (s *Server) Deposit(msg mail.Message, rcpt names.Name) error {
	err := s.call(func(st *serverState) {
		if st.store.Deposit(rcpt, msg, 0) {
			s.deposits.Inc()
			s.qdepth.Add(1)
		}
	})
	return err
}

// BatchDeposit is one recipient copy inside a DepositBatch call.
type BatchDeposit struct {
	Msg  mail.Message
	Rcpt names.Name
}

// DepositBatch buffers several recipient copies in one server round-trip:
// one availability/fault gate and one request on the server loop instead of
// one per copy — the livenet face of the relay-batching fabric, used by the
// spool worker to drain coalesced redeliveries. Per-mailbox duplicate
// suppression applies item by item, exactly as with individual Deposits.
func (s *Server) DepositBatch(items []BatchDeposit) error {
	err := s.call(func(st *serverState) {
		for _, it := range items {
			if st.store.Deposit(it.Rcpt, it.Msg, 0) {
				s.deposits.Inc()
				s.qdepth.Add(1)
			}
		}
	})
	return err
}

// CheckMail drains the user's mailbox ("get mail from server").
func (s *Server) CheckMail(user names.Name) ([]mail.Stored, error) {
	var out []mail.Stored
	err := s.call(func(st *serverState) {
		s.checks.Inc()
		out = st.store.Drain(user)
		if len(out) > 0 {
			s.qdepth.Add(int64(-len(out)))
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MailboxLen reports buffered messages for a user.
func (s *Server) MailboxLen(user names.Name) (int, error) {
	n := 0
	err := s.call(func(st *serverState) {
		n = st.store.Len(user)
	})
	return n, err
}

// StoredBytes reports the total buffered content bytes on this server — an
// O(shards) counter sum over the sharded store, served through the request
// loop like every other state access.
func (s *Server) StoredBytes() (int64, error) {
	var n int64
	err := s.call(func(st *serverState) {
		n = st.store.TotalBytes()
	})
	return n, err
}

// Search returns the users on this server whose buffered mail contains every
// term, in sorted order — the per-store leg of a wire `query`. It requires
// the cluster's term index (ClusterConfig.TermIndex); without it the store
// returns nothing, which opQuery surfaces as an explicit refusal instead.
func (s *Server) Search(terms []string) ([]names.Name, error) {
	var out []names.Name
	err := s.call(func(st *serverState) {
		out = st.store.SearchTerms(terms)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sketch returns the store's term sketch and its staleness generation, nil
// when the term index is off. The wire query planner probes it to skip
// servers that provably hold no match without paying a Search round-trip.
func (s *Server) Sketch() (*sketch.Filter, uint64, error) {
	var f *sketch.Filter
	var gen uint64
	err := s.call(func(st *serverState) {
		f, gen = st.store.Sketch()
	})
	if err != nil {
		return nil, 0, err
	}
	return f, gen, nil
}

// loop serves one run generation. The channels are passed explicitly — not
// read from the struct — so a Restart that swaps in a new generation cannot
// race with an old goroutine still draining its own.
func (s *Server) loop(st *serverState, reqs chan request, quit, done chan struct{}) {
	defer close(done)
	for {
		select {
		case req := <-reqs:
			req.fn(st)
			close(req.done)
		case <-quit:
			return
		}
	}
}

// halt stops the current run generation and waits for its goroutine to
// exit. Idempotent per generation.
func (s *Server) halt() {
	s.runMu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.quit)
	}
	done := s.done
	s.runMu.Unlock()
	<-done
}

// closeStore detaches and closes the server's store (final WAL sync),
// folding its WAL counters into walBase first so cumulative durability stats
// survive the store's replacement.
func (s *Server) closeStore() error {
	s.runMu.Lock()
	st := s.store
	s.store = nil
	if st != nil {
		if ws, ok := st.WALStats(); ok {
			s.walBase.Add(ws)
		}
	}
	s.runMu.Unlock()
	if st != nil {
		return st.Close()
	}
	return nil
}

// Kill tears the server down like a process death: requests fail over, the
// goroutine exits, and the store is closed. Unlike Crash, nothing is kept in
// memory — Restart recovers only what the durable store persisted (nothing,
// on a memory cluster).
func (s *Server) Kill() error {
	if !s.killed.CompareAndSwap(false, true) {
		return nil
	}
	s.stats.Inc("kills") // counted here, not in KillServer: fault injectors call Kill directly
	s.up.Store(false)
	s.halt()
	return s.closeStore()
}

// Restart brings a killed server back from its store — recovered from disk
// on a durable cluster, empty on a memory one — and stamps the recovered
// LastStartTime before going up, so a concurrent GetMail that sees the
// server up also sees a start stamp no older than the restart (§3.1.2c).
func (s *Server) Restart() error {
	if !s.killed.Load() {
		return nil // idempotent: overlapping fault windows replay cleanly
	}
	st, err := s.mkStore()
	if err != nil {
		return fmt.Errorf("livenet: restart %s: %w", s.name, err)
	}
	s.runMu.Lock()
	if !s.stopped {
		s.runMu.Unlock()
		st.Close()
		return fmt.Errorf("livenet: server %s already running", s.name)
	}
	s.store = st
	s.reqs = make(chan request)
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	s.stopped = false
	go s.loop(&serverState{store: st}, s.reqs, s.quit, s.done)
	s.runMu.Unlock()
	ts := st.LastStartTime() // zero on memory stores
	if ts.IsZero() {
		ts = time.Now()
	}
	s.lastStart.Store(ts.UnixNano())
	s.killed.Store(false)
	s.up.Store(true)
	s.stats.Inc("restarts")
	return nil
}

// ClusterConfig configures the cluster's mailbox stores. The zero value is
// the historical behavior: memory-only stores with the default shard count.
type ClusterConfig struct {
	// StoreShards is the per-server mailstore shard count (<= 0 selects
	// mailstore.DefaultShards).
	StoreShards int
	// DataDir, when set, makes every server's store durable: each server
	// logs to DataDir/<name> and Kill/Restart recovers from it.
	DataDir string
	// Fsync is the WAL fsync policy for durable stores.
	Fsync mailstore.FsyncMode
	// Placement, when set, is the cluster's placement policy: registrations
	// that arrive without an explicit server list (wire "register") are
	// placed by consulting it through PlaceUser. Nil keeps the historical
	// default (every server, registration order).
	Placement placement.Policy
	// PlacementName maps a policy slot to a server name (default
	// placement.DefaultLabel, "S<slot>" — mailbench/maild's convention).
	PlacementName func(slot int) string
	// TermIndex turns on every store's per-shard term index and sketch
	// (mailstore.EnableTermIndex), the structures behind the wire `query`
	// verb. Off by default: index maintenance rides the deposit/drain hot
	// path, and clusters that never serve queries should not pay for it.
	TermIndex bool
}

// Cluster is a set of live servers sharing a directory.
type Cluster struct {
	cfg     ClusterConfig
	dir     *Directory
	mu      sync.RWMutex
	servers map[string]*Server
	closed  atomic.Bool
	nextSeq atomic.Uint64
	stats   *obs.Registry
	trace   *obs.Tracer

	spoolMu sync.Mutex
	spool   *spool
}

// NewCluster returns an empty memory-only cluster with its directory.
// Lifecycle tracing is always on: every submitted message is stamped through
// the pipeline on the wall clock, feeding the per-stage latency histograms
// in Obs().
func NewCluster() *Cluster { return NewClusterWith(ClusterConfig{}) }

// NewClusterWith is NewCluster with explicit store configuration — shard
// count and, optionally, a data directory that makes every server durable.
func NewClusterWith(cfg ClusterConfig) *Cluster {
	reg := obs.NewRegistry()
	return &Cluster{
		cfg:     cfg,
		dir:     NewDirectory(),
		servers: make(map[string]*Server),
		stats:   reg,
		trace:   obs.NewTracer(obs.WallClock, reg),
	}
}

// Durable reports whether the cluster's stores persist to disk.
func (c *Cluster) Durable() bool { return c.cfg.DataDir != "" }

// newStore builds one server's mailbox store per the cluster config.
func (c *Cluster) newStore(name string) (*mailstore.Store, error) {
	var st *mailstore.Store
	var err error
	if c.cfg.DataDir == "" {
		st = mailstore.New(c.cfg.StoreShards)
	} else {
		st, err = mailstore.OpenOptions(mailstore.Options{
			Dir:    filepath.Join(c.cfg.DataDir, name),
			Shards: c.cfg.StoreShards,
			Fsync:  c.cfg.Fsync,
		})
		if err != nil {
			return nil, err
		}
	}
	if c.cfg.TermIndex {
		st.EnableTermIndex()
	}
	return st, nil
}

// Directory returns the cluster's shared directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// Obs returns the cluster's instrument registry: robustness counters,
// per-server "<name>.deposits"/"<name>.checks", and the tracer-fed
// "lat_<stage>"/"lat_e2e" histograms.
func (c *Cluster) Obs() *obs.Registry { return c.stats }

// Tracer returns the cluster's message-lifecycle tracer.
func (c *Cluster) Tracer() *obs.Tracer { return c.trace }

// Metrics returns a flat snapshot of the cluster's counters, including the
// robustness set ("submit_spooled", "spool_redelivered", "spool_retries",
// "spool_depth", "deposit_failovers", "deposit_retries", "injected_drops")
// and the per-server "<name>.deposits"/"<name>.checks" counters.
func (c *Cluster) Metrics() map[string]int64 {
	snap := c.stats.Counters()
	snap["spool_depth"] = int64(c.SpoolDepth())
	return snap
}

// Snapshot returns the structured, versioned observability snapshot of the
// cluster — counters, gauges, and latency histograms — refreshing the
// "spool_depth" gauge first. This is what the wire "status" op ships.
func (c *Cluster) Snapshot() obs.Snapshot {
	c.stats.Gauge("spool_depth").Set(int64(c.SpoolDepth()))
	return c.stats.Snapshot()
}

// AddServer starts a server goroutine. Names must be unique. On a durable
// cluster the server's store is recovered from DataDir/<name> (creating it
// on first start) and the recovered LastStartTime becomes the server's
// §3.1.2c start stamp.
func (c *Cluster) AddServer(name string) (*Server, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.servers[name]; dup {
		return nil, fmt.Errorf("livenet: server %q already exists", name)
	}
	st, err := c.newStore(name)
	if err != nil {
		return nil, err
	}
	// A recovered store's suppression memory spans every ID this cluster ever
	// assigned (Submit mints Node 1). Resume the allocator above that floor:
	// a fresh process otherwise restarts at seq 1 and its first submits are
	// silently swallowed as duplicates of already-delivered mail.
	if floor := st.MaxSeenSeq(1); floor > 0 {
		for {
			cur := c.nextSeq.Load()
			if cur >= floor || c.nextSeq.CompareAndSwap(cur, floor) {
				break
			}
		}
	}
	s := &Server{
		name:     name,
		stats:    c.stats,
		mkStore:  func() (*mailstore.Store, error) { return c.newStore(name) },
		deposits: c.stats.Counter(name + ".deposits"),
		checks:   c.stats.Counter(name + ".checks"),
		qdepth:   c.stats.Gauge(name + ".qdepth"),
		reqs:     make(chan request),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		store:    st,
	}
	ts := st.LastStartTime()
	if ts.IsZero() {
		ts = time.Now()
	}
	s.lastStart.Store(ts.UnixNano())
	s.up.Store(true)
	c.servers[name] = s
	go s.loop(&serverState{store: st}, s.reqs, s.quit, s.done)
	return s, nil
}

// PlaceUser consults the cluster's placement policy for a user's authority
// list (nil without a policy, or when the policy places onto no known
// server). The user's name is hashed to a stable index, so repeated
// registrations of the same user are placed consistently by index-driven
// policies while load-driven ones (JSQ) stay free to pick per call.
func (c *Cluster) PlaceUser(user names.Name) []string {
	c.mu.RLock()
	pol, label := c.cfg.Placement, c.cfg.PlacementName
	c.mu.RUnlock()
	if pol == nil {
		return nil
	}
	if label == nil {
		label = placement.DefaultLabel
	}
	h := fnv.New32a()
	h.Write([]byte(user.String()))
	idx := int(h.Sum32() & 0x7fffffff)
	var out []string
	for _, slot := range pol.Place(placement.User{Index: idx, Host: -1}) {
		name := label(slot)
		if _, ok := c.Server(name); ok {
			out = append(out, name)
		}
	}
	return out
}

// SetPlacement installs (or replaces) the cluster's placement policy after
// construction — the path a policy that samples the cluster's own registry
// (JSQ) must take, since the registry does not exist until NewClusterWith
// returns. A nil name keeps the configured slot-to-server mapping.
func (c *Cluster) SetPlacement(pol placement.Policy, name func(slot int) string) {
	c.mu.Lock()
	c.cfg.Placement = pol
	if name != nil {
		c.cfg.PlacementName = name
	}
	c.mu.Unlock()
}

// KillServer kills a server by name (see Server.Kill).
func (c *Cluster) KillServer(name string) error {
	s, ok := c.Server(name)
	if !ok {
		return fmt.Errorf("livenet: no server %q", name)
	}
	return s.Kill()
}

// RestartServer restarts a killed server from its store (see
// Server.Restart).
func (c *Cluster) RestartServer(name string) error {
	s, ok := c.Server(name)
	if !ok {
		return fmt.Errorf("livenet: no server %q", name)
	}
	return s.Restart()
}

// DurabilityStats sums the WAL write-path counters across every server,
// including the accumulated totals of stores closed by earlier kill-restart
// cycles — the numbers are cumulative write-path work, not just the current
// stores'; ok is false on memory-only clusters.
func (c *Cluster) DurabilityStats() (mailstore.WALStats, bool) {
	if !c.Durable() {
		return mailstore.WALStats{}, false
	}
	var sum mailstore.WALStats
	c.mu.RLock()
	servers := make([]*Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.RUnlock()
	for _, s := range servers {
		s.runMu.RLock()
		st := s.store
		base := s.walBase
		s.runMu.RUnlock()
		sum.Add(base)
		if st == nil {
			continue
		}
		if ws, ok := st.WALStats(); ok {
			sum.Add(ws)
		}
	}
	return sum, true
}

// Server returns a server by name.
func (c *Cluster) Server(name string) (*Server, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.servers[name]
	return s, ok
}

// ServerNames returns every server's name, sorted.
func (c *Cluster) ServerNames() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.servers))
	for name := range c.servers {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Close stops the spool worker and every server goroutine, waiting for them
// to exit.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.spoolMu.Lock()
	sp := c.spool
	c.spoolMu.Unlock()
	if sp != nil {
		sp.stop()
	}
	c.mu.RLock()
	servers := make([]*Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.RUnlock()
	for _, s := range servers {
		s.halt()
		s.closeStore()
	}
}

// Submit accepts a message and deposits one copy per recipient at the first
// available authority server, failing over down the list (§3.1.2c: "mail
// will be deposited in the first active server from the list"). All
// recipients are attempted even when some fail; the assigned message ID is
// returned together with the per-recipient errors joined via errors.Join.
//
// With the spool enabled (EnableSpool), a recipient copy that cannot be
// deposited anywhere right now is buffered for background redelivery instead
// of failing — Submit then only errors for recipients with no authority list
// at all, and an accepted message is never lost (§3.1.2b buffering, claim
// E2).
func (c *Cluster) Submit(from names.Name, to []names.Name, subject, body string) (mail.MessageID, error) {
	return c.SubmitContext(context.Background(), from, to, subject, body)
}

// SubmitContext is Submit honoring a context: a deadline or cancellation
// stops the per-recipient delivery loop, and the unattempted recipients are
// reported as mailerr.ErrTimeout failures. Recipients already deposited (or
// spooled) before the expiry stay committed — a context error is a partial
// result, exactly like a per-recipient delivery error.
func (c *Cluster) SubmitContext(ctx context.Context, from names.Name, to []names.Name, subject, body string) (mail.MessageID, error) {
	if c.closed.Load() {
		return mail.MessageID{}, ErrClosed
	}
	if err := ctxErr(ctx); err != nil {
		return mail.MessageID{}, err
	}
	msg := mail.Message{
		ID:      mail.MessageID{Node: 1, Seq: c.nextSeq.Add(1)},
		From:    from,
		To:      append([]names.Name(nil), to...),
		Subject: subject,
		Body:    body,
	}
	c.trace.Stamp(msg.ID.String(), obs.StageSubmit, "cluster")
	var errs []error
	for _, rcpt := range msg.To {
		if err := ctxErr(ctx); err != nil {
			errs = append(errs, fmt.Errorf("deliver to %v: %w", rcpt, err))
			continue
		}
		err := c.depositFailover(msg, rcpt)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrNoAuthority) {
			c.spoolMu.Lock()
			sp := c.spool
			c.spoolMu.Unlock()
			if sp != nil {
				sp.add(msg, rcpt)
				c.stats.Inc("submit_spooled")
				continue // accepted: the spool guarantees redelivery
			}
		}
		errs = append(errs, fmt.Errorf("deliver to %v: %w", rcpt, err))
	}
	return msg.ID, errors.Join(errs...)
}

// ctxErr maps a context cancellation or deadline into the shared timeout
// taxonomy (nil if the context is still live).
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("livenet: %w: %v", mailerr.ErrTimeout, err)
	}
	return nil
}

// firstAvailable returns the name of the recipient's first up-and-reachable
// authority server — the spool's batching key: due entries that share it can
// be drained with one DepositBatch round.
func (c *Cluster) firstAvailable(rcpt names.Name) (string, bool) {
	for _, name := range c.dir.Authority(rcpt) {
		if s, ok := c.Server(name); ok && s.Up() && s.Reachable() {
			return name, true
		}
	}
	return "", false
}

// depositFailover deposits one recipient copy following §3.1.2c: walk the
// authority list, skipping servers that are down or unreachable (their
// recovery stamps a fresh LastStartTime, which is what lets GetMail find
// mail that failed over past them), and deposit at the first available
// server.
//
// Transient faults (ErrInjected) are retried a few times against the same
// server and then reported to the caller — they must never cause failover,
// because skipping a live, stable server would strand the copy beyond the
// point where the recipient's GetMail walk stops.
func (c *Cluster) depositFailover(msg mail.Message, rcpt names.Name) error {
	list := c.dir.Authority(rcpt)
	if len(list) == 0 {
		return fmt.Errorf("%w: %v", ErrNoAuthority, rcpt)
	}
	c.trace.Stamp(msg.ID.String(), obs.StageResolve, "directory")
	var lastErr error
	for i, name := range list {
		s, ok := c.Server(name)
		if !ok {
			continue
		}
		err := s.Deposit(msg, rcpt)
		for r := 0; errors.Is(err, ErrInjected) && r < maxTransientRetries; r++ {
			c.stats.Inc("deposit_retries")
			err = s.Deposit(msg, rcpt)
		}
		if err == nil {
			if i > 0 {
				c.stats.Inc("deposit_failovers")
			}
			c.trace.Stamp(msg.ID.String(), obs.StageDeposit, name)
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrServerDown) || errors.Is(err, ErrUnreachable) {
			continue // unavailability is stamped at recovery; failover is safe
		}
		return err // transient persisted: retry later, never skip a live server
	}
	if lastErr == nil {
		lastErr = ErrAllDown
	}
	return fmt.Errorf("%w (%v)", ErrAllDown, lastErr)
}

// Agent is a live user agent implementing the paper's GetMail procedure on
// wall-clock time. Agents are not safe for concurrent use by multiple
// goroutines (a user interface is a single actor); distinct agents may run
// concurrently.
type Agent struct {
	user    names.Name
	cluster *Cluster

	lastChecking time.Time
	prevUnavail  map[string]bool
	seen         map[mail.MessageID]bool
	inbox        []mail.Stored
	polls        int
	retrievals   int
}

// NewAgent creates an agent for a user registered in the directory.
func (c *Cluster) NewAgent(user names.Name) (*Agent, error) {
	if len(c.dir.Authority(user)) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoAuthority, user)
	}
	return &Agent{
		user:        user,
		cluster:     c,
		prevUnavail: make(map[string]bool),
		seen:        make(map[mail.MessageID]bool),
	}, nil
}

// User returns the agent's name.
func (a *Agent) User() names.Name { return a.user }

// Inbox returns the messages retrieved so far.
func (a *Agent) Inbox() []mail.Stored { return append([]mail.Stored(nil), a.inbox...) }

// Polls reports CheckMail calls issued.
func (a *Agent) Polls() int { return a.polls }

// Retrievals reports GetMail invocations.
func (a *Agent) Retrievals() int { return a.retrievals }

// Send submits a message through the cluster.
func (a *Agent) Send(to []names.Name, subject, body string) (mail.MessageID, error) {
	return a.cluster.Submit(a.user, to, subject, body)
}

// GetMail is the §3.1.2c retrieval algorithm on wall-clock time: walk the
// authority list; stop at the first live server that has been up since
// before the last check; collect from servers previously seen unavailable.
// A server whose poll fails — down, unreachable, or an injected drop — joins
// PreviouslyUnavailableServers and is retried on later retrievals; its
// buffered mail is untouched by the failed poll.
func (a *Agent) GetMail() []mail.Stored {
	a.retrievals++
	before := len(a.inbox)
	current := time.Now()
	finished := false
	for _, name := range a.cluster.dir.Authority(a.user) {
		if finished {
			break
		}
		s, ok := a.cluster.Server(name)
		if !ok {
			continue
		}
		if s.Up() {
			if err := a.poll(s); err != nil {
				a.prevUnavail[name] = true
				continue
			}
			delete(a.prevUnavail, name)
			if a.lastChecking.After(s.LastStart()) {
				finished = true
			}
		} else {
			a.prevUnavail[name] = true
		}
	}
	for _, name := range a.cluster.dir.Authority(a.user) {
		if !a.prevUnavail[name] {
			continue
		}
		if s, ok := a.cluster.Server(name); ok && s.Up() {
			if err := a.poll(s); err != nil {
				continue // stays previously-unavailable for the next retrieval
			}
			delete(a.prevUnavail, name)
		}
	}
	a.lastChecking = current
	return append([]mail.Stored(nil), a.inbox[before:]...)
}

// PreviouslyUnavailable returns the agent's PreviouslyUnavailableServers
// list (§3.1.2c), in authority-list order.
func (a *Agent) PreviouslyUnavailable() []string {
	var out []string
	for _, name := range a.cluster.dir.Authority(a.user) {
		if a.prevUnavail[name] {
			out = append(out, name)
		}
	}
	return out
}

// LastCheckingTime returns the agent's LastCheckingTime[user] variable.
func (a *Agent) LastCheckingTime() time.Time { return a.lastChecking }

func (a *Agent) poll(s *Server) error {
	a.polls++
	msgs, err := s.CheckMail(a.user)
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if a.seen[m.ID] {
			continue
		}
		a.seen[m.ID] = true
		a.inbox = append(a.inbox, m)
		a.cluster.trace.Stamp(m.ID.String(), obs.StageRetrieve, s.name)
	}
	return nil
}
