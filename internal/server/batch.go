package server

import (
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/sim"
)

// Relay batching: with Config.BatchSize > 1, outgoing transfers are not sent
// one envelope each. enqueue stages them per destination server, and a batch
// flushes as a single TransferBatch when it reaches BatchSize items (size
// watermark) or when FlushInterval elapses since its first item (time
// watermark), whichever comes first.
//
// The reliability ledger does not change: every staged item remains a
// pendingTransfer in s.pending until the batch's TransferBatchAck settles
// it. Failure handling degrades to the proven single-transfer protocol —
// a batch that times out, or individual items a receiver reports failed,
// are re-dispatched one by one through dispatch(), whose per-item retry
// timer and candidate failover then take over ("retry splitting").
//
// Counters: transfers_out stays per message copy in both modes, so delivery
// accounting is mode-independent; relay_envelopes counts physical envelopes
// carrying transfers (one per single Transfer, one per TransferBatch) and is
// the metric the batch-size sweeps report.

// stagedBatch is a per-destination batch being filled.
type stagedBatch struct {
	toks  []uint64
	timer *sim.Event // FlushInterval watermark
}

// inflightBatch is a flushed batch awaiting its TransferBatchAck.
type inflightBatch struct {
	toks  []uint64
	timer *sim.Event // retry-timeout: on expiry the batch splits
}

// stage adds a pending transfer to the batch of its picked destination,
// flushing on the size watermark. Staging counts as the transfer's first
// attempt, exactly like an immediate dispatch would.
func (s *Server) stage(tok uint64) {
	p, ok := s.pending[tok]
	if !ok || !s.Up() {
		return
	}
	target := s.pickCandidate(p)
	p.attempt++
	if p.attempt > 1 {
		s.stats.Inc("retries")
	}
	s.addToBatch(tok, target)
}

// addToBatch appends a pending transfer to its destination's staged batch,
// creating the batch (and arming its flush timer) on first use.
func (s *Server) addToBatch(tok uint64, target graph.NodeID) {
	b := s.staged[target]
	if b == nil {
		b = &stagedBatch{}
		s.staged[target] = b
		b.timer = s.net.Scheduler().After(s.flushEvery, func() {
			s.flushStaged(target)
		})
	}
	b.toks = append(b.toks, tok)
	if len(b.toks) >= s.batchSize {
		s.flushStaged(target)
	}
}

// firstActive returns the first up candidate in list order — the §3.1.2c
// deposit target as of right now — or fallback when none look up.
func (s *Server) firstActive(p *pendingTransfer, fallback graph.NodeID) graph.NodeID {
	for _, cand := range p.candidates {
		if s.net.IsUp(cand) {
			return cand
		}
	}
	return fallback
}

// flushStaged ships the destination's staged batch as one TransferBatch
// envelope and arms the batch-level retry timer.
func (s *Server) flushStaged(target graph.NodeID) {
	b, ok := s.staged[target]
	if !ok {
		return
	}
	delete(s.staged, target)
	if b.timer != nil {
		s.net.Scheduler().Cancel(b.timer)
	}
	if !s.Up() {
		return // crash raced the flush; items stay pending for recovery
	}
	items := make([]Transfer, 0, len(b.toks))
	live := make([]uint64, 0, len(b.toks))
	for _, tok := range b.toks {
		p, still := s.pending[tok]
		if !still {
			continue
		}
		// Re-validate the destination at send time: the pick was made when
		// the item was staged, and availability may have changed while it
		// waited. Shipping a deposit to a secondary after the primary
		// recovered would place mail where the recipient's §3.1.2c GetMail
		// walk has no reason to look — a silent loss. A single transfer
		// cannot hit this (it picks and sends in the same instant), so the
		// batch path must close the window itself: redirect the item into
		// its fresh target's batch instead.
		if fresh := s.firstActive(p, target); fresh != target {
			s.stats.Inc("batch_redirects")
			s.addToBatch(tok, fresh)
			continue
		}
		items = append(items, Transfer{
			Kind: p.kind, Msg: p.msg, Recipient: p.recipient,
			Origin: s.id, Token: tok, Attempt: p.attempt,
		})
		live = append(live, tok)
	}
	if len(items) == 0 {
		return
	}
	s.nextBatch++
	btok := s.nextBatch
	s.stats.Inc("relay_envelopes")
	s.stats.Add("transfers_out", int64(len(items)))
	s.stats.Add("batched_transfers", int64(len(items)))
	fb := &inflightBatch{toks: live}
	s.inflight[btok] = fb
	_ = s.net.Send(s.id, target, TransferBatch{Origin: s.id, Token: btok, Items: items})
	fb.timer = s.net.Scheduler().After(s.retryTimeout, func() {
		s.splitBatch(btok)
	})
}

// splitBatch handles a batch whose ack never arrived: dissolve it and hand
// every still-pending item to the single-transfer retry machinery.
func (s *Server) splitBatch(btok uint64) {
	fb, ok := s.inflight[btok]
	if !ok || !s.Up() {
		return
	}
	delete(s.inflight, btok)
	s.stats.Inc("batch_splits")
	for _, tok := range fb.toks {
		if _, still := s.pending[tok]; still {
			s.dispatch(tok)
		}
	}
}

// handleTransferBatch processes a received batch item by item — the same
// deposit/forward logic as a single Transfer — and acks the batch as a unit,
// reporting the indices it could not process so the origin can retry exactly
// those individually.
func (s *Server) handleTransferBatch(tb TransferBatch) {
	var failed []int
	for i, tr := range tb.Items {
		switch tr.Kind {
		case TransferDeposit:
			s.depositLocal(tr.Msg, tr.Recipient)
		case TransferForward:
			s.stats.Inc("forwards_in")
			if tr.Recipient.Region != s.region {
				// Mis-routed (e.g. stale region map): route onward.
				s.Route(tr.Msg, tr.Recipient)
				continue
			}
			s.deliverLocal(tr.Msg, tr.Recipient)
		default:
			failed = append(failed, i)
		}
	}
	_ = s.net.Send(s.id, tb.Origin, TransferBatchAck{Token: tb.Token, Failed: failed})
}

// handleBatchAck settles a batch: acked items leave the pending ledger,
// failed items are re-dispatched individually.
func (s *Server) handleBatchAck(ack TransferBatchAck) {
	fb, ok := s.inflight[ack.Token]
	if !ok {
		return
	}
	if fb.timer != nil {
		s.net.Scheduler().Cancel(fb.timer)
	}
	delete(s.inflight, ack.Token)
	failedSet := make(map[int]bool, len(ack.Failed))
	for _, i := range ack.Failed {
		failedSet[i] = true
	}
	for i, tok := range fb.toks {
		if failedSet[i] {
			if _, still := s.pending[tok]; still {
				s.dispatch(tok)
			}
			continue
		}
		if p, still := s.pending[tok]; still {
			if p.timer != nil {
				s.net.Scheduler().Cancel(p.timer)
			}
			delete(s.pending, tok)
		}
	}
}
