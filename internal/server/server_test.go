package server

import (
	"errors"
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// Node IDs for the two-region test world.
const (
	h1 graph.NodeID = 1   // host in R1
	h2 graph.NodeID = 2   // host in R2
	s1 graph.NodeID = 101 // server in R1
	s2 graph.NodeID = 102 // server in R1
	s3 graph.NodeID = 201 // server in R2
)

var (
	alice = names.MustParse("R1.h1.alice")
	carol = names.MustParse("R1.h1.carol")
	bob   = names.MustParse("R2.h2.bob")
)

type hostRec struct {
	acks      []SubmitAck
	notifies  []Notify
	batchAcks []TransferBatchAck
}

func (h *hostRec) Receive(env netsim.Envelope) {
	switch p := env.Payload.(type) {
	case SubmitAck:
		h.acks = append(h.acks, p)
	case Notify:
		h.notifies = append(h.notifies, p)
	case TransferBatchAck:
		h.batchAcks = append(h.batchAcks, p)
	}
}

type world struct {
	sched   *sim.Scheduler
	net     *netsim.Network
	servers map[graph.NodeID]*Server
	hosts   map[graph.NodeID]*hostRec
	dirR1   *Directory
	dirR2   *Directory
}

// newWorld builds: R1 = {H1, S1, S2}, R2 = {H2, S3};
// H1-S1(1), S1-S2(1), S2-S3(2), H2-S3(1).
// alice, carol: authority [S1, S2]; bob: authority [S3].
// Optional mutators adjust each server's Config before construction.
func newWorld(t *testing.T, retention mail.Retention, mutate ...func(*Config)) *world {
	t.Helper()
	g := graph.New()
	g.MustAddNode(graph.Node{ID: h1, Label: "H1", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: h2, Label: "H2", Region: "R2", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s1, Label: "S1", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: s2, Label: "S2", Region: "R1", Kind: graph.KindServer})
	g.MustAddNode(graph.Node{ID: s3, Label: "S3", Region: "R2", Kind: graph.KindServer})
	g.MustAddEdge(h1, s1, 1)
	g.MustAddEdge(s1, s2, 1)
	g.MustAddEdge(s2, s3, 2)
	g.MustAddEdge(h2, s3, 1)

	sched := sim.New(7)
	net := netsim.New(sched, g)
	w := &world{
		sched:   sched,
		net:     net,
		servers: make(map[graph.NodeID]*Server),
		hosts:   make(map[graph.NodeID]*hostRec),
		dirR1:   NewDirectory("R1"),
		dirR2:   NewDirectory("R2"),
	}
	regions := NewRegionMap()
	for _, spec := range []struct {
		id     graph.NodeID
		region string
		dir    *Directory
	}{{s1, "R1", w.dirR1}, {s2, "R1", w.dirR1}, {s3, "R2", w.dirR2}} {
		cfg := Config{
			ID: spec.id, Region: spec.region, Net: net,
			Dir: spec.dir, Regions: regions, Retention: retention,
		}
		for _, m := range mutate {
			m(&cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.servers[spec.id] = srv
	}
	for _, id := range []graph.NodeID{h1, h2} {
		rec := &hostRec{}
		w.hosts[id] = rec
		net.MustRegister(id, rec)
	}
	if err := w.dirR1.SetAuthority(alice, []graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := w.dirR1.SetAuthority(carol, []graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := w.dirR2.SetAuthority(bob, []graph.NodeID{s3}); err != nil {
		t.Fatal(err)
	}
	return w
}

// submit injects a SubmitRequest from a host into a server and runs the
// simulation to quiescence.
func (w *world) submit(t *testing.T, host, srv graph.NodeID, from names.Name, to ...names.Name) {
	t.Helper()
	if err := w.net.Send(host, srv, SubmitRequest{From: from, To: to, Subject: "s", Body: "b"}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with nil deps succeeded")
	}
	w := newWorld(t, mail.Retention{})
	if _, err := New(Config{
		ID: 999, Region: "R2", Net: w.net, Dir: w.dirR1, Regions: NewRegionMap(),
	}); err == nil {
		t.Error("directory/region mismatch accepted")
	}
}

func TestLocalDepositAtConnectedServer(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.submit(t, h1, s1, carol, alice)
	if got := w.servers[s1].MailboxLen(alice); got != 1 {
		t.Fatalf("S1 mailbox for alice has %d messages, want 1", got)
	}
	if w.servers[s2].MailboxLen(alice) != 0 {
		t.Error("message duplicated at S2")
	}
	if len(w.hosts[h1].acks) != 1 {
		t.Errorf("submitter got %d acks, want 1", len(w.hosts[h1].acks))
	}
	if w.servers[s1].Stats().Get("deposits_local") != 1 {
		t.Error("deposits_local not counted")
	}
	msgs, err := w.servers[s1].CheckMail(alice)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("CheckMail = %v, %v", msgs, err)
	}
	if msgs[0].From != carol || msgs[0].Subject != "s" {
		t.Errorf("retrieved message = %+v", msgs[0])
	}
	if w.servers[s1].MailboxLen(alice) != 0 {
		t.Error("CheckMail did not drain")
	}
}

func TestDepositSkipsDownPrimary(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.net.Crash(s1)
	// Submit via S2 (S1 is down): first *active* authority server is S2.
	w.submit(t, h1, s2, carol, alice)
	if got := w.servers[s2].MailboxLen(alice); got != 1 {
		t.Fatalf("S2 mailbox = %d, want 1 (primary down)", got)
	}
	if w.servers[s2].PendingTransfers() != 0 {
		t.Error("pending transfers remain")
	}
}

func TestTransferToRemoteAuthority(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	// Submit at S2; alice's first active authority server is S1 → network
	// transfer S2→S1 with ack.
	w.submit(t, h1, s2, carol, alice)
	if got := w.servers[s1].MailboxLen(alice); got != 1 {
		t.Fatalf("S1 mailbox = %d, want 1", got)
	}
	if w.servers[s2].PendingTransfers() != 0 {
		t.Error("ack did not clear pending transfer")
	}
	if w.servers[s2].Stats().Get("transfers_out") != 1 {
		t.Error("transfers_out not counted")
	}
}

func TestInterRegionForward(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.submit(t, h1, s1, alice, bob)
	if got := w.servers[s3].MailboxLen(bob); got != 1 {
		t.Fatalf("S3 mailbox for bob = %d, want 1", got)
	}
	if w.servers[s3].Stats().Get("forwards_in") != 1 {
		t.Error("forwards_in not counted at S3")
	}
}

func TestMultiRecipientFanout(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.submit(t, h1, s1, carol, alice, bob)
	if w.servers[s1].MailboxLen(alice) != 1 {
		t.Error("alice copy missing")
	}
	if w.servers[s3].MailboxLen(bob) != 1 {
		t.Error("bob copy missing")
	}
	// Both copies share the message ID.
	am, _ := w.servers[s1].PeekMail(alice)
	bm, _ := w.servers[s3].PeekMail(bob)
	if am[0].ID != bm[0].ID {
		t.Errorf("fanout IDs differ: %v vs %v", am[0].ID, bm[0].ID)
	}
}

func TestSubmitDirect(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	id, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}, Subject: "s", Body: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if id.Node != s1 || id.Seq == 0 {
		t.Fatalf("Submit id = %v, want node %d with nonzero seq", id, s1)
	}
	w.sched.Run()
	got, err := w.servers[s3].CheckMail(bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("bob's mailbox = %v, want just %v", got, id)
	}
	// Direct submission skips the ack round-trip entirely.
	if n := len(w.hosts[h1].acks); n != 0 {
		t.Errorf("direct Submit produced %d SubmitAcks, want 0", n)
	}
}

func TestSubmitDirectDownServer(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.net.Crash(s1)
	if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); !errors.Is(err, ErrDown) {
		t.Fatalf("Submit on crashed server err = %v, want ErrDown", err)
	}
}

func TestSubmitBatch(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	reqs := []SubmitRequest{
		{From: alice, To: []names.Name{bob}, Subject: "1"},
		{From: alice, To: []names.Name{carol}, Subject: "2"},
		{From: alice, To: []names.Name{bob}, Subject: "3"},
	}
	ids, err := w.servers[s1].SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(reqs) {
		t.Fatalf("SubmitBatch accepted %d, want %d", len(ids), len(reqs))
	}
	w.sched.Run()
	if got, _ := w.servers[s3].CheckMail(bob); len(got) != 2 {
		t.Errorf("bob received %d messages, want 2", len(got))
	}
	if got, _ := w.servers[s1].CheckMail(carol); len(got) != 1 {
		t.Errorf("carol received %d messages, want 1", len(got))
	}

	// A mid-batch crash reports the committed prefix.
	w.net.Crash(s1)
	ids, err = w.servers[s1].SubmitBatch(reqs)
	if !errors.Is(err, ErrDown) {
		t.Fatalf("SubmitBatch on crashed server err = %v, want ErrDown", err)
	}
	if len(ids) != 0 {
		t.Fatalf("crashed SubmitBatch committed %d, want 0", len(ids))
	}
}

func TestRetryAfterTargetCrashInFlight(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	// Submit at S2; transfer heads to S1. Crash S1 before delivery: the
	// message is dropped, the retry timer fires, and the transfer lands at
	// the next authority server (S2 itself).
	if err := w.net.Send(h1, s2, SubmitRequest{From: carol, To: []names.Name{alice}}); err != nil {
		t.Fatal(err)
	}
	w.sched.RunUntil(2 * sim.Unit) // submission reaches S2, transfer departs
	w.net.Crash(s1)
	w.sched.Run()
	if got := w.servers[s2].MailboxLen(alice); got != 1 {
		t.Fatalf("after retry, S2 mailbox = %d, want 1", got)
	}
	if w.servers[s2].Stats().Get("retries") == 0 {
		t.Error("retry not counted")
	}
	if w.servers[s2].PendingTransfers() != 0 {
		t.Error("pending transfer not cleared after retry success")
	}
}

func TestAllAuthorityServersDownThenRecovery(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.net.Crash(s1)
	w.net.Crash(s2)
	// Bob (R2) sends to alice (R1): S3 forwards... but both R1 servers are
	// down, so the forward itself retries until one recovers.
	if err := w.net.Send(h2, s3, SubmitRequest{From: bob, To: []names.Name{alice}}); err != nil {
		t.Fatal(err)
	}
	w.sched.RunUntil(100 * sim.Unit)
	if w.servers[s1].MailboxLen(alice)+w.servers[s2].MailboxLen(alice) != 0 {
		t.Fatal("message deposited while all authority servers down")
	}
	w.net.Recover(s2)
	w.sched.Run()
	if got := w.servers[s2].MailboxLen(alice); got != 1 {
		t.Fatalf("after recovery, S2 mailbox = %d, want 1", got)
	}
}

func TestOriginCrashRecoveryResumesTransfers(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	// S2 accepts a submission and queues a transfer to S1; S2 crashes
	// before the ack returns, recovers later, and must resume the queued
	// transfer from stable storage.
	if err := w.net.Send(h1, s2, SubmitRequest{From: carol, To: []names.Name{alice}}); err != nil {
		t.Fatal(err)
	}
	w.sched.RunUntil(2*sim.Unit + 1) // transfer sent, ack in flight
	w.net.Crash(s2)
	w.sched.RunUntil(20 * sim.Unit)
	w.net.Recover(s2)
	w.sched.Run()
	if got := w.servers[s1].MailboxLen(alice); got != 1 {
		t.Fatalf("S1 mailbox = %d, want 1", got)
	}
	// The resumed duplicate (if the first copy arrived) must be suppressed.
	if msgs, _ := w.servers[s1].PeekMail(alice); len(msgs) != 1 {
		t.Errorf("duplicate transfer not suppressed: %d messages", len(msgs))
	}
}

func TestNotifyOnlineUser(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	if err := w.net.Send(h2, s3, Login{User: bob, Host: h2}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	w.submit(t, h1, s1, alice, bob)
	if len(w.hosts[h2].notifies) != 1 {
		t.Fatalf("bob's host got %d notifies, want 1", len(w.hosts[h2].notifies))
	}
	if w.hosts[h2].notifies[0].User != bob {
		t.Errorf("notify = %+v", w.hosts[h2].notifies[0])
	}
	// After logout, no further alerts.
	if err := w.net.Send(h2, s3, Logout{User: bob}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	w.submit(t, h1, s1, alice, bob)
	if len(w.hosts[h2].notifies) != 1 {
		t.Error("notified after logout")
	}
}

func TestNotifyOnLoginWithBufferedMail(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.submit(t, h1, s1, alice, bob) // bob offline; mail buffered at S3
	if len(w.hosts[h2].notifies) != 0 {
		t.Fatal("offline user notified")
	}
	if err := w.net.Send(h2, s3, Login{User: bob, Host: h2}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if len(w.hosts[h2].notifies) != 1 {
		t.Errorf("login with buffered mail: %d notifies, want 1", len(w.hosts[h2].notifies))
	}
}

func TestRetentionPolicyApplied(t *testing.T) {
	w := newWorld(t, mail.Retention{MaxMessages: 2})
	for i := 0; i < 4; i++ {
		w.submit(t, h1, s1, carol, alice)
	}
	if got := w.servers[s1].MailboxLen(alice); got != 2 {
		t.Errorf("mailbox = %d, want 2 under MaxMessages=2", got)
	}
	if w.servers[s1].Stats().Get("cleanup_evicted") != 2 {
		t.Errorf("cleanup_evicted = %d, want 2", w.servers[s1].Stats().Get("cleanup_evicted"))
	}
}

func TestCheckMailErrors(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	if msgs, err := w.servers[s1].CheckMail(alice); err != nil || msgs != nil {
		t.Errorf("unknown-user CheckMail = %v, %v; want nil, nil", msgs, err)
	}
	w.net.Crash(s1)
	if _, err := w.servers[s1].CheckMail(alice); !errors.Is(err, ErrDown) {
		t.Errorf("down CheckMail err = %v, want ErrDown", err)
	}
	if _, err := w.servers[s1].PeekMail(alice); !errors.Is(err, ErrDown) {
		t.Errorf("down PeekMail err = %v, want ErrDown", err)
	}
}

func TestUnresolvableAndUnroutable(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	ghostLocal := names.MustParse("R1.h1.ghost")
	ghostRegion := names.MustParse("R9.hx.ghost")
	w.submit(t, h1, s1, alice, ghostLocal)
	if w.servers[s1].Stats().Get("unresolvable") != 1 {
		t.Error("unresolvable not counted")
	}
	w.submit(t, h1, s1, alice, ghostRegion)
	if w.servers[s1].Stats().Get("unroutable") != 1 {
		t.Error("unroutable not counted")
	}
}

func TestMisroutedForwardIsRerouted(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	// Hand S1 a forward for bob (R2) as if a stale region map had routed it
	// here; S1 must route it onward to S3.
	msg := mail.Message{ID: mail.MessageID{Node: 999, Seq: 1}, From: alice, To: []names.Name{bob}}
	if err := w.net.Send(h1, s1, Transfer{
		Kind: TransferForward, Msg: msg, Recipient: bob, Origin: h1, Token: 1,
	}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if got := w.servers[s3].MailboxLen(bob); got != 1 {
		t.Errorf("misrouted forward not delivered: S3 mailbox = %d", got)
	}
}

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory("R1")
	if err := d.SetAuthority(bob, []graph.NodeID{s3}); err == nil {
		t.Error("cross-region SetAuthority accepted")
	}
	if err := d.SetAuthority(alice, []graph.NodeID{s1, s2}); err != nil {
		t.Fatal(err)
	}
	got := d.Authority(alice)
	if len(got) != 2 || got[0] != s1 {
		t.Errorf("Authority = %v", got)
	}
	got[0] = 999
	if d.Authority(alice)[0] != s1 {
		t.Error("Authority exposed internal slice")
	}
	if d.Len() != 1 || len(d.Users()) != 1 {
		t.Error("Len/Users wrong")
	}
	if err := d.SetAuthority(alice, nil); err != nil {
		t.Fatal(err)
	}
	if d.Authority(alice) != nil {
		t.Error("empty list did not unregister")
	}
}

func TestRegionMap(t *testing.T) {
	m := NewRegionMap()
	m.AddServer("R1", s1)
	m.AddServer("R1", s2)
	m.AddServer("R1", s1) // duplicate ignored
	m.AddServer("R2", s3)
	if got := m.Servers("R1"); len(got) != 2 || got[0] != s1 {
		t.Errorf("Servers(R1) = %v", got)
	}
	if regions := m.Regions(); len(regions) != 2 || regions[0] != "R1" {
		t.Errorf("Regions = %v", regions)
	}
	m.RemoveServer("R1", s1)
	if got := m.Servers("R1"); len(got) != 1 || got[0] != s2 {
		t.Errorf("after remove, Servers(R1) = %v", got)
	}
	m.RemoveServer("R2", s3)
	if len(m.Regions()) != 1 {
		t.Error("empty region not dropped")
	}
}

func TestStoredBytes(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	w.submit(t, h1, s1, carol, alice)
	if got := w.servers[s1].StoredBytes(); got != len("s")+len("b") {
		t.Errorf("StoredBytes = %d", got)
	}
}

func TestMigrationRedirect(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	// Alice migrates to R2 as "R2.h2.alice": her R1 authority entry is
	// removed and a redirect installed (§3.1.4).
	newName := names.MustParse("R2.h2.alice")
	if err := w.dirR2.SetAuthority(newName, []graph.NodeID{s3}); err != nil {
		t.Fatal(err)
	}
	if err := w.dirR1.SetAuthority(alice, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.dirR1.SetRedirect(alice, newName); err != nil {
		t.Fatal(err)
	}
	w.submit(t, h1, s1, carol, alice) // addressed to the OLD name
	if got := w.servers[s3].MailboxLen(newName); got != 1 {
		t.Fatalf("redirected mail not at new authority: %d", got)
	}
	if w.servers[s1].Stats().Get("redirects") != 1 {
		t.Error("redirect not counted")
	}
	// After the grace period the redirect is dropped; old-name mail
	// becomes unresolvable.
	w.dirR1.RemoveRedirect(alice)
	w.submit(t, h1, s1, carol, alice)
	if w.servers[s1].Stats().Get("unresolvable") != 1 {
		t.Error("post-grace mail not counted unresolvable")
	}
}

func TestSetRedirectWrongRegion(t *testing.T) {
	d := NewDirectory("R1")
	if err := d.SetRedirect(bob, alice); err == nil {
		t.Error("cross-region redirect source accepted")
	}
	if _, ok := d.Redirect(alice); ok {
		t.Error("phantom redirect")
	}
}

func TestKeepCopiesArchive(t *testing.T) {
	// A dedicated world with the §3.1.2c archive option enabled and a
	// read-only retention cap of 2.
	g := graph.New()
	g.MustAddNode(graph.Node{ID: h1, Label: "H1", Region: "R1", Kind: graph.KindHost})
	g.MustAddNode(graph.Node{ID: s1, Label: "S1", Region: "R1", Kind: graph.KindServer})
	g.MustAddEdge(h1, s1, 1)
	sched := sim.New(1)
	net := netsim.New(sched, g)
	dir := NewDirectory("R1")
	regions := NewRegionMap()
	srv, err := New(Config{
		ID: s1, Region: "R1", Net: net, Dir: dir, Regions: regions,
		KeepCopies: true,
		Retention:  mail.Retention{MaxMessages: 2, ReadOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.SetAuthority(alice, []graph.NodeID{s1}); err != nil {
		t.Fatal(err)
	}
	net.MustRegister(h1, &hostRec{})

	send := func() {
		if err := net.Send(h1, s1, SubmitRequest{From: carol, To: []names.Name{alice}}); err != nil {
			t.Fatal(err)
		}
		sched.Run()
	}
	send()
	got, err := srv.CheckMail(alice)
	if err != nil || len(got) != 1 {
		t.Fatalf("first CheckMail = %v, %v", got, err)
	}
	// The copy is retained, marked read, and not returned again.
	if srv.ArchivedCount(alice) != 1 {
		t.Errorf("archived = %d, want 1", srv.ArchivedCount(alice))
	}
	got, _ = srv.CheckMail(alice)
	if len(got) != 0 {
		t.Errorf("second CheckMail returned archived copies: %v", got)
	}
	// New mail still comes through while archives accumulate, and the
	// read-only retention cap bounds the archive.
	for i := 0; i < 3; i++ {
		send()
		got, _ = srv.CheckMail(alice)
		if len(got) != 1 {
			t.Fatalf("round %d: CheckMail = %v", i, got)
		}
	}
	if n := srv.MailboxLen(alice); n > 2 {
		t.Errorf("mailbox holds %d, retention cap is 2", n)
	}
	if srv.Stats().Get("cleanup_evicted") == 0 {
		t.Error("archive cleanup never evicted")
	}
	if srv.ArchivedCount(bob) != 0 {
		t.Error("phantom archive")
	}
}

func TestDistributionListFanout(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	team := names.MustParse("R1.lists.team")
	if err := w.dirR1.SetGroup(team, []names.Name{alice, carol, bob}); err != nil {
		t.Fatal(err)
	}
	w.submit(t, h1, s1, carol, team)
	if w.servers[s1].MailboxLen(alice) != 1 {
		t.Error("alice missing group copy")
	}
	if w.servers[s1].MailboxLen(carol) != 1 {
		t.Error("carol missing group copy")
	}
	if w.servers[s3].MailboxLen(bob) != 1 {
		t.Error("cross-region member bob missing group copy")
	}
	if w.servers[s1].Stats().Get("group_expansions") != 1 {
		t.Error("group expansion not counted")
	}
	// All copies share one message ID.
	am, _ := w.servers[s1].PeekMail(alice)
	bm, _ := w.servers[s3].PeekMail(bob)
	if am[0].ID != bm[0].ID {
		t.Error("group copies have different IDs")
	}
}

func TestGroupValidationAndSelfReference(t *testing.T) {
	d := NewDirectory("R1")
	team := names.MustParse("R1.lists.team")
	if err := d.SetGroup(names.MustParse("R9.l.t"), nil); err == nil {
		t.Error("cross-region group accepted")
	}
	if err := d.SetAuthority(alice, []graph.NodeID{s1}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetGroup(alice, []names.Name{carol}); err == nil {
		t.Error("group colliding with user accepted")
	}
	if err := d.SetGroup(team, []names.Name{alice, team}); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Group(team)
	if !ok || len(got) != 2 {
		t.Fatalf("Group = %v, %v", got, ok)
	}
	got[0] = names.MustParse("R1.x.mutated")
	if fresh, _ := d.Group(team); fresh[0].User == "mutated" {
		t.Error("Group exposed internal slice")
	}
	if err := d.SetGroup(team, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Group(team); ok {
		t.Error("empty member list did not remove group")
	}
}

func TestSelfReferentialGroupTerminates(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	team := names.MustParse("R1.lists.loop")
	if err := w.dirR1.SetGroup(team, []names.Name{team, alice}); err != nil {
		t.Fatal(err)
	}
	w.submit(t, h1, s1, carol, team) // must not loop forever
	if w.servers[s1].MailboxLen(alice) != 1 {
		t.Error("member not delivered despite self-reference")
	}
}

func TestMutuallyRecursiveGroupsTerminate(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	loopA := names.MustParse("R1.lists.loopa")
	loopB := names.MustParse("R2.lists.loopb")
	if err := w.dirR1.SetGroup(loopA, []names.Name{loopB, alice}); err != nil {
		t.Fatal(err)
	}
	if err := w.dirR2.SetGroup(loopB, []names.Name{loopA, bob}); err != nil {
		t.Fatal(err)
	}
	w.submit(t, h1, s1, carol, loopA)
	// Real members receive finitely many copies; the cycle is cut.
	if w.servers[s1].MailboxLen(alice) == 0 {
		t.Error("alice got nothing")
	}
	if w.servers[s3].MailboxLen(bob) == 0 {
		t.Error("bob got nothing")
	}
	var dropped int64
	for _, srv := range w.servers {
		dropped += srv.Stats().Get("group_loops_dropped")
	}
	if dropped == 0 {
		t.Error("cycle never detected")
	}
}
