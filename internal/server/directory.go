package server

import (
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
)

// Directory is one region's replicated name database: for every user of the
// region, the ordered authority-server list ("each user is assigned several
// authority servers, which are ordered in a list such that the first server
// in the list is the primary server", §3.1.1).
//
// The paper partially replicates this database across the region's servers;
// in the simulation all servers of a region share one Directory value, which
// models full intra-region replication with zero lookup cost — consistent
// with §3.1.2b: "if the recipient is located within the local region then
// his server can be located directly from other servers in the region".
type Directory struct {
	region    string
	authority map[names.Name][]graph.NodeID
	redirects map[names.Name]names.Name
	groups    map[names.Name][]names.Name

	// Resolution cache (§3.1.2a name-service queries): memoizes Resolve
	// results, both positive (the authority slice, shared with the authority
	// map — SetAuthority replaces that slice, never mutates it) and negative
	// (a nil entry, so group/redirect names stop paying a map miss on every
	// copy routed through them). Every directory write invalidates exactly
	// the names it touches, which is what the reconfig ops of §3.1.3/§3.1.4
	// (AddServer/RemoveServer/MigrateUser) flow through.
	cache     map[names.Name][]graph.NodeID
	hits      int64
	misses    int64
	hitsCtr   *obs.Counter // nil until Instrument
	missesCtr *obs.Counter

	// onEvent, when set, observes every placement event after the cache entry
	// for the touched name has been dropped. See OnPlacementEvent.
	onEvent func(kind PlacementEvent, user names.Name)
}

// PlacementEvent classifies a directory write that changed where a name
// resolves: every register/migrate/remove path funnels through exactly one
// placementEvent call, so the resolution cache cannot be left stale by a new
// placement policy reaching the directory through a path the older inline
// invalidations did not cover.
type PlacementEvent int

// Placement event kinds, one per mutating directory entry point.
const (
	EventAuthority  PlacementEvent = iota // SetAuthority (register/migrate/remove)
	EventRedirect                         // SetRedirect (§3.1.4 grace period start)
	EventUnredirect                       // RemoveRedirect (grace period end)
	EventGroup                            // SetGroup (distribution-list change)
)

// OnPlacementEvent installs a hook observing every placement event, called
// after the event's cache invalidation. Policies and drivers use it to chain
// their own caches (e.g. client authority lists) off directory truth.
func (d *Directory) OnPlacementEvent(fn func(kind PlacementEvent, user names.Name)) {
	d.onEvent = fn
}

// placementEvent is the single funnel for directory writes: it drops the
// touched name's resolution-cache entry and notifies the hook. All mutating
// entry points MUST route through here rather than touching d.cache inline,
// and must call it AFTER the write commits — a hook (or anything it calls)
// that re-Resolves the name must observe the new truth, not re-cache the
// old entry the event was invalidating.
func (d *Directory) placementEvent(kind PlacementEvent, user names.Name) {
	delete(d.cache, user)
	if d.onEvent != nil {
		d.onEvent(kind, user)
	}
}

// NewDirectory returns an empty directory for a region.
func NewDirectory(region string) *Directory {
	return &Directory{
		region:    region,
		authority: make(map[names.Name][]graph.NodeID),
		redirects: make(map[names.Name]names.Name),
		groups:    make(map[names.Name][]names.Name),
		cache:     make(map[names.Name][]graph.NodeID),
	}
}

// Instrument binds the resolution cache's hit/miss counters to a registry
// ("rescache_hits"/"rescache_misses"), typically the deployment's shared obs
// registry so drivers surface them in snapshots.
func (d *Directory) Instrument(reg *obs.Registry) {
	d.hitsCtr = reg.Counter("rescache_hits")
	d.missesCtr = reg.Counter("rescache_misses")
}

// CacheStats reports resolution-cache hits and misses since creation.
func (d *Directory) CacheStats() (hits, misses int64) { return d.hits, d.misses }

// Resolve returns the user's ordered authority-server list through the
// resolution cache (nil if the user is unknown). Servers resolve recipients
// through this; Authority stays the uncached administrative read.
func (d *Directory) Resolve(user names.Name) []graph.NodeID {
	list, ok := d.cache[user]
	if ok {
		d.hits++
		if d.hitsCtr != nil {
			d.hitsCtr.Inc()
		}
	} else {
		d.misses++
		if d.missesCtr != nil {
			d.missesCtr.Inc()
		}
		list = d.authority[user] // nil for unknown users: cached negative
		d.cache[user] = list
	}
	if list == nil {
		return nil
	}
	return append([]graph.NodeID(nil), list...)
}

// Region returns the region this directory covers.
func (d *Directory) Region() string { return d.region }

// SetAuthority records the ordered authority-server list for a user. The
// list is copied. An empty list removes the user.
func (d *Directory) SetAuthority(user names.Name, servers []graph.NodeID) error {
	if user.Region != d.region {
		return fmt.Errorf("server: user %v is not in region %s", user, d.region)
	}
	if len(servers) == 0 {
		delete(d.authority, user)
	} else {
		d.authority[user] = append([]graph.NodeID(nil), servers...)
	}
	d.placementEvent(EventAuthority, user)
	return nil
}

// Authority returns the user's ordered authority-server list, or nil if the
// user is unknown.
func (d *Directory) Authority(user names.Name) []graph.NodeID {
	list := d.authority[user]
	if list == nil {
		return nil
	}
	return append([]graph.NodeID(nil), list...)
}

// Users returns every registered user, sorted by name, for deterministic
// iteration in experiments.
func (d *Directory) Users() []names.Name {
	out := make([]names.Name, 0, len(d.authority))
	for u := range d.authority {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Len reports the number of registered users.
func (d *Directory) Len() int { return len(d.authority) }

// SetRedirect records that mail for old should be re-addressed to new — the
// migration mechanism of §3.1.4: "between the two operations, mail addressed
// to a migrated user can be redirected to the new user address". The old
// name must belong to this region.
func (d *Directory) SetRedirect(old, new names.Name) error {
	if old.Region != d.region {
		return fmt.Errorf("server: redirect source %v is not in region %s", old, d.region)
	}
	d.redirects[old] = new
	d.placementEvent(EventRedirect, old)
	return nil
}

// Redirect looks up the forwarding address for a migrated user.
func (d *Directory) Redirect(old names.Name) (names.Name, bool) {
	n, ok := d.redirects[old]
	return n, ok
}

// RemoveRedirect deletes a forwarding record (the end of the migration
// grace period).
func (d *Directory) RemoveRedirect(old names.Name) {
	delete(d.redirects, old)
	d.placementEvent(EventUnredirect, old)
}

// SetGroup registers a distribution list: mail addressed to the group name
// fans out to the members. This is the conventional "group naming"
// mechanism of §4.3 — the maintained-list baseline the attribute-based
// design replaces ("no distribution list has to be available", §3.3.1-B).
// The group name must be in this region and must not collide with a real
// user. An empty member list removes the group.
func (d *Directory) SetGroup(group names.Name, members []names.Name) error {
	if group.Region != d.region {
		return fmt.Errorf("server: group %v is not in region %s", group, d.region)
	}
	if _, isUser := d.authority[group]; isUser {
		return fmt.Errorf("server: group %v collides with a registered user", group)
	}
	if len(members) == 0 {
		delete(d.groups, group)
	} else {
		d.groups[group] = append([]names.Name(nil), members...)
	}
	d.placementEvent(EventGroup, group)
	return nil
}

// Group returns the members of a distribution list.
func (d *Directory) Group(group names.Name) ([]names.Name, bool) {
	m, ok := d.groups[group]
	if !ok {
		return nil, false
	}
	return append([]names.Name(nil), m...), true
}

// RegionMap is the inter-region routing knowledge every server holds: which
// server nodes exist in each region, so a message for a non-local name can
// be "transmitted to one of the servers in the recipient region" (§3.1.2b).
type RegionMap struct {
	servers map[string][]graph.NodeID
}

// NewRegionMap returns an empty region map.
func NewRegionMap() *RegionMap {
	return &RegionMap{servers: make(map[string][]graph.NodeID)}
}

// AddServer records a server as belonging to a region.
func (m *RegionMap) AddServer(region string, id graph.NodeID) {
	for _, s := range m.servers[region] {
		if s == id {
			return
		}
	}
	m.servers[region] = append(m.servers[region], id)
}

// RemoveServer removes a server from a region (part of §3.1.3c: the deleted
// server "notifies all other servers before it is removed").
func (m *RegionMap) RemoveServer(region string, id graph.NodeID) {
	list := m.servers[region]
	out := list[:0]
	for _, s := range list {
		if s != id {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		delete(m.servers, region)
		return
	}
	m.servers[region] = out
}

// Servers returns the servers of a region in registration order.
func (m *RegionMap) Servers(region string) []graph.NodeID {
	return append([]graph.NodeID(nil), m.servers[region]...)
}

// Regions returns all known regions, sorted.
func (m *RegionMap) Regions() []string {
	out := make([]string, 0, len(m.servers))
	for r := range m.servers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
