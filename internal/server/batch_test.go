package server

import (
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

func batched(size int, flush sim.Time) func(*Config) {
	return func(c *Config) {
		c.BatchSize = size
		c.FlushInterval = flush
	}
}

// TestBatchCoalescesOnSizeWatermark: four transfers to the same destination
// staged before the flush interval must ship as ONE TransferBatch envelope.
func TestBatchCoalescesOnSizeWatermark(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(4, 100*sim.Unit))
	for i := 0; i < 4; i++ {
		if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); err != nil {
			t.Fatal(err)
		}
	}
	w.sched.Run()
	st := w.servers[s1].Stats()
	if got := st.Get("relay_envelopes"); got != 1 {
		t.Errorf("relay_envelopes = %d, want 1 (coalesced batch)", got)
	}
	if got := st.Get("transfers_out"); got != 4 {
		t.Errorf("transfers_out = %d, want 4 (per-message accounting)", got)
	}
	if got := w.servers[s3].MailboxLen(bob); got != 4 {
		t.Errorf("bob has %d messages, want 4", got)
	}
	if got := w.servers[s1].PendingTransfers(); got != 0 {
		t.Errorf("pending = %d after batch ack, want 0", got)
	}
}

// TestBatchFlushesOnInterval: a batch that never reaches the size watermark
// flushes when FlushInterval elapses — mail must not wait forever.
func TestBatchFlushesOnInterval(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(16, 2*sim.Unit))
	for i := 0; i < 2; i++ {
		if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); err != nil {
			t.Fatal(err)
		}
	}
	w.sched.Run()
	st := w.servers[s1].Stats()
	if got := st.Get("relay_envelopes"); got != 1 {
		t.Errorf("relay_envelopes = %d, want 1", got)
	}
	if got := w.servers[s3].MailboxLen(bob); got != 2 {
		t.Errorf("bob has %d messages, want 2", got)
	}
}

// TestBatchTimeoutSplits: a batch shipped at a crashed destination times out
// and splits — its items fall back to individual dispatch with per-item
// retries, and delivery completes exactly once after recovery.
func TestBatchTimeoutSplits(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(2, 2*sim.Unit))
	w.net.Crash(s3)
	for i := 0; i < 2; i++ {
		if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the batch flush, time out, and split while the destination is down.
	w.sched.RunFor(20 * sim.Unit)
	st := w.servers[s1].Stats()
	if got := st.Get("batch_splits"); got != 1 {
		t.Errorf("batch_splits = %d, want 1", got)
	}
	if got := w.servers[s1].PendingTransfers(); got != 2 {
		t.Errorf("pending = %d while destination down, want 2", got)
	}
	w.net.Recover(s3)
	w.sched.RunFor(40 * sim.Unit)
	if got := w.servers[s3].MailboxLen(bob); got != 2 {
		t.Errorf("bob has %d messages after recovery, want 2", got)
	}
	if got := w.servers[s1].PendingTransfers(); got != 0 {
		t.Errorf("pending = %d after recovery, want 0", got)
	}
	if got := w.servers[s3].Stats().Get("duplicate_deposits"); got != 0 {
		t.Errorf("duplicate_deposits = %d, want 0", got)
	}
}

// TestBatchOriginCrashRecovers: transfers staged but not yet flushed when
// the origin crashes survive in the pending ledger and are re-dispatched
// individually on recovery.
func TestBatchOriginCrashRecovers(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(8, 100*sim.Unit))
	for i := 0; i < 2; i++ {
		if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing flushed yet: both staged.
	if got := w.servers[s1].Stats().Get("relay_envelopes"); got != 0 {
		t.Fatalf("relay_envelopes = %d before flush, want 0", got)
	}
	w.net.Crash(s1)
	w.net.Recover(s1)
	w.sched.Run()
	if got := w.servers[s3].MailboxLen(bob); got != 2 {
		t.Errorf("bob has %d messages, want 2", got)
	}
	if got := w.servers[s1].PendingTransfers(); got != 0 {
		t.Errorf("pending = %d, want 0", got)
	}
	// Recovery dispatches individually: two single-transfer envelopes.
	if got := w.servers[s1].Stats().Get("relay_envelopes"); got != 2 {
		t.Errorf("relay_envelopes = %d after recovery, want 2", got)
	}
}

// TestBatchAckRetrySplitting: a TransferBatchAck with Failed indices settles
// the acked items and re-dispatches exactly the failed ones.
func TestBatchAckRetrySplitting(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(2, 100*sim.Unit))
	w.net.Crash(s3) // the real destination never acks; we forge the ack
	for i := 0; i < 2; i++ {
		if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.servers[s1].PendingTransfers(); got != 2 {
		t.Fatalf("pending = %d after flush, want 2", got)
	}
	// Let the batch envelope reach (and be dropped by) the crashed
	// destination, but stop before the batch retry timeout fires.
	w.sched.RunFor(5 * sim.Unit)
	// Partial failure: item 0 processed, item 1 failed. The first flushed
	// batch has token 1.
	w.servers[s1].handleBatchAck(TransferBatchAck{Token: 1, Failed: []int{1}})
	if got := w.servers[s1].PendingTransfers(); got != 1 {
		t.Fatalf("pending = %d after partial ack, want 1 (failed item only)", got)
	}
	w.net.Recover(s3)
	w.sched.RunFor(40 * sim.Unit)
	if got := w.servers[s3].MailboxLen(bob); got != 1 {
		t.Errorf("bob has %d messages, want 1 (the re-dispatched failed item)", got)
	}
	if got := w.servers[s1].PendingTransfers(); got != 0 {
		t.Errorf("pending = %d, want 0", got)
	}
}

// TestBatchReceiverReportsUnprocessable: a receiver that cannot process an
// item reports its index in the ack instead of silently dropping the whole
// batch.
func TestBatchReceiverReportsUnprocessable(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	good := mail.Message{ID: mail.MessageID{Node: 99, Seq: 1}, To: []names.Name{bob}, Body: "x"}
	bad := mail.Message{ID: mail.MessageID{Node: 99, Seq: 2}, To: []names.Name{bob}, Body: "y"}
	if err := w.net.Send(h2, s3, TransferBatch{
		Origin: h2,
		Token:  7,
		Items: []Transfer{
			{Kind: TransferDeposit, Msg: good, Recipient: bob, Token: 1},
			{Kind: TransferKind(0), Msg: bad, Recipient: bob, Token: 2}, // unknown kind
		},
	}); err != nil {
		t.Fatal(err)
	}
	w.sched.Run()
	if got := w.servers[s3].MailboxLen(bob); got != 1 {
		t.Errorf("bob has %d messages, want 1 (good item deposited)", got)
	}
	acks := w.hosts[h2].batchAcks
	if len(acks) != 1 {
		t.Fatalf("origin got %d batch acks, want 1", len(acks))
	}
	if acks[0].Token != 7 || len(acks[0].Failed) != 1 || acks[0].Failed[0] != 1 {
		t.Errorf("ack = %+v, want Token 7, Failed [1]", acks[0])
	}
}

// TestBatchSizeOneMatchesDefault: BatchSize=1 takes the exact classic path —
// identical counters and identical mailbox outcomes to an unconfigured
// server, which is what makes the pre-PR equivalence trivially hold.
func TestBatchSizeOneMatchesDefault(t *testing.T) {
	run := func(mutate ...func(*Config)) (map[string]int64, int) {
		w := newWorld(t, mail.Retention{}, mutate...)
		for i := 0; i < 3; i++ {
			if _, err := w.servers[s1].Submit(SubmitRequest{From: alice, To: []names.Name{bob, alice}}); err != nil {
				t.Fatal(err)
			}
		}
		w.sched.Run()
		return w.servers[s1].Stats().Counters(), w.servers[s3].MailboxLen(bob)
	}
	defStats, defBob := run()
	oneStats, oneBob := run(batched(1, 5*sim.Unit))
	if defBob != oneBob {
		t.Errorf("bob delivery differs: default %d vs batch-1 %d", defBob, oneBob)
	}
	for k, v := range defStats {
		if oneStats[k] != v {
			t.Errorf("counter %s differs: default %d vs batch-1 %d", k, v, oneStats[k])
		}
	}
	for k, v := range oneStats {
		if defStats[k] != v {
			t.Errorf("counter %s only in batch-1 run: %d", k, v)
		}
	}
}

// TestFlushRedirectsStaleDestination: an item staged while its primary
// authority server was down must not ship to the secondary once the primary
// has recovered — at flush time the destination is re-validated and the item
// redirected, or the deposit would sit where the recipient's §3.1.2c walk
// never looks behind a healthy primary.
func TestFlushRedirectsStaleDestination(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(8, 50*sim.Unit))
	w.net.Crash(s1)
	srv := w.servers[s2]
	msg := mail.Message{ID: mail.MessageID{Node: s2, Seq: 1}, From: carol,
		To: []names.Name{alice}, Subject: "s", Body: "b"}
	// Primary s1 is down, so staging picks the secondary (s2 itself).
	srv.enqueue(TransferDeposit, msg, alice, []graph.NodeID{s1, s2})
	w.sched.RunFor(10 * sim.Unit)
	w.net.Recover(s1)
	w.sched.Run()
	if got := srv.Stats().Get("batch_redirects"); got != 1 {
		t.Errorf("batch_redirects = %d, want 1", got)
	}
	if got := w.servers[s1].MailboxLen(alice); got != 1 {
		t.Errorf("alice at recovered primary s1 has %d messages, want 1", got)
	}
	if got := w.servers[s2].MailboxLen(alice); got != 0 {
		t.Errorf("alice at secondary s2 has %d messages, want 0", got)
	}
	if got := srv.PendingTransfers(); got != 0 {
		t.Errorf("pending = %d after redirect settles, want 0", got)
	}
}

// TestRecoveredRestartsCandidateWalk: the Recovered hook also fires on
// reconnection (link restore) while the server is up and re-drives every
// pending transfer. The re-drive must restart each transfer's candidate walk
// at the head of its list — resuming mid-rotation would send the deposit to
// a secondary while the primary is healthy, stranding it for retrieval.
func TestRecoveredRestartsCandidateWalk(t *testing.T) {
	w := newWorld(t, mail.Retention{}, batched(8, 50*sim.Unit))
	srv := w.servers[s2]
	msg := mail.Message{ID: mail.MessageID{Node: s2, Seq: 1}, From: carol,
		To: []names.Name{alice}, Subject: "s", Body: "b"}
	// Staged toward the primary s1; the pick advanced the rotation past it.
	srv.enqueue(TransferDeposit, msg, alice, []graph.NodeID{s1, s2})
	// A link restore fires Recovered on its up endpoints (see
	// netsim.RestoreLink); simulate the hook directly.
	srv.Recovered(w.sched.Now())
	w.sched.Run()
	if got := w.servers[s1].MailboxLen(alice); got != 1 {
		t.Errorf("alice at primary s1 has %d messages, want 1", got)
	}
	if got := w.servers[s2].MailboxLen(alice); got != 0 {
		t.Errorf("alice at secondary s2 has %d messages, want 0 (walk must restart at head)", got)
	}
	if got := srv.PendingTransfers(); got != 0 {
		t.Errorf("pending = %d after recovery re-drive, want 0", got)
	}
}
