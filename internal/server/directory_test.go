package server

import (
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/names"
)

// TestDirectoryPlacementEventFunnel: every mutating directory entry point
// must flow through the single placementEvent funnel — the hook sees each
// write, and the resolution cache entry for the touched name is dropped
// BEFORE the hook fires, so a hook chaining its own cache off directory
// truth can immediately re-Resolve and get the new answer.
func TestDirectoryPlacementEventFunnel(t *testing.T) {
	d := NewDirectory("r0")
	user := names.Name{Region: "r0", Host: "h0", User: "alice"}
	alias := names.Name{Region: "r0", Host: "h0", User: "alice-old"}
	group := names.Name{Region: "r0", Host: "h0", User: "staff"}

	type event struct {
		kind PlacementEvent
		user names.Name
	}
	var events []event
	var inHook []graph.NodeID
	d.OnPlacementEvent(func(kind PlacementEvent, u names.Name) {
		events = append(events, event{kind, u})
		if kind == EventAuthority && u == user {
			// The funnel invalidates before notifying: resolving from
			// inside the hook must already see the new authority.
			inHook = d.Resolve(user)
		}
	})

	if err := d.SetAuthority(user, []graph.NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Populate the cache, then overwrite the placement.
	if got := d.Resolve(user); len(got) != 2 || got[0] != 1 {
		t.Fatalf("Resolve = %v, want [1 2]", got)
	}
	if err := d.SetAuthority(user, []graph.NodeID{3, 4}); err != nil {
		t.Fatal(err)
	}
	if len(inHook) != 2 || inHook[0] != 3 {
		t.Fatalf("hook-time Resolve = %v, want the NEW authority [3 4]", inHook)
	}
	if got := d.Resolve(user); len(got) != 2 || got[0] != 3 {
		t.Fatalf("post-write Resolve = %v, want [3 4] (stale cache?)", got)
	}

	if err := d.SetRedirect(alias, user); err != nil {
		t.Fatal(err)
	}
	d.RemoveRedirect(alias)
	if err := d.SetGroup(group, []names.Name{user}); err != nil {
		t.Fatal(err)
	}

	want := []event{
		{EventAuthority, user},
		{EventAuthority, user},
		{EventRedirect, alias},
		{EventUnredirect, alias},
		{EventGroup, group},
	}
	if len(events) != len(want) {
		t.Fatalf("hook saw %d events %v, want %d", len(events), events, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, events[i], want[i])
		}
	}

	// Negative cache entries are invalidated too: resolve an unknown name
	// (caches nil), then register it.
	ghost := names.Name{Region: "r0", Host: "h1", User: "bob"}
	if got := d.Resolve(ghost); got != nil {
		t.Fatalf("unknown name resolved to %v", got)
	}
	if err := d.SetAuthority(ghost, []graph.NodeID{7}); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(ghost); len(got) != 1 || got[0] != 7 {
		t.Fatalf("negative cache entry survived registration: Resolve = %v", got)
	}
}
