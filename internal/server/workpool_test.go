package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkQueueOrdering: items of one queue run in submission order even
// with many workers and many competing queues.
func TestWorkQueueOrdering(t *testing.T) {
	p := NewWorkPool(8)
	defer p.Close()

	const queues, items = 16, 500
	var wg sync.WaitGroup
	wg.Add(queues)
	errs := make(chan int, queues)
	for qi := 0; qi < queues; qi++ {
		q := p.NewQueue(32)
		go func(qi int, q *WorkQueue) {
			defer wg.Done()
			var last int64 = -1
			var done sync.WaitGroup
			for i := 0; i < items; i++ {
				i := int64(i)
				done.Add(1)
				if !q.Enqueue(func() {
					if i != last+1 {
						errs <- qi
					}
					last = i
					done.Done()
				}) {
					t.Error("enqueue on open queue returned false")
					done.Done()
				}
			}
			done.Wait()
		}(qi, q)
	}
	wg.Wait()
	select {
	case qi := <-errs:
		t.Fatalf("queue %d executed out of order", qi)
	default:
	}
}

// TestWorkPoolBoundsConcurrency: with W workers, at most W items run at
// once, no matter how many queues feed the pool.
func TestWorkPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewWorkPool(workers)
	defer p.Close()

	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for qi := 0; qi < 24; qi++ {
		q := p.NewQueue(8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			q.Enqueue(func() {
				defer wg.Done()
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				running.Add(-1)
			})
		}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent items, pool bound is %d", got, workers)
	}
}

// TestWorkQueueBackpressure: Enqueue blocks at capacity and resumes once a
// worker drains the queue.
func TestWorkQueueBackpressure(t *testing.T) {
	p := NewWorkPool(1)
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	q := p.NewQueue(2)
	q.Enqueue(func() { close(started); <-gate }) // occupies the only worker
	<-started            // the worker now holds the (drained-empty) queue
	q.Enqueue(func() {})
	q.Enqueue(func() {}) // fills the queue to cap while the worker is busy

	blocked := make(chan struct{})
	go func() {
		q.Enqueue(func() {}) // must block: queue full
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Error("enqueue did not block on a full queue")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue never unblocked after drain")
	}
}

// TestWorkQueueClose: close drops pending items and releases blocked
// enqueuers with a false result.
func TestWorkQueueClose(t *testing.T) {
	p := NewWorkPool(1)
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	hold := p.NewQueue(4)
	hold.Enqueue(func() { close(started); <-gate })
	<-started // the only worker is now pinned on hold's item

	q := p.NewQueue(1)
	ran := make(chan struct{}, 4)
	q.Enqueue(func() { ran <- struct{}{} }) // pending: worker is held
	res := make(chan bool, 1)
	go func() {
		res <- q.Enqueue(func() { ran <- struct{}{} }) // blocked: queue full
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if got := <-res; got {
		t.Error("enqueue on closed queue reported true")
	}
	if !hold.Enqueue(func() {}) {
		t.Error("unrelated queue affected by close")
	}
	close(gate)
	time.Sleep(20 * time.Millisecond)
	select {
	case <-ran:
		t.Error("item ran after queue close")
	default:
	}
}
