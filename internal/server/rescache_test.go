package server

import (
	"testing"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/obs"
)

func TestResolveCachesAndInvalidates(t *testing.T) {
	d := NewDirectory("R1")
	u := names.MustParse("R1.h1.u")
	if err := d.SetAuthority(u, []graph.NodeID{101, 102}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	d.Instrument(reg)

	if got := d.Resolve(u); len(got) != 2 || got[0] != 101 {
		t.Fatalf("Resolve = %v", got)
	}
	if got := d.Resolve(u); len(got) != 2 {
		t.Fatalf("Resolve (cached) = %v", got)
	}
	hits, misses := d.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("CacheStats = %d hits, %d misses, want 1/1", hits, misses)
	}
	if reg.Get("rescache_hits") != 1 || reg.Get("rescache_misses") != 1 {
		t.Errorf("obs counters = %d/%d, want 1/1",
			reg.Get("rescache_hits"), reg.Get("rescache_misses"))
	}

	// The returned slice is a copy: mutating it must not poison the cache.
	got := d.Resolve(u)
	got[0] = 999
	if again := d.Resolve(u); again[0] != 101 {
		t.Error("cache poisoned through returned slice")
	}

	// A reconfig write invalidates exactly that user.
	if err := d.SetAuthority(u, []graph.NodeID{102}); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(u); len(got) != 1 || got[0] != 102 {
		t.Errorf("Resolve after SetAuthority = %v, want [102]", got)
	}

	// Removal is visible immediately too.
	if err := d.SetAuthority(u, nil); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(u); got != nil {
		t.Errorf("Resolve after removal = %v, want nil", got)
	}
}

func TestResolveNegativeCacheInvalidatedOnRegistration(t *testing.T) {
	d := NewDirectory("R1")
	u := names.MustParse("R1.h1.newuser")
	if got := d.Resolve(u); got != nil {
		t.Fatalf("Resolve unknown = %v", got)
	}
	if got := d.Resolve(u); got != nil { // cached negative
		t.Fatalf("Resolve unknown (cached) = %v", got)
	}
	hits, _ := d.CacheStats()
	if hits != 1 {
		t.Errorf("negative entry not cached: hits = %d", hits)
	}
	// Registering the user must purge the stale negative entry — otherwise
	// mail for a newly added user would bounce as unresolvable forever.
	if err := d.SetAuthority(u, []graph.NodeID{101}); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(u); len(got) != 1 || got[0] != 101 {
		t.Errorf("Resolve after registration = %v, want [101]", got)
	}
}

// TestDeliveryUsesResolutionCache pins that the hot path actually goes
// through the cache: repeated deliveries to the same recipient hit after the
// first resolve.
func TestDeliveryUsesResolutionCache(t *testing.T) {
	w := newWorld(t, mail.Retention{})
	for i := 0; i < 3; i++ {
		w.submit(t, h1, s1, carol, alice)
	}
	hits, misses := w.dirR1.CacheStats()
	if misses == 0 {
		t.Error("no cache misses recorded — Resolve not in the delivery path?")
	}
	if hits == 0 {
		t.Error("no cache hits across repeated deliveries to one recipient")
	}
}
