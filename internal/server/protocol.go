package server

import (
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/names"
)

// Protocol payloads carried inside netsim envelopes. Everything that moves
// between user interfaces and servers, or between servers, is one of these
// types.

// SubmitRequest asks a mail server to accept a message for delivery
// (§3.1.2: "the message delivery process begins after the message is
// presented to the mail server for delivery"). Sent from a host node to its
// connected server.
type SubmitRequest struct {
	From    names.Name
	To      []names.Name
	Subject string
	Body    string
}

// SubmitAck confirms acceptance of a submission, carrying the message ID the
// server assigned plus the echoed subject so the submitting host can match
// the ack to the request it answers (submissions from one host may be acked
// out of order when they went to different servers). Sent back to the
// submitting host.
type SubmitAck struct {
	ID      mail.MessageID
	Subject string
}

// TransferKind distinguishes the two server-to-server transfer steps of the
// delivery pipeline.
type TransferKind int

const (
	// TransferDeposit hands a message to one of the recipient's authority
	// servers for buffering (§3.1.2c).
	TransferDeposit TransferKind = iota + 1
	// TransferForward relays a message into the recipient's region, where
	// "the name resolution process continues" (§3.1.2b).
	TransferForward
)

func (k TransferKind) String() string {
	switch k {
	case TransferDeposit:
		return "deposit"
	case TransferForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Transfer moves a message between servers. The receiving server must reply
// with TransferAck; the origin retries against the next candidate server if
// no ack arrives in time, which is what guarantees no message is lost while
// at least one authority server is reachable.
type Transfer struct {
	Kind      TransferKind
	Msg       mail.Message
	Recipient names.Name
	Origin    graph.NodeID
	Token     uint64
	Attempt   int
}

// TransferAck confirms a Transfer identified by its token.
type TransferAck struct {
	Token uint64
}

// TransferBatch carries several transfers bound for one destination server
// in a single network envelope — the relay-batching fabric. Items keep their
// individual pending tokens (each is still a ledgered transfer awaiting
// delivery); Token identifies the batch itself, which is acknowledged as a
// unit with TransferBatchAck. A sender whose batch times out splits it and
// retries the still-pending items as individual Transfers, so batching never
// weakens the no-loss guarantee of the single-transfer protocol.
type TransferBatch struct {
	Origin graph.NodeID
	Token  uint64
	Items  []Transfer
}

// TransferBatchAck confirms a TransferBatch. Failed lists the indices of
// items the receiver could not process; the origin re-dispatches exactly
// those as individual transfers (retry splitting on partial failure), while
// the rest are settled by this ack.
type TransferBatchAck struct {
	Token  uint64
	Failed []int
}

// Notify is the "alert signal" a server sends to a logged-on user's host
// when mail arrives for them (§3.1.2c).
type Notify struct {
	User   names.Name
	ID     mail.MessageID
	Server graph.NodeID
}

// Login tells a server that a user is now connected at a host; the server
// notifies them of buffered mail "as soon as he is connected" (§3.1.2c).
type Login struct {
	User names.Name
	Host graph.NodeID
}

// Logout tells a server the user disconnected.
type Logout struct {
	User names.Name
}
