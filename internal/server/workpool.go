// Bounded pull-based work dispatch for the wire transport.
//
// The classic server loop gives every accepted connection its own handler
// goroutine; at high connection counts that is thousands of mostly-idle
// goroutines, each pinning a stack, and the scheduler — not the operator —
// decides how much handler work runs at once. Stolyar's pull-based dispatch
// results motivate the inversion implemented here: a fixed pool of workers
// PULLS work from per-connection queues instead of connections pushing
// goroutines at the runtime. Concurrency is bounded by the pool size, and
// because a queue is held by at most one worker at a time, items of one
// queue execute in strict FIFO order — the property the wire protocol's
// exactly-once auditors rely on for per-connection submit ordering.
package server

import (
	"runtime"
	"sync"
)

// WorkPool is a bounded worker pool draining per-connection WorkQueues.
// Queues with pending items wait on a FIFO run queue; each of the pool's
// workers repeatedly pops one queue, drains the items it had at pickup (in
// order), and re-appends the queue if more arrived meanwhile. At most one
// worker holds a given queue at any instant, so per-queue ordering is total
// even though the pool executes many queues concurrently.
type WorkPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	runq   []*WorkQueue // queues with pending items, FIFO
	closed bool
	wg     sync.WaitGroup
}

// DefaultWireWorkers is the worker count a zero configuration gets:
// one worker per scheduler thread.
func DefaultWireWorkers() int { return runtime.GOMAXPROCS(0) }

// NewWorkPool starts a pool of the given size (<=0 takes
// DefaultWireWorkers). Close releases the workers.
func NewWorkPool(workers int) *WorkPool {
	if workers <= 0 {
		workers = DefaultWireWorkers()
	}
	p := &WorkPool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close stops the workers after their in-progress batches finish. Items
// still queued are dropped — the pool is closed on server shutdown, after
// every connection is gone, so there is no one left to answer anyway.
func (p *WorkPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.runq = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *WorkPool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.runq) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		q := p.runq[0]
		p.runq = p.runq[1:]
		p.mu.Unlock()
		q.drain()
	}
}

// schedule appends q to the run queue. Callers hold q.mu but never p.mu.
func (p *WorkPool) schedule(q *WorkQueue) {
	p.mu.Lock()
	if !p.closed {
		p.runq = append(p.runq, q)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// WorkQueue is one connection's pending work. Enqueue blocks while the
// queue is at capacity — that stall propagates to the connection's reader
// goroutine and from there to the peer's TCP window, which is the
// transport's backpressure: a client cannot hold more than the queue bound
// plus a socket buffer of unprocessed requests against the server.
type WorkQueue struct {
	pool *WorkPool
	cap  int

	mu        sync.Mutex
	notFull   *sync.Cond
	items     []func()
	scheduled bool // on the pool's run queue or held by a worker
	closed    bool
}

// NewQueue creates a queue drained by this pool. cap <= 0 means 64.
func (p *WorkPool) NewQueue(cap int) *WorkQueue {
	if cap <= 0 {
		cap = 64
	}
	q := &WorkQueue{pool: p, cap: cap}
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends one item, blocking while the queue is full. It reports
// false when the queue was closed (the item is dropped).
func (q *WorkQueue) Enqueue(fn func()) bool {
	q.mu.Lock()
	for len(q.items) >= q.cap && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, fn)
	need := !q.scheduled
	if need {
		q.scheduled = true
	}
	q.mu.Unlock()
	if need {
		q.pool.schedule(q)
	}
	return true
}

// Close marks the queue dead: pending items are dropped and blocked
// Enqueues return false. Safe to call while a worker drains the queue.
func (q *WorkQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.mu.Unlock()
	q.notFull.Broadcast()
}

// drain runs the queue's current batch in order, then reschedules the queue
// if more items arrived while the batch ran. Exactly one worker runs drain
// for a given queue at a time (guarded by the scheduled flag), which is
// what makes per-queue execution order total.
func (q *WorkQueue) drain() {
	q.mu.Lock()
	batch := q.items
	q.items = nil
	q.mu.Unlock()
	q.notFull.Broadcast()
	for _, fn := range batch {
		fn()
	}
	q.mu.Lock()
	if len(q.items) > 0 && !q.closed {
		q.mu.Unlock()
		q.pool.schedule(q)
		return
	}
	q.scheduled = false
	q.mu.Unlock()
}
