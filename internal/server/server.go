// Package server implements the paper's mail (authority) server: the process
// "responsible for obtaining addresses of recipients, sending, buffering,
// relaying and delivering messages to the mail recipients" (§1).
//
// A Server sits on one node of a simulated network and implements the
// message-delivery pipeline of §3.1.2: it accepts submissions from user
// interfaces, resolves recipient names syntax-directedly (local region via
// the replicated Directory, other regions by relaying to a server there),
// deposits messages at the first active authority server of each recipient,
// and notifies logged-on recipients. Server-to-server transfers are
// acknowledged and retried against the next candidate on timeout, which is
// what makes the design lose no mail while any authority server is
// reachable.
//
// Mailboxes and queued transfers survive crashes (stable storage); what a
// crashed server cannot do is receive — traffic sent to it while down is
// dropped by the network and covered by the sender's retry.
package server

import (
	"errors"
	"fmt"
	"sort"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mail"
	"github.com/largemail/largemail/internal/mail/mailstore"
	"github.com/largemail/largemail/internal/mailerr"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/sim"
)

// MaxGroupExpansions bounds nested distribution-list expansion per message
// copy; deeper nesting is treated as a definition cycle and dropped.
const MaxGroupExpansions = 8

// Errors reported by Server operations. Both wrap the shared taxonomy in
// internal/mailerr, so errors.Is matches either the package sentinel or the
// cross-layer category (mailerr.ErrServerDown, mailerr.ErrUnknownUser).
var (
	ErrDown        = fmt.Errorf("server: server is down: %w", mailerr.ErrServerDown)
	ErrUnknownUser = fmt.Errorf("server: user has no mailbox here: %w", mailerr.ErrUnknownUser)
)

// Config configures a Server.
type Config struct {
	ID      graph.NodeID
	Region  string
	Net     *netsim.Network
	Dir     *Directory // this region's replicated directory
	Regions *RegionMap // global region → servers map
	// Retention is the mailbox clean-up policy; the zero value keeps
	// everything.
	Retention mail.Retention
	// KeepCopies enables §3.1.2c's archive option: "another option can be
	// provided to allow a copy of the message to be retained on the
	// server. In that case, some policy of message archiving and clean-up
	// must be implemented." With KeepCopies, CheckMail returns messages
	// without removing them, marking them read so a ReadOnly Retention can
	// reclaim them later.
	KeepCopies bool
	// RetryTimeout is how long a transfer waits for its ack before trying
	// the next candidate. Zero means 8 paper time units, comfortably above
	// any round trip in the bundled topologies.
	RetryTimeout sim.Time
	// Trace, when set, stamps every message's progress through the §3.1.2
	// pipeline (submit → resolve → relay → deposit → notify → retrieve).
	// Typically one tracer is shared by every server of a deployment so a
	// relayed message accumulates a single span chain. Nil disables tracing.
	Trace *obs.Tracer
	// BatchSize enables the relay-batching fabric: outgoing transfers are
	// coalesced per destination server and flushed as one TransferBatch
	// envelope when BatchSize items are staged or FlushInterval elapses,
	// whichever comes first. Values <= 1 disable batching entirely — every
	// transfer takes the classic single-Transfer path, byte-for-byte
	// identical to the pre-batching server (pinned by equivalence tests).
	BatchSize int
	// FlushInterval bounds how long a staged transfer may wait for its
	// batch to fill. Zero means 2 paper time units. Ignored when
	// BatchSize <= 1.
	FlushInterval sim.Time
	// StoreShards is the mailbox store's shard count; zero selects
	// mailstore.DefaultShards.
	StoreShards int
	// DataDir, when set, makes the mailbox store durable: every mutation is
	// WAL-logged under this directory and Kill/RestartFromDisk recovers
	// from it. Empty keeps the historical memory-only store, where a Kill
	// genuinely loses the buffered mail (the negative control).
	DataDir string
	// Fsync is the WAL fsync policy when DataDir is set.
	Fsync mailstore.FsyncMode
	// PlacementReroute makes a deposit transfer that arrives at a server no
	// longer in the recipient's authority list re-enter routing instead of
	// depositing blind. Online placement policies (internal/placement) move
	// users while transfers are in flight; without the re-check such a
	// transfer parks mail on a server no retrieval walk visits any more.
	// Off (the default), arrival behavior is byte-identical to the
	// pre-placement server, which static deployments rely on.
	PlacementReroute bool
	// SpreadRelay rotates the inter-region relay entry point per message.
	// §3.1.1: the relay function can be provided by any server of the
	// region; always dispatching to the region list's head builds a fixed
	// transit hot spot in front of whatever the placement policy chose.
	// Off (the default) keeps the historical head-first dispatch.
	SpreadRelay bool
}

// Server is a mail server process. Not safe for concurrent use; it runs on
// the simulation event loop.
type Server struct {
	id      graph.NodeID
	region  string
	net     *netsim.Network
	dir     *Directory
	regions *RegionMap

	retention    mail.Retention
	keepCopies   bool
	reroute      bool
	spreadRelay  bool
	retryTimeout sim.Time
	dataDir      string
	fsync        mailstore.FsyncMode
	storeShards  int
	killed       bool
	// walBase accumulates the WAL counters of stores replaced by
	// kill-restart cycles, so WALStats stays cumulative.
	walBase mailstore.WALStats

	store     *mailstore.Store
	online    map[names.Name]graph.NodeID
	nextSeq   uint64
	nextToken uint64
	pending   map[uint64]*pendingTransfer
	// rerouted remembers recipient copies this server already forwarded
	// under the placement-reroute path. Retries of the same transfer (our
	// ack racing the origin's timeout) must not each spawn another forward:
	// the first forward sits in the pending ledger with its own retries, and
	// under congestion the duplicates snowball into a transfer storm.
	rerouted map[rerouteKey]bool

	// Relay-batching state (inactive when batchSize <= 1): staged holds
	// per-destination batches being filled; inflight holds flushed batches
	// awaiting their TransferBatchAck.
	batchSize  int
	flushEvery sim.Time
	staged     map[graph.NodeID]*stagedBatch
	inflight   map[uint64]*inflightBatch
	nextBatch  uint64

	stats *obs.Registry
	trace *obs.Tracer // nil-safe; shared across the deployment when set
}

// rerouteKey identifies one recipient copy for reroute dedup.
type rerouteKey struct {
	id   mail.MessageID
	rcpt names.Name
}

// pendingTransfer is a queued server-to-server transfer awaiting its ack.
type pendingTransfer struct {
	kind       TransferKind
	msg        mail.Message
	recipient  names.Name
	candidates []graph.NodeID // servers to try, in order
	next       int            // index of the next candidate to try
	attempt    int
	timer      *sim.Event
}

// New creates a server and registers it on its network node.
func New(cfg Config) (*Server, error) {
	if cfg.Net == nil || cfg.Dir == nil || cfg.Regions == nil {
		return nil, errors.New("server: Net, Dir and Regions are required")
	}
	if cfg.Dir.Region() != cfg.Region {
		return nil, fmt.Errorf("server: directory covers region %q, server is in %q",
			cfg.Dir.Region(), cfg.Region)
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 8 * sim.Unit
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * sim.Unit
	}
	store := mailstore.New(cfg.StoreShards)
	if cfg.DataDir != "" {
		var err error
		store, err = mailstore.OpenOptions(mailstore.Options{
			Dir: cfg.DataDir, Shards: cfg.StoreShards, Fsync: cfg.Fsync,
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		id:           cfg.ID,
		region:       cfg.Region,
		net:          cfg.Net,
		dir:          cfg.Dir,
		regions:      cfg.Regions,
		retention:    cfg.Retention,
		keepCopies:   cfg.KeepCopies,
		reroute:      cfg.PlacementReroute,
		spreadRelay:  cfg.SpreadRelay,
		retryTimeout: cfg.RetryTimeout,
		dataDir:      cfg.DataDir,
		fsync:        cfg.Fsync,
		storeShards:  cfg.StoreShards,
		store:        store,
		online:       make(map[names.Name]graph.NodeID),
		pending:      make(map[uint64]*pendingTransfer),
		rerouted:     make(map[rerouteKey]bool),
		batchSize:    cfg.BatchSize,
		flushEvery:   cfg.FlushInterval,
		staged:       make(map[graph.NodeID]*stagedBatch),
		inflight:     make(map[uint64]*inflightBatch),
		stats:        obs.NewRegistry(),
		trace:        cfg.Trace,
	}
	if err := cfg.Net.Register(cfg.ID, s); err != nil {
		return nil, err
	}
	cfg.Regions.AddServer(cfg.Region, cfg.ID)
	return s, nil
}

// ID returns the server's node ID.
func (s *Server) ID() graph.NodeID { return s.id }

// Region returns the server's region.
func (s *Server) Region() string { return s.region }

// Stats returns the server's counters: "submissions", "deposits_local",
// "transfers_out", "forwards_in", "retries", "notifies", "cleanup_evicted".
func (s *Server) Stats() *obs.Registry { return s.stats }

// Up reports whether the server is currently up.
func (s *Server) Up() bool { return s.net.IsUp(s.id) }

// LastStart reports when the server last started or recovered — the
// LastStartTime[server] of §3.1.2c.
func (s *Server) LastStart() sim.Time {
	t, _ := s.net.LastStart(s.id)
	return t
}

// MailboxLen reports how many messages are buffered for a user here.
func (s *Server) MailboxLen(user names.Name) int { return s.store.Len(user) }

// StoredBytes reports the total buffered content bytes on this server. With
// the sharded store this is an O(shards) counter sum — the old per-call scan
// over every mailbox is gone.
func (s *Server) StoredBytes() int { return int(s.store.TotalBytes()) }

// Store exposes the server's sharded mailbox store.
func (s *Server) Store() *mailstore.Store { return s.store }

// WALStats reports the server's cumulative WAL write-path counters across
// kill-restart cycles (a restart swaps in a fresh store whose own counters
// start at zero); ok is false for memory-only servers.
func (s *Server) WALStats() (mailstore.WALStats, bool) {
	ws, ok := s.store.WALStats()
	if !ok {
		return mailstore.WALStats{}, false
	}
	ws.Add(s.walBase)
	return ws, true
}

// Receive implements netsim.Handler.
func (s *Server) Receive(env netsim.Envelope) {
	switch p := env.Payload.(type) {
	case SubmitRequest:
		s.handleSubmit(env.From, p)
	case Transfer:
		s.handleTransfer(p)
	case TransferAck:
		s.handleAck(p)
	case TransferBatch:
		s.handleTransferBatch(p)
	case TransferBatchAck:
		s.handleBatchAck(p)
	case Login:
		s.handleLogin(p)
	case Logout:
		delete(s.online, p.User)
	default:
		s.stats.Inc("unknown_payload")
	}
}

// Crashed implements netsim.Crasher: pending retry timers stop while down,
// and the batching fabric's staged and in-flight batches dissolve — their
// items stay ledgered in s.pending (stable storage) and are re-dispatched
// individually on recovery.
func (s *Server) Crashed(sim.Time) {
	for _, p := range s.pending {
		if p.timer != nil {
			s.net.Scheduler().Cancel(p.timer)
			p.timer = nil
		}
	}
	for target, b := range s.staged {
		if b.timer != nil {
			s.net.Scheduler().Cancel(b.timer)
		}
		delete(s.staged, target)
	}
	for tok, fb := range s.inflight {
		if fb.timer != nil {
			s.net.Scheduler().Cancel(fb.timer)
		}
		delete(s.inflight, tok)
	}
}

// Recovered implements netsim.Recoverer: queued transfers resume from stable
// storage. The hook also fires on reconnection (link restore) while the
// server is up, so any staged or in-flight batches dissolve first — their
// items are re-driven individually below, and a stale duplicate envelope
// would only waste traffic. Each transfer restarts its candidate walk at
// the head of the list: a recovery re-drive is a fresh delivery decision,
// and §3.1.2c wants the deposit at the first *active* authority server —
// resuming mid-rotation could park mail at a secondary while the primary
// is healthy, where no retrieval walk would ever look.
func (s *Server) Recovered(sim.Time) {
	for target, b := range s.staged {
		if b.timer != nil {
			s.net.Scheduler().Cancel(b.timer)
		}
		delete(s.staged, target)
	}
	for tok, fb := range s.inflight {
		if fb.timer != nil {
			s.net.Scheduler().Cancel(fb.timer)
		}
		delete(s.inflight, tok)
	}
	tokens := make([]uint64, 0, len(s.pending))
	for tok := range s.pending {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	for _, tok := range tokens {
		s.pending[tok].next = 0
		s.dispatch(tok)
	}
}

// handleSubmit accepts a message from a user interface, assigns its ID, and
// routes a copy to every recipient.
func (s *Server) handleSubmit(from graph.NodeID, req SubmitRequest) {
	msg := s.accept(req)
	// Ack the submitting host so the user interface learns the ID.
	_ = s.net.Send(s.id, from, SubmitAck{ID: msg.ID, Subject: msg.Subject})
	for _, rcpt := range msg.To {
		s.Route(msg, rcpt)
	}
}

// accept assigns the next message ID, stamps the submission, and counts it.
func (s *Server) accept(req SubmitRequest) mail.Message {
	s.nextSeq++
	msg := mail.Message{
		ID:          mail.MessageID{Node: s.id, Seq: s.nextSeq},
		From:        req.From,
		To:          append([]names.Name(nil), req.To...),
		Subject:     req.Subject,
		Body:        req.Body,
		SubmittedAt: s.net.Scheduler().Now(),
	}
	s.stats.Inc("submissions")
	s.trace.Stamp(msg.ID.String(), obs.StageSubmit, s.whereLabel())
	return msg
}

// Submit accepts a submission handed to the server in-process and returns the
// assigned message ID synchronously — the batch ingestion hook for drivers
// (internal/loadgen) that generate traffic at population scale. Going through
// the network path costs two scheduled events per message (SubmitRequest in,
// SubmitAck back) before delivery even starts; a closed-loop generator pushing
// 10⁵–10⁶ submissions would spend most of the event budget on that framing.
// Submit skips both: acceptance is the successful return (the commit point the
// no-loss audit ledgers against), and only the delivery pipeline itself —
// resolve, transfer, deposit, notify — runs on the scheduler. A down server
// rejects the submission with ErrDown, exactly as the network would have
// dropped the SubmitRequest.
func (s *Server) Submit(req SubmitRequest) (mail.MessageID, error) {
	if !s.Up() {
		return mail.MessageID{}, fmt.Errorf("%w: %d", ErrDown, s.id)
	}
	msg := s.accept(req)
	for _, rcpt := range msg.To {
		s.Route(msg, rcpt)
	}
	return msg.ID, nil
}

// SubmitBatch accepts many submissions in one call, stopping at the first
// failure. It returns the IDs of the accepted prefix; a short result with a
// non-nil error tells the caller exactly which submissions committed.
func (s *Server) SubmitBatch(reqs []SubmitRequest) ([]mail.MessageID, error) {
	ids := make([]mail.MessageID, 0, len(reqs))
	for _, req := range reqs {
		id, err := s.Submit(req)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Route sends one copy of msg toward one recipient, the name-resolution-and-
// forwarding step of §3.1.2b: local names are resolved against the regional
// directory and deposited at the recipient's first active authority server;
// non-local names are relayed to a server in the recipient's region.
func (s *Server) Route(msg mail.Message, rcpt names.Name) {
	if rcpt.Region == s.region {
		s.deliverLocal(msg, rcpt)
		return
	}
	candidates := s.regions.Servers(rcpt.Region)
	if len(candidates) == 0 {
		s.stats.Inc("unroutable")
		return
	}
	if s.spreadRelay && len(candidates) > 1 {
		rot := int(msg.ID.Seq % uint64(len(candidates)))
		rotated := make([]graph.NodeID, 0, len(candidates))
		rotated = append(rotated, candidates[rot:]...)
		rotated = append(rotated, candidates[:rot]...)
		candidates = rotated
	}
	s.trace.Stamp(msg.ID.String(), obs.StageRelay, s.whereLabel())
	s.enqueue(TransferForward, msg, rcpt, candidates)
}

// deliverLocal resolves a local recipient and deposits the message at the
// first active authority server ("mail will be deposited in the first
// active server from the list", §3.1.2c).
func (s *Server) deliverLocal(msg mail.Message, rcpt names.Name) {
	list := s.dir.Resolve(rcpt)
	if len(list) == 0 {
		// A distribution list fans out to its members (§4.3 group naming).
		if members, ok := s.dir.Group(rcpt); ok {
			if msg.Expansions >= MaxGroupExpansions {
				// Cyclic group definitions (A ∈ B, B ∈ A) would loop mail
				// between regions forever without this cap.
				s.stats.Inc("group_loops_dropped")
				return
			}
			s.stats.Inc("group_expansions")
			expanded := msg
			expanded.Expansions++
			for _, member := range members {
				if member == rcpt {
					continue // a list must not contain itself
				}
				s.Route(expanded, member)
			}
			return
		}
		// The user may have migrated away (§3.1.4): follow the redirect.
		if fwd, ok := s.dir.Redirect(rcpt); ok {
			s.stats.Inc("redirects")
			s.Route(msg, fwd)
			return
		}
		s.stats.Inc("unresolvable")
		return
	}
	s.trace.Stamp(msg.ID.String(), obs.StageResolve, s.whereLabel())
	// If this server is the first *active* authority server, deposit
	// without network traffic.
	for _, cand := range list {
		if !s.net.IsUp(cand) {
			continue
		}
		if cand == s.id {
			s.depositLocal(msg, rcpt)
			return
		}
		break
	}
	s.enqueue(TransferDeposit, msg, rcpt, list)
}

// depositLocal buffers the message here and notifies the recipient if they
// are logged on.
func (s *Server) depositLocal(msg mail.Message, rcpt names.Name) {
	now := s.net.Scheduler().Now()
	fresh, evicted := false, 0
	s.store.Update(rcpt, func(mb *mail.Mailbox) {
		fresh = mb.Deposit(msg, now)
		if fresh {
			evicted = len(mb.Cleanup(s.retention, now))
		}
	})
	if !fresh {
		s.stats.Inc("duplicate_deposits")
		return
	}
	s.stats.Inc("deposits_local")
	s.trace.Stamp(msg.ID.String(), obs.StageDeposit, s.whereLabel())
	if evicted > 0 {
		s.stats.Add("cleanup_evicted", int64(evicted))
	}
	if host, ok := s.online[rcpt]; ok {
		s.stats.Inc("notifies")
		s.trace.Stamp(msg.ID.String(), obs.StageNotify, s.whereLabel())
		_ = s.net.Send(s.id, host, Notify{User: rcpt, ID: msg.ID, Server: s.id})
	}
}

// enqueue creates a pending transfer against the candidate list and either
// dispatches its first attempt immediately (batchSize <= 1: the classic
// single-Transfer protocol, unchanged) or stages it into the per-destination
// batch for coalesced delivery.
func (s *Server) enqueue(kind TransferKind, msg mail.Message, rcpt names.Name, candidates []graph.NodeID) {
	s.nextToken++
	tok := s.nextToken
	s.pending[tok] = &pendingTransfer{
		kind:       kind,
		msg:        msg,
		recipient:  rcpt,
		candidates: append([]graph.NodeID(nil), candidates...),
	}
	if s.batchSize <= 1 {
		s.dispatch(tok)
		return
	}
	s.stage(tok)
}

// dispatch sends the pending transfer to its next candidate and arms the
// retry timer. Candidates are tried cyclically, preferring ones that look
// up; if none look up the next in order is tried anyway (its state may be
// stale knowledge).
func (s *Server) dispatch(tok uint64) {
	p, ok := s.pending[tok]
	if !ok || !s.Up() {
		return
	}
	target := s.pickCandidate(p)
	p.attempt++
	if p.attempt > 1 {
		s.stats.Inc("retries")
	}
	s.stats.Inc("transfers_out")
	s.stats.Inc("relay_envelopes") // one physical envelope per single transfer
	_ = s.net.Send(s.id, target, Transfer{
		Kind: p.kind, Msg: p.msg, Recipient: p.recipient,
		Origin: s.id, Token: tok, Attempt: p.attempt,
	})
	p.timer = s.net.Scheduler().After(s.retryTimeout, func() {
		if _, still := s.pending[tok]; still && s.Up() {
			s.dispatch(tok)
		}
	})
}

// pickCandidate chooses the next candidate, preferring up servers starting
// from p.next, wrapping around. The server itself is a valid candidate
// (e.g. after its own recovery); self-sends deliver locally at zero cost.
func (s *Server) pickCandidate(p *pendingTransfer) graph.NodeID {
	n := len(p.candidates)
	for i := 0; i < n; i++ {
		cand := p.candidates[(p.next+i)%n]
		if s.net.IsUp(cand) {
			p.next = (p.next + i + 1) % n
			return cand
		}
	}
	// Nothing looks up; advance blindly and let the timeout drive retries.
	cand := p.candidates[p.next%n]
	p.next = (p.next + 1) % n
	return cand
}

// handleTransfer processes a server-to-server transfer and acks it.
func (s *Server) handleTransfer(tr Transfer) {
	_ = s.net.Send(s.id, tr.Origin, TransferAck{Token: tr.Token})
	switch tr.Kind {
	case TransferDeposit:
		if s.reroute && s.misplacedDeposit(tr.Recipient) {
			key := rerouteKey{id: tr.Msg.ID, rcpt: tr.Recipient}
			switch {
			case s.rerouted[key]:
				// A retry of a copy already forwarded (our ack raced the
				// origin's timeout). The first forward is in the pending
				// ledger with its own retries; another would snowball.
				s.stats.Inc("reroute_retries_dropped")
				return
			case tr.Msg.Expansions >= MaxGroupExpansions:
				// A migration storm could bounce a copy between stale lists
				// forever; past the cap, deposit here — the migration drain
				// or redirect grace period picks it up.
				s.stats.Inc("reroute_loops_dropped")
			default:
				s.stats.Inc("deposit_reroutes")
				s.rerouted[key] = true
				m := tr.Msg
				m.Expansions++
				s.Route(m, tr.Recipient)
				return
			}
		}
		s.depositLocal(tr.Msg, tr.Recipient)
	case TransferForward:
		s.stats.Inc("forwards_in")
		if tr.Recipient.Region != s.region {
			// Mis-routed (e.g. stale region map): route onward.
			s.Route(tr.Msg, tr.Recipient)
			return
		}
		s.deliverLocal(tr.Msg, tr.Recipient)
	}
}

// misplacedDeposit reports whether a deposit arriving here is for a user
// whose current authority list no longer includes this server — i.e. the
// transfer was addressed under a placement the policy has since changed.
// Unknown users (empty list: redirects mid-grace, group names) are not
// misplaced; deliverLocal handles those.
func (s *Server) misplacedDeposit(rcpt names.Name) bool {
	list := s.dir.Resolve(rcpt)
	if len(list) == 0 || list[0] == s.id {
		return false
	}
	for _, cand := range list {
		if cand == s.id {
			// A backup. §3.1.2b failover deposits are legitimate while the
			// primary is unreachable — the agent observes the outage and its
			// next walk polls the whole list. But a failover that lands
			// AFTER the primary recovered (the origin gave up during an
			// outage the agent never saw; congestion delivered the fallback
			// late) would strand: the walk stops at the live primary. Treat
			// it as misplaced so it re-routes to the primary.
			return s.net.IsUp(list[0])
		}
	}
	return true
}

func (s *Server) handleAck(ack TransferAck) {
	p, ok := s.pending[ack.Token]
	if !ok {
		return
	}
	if p.timer != nil {
		s.net.Scheduler().Cancel(p.timer)
	}
	delete(s.pending, ack.Token)
}

func (s *Server) handleLogin(l Login) {
	s.online[l.User] = l.Host
	// "...or notify him as soon as he is connected to the system" — tell a
	// connecting user about buffered mail.
	var first mail.MessageID
	ok := s.store.View(l.User, func(mb *mail.Mailbox) {
		if mb.Len() > 0 {
			first = mb.Peek()[0].ID
		}
	})
	if ok && !first.IsZero() {
		s.stats.Inc("notifies")
		s.trace.Stamp(first.String(), obs.StageNotify, s.whereLabel())
		_ = s.net.Send(s.id, l.Host, Notify{User: l.User, ID: first, Server: s.id})
	}
}

// PendingTransfers reports how many transfers are queued awaiting acks.
func (s *Server) PendingTransfers() int { return len(s.pending) }

// Kill models a process death — the failure mode Crash deliberately does
// not: the network node goes down AND the in-memory mailbox state is
// destroyed. With DataDir the store is closed (every acknowledged mutation
// is already in the WAL); without it the store is replaced by an empty one,
// which is exactly the loss durability exists to prevent (the negative
// control in the chaos tests). The pending-transfer ledger is the
// simulation's separate stable storage for in-flight transfers and survives
// either way. Idempotent.
func (s *Server) Kill() error {
	if s.killed {
		return nil
	}
	s.killed = true
	s.net.Crash(s.id)
	if s.dataDir != "" {
		return s.store.Close()
	}
	s.store = mailstore.New(s.storeShards)
	return nil
}

// RestartFromDisk brings a killed server back. With DataDir the mailbox
// store is recovered by replaying its snapshot+WAL segments; without it the
// server restarts empty. The netsim Recover stamps LastStartTime — the
// recovered store's own stamp backs the same §3.1.2c comparison on the live
// transport — and fires the Recovered hook, re-driving the pending ledger.
// Idempotent.
func (s *Server) RestartFromDisk() error {
	if !s.killed {
		return nil
	}
	if s.dataDir != "" {
		st, err := mailstore.OpenOptions(mailstore.Options{
			Dir: s.dataDir, Shards: s.storeShards, Fsync: s.fsync,
		})
		if err != nil {
			return err
		}
		// The fresh store's counters start at zero; fold the outgoing
		// store's totals into the base so WALStats stays cumulative.
		if ws, ok := s.store.WALStats(); ok {
			s.walBase.Add(ws)
		}
		s.store = st
	}
	s.killed = false
	s.net.Recover(s.id)
	return nil
}

// Close syncs and closes the durable store; no-op for memory stores.
func (s *Server) Close() error { return s.store.Close() }

// Evacuate drains every mailbox here and re-routes the buffered messages
// through the current directory — the hand-off step of a §3.1.3c server
// deletion ("notifies all other servers before it is removed"). Call it
// after the directory stops listing this server as an authority, so each
// message lands at its recipient's remaining authority servers; messages
// re-routed while this server is still listed would deposit right back.
// Returns how many messages were re-routed.
func (s *Server) Evacuate() int {
	n := 0
	for _, u := range s.store.Users() { // sorted: deterministic hand-off order
		for _, m := range s.store.Drain(u) {
			s.Route(m.Message, u)
			n++
		}
	}
	return n
}

// CheckMail returns the user's buffered messages — removing them, or, with
// KeepCopies, retaining read-marked archive copies subject to the retention
// policy (§3.1.2c). It models the synchronous retrieve step of the GetMail
// procedure ("get mail from server") and fails when the server is down —
// the caller is expected to have checked liveness, but a race-free contract
// beats a convention.
func (s *Server) CheckMail(user names.Name) ([]mail.Stored, error) {
	if !s.Up() {
		return nil, fmt.Errorf("%w: %d", ErrDown, s.id)
	}
	var out []mail.Stored
	evicted := 0
	now := s.net.Scheduler().Now()
	ok := s.store.UpdateExisting(user, func(mb *mail.Mailbox) {
		if !s.keepCopies {
			out = mb.Drain()
			return
		}
		for _, m := range mb.Peek() {
			if m.Read {
				continue // already retrieved; retained as archive copy
			}
			mb.MarkRead(m.ID)
			out = append(out, m)
		}
		evicted = len(mb.Cleanup(s.retention, now))
	})
	if !ok {
		return nil, nil
	}
	if evicted > 0 {
		s.stats.Add("cleanup_evicted", int64(evicted))
	}
	if len(out) > 0 {
		// Paired with "deposits_local" this gives the queue depth the JSQ(d)
		// placement policy samples: deposits_local − retrieved_msgs.
		s.stats.Add("retrieved_msgs", int64(len(out)))
	}
	s.stampRetrieved(out)
	return out, nil
}

// DrainMailbox empties the user's mailbox for a placement-migration
// handover, regardless of the archive (KeepCopies) option: this server is
// leaving the user's authority list, and a copy it retains is a copy no
// retrieval walk will ever visit. Copies the recipient already has — per
// alreadySeen, typically the user agent's duplicate-suppression set; these
// are straggler re-routed retries — are removed but not returned and not
// stamped: they are not deliveries, and a second retrieve stamp would
// double-sample the latency histograms with a bogus sojourn. All drained
// copies still count toward "retrieved_msgs" so the qdepth gauge
// (deposits − retrievals) returns to zero for the emptied mailbox.
func (s *Server) DrainMailbox(user names.Name, alreadySeen func(mail.MessageID) bool) []mail.Stored {
	var out []mail.Stored
	ok := s.store.UpdateExisting(user, func(mb *mail.Mailbox) {
		out = mb.Drain()
	})
	if !ok || len(out) == 0 {
		return nil
	}
	fresh := out[:0]
	for _, m := range out {
		if m.Read || (alreadySeen != nil && alreadySeen(m.ID)) {
			s.stats.Inc("drain_stale_discarded")
			continue
		}
		fresh = append(fresh, m)
	}
	s.stats.Add("retrieved_msgs", int64(len(out)))
	s.stampRetrieved(fresh)
	return fresh
}

// stampRetrieved closes the lifecycle span of each collected message.
func (s *Server) stampRetrieved(msgs []mail.Stored) {
	if s.trace == nil {
		return
	}
	where := s.whereLabel()
	for _, m := range msgs {
		s.trace.Stamp(m.ID.String(), obs.StageRetrieve, where)
	}
}

// whereLabel names this server in span events, matching the per-entity
// instrument prefix convention ("s<node>").
func (s *Server) whereLabel() string { return fmt.Sprintf("s%d", s.id) }

// ArchivedCount reports how many retained (read) copies a user's mailbox
// holds under the KeepCopies option.
func (s *Server) ArchivedCount(user names.Name) int {
	n := 0
	s.store.View(user, func(mb *mail.Mailbox) {
		for _, m := range mb.Peek() {
			if m.Read {
				n++
			}
		}
	})
	return n
}

// PeekMail returns the user's buffered messages without removing them.
func (s *Server) PeekMail(user names.Name) ([]mail.Stored, error) {
	if !s.Up() {
		return nil, fmt.Errorf("%w: %d", ErrDown, s.id)
	}
	return s.store.Peek(user), nil
}

// LookupAuthority answers a name-service query: the user's authority list
// from this server's replicated directory (§3.1.2a: "another method to
// establish connection between a user and a server is through a name
// server"). It fails when the server is down.
func (s *Server) LookupAuthority(user names.Name) ([]graph.NodeID, error) {
	if !s.Up() {
		return nil, fmt.Errorf("%w: %d", ErrDown, s.id)
	}
	s.stats.Inc("name_queries")
	list := s.dir.Resolve(user)
	if len(list) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrUnknownUser, user)
	}
	return list, nil
}
