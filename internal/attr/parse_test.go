package attr

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseQueryForms(t *testing.T) {
	cases := []struct {
		in   string
		want []Predicate
	}{
		{"city=boston", []Predicate{{TypeCity, OpEquals, "boston"}}},
		{"name ^= jo", []Predicate{{TypeName, OpPrefix, "jo"}}},
		{"state?=ma|nh|vt", []Predicate{{TypeState, OpOneOf, "ma|nh|vt"}}},
		{"alias~jhonson", []Predicate{{TypeAlias, OpFuzzy, "jhonson"}}},
		{
			"expertise=databases, city ^= new",
			[]Predicate{{TypeExpertise, OpEquals, "databases"}, {TypeCity, OpPrefix, "new"}},
		},
		// The earliest operator splits; later operator characters belong to
		// the pattern.
		{"city=st=paul", []Predicate{{TypeCity, OpEquals, "st=paul"}}},
		{"name~a^=b", []Predicate{{TypeName, OpFuzzy, "a^=b"}}},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(q.Predicates, c.want) {
			t.Fatalf("ParseQuery(%q) = %v, want %v", c.in, q.Predicates, c.want)
		}
	}
}

func TestParseQueryRejects(t *testing.T) {
	bad := []string{
		"",                           // no predicates
		"city",                       // no operator
		"=boston",                    // no type
		"city=",                      // no pattern
		"city=a,",                    // trailing empty predicate
		" =x, city=b",                // empty type in conjunction
		"a^=b, c",                    // second predicate missing operator
		"x^~y",                       // type would end in '^' (ambiguous canonical form)
		strings.Repeat("a=b,", 2048), // over the length cap
	}
	for _, in := range bad {
		if _, err := ParseQuery(in); err == nil {
			t.Fatalf("ParseQuery(%q) succeeded, want error", in)
		}
	}
}

func TestParseQueryRoundTrip(t *testing.T) {
	ins := []string{
		"city=boston",
		"name ^= jo ,  state?=ma|nh",
		"alias~smiht, expertise=mail systems",
	}
	for _, in := range ins {
		q, err := ParseQuery(in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", in, err)
		}
		canon := q.String()
		q2, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("reparse of %q: %v", canon, err)
		}
		if !reflect.DeepEqual(q.Predicates, q2.Predicates) {
			t.Fatalf("round trip of %q: %v != %v", in, q.Predicates, q2.Predicates)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("canonical form of %q not fixed: %q then %q", in, canon, got)
		}
	}
}

func TestParsedQueryMatches(t *testing.T) {
	p := &Profile{}
	p.Add(TypeCity, "Boston", Public).
		Add(TypeExpertise, "Databases", Public).
		Add(TypeName, "Johnson", Public)
	q, err := ParseQuery("city=boston, name~Jonson")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Matches(p) {
		t.Fatal("parsed query should match the profile")
	}
	q, err = ParseQuery("city=boston, expertise=networks")
	if err != nil {
		t.Fatal(err)
	}
	if q.Matches(p) {
		t.Fatal("conjunction with a failing predicate must not match")
	}
}
