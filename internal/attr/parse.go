package attr

import (
	"fmt"
	"strings"
)

// The predicate grammar, the sender-facing surface of §3.3's "send mail to
// everyone matching these attributes":
//
//	query     = predicate *( "," predicate )
//	predicate = type op pattern
//	op        = "=" | "^=" | "?=" | "~"
//
// "=" is exact match, "^=" prefix, "?=" any of the |-separated
// alternatives, and "~" fuzzy match within the misspelling budget. Type and
// pattern are trimmed of surrounding space; the earliest operator
// occurrence splits the predicate, so patterns may themselves contain
// operator characters ("city=st. paul=mn" has type "city"). Commas cannot
// appear in patterns — they always separate predicates.
const maxQueryLen = 4096

// opToken renders an operator in query syntax (Op.String is the
// human-readable form used in error text, not the grammar).
func opToken(o Op) string {
	switch o {
	case OpEquals:
		return "="
	case OpPrefix:
		return "^="
	case OpOneOf:
		return "?="
	case OpFuzzy:
		return "~"
	default:
		return "="
	}
}

// String renders the predicate in query syntax.
func (p Predicate) String() string {
	return string(p.Type) + opToken(p.Op) + p.Pattern
}

// String renders the query in canonical syntax: predicates in declaration
// order, ", "-joined. ParseQuery(q.String()) reproduces q's predicates for
// any query ParseQuery itself produced.
func (q Query) String() string {
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// ParseQuery parses the comma-separated predicate syntax into a validated
// query. The querier's groups are not part of the grammar; set them on the
// returned query before matching against Restricted attributes.
func ParseQuery(s string) (Query, error) {
	if len(s) > maxQueryLen {
		return Query{}, fmt.Errorf("attr: query longer than %d bytes", maxQueryLen)
	}
	var q Query
	for _, part := range strings.Split(s, ",") {
		p, err := parsePredicate(part)
		if err != nil {
			return Query{}, err
		}
		q.Predicates = append(q.Predicates, p)
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MarshalText renders the query in its canonical text form — the same
// syntax ParseQuery reads — making attr.Query the unit that crosses
// machine boundaries (the wire `query` verb, tooling) instead of ad-hoc
// strings. QuerierGroups are transport metadata, not part of the grammar,
// and are not serialized; carry them beside the text when they matter.
// Marshalling a query that did not come from ParseQuery may fail to
// round-trip if its patterns embed commas or its types embed operators;
// UnmarshalText rejects those forms, so a Marshal/Unmarshal pair either
// reproduces the predicates exactly or errors — it never silently reshapes
// them.
func (q Query) MarshalText() ([]byte, error) {
	if len(q.String()) > maxQueryLen {
		return nil, fmt.Errorf("attr: query longer than %d bytes", maxQueryLen)
	}
	return []byte(q.String()), nil
}

// UnmarshalText parses the canonical text form in place. The fixed point
// FuzzPredicateQuery pins — parse, render, reparse yields identical
// predicates — holds for this pair by construction, since both sides defer
// to ParseQuery/String.
func (q *Query) UnmarshalText(text []byte) error {
	parsed, err := ParseQuery(string(text))
	if err != nil {
		return err
	}
	groups := q.QuerierGroups
	*q = parsed
	q.QuerierGroups = groups
	return nil
}

// parsePredicate splits one predicate at its earliest operator occurrence.
func parsePredicate(s string) (Predicate, error) {
	for i := 0; i < len(s); i++ {
		var op Op
		opLen := 1
		switch {
		case (s[i] == '^' || s[i] == '?') && i+1 < len(s) && s[i+1] == '=':
			opLen = 2
			if s[i] == '^' {
				op = OpPrefix
			} else {
				op = OpOneOf
			}
		case s[i] == '=':
			op = OpEquals
		case s[i] == '~':
			op = OpFuzzy
		default:
			continue
		}
		typ := strings.TrimSpace(s[:i])
		pat := strings.TrimSpace(s[i+opLen:])
		if typ == "" {
			return Predicate{}, fmt.Errorf("attr: predicate %q has no type", s)
		}
		// A type ending in '^' or '?' would merge with a following "=" when
		// rendered back ("a^" + "=" reads as "a" + "^="), so the canonical
		// form would not round-trip. Reject the ambiguity outright.
		if last := typ[len(typ)-1]; last == '^' || last == '?' {
			return Predicate{}, fmt.Errorf("attr: predicate type %q ends in %q", typ, string(last))
		}
		if pat == "" {
			return Predicate{}, fmt.Errorf("attr: predicate %q has no pattern", s)
		}
		return Predicate{Type: Type(typ), Op: op, Pattern: pat}, nil
	}
	return Predicate{}, fmt.Errorf("attr: predicate %q has no operator", s)
}
