package attr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/largemail/largemail/internal/names"
)

func profAlice() *Profile {
	p := &Profile{User: names.MustParse("east.h1.alice"), Groups: []string{"acme"}}
	p.Add(TypeName, "Alice Liddell", Public).
		Add(TypeNickname, "Al", Public).
		Add(TypeAlias, "Alyce", Public).
		Add(TypeOrganization, "ACME", Public).
		Add(TypeExpertise, "distributed systems", Public).
		Add(TypeCity, "Boston", Restricted).
		Add(TypeNationality, "secret", Hidden)
	return p
}

func TestQueryValidate(t *testing.T) {
	if err := (Query{}).Validate(); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty query err = %v", err)
	}
	q := Query{Predicates: []Predicate{{Type: "", Op: OpEquals, Pattern: "x"}}}
	if err := q.Validate(); err == nil {
		t.Error("empty type accepted")
	}
	q = Query{Predicates: []Predicate{{Type: TypeName, Op: OpEquals, Pattern: ""}}}
	if err := q.Validate(); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestMatchOps(t *testing.T) {
	p := profAlice()
	cases := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"equals hit", Predicate{TypeOrganization, OpEquals, "acme"}, true},
		{"equals case-insensitive", Predicate{TypeName, OpEquals, "ALICE LIDDELL"}, true},
		{"equals miss", Predicate{TypeOrganization, OpEquals, "other"}, false},
		{"prefix hit", Predicate{TypeExpertise, OpPrefix, "distributed"}, true},
		{"prefix miss", Predicate{TypeExpertise, OpPrefix, "systems"}, false},
		{"one-of hit", Predicate{TypeNickname, OpOneOf, "bob|al|cal"}, true},
		{"one-of miss", Predicate{TypeNickname, OpOneOf, "bob|cal"}, false},
		{"fuzzy misspelling", Predicate{TypeName, OpFuzzy, "Alice Lidell"}, true}, // 1 deletion
		{"fuzzy via alias", Predicate{TypeAlias, OpFuzzy, "Alycee"}, true},
		{"fuzzy too far", Predicate{TypeName, OpFuzzy, "Bob"}, false},
		{"wrong type", Predicate{TypeCountry, OpEquals, "acme"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := Query{Predicates: []Predicate{c.pred}}
			if got := q.Matches(p); got != c.want {
				t.Errorf("Matches(%+v) = %v, want %v", c.pred, got, c.want)
			}
		})
	}
}

func TestConjunction(t *testing.T) {
	p := profAlice()
	q := Query{Predicates: []Predicate{
		{TypeOrganization, OpEquals, "acme"},
		{TypeExpertise, OpPrefix, "distributed"},
	}}
	if !q.Matches(p) {
		t.Error("conjunction of satisfied predicates failed")
	}
	q.Predicates = append(q.Predicates, Predicate{TypeCountry, OpEquals, "US"})
	if q.Matches(p) {
		t.Error("conjunction with unsatisfied predicate matched")
	}
}

func TestVisibility(t *testing.T) {
	p := profAlice()
	city := Predicate{TypeCity, OpEquals, "boston"}

	// Restricted attribute: invisible to outsiders...
	if (Query{Predicates: []Predicate{city}}).Matches(p) {
		t.Error("restricted attribute matched for group-less querier")
	}
	// ...visible to members of a shared group.
	q := Query{Predicates: []Predicate{city}, QuerierGroups: []string{"acme"}}
	if !q.Matches(p) {
		t.Error("restricted attribute did not match for group member")
	}
	// Hidden attributes never match.
	h := Query{
		Predicates:    []Predicate{{TypeNationality, OpEquals, "secret"}},
		QuerierGroups: []string{"acme"},
	}
	if h.Matches(p) {
		t.Error("hidden attribute matched")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Error(err)
	}
	// Triangle inequality on short ASCII strings.
	tri := func(a, b, c uint16) bool {
		sa, sb, sc := word(a), word(b), word(c)
		return Levenshtein(sa, sc) <= Levenshtein(sa, sb)+Levenshtein(sb, sc)
	}
	if err := quick.Check(tri, cfg); err != nil {
		t.Error(err)
	}
}

func word(x uint16) string {
	letters := "abcde"
	out := make([]byte, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, letters[int(x)%len(letters)])
		x /= uint16(len(letters))
	}
	return string(out)
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Put(profAlice()); err != nil {
		t.Fatal(err)
	}
	bob := &Profile{User: names.MustParse("east.h2.bob")}
	bob.Add(TypeOrganization, "ACME", Public).Add(TypeExpertise, "databases", Public)
	if err := r.Put(bob); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	got, err := r.Search(Query{Predicates: []Predicate{{TypeOrganization, OpEquals, "acme"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("Search = %v, want both users", got)
	}
	if got[0].String() > got[1].String() {
		t.Error("Search results not sorted")
	}
	got, _ = r.Search(Query{Predicates: []Predicate{{TypeExpertise, OpPrefix, "data"}}})
	if len(got) != 1 || got[0].User != "bob" {
		t.Errorf("Search = %v, want bob only", got)
	}
	if _, err := r.Search(Query{}); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty search err = %v", err)
	}
	r.Remove(bob.User)
	r.Remove(bob.User) // idempotent
	if r.Len() != 1 {
		t.Error("Remove failed")
	}
	if _, ok := r.Get(bob.User); ok {
		t.Error("removed profile still present")
	}
}

func TestRegistryPutValidatesAndCopies(t *testing.T) {
	r := NewRegistry()
	bad := &Profile{User: names.Name{Region: "x"}}
	if err := r.Put(bad); err == nil {
		t.Error("invalid user name accepted")
	}
	p := profAlice()
	if err := r.Put(p); err != nil {
		t.Fatal(err)
	}
	p.Attrs[0].Value = "mutated"
	stored, _ := r.Get(p.User)
	if stored.Attrs[0].Value == "mutated" {
		t.Error("Put aliased caller's attribute slice")
	}
}

func TestDirectoryLookupScenario(t *testing.T) {
	// §3.3-i: "users are allowed to provide aliases, nicknames or some
	// possible misspellings of the names. Together with some other
	// information of the intended recipients such as organization and
	// location."
	r := NewRegistry()
	r.Put(profAlice())
	q := Query{Predicates: []Predicate{
		{TypeName, OpFuzzy, "alise liddell"}, // misspelled
		{TypeOrganization, OpEquals, "acme"},
	}}
	got, err := r.Search(q)
	if err != nil || len(got) != 1 {
		t.Errorf("fuzzy directory lookup = %v, %v", got, err)
	}
}

func TestVisibilityString(t *testing.T) {
	for v, want := range map[Visibility]string{
		Public: "public", Restricted: "restricted", Hidden: "hidden",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func TestOpString(t *testing.T) {
	for o, want := range map[Op]string{
		OpEquals: "=", OpPrefix: "prefix", OpOneOf: "one-of", OpFuzzy: "~",
	} {
		if o.String() != want {
			t.Errorf("Op %d String = %q, want %q", o, o.String(), want)
		}
	}
}
