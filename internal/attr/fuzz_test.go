package attr

import (
	"reflect"
	"strings"
	"testing"

	"github.com/largemail/largemail/internal/names"
)

// FuzzPredicateQuery drives the predicate parser and matcher with arbitrary
// query strings. For any input the parser accepts, the query must validate,
// render to a canonical form that reparses to the same predicates (with the
// canonical form a fixed point), and match deterministically against a
// fixed profile set without panicking — across every operator, including
// the edit-distance alias match.
func FuzzPredicateQuery(f *testing.F) {
	seeds := []string{
		"city=boston",
		"name^=jo",
		"state?=ma|nh|vt",
		"alias~jhonson",
		"expertise=databases, city^=new",
		"interest ?= sailing | chess ,  name ~ smiht",
		"org-type=university, country=us, job-title^=prof",
		"city=st=paul",
		"a=b,c=d,e=f",
		"=x",
		"x=",
		"x^~y",
		"no operator here",
		"nickname~x, nickname~x",
		"content=budget",
		"content=budget, interest=g3",
		"content~ofsite",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	profiles := fuzzProfiles()
	f.Fuzz(func(t *testing.T, in string) {
		q, err := ParseQuery(in)
		if err != nil {
			return // rejected input: nothing further to hold
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("parsed query fails Validate: %v (input %q)", err, in)
		}
		for _, p := range q.Predicates {
			if strings.Contains(string(p.Type), ",") || strings.Contains(p.Pattern, ",") {
				t.Fatalf("comma leaked into predicate %v (input %q)", p, in)
			}
		}
		canon := q.String()
		q2, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v (input %q)", canon, err, in)
		}
		if !reflect.DeepEqual(q.Predicates, q2.Predicates) {
			t.Fatalf("reparse changed predicates: %v != %v (input %q)", q.Predicates, q2.Predicates, in)
		}
		if again := q2.String(); again != canon {
			t.Fatalf("canonical form not a fixed point: %q then %q (input %q)", canon, again, in)
		}
		// MarshalText/UnmarshalText is the same fixed point: marshalling
		// yields the canonical form, and unmarshalling it reproduces the
		// predicates exactly.
		text, err := q.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText on parsed query: %v (input %q)", err, in)
		}
		if string(text) != canon {
			t.Fatalf("MarshalText %q != canonical %q (input %q)", text, canon, in)
		}
		var q3 Query
		if err := q3.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText of canonical form %q: %v (input %q)", text, err, in)
		}
		if !reflect.DeepEqual(q.Predicates, q3.Predicates) {
			t.Fatalf("text round trip changed predicates: %v != %v (input %q)", q.Predicates, q3.Predicates, in)
		}
		// The planner must be total and consistent: probe terms only on the
		// pruned route, and every probe term a normalized single token.
		plan := PlanQuery(q)
		if (plan.Route == RoutePruned) != (len(plan.Terms) > 0) {
			t.Fatalf("plan route/terms inconsistent: %v %v (input %q)", plan.Route, plan.Terms, in)
		}
		// Matching must be total and deterministic, visibility honoured.
		q.QuerierGroups = []string{"staff"}
		for _, p := range profiles {
			m1, m2 := q.Matches(p), q.Matches(p)
			if m1 != m2 {
				t.Fatalf("nondeterministic match for %v (input %q)", p.User, in)
			}
		}
	})
}

func fuzzProfiles() []*Profile {
	a := &Profile{User: names.Name{Region: "R1", Host: "h1", User: "alice"}, Groups: []string{"staff"}}
	a.Add(TypeName, "Johnson", Public).
		Add(TypeAlias, "Jonson", Public).
		Add(TypeCity, "Boston", Public).
		Add(TypeExpertise, "Databases", Restricted)
	b := &Profile{User: names.Name{Region: "R1", Host: "h2", User: "bob"}}
	b.Add(TypeName, "Smith", Public).
		Add(TypeState, "MA", Public).
		Add(TypeInterest, "sailing", Hidden)
	c := &Profile{User: names.Name{Region: "R2", Host: "h3", User: "carol"}, Groups: []string{"faculty"}}
	c.Add(TypeName, "st=paul resident", Public).
		Add(TypeCity, "St. Paul", Public).
		Add(TypeJobTitle, "professor", Restricted)
	return []*Profile{a, b, c}
}
