// Package attr implements the attribute-based naming of §3.3: users are
// identified "by attributes instead of only by precise names", enabling
// directory look-up (including alias and misspelling tolerance), selective
// search, and mass distribution.
//
// "Each attribute has a type and a value. The 'type' indicates the format
// and the meaning of the value field." Profiles collect a user's attributes;
// a Query is a conjunction of predicates over them. Because "users must have
// the option to limit the access to their personal information to specific
// groups", every attribute carries a visibility setting that the matcher
// enforces against the querier's group memberships.
package attr

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/largemail/largemail/internal/names"
)

// Type is an attribute type from the paper's catalogue (§3.3.1): "names,
// nicknames, aliases, commonly misspelled names, nationality, ..., job
// title, type of job, organization, ..., expertise/specialty, experience,
// interests, and hobbies."
type Type string

// Attribute types used by the bundled examples and experiments. The set is
// open: any Type string is legal as long as queries and profiles agree.
const (
	TypeName         Type = "name"
	TypeNickname     Type = "nickname"
	TypeAlias        Type = "alias" // includes common misspellings
	TypeOrganization Type = "organization"
	TypeOrgType      Type = "org-type"
	TypeJobTitle     Type = "job-title"
	TypeCity         Type = "city"
	TypeState        Type = "state"
	TypeCountry      Type = "country"
	TypeExpertise    Type = "expertise"
	TypeInterest     Type = "interest"
	TypeNationality  Type = "nationality"
)

// Visibility controls who may match against an attribute.
type Visibility int

const (
	// Public attributes match for every querier.
	Public Visibility = iota + 1
	// Restricted attributes match only for queriers sharing one of the
	// owner's groups.
	Restricted
	// Hidden attributes never match; the owner keeps them for their own
	// records.
	Hidden
)

func (v Visibility) String() string {
	switch v {
	case Public:
		return "public"
	case Restricted:
		return "restricted"
	case Hidden:
		return "hidden"
	default:
		return fmt.Sprintf("Visibility(%d)", int(v))
	}
}

// Attribute is one typed, access-controlled fact about a user.
type Attribute struct {
	Type       Type
	Value      string
	Visibility Visibility
}

// Profile is a user's attribute record plus the groups that may see their
// restricted attributes.
type Profile struct {
	User   names.Name
	Attrs  []Attribute
	Groups []string // organizations/groups whose members may see Restricted attributes
}

// Add appends an attribute (convenience for building profiles).
func (p *Profile) Add(t Type, value string, vis Visibility) *Profile {
	p.Attrs = append(p.Attrs, Attribute{Type: t, Value: value, Visibility: vis})
	return p
}

// visible reports whether an attribute may be matched by a querier holding
// the given group memberships.
func (p *Profile) visible(a Attribute, querierGroups []string) bool {
	switch a.Visibility {
	case Public:
		return true
	case Restricted:
		for _, qg := range querierGroups {
			for _, g := range p.Groups {
				if qg == g {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// Op is a predicate operator.
type Op int

const (
	// OpEquals matches case-insensitively and exactly.
	OpEquals Op = iota + 1
	// OpPrefix matches a case-insensitive prefix.
	OpPrefix
	// OpOneOf matches any of the |-separated alternatives exactly.
	OpOneOf
	// OpFuzzy matches within a Levenshtein distance budget — the paper's
	// tolerance for "possible misspellings of the names" (§3.3-i). The
	// budget is 1 edit per 4 characters of the pattern, minimum 1.
	OpFuzzy
)

func (o Op) String() string {
	switch o {
	case OpEquals:
		return "="
	case OpPrefix:
		return "prefix"
	case OpOneOf:
		return "one-of"
	case OpFuzzy:
		return "~"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is one condition over one attribute type.
type Predicate struct {
	Type    Type
	Op      Op
	Pattern string
}

// Query is a conjunction of predicates evaluated on behalf of a querier
// with the given group memberships.
type Query struct {
	Predicates []Predicate
	// QuerierGroups are the groups the asking user belongs to, checked
	// against Restricted attributes.
	QuerierGroups []string
}

// ErrEmptyQuery is returned when a query has no predicates: matching
// everything by accident is how "flooding the network erroneously" starts.
var ErrEmptyQuery = errors.New("attr: query has no predicates")

// Validate rejects queries that would match unboundedly.
func (q Query) Validate() error {
	if len(q.Predicates) == 0 {
		return ErrEmptyQuery
	}
	for _, p := range q.Predicates {
		if p.Type == "" || p.Pattern == "" {
			return fmt.Errorf("attr: predicate %v has empty type or pattern", p)
		}
	}
	return nil
}

// Matches reports whether the profile satisfies every predicate, honouring
// attribute visibility for the querier.
func (q Query) Matches(p *Profile) bool {
	for _, pred := range q.Predicates {
		if !matchOne(p, pred, q.QuerierGroups) {
			return false
		}
	}
	return true
}

func matchOne(p *Profile, pred Predicate, groups []string) bool {
	for _, a := range p.Attrs {
		if a.Type != pred.Type || !p.visible(a, groups) {
			continue
		}
		if valueMatches(a.Value, pred) {
			return true
		}
	}
	return false
}

func valueMatches(value string, pred Predicate) bool {
	v := strings.ToLower(value)
	pat := strings.ToLower(pred.Pattern)
	switch pred.Op {
	case OpEquals:
		return v == pat
	case OpPrefix:
		return strings.HasPrefix(v, pat)
	case OpOneOf:
		for _, alt := range strings.Split(pat, "|") {
			if v == strings.TrimSpace(alt) {
				return true
			}
		}
		return false
	case OpFuzzy:
		budget := len(pat) / 4
		if budget < 1 {
			budget = 1
		}
		return Levenshtein(v, pat) <= budget
	default:
		return false
	}
}

// Levenshtein computes the edit distance between two strings (insertions,
// deletions, substitutions), used to resolve "possible misspellings".
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Registry is one server's store of the profiles it is authoritative for —
// the per-node database the attribute search of §3.3.1-A consults.
type Registry struct {
	profiles map[names.Name]*Profile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[names.Name]*Profile)}
}

// Put registers or replaces a user's profile.
func (r *Registry) Put(p *Profile) error {
	if err := p.User.Validate(); err != nil {
		return err
	}
	cp := *p
	cp.Attrs = append([]Attribute(nil), p.Attrs...)
	cp.Groups = append([]string(nil), p.Groups...)
	r.profiles[p.User] = &cp
	return nil
}

// Remove deletes a user's profile; removing an absent profile is a no-op.
func (r *Registry) Remove(user names.Name) {
	delete(r.profiles, user)
}

// Get returns a user's profile.
func (r *Registry) Get(user names.Name) (*Profile, bool) {
	p, ok := r.profiles[user]
	return p, ok
}

// Len reports the number of profiles stored.
func (r *Registry) Len() int { return len(r.profiles) }

// Search returns the users whose profiles satisfy the query, sorted by name
// for determinism.
func (r *Registry) Search(q Query) ([]names.Name, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var out []names.Name
	for user, p := range r.profiles {
		if q.Matches(p) {
			out = append(out, user)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}
