package attr

import (
	"reflect"
	"testing"
)

func TestPlanQueryRoutes(t *testing.T) {
	cases := []struct {
		query string
		route Route
		terms []string
	}{
		{"content=budget", RoutePruned, []string{"budget"}},
		{"content=Budget", RoutePruned, []string{"budget"}}, // normalized
		{"content=budget, content=offsite", RoutePruned, []string{"budget", "offsite"}},
		// A profile conjunct does not block pruning on the content term.
		{"content=budget, city=boston", RoutePruned, []string{"budget"}},
		// Fuzzy/prefix/one-of content predicates are sketch-undecidable.
		{"content~budget", RouteBroadcast, nil},
		{"content^=bud", RouteBroadcast, nil},
		{"content?=a|b", RouteBroadcast, nil},
		// Pure profile queries broadcast.
		{"interest=g3", RouteBroadcast, nil},
		// Patterns that are not single index tokens cannot be probed.
		{"content=two words", RouteBroadcast, nil},
		{"content=x", RouteBroadcast, nil}, // below min term length
	}
	for _, c := range cases {
		q, err := ParseQuery(c.query)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.query, err)
		}
		plan := PlanQuery(q)
		if plan.Route != c.route || !reflect.DeepEqual(plan.Terms, c.terms) {
			t.Fatalf("PlanQuery(%q) = %v %v, want %v %v",
				c.query, plan.Route, plan.Terms, c.route, c.terms)
		}
	}
}

func TestQueryTextRoundTrip(t *testing.T) {
	src := "content=budget, interest=g3, name~alise"
	var q Query
	if err := q.UnmarshalText([]byte(src)); err != nil {
		t.Fatal(err)
	}
	text, err := q.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("reparse of canonical form %q: %v", text, err)
	}
	if !reflect.DeepEqual(q.Predicates, back.Predicates) {
		t.Fatalf("round trip changed predicates: %+v vs %+v", q.Predicates, back.Predicates)
	}
}

func TestUnmarshalTextKeepsQuerierGroups(t *testing.T) {
	q := Query{QuerierGroups: []string{"g1"}}
	if err := q.UnmarshalText([]byte("content=budget")); err != nil {
		t.Fatal(err)
	}
	if len(q.QuerierGroups) != 1 || q.QuerierGroups[0] != "g1" {
		t.Fatal("UnmarshalText dropped QuerierGroups")
	}
}

func TestUnmarshalTextRejectsGarbage(t *testing.T) {
	var q Query
	if err := q.UnmarshalText([]byte("no operator here")); err == nil {
		t.Fatal("want error for predicate without operator")
	}
}
