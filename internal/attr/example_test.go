package attr_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/attr"
	"github.com/largemail/largemail/internal/names"
)

func ExampleLevenshtein() {
	fmt.Println(attr.Levenshtein("liddell", "lidell"))
	// Output: 1
}

func ExampleQuery_Matches() {
	p := &attr.Profile{User: names.MustParse("east.h1.alice")}
	p.Add(attr.TypeName, "Alice Liddell", attr.Public).
		Add(attr.TypeOrganization, "ACME", attr.Public)

	// Directory look-up with a misspelled name (§3.3-i).
	q := attr.Query{Predicates: []attr.Predicate{
		{Type: attr.TypeName, Op: attr.OpFuzzy, Pattern: "Alice Lidell"},
		{Type: attr.TypeOrganization, Op: attr.OpEquals, Pattern: "acme"},
	}}
	fmt.Println(q.Matches(p))
	// Output: true
}
