package attr

import "github.com/largemail/largemail/internal/sketch"

// TypeContent addresses message *content* rather than profile attributes: a
// predicate like "content=budget" asks for users whose buffered mail
// contains the term. Content predicates are evaluated by the mailbox
// store's term index, not by Profile.Matches — profiles carry no content
// attribute, so a content predicate in a profile match is simply never
// satisfied (conjunction semantics make the whole query false there).
const TypeContent Type = "content"

// Route says how the broadcast layer should carry a query down the backbone
// tree.
type Route int

const (
	// RouteBroadcast visits every reachable node: the §3.3 mass
	// distribution, and any query whose predicates a sketch cannot decide.
	RouteBroadcast Route = iota + 1
	// RoutePruned may skip subtrees whose cached term sketch proves no
	// message matches: the selective multicast.
	RoutePruned
)

func (r Route) String() string {
	switch r {
	case RouteBroadcast:
		return "broadcast"
	case RoutePruned:
		return "pruned"
	default:
		return "Route(?)"
	}
}

// Plan is the planner's verdict on one query.
type Plan struct {
	Route Route
	// Terms are the normalized content terms every match must contain —
	// the sketch probes. Non-empty exactly when Route == RoutePruned.
	Terms []string
}

// PlanQuery classifies a query as prunable or broadcast-only. A query is
// prunable when at least one conjunct is an exact-match content predicate
// whose pattern normalizes to a single index token: every matching message
// must contain that token, so a subtree sketch that excludes it is a proof
// of no match below. Prefix, one-of and fuzzy content predicates cannot be
// checked against a Bloom sketch (the matching token set is open-ended) and
// contribute no probe terms; profile predicates never do. Pruning on the
// decidable subset stays sound under conjunction — the other predicates can
// only shrink the match set further.
func PlanQuery(q Query) Plan {
	var terms []string
	for _, p := range q.Predicates {
		if p.Type != TypeContent || p.Op != OpEquals {
			continue
		}
		if t, ok := sketch.NormalizeTerm(p.Pattern); ok {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		return Plan{Route: RouteBroadcast}
	}
	return Plan{Route: RoutePruned, Terms: terms}
}
