// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every experiment in this repository: the
// paper ("Designing Large Electronic Mail Systems", ICDCS 1988) evaluates
// its algorithms "using simulation", and all of its algorithms are driven by
// messages that "arrive after an unpredictable but finite delay, without
// error and in sequence" (§3.3.1-A). A discrete-event scheduler with a
// virtual clock models exactly that while keeping runs reproducible.
//
// A Scheduler owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which makes every
// run with the same seed byte-for-byte deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual time instant measured in microticks.
//
// The paper speaks of abstract "time units" (e.g. "the average communication
// time is one time unit for all communication links", §3.1.1). One paper
// time unit is Unit microticks so that fractional costs such as the 0.5-unit
// message processing time stay exact in integer arithmetic.
type Time int64

// Unit is one paper "time unit" expressed in microticks.
const Unit Time = 1000

// Units converts a float amount of paper time units to Time, rounding to the
// nearest microtick.
func Units(u float64) Time {
	if u < 0 {
		return Time(u*float64(Unit) - 0.5)
	}
	return Time(u*float64(Unit) + 0.5)
}

// Units reports the time as a float number of paper time units.
func (t Time) Units() float64 { return float64(t) / float64(Unit) }

// String formats the time in paper time units.
func (t Time) String() string { return fmt.Sprintf("%gu", t.Units()) }

// Event is a scheduled callback. The zero value is not usable; events are
// created by Scheduler.At and Scheduler.After.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // position in the heap, -1 once popped
}

// At reports the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all simulated activity runs on the goroutine that calls
// Step, Run, or RunUntil.
type Scheduler struct {
	now       Time
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
}

// New returns a Scheduler whose clock starts at 0 and whose random source is
// seeded with seed. Identical seeds produce identical runs.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet fired.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at virtual time t. Scheduling in the past (t before
// Now) fires the event at the current time instead, preserving causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d microticks from now. Negative delays are
// treated as zero.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&s.events, e.index)
	}
}

// Step fires the next pending event and advances the clock to its time. It
// reports whether an event fired.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline. Events scheduled later stay pending.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor fires events within the next d microticks and advances the clock by
// exactly d.
func (s *Scheduler) RunFor(d Time) { s.RunUntil(s.now + d) }

func (s *Scheduler) peek() *Event {
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.events)
	}
	return nil
}

// Ticker repeatedly schedules a callback at a fixed period until stopped.
type Ticker struct {
	s      *Scheduler
	period Time
	fn     func()
	ev     *Event
	done   bool
}

// Every schedules fn to fire every period microticks, first firing one
// period from now. It panics if period is not positive, because a
// zero-period ticker would livelock the scheduler at one instant.
func (s *Scheduler) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %d", period))
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.s.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.arm()
		}
	})
}

// Stop prevents future ticks. Safe to call multiple times and from inside
// the tick callback.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.s.Cancel(t.ev)
}
