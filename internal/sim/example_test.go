package sim_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/sim"
)

func ExampleScheduler() {
	s := sim.New(1)
	s.After(2*sim.Unit, func() { fmt.Println("two units in:", s.Now()) })
	s.After(sim.Unit, func() { fmt.Println("one unit in:", s.Now()) })
	s.Run()
	// Output:
	// one unit in: 1u
	// two units in: 2u
}
