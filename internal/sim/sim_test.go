package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUnitsRoundTrip(t *testing.T) {
	cases := []struct {
		units float64
		want  Time
	}{
		{0, 0},
		{1, 1000},
		{0.5, 500},
		{2.25, 2250},
		{-1, -1000},
		{-0.5, -500},
	}
	for _, c := range cases {
		if got := Units(c.units); got != c.want {
			t.Errorf("Units(%v) = %d, want %d", c.units, got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Units(1.5).String(); got != "1.5u" {
		t.Errorf("String() = %q, want %q", got, "1.5u")
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-instant events fired out of scheduling order: %v", order)
	}
}

func TestAfterRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.Run()
	if at != 150 {
		t.Errorf("After fired at %d, want 150", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New(1)
	var at Time = -1
	s.At(100, func() {
		s.At(10, func() { at = s.Now() })
	})
	s.Run()
	if at != 100 {
		t.Errorf("past event fired at %d, want 100 (clamped)", at)
	}
}

func TestNegativeAfterClampsToZeroDelay(t *testing.T) {
	s := New(1)
	fired := false
	s.At(7, func() {
		s.After(-100, func() { fired = s.Now() == 7 })
	})
	s.Run()
	if !fired {
		t.Error("negative-delay event did not fire at the current instant")
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if s.Processed() != 0 {
		t.Errorf("Processed() = %d, want 0", s.Processed())
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(20, func() { fired = true })
	s.At(10, func() { s.Cancel(e) })
	s.Run()
	if fired {
		t.Error("event canceled at t=10 still fired at t=20")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("RunUntil(12) fired %v, want [5 10]", fired)
	}
	if s.Now() != 12 {
		t.Errorf("Now() = %v after RunUntil(12), want 12", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %v, want all 4", fired)
	}
}

func TestRunUntilEventAtDeadlineFires(t *testing.T) {
	s := New(1)
	fired := false
	s.At(10, func() { fired = true })
	s.RunUntil(10)
	if !fired {
		t.Error("event exactly at the deadline did not fire")
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	s.At(3, func() {})
	s.Run()
	s.RunFor(7)
	if s.Now() != 10 {
		t.Errorf("Now() = %v, want 10", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step() on empty scheduler returned true")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	tk := s.Every(10, func() {
		ticks = append(ticks, s.Now())
	})
	s.RunUntil(35)
	tk.Stop()
	tk.Stop() // idempotent
	s.RunUntil(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, want := range []Time{10, 20, 30} {
		if ticks[i] != want {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(5, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 2 {
		t.Errorf("ticker fired %d times, want 2", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0, ...) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var fired []Time
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth == 0 {
				return
			}
			d := Time(s.Rand().Intn(100))
			s.After(d, func() {
				fired = append(fired, s.Now())
				schedule(depth - 1)
				schedule(depth - 1)
			})
		}
		schedule(6)
		s.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events, firing order is non-decreasing in time,
// and the clock after Run equals the max scheduled time.
func TestPropertyFiringOrderMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(99)
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if s.Now() != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestProcessedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Processed() != 5 {
		t.Errorf("Processed() = %d, want 5", s.Processed())
	}
}
