package benchfmt

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	r, ok := ParseBench("BenchmarkBalanceScaleDense-8   \t      12\t   3973042 ns/op\t      1742 moves\t   2.203 max_util", "p")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkBalanceScaleDense" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Iterations != 12 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if r.Metrics["ns/op"] != 3973042 || r.Metrics["moves"] != 1742 || r.Metrics["max_util"] != 2.203 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	if r.Pkg != "p" {
		t.Errorf("pkg = %q", r.Pkg)
	}
}

func TestParseBenchNoCPUSuffix(t *testing.T) {
	r, ok := ParseBench("BenchmarkX 5 100 ns/op", "p")
	if !ok || r.Name != "BenchmarkX" || r.Metrics["ns/op"] != 100 {
		t.Fatalf("got %+v ok=%v", r, ok)
	}
}

func TestParseBenchRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX --- SKIP",           // odd field count, non-numeric
		"BenchmarkY",                    // bare name
		"BenchmarkZ-4 notanint 1 ns/op", // bad iteration count
	} {
		if _, ok := ParseBench(line, ""); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestParseStream(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: example/a",
		"BenchmarkOne-4 10 200 ns/op",
		"pkg: example/b",
		"BenchmarkTwo 5 100 ns/op 3 moves",
		"PASS",
	}, "\n")
	var echoed strings.Builder
	d, err := ParseStream(strings.NewReader(in), &echoed)
	if err != nil {
		t.Fatalf("ParseStream: %v", err)
	}
	if d.Goos != "linux" || d.Goarch != "amd64" {
		t.Fatalf("header = %+v", d)
	}
	if len(d.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", d.Benchmarks)
	}
	if d.Benchmarks[0].Pkg != "example/a" || d.Benchmarks[1].Metrics["moves"] != 3 {
		t.Fatalf("benchmarks = %+v", d.Benchmarks)
	}
	if !strings.Contains(echoed.String(), "PASS") {
		t.Fatal("stream not echoed")
	}
}

func TestMarshalStableOrder(t *testing.T) {
	d := Doc{Benchmarks: []Result{
		{Name: "B", Pkg: "z"}, {Name: "A", Pkg: "a"}, {Name: "A", Pkg: "z"},
	}}
	buf, err := d.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if d.Benchmarks[0].Pkg != "a" || d.Benchmarks[1].Name != "A" || d.Benchmarks[2].Name != "B" {
		t.Fatalf("not sorted: %+v", d.Benchmarks)
	}
	if buf[len(buf)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
}
