// Package benchfmt is the repository's benchmark-document format: the
// stable JSON schema committed as BENCH*.json files, plus the parser that
// turns `go test -bench` output into it. cmd/benchjson pipes the test
// stream through ParseStream; cmd/mailbench builds Results directly from
// its capacity runs — both emit the same document, so benchmark history
// stays diffable across PRs regardless of which tool produced it.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark: a name, the package (or tool) that produced it,
// the iteration count, and every reported metric keyed by unit.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the committed benchmark document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Sort orders benchmarks by (pkg, name) so marshaled documents are stable.
func (d *Doc) Sort() {
	sort.Slice(d.Benchmarks, func(i, j int) bool {
		if d.Benchmarks[i].Pkg != d.Benchmarks[j].Pkg {
			return d.Benchmarks[i].Pkg < d.Benchmarks[j].Pkg
		}
		return d.Benchmarks[i].Name < d.Benchmarks[j].Name
	})
}

// Marshal renders the sorted document as indented JSON with a trailing
// newline.
func (d *Doc) Marshal() ([]byte, error) {
	d.Sort()
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// WriteFile marshals the document to path (stdout when path is empty).
func (d *Doc) WriteFile(path string) error {
	buf, err := d.Marshal()
	if err != nil {
		return err
	}
	if path == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ParseStream reads `go test -bench` output from r, echoing every line to
// echo (pass nil to discard), and collects the header fields and benchmark
// results into a document.
func ParseStream(r io.Reader, echo io.Writer) (Doc, error) {
	var d Doc
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			d.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			d.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			d.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := ParseBench(line, pkg); ok {
				d.Benchmarks = append(d.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return d, err
	}
	return d, nil
}

// ParseBench parses one result line: name, iteration count, then value/unit
// pairs. Lines that don't fit (e.g. "BenchmarkX --- SKIP") are rejected.
func ParseBench(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.TrimSuffix(fields[0], "-"+lastCPUSuffix(fields[0])),
		Pkg:        pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// lastCPUSuffix returns the trailing GOMAXPROCS digits of "Name-8" (empty if
// the name carries no suffix, as under -cpu 1).
func lastCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return ""
		}
	}
	if suffix == "" {
		return ""
	}
	return suffix
}
