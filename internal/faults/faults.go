// Package faults is the deterministic fault-injection engine behind the
// repository's reliability claims: it compiles a seeded fault schedule —
// server crash/recover windows, link failures, added latency, transient
// message drops — from a small spec, and drives both transports through a
// common Injector interface: the discrete-event simulation
// (internal/netsim, via SimTarget) and the live goroutine runtime
// (internal/livenet, via LiveTarget).
//
// The paper's §3.1.2c headline guarantee is that GetMail plus
// authority-list buffering loses no messages "even when some servers fail"
// (claims E2/E12). A guarantee exercised only on a deterministic simulator
// is a conjecture about the concurrent runtime; the Soak harness in this
// package runs a seeded workload under a randomized-but-reproducible fault
// schedule on either transport and checks the invariant directly: every
// accepted message is retrieved exactly once — zero losses, zero
// duplicates.
//
// Time in a schedule is measured in abstract ticks, so the same schedule is
// replayable on virtual time (one tick = a fixed slice of simulated time)
// and on wall-clock time (one tick = a short real sleep). Compiling the
// same Spec twice yields byte-identical schedules, and replaying a schedule
// on the simulator reproduces the identical event sequence run-to-run.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Kind enumerates the fault event types.
type Kind uint8

// Fault event kinds. Every window-opening kind has a closing partner:
// Compile always pairs a Crash with a Recover, a LinkFail with a
// LinkRestore, and a Latency/Drop set with a later clear (zero value).
const (
	Crash Kind = iota + 1
	Recover
	LinkFail
	LinkRestore
	Latency // set added delay on a server's traffic; DelayTicks 0 clears
	Drop    // set transient drop probability on a node; Prob 0 clears
	// Kill/Restart are the durability-grade crash pair: Kill destroys the
	// server's in-memory state (a process death), Restart brings it back
	// from its durable store. A Crash/Recover window survives on memory
	// alone; a Kill/Restart window survives only if the store persisted.
	Kill
	Restart
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case LinkFail:
		return "link-fail"
	case LinkRestore:
		return "link-restore"
	case Latency:
		return "latency"
	case Drop:
		return "drop"
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Tick   int    // schedule offset in ticks
	Kind   Kind   //
	Target string // server/node name; link events use Target–Peer
	Peer   string // second link endpoint (LinkFail/LinkRestore)

	DelayTicks int     // Latency: added delay in ticks (0 clears)
	Prob       float64 // Drop: drop probability (0 clears)
}

func (e Event) String() string {
	switch e.Kind {
	case LinkFail, LinkRestore:
		return fmt.Sprintf("t%d %s %s-%s", e.Tick, e.Kind, e.Target, e.Peer)
	case Latency:
		return fmt.Sprintf("t%d %s %s +%d ticks", e.Tick, e.Kind, e.Target, e.DelayTicks)
	case Drop:
		return fmt.Sprintf("t%d %s %s p=%.2f", e.Tick, e.Kind, e.Target, e.Prob)
	default:
		return fmt.Sprintf("t%d %s %s", e.Tick, e.Kind, e.Target)
	}
}

// Schedule is a compiled fault schedule: events in non-decreasing tick
// order. Schedules are plain data — store them, print them, replay them.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Horizon reports the tick just past the last event (0 for an empty
// schedule). By construction every fault window compiled by Compile is
// closed at or before the horizon, so a run that applies the whole schedule
// ends with no fault active.
func (s Schedule) Horizon() int {
	h := 0
	for _, e := range s.Events {
		if e.Tick+1 > h {
			h = e.Tick + 1
		}
	}
	return h
}

// Spec describes the fault load to compile. Counts are window counts: one
// crash window emits two events (Crash then Recover).
type Spec struct {
	Seed  int64
	Ticks int // horizon: all windows open and close within [0, Ticks]

	Servers []string    // crash / latency / unreachability candidates
	Links   [][2]string // link-failure candidates (endpoint name pairs)
	// DropTargets are nodes whose inbound traffic may be transiently
	// dropped. On the simulator these should be host nodes: servers retry
	// transfers on timeout, but a drop that silently skips a live, stable
	// authority server would strand mail beyond the GetMail walk. The live
	// transport retries transient drops on the same server, so servers are
	// safe targets there.
	DropTargets []string
	// KillTargets are servers that may be kill-restarted: torn down with
	// loss of in-memory state and restarted from their durable store. The
	// fault surface should only offer them when the transport actually runs
	// durable stores — kill-restarting a memory-only server is data loss by
	// construction, not a survivable fault.
	KillTargets []string
	// Protected servers are never crashed, made unreachable, or delayed
	// (e.g. to keep one authority server of every user up).
	Protected []string

	Crashes      int // crash → recover windows
	LinkFaults   int // link fail → restore windows
	Latencies    int // added-latency windows on servers
	Drops        int // transient-drop windows on DropTargets
	KillRestarts int // kill → restart-from-disk windows on KillTargets

	MinOutage int // shortest window in ticks (default Ticks/20, min 1)
	MaxOutage int // longest window in ticks (default Ticks/5, min MinOutage)

	MaxDelayTicks int     // latency window ceiling (default 2)
	MaxDropProb   float64 // drop window ceiling (default 0.3)
}

func (sp Spec) withDefaults() Spec {
	if sp.MinOutage <= 0 {
		sp.MinOutage = sp.Ticks / 20
		if sp.MinOutage < 1 {
			sp.MinOutage = 1
		}
	}
	if sp.MaxOutage < sp.MinOutage {
		sp.MaxOutage = sp.Ticks / 5
		if sp.MaxOutage < sp.MinOutage {
			sp.MaxOutage = sp.MinOutage
		}
	}
	// A window of length Ticks (or more) leaves no room to place a start
	// inside the horizon: window() draws start from [0, Ticks−length), which
	// is empty. Clamp both bounds to Ticks−1 so every caller-supplied outage
	// still fits strictly inside [0, Ticks].
	if sp.MaxOutage > sp.Ticks-1 {
		sp.MaxOutage = sp.Ticks - 1
	}
	if sp.MinOutage > sp.MaxOutage {
		sp.MinOutage = sp.MaxOutage
	}
	if sp.MaxDelayTicks <= 0 {
		sp.MaxDelayTicks = 2
	}
	if sp.MaxDropProb <= 0 {
		sp.MaxDropProb = 0.3
	}
	return sp
}

// Compile expands the spec into a concrete schedule. It is a pure function
// of the spec: identical specs compile to identical schedules, which is
// what makes a chaos run replayable. Every window it opens is closed by a
// partner event no later than spec.Ticks.
func Compile(sp Spec) (Schedule, error) {
	sp = sp.withDefaults()
	if sp.Ticks <= 1 {
		return Schedule{}, errors.New("faults: spec needs Ticks > 1")
	}
	protected := make(map[string]bool, len(sp.Protected))
	for _, p := range sp.Protected {
		protected[p] = true
	}
	var targets []string
	for _, s := range sp.Servers {
		if !protected[s] {
			targets = append(targets, s)
		}
	}
	if (sp.Crashes > 0 || sp.Latencies > 0) && len(targets) == 0 {
		return Schedule{}, errors.New("faults: no unprotected servers for crash/latency windows")
	}
	var links [][2]string
	for _, l := range sp.Links {
		if !protected[l[0]] && !protected[l[1]] {
			links = append(links, l)
		}
	}
	if sp.LinkFaults > 0 && len(links) == 0 {
		return Schedule{}, errors.New("faults: no unprotected links for link-fault windows")
	}
	if sp.Drops > 0 && len(sp.DropTargets) == 0 {
		return Schedule{}, errors.New("faults: no DropTargets for drop windows")
	}
	var killables []string
	for _, s := range sp.KillTargets {
		if !protected[s] {
			killables = append(killables, s)
		}
	}
	if sp.KillRestarts > 0 && len(killables) == 0 {
		return Schedule{}, errors.New("faults: no unprotected KillTargets for kill-restart windows")
	}
	// Crash and kill windows on the same server may interleave so that a
	// Recover lands between a Kill and its Restart, reviving the node while
	// its store is torn down. Require disjoint pools when both kinds are in
	// play rather than compile a schedule with that hazard.
	if sp.Crashes > 0 && sp.KillRestarts > 0 {
		crashPool := make(map[string]bool, len(targets))
		for _, s := range targets {
			crashPool[s] = true
		}
		for _, s := range killables {
			if crashPool[s] {
				return Schedule{}, fmt.Errorf(
					"faults: %q is both a crash and a kill target; the pools must be disjoint when both window kinds are requested", s)
			}
		}
	}

	rng := rand.New(rand.NewSource(sp.Seed))
	var events []Event
	window := func() (start, end int) {
		span := sp.MaxOutage - sp.MinOutage + 1
		length := sp.MinOutage + rng.Intn(span)
		start = rng.Intn(sp.Ticks - length)
		return start, start + length
	}
	for i := 0; i < sp.Crashes; i++ {
		t := targets[rng.Intn(len(targets))]
		start, end := window()
		events = append(events,
			Event{Tick: start, Kind: Crash, Target: t},
			Event{Tick: end, Kind: Recover, Target: t})
	}
	for i := 0; i < sp.LinkFaults; i++ {
		l := links[rng.Intn(len(links))]
		start, end := window()
		events = append(events,
			Event{Tick: start, Kind: LinkFail, Target: l[0], Peer: l[1]},
			Event{Tick: end, Kind: LinkRestore, Target: l[0], Peer: l[1]})
	}
	for i := 0; i < sp.Latencies; i++ {
		t := targets[rng.Intn(len(targets))]
		start, end := window()
		delay := 1 + rng.Intn(sp.MaxDelayTicks)
		events = append(events,
			Event{Tick: start, Kind: Latency, Target: t, DelayTicks: delay},
			Event{Tick: end, Kind: Latency, Target: t, DelayTicks: 0})
	}
	for i := 0; i < sp.Drops; i++ {
		t := sp.DropTargets[rng.Intn(len(sp.DropTargets))]
		start, end := window()
		p := sp.MaxDropProb * (0.25 + 0.75*rng.Float64())
		events = append(events,
			Event{Tick: start, Kind: Drop, Target: t, Prob: p},
			Event{Tick: end, Kind: Drop, Target: t, Prob: 0})
	}
	for i := 0; i < sp.KillRestarts; i++ {
		t := killables[rng.Intn(len(killables))]
		start, end := window()
		events = append(events,
			Event{Tick: start, Kind: Kill, Target: t},
			Event{Tick: end, Kind: Restart, Target: t})
	}
	// Stable sort: ties keep generation order, so a window's close never
	// precedes its open and identical specs give identical sequences.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
	return Schedule{Seed: sp.Seed, Events: events}, nil
}

// Injector applies fault events to a transport. Implementations must be
// idempotent per event (crashing a crashed server is a no-op) so a schedule
// can be replayed.
type Injector interface {
	Inject(e Event) error
}
