package faults

import (
	"fmt"
	"time"

	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/netsim"
	"github.com/largemail/largemail/internal/sim"
)

// KillRestarter is a server that can be torn down with loss of in-memory
// state and brought back from its durable store — internal/server's
// Kill/RestartFromDisk pair. Both methods must be idempotent so overlapping
// schedule windows replay cleanly.
type KillRestarter interface {
	Kill() error
	RestartFromDisk() error
}

// SimTarget injects a schedule into the discrete-event network. Node names
// in events are resolved through the Nodes map; one schedule tick equals
// Tick units of virtual time. Kill/Restart events additionally need the
// named server in Servers — a network crash alone cannot destroy and
// recover mailbox state.
type SimTarget struct {
	Net   *netsim.Network
	Nodes map[string]graph.NodeID
	Tick  sim.Time

	// Servers maps server names to their kill-restart handles; only needed
	// when the schedule contains Kill/Restart events.
	Servers map[string]KillRestarter

	// failed remembers the weight of links this target removed, so a
	// LinkRestore re-adds exactly what a LinkFail took away and replays of
	// overlapping windows stay idempotent.
	failed map[[2]graph.NodeID]float64

	// Observer, when non-nil, is called after every successfully injected
	// event. Scenario auditors use it to track which nodes the schedule has
	// down at any moment — e.g. the convergecast auditor excuses subtrees of
	// crashed servers from the no-loss check but then demands they be marked
	// unavailable.
	Observer func(Event)
}

// NewSimTarget wires an injector to a simulated network. tick is the
// virtual duration of one schedule tick (e.g. 10*sim.Unit).
func NewSimTarget(net *netsim.Network, nodes map[string]graph.NodeID, tick sim.Time) *SimTarget {
	return &SimTarget{
		Net: net, Nodes: nodes, Tick: tick,
		failed: make(map[[2]graph.NodeID]float64),
	}
}

func (t *SimTarget) node(name string) (graph.NodeID, error) {
	id, ok := t.Nodes[name]
	if !ok {
		return 0, fmt.Errorf("faults: unknown sim node %q", name)
	}
	return id, nil
}

func linkKey(a, b graph.NodeID) [2]graph.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]graph.NodeID{a, b}
}

// Inject implements Injector on the simulated network.
func (t *SimTarget) Inject(e Event) error {
	if err := t.inject(e); err != nil {
		return err
	}
	if t.Observer != nil {
		t.Observer(e)
	}
	return nil
}

func (t *SimTarget) inject(e Event) error {
	id, err := t.node(e.Target)
	if err != nil {
		return err
	}
	switch e.Kind {
	case Crash:
		t.Net.Crash(id)
	case Recover:
		t.Net.Recover(id)
	case LinkFail, LinkRestore:
		peer, err := t.node(e.Peer)
		if err != nil {
			return err
		}
		key := linkKey(id, peer)
		if e.Kind == LinkFail {
			if _, failed := t.failed[key]; failed {
				return nil // window overlap: already down
			}
			w, ok := t.Net.Topology().Weight(id, peer)
			if !ok {
				return fmt.Errorf("faults: no link %s-%s", e.Target, e.Peer)
			}
			if err := t.Net.FailLink(id, peer); err != nil {
				return err
			}
			t.failed[key] = w
			return nil
		}
		w, failed := t.failed[key]
		if !failed {
			return nil // window overlap: already restored
		}
		delete(t.failed, key)
		return t.Net.RestoreLink(id, peer, w)
	case Latency:
		t.Net.SetExtraDelay(id, sim.Time(e.DelayTicks)*t.Tick)
	case Drop:
		t.Net.SetDropProb(id, e.Prob)
	case Kill, Restart:
		srv, ok := t.Servers[e.Target]
		if !ok {
			return fmt.Errorf("faults: no kill-restart handle for server %q", e.Target)
		}
		if e.Kind == Kill {
			return srv.Kill()
		}
		return srv.RestartFromDisk()
	default:
		return fmt.Errorf("faults: unknown event kind %v", e.Kind)
	}
	return nil
}

// LiveTarget injects a schedule into a live cluster. Link events carry over
// as per-server reachability: the live transport's topology is
// client–server, so "the link to s1 failed" means s1 is running but
// unreachable (§3.1.2c's "disconnected from the network"); whichever of
// Target/Peer names a known server is toggled. One schedule tick equals
// Tick of wall-clock time.
type LiveTarget struct {
	Cluster *livenet.Cluster
	Tick    time.Duration
}

// NewLiveTarget wires an injector to a live cluster. tick is the wall-clock
// duration of one schedule tick (e.g. time.Millisecond).
func NewLiveTarget(c *livenet.Cluster, tick time.Duration) *LiveTarget {
	return &LiveTarget{Cluster: c, Tick: tick}
}

func (t *LiveTarget) server(e Event) (*livenet.Server, error) {
	if s, ok := t.Cluster.Server(e.Target); ok {
		return s, nil
	}
	if e.Peer != "" {
		if s, ok := t.Cluster.Server(e.Peer); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("faults: no live server for event %v", e)
}

// Inject implements Injector on the live cluster.
func (t *LiveTarget) Inject(e Event) error {
	s, err := t.server(e)
	if err != nil {
		return err
	}
	switch e.Kind {
	case Crash:
		s.Crash()
	case Recover:
		s.Recover()
	case LinkFail:
		s.SetReachable(false)
	case LinkRestore:
		s.SetReachable(true)
	case Latency:
		s.SetLatency(time.Duration(e.DelayTicks) * t.Tick)
	case Drop:
		s.SetDropProb(e.Prob)
	case Kill:
		return s.Kill()
	case Restart:
		return s.Restart()
	default:
		return fmt.Errorf("faults: unknown event kind %v", e.Kind)
	}
	return nil
}
