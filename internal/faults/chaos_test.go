package faults_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/faults"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

const chaosTick = 10 * sim.Unit

// chaosSimWorld builds a dense single-region world: 4 hosts x 3 servers,
// every host linked to every server, servers fully meshed, 3 users per
// host. Density matters for the no-loss argument: the router finds a path
// around any partial link failure, so a server only becomes unreachable
// when all its own links are down — and restoring any of them stamps its
// LastStartTime, which forces agents to walk past it on the next GetMail.
func chaosSimWorld(t *testing.T, seed int64) (*core.SyntaxSystem, map[string]graph.NodeID) {
	t.Helper()
	g := graph.New()
	nodes := make(map[string]graph.NodeID)
	users := make(map[graph.NodeID][]string)
	for i := 1; i <= 4; i++ {
		id := graph.HostBase + graph.NodeID(i)
		name := fmt.Sprintf("h%d", i)
		g.MustAddNode(graph.Node{ID: id, Label: name, Region: "R1", Kind: graph.KindHost})
		nodes[name] = id
		for u := 0; u < 3; u++ {
			users[id] = append(users[id], fmt.Sprintf("u%d_%d", i, u))
		}
	}
	for j := 1; j <= 3; j++ {
		id := graph.ServerBase + graph.NodeID(j)
		name := fmt.Sprintf("s%d", j)
		g.MustAddNode(graph.Node{ID: id, Label: name, Region: "R1", Kind: graph.KindServer})
		nodes[name] = id
	}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 3; j++ {
			g.MustAddEdge(graph.HostBase+graph.NodeID(i), graph.ServerBase+graph.NodeID(j), 1)
		}
	}
	g.MustAddEdge(graph.ServerBase+1, graph.ServerBase+2, 1)
	g.MustAddEdge(graph.ServerBase+2, graph.ServerBase+3, 1)
	g.MustAddEdge(graph.ServerBase+1, graph.ServerBase+3, 1)

	sys, err := core.NewSyntax(core.SyntaxConfig{
		Topology: g, UsersPerHost: users, AuthorityLen: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, nodes
}

// chaosSimSpec asks for 26 crash/recover + link fail/restore events plus
// latency and drop windows — past the >=20 bar the harness is specified
// against. Drops target hosts only: on the simulator a host-bound drop can
// only eat a SubmitAck or Notify (conservative accounting), while a
// server-bound drop could silently skip a live, stable authority server
// and genuinely strand mail beyond the GetMail walk.
func chaosSimSpec(seed int64) faults.Spec {
	return faults.Spec{
		Seed:  seed,
		Ticks: 120,
		Servers: []string{"s1", "s2", "s3"},
		Links: [][2]string{
			{"s1", "s2"}, {"s2", "s3"}, {"s1", "s3"},
			{"h1", "s1"}, {"h2", "s2"}, {"h3", "s3"}, {"h4", "s1"},
		},
		DropTargets: []string{"h1", "h2", "h3", "h4"},
		Crashes:     7,
		LinkFaults:  6,
		Latencies:   3,
		Drops:       4,
	}
}

func faultEventCount(sched faults.Schedule) int {
	n := 0
	for _, e := range sched.Events {
		switch e.Kind {
		case faults.Crash, faults.Recover, faults.LinkFail, faults.LinkRestore:
			n++
		}
	}
	return n
}

func runSimSoak(t *testing.T, seed int64) faults.SoakResult {
	t.Helper()
	sys, nodes := chaosSimWorld(t, seed)
	sched, err := faults.Compile(chaosSimSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	if n := faultEventCount(sched); n < 20 {
		t.Fatalf("schedule has %d crash/link events, want >= 20", n)
	}
	inj := faults.NewSimTarget(sys.Net, nodes, chaosTick)
	res, err := faults.Soak(faults.NewSimSystem(sys, chaosTick), inj, sched, faults.SoakConfig{
		Messages: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosSoakSim is the headline robustness check on the simulator: 600
// messages submitted while servers crash, links fail, latency spikes and
// acks are dropped; every committed message must be retrieved exactly once.
func TestChaosSoakSim(t *testing.T) {
	res := runSimSoak(t, 42)
	t.Log(res.String())
	if res.Submitted < 500 {
		t.Fatalf("submitted %d, want >= 500", res.Submitted)
	}
	if !res.Ok() {
		t.Fatalf("invariant violated: lost=%v duplicates=%v tracegaps=%v",
			res.Lost, res.Duplicates, res.TraceGaps)
	}
	if res.Committed < res.Submitted/2 {
		t.Errorf("only %d/%d committed — fault load too heavy to be meaningful", res.Committed, res.Submitted)
	}
	if res.Received < res.Committed {
		t.Errorf("received %d < committed %d", res.Received, res.Committed)
	}
}

// TestChaosSoakSimTraceAudit re-runs the sim soak and checks the audit has
// teeth: the tracer actually recorded span chains (at least one per
// committed message) and every committed chain is complete. A tracing
// regression that silently stopped stamping would fail here, not just show
// an empty TraceGaps.
func TestChaosSoakSimTraceAudit(t *testing.T) {
	sys, nodes := chaosSimWorld(t, 42)
	sched, err := faults.Compile(chaosSimSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewSimTarget(sys.Net, nodes, chaosTick)
	res, err := faults.Soak(faults.NewSimSystem(sys, chaosTick), inj, sched, faults.SoakConfig{
		Messages: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TraceGaps) != 0 {
		t.Fatalf("%d committed messages have incomplete span chains: %v",
			len(res.TraceGaps), res.TraceGaps)
	}
	if n := sys.Tracer().Len(); n < res.Committed {
		t.Errorf("tracer holds %d traces, want >= %d committed", n, res.Committed)
	}
	// The per-stage histograms were fed from the same registry the tracer
	// writes to — retrieval closed lat_e2e for every delivered message.
	hs := sys.Obs().Histogram("lat_e2e", nil).Snapshot()
	if hs.Count == 0 {
		t.Fatal("lat_e2e histogram empty after a full soak")
	}
	if hs.P50 <= 0 || hs.P95 < hs.P50 || hs.P99 < hs.P95 {
		t.Errorf("implausible quantiles: %+v", hs)
	}
}

// TestChaosSoakSimDeterministic replays the same spec on a fresh world and
// requires a byte-identical ledger: same submissions, same commits, same
// fault events, same outcome.
func TestChaosSoakSimDeterministic(t *testing.T) {
	a := runSimSoak(t, 42)
	b := runSimSoak(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec, different runs:\n  a=%v\n  b=%v", a, b)
	}
}

// TestChaosSoakSimSeeds runs a few more seeds so the invariant is not an
// artifact of one lucky schedule.
func TestChaosSoakSimSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak skipped in -short")
	}
	for _, seed := range []int64{1, 9, 2026} {
		res := runSimSoak(t, seed)
		if !res.Ok() {
			t.Errorf("seed %d: lost=%v duplicates=%v", seed, res.Lost, res.Duplicates)
		}
	}
}

// TestChaosSoakLive runs the same harness against the live goroutine
// cluster: real time, real concurrency, the spool doing the redelivery
// work. A nil Submit error is the commit point (deposited or spooled); the
// soak then requires exactly-once retrieval.
func TestChaosSoakLive(t *testing.T) {
	c := livenet.NewCluster()
	defer c.Close()
	for _, n := range []string{"s1", "s2", "s3"} {
		if _, err := c.AddServer(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EnableSpool(livenet.SpoolConfig{
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  20 * time.Millisecond,
		Seed:      7,
	}); err != nil {
		t.Fatal(err)
	}
	rotations := [][]string{
		{"s1", "s2", "s3"}, {"s2", "s3", "s1"}, {"s3", "s1", "s2"},
	}
	sys := faults.NewLiveSystem(c, time.Millisecond)
	for i := 0; i < 6; i++ {
		u := names.MustParse(fmt.Sprintf("R1.h%d.user%d", i%3+1, i))
		c.Directory().SetAuthority(u, rotations[i%len(rotations)])
		if err := sys.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}

	sched, err := faults.Compile(faults.Spec{
		Seed:  42,
		Ticks: 120,
		Servers: []string{"s1", "s2", "s3"},
		Links: [][2]string{
			{"net", "s1"}, {"net", "s2"}, {"net", "s3"},
		},
		DropTargets:   []string{"s1", "s2", "s3"},
		Crashes:       7,
		LinkFaults:    6,
		Latencies:     2,
		Drops:         4,
		MaxDelayTicks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := faultEventCount(sched); n < 20 {
		t.Fatalf("schedule has %d crash/link events, want >= 20", n)
	}
	res, err := faults.Soak(sys, faults.NewLiveTarget(c, time.Millisecond), sched, faults.SoakConfig{
		Messages: 520,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Submitted < 500 {
		t.Fatalf("submitted %d, want >= 500", res.Submitted)
	}
	if !res.Ok() {
		t.Fatalf("invariant violated: lost=%v duplicates=%v tracegaps=%v",
			res.Lost, res.Duplicates, res.TraceGaps)
	}
	if res.Committed < res.Submitted/2 {
		t.Errorf("only %d/%d committed", res.Committed, res.Submitted)
	}
	// The trace audit ran against real spans: the cluster's tracer stamped
	// every committed message even across crash/recover windows, and the
	// same registry carries the per-stage latency distributions.
	if n := c.Tracer().Len(); n < res.Committed {
		t.Errorf("tracer holds %d traces, want >= %d committed", n, res.Committed)
	}
	if hs := c.Obs().Histogram("lat_e2e", nil).Snapshot(); hs.Count == 0 {
		t.Error("lat_e2e histogram empty after live soak")
	}
	m := c.Metrics()
	if m["spool_redelivered"] == 0 && m["deposit_failovers"] == 0 {
		t.Log("note: schedule exercised neither spool nor failover paths")
	}
}
