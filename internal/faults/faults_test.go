package faults

import (
	"reflect"
	"strings"
	"testing"
)

func chaosSpec() Spec {
	return Spec{
		Seed:  7,
		Ticks: 100,
		Servers: []string{"s1", "s2", "s3"},
		Links: [][2]string{
			{"s1", "s2"}, {"s2", "s3"}, {"s1", "s3"},
		},
		DropTargets: []string{"h1", "h2"},
		Crashes:     5,
		LinkFaults:  4,
		Latencies:   3,
		Drops:       2,
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := Compile(chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs compiled to different schedules")
	}
	want := 2 * (5 + 4 + 3 + 2)
	if len(a.Events) != want {
		t.Fatalf("events = %d, want %d", len(a.Events), want)
	}
}

func TestCompileWindowsPairedAndClosed(t *testing.T) {
	sched, err := Compile(chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	if h := sched.Horizon(); h > 100 {
		t.Fatalf("horizon %d beyond spec ticks", h)
	}
	last := 0
	open := make(map[string]int) // per-target open-window depth
	for _, e := range sched.Events {
		if e.Tick < last {
			t.Fatalf("events not sorted at %v", e)
		}
		last = e.Tick
		switch e.Kind {
		case Crash:
			open["srv:"+e.Target]++
		case Recover:
			if open["srv:"+e.Target] == 0 {
				t.Fatalf("recover before crash: %v", e)
			}
			open["srv:"+e.Target]--
		case LinkFail:
			open["link:"+e.Target+e.Peer]++
		case LinkRestore:
			if open["link:"+e.Target+e.Peer] == 0 {
				t.Fatalf("restore before fail: %v", e)
			}
			open["link:"+e.Target+e.Peer]--
		case Latency:
			if e.DelayTicks > 0 {
				open["lat:"+e.Target]++
			} else {
				open["lat:"+e.Target]--
			}
		case Drop:
			if e.Prob > 0 {
				open["drop:"+e.Target]++
			} else {
				open["drop:"+e.Target]--
			}
		}
	}
	for k, n := range open {
		if n != 0 {
			t.Errorf("window %s left open (depth %d) at end of schedule", k, n)
		}
	}
}

func TestCompileOversizedOutageClamped(t *testing.T) {
	// A MaxOutage at or beyond the horizon used to feed rng.Intn a
	// non-positive span and panic; it must clamp so windows still fit.
	sp := chaosSpec()
	sp.MinOutage = 50
	sp.MaxOutage = sp.Ticks + 10
	sched, err := Compile(sp)
	if err != nil {
		t.Fatal(err)
	}
	if h := sched.Horizon(); h > sp.Ticks {
		t.Fatalf("horizon %d beyond spec ticks %d", h, sp.Ticks)
	}

	// Even MinOutage beyond the horizon must compile (both bounds clamp).
	sp = chaosSpec()
	sp.MinOutage = sp.Ticks * 2
	sp.MaxOutage = sp.Ticks * 3
	if _, err := Compile(sp); err != nil {
		t.Fatalf("oversized MinOutage: %v", err)
	}
}

func TestCompileProtectedTargetsExcluded(t *testing.T) {
	sp := chaosSpec()
	sp.Protected = []string{"s1"}
	sched, err := Compile(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sched.Events {
		switch e.Kind {
		case Crash, Recover, Latency:
			if e.Target == "s1" {
				t.Fatalf("protected server faulted: %v", e)
			}
		case LinkFail, LinkRestore:
			if e.Target == "s1" || e.Peer == "s1" {
				t.Fatalf("protected server's link faulted: %v", e)
			}
		}
	}
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"ticks", func(sp *Spec) { sp.Ticks = 1 }},
		{"no servers", func(sp *Spec) { sp.Servers = nil }},
		{"all protected", func(sp *Spec) { sp.Protected = append([]string(nil), sp.Servers...) }},
		{"no links", func(sp *Spec) { sp.Links = nil }},
		{"no drop targets", func(sp *Spec) { sp.DropTargets = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := chaosSpec()
			tc.mut(&sp)
			if _, err := Compile(sp); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestEventString(t *testing.T) {
	e := Event{Tick: 4, Kind: LinkFail, Target: "s1", Peer: "s2"}
	if got := e.String(); !strings.Contains(got, "link-fail") || !strings.Contains(got, "s1-s2") {
		t.Errorf("String() = %q", got)
	}
	if got := (Event{Tick: 1, Kind: Drop, Target: "h1", Prob: 0.25}).String(); !strings.Contains(got, "p=0.25") {
		t.Errorf("String() = %q", got)
	}
}
