package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/largemail/largemail/internal/core"
	"github.com/largemail/largemail/internal/livenet"
	"github.com/largemail/largemail/internal/names"
	"github.com/largemail/largemail/internal/sim"
)

// System is the transport-side contract of a chaos soak: a mail system the
// harness can submit into, retrieve from, and advance in schedule ticks.
// Both the discrete-event simulation (SimSystem) and the live goroutine
// cluster (LiveSystem) satisfy it, which is what lets one soak loop assert
// the same invariant on both transports.
type System interface {
	// Users returns every user name, in a stable order.
	Users() []string
	// Submit sends one message with the given subject token.
	Submit(from, to, subject string) error
	// Retrieve runs the user's GetMail and returns the subjects of newly
	// retrieved messages.
	Retrieve(user string) []string
	// Committed returns the subjects the system has durably accepted —
	// the set the no-loss invariant is checked against. Submissions that
	// never commit (e.g. dropped before acceptance) owe nothing.
	Committed() []string
	// Step advances the system by n schedule ticks.
	Step(n int)
	// Settle lets in-flight work finish: the simulator runs to
	// quiescence, the live cluster waits for its spool to drain.
	Settle()
}

// TraceAuditor is the optional observability contract of a soak system: one
// that can cross-check the message-lifecycle traces (internal/obs) against
// its commit ledger. When a System implements it, Soak records the audit in
// SoakResult.TraceGaps and Ok requires it to pass — every committed message
// must show a complete submit → deposit → retrieve span chain, even when its
// delivery crossed crash/recover windows.
type TraceAuditor interface {
	// AuditTraces returns one entry per committed message whose span chain
	// is missing or incomplete, formatted "subject (id)", sorted.
	AuditTraces() []string
}

// SimSystem adapts a core.SyntaxSystem to the soak. One schedule tick is
// Tick units of virtual time, so soaks on the simulator are fully
// deterministic and cost no wall-clock.
type SimSystem struct {
	Sys  *core.SyntaxSystem
	Tick sim.Time

	users  []string
	byName map[string]names.Name
}

// NewSimSystem wraps a wired simulation system. tick is the virtual length
// of one schedule tick (e.g. 10*sim.Unit).
func NewSimSystem(sys *core.SyntaxSystem, tick sim.Time) *SimSystem {
	s := &SimSystem{Sys: sys, Tick: tick, byName: make(map[string]names.Name)}
	for _, u := range sys.Users() {
		s.users = append(s.users, u.String())
		s.byName[u.String()] = u
	}
	return s
}

// Users implements System.
func (s *SimSystem) Users() []string { return append([]string(nil), s.users...) }

// Submit implements System. A submission commits when its SubmitAck reaches
// the sending host; acks echo the subject, which is how Committed maps them
// back to soak tokens.
func (s *SimSystem) Submit(from, to, subject string) error {
	agent, err := s.Sys.Agent(s.byName[from])
	if err != nil {
		return err
	}
	_, err = agent.Send([]names.Name{s.byName[to]}, subject, "chaos soak")
	return err
}

// Retrieve implements System.
func (s *SimSystem) Retrieve(user string) []string {
	agent, err := s.Sys.Agent(s.byName[user])
	if err != nil {
		return nil
	}
	var subjects []string
	for _, m := range agent.GetMail() {
		subjects = append(subjects, m.Subject)
	}
	return subjects
}

// Committed implements System: every subject acked back to a host.
func (s *SimSystem) Committed() []string {
	var out []string
	for _, h := range s.Sys.Hosts() {
		for _, ack := range h.Acks() {
			out = append(out, ack.Subject)
		}
	}
	return out
}

// Step implements System.
func (s *SimSystem) Step(n int) { s.Sys.RunFor(sim.Time(n) * s.Tick) }

// Settle implements System: run the scheduler to quiescence so server
// retry timers and in-flight transfers complete.
func (s *SimSystem) Settle() { s.Sys.Run() }

// AuditTraces implements TraceAuditor against the deployment-wide tracer:
// every acked (committed) message must have a complete span chain.
func (s *SimSystem) AuditTraces() []string {
	subjects := make(map[string]string) // id -> subject
	var ids []string
	for _, h := range s.Sys.Hosts() {
		for _, ack := range h.Acks() {
			id := ack.ID.String()
			if _, dup := subjects[id]; dup {
				continue
			}
			subjects[id] = ack.Subject
			ids = append(ids, id)
		}
	}
	var out []string
	for _, id := range s.Sys.Tracer().Incomplete(ids) {
		out = append(out, fmt.Sprintf("%s (%s)", subjects[id], id))
	}
	return out
}

// LiveSystem adapts a livenet.Cluster to the soak. One schedule tick is
// Tick of wall-clock time. Agents must be pre-registered with AddUser.
type LiveSystem struct {
	Cluster *livenet.Cluster
	Tick    time.Duration
	// SettleTimeout caps how long Settle waits for the spool to drain
	// (default 10s).
	SettleTimeout time.Duration

	users     []string
	byName    map[string]names.Name
	agents    map[string]*livenet.Agent
	committed []string
	ids       []string          // committed message IDs, submit order
	subjects  map[string]string // committed id -> subject
}

// NewLiveSystem wraps a live cluster. tick is the wall-clock length of one
// schedule tick (e.g. time.Millisecond).
func NewLiveSystem(c *livenet.Cluster, tick time.Duration) *LiveSystem {
	return &LiveSystem{
		Cluster: c, Tick: tick,
		byName:   make(map[string]names.Name),
		agents:   make(map[string]*livenet.Agent),
		subjects: make(map[string]string),
	}
}

// AddUser registers a soak participant; the user must already have an
// authority list in the cluster directory.
func (s *LiveSystem) AddUser(u names.Name) error {
	a, err := s.Cluster.NewAgent(u)
	if err != nil {
		return err
	}
	s.users = append(s.users, u.String())
	s.byName[u.String()] = u
	s.agents[u.String()] = a
	return nil
}

// Users implements System.
func (s *LiveSystem) Users() []string { return append([]string(nil), s.users...) }

// Submit implements System. The live transport commits synchronously: a nil
// error from Cluster.Submit means the message was deposited or spooled for
// guaranteed redelivery.
func (s *LiveSystem) Submit(from, to, subject string) error {
	id, err := s.Cluster.Submit(s.byName[from], []names.Name{s.byName[to]}, subject, "chaos soak")
	if err == nil {
		s.committed = append(s.committed, subject)
		s.ids = append(s.ids, id.String())
		s.subjects[id.String()] = subject
	}
	return err
}

// Retrieve implements System.
func (s *LiveSystem) Retrieve(user string) []string {
	a, ok := s.agents[user]
	if !ok {
		return nil
	}
	var subjects []string
	for _, m := range a.GetMail() {
		subjects = append(subjects, m.Subject)
	}
	return subjects
}

// Committed implements System.
func (s *LiveSystem) Committed() []string { return append([]string(nil), s.committed...) }

// Step implements System.
func (s *LiveSystem) Step(n int) { time.Sleep(time.Duration(n) * s.Tick) }

// Settle implements System: wait for the redelivery spool to drain. Once
// the spool is empty every accepted message sits in some authority
// mailbox, so a retrieval sweep can find it.
func (s *LiveSystem) Settle() {
	timeout := s.SettleTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for s.Cluster.SpoolDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * s.Tick)
	}
}

// AuditTraces implements TraceAuditor against the cluster's tracer: every
// committed message must have a complete span chain, spool redeliveries and
// crash windows included.
func (s *LiveSystem) AuditTraces() []string {
	var out []string
	for _, id := range s.Cluster.Tracer().Incomplete(s.ids) {
		out = append(out, fmt.Sprintf("%s (%s)", s.subjects[id], id))
	}
	return out
}

// SoakConfig tunes the workload the harness applies alongside a schedule.
type SoakConfig struct {
	Messages      int // total submissions, spread over the schedule horizon
	RetrieveEvery int // run every user's GetMail each N ticks (default 5)
	SettleRounds  int // consecutive empty retrieval sweeps to finish (default 3)
	MaxSettle     int // cap on settle sweeps (default 200)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.RetrieveEvery <= 0 {
		c.RetrieveEvery = 5
	}
	if c.SettleRounds <= 0 {
		c.SettleRounds = 3
	}
	if c.MaxSettle <= 0 {
		c.MaxSettle = 200
	}
	return c
}

// SoakResult is the ledger of one chaos run. The E2 invariant holds iff
// Lost and Duplicates are both empty.
type SoakResult struct {
	Submitted    int // submissions attempted
	SubmitErrors int // submissions rejected synchronously
	Committed    int // submissions durably accepted
	Received     int // distinct subjects retrieved
	Uncommitted  int // attempted but never accepted (owed nothing)
	Events       int // fault events injected

	Lost       []string // committed subjects never retrieved
	Duplicates []string // subjects retrieved more than once
	// TraceGaps lists committed messages with missing or incomplete
	// lifecycle span chains, when the system implements TraceAuditor.
	TraceGaps []string
}

// Ok reports whether the run preserved the no-loss / no-duplication
// invariant and (when audited) left no lifecycle trace incomplete.
func (r SoakResult) Ok() bool {
	return len(r.Lost) == 0 && len(r.Duplicates) == 0 && len(r.TraceGaps) == 0
}

func (r SoakResult) String() string {
	return fmt.Sprintf("soak: %d submitted (%d errors), %d committed, %d received, %d lost, %d duplicated, %d trace gaps, %d fault events",
		r.Submitted, r.SubmitErrors, r.Committed, r.Received, len(r.Lost), len(r.Duplicates), len(r.TraceGaps), r.Events)
}

// Soak drives sys through the schedule while submitting cfg.Messages
// messages between random user pairs, then settles and audits: every
// committed subject must be retrieved exactly once. The workload is derived
// from the schedule seed, so a sim soak with the same spec reproduces the
// identical run.
func Soak(sys System, inj Injector, sched Schedule, cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.withDefaults()
	users := sys.Users()
	var res SoakResult
	if len(users) < 2 {
		return res, errors.New("faults: soak needs at least two users")
	}
	horizon := sched.Horizon()
	if horizon == 0 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(sched.Seed ^ 0x5eed))

	counts := make(map[string]int) // subject -> times retrieved
	retrieveAll := func() (got int) {
		for _, u := range users {
			for _, subject := range sys.Retrieve(u) {
				counts[subject]++
				got++
			}
		}
		return got
	}

	perTick, extra := cfg.Messages/horizon, cfg.Messages%horizon
	next := 0 // index into sched.Events
	seq := 0
	for tick := 0; tick < horizon; tick++ {
		for next < len(sched.Events) && sched.Events[next].Tick <= tick {
			if err := inj.Inject(sched.Events[next]); err != nil {
				return res, fmt.Errorf("tick %d: %w", tick, err)
			}
			res.Events++
			next++
		}
		quota := perTick
		if tick < extra {
			quota++
		}
		for i := 0; i < quota; i++ {
			from := users[rng.Intn(len(users))]
			to := users[rng.Intn(len(users))]
			subject := fmt.Sprintf("chaos-%d", seq)
			seq++
			res.Submitted++
			if err := sys.Submit(from, to, subject); err != nil {
				res.SubmitErrors++
			}
		}
		if tick%cfg.RetrieveEvery == 0 {
			retrieveAll()
		}
		sys.Step(1)
	}

	// Every window the schedule opened is closed by now (Compile pairs
	// them within the horizon): the system is fault-free. Let in-flight
	// work finish, then sweep retrievals until nothing new shows up.
	sys.Settle()
	quiet := 0
	for round := 0; quiet < cfg.SettleRounds && round < cfg.MaxSettle; round++ {
		if retrieveAll() == 0 {
			quiet++
		} else {
			quiet = 0
			sys.Settle()
		}
		sys.Step(1)
	}

	committed := make(map[string]bool)
	for _, subject := range sys.Committed() {
		committed[subject] = true
	}
	res.Committed = len(committed)
	res.Uncommitted = res.Submitted - res.Committed
	res.Received = len(counts)
	for subject, n := range counts {
		if n > 1 {
			res.Duplicates = append(res.Duplicates, subject)
		}
	}
	for subject := range committed {
		if counts[subject] == 0 {
			res.Lost = append(res.Lost, subject)
		}
	}
	sort.Strings(res.Lost)
	sort.Strings(res.Duplicates)
	if auditor, ok := sys.(TraceAuditor); ok {
		res.TraceGaps = auditor.AuditTraces()
	}
	return res, nil
}
