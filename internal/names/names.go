// Package names implements the naming conventions of the paper's mail
// systems.
//
// The paper uses "a three level hierarchical name in the form of
// region.host.user" (§3.1.1): the region name is globally unique, the host
// name unique within a region, and the user name locally unique within a
// host. Names are "structured as a set of alphanumeric strings chosen from a
// finite alphabet and separated by delimiters" (§2). The set of names
// complying with the convention is the name space; it is partitioned into
// region contexts and, within a region, into hash sub-groups (§3.2.2b: "a
// hash function is applied to the name to find out in which sub-group the
// name belongs").
package names

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

// Delimiter separates the tokens of a hierarchical name. The paper's body
// uses "region.host.user"; the conclusion writes "region@host@user" — both
// are accepted on parse, Delimiter is used when formatting.
const Delimiter = "."

// Validation errors.
var (
	ErrEmptyToken   = errors.New("names: empty name token")
	ErrBadToken     = errors.New("names: token contains characters outside the naming alphabet")
	ErrBadStructure = errors.New("names: name must have exactly three tokens (region.host.user)")
)

// Name is a fully qualified, location-dependent user name.
type Name struct {
	Region string
	Host   string
	User   string
}

// String formats the name as region.host.user.
func (n Name) String() string {
	return n.Region + Delimiter + n.Host + Delimiter + n.User
}

// IsZero reports whether the name is entirely empty.
func (n Name) IsZero() bool { return n == Name{} }

// Validate checks the name against the naming convention: exactly three
// non-empty alphanumeric tokens (hyphen and underscore allowed after the
// first character).
func (n Name) Validate() error {
	for _, tok := range []string{n.Region, n.Host, n.User} {
		if err := validateToken(tok); err != nil {
			return err
		}
	}
	return nil
}

func validateToken(tok string) error {
	if tok == "" {
		return ErrEmptyToken
	}
	for i, r := range tok {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case (r == '-' || r == '_') && i > 0:
		default:
			return fmt.Errorf("%w: %q", ErrBadToken, tok)
		}
	}
	return nil
}

// Parse parses "region.host.user" (or "region@host@user") into a Name and
// validates it.
func Parse(s string) (Name, error) {
	sep := Delimiter
	if strings.Contains(s, "@") && !strings.Contains(s, Delimiter) {
		sep = "@"
	}
	parts := strings.Split(s, sep)
	if len(parts) != 3 {
		return Name{}, fmt.Errorf("%w: %q", ErrBadStructure, s)
	}
	n := Name{Region: parts[0], Host: parts[1], User: parts[2]}
	if err := n.Validate(); err != nil {
		return Name{}, err
	}
	return n, nil
}

// MustParse is Parse for static test fixtures; it panics on error.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// SameRegion reports whether two names live in the same region — the test
// that decides between local resolution and inter-region forwarding
// (§3.1.2b).
func (n Name) SameRegion(other Name) bool { return n.Region == other.Region }

// Rename returns the name a migrated user obtains in the syntax-directed
// design (§3.1.4): the location tokens change, the user token is preserved.
func (n Name) Rename(newRegion, newHost string) Name {
	return Name{Region: newRegion, Host: newHost, User: n.User}
}

// Subgroup maps the name to one of k hash sub-groups within its region.
// The paper's location-independent design divides regions "into small
// groups of manageable size using some mapping functions" (§3.2.1) and
// resolves a name "within the context of that sub-group" (§3.2.2b). The
// hash covers only the user token, so a user keeps their sub-group while
// roaming between hosts of the region.
func (n Name) Subgroup(k int) int {
	if k <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(n.Region))
	h.Write([]byte{0})
	h.Write([]byte(n.User))
	return int(h.Sum32() % uint32(k))
}

// Space is a partitioned name space: the set of registered names grouped by
// region context. A single centralized database "is too inefficient to use
// and manage" in a large system (§2), so Space hands out per-region
// contexts that servers replicate.
type Space struct {
	regions map[string]*Context
}

// NewSpace returns an empty name space.
func NewSpace() *Space {
	return &Space{regions: make(map[string]*Context)}
}

// Context is the subset of the name space for one region.
type Context struct {
	Region string
	byHost map[string]map[string]Name
	count  int
}

// Region returns the context for a region, creating it on first use.
func (s *Space) Region(region string) *Context {
	c, ok := s.regions[region]
	if !ok {
		c = &Context{Region: region, byHost: make(map[string]map[string]Name)}
		s.regions[region] = c
	}
	return c
}

// Regions returns the number of region contexts.
func (s *Space) Regions() int { return len(s.regions) }

// Register adds the name to its region's context. Duplicate registrations
// within a host fail: user names are "locally unique within a host"
// (§3.1.1).
func (s *Space) Register(n Name) error {
	if err := n.Validate(); err != nil {
		return err
	}
	return s.Region(n.Region).register(n)
}

// Unregister removes the name. Removing an unknown name fails.
func (s *Space) Unregister(n Name) error {
	c, ok := s.regions[n.Region]
	if !ok {
		return fmt.Errorf("names: unregister %v: unknown region", n)
	}
	return c.unregister(n)
}

// Contains reports whether the exact name is registered.
func (s *Space) Contains(n Name) bool {
	c, ok := s.regions[n.Region]
	if !ok {
		return false
	}
	_, ok = c.byHost[n.Host][n.User]
	return ok
}

// Len reports the total number of registered names.
func (s *Space) Len() int {
	total := 0
	for _, c := range s.regions {
		total += c.count
	}
	return total
}

func (c *Context) register(n Name) error {
	host := c.byHost[n.Host]
	if host == nil {
		host = make(map[string]Name)
		c.byHost[n.Host] = host
	}
	if _, dup := host[n.User]; dup {
		return fmt.Errorf("names: %v already registered", n)
	}
	host[n.User] = n
	c.count++
	return nil
}

func (c *Context) unregister(n Name) error {
	host := c.byHost[n.Host]
	if _, ok := host[n.User]; !ok {
		return fmt.Errorf("names: %v not registered", n)
	}
	delete(host, n.User)
	c.count--
	return nil
}

// Len reports the number of names registered in this region context.
func (c *Context) Len() int { return c.count }

// Lookup finds a registered name by host and user token.
func (c *Context) Lookup(host, user string) (Name, bool) {
	n, ok := c.byHost[host][user]
	return n, ok
}

// LookupUser finds a registered name by user token alone, scanning the
// region — the resolution mode of the location-independent design, where
// the host token is only the primary location (§3.2.1). If several hosts
// register the same user token, the lexically smallest host wins, keeping
// resolution deterministic.
func (c *Context) LookupUser(user string) (Name, bool) {
	var best Name
	found := false
	for _, users := range c.byHost {
		if n, ok := users[user]; ok {
			if !found || n.Host < best.Host {
				best = n
				found = true
			}
		}
	}
	return best, found
}
