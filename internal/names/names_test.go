package names

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"east.alpha.alice", Name{"east", "alpha", "alice"}},
		{"R1.h2.u_3", Name{"R1", "h2", "u_3"}},
		{"east@alpha@alice", Name{"east", "alpha", "alice"}}, // conclusion's delimiter
		{"a.b-c.d", Name{"a", "b-c", "d"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"", ErrBadStructure},
		{"east.alice", ErrBadStructure},
		{"a.b.c.d", ErrBadStructure},
		{"east..alice", ErrEmptyToken},
		{"ea st.h.u", ErrBadToken},
		{"-east.h.u", ErrBadToken},
		{"east.h.u!", ErrBadToken},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); !errors.Is(err, c.wantErr) {
			t.Errorf("Parse(%q) err = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	n := Name{"west", "beta", "bob"}
	got, err := Parse(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip = %v, want %v", got, n)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("nope")
}

func TestSameRegion(t *testing.T) {
	a := MustParse("east.h1.u1")
	b := MustParse("east.h2.u2")
	c := MustParse("west.h1.u1")
	if !a.SameRegion(b) {
		t.Error("same-region names reported different")
	}
	if a.SameRegion(c) {
		t.Error("different-region names reported same")
	}
}

func TestRename(t *testing.T) {
	n := MustParse("east.h1.alice")
	m := n.Rename("west", "h9")
	if m.User != "alice" || m.Region != "west" || m.Host != "h9" {
		t.Errorf("Rename = %v", m)
	}
	if n.Region != "east" {
		t.Error("Rename mutated receiver")
	}
}

func TestIsZero(t *testing.T) {
	if !(Name{}).IsZero() {
		t.Error("zero Name not IsZero")
	}
	if MustParse("a.b.c").IsZero() {
		t.Error("non-zero Name IsZero")
	}
}

func TestSubgroupStableUnderRoaming(t *testing.T) {
	// Roaming changes the host token; the sub-group must not change, or the
	// location-independent design would lose the user on every move.
	home := MustParse("east.h1.alice")
	roam := Name{Region: "east", Host: "h7", User: "alice"}
	for _, k := range []int{1, 2, 7, 64} {
		if home.Subgroup(k) != roam.Subgroup(k) {
			t.Errorf("sub-group changed under roaming for k=%d", k)
		}
	}
}

func TestSubgroupRange(t *testing.T) {
	f := func(user string, k uint8) bool {
		kk := int(k%16) + 1
		n := Name{Region: "r", Host: "h", User: user}
		g := n.Subgroup(kk)
		return g >= 0 && g < kk
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSubgroupDegenerateK(t *testing.T) {
	n := MustParse("a.b.c")
	if n.Subgroup(0) != 0 || n.Subgroup(-3) != 0 {
		t.Error("non-positive k should map to sub-group 0")
	}
}

func TestSubgroupDistributes(t *testing.T) {
	const k = 8
	counts := make([]int, k)
	for i := 0; i < 4000; i++ {
		n := Name{Region: "r", Host: "h", User: "user" + itoa(i)}
		counts[n.Subgroup(k)]++
	}
	for g, c := range counts {
		if c < 4000/k/2 || c > 4000/k*2 {
			t.Errorf("sub-group %d has %d names; distribution too skewed", g, c)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSpaceRegisterLookup(t *testing.T) {
	s := NewSpace()
	n := MustParse("east.h1.alice")
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(n) {
		t.Error("registered name not contained")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	got, ok := s.Region("east").Lookup("h1", "alice")
	if !ok || got != n {
		t.Errorf("Lookup = %v, %v", got, ok)
	}
	if _, ok := s.Region("east").Lookup("h1", "bob"); ok {
		t.Error("Lookup found unregistered user")
	}
}

func TestSpaceDuplicateRejected(t *testing.T) {
	s := NewSpace()
	n := MustParse("east.h1.alice")
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(n); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Same user token on a different host is fine: uniqueness is per host.
	if err := s.Register(MustParse("east.h2.alice")); err != nil {
		t.Errorf("same user on different host rejected: %v", err)
	}
}

func TestSpaceRejectsInvalid(t *testing.T) {
	if err := NewSpace().Register(Name{Region: "e", Host: "", User: "u"}); !errors.Is(err, ErrEmptyToken) {
		t.Errorf("err = %v, want ErrEmptyToken", err)
	}
}

func TestSpaceUnregister(t *testing.T) {
	s := NewSpace()
	n := MustParse("east.h1.alice")
	if err := s.Unregister(n); err == nil {
		t.Error("unregister of unknown name succeeded")
	}
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(n); err != nil {
		t.Fatal(err)
	}
	if s.Contains(n) || s.Len() != 0 {
		t.Error("name still present after unregister")
	}
	if err := s.Unregister(n); err == nil {
		t.Error("double unregister succeeded")
	}
}

func TestLookupUserScansRegion(t *testing.T) {
	s := NewSpace()
	for _, raw := range []string{"east.h3.alice", "east.h1.alice", "east.h2.bob"} {
		if err := s.Register(MustParse(raw)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Region("east").LookupUser("alice")
	if !ok {
		t.Fatal("LookupUser failed")
	}
	if got.Host != "h1" {
		t.Errorf("LookupUser returned host %q, want deterministic smallest h1", got.Host)
	}
	if _, ok := s.Region("east").LookupUser("carol"); ok {
		t.Error("LookupUser found unregistered user")
	}
}

func TestRegionsCount(t *testing.T) {
	s := NewSpace()
	s.Register(MustParse("east.h.u"))
	s.Register(MustParse("west.h.u"))
	if s.Regions() != 2 {
		t.Errorf("Regions() = %d, want 2", s.Regions())
	}
	if s.Region("east").Len() != 1 {
		t.Errorf("east context Len = %d, want 1", s.Region("east").Len())
	}
}
