package names_test

import (
	"fmt"

	"github.com/largemail/largemail/internal/names"
)

func ExampleParse() {
	n, err := names.Parse("east.alpha.alice")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(n.Region, n.Host, n.User)
	// Output: east alpha alice
}

func ExampleName_Subgroup() {
	// The hash sub-group ignores the host token, so a roaming user keeps
	// their sub-group (§3.2.2b).
	home := names.MustParse("east.alpha.alice")
	roaming := names.MustParse("east.omega.alice")
	fmt.Println(home.Subgroup(8) == roaming.Subgroup(8))
	// Output: true
}

func ExampleName_Rename() {
	old := names.MustParse("east.alpha.alice")
	fmt.Println(old.Rename("west", "beta"))
	// Output: west.beta.alice
}
