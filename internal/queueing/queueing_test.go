package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWait(t *testing.T) {
	cases := []struct {
		rho  float64
		want float64
	}{
		{0, 0},
		{-1, 0},
		{0.5, 1},
		{0.75, 3},
		{0.9, 9},
		{0.99, SaturationPenalty},
		{1.0, SaturationPenalty},
		{1.5, SaturationPenalty},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		got := Wait(c.rho)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Wait(%v) = %v, want %v", c.rho, got, c.want)
		}
	}
}

func TestWaitMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return Wait(a) <= Wait(b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	cases := []struct {
		load, max int
		want      float64
	}{
		{50, 100, 0.5},
		{0, 100, 0},
		{-5, 100, 0},
		{150, 100, 1.5},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Utilization(c.load, c.max); got != c.want {
			t.Errorf("Utilization(%d,%d) = %v, want %v", c.load, c.max, got, c.want)
		}
	}
	if !math.IsInf(Utilization(1, 0), 1) {
		t.Error("Utilization(1,0) should be +Inf")
	}
}

func TestMM1Exact(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2} // ρ=0.5
	if !q.Stable() {
		t.Fatal("ρ=0.5 queue reported unstable")
	}
	if got := q.MeanResponse(); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanResponse = %v, want 1", got)
	}
	if got := q.MeanQueueWait(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanQueueWait = %v, want 0.5", got)
	}
	if got := q.MeanNumberInSystem(); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanNumberInSystem = %v, want 1", got)
	}
}

func TestMM1Unstable(t *testing.T) {
	for _, q := range []MM1{{Lambda: 2, Mu: 2}, {Lambda: 3, Mu: 2}, {Lambda: 1, Mu: 0}} {
		if q.Stable() {
			t.Errorf("%+v reported stable", q)
		}
		if !math.IsInf(q.MeanResponse(), 1) || !math.IsInf(q.MeanQueueWait(), 1) || !math.IsInf(q.MeanNumberInSystem(), 1) {
			t.Errorf("%+v: unstable queue should have infinite means", q)
		}
	}
}

// Property: Little's law consistency — L = λ·W for stable queues.
func TestMM1LittlesLaw(t *testing.T) {
	f := func(l, m uint16) bool {
		lambda := float64(l%100) + 1
		mu := lambda + float64(m%100) + 1 // guarantee stability
		q := MM1{Lambda: lambda, Mu: mu}
		return math.Abs(q.MeanNumberInSystem()-q.Lambda*q.MeanResponse()) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the paper's Wait estimate coincides with the exact M/M/1 mean
// number in system ρ/(1-ρ) below the cutoff.
func TestWaitMatchesMM1Form(t *testing.T) {
	for rho := 0.01; rho < UtilizationCutoff; rho += 0.07 {
		q := MM1{Lambda: rho, Mu: 1}
		if math.Abs(Wait(rho)-q.MeanNumberInSystem()) > 1e-9 {
			t.Errorf("Wait(%v) diverges from ρ/(1-ρ)", rho)
		}
	}
}
