// Package queueing provides the queueing-theoretic estimates the paper's
// server-assignment algorithm relies on.
//
// §3.1.1 approximates "the average waiting time on a specific server ... by
// the average waiting time of an M/M/1 queue": Q(ρ) = ρ/(1-ρ) when ρ < 0.99,
// and "a very large constant" B otherwise, where ρ = L/M is the server's
// utilisation estimate (current load over maximum load).
package queueing

import "math"

// SaturationPenalty is the paper's "very large constant β" returned for
// servers at or beyond the utilisation cutoff. Its exact magnitude only
// needs to dwarf any realistic connection cost so the balancer always moves
// users off saturated servers first.
const SaturationPenalty = 1e9

// UtilizationCutoff is the ρ above which a server counts as saturated
// (the paper's 0.99).
const UtilizationCutoff = 0.99

// Wait returns the paper's estimate for average waiting time at a server
// with utilisation rho: rho/(1-rho) for rho < UtilizationCutoff, and
// SaturationPenalty otherwise (including any rho ≥ 1, where the M/M/1
// formula is meaningless). Negative rho is treated as an idle server.
func Wait(rho float64) float64 {
	if rho <= 0 || math.IsNaN(rho) {
		return 0
	}
	if rho >= UtilizationCutoff {
		return SaturationPenalty
	}
	return rho / (1 - rho)
}

// Utilization returns load/max clamped below at zero. A non-positive max
// means the server can hold nothing: any load saturates it.
func Utilization(load, max int) float64 {
	if max <= 0 {
		if load > 0 {
			return math.Inf(1)
		}
		return 0
	}
	if load <= 0 {
		return 0
	}
	return float64(load) / float64(max)
}

// MM1 bundles exact M/M/1 steady-state formulas used by the evaluation
// harness to sanity-check simulated latencies (arrival rate λ, service rate
// μ, both per time unit).
type MM1 struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate
}

// Rho returns the offered load λ/μ.
func (q MM1) Rho() float64 {
	if q.Mu == 0 {
		return math.Inf(1)
	}
	return q.Lambda / q.Mu
}

// Stable reports whether the queue has a steady state (ρ < 1).
func (q MM1) Stable() bool {
	rho := q.Rho()
	return rho >= 0 && rho < 1
}

// MeanQueueWait returns the mean time spent waiting (excluding service):
// W_q = ρ/(μ-λ). Unstable queues return +Inf.
func (q MM1) MeanQueueWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Rho() / (q.Mu - q.Lambda)
}

// MeanResponse returns the mean total time in system (wait plus service):
// W = 1/(μ-λ). Unstable queues return +Inf.
func (q MM1) MeanResponse() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// MeanNumberInSystem returns L = ρ/(1-ρ) (Little's law with MeanResponse).
// Unstable queues return +Inf.
func (q MM1) MeanNumberInSystem() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	rho := q.Rho()
	return rho / (1 - rho)
}
