// Package experiments regenerates every table and figure of the paper's
// evaluation plus the quantitative claims its prose makes (see DESIGN.md §1
// for the experiment index). Every experiment is deterministic: fixed seeds,
// discrete-event simulation, and byte-stable table rendering.
package experiments

import (
	"fmt"
	"strings"

	"github.com/largemail/largemail/internal/obs"
)

// Result is one reproduced table, figure, or claim.
type Result struct {
	ID    string // "table1", "figure2", "e1", ...
	Title string
	Table *obs.Table
	// Notes records the shape checks the experiment performed (who wins,
	// invariants that held) — the paper-vs-measured statements that feed
	// EXPERIMENTS.md.
	Notes []string
	// Text carries extra rendered artifacts (e.g. DOT sources for the
	// figures).
	Text string
}

// Render formats the result for terminal output.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.Render())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// runner produces one Result.
type runner struct {
	ID  string
	Run func() Result
}

// registry lists every experiment in presentation order.
func registry() []runner {
	return []runner{
		{"figure1", Figure1},
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"figure2", Figure2},
		{"e1", E1PollsPerRetrieval},
		{"e2", E2NoLoss},
		{"e3", E3BalancingConvergence},
		{"e4", E4BroadcastCost},
		{"e5", E5GHSCorrectness},
		{"e6", E6ConvergecastFailures},
		{"e7", E7RoamingOverhead},
		{"e8", E8MigrationOverhead},
		{"e9", E9CostTableAccuracy},
		{"e10", E10AttributeSelectivity},
		{"e11", E11CriteriaComparison},
		{"e12", E12AuthorityListLength},
		{"e13", E13RemoteAccess},
		{"e14", E14ConnectionSetup},
	}
}

// IDs returns every experiment ID in order.
func IDs() []string {
	rs := registry()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string) (Result, bool) {
	for _, r := range registry() {
		if r.ID == id {
			return r.Run(), true
		}
	}
	return Result{}, false
}

// All executes every experiment in order.
func All() []Result {
	rs := registry()
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = r.Run()
	}
	return out
}
