package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment output")

// TestGoldenOutput pins the entire rendered experiment suite byte-for-byte:
// the reproduction's tables must not drift silently. Regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenOutput(t *testing.T) {
	var b strings.Builder
	for i, r := range All() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.Render())
	}
	got := b.String()
	path := filepath.Join("testdata", "all.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		// Report the first diverging line to keep failures readable.
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("experiment output drifted at line %d:\n got: %q\nwant: %q\n(run with -update if intentional)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("experiment output length drifted: got %d lines, want %d", len(gl), len(wl))
	}
}
