package experiments

import (
	"fmt"
	"strings"

	"github.com/largemail/largemail/internal/assign"
	"github.com/largemail/largemail/internal/graph"
	"github.com/largemail/largemail/internal/mst"
	"github.com/largemail/largemail/internal/obs"
	"github.com/largemail/largemail/internal/queueing"
)

// figure1Assignment builds the §3.1.1 worked example: Figure 1 topology,
// W1=4, W2=1, z=0.5, M_j=100.
func figure1Assignment() (*assign.Assignment, graph.Example) {
	ex := graph.Figure1()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	a, err := assign.New(assign.Config{
		Topology: ex.G,
		Hosts:    ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	})
	if err != nil {
		panic(err) // static fixture; cannot fail
	}
	return a, ex
}

// Figure1 reproduces the paper's Figure 1: the topology and user
// distribution of the running example.
func Figure1() Result {
	ex := graph.Figure1()
	t := obs.NewTable("Figure 1: topology and user distribution",
		"Node", "Kind", "Users", "Links")
	for _, n := range ex.G.Nodes() {
		var links []string
		for _, nb := range ex.G.Neighbors(n.ID) {
			lbl, _ := ex.G.Node(nb)
			links = append(links, lbl.Label)
		}
		users := ""
		if n.Kind == graph.KindHost {
			users = fmt.Sprintf("%d", ex.Users[n.ID])
		}
		t.AddRow(n.Label, n.Kind.String(), users, strings.Join(links, " "))
	}
	var dot strings.Builder
	_ = ex.G.WriteDOT(&dot, "figure1", nil)
	return Result{
		ID:    "figure1",
		Title: "Topology and user distribution used in the example (§3.1.1)",
		Table: t,
		Notes: []string{
			"all links cost 1 time unit, as the prose requires",
			"shortest one-way path H2→S1 is 2 units, matching the prose",
			fmt.Sprintf("total users = %d (50+60+50+50+40+20)", ex.TotalUsers()),
		},
		Text: dot.String(),
	}
}

// Table1 reproduces "Initial server assignment and load distribution": the
// nearest-server initialization step.
func Table1() Result {
	a, ex := figure1Assignment()
	a.Initialize()
	t := a.Table("Table 1: initial server assignment and load distribution")
	notes := []string{
		"every host is on its nearest server (paper: H1,H3→S1; H2,H4,H5→S2; H6→S3)",
		fmt.Sprintf("per-server loads: S1=%d S2=%d S3=%d (paper: 100/150/20)",
			a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2])),
		"S2 exceeds its maximum load of 100 — the state the balancing procedure must fix",
	}
	return Result{ID: "table1", Title: "Initial server assignment (§3.1.1)", Table: t, Notes: notes}
}

// Table2 reproduces "Final load distribution among servers": the state after
// the balancing procedure.
func Table2() Result {
	a, ex := figure1Assignment()
	a.Initialize()
	costBefore := a.TotalCost()
	stats := a.Balance()
	t := a.Table("Table 2: final load distribution among servers")
	notes := []string{
		fmt.Sprintf("balancing made %d moves over %d sweeps; %d tentative moves undone",
			stats.Moves, stats.Sweeps, stats.Undone),
		fmt.Sprintf("per-server loads: S1=%d S2=%d S3=%d; none above M_j=100 (overloaded: %d)",
			a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2]), len(stats.Overloaded)),
		fmt.Sprintf("max utilisation %.3f < %v saturation cutoff", a.MaxUtilization(), queueing.UtilizationCutoff),
		fmt.Sprintf("total connection cost improved %.1f → %.1f", costBefore, a.TotalCost()),
		"users of one host are split across servers, as the paper notes for its Table 2",
		"(the scanned Table 2 cells are garbled; see DESIGN.md §3 — these are the invariants its prose states)",
	}
	return Result{ID: "table2", Title: "Final load distribution after balancing (§3.1.1)", Table: t, Notes: notes}
}

// Table3 reproduces the skewed variant (loads 100/100/20).
func Table3() Result {
	ex := graph.Table3Variant()
	commW, procW, procTime := assign.PaperWeights()
	maxLoad := make(map[graph.NodeID]int)
	for _, s := range ex.Servers {
		maxLoad[s] = 100
	}
	a, err := assign.New(assign.Config{
		Topology: ex.G, Hosts: ex.Hosts, Servers: ex.Servers,
		Users: ex.Users, MaxLoad: maxLoad,
		ProcTime: procTime, CommW: commW, ProcW: procW,
	})
	if err != nil {
		panic(err)
	}
	a.Initialize()
	init := fmt.Sprintf("initial loads: S1=%d S2=%d S3=%d (paper's Table 3: 100/100/20)",
		a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2]))
	stats := a.Balance()
	t := a.Table("Table 3: skewed variant — assignment after balancing")
	notes := []string{
		init,
		fmt.Sprintf("S1 and S2 start exactly at capacity (ρ=1.0 ≥ %v cutoff): balancing sheds load onto S3", queueing.UtilizationCutoff),
		fmt.Sprintf("final loads: S1=%d S2=%d S3=%d; overloaded servers: %d",
			a.Load(ex.Servers[0]), a.Load(ex.Servers[1]), a.Load(ex.Servers[2]), len(stats.Overloaded)),
	}
	return Result{ID: "table3", Title: "Skewed initial assignment (§3.1.1, Table 3)", Table: t, Notes: notes}
}

// Figure2 reproduces the back-bone MST with local MSTs over a multi-region
// internetwork.
func Figure2() Result {
	g := figure2Topology()
	res, err := mst.Backbone(g, true)
	if err != nil {
		panic(err)
	}
	t := obs.NewTable("Figure 2: back-bone MST and local MSTs",
		"Region", "LocalMSTWeight", "LocalEdges")
	for _, region := range g.Regions() {
		local := res.Local[region]
		var edges []string
		for _, e := range local.Edges {
			edges = append(edges, fmt.Sprintf("%d-%d", e.A, e.B))
		}
		t.AddRow(region, local.Weight, strings.Join(edges, " "))
	}
	var inter []string
	for _, e := range res.Inter {
		inter = append(inter, fmt.Sprintf("%d-%d(%g)", e.A, e.B, e.Weight))
	}
	var dot strings.Builder
	combined := res.Combined
	_ = g.WriteDOT(&dot, "figure2", &combined)
	return Result{
		ID:    "figure2",
		Title: "Back-bone MST connecting regions + local MSTs (§3.3.1-A, Fig. 2)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("back-bone links (between border nodes): %s", strings.Join(inter, " ")),
			fmt.Sprintf("combined tree: %d edges over %d nodes, total weight %g",
				len(res.Combined.Edges), g.NumNodes(), res.TotalWeight()),
			fmt.Sprintf("local trees built by the distributed GHS algorithm: %d protocol messages", res.Stats.Messages),
		},
		Text: dot.String(),
	}
}

// figure2Topology is the deterministic 3-region internetwork used for
// Figure 2 and the broadcast experiments.
func figure2Topology() *graph.Graph {
	g := graph.New()
	add := func(id graph.NodeID, region string) {
		g.MustAddNode(graph.Node{ID: id, Label: fmt.Sprintf("n%d", id), Region: region, Kind: graph.KindRouter})
	}
	for _, id := range []graph.NodeID{1, 2, 3, 4} {
		add(id, "A")
	}
	for _, id := range []graph.NodeID{11, 12, 13} {
		add(id, "B")
	}
	for _, id := range []graph.NodeID{21, 22, 23} {
		add(id, "C")
	}
	// Region A (extra cycle so the MST is non-trivial).
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(1, 4, 8)
	// Region B.
	g.MustAddEdge(11, 12, 4)
	g.MustAddEdge(12, 13, 5)
	g.MustAddEdge(11, 13, 9)
	// Region C.
	g.MustAddEdge(21, 22, 6)
	g.MustAddEdge(22, 23, 7)
	// Inter-region links.
	g.MustAddEdge(4, 11, 10)
	g.MustAddEdge(3, 12, 14)
	g.MustAddEdge(13, 21, 11)
	g.MustAddEdge(23, 1, 20)
	return g
}
